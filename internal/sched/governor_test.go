package sched

import (
	"math"
	"reflect"
	"testing"
)

// mustNew builds a governor or fails the test.
func mustNew(t *testing.T, cfg Config) *Governor {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

// ops extracts the op sequence of a transition slice.
func ops(trs []Transition) []Op {
	out := make([]Op, len(trs))
	for i, tr := range trs {
		out[i] = tr.Op
	}
	return out
}

// find returns the first transition with the op, failing when absent.
func findOp(t *testing.T, trs []Transition, op Op) Transition {
	t.Helper()
	for _, tr := range trs {
		if tr.Op == op {
			return tr
		}
	}
	t.Fatalf("no %v transition in %v", op, ops(trs))
	return Transition{}
}

func hasOp(trs []Transition, op Op) bool {
	for _, tr := range trs {
		if tr.Op == op {
			return true
		}
	}
	return false
}

func TestGovernorBudgetNeverExceeded(t *testing.T) {
	const replicas = 6
	g := mustNew(t, Config{Replicas: replicas, MaxDown: 2, MaxDefer: -1})
	check := func(trs []Transition) {
		if d := g.Down(0); d > 2 {
			t.Fatalf("down = %d exceeds budget 2 (transitions %v)", d, ops(trs))
		}
	}
	// Every replica demands rejuvenation at once: only MaxDown start.
	var started []int
	for r := 0; r < replicas; r++ {
		trs := g.Request(float64(r), r, 5, 0, 0, uint64(r+1))
		check(trs)
		for _, tr := range trs {
			if tr.Op == OpStart {
				started = append(started, tr.Replica)
			}
		}
	}
	if len(started) != 2 {
		t.Fatalf("started %v, want exactly 2 dispatches", started)
	}
	if g.Queued() != replicas-2 {
		t.Errorf("queued = %d, want %d", g.Queued(), replicas-2)
	}
	// Completions free budget slots; the queue drains two at a time.
	for time, done := 100.0, 0; done < replicas; time++ {
		trs := g.Complete(time, started[0], true)
		check(trs)
		done++
		started = started[1:]
		for _, tr := range trs {
			if tr.Op == OpStart {
				started = append(started, tr.Replica)
			}
		}
	}
	if g.Queued() != 0 || g.Down(0) != 0 {
		t.Errorf("after drain: queued=%d down=%d, want 0/0", g.Queued(), g.Down(0))
	}
	if got := g.MaxDownSeen(0); got != 2 {
		t.Errorf("MaxDownSeen = %d, want 2", got)
	}
	st := g.Stats()
	if st.Starts != replicas || st.Completes != replicas {
		t.Errorf("stats starts/completes = %d/%d, want %d/%d", st.Starts, st.Completes, replicas, replicas)
	}
}

func TestGovernorGroupsIndependent(t *testing.T) {
	// Two groups of two; each group has its own one-down budget.
	g := mustNew(t, Config{Replicas: 4, Group: []int{0, 0, 1, 1}, MaxDown: 1, MaxDefer: -1})
	starts := 0
	for r := 0; r < 4; r++ {
		for _, tr := range g.Request(0, r, 5, 0, 0, 0) {
			if tr.Op == OpStart {
				starts++
			}
		}
	}
	if starts != 2 {
		t.Errorf("starts = %d, want one per group", starts)
	}
	if g.Down(0) != 1 || g.Down(1) != 1 {
		t.Errorf("down = %d/%d, want 1/1", g.Down(0), g.Down(1))
	}
}

func TestGovernorCoalescesDuplicates(t *testing.T) {
	// Replica 1 queues behind replica 0 (budget 1); duplicates merge.
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 1)
	trs := g.Request(1, 1, 2, 1, 0, 42)
	findOp(t, trs, OpEnqueue)
	trs = g.Request(2, 1, 3, 0, 50, 99)
	co := findOp(t, trs, OpCoalesce)
	if co.Reason != ReasonDuplicate {
		t.Fatalf("coalesce reason %q", co.Reason)
	}
	if co.Level != 3 || co.Fill != 1 {
		t.Errorf("merged level/fill = %d/%d, want max 3/1", co.Level, co.Fill)
	}
	if co.Count != 2 {
		t.Errorf("count = %d, want 2", co.Count)
	}
	if co.TriggerID != 42 {
		t.Errorf("trigger id = %d, want first id 42 kept", co.TriggerID)
	}
	if g.Queued() != 1 {
		t.Errorf("queued = %d, want 1 (coalesced)", g.Queued())
	}
	st := g.Stats()
	if st.Coalesced != 1 {
		t.Errorf("coalesced stat = %d, want 1", st.Coalesced)
	}
}

func TestGovernorSaturationEscalatesOldest(t *testing.T) {
	// Queue depth 1: replica 0 is down, replica 1 queues, replica 2 is
	// refused — journaled, not dropped — and replica 1 escalates.
	g := mustNew(t, Config{Replicas: 3, MaxDown: 1, QueueDepth: 1, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0)
	g.Request(1, 1, 1, 0, 0, 7)
	trs := g.Request(2, 2, 5, 0, 0, 8)
	d := findOp(t, trs, OpDefer)
	if d.Reason != ReasonSaturated || d.Replica != 2 {
		t.Errorf("refusal = %+v, want saturated defer of replica 2", d)
	}
	esc := findOp(t, trs, OpCoalesce)
	if esc.Reason != ReasonStarved || esc.Replica != 1 {
		t.Errorf("escalation = %+v, want starved coalesce of replica 1", esc)
	}
	st := g.Stats()
	if st.Saturated != 1 || st.Escalated != 1 {
		t.Errorf("saturated/escalated = %d/%d, want 1/1", st.Saturated, st.Escalated)
	}
	// The refusal left no queue entry for replica 2.
	if g.Queued() != 1 {
		t.Errorf("queued = %d, want 1", g.Queued())
	}
}

func TestGovernorRefusalsExplicit(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0) // starts immediately
	trs := g.Request(1, 0, 5, 0, 0, 0)
	d := findOp(t, trs, OpDefer)
	if d.Reason != ReasonInFlight {
		t.Errorf("request for down replica: reason %q, want in-flight", d.Reason)
	}
	g.GiveUp(2, 1, "broken")
	trs = g.Request(3, 1, 5, 0, 0, 0)
	d = findOp(t, trs, OpDefer)
	if d.Reason != ReasonQuarantined {
		t.Errorf("request for quarantined replica: reason %q, want quarantined", d.Reason)
	}
}

func TestGovernorDeadlineDeferral(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: -1})
	trs := g.Request(0, 0, 5, 0, 30, 0) // deadline horizon t=30
	if hasOp(trs, OpStart) {
		t.Fatalf("dispatched inside deadline window: %v", ops(trs))
	}
	d := findOp(t, trs, OpDefer)
	if d.Reason != ReasonDeadline || d.Count != 1 {
		t.Errorf("defer = %+v, want deadline count 1", d)
	}
	// Re-evaluating before the horizon does not re-journal the defer.
	if trs := g.Tick(10); len(trs) != 0 {
		t.Errorf("tick inside window produced %v, want nothing new", ops(trs))
	}
	if w := g.NextWake(10); w != 30 {
		t.Errorf("NextWake = %v, want 30", w)
	}
	trs = g.Tick(30)
	start := findOp(t, trs, OpStart)
	if start.Replica != 0 {
		t.Errorf("start replica = %d", start.Replica)
	}
	if w := g.NextWake(31); !math.IsInf(w, 1) {
		t.Errorf("NextWake with empty queue = %v, want +Inf", w)
	}
}

func TestGovernorMaxDeferLatch(t *testing.T) {
	// A deadline far in the future cannot defer past the latch.
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: 100})
	g.Request(0, 0, 5, 0, 1e6, 5)
	if w := g.NextWake(0); w != 100 {
		t.Errorf("NextWake = %v, want latch at 100", w)
	}
	trs := g.Tick(100)
	esc := findOp(t, trs, OpCoalesce)
	if esc.Reason != ReasonMaxDefer {
		t.Errorf("escalation reason %q, want max-defer", esc.Reason)
	}
	if !hasOp(trs, OpStart) {
		t.Errorf("escalated entry did not start: %v", ops(trs))
	}
}

func TestGovernorMaxDeferStillRespectsBudget(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: 100})
	g.Request(0, 0, 5, 0, 0, 0) // replica 0 down
	g.Request(1, 1, 5, 0, 0, 0) // replica 1 queued behind the budget
	trs := g.Tick(200)          // past the latch
	findOp(t, trs, OpCoalesce)  // escalated...
	if hasOp(trs, OpStart) {
		t.Fatalf("escalated entry started past budget: %v", ops(trs))
	}
	if g.Down(0) != 1 {
		t.Errorf("down = %d, want 1", g.Down(0))
	}
	// Budget frees: the escalated entry starts.
	trs = g.Complete(201, 0, true)
	if !hasOp(trs, OpStart) {
		t.Errorf("escalated entry did not start after budget freed: %v", ops(trs))
	}
}

func TestGovernorCapacityFloor(t *testing.T) {
	// Floor 0.75 of 4 replicas: one down leaves 3 = exactly the floor,
	// so a second start (leaving 2) is deferred.
	g := mustNew(t, Config{Replicas: 4, MaxDown: 2, CapacityFloor: 0.75, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0)
	trs := g.Request(1, 1, 5, 0, 0, 0)
	if hasOp(trs, OpStart) {
		t.Fatalf("second start violated the capacity floor: %v", ops(trs))
	}
	d := findOp(t, trs, OpDefer)
	if d.Reason != ReasonFloor {
		t.Errorf("defer reason %q, want capacity-floor", d.Reason)
	}
	trs = g.Complete(2, 0, true)
	if !hasOp(trs, OpStart) {
		t.Errorf("queued entry did not start after capacity returned: %v", ops(trs))
	}
}

func TestGovernorRequeueOnFailure(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: -1})
	g.Request(0, 0, 4, 2, 0, 77)
	trs := g.Complete(10, 0, false)
	if got := ops(trs); !reflect.DeepEqual(got, []Op{OpComplete, OpEnqueue, OpStart}) {
		t.Fatalf("failed completion transitions = %v", got)
	}
	enq := findOp(t, trs, OpEnqueue)
	if enq.Level != 4 || enq.Fill != 2 || enq.TriggerID != 77 {
		t.Errorf("requeue kept %d/%d id %d, want the dispatched detector state 4/2 id 77", enq.Level, enq.Fill, enq.TriggerID)
	}
	st := g.Stats()
	if st.Requeues != 1 {
		t.Errorf("requeues = %d, want 1", st.Requeues)
	}
}

func TestGovernorQuarantineShedsCapacity(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2, MaxDown: 2, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0) // down
	trs := g.GiveUp(1, 0, "rpc unreachable")
	q := findOp(t, trs, OpQuarantine)
	if q.Reason != "rpc unreachable" {
		t.Errorf("quarantine reason %q", q.Reason)
	}
	if g.Down(0) != 0 || g.Quarantined(0) != 1 {
		t.Errorf("down/quar = %d/%d, want 0/1", g.Down(0), g.Quarantined(0))
	}
	if g.InService(0) {
		t.Error("quarantined replica reported in service")
	}
	// Budget is now min(2, 2-1) = 1: only one replica may go down even
	// though MaxDown is 2.
	g.Request(2, 1, 5, 0, 0, 0)
	if g.Down(0) != 1 {
		t.Fatalf("down = %d", g.Down(0))
	}
	// Readmission restores the shed share and scheduling eligibility.
	trs = g.Readmit(3, 0)
	findOp(t, trs, OpReadmit)
	if g.Quarantined(0) != 0 || !g.InService(0) {
		t.Errorf("readmitted replica not back in service")
	}
	trs = g.Request(4, 0, 5, 0, 0, 0)
	if !hasOp(trs, OpStart) {
		t.Errorf("readmitted replica did not start under restored budget: %v", ops(trs))
	}
	if g.Down(0) != 2 {
		t.Errorf("down = %d, want 2 (budget restored)", g.Down(0))
	}
}

func TestGovernorQuarantineDropsQueuedEntry(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2, MaxDown: 1, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0) // down
	g.Request(1, 1, 3, 0, 0, 0) // queued
	g.GiveUp(2, 1, "dead")
	if g.Queued() != 0 {
		t.Errorf("queued = %d, want 0 after quarantining the queued replica", g.Queued())
	}
}

func TestGovernorTierSelection(t *testing.T) {
	g := mustNew(t, Config{Replicas: 1, FullPause: 60, TriggerLevel: 5})
	cases := []struct {
		level int
		tier  string
		rho   float64
		pause float64
	}{
		{1, "minor", 0.25, 15}, // severity 0.2
		{3, "medium", 0.5, 30}, // severity 0.6
		{5, "major", 1, 60},    // severity 1
	}
	for i, c := range cases {
		trs := g.Request(float64(i), 0, c.level, 0, 0, 0)
		start := findOp(t, trs, OpStart)
		if start.Tier.Name != c.tier {
			t.Errorf("level %d: tier %q, want %q", c.level, start.Tier.Name, c.tier)
		}
		if start.Tier.Rho != c.rho || start.Pause != c.pause {
			t.Errorf("level %d: rho/pause = %v/%v, want %v/%v", c.level, start.Tier.Rho, start.Pause, c.rho, c.pause)
		}
		g.Complete(float64(i)+0.5, 0, true)
	}
}

func TestGovernorUrgencyOrder(t *testing.T) {
	// With the budget spent, a later high-urgency request outranks an
	// earlier low-urgency one when the slot frees.
	g := mustNew(t, Config{Replicas: 3, MaxDown: 1, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0) // down
	g.Request(1, 1, 1, 0, 0, 0) // low urgency
	g.Request(2, 2, 5, 3, 0, 0) // high urgency
	trs := g.Complete(3, 0, true)
	start := findOp(t, trs, OpStart)
	if start.Replica != 2 {
		t.Errorf("dispatched replica %d, want the more urgent 2", start.Replica)
	}
}

func TestGovernorAgingBreaksTies(t *testing.T) {
	// Equal detector state: the older request wins.
	g := mustNew(t, Config{Replicas: 3, MaxDown: 1, MaxDefer: -1})
	g.Request(0, 0, 5, 0, 0, 0)
	g.Request(1, 1, 2, 0, 0, 0)
	g.Request(2, 2, 2, 0, 0, 0)
	trs := g.Complete(3, 0, true)
	if start := findOp(t, trs, OpStart); start.Replica != 1 {
		t.Errorf("dispatched replica %d, want the older 1", start.Replica)
	}
}

func TestGovernorDeterminism(t *testing.T) {
	run := func() []Transition {
		g := mustNew(t, Config{Replicas: 4, MaxDown: 1, QueueDepth: 2, MaxDefer: 50, CapacityFloor: 0.5})
		var all []Transition
		app := func(trs []Transition) { all = append(all, trs...) }
		app(g.Request(0, 0, 5, 0, 10, 1))
		app(g.Request(1, 1, 2, 1, 0, 2))
		app(g.Request(2, 2, 3, 0, 0, 3))
		app(g.Request(3, 3, 4, 1, 0, 4)) // saturates
		app(g.Request(4, 1, 4, 0, 0, 5)) // coalesces
		app(g.Tick(10))
		app(g.Complete(20, 0, false))
		app(g.GiveUp(30, 2, "stuck"))
		app(g.Tick(60))
		app(g.Complete(70, 1, true))
		app(g.Readmit(80, 2))
		app(g.Tick(90))
		return all
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical scripts produced different transitions:\n%v\n%v", a, b)
	}
}

func TestGovernorIgnoresInvalidReplica(t *testing.T) {
	g := mustNew(t, Config{Replicas: 2})
	if trs := g.Request(0, -1, 5, 0, 0, 0); trs != nil {
		t.Errorf("negative replica produced %v", ops(trs))
	}
	if trs := g.Request(0, 2, 5, 0, 0, 0); trs != nil {
		t.Errorf("out-of-range replica produced %v", ops(trs))
	}
	if trs := g.Complete(0, 0, true); trs != nil {
		t.Errorf("complete of idle replica produced %v", ops(trs))
	}
	if trs := g.Readmit(0, 0); trs != nil {
		t.Errorf("readmit of idle replica produced %v", ops(trs))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},                             // no replicas
		{Replicas: 2, Group: []int{0}}, // group map wrong length
		{Replicas: 2, Group: []int{0, -1}},
		{Replicas: 1, MaxDown: -1},
		{Replicas: 1, CapacityFloor: 1},
		{Replicas: 1, CapacityFloor: -0.1},
		{Replicas: 1, MaxDefer: math.NaN()},
		{Replicas: 1, AgeScale: -1},
		{Replicas: 1, TriggerLevel: -1},
		{Replicas: 1, Tiers: []Tier{{Name: "", Rho: 1, PauseFrac: 1}}},
		{Replicas: 1, Tiers: []Tier{{Name: "x", Rho: 0, PauseFrac: 1}}},
		{Replicas: 1, Tiers: []Tier{{Name: "x", Rho: 1, PauseFrac: 2}}},
		{Replicas: 1, Tiers: []Tier{ // MinSeverity out of order
			{Name: "a", Rho: 1, PauseFrac: 1, MinSeverity: 0.5},
			{Name: "b", Rho: 1, PauseFrac: 1, MinSeverity: 0.2},
		}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	g := mustNew(t, Config{Replicas: 3})
	cfg := g.Config()
	if cfg.MaxDown != 1 || cfg.QueueDepth != 6 || cfg.MaxDefer != 600 ||
		cfg.AgeScale != 60 || cfg.TriggerLevel != 5 || cfg.FullPause != 60 || len(cfg.Tiers) != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
	if g.Groups() != 1 {
		t.Errorf("groups = %d", g.Groups())
	}
	// Negative FullPause is the explicit "instantaneous" spelling that
	// survives defaulting (0 would select the 60 s default).
	gi := mustNew(t, Config{Replicas: 1, FullPause: -7})
	if p := gi.Config().FullPause; !(p == -1) { //lint:allow floatcmp exact sentinel
		t.Errorf("negative FullPause canonicalized to %v, want -1", p)
	}
}

func TestPresets(t *testing.T) {
	g := mustNew(t, OneDown(4, 30))
	if cfg := g.Config(); cfg.MaxDown != 1 || len(cfg.Tiers) != 1 || cfg.Tiers[0].Rho != 1 {
		t.Errorf("OneDown config = %+v", cfg)
	}
	trs := g.Request(0, 0, 5, 0, 0, 1)
	start := findOp(t, trs, OpStart)
	if start.Tier.Name != "major" || start.Pause != 30 {
		t.Errorf("OneDown start = %+v, want full 30s restart", start)
	}
	g2 := mustNew(t, Scheduled(4, 30))
	if cfg := g2.Config(); cfg.MaxDefer != 300 || len(cfg.Tiers) != 3 {
		t.Errorf("Scheduled config = %+v", cfg)
	}
}

func TestOpString(t *testing.T) {
	if OpStart.String() != "start" || Op(0).String() != "op(0)" {
		t.Errorf("op strings: %v %v", OpStart, Op(0))
	}
}
