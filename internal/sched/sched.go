// Package sched is the cost-aware rejuvenation scheduling layer: it
// decides *when* a replica that a detector wants rejuvenated may safely
// go down, and *how much* rejuvenation it gets. The paper's algorithms
// (and the fleet engine built on them) decide that a replica is aging;
// left uncoordinated, correlated aging turns those per-replica triggers
// into simultaneous restarts and a cluster-wide capacity collapse. The
// Governor in this package sits between trigger sources (Monitor, the
// fleet trigger queue, a simulated cluster) and the actuation layer and
// enforces three policies:
//
//   - A capacity budget: at most MaxDown replicas of a group may be down
//     at once, with a bounded priority queue ordered by urgency
//     (detector level × fill, aged over time). When the queue saturates
//     it degrades gracefully — duplicate requests per replica coalesce
//     into one entry and the oldest starved entry is escalated — rather
//     than dropping work silently.
//
//   - Deadline/QoS-aware deferral: a restart that would violate a
//     declared in-flight deadline or drop group capacity below a
//     configured floor is deferred, but a hard max-defer latch escalates
//     any entry that has waited too long, so an aging replica cannot be
//     deferred forever (only the capacity budget still binds then).
//
//   - Kijima-style partial rejuvenation: actions come in tiers (minor,
//     medium, major) selected by detector severity; a tier rolls back a
//     fraction ρ of the replica's accumulated virtual age and costs a
//     proportionally shorter pause, so moderate aging is treated with a
//     cheap partial action instead of a full restart.
//
// The Governor is a pure deterministic state machine: it never reads a
// clock (timestamps are inputs), never allocates hidden randomness, and
// reports every state change as a typed Transition. Callers journal the
// transitions (internal/journal's KindSched* records) and execute the
// OpStart ones; journal.ReplaySched re-derives the whole transition
// stream from the journaled inputs and verifies it byte-identically,
// which makes scheduling decisions as auditable as detector decisions.
package sched

import "fmt"

// Op enumerates the scheduler state transitions a Governor emits.
type Op uint8

// Governor transitions. Each maps 1:1 onto a journal record kind.
const (
	// OpEnqueue: a request was admitted to the queue.
	OpEnqueue Op = iota + 1
	// OpDefer: a request was considered and not started (Reason), or
	// refused at admission (ReasonSaturated, ReasonInFlight,
	// ReasonQuarantined).
	OpDefer
	// OpCoalesce: a duplicate request merged into its queued entry
	// (ReasonDuplicate), or a starved entry was escalated past the
	// deferral windows (ReasonStarved, ReasonMaxDefer).
	OpCoalesce
	// OpStart: an action was dispatched; the replica is now down.
	OpStart
	// OpComplete: a dispatched action finished (OK: back in service;
	// !OK: the request re-enters the queue).
	OpComplete
	// OpQuarantine: the replica's actuator gave up; its capacity share
	// is shed until readmission.
	OpQuarantine
	// OpReadmit: a quarantined replica was re-admitted.
	OpReadmit
)

// opNames maps ops to their stable spellings.
var opNames = [...]string{
	OpEnqueue:    "enqueue",
	OpDefer:      "defer",
	OpCoalesce:   "coalesce",
	OpStart:      "start",
	OpComplete:   "complete",
	OpQuarantine: "quarantine",
	OpReadmit:    "readmit",
}

// String returns the stable name of the op.
func (op Op) String() string {
	if op >= OpEnqueue && op <= OpReadmit {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Defer and coalesce reasons. They are part of the journal contract:
// ReplaySched classifies records by these strings.
const (
	// ReasonBudget defers the group's top candidate while the max-down
	// budget is spent.
	ReasonBudget = "budget"
	// ReasonDeadline defers a replica inside its declared QoS deadline
	// horizon.
	ReasonDeadline = "deadline"
	// ReasonFloor defers a start that would drop group capacity below
	// the configured floor.
	ReasonFloor = "capacity-floor"
	// ReasonSaturated refuses a new request because the queue is full;
	// the refusal is journaled, never silent.
	ReasonSaturated = "saturated"
	// ReasonInFlight refuses a request for a replica whose action is
	// already running.
	ReasonInFlight = "in-flight"
	// ReasonQuarantined refuses a request for a quarantined replica.
	ReasonQuarantined = "quarantined"
	// ReasonDuplicate coalesces a duplicate request into its queued
	// entry.
	ReasonDuplicate = "duplicate"
	// ReasonStarved escalates the oldest entry when the queue saturates.
	ReasonStarved = "starved"
	// ReasonMaxDefer escalates an entry that has waited past MaxDefer.
	ReasonMaxDefer = "max-defer"
)

// Tier is one Kijima-style rejuvenation action class. A tier applied to
// a replica with accumulated virtual age V rolls the age back to
// (1−ρ)·V and holds the replica down for PauseFrac of the full
// rejuvenation pause; ρ = 1 is a full restart ("good as new").
type Tier struct {
	// Name is the journaled tier label ("minor", "medium", "major").
	Name string
	// Rho is the rollback fraction ρ ∈ (0, 1] of accumulated virtual age.
	Rho float64
	// PauseFrac is the fraction of the full rejuvenation pause this
	// tier costs, in (0, 1].
	PauseFrac float64
	// MinSeverity is the smallest request severity (core.Severity of the
	// raising decision, in [0, 1]) this tier applies to. The governor
	// picks the highest-MinSeverity tier at or below the request's
	// severity.
	MinSeverity float64
}

// DefaultTiers returns the three-tier Kijima ladder: cheap partial
// actions for moderate aging, a full restart at trigger severity.
func DefaultTiers() []Tier {
	return []Tier{
		{Name: "minor", Rho: 0.25, PauseFrac: 0.25, MinSeverity: 0},
		{Name: "medium", Rho: 0.5, PauseFrac: 0.5, MinSeverity: 0.5},
		{Name: "major", Rho: 1, PauseFrac: 1, MinSeverity: 1},
	}
}

// FullRestartTiers returns the degenerate single-tier ladder — every
// action is a full restart — reproducing pre-scheduler behavior.
func FullRestartTiers() []Tier {
	return []Tier{{Name: "major", Rho: 1, PauseFrac: 1, MinSeverity: 0}}
}

// Transition is one governor state change. The zero Op is invalid, so a
// zeroed transition is detectably empty.
type Transition struct {
	// Op selects the transition; the fields below are meaningful per op.
	Op Op
	// Time is the input timestamp the transition happened at (seconds).
	Time float64
	// Replica is the replica the transition concerns.
	Replica int
	// Level and Fill are the request's detector state (OpEnqueue,
	// OpDefer, OpCoalesce, OpStart).
	Level, Fill int
	// Deadline is the QoS horizon declared with the request (OpEnqueue,
	// OpCoalesce with ReasonDuplicate); 0 when none.
	Deadline float64
	// Urgency is the entry's priority at transition time (OpEnqueue,
	// OpCoalesce, OpStart).
	Urgency float64
	// Reason classifies OpDefer and OpCoalesce, and carries the terminal
	// error text on OpQuarantine.
	Reason string
	// Tier is the dispatched action class (OpStart).
	Tier Tier
	// Pause is the dispatched action's down time in seconds (OpStart):
	// Tier.PauseFrac × Config.FullPause.
	Pause float64
	// Count is the total requests coalesced into the entry (OpCoalesce)
	// or the entry's deferral count (OpDefer).
	Count int
	// OK is the action outcome (OpComplete).
	OK bool
	// TriggerID correlates the transition with the detector decision
	// that raised the request; 0 when none.
	TriggerID uint64
}
