package sched

import (
	"reflect"
	"testing"
)

// FuzzSchedulerPlan drives a governor with an arbitrary byte-encoded op
// script and asserts the scheduling invariants the conformance laws
// rely on: the capacity budget is never exceeded, the queue stays
// bounded, no request is dropped silently (every Request produces an
// admission transition), quarantine accounting balances, and the whole
// plan is deterministic — mirroring the same script into a second
// governor yields an identical transition stream.
func FuzzSchedulerPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x10, 0x21, 0x32, 0x43, 0x54, 0x65})
	f.Add([]byte{0x00, 0x01, 0x02, 0x80, 0x91, 0xA2, 0xF0, 0x00, 0x11, 0x22})
	f.Add([]byte{0x30, 0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{
			Replicas:      4,
			Group:         []int{0, 0, 1, 1},
			MaxDown:       1,
			QueueDepth:    3,
			CapacityFloor: 0.5,
			MaxDefer:      50,
			FullPause:     40,
		}
		g, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		mirror, _ := New(cfg)

		now := 0.0
		var script []Transition
		apply := func(trs, mirrored []Transition) {
			if !reflect.DeepEqual(trs, mirrored) {
				t.Fatalf("mirrored governor diverged:\n%v\n%v", trs, mirrored)
			}
			script = append(script, trs...)
			for grp := 0; grp < g.Groups(); grp++ {
				if g.Down(grp) > cfg.MaxDown {
					t.Fatalf("group %d: down %d exceeds budget %d", grp, g.Down(grp), cfg.MaxDown)
				}
				if g.Down(grp) > g.MaxDownSeen(grp) {
					t.Fatalf("group %d: down %d above high-water %d", grp, g.Down(grp), g.MaxDownSeen(grp))
				}
				if g.Quarantined(grp) < 0 || g.Quarantined(grp) > 2 {
					t.Fatalf("group %d: quarantined %d out of range", grp, g.Quarantined(grp))
				}
			}
			if g.Queued() > cfg.QueueDepth {
				t.Fatalf("queue grew to %d past depth %d", g.Queued(), cfg.QueueDepth)
			}
		}

		for _, b := range data {
			op := b >> 4
			replica := int(b & 0x03)
			now += float64(b&0x0C)/2 + 0.5 // deterministic, strictly increasing
			switch op % 6 {
			case 0, 1: // request; op 1 adds a deadline horizon
				level := int(b&0x07) % 6
				fill := int(b>>2) % 4
				deadline := 0.0
				if op%6 == 1 {
					deadline = now + float64(b%32)
				}
				trs := g.Request(now, replica, level, fill, deadline, uint64(b)+1)
				if len(trs) == 0 {
					t.Fatalf("request for replica %d dropped silently", replica)
				}
				switch trs[0].Op {
				case OpEnqueue, OpCoalesce, OpDefer:
				default:
					t.Fatalf("request admission led with %v", trs[0].Op)
				}
				apply(trs, mirror.Request(now, replica, level, fill, deadline, uint64(b)+1))
			case 2:
				ok := b&0x08 == 0
				apply(g.Complete(now, replica, ok), mirror.Complete(now, replica, ok))
			case 3:
				apply(g.GiveUp(now, replica, "fuzz give-up"), mirror.GiveUp(now, replica, "fuzz give-up"))
			case 4:
				apply(g.Readmit(now, replica), mirror.Readmit(now, replica))
			case 5:
				apply(g.Tick(now), mirror.Tick(now))
			}
		}

		// After a final tick far past the latch, no non-escalated entry
		// may still be waiting on a deferral window: everything queued is
		// either escalated or blocked by the budget alone.
		final := g.Tick(now + 10*cfg.MaxDefer)
		for _, tr := range final {
			if tr.Op == OpDefer && (tr.Reason == ReasonDeadline || tr.Reason == ReasonFloor) {
				t.Fatalf("entry still window-deferred (%s) past the max-defer latch", tr.Reason)
			}
		}

		// The transition stream is internally consistent: starts and
		// completes per replica interleave strictly.
		downNow := map[int]bool{}
		for _, tr := range script {
			switch tr.Op {
			case OpStart:
				if downNow[tr.Replica] {
					t.Fatalf("replica %d started twice without completing", tr.Replica)
				}
				downNow[tr.Replica] = true
				if tr.Pause > cfg.FullPause {
					t.Fatalf("tier pause %v exceeds the full pause", tr.Pause)
				}
			case OpComplete:
				if !downNow[tr.Replica] {
					t.Fatalf("replica %d completed without a start", tr.Replica)
				}
				downNow[tr.Replica] = false
			case OpQuarantine:
				downNow[tr.Replica] = false
			}
		}
	})
}
