package sched

import (
	"fmt"
	"math"

	"rejuv/internal/num"
)

// Config parameterizes a Governor. The zero value of every field has a
// usable default, so Config{Replicas: n} is a valid one-group,
// one-down, full-restart policy.
type Config struct {
	// Replicas is the number of replicas under scheduling. Required.
	Replicas int
	// Group maps each replica to its replica group; nil puts every
	// replica in group 0. The capacity budget and floor apply per group.
	Group []int
	// MaxDown is the capacity budget: the maximum number of replicas of
	// one group down (restarting) simultaneously. Default 1.
	MaxDown int
	// QueueDepth bounds the priority queue. A request for an unqueued
	// replica arriving at a full queue is refused (journaled as a
	// saturated defer) and the oldest starved entry is escalated.
	// Default 2×Replicas, minimum 4.
	QueueDepth int
	// CapacityFloor is the minimum fraction of a group's non-quarantined
	// replicas that must stay in service; a start violating it is
	// deferred (until the max-defer latch escalates the entry). 0
	// disables the floor.
	CapacityFloor float64
	// MaxDefer is the hard starvation latch in seconds: an entry queued
	// longer is escalated past the deadline and floor windows, so only
	// the capacity budget can still defer it. 0 selects the default
	// (600 s); negative disables the latch.
	MaxDefer float64
	// AgeScale converts request age to urgency: effective urgency =
	// (level+1)×(fill+1) + age/AgeScale. Default 60 s per urgency point.
	AgeScale float64
	// TriggerLevel is the detector bucket count K at which the trigger
	// fires, used to map request levels to tier severities
	// (core.Severity). Default 5 (the paper's K).
	TriggerLevel int
	// FullPause is the full-restart pause in seconds; a tier's action
	// pauses PauseFrac×FullPause. 0 selects the default (60 s, the
	// paper's restart cost); negative means instantaneous restarts.
	FullPause float64
	// Tiers is the Kijima action ladder, ordered by ascending
	// MinSeverity. Default DefaultTiers().
	Tiers []Tier
}

// OneDown returns the legacy rolling-restart policy used by
// examples/cluster before the scheduler existed: at most one replica
// down at a time, every action a full restart of the given pause, no
// deferral windows and no starvation latch.
func OneDown(replicas int, pause float64) Config {
	if !(pause > 0) {
		pause = -1 // explicit instantaneous, not the 60 s default
	}
	return Config{
		Replicas:  replicas,
		MaxDown:   1,
		FullPause: pause,
		MaxDefer:  -1,
		Tiers:     FullRestartTiers(),
	}
}

// Scheduled returns the cost-aware policy the -cluster demo compares
// against OneDown: one replica down at a time, the three-tier Kijima
// ladder over the same full pause, a half-capacity floor and a
// starvation latch of ten full pauses.
func Scheduled(replicas int, pause float64) Config {
	cfg := Config{
		Replicas:      replicas,
		MaxDown:       1,
		FullPause:     pause,
		CapacityFloor: 0.5,
		MaxDefer:      10 * pause,
		Tiers:         DefaultTiers(),
	}
	if !(pause > 0) {
		cfg.FullPause = -1
		cfg.MaxDefer = -1
	}
	return cfg
}

// withDefaults fills zero fields with their documented defaults.
func (c Config) withDefaults() Config {
	if c.MaxDown == 0 {
		c.MaxDown = 1
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.Replicas
		if c.QueueDepth < 4 {
			c.QueueDepth = 4
		}
	}
	if num.Zero(c.MaxDefer) {
		c.MaxDefer = 600
	}
	if num.Zero(c.AgeScale) {
		c.AgeScale = 60
	}
	if c.TriggerLevel == 0 {
		c.TriggerLevel = 5
	}
	if num.Zero(c.FullPause) {
		c.FullPause = 60
	} else if c.FullPause < 0 {
		// Canonical "instantaneous" spelling. Kept negative (not clamped
		// to 0, the use-the-default sentinel) so defaulting a defaulted
		// config is a no-op — replay rebuilds a governor from the
		// defaulted config and must land on the identical policy.
		c.FullPause = -1
	}
	if c.Tiers == nil {
		c.Tiers = DefaultTiers()
	}
	return c
}

// validate checks a defaulted config.
func (c Config) validate() error {
	if c.Replicas <= 0 {
		return fmt.Errorf("sched: Replicas must be positive, got %d", c.Replicas)
	}
	if c.Group != nil && len(c.Group) != c.Replicas {
		return fmt.Errorf("sched: Group maps %d replicas, config has %d", len(c.Group), c.Replicas)
	}
	for r, grp := range c.Group {
		if grp < 0 {
			return fmt.Errorf("sched: replica %d mapped to negative group %d", r, grp)
		}
	}
	if c.MaxDown < 1 {
		return fmt.Errorf("sched: MaxDown must be at least 1, got %d", c.MaxDown)
	}
	if c.QueueDepth < 1 {
		return fmt.Errorf("sched: QueueDepth must be at least 1, got %d", c.QueueDepth)
	}
	if c.CapacityFloor < 0 || c.CapacityFloor >= 1 || math.IsNaN(c.CapacityFloor) {
		return fmt.Errorf("sched: CapacityFloor %v must be in [0, 1)", c.CapacityFloor)
	}
	if math.IsNaN(c.MaxDefer) || math.IsInf(c.MaxDefer, 0) {
		return fmt.Errorf("sched: MaxDefer %v must be finite", c.MaxDefer)
	}
	if c.AgeScale <= 0 || math.IsNaN(c.AgeScale) || math.IsInf(c.AgeScale, 0) {
		return fmt.Errorf("sched: AgeScale %v must be positive and finite", c.AgeScale)
	}
	if c.TriggerLevel < 1 {
		return fmt.Errorf("sched: TriggerLevel must be at least 1, got %d", c.TriggerLevel)
	}
	if math.IsNaN(c.FullPause) || math.IsInf(c.FullPause, 0) {
		return fmt.Errorf("sched: FullPause %v must be finite", c.FullPause)
	}
	if len(c.Tiers) == 0 {
		return fmt.Errorf("sched: at least one action tier is required")
	}
	prev := math.Inf(-1)
	for i, tier := range c.Tiers {
		if tier.Name == "" {
			return fmt.Errorf("sched: tier %d has no name", i)
		}
		if tier.Rho <= 0 || tier.Rho > 1 || math.IsNaN(tier.Rho) {
			return fmt.Errorf("sched: tier %q rho %v must be in (0, 1]", tier.Name, tier.Rho)
		}
		if tier.PauseFrac <= 0 || tier.PauseFrac > 1 || math.IsNaN(tier.PauseFrac) {
			return fmt.Errorf("sched: tier %q pause fraction %v must be in (0, 1]", tier.Name, tier.PauseFrac)
		}
		if math.IsNaN(tier.MinSeverity) || tier.MinSeverity < prev {
			return fmt.Errorf("sched: tier %q min severity %v must be ordered ascending", tier.Name, tier.MinSeverity)
		}
		prev = tier.MinSeverity
	}
	return nil
}
