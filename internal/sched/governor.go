package sched

import (
	"math"
	"sort"

	"rejuv/internal/core"
)

// state is a replica's position in the scheduling lifecycle.
type state uint8

const (
	stateIdle state = iota
	stateQueued
	stateDown
	stateQuarantined
)

// entry is one queued rejuvenation request; duplicates coalesce into it.
type entry struct {
	replica     int
	level, fill int
	urgency     float64 // base urgency (level+1)×(fill+1); age is added at scan time
	count       int     // requests coalesced into this entry
	enqueued    float64 // time of the first request
	deferrals   int     // journaled defer decisions so far
	escalated   bool    // past the max-defer latch or starvation-escalated
	lastReason  string  // last journaled defer reason; repeats are not re-journaled
	triggerID   uint64
}

// Stats counts governor activity since construction.
type Stats struct {
	// Requests is every Request call received.
	Requests uint64
	// Enqueued counts admissions, including requeues after a failed action.
	Enqueued uint64
	// Coalesced counts duplicate requests merged into queued entries.
	Coalesced uint64
	// Saturated counts requests refused because the queue was full.
	Saturated uint64
	// Refused counts requests refused as in-flight or quarantined.
	Refused uint64
	// Escalated counts entries escalated past the deferral windows.
	Escalated uint64
	// Deferrals counts journaled defer decisions.
	Deferrals uint64
	// Starts counts dispatched actions.
	Starts uint64
	// Completes counts finished actions.
	Completes uint64
	// Requeues counts failed actions that re-entered the queue.
	Requeues uint64
	// Quarantines and Readmits count capacity-shedding transitions.
	Quarantines uint64
	Readmits    uint64
}

// Governor is the deterministic scheduling state machine. It holds the
// bounded priority queue, the per-group capacity accounting and the
// per-replica lifecycle state; every method takes the current time as
// an input (the governor never reads a clock) and returns the typed
// transitions the call produced, in the exact order a journaling caller
// must record them. It is not safe for concurrent use; rejuv.Scheduler
// wraps it in a mutex for production, and the simulated cluster is
// single-threaded by construction.
type Governor struct {
	cfg    Config
	group  []int // replica -> group
	groups int

	st         []state
	deferUntil []float64 // per-replica QoS horizon, declared via Request
	lastLevel  []int     // detector state of the last dispatched action,
	lastFill   []int     // kept for the requeue after a failed action
	lastTID    []uint64

	queue             []entry
	down, quar, total []int // per group
	maxDown           []int // high-water mark of down, per group

	stats        Stats
	groupBlocked []bool // scan scratch
	orderBuf     []int  // scan scratch
}

// New builds a Governor, applying defaults and validating the config.
func New(cfg Config) (*Governor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &Governor{cfg: cfg}
	g.group = make([]int, cfg.Replicas)
	copy(g.group, cfg.Group)
	g.groups = 1
	for _, grp := range g.group {
		if grp+1 > g.groups {
			g.groups = grp + 1
		}
	}
	g.st = make([]state, cfg.Replicas)
	g.deferUntil = make([]float64, cfg.Replicas)
	g.lastLevel = make([]int, cfg.Replicas)
	g.lastFill = make([]int, cfg.Replicas)
	g.lastTID = make([]uint64, cfg.Replicas)
	g.queue = make([]entry, 0, cfg.QueueDepth)
	g.down = make([]int, g.groups)
	g.quar = make([]int, g.groups)
	g.total = make([]int, g.groups)
	g.maxDown = make([]int, g.groups)
	g.groupBlocked = make([]bool, g.groups)
	for _, grp := range g.group {
		g.total[grp]++
	}
	return g, nil
}

// Config returns the defaulted configuration in effect.
func (g *Governor) Config() Config { return g.cfg }

// Stats returns the activity counters.
func (g *Governor) Stats() Stats { return g.stats }

// Groups returns the number of replica groups.
func (g *Governor) Groups() int { return g.groups }

// Queued returns the number of queued entries.
func (g *Governor) Queued() int { return len(g.queue) }

// Down returns how many replicas of the group are currently down.
func (g *Governor) Down(group int) int {
	if group < 0 || group >= g.groups {
		return 0
	}
	return g.down[group]
}

// MaxDownSeen returns the high-water mark of simultaneously down
// replicas of the group — the observable side of the capacity-budget
// conformance law.
func (g *Governor) MaxDownSeen(group int) int {
	if group < 0 || group >= g.groups {
		return 0
	}
	return g.maxDown[group]
}

// Quarantined returns how many replicas of the group are quarantined.
func (g *Governor) Quarantined(group int) int {
	if group < 0 || group >= g.groups {
		return 0
	}
	return g.quar[group]
}

// InService reports whether the replica is in service (not down and not
// quarantined) as far as the scheduler knows.
func (g *Governor) InService(replica int) bool {
	if replica < 0 || replica >= len(g.st) {
		return false
	}
	return g.st[replica] == stateIdle || g.st[replica] == stateQueued
}

// baseUrgency is the request priority before aging: detector level ×
// fill, both shifted so a level-0 fill-0 request still has weight.
func baseUrgency(level, fill int) float64 {
	return float64(level+1) * float64(fill+1)
}

// effUrgency is the entry's priority at time t: base urgency plus its
// age in units of AgeScale seconds. It runs once per queue entry per
// scan and must not allocate.
//
//lint:hotpath
func (g *Governor) effUrgency(e *entry, t float64) float64 {
	age := t - e.enqueued
	if age < 0 {
		age = 0
	}
	return e.urgency + age/g.cfg.AgeScale
}

// budget is the group's effective max-down budget: MaxDown, capped by
// the replicas the group still has (quarantined ones shed their share).
func (g *Governor) budget(grp int) int {
	b := g.cfg.MaxDown
	if avail := g.total[grp] - g.quar[grp]; b > avail {
		b = avail
	}
	return b
}

// Request feeds one rejuvenation request: the detector watching replica
// wants it rejuvenated, with the given bucket level/fill (callers pass
// level = Config.TriggerLevel for triggering decisions), a QoS deadline
// horizon (absolute time before which a restart would violate in-flight
// work; 0 when none) and the trigger id of the raising decision. The
// returned transitions are the admission decision (enqueue, coalesce,
// or an explicit journaled refusal) followed by any dispatches the new
// queue state allows.
func (g *Governor) Request(t float64, replica, level, fill int, deadline float64, triggerID uint64) []Transition {
	if replica < 0 || replica >= len(g.st) {
		return nil
	}
	g.stats.Requests++
	var out []Transition
	switch g.st[replica] {
	case stateQuarantined:
		g.stats.Refused++
		out = append(out, Transition{Op: OpDefer, Time: t, Replica: replica,
			Reason: ReasonQuarantined, Level: level, Fill: fill, TriggerID: triggerID})
	case stateDown:
		g.stats.Refused++
		out = append(out, Transition{Op: OpDefer, Time: t, Replica: replica,
			Reason: ReasonInFlight, Level: level, Fill: fill, TriggerID: triggerID})
	case stateQueued:
		qi := g.find(replica)
		e := &g.queue[qi]
		if level > e.level {
			e.level = level
		}
		if fill > e.fill {
			e.fill = fill
		}
		e.count++
		e.urgency = baseUrgency(e.level, e.fill)
		if e.triggerID == 0 {
			e.triggerID = triggerID
		}
		if deadline > g.deferUntil[replica] {
			g.deferUntil[replica] = deadline
		}
		g.stats.Coalesced++
		out = append(out, Transition{Op: OpCoalesce, Time: t, Replica: replica,
			Reason: ReasonDuplicate, Level: e.level, Fill: e.fill, Deadline: deadline,
			Count: e.count, Urgency: g.effUrgency(e, t), TriggerID: e.triggerID})
	default: // idle
		if len(g.queue) >= g.cfg.QueueDepth {
			// Graceful overload: refuse the newcomer explicitly and
			// escalate the oldest starved entry so the queue drains.
			g.stats.Saturated++
			out = append(out, Transition{Op: OpDefer, Time: t, Replica: replica,
				Reason: ReasonSaturated, Level: level, Fill: fill, TriggerID: triggerID})
			if oi := g.oldestWaiting(); oi >= 0 {
				oe := &g.queue[oi]
				oe.escalated = true
				oe.lastReason = ""
				g.stats.Escalated++
				out = append(out, Transition{Op: OpCoalesce, Time: t, Replica: oe.replica,
					Reason: ReasonStarved, Level: oe.level, Fill: oe.fill, Count: oe.count,
					Urgency: g.effUrgency(oe, t), TriggerID: oe.triggerID})
			}
		} else {
			e := entry{replica: replica, level: level, fill: fill,
				urgency: baseUrgency(level, fill), count: 1, enqueued: t, triggerID: triggerID}
			g.queue = append(g.queue, e)
			g.st[replica] = stateQueued
			if deadline > g.deferUntil[replica] {
				g.deferUntil[replica] = deadline
			}
			g.stats.Enqueued++
			out = append(out, Transition{Op: OpEnqueue, Time: t, Replica: replica,
				Level: level, Fill: fill, Deadline: deadline, Urgency: e.urgency, TriggerID: triggerID})
		}
	}
	return g.scan(t, out)
}

// Complete reports a dispatched action finishing. ok means the replica
// is back in service; a failed action re-enters the queue (bypassing
// the depth bound — it held a slot before starting), keeping the
// detector state it was dispatched with.
func (g *Governor) Complete(t float64, replica int, ok bool) []Transition {
	if replica < 0 || replica >= len(g.st) || g.st[replica] != stateDown {
		return nil
	}
	grp := g.group[replica]
	g.down[grp]--
	g.st[replica] = stateIdle
	g.stats.Completes++
	out := []Transition{{Op: OpComplete, Time: t, Replica: replica, OK: ok, TriggerID: g.lastTID[replica]}}
	if !ok {
		g.stats.Requeues++
		g.stats.Enqueued++
		level, fill := g.lastLevel[replica], g.lastFill[replica]
		e := entry{replica: replica, level: level, fill: fill,
			urgency: baseUrgency(level, fill), count: 1, enqueued: t, triggerID: g.lastTID[replica]}
		g.queue = append(g.queue, e)
		g.st[replica] = stateQueued
		out = append(out, Transition{Op: OpEnqueue, Time: t, Replica: replica,
			Level: level, Fill: fill, Urgency: e.urgency, TriggerID: e.triggerID})
	}
	return g.scan(t, out)
}

// GiveUp quarantines a replica after its actuator gave up: the replica
// leaves scheduling and its capacity share is shed from the group until
// Readmit. It applies to a replica in any non-quarantined state (a
// queued entry is dropped; a down replica stops counting against the
// budget).
func (g *Governor) GiveUp(t float64, replica int, errText string) []Transition {
	if replica < 0 || replica >= len(g.st) || g.st[replica] == stateQuarantined {
		return nil
	}
	grp := g.group[replica]
	switch g.st[replica] {
	case stateDown:
		g.down[grp]--
	case stateQueued:
		qi := g.find(replica)
		g.queue = append(g.queue[:qi], g.queue[qi+1:]...)
	}
	g.st[replica] = stateQuarantined
	g.quar[grp]++
	g.stats.Quarantines++
	out := []Transition{{Op: OpQuarantine, Time: t, Replica: replica,
		Reason: errText, TriggerID: g.lastTID[replica]}}
	return g.scan(t, out)
}

// Readmit returns a recovered replica to scheduling, restoring its
// capacity share.
func (g *Governor) Readmit(t float64, replica int) []Transition {
	if replica < 0 || replica >= len(g.st) || g.st[replica] != stateQuarantined {
		return nil
	}
	grp := g.group[replica]
	g.quar[grp]--
	g.st[replica] = stateIdle
	g.deferUntil[replica] = 0
	g.lastTID[replica] = 0
	g.stats.Readmits++
	out := []Transition{{Op: OpReadmit, Time: t, Replica: replica}}
	return g.scan(t, out)
}

// Tick re-evaluates the queue at time t: deadline windows may have
// expired and waiting entries may have crossed the starvation latch.
// Callers schedule ticks at NextWake times.
func (g *Governor) Tick(t float64) []Transition {
	return g.scan(t, nil)
}

// NextWake returns the earliest future time at which the passage of
// time alone could change a scheduling decision (a deadline horizon
// expiring or an entry crossing the starvation latch), or +Inf when no
// queued entry is waiting on time. Event-driven callers schedule a Tick
// there.
func (g *Governor) NextWake(now float64) float64 {
	wake := math.Inf(1)
	for i := range g.queue {
		e := &g.queue[i]
		if e.escalated {
			continue
		}
		if d := g.deferUntil[e.replica]; d > now && d < wake {
			wake = d
		}
		if g.cfg.MaxDefer > 0 {
			if l := e.enqueued + g.cfg.MaxDefer; l > now && l < wake {
				wake = l
			}
		}
	}
	return wake
}

// find returns the queue index of the replica's entry; the caller
// guarantees one exists (state == stateQueued).
func (g *Governor) find(replica int) int {
	for i := range g.queue {
		if g.queue[i].replica == replica {
			return i
		}
	}
	return -1
}

// oldestWaiting returns the index of the oldest non-escalated entry, or
// -1 when every entry is already escalated.
func (g *Governor) oldestWaiting() int {
	best := -1
	for i := range g.queue {
		e := &g.queue[i]
		if e.escalated {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := &g.queue[best]
		if e.enqueued < b.enqueued || (!(e.enqueued > b.enqueued) && e.replica < b.replica) {
			best = i
		}
	}
	return best
}

// tierFor selects the action tier for a request level: the highest-
// MinSeverity tier at or below the level's severity.
func (g *Governor) tierFor(level int) Tier {
	s := core.Severity(level, g.cfg.TriggerLevel)
	pick := g.cfg.Tiers[0]
	for _, tier := range g.cfg.Tiers[1:] {
		if s >= tier.MinSeverity {
			pick = tier
		}
	}
	return pick
}

// scan is the dispatch loop: it applies the starvation latch, then
// repeatedly picks the highest-priority eligible entry and starts it,
// until the queue is drained or every remaining entry is blocked.
// Blocking decisions are journaled as defer transitions — once per
// reason change per entry, and only for the first blocked entry of a
// group under a group-wide reason — so journals record why nothing
// started without recording it again at every event.
func (g *Governor) scan(t float64, out []Transition) []Transition {
	// Starvation latch: escalate entries that have waited past MaxDefer.
	if g.cfg.MaxDefer > 0 {
		for i := range g.queue {
			e := &g.queue[i]
			if !e.escalated && t-e.enqueued >= g.cfg.MaxDefer {
				e.escalated = true
				e.lastReason = ""
				g.stats.Escalated++
				out = append(out, Transition{Op: OpCoalesce, Time: t, Replica: e.replica,
					Reason: ReasonMaxDefer, Level: e.level, Fill: e.fill, Count: e.count,
					Urgency: g.effUrgency(e, t), TriggerID: e.triggerID})
			}
		}
	}
	for {
		pick := -1
		for i := range g.groupBlocked {
			g.groupBlocked[i] = false
		}
		for _, qi := range g.order(t) {
			e := &g.queue[qi]
			grp := g.group[e.replica]
			if g.groupBlocked[grp] {
				continue
			}
			reason, groupWide := g.blocked(e, grp, t)
			if reason == "" {
				pick = qi
				break
			}
			if groupWide {
				g.groupBlocked[grp] = true
			}
			if e.lastReason != reason {
				e.lastReason = reason
				e.deferrals++
				g.stats.Deferrals++
				out = append(out, Transition{Op: OpDefer, Time: t, Replica: e.replica,
					Reason: reason, Level: e.level, Fill: e.fill, Count: e.deferrals,
					TriggerID: e.triggerID})
			}
		}
		if pick < 0 {
			return out
		}
		e := g.queue[pick]
		g.queue = append(g.queue[:pick], g.queue[pick+1:]...)
		grp := g.group[e.replica]
		g.st[e.replica] = stateDown
		g.down[grp]++
		if g.down[grp] > g.maxDown[grp] {
			g.maxDown[grp] = g.down[grp]
		}
		g.deferUntil[e.replica] = 0
		g.lastLevel[e.replica] = e.level
		g.lastFill[e.replica] = e.fill
		g.lastTID[e.replica] = e.triggerID
		tier := g.tierFor(e.level)
		pause := tier.PauseFrac * g.cfg.FullPause
		if pause < 0 {
			pause = 0 // negative FullPause spells instantaneous restarts
		}
		g.stats.Starts++
		out = append(out, Transition{Op: OpStart, Time: t, Replica: e.replica,
			Level: e.level, Fill: e.fill, Tier: tier, Pause: pause,
			Urgency: g.effUrgency(&e, t), TriggerID: e.triggerID})
	}
}

// blocked reports why the entry cannot start now ("" when it can) and
// whether the reason blocks the whole group (budget, floor) or just
// this replica (deadline). Escalated entries bypass the deferral
// windows; only the capacity budget still binds them. Like effUrgency
// it runs once per queue entry per scan and must not allocate.
//
//lint:hotpath
func (g *Governor) blocked(e *entry, grp int, t float64) (reason string, groupWide bool) {
	if g.down[grp] >= g.budget(grp) {
		return ReasonBudget, true
	}
	if e.escalated {
		return "", false
	}
	if t < g.deferUntil[e.replica] {
		return ReasonDeadline, false
	}
	if f := g.cfg.CapacityFloor; f > 0 {
		avail := g.total[grp] - g.quar[grp]
		if avail > 1 && float64(avail-g.down[grp]-1) < f*float64(avail) {
			return ReasonFloor, true
		}
	}
	return "", false
}

// order returns the queue indices in dispatch order: escalated entries
// first, then by effective urgency (descending), then by arrival time,
// then by replica id — a total order, so scheduling is deterministic.
func (g *Governor) order(t float64) []int {
	idx := g.orderBuf[:0]
	for i := range g.queue {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := &g.queue[idx[a]], &g.queue[idx[b]]
		if ea.escalated != eb.escalated {
			return ea.escalated
		}
		ua, ub := g.effUrgency(ea, t), g.effUrgency(eb, t)
		if ua > ub {
			return true
		}
		if ua < ub {
			return false
		}
		if ea.enqueued < eb.enqueued {
			return true
		}
		if ea.enqueued > eb.enqueued {
			return false
		}
		return ea.replica < eb.replica
	})
	g.orderBuf = idx
	return idx
}
