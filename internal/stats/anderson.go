package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the two-sample Anderson-Darling test (Pettitt
// 1976; Scholz & Stephens 1987, k=2 with the tie-aware discrete
// midrank-free A²kN form). Unlike KS it weights the distribution tails,
// which is where the M/M/c response-time mixture and the simulator most
// plausibly disagree, so the conformance oracles run it alongside KS
// and chi-square.

// ADTwoSampleStatistic returns the two-sample Anderson-Darling
// statistic A² for samples xs and ys. Ties within and across the
// samples are handled with the Scholz-Stephens discrete (right-
// continuous ECDF) form, which reduces to the classic Pettitt formula
//
//	A² = 1/(m·n) · Σ_{i=1}^{N-1} (M_i·N - m·i)² / (i·(N-i))
//
// when all pooled values are distinct. Inputs must be non-empty and
// free of NaN; ±Inf values are rejected because they carry no ordering
// information beyond the extremes and usually indicate an upstream bug.
func ADTwoSampleStatistic(xs, ys []float64) (float64, error) {
	m, n := len(xs), len(ys)
	if m == 0 || n == 0 {
		return 0, fmt.Errorf("stats: Anderson-Darling needs two non-empty samples, got %d and %d", m, n)
	}
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("stats: Anderson-Darling sample contains %v", x)
		}
	}
	for _, y := range ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			return 0, fmt.Errorf("stats: Anderson-Darling sample contains %v", y)
		}
	}
	N := m + n
	pooled := make([]float64, 0, N)
	pooled = append(pooled, xs...)
	pooled = append(pooled, ys...)
	sort.Float64s(pooled)

	sx := append([]float64(nil), xs...)
	sort.Float64s(sx)

	// Walk the distinct pooled values z_j with multiplicities l_j.
	// B_j = number of pooled values <= z_j, M_j = number of xs <= z_j.
	// The discrete-form statistic (Scholz & Stephens eq. 7, k=2,
	// weighted by each sample's size) sums over all j with B_j < N.
	a2 := 0.0
	xi := 0
	var bj, mj int
	for j := 0; j < N; {
		z := pooled[j]
		lj := 1
		for j+lj < N && !(pooled[j+lj] > z) {
			lj++
		}
		bj += lj
		for xi < m && !(sx[xi] > z) {
			xi++
		}
		mj = xi
		j += lj
		if bj == N {
			break
		}
		fb, fn := float64(bj), float64(N)
		w := float64(lj) / fn / (fb * (fn - fb))
		// Contribution of sample 1 (xs) and sample 2 (ys). With
		// M2_j = B_j - M_j the second term mirrors the first.
		d1 := fn*float64(mj) - float64(m)*fb
		d2 := fn*float64(bj-mj) - float64(n)*fb
		a2 += w * (d1*d1/float64(m) + d2*d2/float64(n))
	}
	return a2, nil
}

// ADPValue returns the asymptotic upper-tail p-value for a two-sample
// Anderson-Darling statistic. Pettitt (1976) showed the two-sample A²
// converges to the same limit law as the fully specified one-sample
// statistic, whose CDF we evaluate with Marsaglia & Marsaglia's (2004)
// adinf approximation (absolute error below 2e-6 across the support).
// The limit law puts its 95th percentile at A² = 2.492 and its 99th at
// 3.857.
func ADPValue(a2 float64) (float64, error) {
	if math.IsNaN(a2) {
		return 0, fmt.Errorf("stats: Anderson-Darling p-value of NaN statistic")
	}
	if a2 <= 0 {
		// The statistic is a sum of squares; non-positive values can
		// only come from rounding, and sit at the bottom of the
		// support where the CDF vanishes.
		return 1, nil
	}
	var cdf float64
	if a2 < 2 {
		cdf = math.Exp(-1.2337141/a2) / math.Sqrt(a2) *
			(2.00012 + (0.247105-(0.0649821-(0.0347962-(0.0116720-0.00168691*a2)*a2)*a2)*a2)*a2)
	} else {
		cdf = math.Exp(-math.Exp(1.0776 - (2.30695-(0.43424-(0.082433-(0.008056-0.0003146*a2)*a2)*a2)*a2)*a2))
	}
	p := 1 - cdf
	return math.Min(math.Max(p, 0), 1), nil
}

// ADTwoSampleTest runs the two-sample Anderson-Darling test and reports
// whether the samples are consistent with a common distribution at
// significance level alpha: ok is false when that hypothesis is
// rejected.
func ADTwoSampleTest(xs, ys []float64, alpha float64) (a2, p float64, ok bool, err error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, false, fmt.Errorf("stats: significance level %v outside (0,1)", alpha)
	}
	a2, err = ADTwoSampleStatistic(xs, ys)
	if err != nil {
		return 0, 0, false, err
	}
	p, err = ADPValue(a2)
	if err != nil {
		return 0, 0, false, err
	}
	return a2, p, p >= alpha, nil
}
