package stats

import (
	"math"
	"math/rand"
	"testing"
)

// Known chi-square quantiles: P(X² <= q) for the tabulated 95th/99th
// percentile points of standard references.
func TestChiSquareCDFKnownQuantiles(t *testing.T) {
	cases := []struct {
		x    float64
		df   int
		want float64
	}{
		{3.841459, 1, 0.95},
		{5.991465, 2, 0.95},
		{18.307038, 10, 0.95},
		{6.634897, 1, 0.99},
		{23.209251, 10, 0.99},
		{124.342113, 100, 0.95},
	}
	for _, c := range cases {
		got, err := ChiSquareCDF(c.x, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-6 {
			t.Errorf("ChiSquareCDF(%v, %d) = %v, want %v", c.x, c.df, got, c.want)
		}
	}
}

// GammaP has closed forms at half-integer and integer shapes:
// P(1/2, x) = erf(sqrt(x)) and P(1, x) = 1 - e^-x.
func TestGammaPClosedForms(t *testing.T) {
	for _, x := range []float64{1e-6, 0.01, 0.3, 1, 2.5, 10, 40} {
		p, err := GammaP(0.5, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := math.Erf(math.Sqrt(x)); math.Abs(p-want) > 1e-12 {
			t.Errorf("GammaP(0.5, %v) = %v, want erf(sqrt(x)) = %v", x, p, want)
		}
		p, err = GammaP(1, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := 1 - math.Exp(-x); math.Abs(p-want) > 1e-12 {
			t.Errorf("GammaP(1, %v) = %v, want 1-e^-x = %v", x, p, want)
		}
	}
}

func TestGammaPQComplementAndEdges(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 17} {
		for _, x := range []float64{0.01, 0.9, a, a + 5, 60} {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatal(err)
			}
			q, err := GammaQ(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(p+q-1) > 1e-12 {
				t.Errorf("P+Q = %v at a=%v x=%v", p+q, a, x)
			}
		}
	}
	if p, err := GammaP(2, 0); err != nil || p != 0 {
		t.Errorf("GammaP(2, 0) = %v, %v; want 0, nil", p, err)
	}
	if p, err := GammaP(2, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaP(2, +Inf) = %v, %v; want 1, nil", p, err)
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, -0.5}, {math.NaN(), 1}, {1, math.NaN()}, {math.Inf(1), 1}} {
		if _, err := GammaP(bad[0], bad[1]); err == nil {
			t.Errorf("GammaP(%v, %v) accepted", bad[0], bad[1])
		}
	}
}

func TestChiSquareGOFHandComputed(t *testing.T) {
	// obs = [8, 12] against fair halves: E = 10 each, stat = 2*(2^2)/10
	// = 0.8, df = 1, p = Q(1/2, 0.4) = erfc(sqrt(0.4)).
	stat, df, p, err := ChiSquareGOF([]int64{8, 12}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stat-0.8) > 1e-12 || df != 1 {
		t.Fatalf("stat = %v df = %d, want 0.8, 1", stat, df)
	}
	if want := math.Erfc(math.Sqrt(0.4)); math.Abs(p-want) > 1e-12 {
		t.Fatalf("p = %v, want erfc(sqrt(0.4)) = %v", p, want)
	}
	// A perfect fit has statistic 0 and p-value 1.
	_, _, p, err = ChiSquareGOF([]int64{25, 25, 50}, []float64{0.25, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("perfect fit p = %v, want 1", p)
	}
}

func TestChiSquareGOFErrors(t *testing.T) {
	if _, _, _, err := ChiSquareGOF([]int64{5}, []float64{1}); err == nil {
		t.Error("single category accepted")
	}
	if _, _, _, err := ChiSquareGOF([]int64{5, 5}, []float64{0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, _, err := ChiSquareGOF([]int64{-1, 5}, []float64{0.5, 0.5}); err == nil {
		t.Error("negative count accepted")
	}
	if _, _, _, err := ChiSquareGOF([]int64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, _, err := ChiSquareGOF([]int64{5, 5}, []float64{0.5, 0.6}); err == nil {
		t.Error("probabilities summing past 1 accepted")
	}
	if _, _, _, err := ChiSquareGOF([]int64{5, 5}, []float64{0, 1}); err == nil {
		t.Error("zero expected probability accepted")
	}
}

func TestBinCounts(t *testing.T) {
	counts, err := BinCounts([]float64{-3, 0, 0.5, 1, 1.5, 99}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// (-inf,0]: -3, 0. (0,1]: 0.5, 1. (1,inf): 1.5, 99.
	want := []int64{2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if _, err := BinCounts([]float64{1}, nil); err == nil {
		t.Error("no edges accepted")
	}
	if _, err := BinCounts([]float64{1}, []float64{2, 2}); err == nil {
		t.Error("non-increasing edges accepted")
	}
	if _, err := BinCounts([]float64{math.NaN()}, []float64{0}); err == nil {
		t.Error("NaN observation accepted")
	}
}

// A large N(0,1) sample tested against its own distribution should be
// accepted; a shifted one should be rejected.
func TestChiSquareTestPower(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	xs := make([]float64, 8_000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// 20 equiprobable cells from the standard normal quantiles.
	edges := make([]float64, 19)
	for i := range edges {
		edges[i] = StdNormQuantile(float64(i+1) / 20)
	}
	_, p, ok, err := ChiSquareTest(xs, edges, stdNormCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("true distribution rejected (p=%v)", p)
	}
	shifted := make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = x + 0.15
	}
	_, p, ok, err = ChiSquareTest(shifted, edges, stdNormCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("shifted distribution accepted (p=%v)", p)
	}
}
