package stats

import (
	"fmt"
	"math"

	"rejuv/internal/num"
)

// Autocorrelation returns the lag-k sample autocorrelation coefficient of
// xs using the estimator of Shumway & Stoffer (2000, p. 26), the one the
// paper applies to its response-time series:
//
//	gamma_k = sum_{i=1}^{n-k} (x_{i+k} - xbar)(x_i - xbar) / sum (x_i - xbar)^2
//
// It returns an error when lag is out of range or the series is constant
// (zero variance), rather than a NaN that would poison downstream math.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	n := len(xs)
	if lag < 1 || lag >= n {
		return 0, fmt.Errorf("stats: lag %d out of range for series of length %d", lag, n)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var cov, den float64
	for i, x := range xs {
		d := x - mean
		den += d * d
		if i+lag < n {
			cov += (xs[i+lag] - mean) * d
		}
	}
	if num.Zero(den) {
		return 0, fmt.Errorf("stats: autocorrelation of constant series is undefined")
	}
	return cov / den, nil
}

// AutocorrelationSignificant reports whether the lag-k autocorrelation of
// a series of the given length differs significantly from zero at the 95%
// confidence level, using the paper's threshold 1.96/sqrt(n).
func AutocorrelationSignificant(coeff float64, n int) bool {
	return math.Abs(coeff) > 1.96/math.Sqrt(float64(n))
}

// ACF returns the autocorrelation function of xs for lags 1..maxLag.
func ACF(xs []float64, maxLag int) ([]float64, error) {
	if maxLag < 1 || maxLag >= len(xs) {
		return nil, fmt.Errorf("stats: maxLag %d out of range for series of length %d", maxLag, len(xs))
	}
	out := make([]float64, maxLag)
	for k := 1; k <= maxLag; k++ {
		c, err := Autocorrelation(xs, k)
		if err != nil {
			return nil, err
		}
		out[k-1] = c
	}
	return out, nil
}
