package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormQuantileKnownValues(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.9, 1.2815515655446004},
		{0.99, 2.3263478740408408},
		{0.999, 3.090232306167813},
		{1e-10, -6.361340902404056},
	}
	for _, tt := range tests {
		got := StdNormQuantile(tt.p)
		if math.Abs(got-tt.want) > 1e-12*math.Max(1, math.Abs(tt.want)) {
			t.Errorf("StdNormQuantile(%v) = %.15f, want %.15f", tt.p, got, tt.want)
		}
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	// Property: CDF(Quantile(p)) == p across the unit interval.
	if err := quick.Check(func(raw uint32) bool {
		p := (float64(raw) + 1) / (float64(math.MaxUint32) + 2)
		q := StdNormQuantile(p)
		back := NormCDF(q, 0, 1)
		return math.Abs(back-p) < 1e-12
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.96, 0, 1, 0.9750021048517795},
		{-1, 0, 1, 0.15865525393145707},
		{10, 5, 5, 0.8413447460685429},
	}
	for _, tt := range tests {
		got := NormCDF(tt.x, tt.mu, tt.sigma)
		if math.Abs(got-tt.want) > 1e-14 {
			t.Errorf("NormCDF(%v,%v,%v) = %.16f, want %.16f", tt.x, tt.mu, tt.sigma, got, tt.want)
		}
	}
}

func TestNormPDFIntegratesToOne(t *testing.T) {
	// Trapezoid over +/- 10 sigma.
	const steps = 20000
	mu, sigma := 3.0, 2.0
	lo, hi := mu-10*sigma, mu+10*sigma
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * NormPDF(lo+float64(i)*h, mu, sigma)
	}
	if integral := sum * h; math.Abs(integral-1) > 1e-10 {
		t.Fatalf("pdf integrates to %v, want 1", integral)
	}
}

func TestNormPDFSymmetry(t *testing.T) {
	for _, d := range []float64{0.1, 1, 2.5, 7} {
		l, r := NormPDF(5-d, 5, 2), NormPDF(5+d, 5, 2)
		if math.Abs(l-r) > 1e-16 {
			t.Errorf("pdf asymmetric at +/-%v: %v vs %v", d, l, r)
		}
	}
}

func TestNormPDFIsDerivativeOfCDF(t *testing.T) {
	const h = 1e-6
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 4} {
		num := (NormCDF(x+h, 0, 1) - NormCDF(x-h, 0, 1)) / (2 * h)
		if math.Abs(num-NormPDF(x, 0, 1)) > 1e-8 {
			t.Errorf("d/dx CDF at %v = %v, pdf = %v", x, num, NormPDF(x, 0, 1))
		}
	}
}

func TestNormQuantileScaling(t *testing.T) {
	// Quantile of N(mu, sigma) = mu + sigma * standard quantile.
	got := NormQuantile(0.975, 5, 5)
	want := 5 + 5*StdNormQuantile(0.975)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("NormQuantile = %v, want %v", got, want)
	}
}

func TestNormalPanicsOnBadArgs(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"pdf zero sigma", func() { NormPDF(0, 0, 0) }},
		{"cdf negative sigma", func() { NormCDF(0, 0, -1) }},
		{"quantile p=0", func() { StdNormQuantile(0) }},
		{"quantile p=1", func() { StdNormQuantile(1) }},
		{"quantile sigma", func() { NormQuantile(0.5, 0, 0) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tt.name)
				}
			}()
			tt.f()
		})
	}
}
