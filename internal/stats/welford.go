package stats

import "math"

// Welford accumulates count, mean, and variance of a stream in one pass
// using Welford's numerically stable recurrence. The zero value is an
// empty accumulator ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.mean, w.m2 = x, 0
		w.min, w.max = x, x
		return
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if x < w.min {
		w.min = x
	}
	if x > w.max {
		w.max = x
	}
}

// AddN folds x into the accumulator n times (n >= 0) without loss of
// stability, used when identical observations arrive in batches.
func (w *Welford) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		w.Add(x)
	}
}

// Merge folds another accumulator into w using Chan et al.'s parallel
// combination rule, so per-replication accumulators can be pooled.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean, or NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// PopVar returns the population (biased) variance, or NaN when empty.
func (w *Welford) PopVar() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation, or NaN when empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN when empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// Reset returns the accumulator to its empty state.
func (w *Welford) Reset() { *w = Welford{} }

// StdErr returns the standard error of the mean, or NaN with fewer than
// two observations.
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}
