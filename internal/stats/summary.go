package stats

import (
	"fmt"
	"math"

	"rejuv/internal/num"
)

// Summary is a compact description of a sample, convenient for tables.
type Summary struct {
	N      int64
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return Summary{N: w.N(), Mean: w.Mean(), StdDev: w.StdDev(), Min: w.Min(), Max: w.Max()}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// MeanCI returns a normal-approximation confidence interval for the mean
// of the accumulated sample at the given confidence level (e.g. 0.95).
// With fewer than two observations both bounds are NaN.
func MeanCI(w *Welford, level float64) (lo, hi float64) {
	if w.N() < 2 || level <= 0 || level >= 1 {
		return math.NaN(), math.NaN()
	}
	z := StdNormQuantile(0.5 + level/2)
	h := z * w.StdErr()
	return w.Mean() - h, w.Mean() + h
}

// RelDiff returns |a-b| / max(|a|,|b|), a symmetric relative difference
// used by experiment reports when comparing measured values to the
// paper's. It returns 0 when both are zero.
func RelDiff(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if num.Zero(den) {
		return 0
	}
	return math.Abs(a-b) / den
}
