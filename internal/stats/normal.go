// Package stats provides the statistical machinery the rejuvenation
// algorithms and experiments rely on: streaming moments (Welford),
// quantiles, histograms, autocorrelation, confidence intervals, the
// standard normal distribution functions (density, CDF, inverse CDF),
// and goodness-of-fit tests (Kolmogorov–Smirnov, χ² over equiprobable
// cells, two-sample Anderson–Darling) built on the regularized
// incomplete gamma functions.
//
// Two constraints shape the package. First, determinism: it sits
// inside rejuvlint's determinism scope because its outputs become
// committed results/ numbers and conformance verdicts — estimators are
// streaming or order-stable, and nothing here reads a clock or global
// RNG. Second, self-containment: the paper's evaluation needs exactly
// these estimators and no more, so the implementations are small,
// auditable translations of the textbook formulas (the nontrivial
// ones cite their sources) rather than bindings to a statistics
// library whose internals we could not pin. The Welford accumulator
// supports Merge so the parallel replication engine can fold
// per-worker state in deterministic order.
package stats

import "math"

// NormPDF returns the density of the Normal(mu, sigma^2) distribution at x.
// It panics if sigma <= 0.
func NormPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		panic("stats: NormPDF sigma must be positive")
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormCDF returns P(X <= x) for X ~ Normal(mu, sigma^2).
// It panics if sigma <= 0.
func NormCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		panic("stats: NormCDF sigma must be positive")
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormQuantile returns the p-quantile of the Normal(mu, sigma^2)
// distribution. It panics if p is outside (0, 1) or sigma <= 0.
func NormQuantile(p, mu, sigma float64) float64 {
	if sigma <= 0 {
		panic("stats: NormQuantile sigma must be positive")
	}
	return mu + sigma*StdNormQuantile(p)
}

// StdNormQuantile returns the p-quantile of the standard normal
// distribution using Wichura's algorithm AS 241 (PPND16), accurate to
// about 1e-15 over the full open interval. It panics if p is outside
// (0, 1), since quantiles at 0 and 1 are infinite.
func StdNormQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: StdNormQuantile p must be in (0,1)")
	}
	q := p - 0.5
	if math.Abs(q) <= 0.425 {
		// Central region: rational approximation in q^2.
		r := 0.180625 - q*q
		num := (((((((2.5090809287301226727e3*r+3.3430575583588128105e4)*r+
			6.7265770927008700853e4)*r+4.5921953931549871457e4)*r+
			1.3731693765509461125e4)*r+1.9715909503065514427e3)*r+
			1.3314166789178437745e2)*r + 3.3871328727963666080e0)
		den := (((((((5.2264952788528545610e3*r+2.8729085735721942674e4)*r+
			3.9307895800092710610e4)*r+2.1213794301586595867e4)*r+
			5.3941960214247511077e3)*r+6.8718700749205790830e2)*r+
			4.2313330701600911252e1)*r + 1.0)
		return q * num / den
	}
	// Tail regions: rational approximations in sqrt(-log(tail)).
	r := p
	if q > 0 {
		r = 1 - p
	}
	r = math.Sqrt(-math.Log(r))
	var x float64
	if r <= 5 {
		r -= 1.6
		num := (((((((7.74545014278341407640e-4*r+2.27238449892691845833e-2)*r+
			2.41780725177450611770e-1)*r+1.27045825245236838258e0)*r+
			3.64784832476320460504e0)*r+5.76949722146069140550e0)*r+
			4.63033784615654529590e0)*r + 1.42343711074968357734e0)
		den := (((((((1.05075007164441684324e-9*r+5.47593808499534494600e-4)*r+
			1.51986665636164571966e-2)*r+1.48103976427480074590e-1)*r+
			6.89767334985100004550e-1)*r+1.67638483018380384940e0)*r+
			2.05319162663775882187e0)*r + 1.0)
		x = num / den
	} else {
		r -= 5
		num := (((((((2.01033439929228813265e-7*r+2.71155556874348757815e-5)*r+
			1.24266094738807843860e-3)*r+2.65321895265761230930e-2)*r+
			2.96560571828504891230e-1)*r+1.78482653991729133580e0)*r+
			5.46378491116411436990e0)*r + 6.65790464350110377720e0)
		den := (((((((2.04426310338993978564e-15*r+1.42151175831644588870e-7)*r+
			1.84631831751005468180e-5)*r+7.86869131145613259100e-4)*r+
			1.48753612908506148525e-2)*r+1.36929880922735805310e-1)*r+
			5.99832206555887937690e-1)*r + 1.0)
		x = num / den
	}
	if q < 0 {
		return -x
	}
	return x
}
