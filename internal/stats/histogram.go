package stats

import (
	"fmt"
	"math"
)

// Histogram counts observations in equal-width bins over [Lo, Hi), with
// overflow counters for observations outside the range. It is used to
// estimate the empirical density of simulated response times for
// comparison with the analytical densities of Fig. 5.
type Histogram struct {
	Lo, Hi   float64
	Counts   []int64
	Under    int64
	Over     int64
	binWidth float64
	total    int64
}

// NewHistogram returns a histogram with the given bin count over [lo, hi).
// It panics on invalid bounds or a non-positive bin count, which are
// programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if !(lo < hi) || bins <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int64, bins),
		binWidth: (hi - lo) / float64(bins),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case math.IsNaN(x):
		// NaN observations count toward the total but no bin; surfacing
		// them as underflow would misattribute them to the left tail.
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.binWidth)
		if i >= len(h.Counts) { // guard against float rounding at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range
// ones.
func (h *Histogram) Total() int64 { return h.total }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return h.binWidth }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}

// Density returns the estimated probability density at each bin center:
// count / (total * width). The densities integrate to the in-range
// probability mass.
func (h *Histogram) Density() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	norm := 1 / (float64(h.total) * h.binWidth)
	for i, c := range h.Counts {
		out[i] = float64(c) * norm
	}
	return out
}

// CDFAt returns the empirical probability of an observation < x,
// resolving within-bin position linearly.
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if x <= h.Lo {
		// Below the tracked range the within-mass position is unknown;
		// attribute the full underflow mass by convention.
		return float64(h.Under) / float64(h.total)
	}
	cum := float64(h.Under)
	for i, c := range h.Counts {
		binHi := h.Lo + float64(i+1)*h.binWidth
		if x < binHi {
			frac := (x - (binHi - h.binWidth)) / h.binWidth
			return (cum + frac*float64(c)) / float64(h.total)
		}
		cum += float64(c)
	}
	return cum / float64(h.total)
}

// Reset clears all counters.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.Under, h.Over, h.total = 0, 0, 0
}
