package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMoments computes mean and unbiased variance directly, as the
// reference for the streaming implementation.
func naiveMoments(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, math.NaN()
	}
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	return mean, variance / float64(len(xs)-1)
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 1e6 // offset stresses stability
			w.Add(xs[i])
		}
		mean, variance := naiveMoments(xs)
		if math.Abs(w.Mean()-mean) > 1e-6 {
			t.Fatalf("trial %d: mean %v, naive %v", trial, w.Mean(), mean)
		}
		if math.Abs(w.Var()-variance) > 1e-4*variance+1e-9 {
			t.Fatalf("trial %d: var %v, naive %v", trial, w.Var(), variance)
		}
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Var()) || !math.IsNaN(w.Min()) {
		t.Fatal("empty accumulator must report NaN moments")
	}
	w.Add(7)
	if w.Mean() != 7 || w.Min() != 7 || w.Max() != 7 || w.N() != 1 {
		t.Fatalf("single observation: mean=%v min=%v max=%v n=%d", w.Mean(), w.Min(), w.Max(), w.N())
	}
	if !math.IsNaN(w.Var()) {
		t.Fatal("variance of one observation must be NaN")
	}
	if w.PopVar() != 0 {
		t.Fatalf("population variance of one observation = %v, want 0", w.PopVar())
	}
}

func TestWelfordMinMax(t *testing.T) {
	var w Welford
	for _, x := range []float64{3, -1, 4, -1, 5, -9, 2} {
		w.Add(x)
	}
	if w.Min() != -9 || w.Max() != 5 {
		t.Fatalf("min=%v max=%v, want -9 and 5", w.Min(), w.Max())
	}
}

func TestWelfordMergeEquivalentToSequential(t *testing.T) {
	// Property: merging two accumulators equals accumulating the
	// concatenation.
	bounded := func(xs []float64) bool {
		for _, x := range xs {
			// Extreme magnitudes overflow any d*d computation — naive or
			// streaming — so the property is only meaningful below ~1e150.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(a, b []float64) bool {
		if !bounded(a) || !bounded(b) {
			return true // skip inputs outside the supported domain
		}
		var wa, wb, wAll Welford
		for _, x := range a {
			wa.Add(x)
			wAll.Add(x)
		}
		for _, x := range b {
			wb.Add(x)
			wAll.Add(x)
		}
		wa.Merge(wb)
		if wa.N() != wAll.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(wAll.Mean()))
		if math.Abs(wa.Mean()-wAll.Mean()) > 1e-9*scale {
			return false
		}
		if wa.N() >= 2 {
			vs := math.Max(1, wAll.Var())
			if math.Abs(wa.Var()-wAll.Var()) > 1e-6*vs {
				return false
			}
		}
		return wa.Min() == wAll.Min() && wa.Max() == wAll.Max()
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(2)
	want := a
	a.Merge(b) // merging empty changes nothing
	if a != want {
		t.Fatalf("merge with empty changed state: %+v != %+v", a, want)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 1.5 {
		t.Fatalf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Add(5)
	w.Reset()
	if w.N() != 0 || !math.IsNaN(w.Mean()) {
		t.Fatal("reset did not clear the accumulator")
	}
}

func TestWelfordAddN(t *testing.T) {
	var a, b Welford
	a.AddN(3, 4)
	for i := 0; i < 4; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() || a.PopVar() != b.PopVar() {
		t.Fatalf("AddN mismatch: %+v vs %+v", a, b)
	}
}

func TestWelfordStdErr(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 2)) // variance 0.25 (roughly)
	}
	want := w.StdDev() / 10
	if math.Abs(w.StdErr()-want) > 1e-12 {
		t.Fatalf("StdErr = %v, want %v", w.StdErr(), want)
	}
}
