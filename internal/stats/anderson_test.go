package stats

import (
	"math"
	"math/rand"
	"testing"
)

// pettittA2 is the classic tie-free two-sample formula
// A² = 1/(mn) Σ_{i=1}^{N-1} (M_i·N - m·i)²/(i·(N-i)), where M_i counts
// how many of the first sample fall among the i smallest pooled values.
// The production ADTwoSampleStatistic must agree exactly with it
// whenever the pooled sample has no ties.
func pettittA2(xs, ys []float64) float64 {
	m, n := len(xs), len(ys)
	N := m + n
	type tag struct {
		v     float64
		first bool
	}
	pooled := make([]tag, 0, N)
	for _, x := range xs {
		pooled = append(pooled, tag{x, true})
	}
	for _, y := range ys {
		pooled = append(pooled, tag{y, false})
	}
	for i := 1; i < N; i++ {
		for j := i; j > 0 && pooled[j].v < pooled[j-1].v; j-- {
			pooled[j], pooled[j-1] = pooled[j-1], pooled[j]
		}
	}
	sum := 0.0
	Mi := 0
	for i := 1; i < N; i++ {
		if pooled[i-1].first {
			Mi++
		}
		d := float64(Mi*N - m*i)
		sum += d * d / float64(i*(N-i))
	}
	return sum / float64(m*n)
}

func TestADMatchesPettittOnTieFreeData(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		m, n := 3+rng.Intn(40), 3+rng.Intn(40)
		xs := make([]float64, m)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for i := range ys {
			ys[i] = rng.NormFloat64() + rng.Float64()
		}
		got, err := ADTwoSampleStatistic(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		want := pettittA2(xs, ys)
		if math.Abs(got-want) > 1e-10*(1+want) {
			t.Fatalf("trial %d: discrete form %v, Pettitt form %v", trial, got, want)
		}
	}
}

func TestADIdenticalSamplesScoreZero(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	ys := []float64{9, 5, 1, 4, 1, 2, 6, 3}
	a2, err := ADTwoSampleStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a2) > 1e-12 {
		t.Fatalf("identical multisets scored A² = %v, want 0", a2)
	}
}

func TestADTiesStayFinite(t *testing.T) {
	xs := []float64{1, 1, 1, 2, 2, 3}
	ys := []float64{1, 2, 2, 2, 3, 3}
	a2, err := ADTwoSampleStatistic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(a2) || math.IsInf(a2, 0) || a2 < 0 {
		t.Fatalf("tied samples scored A² = %v", a2)
	}
}

// The asymptotic limit law puts its 95th percentile at 2.492, its 99th
// at 3.857, and its median near 0.7785 (Anderson & Darling 1952;
// Marsaglia & Marsaglia 2004).
func TestADPValueKnownQuantiles(t *testing.T) {
	cases := []struct {
		a2, want, tol float64
	}{
		{2.492, 0.05, 2e-3},
		{3.857, 0.01, 1e-3},
		{0.7785, 0.50, 5e-3},
		{1.248, 0.25, 1e-2},
	}
	for _, c := range cases {
		p, err := ADPValue(c.a2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-c.want) > c.tol {
			t.Errorf("ADPValue(%v) = %v, want %v ± %v", c.a2, p, c.want, c.tol)
		}
	}
	if p, _ := ADPValue(0); p != 1 {
		t.Errorf("ADPValue(0) = %v, want 1", p)
	}
	if p, _ := ADPValue(50); p < 0 || p > 1e-9 {
		t.Errorf("ADPValue(50) = %v, want ~0", p)
	}
	if _, err := ADPValue(math.NaN()); err == nil {
		t.Error("NaN statistic accepted")
	}
}

func TestADTestAcceptsSameRejectsShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	xs := make([]float64, 3_000)
	ys := make([]float64, 3_000)
	zs := make([]float64, 3_000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		ys[i] = rng.ExpFloat64()
		zs[i] = rng.ExpFloat64() + 0.15
	}
	_, p, ok, err := ADTwoSampleTest(xs, ys, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("same-law samples rejected (p=%v)", p)
	}
	_, p, ok, err = ADTwoSampleTest(xs, zs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("shifted samples accepted (p=%v)", p)
	}
}

func TestADErrors(t *testing.T) {
	if _, err := ADTwoSampleStatistic(nil, []float64{1}); err == nil {
		t.Error("empty first sample accepted")
	}
	if _, err := ADTwoSampleStatistic([]float64{1}, nil); err == nil {
		t.Error("empty second sample accepted")
	}
	if _, err := ADTwoSampleStatistic([]float64{math.NaN()}, []float64{1}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := ADTwoSampleStatistic([]float64{1}, []float64{math.Inf(1)}); err == nil {
		t.Error("Inf accepted")
	}
	if _, _, _, err := ADTwoSampleTest([]float64{1}, []float64{2}, 1.5); err == nil {
		t.Error("alpha outside (0,1) accepted")
	}
}
