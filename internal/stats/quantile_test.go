package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.125, 1.5}, // interpolation between order statistics
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileSingleElement(t *testing.T) {
	for _, p := range []float64{0, 0.3, 1} {
		got, err := Quantile([]float64{42}, p)
		if err != nil || got != 42 {
			t.Fatalf("Quantile single = %v, %v", got, err)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty slice accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("p > 1 accepted")
	}
}

func TestQuantileMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0001; p += 0.01 {
		q, err := Quantile(xs, math.Min(p, 1))
		if err != nil {
			t.Fatal(err)
		}
		if q < prev {
			t.Fatalf("quantile decreased at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	ps := []float64{0.1, 0.5, 0.9, 0.99}
	batch, err := Quantiles(xs, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		single, err := Quantile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Fatalf("Quantiles[%v] = %v, Quantile = %v", p, batch[i], single)
		}
	}
}

func TestMedianOfSortedRange(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	// Shuffle to prove sorting happens internally.
	rand.New(rand.NewSource(16)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	m, err := Median(xs)
	if err != nil || m != 50 {
		t.Fatalf("Median = %v, %v; want 50", m, err)
	}
	if sort.Float64sAreSorted(xs) {
		t.Log("input happened to be sorted after shuffle (unlikely)")
	}
}
