package stats

import (
	"math"
	"math/rand"
	"testing"
)

func stdNormCDF(x float64) float64 { return NormCDF(x, 0, 1) }

func TestKSStatisticPerfectFit(t *testing.T) {
	// A sample placed exactly at the (i+0.5)/n quantiles of the
	// reference has D = 0.5/n, the smallest achievable value.
	const n = 100
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = StdNormQuantile((float64(i) + 0.5) / n)
	}
	d, err := KSStatistic(xs, stdNormCDF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5/n) > 1e-12 {
		t.Fatalf("D = %v, want %v", d, 0.5/n)
	}
}

func TestKSAcceptsTrueDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	xs := make([]float64, 5_000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	d, p, ok, err := KSTest(xs, stdNormCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("true distribution rejected: D=%v p=%v", d, p)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	xs := make([]float64, 5_000)
	for i := range xs {
		xs[i] = rng.NormFloat64() + 0.2 // shifted mean
	}
	d, p, ok, err := KSTest(xs, stdNormCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("shifted distribution accepted: D=%v p=%v", d, p)
	}
}

func TestKSExponentialFit(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = 5 * rng.ExpFloat64()
	}
	expCDF := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-x/5)
	}
	_, p, ok, err := KSTest(xs, expCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("exponential sample rejected against its own CDF (p=%v)", p)
	}
}

func TestKSPValueMonotoneInD(t *testing.T) {
	prev := 1.1
	for _, d := range []float64{0.005, 0.01, 0.02, 0.05, 0.1, 0.3} {
		p, err := KSPValue(d, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev {
			t.Fatalf("p-value rose with D at %v: %v > %v", d, p, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p-value %v outside [0,1]", p)
		}
		prev = p
	}
}

func TestKSPValueEdges(t *testing.T) {
	if p, _ := KSPValue(0, 100); p != 1 {
		t.Fatalf("p(0) = %v, want 1", p)
	}
	if p, _ := KSPValue(1, 100); p != 0 {
		t.Fatalf("p(1) = %v, want 0", p)
	}
	if _, err := KSPValue(0.1, 0); err == nil {
		t.Fatal("zero sample size accepted")
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSStatistic(nil, stdNormCDF); err == nil {
		t.Fatal("empty sample accepted")
	}
	badCDF := func(float64) float64 { return 2 }
	if _, err := KSStatistic([]float64{1}, badCDF); err == nil {
		t.Fatal("invalid reference CDF accepted")
	}
	if _, _, _, err := KSTest([]float64{1}, stdNormCDF, 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}
