package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0, 0.5, 1, 5.5, 9.999} {
		h.Add(x)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d, want 5", h.Total())
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-0.1)
	h.Add(1)
	h.Add(2)
	h.Add(math.NaN())
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under=%d over=%d, want 1 and 2", h.Under, h.Over)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d, want 4 (NaN counts toward total)", h.Total())
	}
}

func TestHistogramDensityIntegratesToInRangeMass(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	h := NewHistogram(0, 5, 50)
	const n = 100_000
	inRange := 0
	for i := 0; i < n; i++ {
		x := rng.ExpFloat64()
		if x >= 0 && x < 5 {
			inRange++
		}
		h.Add(x)
	}
	sum := 0.0
	for _, d := range h.Density() {
		sum += d * h.BinWidth()
	}
	if math.Abs(sum-float64(inRange)/n) > 1e-9 {
		t.Fatalf("density integrates to %v, want %v", sum, float64(inRange)/n)
	}
}

func TestHistogramDensityApproximatesExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	h := NewHistogram(0, 6, 30)
	for i := 0; i < 400_000; i++ {
		h.Add(rng.ExpFloat64())
	}
	dens := h.Density()
	for i := 0; i < 10; i++ { // check the well-populated low bins
		x := h.BinCenter(i)
		want := math.Exp(-x)
		if math.Abs(dens[i]-want)/want > 0.05 {
			t.Fatalf("bin %d density %v, want %v within 5%%", i, dens[i], want)
		}
	}
}

func TestHistogramCDFAt(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for x := 0.5; x < 10; x++ { // one observation per bin center
		h.Add(x)
	}
	if got := h.CDFAt(0); got != 0 {
		t.Fatalf("CDF(0) = %v, want 0", got)
	}
	if got := h.CDFAt(10); got != 1 {
		t.Fatalf("CDF(10) = %v, want 1", got)
	}
	if got := h.CDFAt(5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(5) = %v, want 0.5", got)
	}
	// Monotone.
	prev := -1.0
	for x := -1.0; x <= 11; x += 0.25 {
		c := h.CDFAt(x)
		if c < prev {
			t.Fatalf("CDF decreased at %v: %v < %v", x, c, prev)
		}
		prev = c
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.5)
	h.Add(5)
	h.Reset()
	if h.Total() != 0 || h.Over != 0 || h.Counts[1] != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestHistogramPanicsOnBadConstruction(t *testing.T) {
	tests := []struct {
		name   string
		lo, hi float64
		bins   int
	}{
		{"inverted range", 5, 1, 10},
		{"zero bins", 0, 1, 0},
		{"equal bounds", 2, 2, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) did not panic", tt.lo, tt.hi, tt.bins)
				}
			}()
			NewHistogram(tt.lo, tt.hi, tt.bins)
		})
	}
}

func TestSummaryAndRelDiff(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
	if RelDiff(0, 0) != 0 {
		t.Fatal("RelDiff(0,0) != 0")
	}
	if got := RelDiff(10, 9); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelDiff(10,9) = %v, want 0.1", got)
	}
	if RelDiff(9, 10) != RelDiff(10, 9) {
		t.Fatal("RelDiff not symmetric")
	}
}

func TestMeanCI(t *testing.T) {
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(float64(i%10) - 4.5) // mean 0
	}
	lo, hi := MeanCI(&w, 0.95)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("CI is NaN for a real sample")
	}
	if lo > w.Mean() || hi < w.Mean() {
		t.Fatalf("CI [%v,%v] excludes the mean %v", lo, hi, w.Mean())
	}
	if hi-lo <= 0 {
		t.Fatal("CI has non-positive width")
	}
	var empty Welford
	if lo, _ := MeanCI(&empty, 0.95); !math.IsNaN(lo) {
		t.Fatal("CI of empty accumulator must be NaN")
	}
	if lo, _ := MeanCI(&w, 1.5); !math.IsNaN(lo) {
		t.Fatal("CI with invalid level must be NaN")
	}
}
