package stats

import (
	"fmt"
	"math"
	"sort"

	"rejuv/internal/num"
)

// This file implements the chi-square goodness-of-fit test used by the
// conformance suite to pin the simulator's empirical response-time
// distribution against the paper's closed forms. The chi-square CDF is
// computed from the regularized incomplete gamma function, implemented
// with the classical series/continued-fraction split (Abramowitz &
// Stegun 6.5, evaluated as in Numerical Recipes).

// maxGammaIter bounds the series and continued-fraction iterations of
// the regularized incomplete gamma function; both converge in tens of
// iterations for every argument the tests produce, so hitting the bound
// signals an invalid input rather than slow convergence.
const maxGammaIter = 500

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0. P(a, ·) is the CDF of the
// Gamma(shape a, scale 1) distribution; the chi-square CDF with k
// degrees of freedom is P(k/2, x/2).
func GammaP(a, x float64) (float64, error) {
	p, _, err := regIncGamma(a, x)
	return p, err
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x), computed directly (not as 1-P) when x is in the
// continued-fraction regime, so small tail probabilities keep relative
// accuracy.
func GammaQ(a, x float64) (float64, error) {
	_, q, err := regIncGamma(a, x)
	return q, err
}

// regIncGamma returns both regularized incomplete gamma functions.
// For x < a+1 the series for P converges fastest; otherwise the
// continued fraction for Q does. The other half is obtained by
// complement, which is accurate because the split point keeps the
// directly computed half away from 1.
func regIncGamma(a, x float64) (p, q float64, err error) {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return 0, 0, fmt.Errorf("stats: incomplete gamma of NaN argument (a=%v, x=%v)", a, x)
	case a <= 0 || math.IsInf(a, 0):
		return 0, 0, fmt.Errorf("stats: incomplete gamma shape %v must be positive and finite", a)
	case x < 0:
		return 0, 0, fmt.Errorf("stats: incomplete gamma evaluated at negative x=%v", x)
	case num.Zero(x):
		return 0, 1, nil
	case math.IsInf(x, 1):
		return 1, 0, nil
	}
	if x < a+1 {
		p, err = gammaPSeries(a, x)
		return p, 1 - p, err
	}
	q, err = gammaQContinuedFraction(a, x)
	return 1 - q, q, err
}

// gammaPSeries evaluates P(a, x) by the power series
// γ(a,x) = e^-x x^a Σ_{n>=0} x^n Γ(a)/Γ(a+1+n), valid (and fast) for
// x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxGammaIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			v := sum * math.Exp(-x+a*math.Log(x)-lg)
			return math.Min(math.Max(v, 0), 1), nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma series did not converge (a=%v, x=%v)", a, x)
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz-style continued
// fraction Γ(a,x)/Γ(a) = e^-x x^a / (x+1-a - 1(1-a)/(x+3-a - ...)),
// valid for x >= a+1.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxGammaIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			v := h * math.Exp(-x+a*math.Log(x)-lg)
			return math.Min(math.Max(v, 0), 1), nil
		}
	}
	return 0, fmt.Errorf("stats: incomplete gamma continued fraction did not converge (a=%v, x=%v)", a, x)
}

// ChiSquareCDF returns P(X <= x) for a chi-square random variable with
// df degrees of freedom.
func ChiSquareCDF(x float64, df int) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: chi-square needs positive degrees of freedom, got %d", df)
	}
	if math.IsNaN(x) {
		return 0, fmt.Errorf("stats: chi-square CDF of NaN")
	}
	if x <= 0 {
		return 0, nil
	}
	return GammaP(float64(df)/2, x/2)
}

// ChiSquareGOF runs the chi-square goodness-of-fit test of observed
// category counts against expected category probabilities. It returns
// the statistic Σ (O_i - E_i)²/E_i with E_i = n·probs[i], the degrees
// of freedom k-1, and the upper-tail p-value. Every expected
// probability must be positive and the probabilities must sum to one;
// callers bin continuous samples with ChiSquareBinned.
func ChiSquareGOF(obs []int64, probs []float64) (stat float64, df int, p float64, err error) {
	k := len(obs)
	if k < 2 {
		return 0, 0, 0, fmt.Errorf("stats: chi-square needs at least 2 categories, got %d", k)
	}
	if len(probs) != k {
		return 0, 0, 0, fmt.Errorf("stats: %d observed categories but %d expected probabilities", k, len(probs))
	}
	var n int64
	for i, o := range obs {
		if o < 0 {
			return 0, 0, 0, fmt.Errorf("stats: negative count %d in category %d", o, i)
		}
		n += o
	}
	if n == 0 {
		return 0, 0, 0, fmt.Errorf("stats: chi-square of an empty sample")
	}
	sum := 0.0
	for i, pr := range probs {
		if !(pr > 0) || math.IsInf(pr, 0) {
			return 0, 0, 0, fmt.Errorf("stats: expected probability %v in category %d must be positive and finite", pr, i)
		}
		sum += pr
	}
	if math.Abs(sum-1) > 1e-6 {
		return 0, 0, 0, fmt.Errorf("stats: expected probabilities sum to %v, want 1", sum)
	}
	for i, o := range obs {
		e := float64(n) * probs[i]
		d := float64(o) - e
		stat += d * d / e
	}
	df = k - 1
	p, err = GammaQ(float64(df)/2, stat/2)
	if err != nil {
		return 0, 0, 0, err
	}
	return stat, df, p, nil
}

// BinCounts counts how many values fall into each of the len(edges)+1
// cells defined by the strictly increasing edges: (-inf, edges[0]],
// (edges[0], edges[1]], ..., (edges[last], +inf). It errors on NaN
// values or non-increasing edges.
func BinCounts(xs, edges []float64) ([]int64, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("stats: binning needs at least one edge")
	}
	for i, e := range edges {
		if math.IsNaN(e) {
			return nil, fmt.Errorf("stats: bin edge %d is NaN", i)
		}
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("stats: bin edges must be strictly increasing, got %v after %v", e, edges[i-1])
		}
	}
	counts := make([]int64, len(edges)+1)
	for _, x := range xs {
		if math.IsNaN(x) {
			return nil, fmt.Errorf("stats: binning a NaN observation")
		}
		// First edge >= x: sort.SearchFloat64s finds insertion point for
		// x among the edges, which is exactly the cell index for the
		// (lo, hi] convention when we skip equal edges.
		i := sort.SearchFloat64s(edges, x)
		// SearchFloat64s returns the first index with edges[i] >= x; x
		// equal to an edge belongs to the cell below it.
		counts[i]++
	}
	return counts, nil
}

// ChiSquareBinned bins the sample at the given edges, derives the
// expected cell probabilities from the reference CDF, and runs the
// chi-square goodness-of-fit test. The CDF must be a proper
// distribution function: non-decreasing across the edges with every
// cell receiving positive mass.
func ChiSquareBinned(xs, edges []float64, cdf func(float64) float64) (stat float64, df int, p float64, err error) {
	obs, err := BinCounts(xs, edges)
	if err != nil {
		return 0, 0, 0, err
	}
	probs := make([]float64, len(edges)+1)
	prev := 0.0
	for i, e := range edges {
		f := cdf(e)
		if math.IsNaN(f) || f < 0 || f > 1 || f < prev {
			return 0, 0, 0, fmt.Errorf("stats: reference CDF returned %v at edge %v (previous %v)", f, e, prev)
		}
		probs[i] = f - prev
		prev = f
	}
	probs[len(edges)] = 1 - prev
	return ChiSquareGOF(obs, probs)
}

// ChiSquareTest runs the binned goodness-of-fit test and reports whether
// the sample is consistent with the reference CDF at significance level
// alpha: ok is false when the fit is rejected.
func ChiSquareTest(xs, edges []float64, cdf func(float64) float64, alpha float64) (stat, p float64, ok bool, err error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, false, fmt.Errorf("stats: significance level %v outside (0,1)", alpha)
	}
	stat, _, p, err = ChiSquareBinned(xs, edges, cdf)
	if err != nil {
		return 0, 0, false, err
	}
	return stat, p, p >= alpha, nil
}
