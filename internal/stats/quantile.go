package stats

import (
	"fmt"
	"sort"
)

// Quantile returns the p-quantile of xs using linear interpolation
// between order statistics (type-7 estimator, the R default). The input
// is not modified. It returns an error for an empty slice or p outside
// [0, 1].
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile p=%v outside [0,1]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// Quantiles returns the quantiles of xs at each p in ps, sorting once.
func Quantiles(xs []float64, ps []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stats: quantiles of empty slice")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("stats: quantile p=%v outside [0,1]", p)
		}
		out[i] = quantileSorted(sorted, p)
	}
	return out, nil
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }
