package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutocorrelationIIDNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	g, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g) > 0.02 {
		t.Fatalf("iid series lag-1 autocorrelation = %v, want ~0", g)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// x_t = phi*x_{t-1} + e_t has lag-k autocorrelation phi^k.
	for _, phi := range []float64{0.3, 0.7, -0.5} {
		rng := rand.New(rand.NewSource(8))
		xs := make([]float64, 200_000)
		for i := 1; i < len(xs); i++ {
			xs[i] = phi*xs[i-1] + rng.NormFloat64()
		}
		g1, err := Autocorrelation(xs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g1-phi) > 0.02 {
			t.Errorf("AR(1) phi=%v: lag-1 = %v", phi, g1)
		}
		g2, err := Autocorrelation(xs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(g2-phi*phi) > 0.02 {
			t.Errorf("AR(1) phi=%v: lag-2 = %v, want %v", phi, g2, phi*phi)
		}
	}
}

func TestAutocorrelationPerfect(t *testing.T) {
	// A long alternating series has lag-1 autocorrelation near -1 and
	// lag-2 near +1.
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	g1, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g1 > -0.99 {
		t.Fatalf("alternating series lag-1 = %v, want ~-1", g1)
	}
	g2, err := Autocorrelation(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g2 < 0.99 {
		t.Fatalf("alternating series lag-2 = %v, want ~+1", g2)
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		lag  int
	}{
		{"lag zero", []float64{1, 2, 3}, 0},
		{"lag too large", []float64{1, 2, 3}, 3},
		{"empty", nil, 1},
		{"constant series", []float64{2, 2, 2, 2}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Autocorrelation(tt.xs, tt.lag); err == nil {
				t.Errorf("Autocorrelation(%v, %d) did not error", tt.xs, tt.lag)
			}
		})
	}
}

func TestAutocorrelationSignificant(t *testing.T) {
	// Threshold is 1.96/sqrt(n); n=90,000 gives 0.006533, the paper's value.
	n := 90_000
	threshold := 1.96 / math.Sqrt(float64(n))
	if !AutocorrelationSignificant(threshold*1.01, n) {
		t.Error("value just above threshold not flagged significant")
	}
	if AutocorrelationSignificant(threshold*0.99, n) {
		t.Error("value just below threshold flagged significant")
	}
	if !AutocorrelationSignificant(-threshold*1.01, n) {
		t.Error("negative coefficient beyond threshold not flagged")
	}
}

func TestACF(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	xs := make([]float64, 5000)
	for i := 1; i < len(xs); i++ {
		xs[i] = 0.5*xs[i-1] + rng.NormFloat64()
	}
	acf, err := ACF(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 3 {
		t.Fatalf("ACF returned %d lags, want 3", len(acf))
	}
	for k := 1; k < len(acf); k++ {
		if math.Abs(acf[k]) > math.Abs(acf[k-1])+0.05 {
			t.Fatalf("AR(1) ACF not decaying: %v", acf)
		}
	}
	if _, err := ACF(xs, 0); err == nil {
		t.Fatal("ACF accepted maxLag 0")
	}
}
