package stats

import (
	"math"
	"testing"
)

// FuzzStdNormQuantileRoundTrip checks CDF(Quantile(p)) == p over the
// full open interval, including extreme tails.
func FuzzStdNormQuantileRoundTrip(f *testing.F) {
	f.Add(0.5)
	f.Add(0.975)
	f.Add(1e-12)
	f.Add(1 - 1e-12)
	f.Fuzz(func(t *testing.T, p float64) {
		if !(p > 0 && p < 1) {
			t.Skip()
		}
		q := StdNormQuantile(p)
		if math.IsNaN(q) {
			t.Fatalf("quantile(%v) is NaN", p)
		}
		back := NormCDF(q, 0, 1)
		// Absolute tolerance loosens in the far tails where the CDF
		// saturates in double precision.
		tol := 1e-11
		if p < 1e-9 || p > 1-1e-9 {
			tol = 1e-9
		}
		if math.Abs(back-p) > tol {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, back)
		}
	})
}

// FuzzWelford checks the streaming moments against the naive two-pass
// computation on arbitrary byte-derived samples.
func FuzzWelford(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			t.Skip()
		}
		var w Welford
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b) - 128
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(len(xs) - 1)
		if math.Abs(w.Mean()-mean) > 1e-9 {
			t.Fatalf("mean %v, naive %v", w.Mean(), mean)
		}
		if math.Abs(w.Var()-variance) > 1e-7*(1+variance) {
			t.Fatalf("var %v, naive %v", w.Var(), variance)
		}
	})
}

// FuzzHistogramTotals checks count conservation: every added value lands
// in exactly one of {bins, under, over, NaN-absorbed-by-total}.
func FuzzHistogramTotals(f *testing.F) {
	f.Add([]byte{10, 200, 255, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		h := NewHistogram(50, 200, 7)
		for _, b := range raw {
			h.Add(float64(b))
		}
		var binned int64
		for _, c := range h.Counts {
			binned += c
		}
		if binned+h.Under+h.Over != int64(len(raw)) {
			t.Fatalf("counts %d + under %d + over %d != %d",
				binned, h.Under, h.Over, len(raw))
		}
	})
}

// FuzzGammaPQ checks the regularized incomplete gamma pair over
// arbitrary (a, x): either both calls error identically, or the results
// are in [0,1] and complementary.
func FuzzGammaPQ(f *testing.F) {
	f.Add(0.5, 1.0)
	f.Add(10.0, 2.0)
	f.Add(1e-6, 1e6)
	f.Add(300.0, 300.0)
	f.Fuzz(func(t *testing.T, a, x float64) {
		p, errP := GammaP(a, x)
		q, errQ := GammaQ(a, x)
		if (errP == nil) != (errQ == nil) {
			t.Fatalf("GammaP err=%v but GammaQ err=%v for a=%v x=%v", errP, errQ, a, x)
		}
		if errP != nil {
			return
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("GammaP(%v, %v) = %v outside [0,1]", a, x, p)
		}
		if math.Abs(p+q-1) > 1e-9 {
			t.Fatalf("P+Q = %v for a=%v x=%v", p+q, a, x)
		}
	})
}

// FuzzChiSquareGOF checks the goodness-of-fit test never panics and
// either errors or returns a finite statistic with p in [0,1], on
// byte-derived counts against equiprobable cells.
func FuzzChiSquareGOF(f *testing.F) {
	f.Add([]byte{10, 20, 30})
	f.Add([]byte{0, 0})
	f.Add([]byte{255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		obs := make([]int64, len(raw))
		for i, b := range raw {
			obs[i] = int64(b)
		}
		probs := make([]float64, len(raw))
		for i := range probs {
			probs[i] = 1 / float64(len(raw))
		}
		stat, df, p, err := ChiSquareGOF(obs, probs)
		if err != nil {
			return
		}
		if math.IsNaN(stat) || math.IsInf(stat, 0) || stat < 0 {
			t.Fatalf("statistic %v", stat)
		}
		if df != len(raw)-1 {
			t.Fatalf("df = %d, want %d", df, len(raw)-1)
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("p = %v outside [0,1]", p)
		}
	})
}

// FuzzADTwoSample checks the Anderson-Darling statistic on arbitrary
// byte-derived split samples: it never panics, and on valid inputs the
// statistic is finite and non-negative with p in [0,1]. Raw float bit
// patterns (NaN/Inf payloads) must be rejected with an error, not a
// crash.
func FuzzADTwoSample(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(3))
	f.Add([]byte{7, 7, 7, 7}, uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, split uint8) {
		all := make([]float64, len(raw))
		for i, b := range raw {
			// Mix in a NaN/Inf occasionally via extreme byte values to
			// exercise the validation path.
			switch b {
			case 254:
				all[i] = math.Inf(1)
			case 255:
				all[i] = math.NaN()
			default:
				all[i] = float64(b) / 16
			}
		}
		cut := int(split) % (len(all) + 1)
		xs, ys := all[:cut], all[cut:]
		a2, err := ADTwoSampleStatistic(xs, ys)
		if err != nil {
			return
		}
		if math.IsNaN(a2) || math.IsInf(a2, 0) || a2 < 0 {
			t.Fatalf("A² = %v for xs=%v ys=%v", a2, xs, ys)
		}
		p, err := ADPValue(a2)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Fatalf("p = %v outside [0,1]", p)
		}
	})
}

// FuzzQuantileWithinRange checks order-statistic bounds: any quantile of
// a sample lies within [min, max] and is monotone in p.
func FuzzQuantileWithinRange(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5}, 0.5)
	f.Fuzz(func(t *testing.T, raw []byte, p float64) {
		if len(raw) == 0 || !(p >= 0 && p <= 1) {
			t.Skip()
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, b := range raw {
			xs[i] = float64(b)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		q, err := Quantile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if q < lo || q > hi {
			t.Fatalf("quantile(%v) = %v outside [%v, %v]", p, q, lo, hi)
		}
	})
}
