package stats

import (
	"math"
	"testing"
)

// FuzzStdNormQuantileRoundTrip checks CDF(Quantile(p)) == p over the
// full open interval, including extreme tails.
func FuzzStdNormQuantileRoundTrip(f *testing.F) {
	f.Add(0.5)
	f.Add(0.975)
	f.Add(1e-12)
	f.Add(1 - 1e-12)
	f.Fuzz(func(t *testing.T, p float64) {
		if !(p > 0 && p < 1) {
			t.Skip()
		}
		q := StdNormQuantile(p)
		if math.IsNaN(q) {
			t.Fatalf("quantile(%v) is NaN", p)
		}
		back := NormCDF(q, 0, 1)
		// Absolute tolerance loosens in the far tails where the CDF
		// saturates in double precision.
		tol := 1e-11
		if p < 1e-9 || p > 1-1e-9 {
			tol = 1e-9
		}
		if math.Abs(back-p) > tol {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, back)
		}
	})
}

// FuzzWelford checks the streaming moments against the naive two-pass
// computation on arbitrary byte-derived samples.
func FuzzWelford(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			t.Skip()
		}
		var w Welford
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b) - 128
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(len(xs) - 1)
		if math.Abs(w.Mean()-mean) > 1e-9 {
			t.Fatalf("mean %v, naive %v", w.Mean(), mean)
		}
		if math.Abs(w.Var()-variance) > 1e-7*(1+variance) {
			t.Fatalf("var %v, naive %v", w.Var(), variance)
		}
	})
}

// FuzzHistogramTotals checks count conservation: every added value lands
// in exactly one of {bins, under, over, NaN-absorbed-by-total}.
func FuzzHistogramTotals(f *testing.F) {
	f.Add([]byte{10, 200, 255, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		h := NewHistogram(50, 200, 7)
		for _, b := range raw {
			h.Add(float64(b))
		}
		var binned int64
		for _, c := range h.Counts {
			binned += c
		}
		if binned+h.Under+h.Over != int64(len(raw)) {
			t.Fatalf("counts %d + under %d + over %d != %d",
				binned, h.Under, h.Over, len(raw))
		}
	})
}

// FuzzQuantileWithinRange checks order-statistic bounds: any quantile of
// a sample lies within [min, max] and is monotone in p.
func FuzzQuantileWithinRange(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5}, 0.5)
	f.Fuzz(func(t *testing.T, raw []byte, p float64) {
		if len(raw) == 0 || !(p >= 0 && p <= 1) {
			t.Skip()
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, b := range raw {
			xs[i] = float64(b)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		q, err := Quantile(xs, p)
		if err != nil {
			t.Fatal(err)
		}
		if q < lo || q > hi {
			t.Fatalf("quantile(%v) = %v outside [%v, %v]", p, q, lo, hi)
		}
	})
}
