package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSStatistic returns the one-sample Kolmogorov–Smirnov statistic
// D = sup_x |F_n(x) - F(x)| of the sample xs against the continuous
// reference CDF. The input is not modified.
func KSStatistic(xs []float64, cdf func(float64) float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, fmt.Errorf("stats: KS statistic of empty sample")
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, fmt.Errorf("stats: reference CDF returned %v at %v", f, x)
		}
		// The empirical CDF jumps from i/n to (i+1)/n at x; the supremum
		// against a continuous F is attained at one of the two sides.
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		d = math.Max(d, math.Max(lo, hi))
	}
	return d, nil
}

// KSPValue returns the asymptotic p-value for a one-sample KS statistic
// d at sample size n, via the Kolmogorov distribution series
// Q(t) = 2 Σ_{k>=1} (-1)^{k-1} exp(-2 k² t²) with t = d(√n + 0.12 + 0.11/√n)
// (Stephens' correction). Accurate enough for the goodness-of-fit
// checks in this repository.
func KSPValue(d float64, n int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: KS p-value needs a positive sample size, got %d", n)
	}
	if d <= 0 {
		return 1, nil
	}
	if d >= 1 {
		return 0, nil
	}
	sn := math.Sqrt(float64(n))
	t := d * (sn + 0.12 + 0.11/sn)
	sum := 0.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k) * float64(k) * t * t)
		if k%2 == 1 {
			sum += term
		} else {
			sum -= term
		}
		if term < 1e-12 {
			break
		}
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0, nil
	case p > 1:
		return 1, nil
	}
	return p, nil
}

// KSTest runs the one-sample test and reports whether the sample is
// consistent with the reference CDF at the given significance level
// (e.g. 0.01): ok is false when the fit is rejected.
func KSTest(xs []float64, cdf func(float64) float64, alpha float64) (d, p float64, ok bool, err error) {
	if alpha <= 0 || alpha >= 1 {
		return 0, 0, false, fmt.Errorf("stats: significance level %v outside (0,1)", alpha)
	}
	d, err = KSStatistic(xs, cdf)
	if err != nil {
		return 0, 0, false, err
	}
	p, err = KSPValue(d, len(xs))
	if err != nil {
		return 0, 0, false, err
	}
	return d, p, p >= alpha, nil
}
