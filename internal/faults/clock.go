package faults

import "time"

// NewClock wraps a caller-supplied time source with the clock clauses
// of the spec: skew multiplies the apparent rate of elapsed time, and
// jump steps the reading once a threshold of true elapsed time passes.
// The wrapper anchors itself at its first call, so faults are relative
// to monitor start, not process start.
//
// base must be non-nil — this package never reads the wall clock; a
// production caller passes time.Now, a simulation passes its virtual
// clock. The returned function is what a MonitorConfig.Now should be
// set to.
func NewClock(spec Spec, base func() time.Time) func() time.Time {
	if base == nil {
		panic("faults: NewClock requires a base time source")
	}
	clauses := spec.Clock()
	if len(clauses) == 0 {
		return base
	}
	rate := 1.0
	jumps := make([]Clause, 0, len(clauses))
	for _, c := range clauses {
		switch c.Class {
		case ClassSkew:
			rate *= c.Rate
		case ClassJump:
			jumps = append(jumps, c)
		}
	}
	var anchor time.Time
	return func() time.Time {
		now := base()
		if anchor.IsZero() {
			anchor = now
		}
		elapsed := now.Sub(anchor).Seconds()
		faulted := elapsed * rate
		for _, j := range jumps {
			if elapsed >= j.At {
				faulted += j.Dur
			}
		}
		return anchor.Add(time.Duration(faulted * float64(time.Second)))
	}
}
