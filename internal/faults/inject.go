package faults

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rejuv/internal/xrand"
)

// Count is one clause of an Injector with the number of times it fired.
type Count struct {
	// Class is the clause's fault class.
	Class Class
	// N counts the observations the clause affected.
	N int
}

// Injector applies the stream clauses of a Spec to an observation
// sequence. It is a deterministic state machine over a dedicated xrand
// stream: the same spec, seed, stream and input sequence always injects
// the same faults at the same positions, so faulted runs replay
// byte-identically.
//
// Apply maps one input observation to zero, one or two output
// observations (drop/stall emit none; dup emits two; reorder holds one
// back a slot). Call Flush after the final input to drain a held-back
// observation. Not safe for concurrent use.
type Injector struct {
	// OnFault, when non-nil, is called once per injected fault with the
	// class and the affected value — the hook rejuvsim uses to journal
	// KindFault records.
	OnFault func(class Class, value float64)

	clauses []Clause // stream clauses, spec order
	counts  []int    // parallel to clauses
	rng     *xrand.Rand

	index    int     // 0-based input observation index
	last     float64 // last clean input value, for freeze
	haveLast bool
	frozen   int     // remaining observations of an active freeze run
	held     float64 // reorder hold-back slot
	holding  bool
	out      []float64 // scratch reused across Apply calls
}

// NewInjector builds an injector for the stream clauses of spec,
// drawing from xrand stream (seed, stream). Non-stream clauses are
// ignored; an empty injector passes observations through untouched.
func NewInjector(spec Spec, seed, stream uint64) *Injector {
	clauses := spec.Stream()
	return &Injector{
		clauses: clauses,
		counts:  make([]int, len(clauses)),
		rng:     xrand.NewStream(seed, stream),
	}
}

// Active reports whether the injector has any stream clauses.
func (j *Injector) Active() bool { return len(j.clauses) > 0 }

// Counts returns the per-clause fire counts, in spec order.
func (j *Injector) Counts() []Count {
	out := make([]Count, len(j.clauses))
	for i, c := range j.clauses {
		out[i] = Count{Class: c.Class, N: j.counts[i]}
	}
	return out
}

// fire tallies clause i and notifies the hook.
func (j *Injector) fire(i int, value float64) {
	j.counts[i]++
	if j.OnFault != nil {
		j.OnFault(j.clauses[i].Class, value)
	}
}

// Apply feeds one observation through the fault pipeline and returns
// the observations to deliver downstream, oldest first. The returned
// slice is reused by the next Apply — copy it if it must outlive the
// call.
//
// Per observation, in order: an active stall window swallows the input;
// an active freeze run substitutes the last clean value; value
// corruptions (nan, inf, neg, freeze onset) then fire in spec order,
// first hit wins; the emission faults (drop, dup, reorder) fire in spec
// order, first hit wins. An observation held back by reorder is
// released after its successor — that deferred release is what swaps
// the pair.
func (j *Injector) Apply(x float64) []float64 {
	pending, hadPending := j.held, j.holding
	j.holding = false
	out := j.apply(x)
	if hadPending {
		out = append(out, pending)
		j.out = out
	}
	return out
}

// apply runs the per-observation pipeline, writing into the scratch
// slice; the reorder hold-back release happens in Apply.
func (j *Injector) apply(x float64) []float64 {
	idx := j.index
	j.index++
	j.out = j.out[:0]

	for i, c := range j.clauses {
		if c.Class == ClassStall && float64(idx) >= c.At && float64(idx) < c.At+float64(c.Len) {
			j.fire(i, x)
			return j.out
		}
	}

	v := x
	corrupted := false
	if j.frozen > 0 {
		j.frozen--
		if !j.haveLast {
			j.last, j.haveLast = x, true
		}
		v = j.last
		corrupted = true
		// The per-run count was taken at freeze onset; frozen emissions
		// still notify the hook so journals show the whole run.
		if j.OnFault != nil {
			j.OnFault(ClassFreeze, v)
		}
	}
	if !corrupted {
		for i, c := range j.clauses {
			switch c.Class {
			case ClassNaN, ClassInf, ClassNeg, ClassFreeze:
				if j.rng.Float64() >= c.P {
					continue
				}
				switch c.Class {
				case ClassNaN:
					v = math.NaN()
				case ClassInf:
					v = math.Inf(c.Sign)
				case ClassNeg:
					v = -v
				case ClassFreeze:
					// This observation is the first of the frozen run; it
					// repeats the previous clean reading (or itself when it
					// is the very first observation).
					j.frozen = c.Len - 1
					if !j.haveLast {
						j.last, j.haveLast = x, true
					}
					v = j.last
				}
				j.fire(i, v)
				corrupted = true
			}
			if corrupted {
				break
			}
		}
	}
	// Track the last cleanly emitted value so a later freeze run repeats
	// a truthful reading, not an injected one.
	if !corrupted {
		j.last, j.haveLast = x, true
	}

	for i, c := range j.clauses {
		switch c.Class {
		case ClassDrop, ClassDup, ClassReorder:
			if j.rng.Float64() >= c.P {
				continue
			}
			j.fire(i, v)
			switch c.Class {
			case ClassDrop:
				return j.out
			case ClassDup:
				j.out = append(j.out, v, v)
				return j.out
			case ClassReorder:
				j.held, j.holding = v, true
				return j.out
			}
		}
	}
	j.out = append(j.out, v)
	return j.out
}

// Flush releases an observation still held back by a reorder clause.
// Call once after the final Apply; the returned slice is reused like
// Apply's.
func (j *Injector) Flush() []float64 {
	j.out = j.out[:0]
	if j.holding {
		j.out = append(j.out, j.held)
		j.holding = false
	}
	return j.out
}

// ErrInjected is the error returned by fault-wrapped actuator actions;
// callers can errors.Is against it to distinguish injected failures
// from real ones.
var ErrInjected = errors.New("faults: injected actuator failure")

// ActionFaults is the actuator fault profile of a spec: how each
// rejuvenation action attempt should misbehave.
type ActionFaults struct {
	// Delay stalls every attempt by this many seconds (slow-act).
	Delay float64
	// Fails makes the first Fails attempts fail transiently (flaky-act).
	Fails int
	// Dead makes every attempt fail (dead-act).
	Dead bool
}

// ActionFaults collapses the actuator clauses of the spec into one
// profile. Later clauses of the same class override earlier ones.
func (s Spec) ActionFaults() ActionFaults {
	var f ActionFaults
	for _, c := range s.Actuator() {
		switch c.Class {
		case ClassSlowAct:
			f.Delay = c.Dur
		case ClassFlakyAct:
			f.Fails = c.Fails
		case ClassDeadAct:
			f.Dead = true
		}
	}
	return f
}

// Active reports whether the profile injects anything.
func (f ActionFaults) Active() bool { return f.Delay > 0 || f.Fails > 0 || f.Dead }

// Wrap returns an action that applies the fault profile around inner.
// sleep implements the slow-act delay (seconds) and must be non-nil
// when Delay > 0 — the faults package never sleeps on the wall clock
// itself, so virtual-time callers can substitute their own scheduler.
// The transient-failure counter spans the wrapper's lifetime: attempt
// numbers 1..Fails fail with ErrInjected, later attempts pass through.
func (f ActionFaults) Wrap(inner func(context.Context) error, sleep func(context.Context, float64) error) func(context.Context) error {
	if f.Delay > 0 && sleep == nil {
		panic("faults: ActionFaults.Wrap needs a sleep hook when Delay > 0")
	}
	attempt := 0
	return func(ctx context.Context) error {
		attempt++
		if f.Delay > 0 {
			if err := sleep(ctx, f.Delay); err != nil {
				return err
			}
		}
		if f.Dead {
			return fmt.Errorf("%w (dead-act, attempt %d)", ErrInjected, attempt)
		}
		if attempt <= f.Fails {
			return fmt.Errorf("%w (flaky-act, attempt %d of %d transient failures)", ErrInjected, attempt, f.Fails)
		}
		if inner == nil {
			return nil
		}
		return inner(ctx)
	}
}
