// Package faults is the deterministic fault-injection layer of the
// repository: a seed-driven injector that corrupts, drops, duplicates,
// reorders and stalls the observation stream feeding a detector, a
// clock wrapper that skews and jumps the time source feeding a Monitor,
// and actuator fault parameters that make a rejuvenation action slow,
// transiently failing or permanently dead.
//
// Everything is a pure function of the fault Spec, the seed and the
// input stream: running the same faulted scenario twice yields the same
// injected faults in the same places, so faulted runs are journalable
// and replay-verifiable exactly like clean ones. Randomness comes from
// a dedicated internal/xrand stream; the wall clock is never consulted.
//
// Specs have a compact textual grammar for CLI flags
// (rejuvsim -faults):
//
//	spec    = clause *( ";" clause )
//	clause  = class [ ":" param *( "," param ) ]
//	param   = key "=" value
//
// For example:
//
//	nan:p=0.001;drop:p=0.01;stall:at=5000,len=500;flaky-act:fails=2
//
// See ParseSpec for the per-class parameters.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Class names one injectable fault class.
type Class string

// The fault classes. The first group corrupts or reshapes the
// observation stream; the second reshapes the clock; the third breaks
// the rejuvenation actuator.
const (
	// ClassNaN replaces an observation with NaN (probability p).
	ClassNaN Class = "nan"
	// ClassInf replaces an observation with +Inf, or -Inf under sign=-
	// (probability p).
	ClassInf Class = "inf"
	// ClassNeg negates an observation (probability p), producing the
	// physically impossible negative response time a buggy probe emits.
	ClassNeg Class = "neg"
	// ClassFreeze starts a frozen run (probability p): the next len
	// observations repeat the last value seen, the signature of a stuck
	// collector (default len 8).
	ClassFreeze Class = "freeze"
	// ClassDrop discards an observation (probability p).
	ClassDrop Class = "drop"
	// ClassDup emits an observation twice (probability p).
	ClassDup Class = "dup"
	// ClassReorder holds an observation back one slot, swapping it with
	// its successor (probability p).
	ClassReorder Class = "reorder"
	// ClassStall silences the probe for a window: observations with
	// 0-based index in [at, at+len) are swallowed entirely.
	ClassStall Class = "stall"

	// ClassSkew multiplies the apparent rate of the wrapped clock by
	// rate (rate=1.1 runs 10% fast).
	ClassSkew Class = "skew"
	// ClassJump steps the wrapped clock by "by" seconds (negative jumps
	// backwards) once "at" seconds of true time have elapsed.
	ClassJump Class = "jump"

	// ClassSlowAct delays every rejuvenation action attempt by d seconds.
	ClassSlowAct Class = "slow-act"
	// ClassFlakyAct makes the first fails attempts of every rejuvenation
	// action execution fail transiently (default 1).
	ClassFlakyAct Class = "flaky-act"
	// ClassDeadAct makes every rejuvenation action attempt fail.
	ClassDeadAct Class = "dead-act"
)

// Clause is one parsed fault clause.
type Clause struct {
	// Class selects the fault.
	Class Class
	// P is the per-observation probability for the probabilistic stream
	// classes (nan, inf, neg, freeze, drop, dup, reorder).
	P float64
	// At is the 0-based observation index where a stall window opens, or
	// the elapsed seconds at which a clock jump applies.
	At float64
	// Len is the stall window length in observations, or the frozen-run
	// length for freeze.
	Len int
	// Sign selects -Inf for the inf class (+1 default).
	Sign int
	// Dur is the slow-act delay or the jump offset, in seconds.
	Dur float64
	// Fails is the transient-failure count for flaky-act.
	Fails int
	// Rate is the skew factor for the skew class.
	Rate float64
}

// Spec is a parsed fault specification: an ordered list of clauses.
// Clause order is semantic — the injector applies value corruptions and
// checks emission faults in spec order.
type Spec struct {
	// Clauses holds the parsed clauses in input order.
	Clauses []Clause
}

// Empty reports whether the spec injects nothing.
func (s Spec) Empty() bool { return len(s.Clauses) == 0 }

// streamClasses marks classes that act on the observation stream.
var streamClasses = map[Class]bool{
	ClassNaN: true, ClassInf: true, ClassNeg: true, ClassFreeze: true,
	ClassDrop: true, ClassDup: true, ClassReorder: true, ClassStall: true,
}

// actuatorClasses marks classes that act on the rejuvenation action.
var actuatorClasses = map[Class]bool{
	ClassSlowAct: true, ClassFlakyAct: true, ClassDeadAct: true,
}

// clockClasses marks classes that act on the time source.
var clockClasses = map[Class]bool{ClassSkew: true, ClassJump: true}

// Stream returns the clauses that act on the observation stream, in
// spec order.
func (s Spec) Stream() []Clause { return s.filter(streamClasses) }

// Actuator returns the clauses that act on the rejuvenation action.
func (s Spec) Actuator() []Clause { return s.filter(actuatorClasses) }

// Clock returns the clauses that act on the time source.
func (s Spec) Clock() []Clause { return s.filter(clockClasses) }

// filter selects clauses whose class is in the set, preserving order.
func (s Spec) filter(set map[Class]bool) []Clause {
	var out []Clause
	for _, c := range s.Clauses {
		if set[c.Class] {
			out = append(out, c)
		}
	}
	return out
}

// String renders the spec in the canonical grammar; ParseSpec round-
// trips it.
func (s Spec) String() string {
	parts := make([]string, len(s.Clauses))
	for i, c := range s.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}

// String renders one clause in the canonical grammar.
func (c Clause) String() string {
	var params []string
	add := func(key string, val string) { params = append(params, key+"="+val) }
	switch c.Class {
	case ClassNaN, ClassNeg, ClassDrop, ClassDup, ClassReorder:
		add("p", formatFloat(c.P))
	case ClassInf:
		add("p", formatFloat(c.P))
		if c.Sign < 0 {
			add("sign", "-")
		}
	case ClassFreeze:
		add("p", formatFloat(c.P))
		add("len", strconv.Itoa(c.Len))
	case ClassStall:
		add("at", formatFloat(c.At))
		add("len", strconv.Itoa(c.Len))
	case ClassSkew:
		add("rate", formatFloat(c.Rate))
	case ClassJump:
		add("at", formatFloat(c.At))
		add("by", formatFloat(c.Dur))
	case ClassSlowAct:
		add("d", formatFloat(c.Dur))
	case ClassFlakyAct:
		add("fails", strconv.Itoa(c.Fails))
	case ClassDeadAct:
		// no parameters
	}
	if len(params) == 0 {
		return string(c.Class)
	}
	return string(c.Class) + ":" + strings.Join(params, ",")
}

// formatFloat renders a parameter value compactly.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseSpec parses the textual fault grammar. Per-class parameters:
//
//	nan, neg, drop, dup, reorder:  p=<probability>
//	inf:                            p=<probability> [sign=-]
//	freeze:                         p=<probability> [len=<observations>]
//	stall:                          at=<index> len=<observations>
//	skew:                           rate=<factor>
//	jump:                           at=<seconds> by=<seconds>
//	slow-act:                       d=<seconds>
//	flaky-act:                      [fails=<attempts>]
//	dead-act:                       (none)
//
// Unknown classes, unknown parameters, malformed values and
// out-of-range probabilities are errors, so a typo in a -faults flag
// fails loudly instead of silently injecting nothing.
func ParseSpec(text string) (Spec, error) {
	var spec Spec
	text = strings.TrimSpace(text)
	if text == "" {
		return spec, nil
	}
	for _, part := range strings.Split(text, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		clause, err := parseClause(part)
		if err != nil {
			return Spec{}, err
		}
		spec.Clauses = append(spec.Clauses, clause)
	}
	return spec, nil
}

// parseClause parses one class[:k=v[,k=v]...] clause.
func parseClause(text string) (Clause, error) {
	name, rest, _ := strings.Cut(text, ":")
	c := Clause{Class: Class(strings.TrimSpace(name)), Sign: 1}
	if !streamClasses[c.Class] && !actuatorClasses[c.Class] && !clockClasses[c.Class] {
		return Clause{}, fmt.Errorf("faults: unknown fault class %q (known: %s)", name, knownClasses())
	}
	params := map[string]string{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Clause{}, fmt.Errorf("faults: %s: parameter %q is not key=value", c.Class, kv)
			}
			key = strings.TrimSpace(key)
			if _, dup := params[key]; dup {
				return Clause{}, fmt.Errorf("faults: %s: duplicate parameter %q", c.Class, key)
			}
			params[key] = strings.TrimSpace(val)
		}
	}
	take := func(key string) (string, bool) {
		v, ok := params[key]
		delete(params, key)
		return v, ok
	}
	var err error
	prob := func() {
		if err == nil {
			c.P, err = parseProb(c.Class, take)
		}
	}
	switch c.Class {
	case ClassNaN, ClassNeg, ClassDrop, ClassDup, ClassReorder:
		prob()
	case ClassInf:
		prob()
		if v, ok := take("sign"); ok {
			switch v {
			case "-":
				c.Sign = -1
			case "+":
				c.Sign = 1
			default:
				err = fmt.Errorf("faults: inf: sign must be + or -, got %q", v)
			}
		}
	case ClassFreeze:
		prob()
		c.Len = 8
		if v, ok := take("len"); ok && err == nil {
			c.Len, err = parseCount(c.Class, "len", v)
		}
	case ClassStall:
		if v, ok := take("at"); ok {
			c.At, err = parseNum(c.Class, "at", v, 0, math.MaxFloat64)
		} else {
			err = fmt.Errorf("faults: stall: missing at=<index>")
		}
		if v, ok := take("len"); ok && err == nil {
			c.Len, err = parseCount(c.Class, "len", v)
		} else if err == nil {
			err = fmt.Errorf("faults: stall: missing len=<observations>")
		}
	case ClassSkew:
		if v, ok := take("rate"); ok {
			c.Rate, err = parseNum(c.Class, "rate", v, 1e-9, math.MaxFloat64)
		} else {
			err = fmt.Errorf("faults: skew: missing rate=<factor>")
		}
	case ClassJump:
		if v, ok := take("at"); ok {
			c.At, err = parseNum(c.Class, "at", v, 0, math.MaxFloat64)
		} else {
			err = fmt.Errorf("faults: jump: missing at=<seconds>")
		}
		if v, ok := take("by"); ok && err == nil {
			c.Dur, err = parseNum(c.Class, "by", v, -math.MaxFloat64, math.MaxFloat64)
		} else if err == nil {
			err = fmt.Errorf("faults: jump: missing by=<seconds>")
		}
	case ClassSlowAct:
		if v, ok := take("d"); ok {
			c.Dur, err = parseNum(c.Class, "d", v, 0, math.MaxFloat64)
		} else {
			err = fmt.Errorf("faults: slow-act: missing d=<seconds>")
		}
	case ClassFlakyAct:
		c.Fails = 1
		if v, ok := take("fails"); ok {
			c.Fails, err = parseCount(c.Class, "fails", v)
		}
	case ClassDeadAct:
		// no parameters
	}
	if err != nil {
		return Clause{}, err
	}
	if len(params) > 0 {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return Clause{}, fmt.Errorf("faults: %s: unknown parameter(s) %s", c.Class, strings.Join(keys, ", "))
	}
	return c, nil
}

// parseProb parses the mandatory p=<probability> parameter.
func parseProb(class Class, take func(string) (string, bool)) (float64, error) {
	v, ok := take("p")
	if !ok {
		return 0, fmt.Errorf("faults: %s: missing p=<probability>", class)
	}
	return parseNum(class, "p", v, 0, 1)
}

// parseNum parses a float parameter and range-checks it.
func parseNum(class Class, key, val string, lo, hi float64) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("faults: %s: %s=%q is not a finite number", class, key, val)
	}
	if f < lo || f > hi {
		return 0, fmt.Errorf("faults: %s: %s=%v out of range [%g, %g]", class, key, f, lo, hi)
	}
	return f, nil
}

// parseCount parses a positive integer parameter.
func parseCount(class Class, key, val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("faults: %s: %s=%q is not a positive integer", class, key, val)
	}
	return n, nil
}

// knownClasses lists every class name for error messages.
func knownClasses() string {
	return strings.Join([]string{
		string(ClassNaN), string(ClassInf), string(ClassNeg), string(ClassFreeze),
		string(ClassDrop), string(ClassDup), string(ClassReorder), string(ClassStall),
		string(ClassSkew), string(ClassJump),
		string(ClassSlowAct), string(ClassFlakyAct), string(ClassDeadAct),
	}, ", ")
}
