package faults

import (
	"strings"
	"testing"
)

// TestParseSpecRoundTrip pins the canonical grammar: parse, render,
// re-parse, and the two parses must match.
func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"nan:p=0.01",
		"inf:p=0.5,sign=-",
		"inf:p=0.5",
		"neg:p=1",
		"freeze:p=0.001,len=16",
		"drop:p=0.25",
		"dup:p=0.125",
		"reorder:p=0.0625",
		"stall:at=100,len=50",
		"skew:rate=1.25",
		"jump:at=30,by=-5",
		"slow-act:d=2.5",
		"flaky-act:fails=3",
		"flaky-act",
		"dead-act",
		"nan:p=0.001;drop:p=0.01;stall:at=5000,len=500;flaky-act:fails=2",
	}
	for _, in := range cases {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", in, err)
			continue
		}
		rendered := spec.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Errorf("re-parse of %q (from %q): %v", rendered, in, err)
			continue
		}
		if again.String() != rendered {
			t.Errorf("canonical form of %q is not a fixed point: %q -> %q", in, rendered, again.String())
		}
	}
}

// TestParseSpecDefaults pins the default parameter values.
func TestParseSpecDefaults(t *testing.T) {
	spec, err := ParseSpec("freeze:p=0.1;flaky-act;inf:p=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Clauses[0].Len; got != 8 {
		t.Errorf("freeze default len = %d, want 8", got)
	}
	if got := spec.Clauses[1].Fails; got != 1 {
		t.Errorf("flaky-act default fails = %d, want 1", got)
	}
	if got := spec.Clauses[2].Sign; got != 1 {
		t.Errorf("inf default sign = %d, want +1", got)
	}
}

// TestParseSpecErrors pins that malformed specs fail loudly, naming the
// offending clause.
func TestParseSpecErrors(t *testing.T) {
	cases := map[string]string{
		"typo class":        "nna:p=0.1",
		"missing p":         "nan",
		"p out of range":    "nan:p=1.5",
		"negative p":        "drop:p=-0.1",
		"non-numeric p":     "dup:p=often",
		"NaN p":             "nan:p=NaN",
		"unknown param":     "nan:p=0.1,q=2",
		"duplicate param":   "nan:p=0.1,p=0.2",
		"not key=value":     "nan:p",
		"bad sign":          "inf:p=0.1,sign=x",
		"zero freeze len":   "freeze:p=0.1,len=0",
		"stall missing at":  "stall:len=5",
		"stall missing len": "stall:at=5",
		"skew missing rate": "skew",
		"zero skew rate":    "skew:rate=0",
		"jump missing by":   "jump:at=10",
		"slow-act missing":  "slow-act",
		"dead-act param":    "dead-act:p=0.5",
		"negative fails":    "flaky-act:fails=-1",
	}
	for name, in := range cases {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("%s: ParseSpec(%q) accepted malformed spec", name, in)
		}
	}
}

// TestParseSpecUnknownClassListsKnown pins the discoverability of the
// error message a mistyped -faults flag produces.
func TestParseSpecUnknownClassListsKnown(t *testing.T) {
	_, err := ParseSpec("nope:p=0.1")
	if err == nil || !strings.Contains(err.Error(), "dead-act") {
		t.Errorf("unknown-class error does not list known classes: %v", err)
	}
}

// TestSpecPartitions pins the stream/actuator/clock clause split.
func TestSpecPartitions(t *testing.T) {
	spec, err := ParseSpec("nan:p=0.1;skew:rate=2;drop:p=0.2;dead-act;jump:at=1,by=2;slow-act:d=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(spec.Stream()); got != 2 {
		t.Errorf("Stream() returned %d clauses, want 2", got)
	}
	if got := len(spec.Actuator()); got != 2 {
		t.Errorf("Actuator() returned %d clauses, want 2", got)
	}
	if got := len(spec.Clock()); got != 2 {
		t.Errorf("Clock() returned %d clauses, want 2", got)
	}
	if spec.Empty() {
		t.Error("Empty() true for a populated spec")
	}
	empty, _ := ParseSpec("  ")
	if !empty.Empty() {
		t.Error("Empty() false for a blank spec")
	}
}
