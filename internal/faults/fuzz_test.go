package faults

import "testing"

// FuzzParseSpec hammers the -faults grammar: the parser must never
// panic, and any spec it accepts must render to a canonical form that
// re-parses to the same canonical form (a fixed point).
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("nan:p=0.01")
	f.Add("inf:p=0.5,sign=-;drop:p=0.1")
	f.Add("freeze:p=0.001,len=16;stall:at=100,len=50")
	f.Add("skew:rate=1.25;jump:at=30,by=-5")
	f.Add("slow-act:d=2.5;flaky-act:fails=3;dead-act")
	f.Add("nan:p=1e-300")
	f.Add(";;;")
	f.Add("nan : p = 0.1")
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		rendered := spec.String()
		again, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", rendered, in, err)
		}
		if got := again.String(); got != rendered {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", in, rendered, got)
		}
	})
}
