package faults

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// run feeds xs through a fresh injector and returns the delivered
// stream plus the injector for count inspection.
func run(t *testing.T, spec string, seed, stream uint64, xs []float64) ([]float64, *Injector) {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	j := NewInjector(s, seed, stream)
	var out []float64
	for _, x := range xs {
		out = append(out, j.Apply(x)...)
	}
	out = append(out, j.Flush()...)
	return out, j
}

// ramp returns n observations 0, 1, 2, ...
func ramp(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

// TestInjectorPassThrough pins that an empty spec is an identity map.
func TestInjectorPassThrough(t *testing.T) {
	in := ramp(100)
	out, j := run(t, "", 1, 1, in)
	if !reflect.DeepEqual(out, in) {
		t.Error("empty injector altered the stream")
	}
	if j.Active() {
		t.Error("empty injector reports Active")
	}
}

// TestInjectorDeterminism pins the seed contract: same seed and stream,
// same injections; different stream, different injections.
func TestInjectorDeterminism(t *testing.T) {
	const spec = "nan:p=0.05;drop:p=0.05;dup:p=0.05;reorder:p=0.05"
	in := ramp(2000)
	a, _ := run(t, spec, 42, 7, in)
	b, _ := run(t, spec, 42, 7, in)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d observations", len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("same seed diverged at observation %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := run(t, spec, 42, 8, in)
	if reflect.DeepEqual(a, c) {
		t.Error("different streams produced identical injections")
	}
}

// TestInjectorNaNInfNeg pins the value-corruption classes at p=1.
func TestInjectorNaNInfNeg(t *testing.T) {
	out, _ := run(t, "nan:p=1", 1, 1, []float64{5})
	if len(out) != 1 || !math.IsNaN(out[0]) {
		t.Errorf("nan:p=1 produced %v", out)
	}
	out, _ = run(t, "inf:p=1", 1, 1, []float64{5})
	if len(out) != 1 || !math.IsInf(out[0], 1) {
		t.Errorf("inf:p=1 produced %v", out)
	}
	out, _ = run(t, "inf:p=1,sign=-", 1, 1, []float64{5})
	if len(out) != 1 || !math.IsInf(out[0], -1) {
		t.Errorf("inf:p=1,sign=- produced %v", out)
	}
	out, _ = run(t, "neg:p=1", 1, 1, []float64{5})
	if len(out) != 1 || out[0] != -5 {
		t.Errorf("neg:p=1 produced %v", out)
	}
}

// TestInjectorFreeze pins frozen-run semantics: at onset the last clean
// value substitutes for the next len observations, then the stream
// resumes live.
func TestInjectorFreeze(t *testing.T) {
	s, err := ParseSpec("freeze:p=1,len=3")
	if err != nil {
		t.Fatal(err)
	}
	j := NewInjector(s, 1, 1)
	var out []float64
	// First observation: no last value yet, freeze fires but passes the
	// input through; run continues with its value frozen.
	for _, x := range []float64{10, 20, 30, 40, 50} {
		out = append(out, j.Apply(x)...)
	}
	// obs0 fires freeze (no prior value -> emits 10, run of 3 starts and
	// consumes obs0..obs2 as frozen); obs1, obs2 emit last clean = 10;
	// obs3 fires freeze again at p=1 with last clean still 10.
	want := []float64{10, 10, 10, 10, 10}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("freeze stream = %v, want %v", out, want)
	}
}

// TestInjectorDrop pins that dropped observations vanish and are
// counted.
func TestInjectorDrop(t *testing.T) {
	out, j := run(t, "drop:p=1", 1, 1, ramp(10))
	if len(out) != 0 {
		t.Errorf("drop:p=1 leaked %d observations", len(out))
	}
	counts := j.Counts()
	if len(counts) != 1 || counts[0].Class != ClassDrop || counts[0].N != 10 {
		t.Errorf("drop counts = %+v", counts)
	}
}

// TestInjectorDup pins duplication: every observation appears twice, in
// order.
func TestInjectorDup(t *testing.T) {
	out, _ := run(t, "dup:p=1", 1, 1, []float64{1, 2})
	want := []float64{1, 1, 2, 2}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("dup stream = %v, want %v", out, want)
	}
}

// TestInjectorReorder pins the hold-back-one-slot swap and that Flush
// drains a held final observation.
func TestInjectorReorder(t *testing.T) {
	out, _ := run(t, "reorder:p=1", 1, 1, []float64{1, 2, 3})
	// Every observation is held one slot: 1 held, 2 held after releasing
	// 1, 3 held after releasing 2, Flush releases 3.
	want := []float64{1, 2, 3}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("reorder:p=1 stream = %v, want %v", out, want)
	}
	// At p=0.5 actual swaps occur: stream is a permutation, not the id.
	in := ramp(200)
	out, _ = run(t, "reorder:p=0.5", 3, 1, in)
	if len(out) != len(in) {
		t.Fatalf("reorder changed length: %d -> %d", len(in), len(out))
	}
	if reflect.DeepEqual(out, in) {
		t.Error("reorder:p=0.5 never swapped in 200 observations")
	}
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if want := float64(len(in)*(len(in)-1)) / 2; sum != want {
		t.Errorf("reorder lost mass: sum %v, want %v", sum, want)
	}
}

// TestInjectorStall pins the index-window silence.
func TestInjectorStall(t *testing.T) {
	out, j := run(t, "stall:at=3,len=4", 1, 1, ramp(10))
	want := []float64{0, 1, 2, 7, 8, 9}
	if !reflect.DeepEqual(out, want) {
		t.Errorf("stall stream = %v, want %v", out, want)
	}
	if c := j.Counts(); c[0].N != 4 {
		t.Errorf("stall count = %d, want 4", c[0].N)
	}
}

// TestInjectorOnFault pins the hook: one call per injected fault with
// the class attached.
func TestInjectorOnFault(t *testing.T) {
	s, err := ParseSpec("nan:p=1")
	if err != nil {
		t.Fatal(err)
	}
	j := NewInjector(s, 1, 1)
	var classes []Class
	j.OnFault = func(class Class, value float64) {
		classes = append(classes, class)
		if !math.IsNaN(value) {
			t.Errorf("OnFault value = %v, want NaN", value)
		}
	}
	j.Apply(1)
	j.Apply(2)
	if len(classes) != 2 || classes[0] != ClassNaN {
		t.Errorf("OnFault calls = %v", classes)
	}
}

// TestActionFaultsWrap pins the actuator fault wrapper: flaky-act fails
// the first k attempts with ErrInjected, dead-act fails forever, and
// slow-act routes its delay through the caller's sleep hook.
func TestActionFaultsWrap(t *testing.T) {
	spec, err := ParseSpec("flaky-act:fails=2")
	if err != nil {
		t.Fatal(err)
	}
	inner := 0
	act := spec.ActionFaults().Wrap(func(context.Context) error { inner++; return nil }, nil)
	for i := 1; i <= 2; i++ {
		if err := act(context.Background()); !errors.Is(err, ErrInjected) {
			t.Errorf("attempt %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := act(context.Background()); err != nil {
		t.Errorf("attempt 3 should pass through, got %v", err)
	}
	if inner != 1 {
		t.Errorf("inner action ran %d times, want 1", inner)
	}

	spec, _ = ParseSpec("dead-act")
	act = spec.ActionFaults().Wrap(nil, nil)
	for i := 0; i < 5; i++ {
		if err := act(context.Background()); !errors.Is(err, ErrInjected) {
			t.Fatalf("dead-act attempt %d succeeded", i+1)
		}
	}

	spec, _ = ParseSpec("slow-act:d=1.5")
	var slept []float64
	act = spec.ActionFaults().Wrap(nil, func(_ context.Context, s float64) error {
		slept = append(slept, s)
		return nil
	})
	if err := act(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slept, []float64{1.5}) {
		t.Errorf("slept = %v, want [1.5]", slept)
	}
	if !spec.ActionFaults().Active() {
		t.Error("slow-act profile reports inactive")
	}
}

// TestActionFaultsWrapNeedsSleep pins the guard against a silent
// no-delay slow-act.
func TestActionFaultsWrapNeedsSleep(t *testing.T) {
	spec, _ := ParseSpec("slow-act:d=1")
	defer func() {
		if recover() == nil {
			t.Error("Wrap with Delay > 0 and nil sleep did not panic")
		}
	}()
	spec.ActionFaults().Wrap(nil, nil)
}

// TestClockSkewAndJump pins the clock wrapper against a hand-built
// virtual time source.
func TestClockSkewAndJump(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var virtual time.Time
	source := func() time.Time { return virtual }

	spec, err := ParseSpec("skew:rate=2")
	if err != nil {
		t.Fatal(err)
	}
	clock := NewClock(spec, source)
	virtual = base
	clock() // anchor
	virtual = base.Add(10 * time.Second)
	if got, want := clock(), base.Add(20*time.Second); !got.Equal(want) {
		t.Errorf("skew:rate=2 after 10s true = %v, want %v", got, want)
	}

	spec, _ = ParseSpec("jump:at=5,by=-3")
	clock = NewClock(spec, source)
	virtual = base
	clock()
	virtual = base.Add(4 * time.Second)
	if got, want := clock(), base.Add(4*time.Second); !got.Equal(want) {
		t.Errorf("before jump threshold: %v, want %v", got, want)
	}
	virtual = base.Add(6 * time.Second)
	if got, want := clock(), base.Add(3*time.Second); !got.Equal(want) {
		t.Errorf("after jump: %v, want %v", got, want)
	}
}

// TestClockPassThrough pins that a spec without clock clauses returns
// the base source unchanged.
func TestClockPassThrough(t *testing.T) {
	spec, _ := ParseSpec("nan:p=0.5")
	called := false
	src := func() time.Time { called = true; return time.Time{} }
	clock := NewClock(spec, src)
	clock()
	if !called {
		t.Error("pass-through clock does not delegate to base")
	}
}

// TestClockRequiresBase pins the nil-base panic: this package must
// never fall back to the wall clock on its own.
func TestClockRequiresBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewClock(nil) did not panic")
		}
	}()
	NewClock(Spec{}, nil)
}
