package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockGuardAnalyzer enforces the lock discipline declared in struct
// field comments. A field annotated
//
//	stats monitorStats // guarded by mu
//
// must only be read while mu is held (Lock or RLock) and only written
// while mu is write-held (Lock), where mu is a sibling sync.Mutex or
// sync.RWMutex field. Methods that run with the lock already held by
// the caller declare it:
//
//	//lint:holds mu
//
// which both seeds the method's entry state and makes every call site
// prove it holds the lock.
//
// The analysis is an intraprocedural lock-state flow over each function
// body: Lock/RLock set the state, Unlock/RUnlock clear it, a deferred
// unlock keeps the lock held to the end of the function, branches join
// by intersection (a branch that returns or panics does not constrain
// the join), and loop bodies are entered with the loop-entry state.
// Guarded fields reached through anything but a simple identifier base
// (m.stats, not get().stats) and values that are provably fresh locals
// (initialized from a composite literal or new in the same function)
// are out of scope — see DESIGN §13 for the conservatism list.
var LockGuardAnalyzer = &Analyzer{
	Name: "lockguard",
	Doc:  "guarded struct fields must be accessed under their declared mutex",
	Run:  runLockGuard,
}

// guardInfo describes one guarded struct field.
type guardInfo struct {
	mu string // sibling mutex field name
}

// lockMode is how strongly a mutex is held on the current path.
type lockMode int

const (
	modeRead  lockMode = iota + 1 // RLock held
	modeWrite                     // Lock held
)

// lockState maps "base.mutex" keys to how they are held.
type lockState map[string]lockMode

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// intersect keeps only locks held in both states, at the weaker mode.
func intersect(a, b lockState) lockState {
	out := make(lockState)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			if vb < va {
				out[k] = vb
			} else {
				out[k] = va
			}
		}
	}
	return out
}

func runLockGuard(p *Package) []Diagnostic {
	w := &lockWalker{
		p:      p,
		guards: make(map[*types.Var]guardInfo),
		holds:  make(map[*types.Func]string),
	}
	w.collectGuards()
	w.collectHolds()
	if len(w.guards) == 0 && len(w.holds) == 0 {
		return w.diags
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.checkFunc(fd)
		}
	}
	return w.diags
}

// lockWalker carries the per-package annotation tables and findings.
type lockWalker struct {
	p      *Package
	guards map[*types.Var]guardInfo // guarded field -> its guard
	holds  map[*types.Func]string   // method -> mutex field held on entry
	fresh  map[*types.Var]bool      // per-function: provably unshared locals
	diags  []Diagnostic
}

func (w *lockWalker) diagf(pos token.Pos, format string, args ...any) {
	w.diags = append(w.diags, w.p.diagf(pos, "lockguard", format, args...))
}

// collectGuards parses every "guarded by <field>" struct field comment
// and validates that the named sibling exists and is a mutex.
func (w *lockWalker) collectGuards() {
	for _, f := range w.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			w.collectStructGuards(ts.Name.Name, st)
			return true
		})
	}
}

func (w *lockWalker) collectStructGuards(typeName string, st *ast.StructType) {
	// Mutex siblings, resolved first so guards can validate against them.
	mutexFields := make(map[string]bool)
	for _, field := range st.Fields.List {
		if t := w.p.Info.TypeOf(field.Type); t != nil && isMutexType(t) {
			for _, name := range field.Names {
				mutexFields[name.Name] = true
			}
		}
	}
	for _, field := range st.Fields.List {
		text := fieldComment(field)
		if text == "" {
			continue
		}
		mu, ok := parseGuardedBy(text)
		if !ok {
			continue
		}
		if len(field.Names) == 0 {
			w.diagf(field.Pos(), "\"guarded by %s\" on an embedded field of %s is not supported; name the field", mu, typeName)
			continue
		}
		if !mutexFields[mu] {
			found := false
			for _, other := range st.Fields.List {
				for _, name := range other.Names {
					if name.Name == mu {
						found = true
					}
				}
			}
			if found {
				w.diagf(field.Pos(), "field %s is guarded by %s, but %s.%s is not a sync.Mutex or sync.RWMutex",
					field.Names[0].Name, mu, typeName, mu)
			} else {
				w.diagf(field.Pos(), "field %s is guarded by %s, but struct %s has no field %s",
					field.Names[0].Name, mu, typeName, mu)
			}
			continue
		}
		for _, name := range field.Names {
			if fv, ok := w.p.Info.Defs[name].(*types.Var); ok {
				w.guards[fv] = guardInfo{mu: mu}
			}
		}
	}
}

// collectHolds parses //lint:holds directives from function doc
// comments and validates their placement.
func (w *lockWalker) collectHolds() {
	for _, f := range w.p.Files {
		owner := make(map[*ast.Comment]*ast.FuncDecl)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				owner[c] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				field, isDir, ok := parseHolds(c.Text)
				if !isDir {
					continue
				}
				if !ok {
					w.diagf(c.Pos(), "malformed //lint:holds: want \"//lint:holds <mutex field>\"")
					continue
				}
				fd := owner[c]
				if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
					w.diagf(c.Pos(), "misplaced //lint:holds: it must appear in the doc comment of a method")
					continue
				}
				fn, okFn := w.p.Info.Defs[fd.Name].(*types.Func)
				if !okFn {
					continue // type-check failure; degrade gracefully
				}
				recvStruct := receiverStruct(fn)
				if recvStruct == nil || !structHasMutexField(recvStruct, field) {
					w.diagf(c.Pos(), "//lint:holds %s: receiver type of %s has no mutex field %s",
						field, fd.Name.Name, field)
					continue
				}
				w.holds[fn] = field
			}
		}
	}
}

// checkFunc runs the lock-state flow over one declared function.
func (w *lockWalker) checkFunc(fd *ast.FuncDecl) {
	w.fresh = make(map[*types.Var]bool)
	entry := make(lockState)
	if fn, ok := w.p.Info.Defs[fd.Name].(*types.Func); ok {
		if field, ok := w.holds[fn]; ok {
			if recv := receiverName(fd); recv != "" {
				entry[recv+"."+field] = modeWrite
			}
		}
	}
	w.stmt(fd.Body, entry)
}

// stmt interprets one statement, returning the exit state and whether
// the statement always terminates the function (return/panic).
func (w *lockWalker) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch x := s.(type) {
	case nil:
		return st, false
	case *ast.BlockStmt:
		for _, inner := range x.List {
			var term bool
			st, term = w.stmt(inner, st)
			if term {
				return st, true
			}
		}
		return st, false
	case *ast.ExprStmt:
		if key, mode, isEvent := w.lockEvent(x.X); isEvent {
			if mode == 0 {
				delete(st, key)
			} else {
				st[key] = mode
			}
			return st, false
		}
		w.checkExprs(x.X, st, nil)
		if call, ok := x.X.(*ast.CallExpr); ok && isPanicCall(w.p, call) {
			return st, true
		}
		return st, false
	case *ast.DeferStmt:
		if _, mode, isEvent := w.lockEvent(x.Call); isEvent && mode == 0 {
			// Deferred unlock: the lock stays held to function exit.
			return st, false
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			// The deferred closure runs at return; approximate its lock
			// context with the state at registration.
			w.stmt(fl.Body, st.clone())
			for _, arg := range x.Call.Args {
				w.checkExprs(arg, st, nil)
			}
			return st, false
		}
		w.checkExprs(x.Call, st, nil)
		return st, false
	case *ast.GoStmt:
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			// A spawned goroutine holds nothing, whatever the parent holds.
			w.stmt(fl.Body, make(lockState))
			for _, arg := range x.Call.Args {
				w.checkExprs(arg, st, nil)
			}
			return st, false
		}
		w.checkExprs(x.Call, st, nil)
		return st, false
	case *ast.AssignStmt:
		writes := make(map[*ast.SelectorExpr]bool)
		for _, lhs := range x.Lhs {
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
		for _, rhs := range x.Rhs {
			w.checkExprs(rhs, st, nil)
		}
		for _, lhs := range x.Lhs {
			w.checkExprs(lhs, st, writes)
		}
		w.registerFresh(x)
		return st, false
	case *ast.IncDecStmt:
		writes := make(map[*ast.SelectorExpr]bool)
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
		w.checkExprs(x.X, st, writes)
		return st, false
	case *ast.DeclStmt:
		gd, ok := x.Decl.(*ast.GenDecl)
		if !ok {
			return st, false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.checkExprs(v, st, nil)
			}
			w.registerFreshSpec(vs)
		}
		return st, false
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.checkExprs(r, st, nil)
		}
		return st, true
	case *ast.IfStmt:
		st, _ = w.stmt(x.Init, st)
		w.checkExprs(x.Cond, st, nil)
		thenExit, thenTerm := w.stmt(x.Body, st.clone())
		elseEntry := st.clone()
		elseExit, elseTerm := elseEntry, false
		if x.Else != nil {
			elseExit, elseTerm = w.stmt(x.Else, elseEntry)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseExit, false
		case elseTerm:
			return thenExit, false
		default:
			return intersect(thenExit, elseExit), false
		}
	case *ast.ForStmt:
		st, _ = w.stmt(x.Init, st)
		if x.Cond != nil {
			w.checkExprs(x.Cond, st, nil)
		}
		bodyExit, _ := w.stmt(x.Body, st.clone())
		bodyExit, _ = w.stmt(x.Post, bodyExit)
		if x.Cond == nil {
			// for{}: the loop only exits via break; keep the entry state.
			return st, false
		}
		return intersect(st, bodyExit), false
	case *ast.RangeStmt:
		w.checkExprs(x.X, st, nil)
		if x.Key != nil {
			w.checkExprs(x.Key, st, selWrites(x.Key))
		}
		if x.Value != nil {
			w.checkExprs(x.Value, st, selWrites(x.Value))
		}
		bodyExit, _ := w.stmt(x.Body, st.clone())
		return intersect(st, bodyExit), false
	case *ast.SwitchStmt:
		st, _ = w.stmt(x.Init, st)
		if x.Tag != nil {
			w.checkExprs(x.Tag, st, nil)
		}
		return w.clauses(x.Body, st)
	case *ast.TypeSwitchStmt:
		st, _ = w.stmt(x.Init, st)
		st, _ = w.stmt(x.Assign, st)
		return w.clauses(x.Body, st)
	case *ast.SelectStmt:
		return w.clauses(x.Body, st)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	case *ast.SendStmt:
		w.checkExprs(x.Chan, st, nil)
		w.checkExprs(x.Value, st, nil)
		return st, false
	case *ast.BranchStmt, *ast.EmptyStmt:
		return st, false
	default:
		w.checkNode(s, st)
		return st, false
	}
}

// clauses joins the case/comm clauses of a switch or select body.
func (w *lockWalker) clauses(body *ast.BlockStmt, st lockState) (lockState, bool) {
	var exits []lockState
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				w.checkExprs(e, st, nil)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			clauseSt := st.clone()
			clauseSt, _ = w.stmt(c.Comm, clauseSt)
			exit, term := w.stmtList(c.Body, clauseSt)
			if !term {
				exits = append(exits, exit)
			}
			continue
		default:
			continue
		}
		exit, term := w.stmtList(stmts, st.clone())
		if !term {
			exits = append(exits, exit)
		}
	}
	if !hasDefault {
		exits = append(exits, st)
	}
	if len(exits) == 0 {
		return st, true
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = intersect(out, e)
	}
	return out, false
}

func (w *lockWalker) stmtList(stmts []ast.Stmt, st lockState) (lockState, bool) {
	for _, s := range stmts {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// lockEvent recognizes base.mu.Lock()/RLock()/Unlock()/RUnlock() calls.
// mode 0 means the event releases the lock.
func (w *lockWalker) lockEvent(e ast.Expr) (key string, mode lockMode, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	fun, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch fun.Sel.Name {
	case "Lock":
		mode = modeWrite
	case "RLock":
		mode = modeRead
	case "Unlock", "RUnlock":
		mode = 0
	default:
		return "", 0, false
	}
	recv, isSel := ast.Unparen(fun.X).(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	base, isIdent := ast.Unparen(recv.X).(*ast.Ident)
	if !isIdent {
		return "", 0, false
	}
	if t := w.p.Info.TypeOf(recv); t == nil || !isMutexType(t) {
		return "", 0, false
	}
	return base.Name + "." + recv.Sel.Name, mode, true
}

// checkExprs inspects an expression tree for guarded-field accesses and
// holds-method calls. writes marks selector nodes that are assignment
// targets. Function literals are analyzed separately with an empty
// state (they may run on any goroutine later).
func (w *lockWalker) checkExprs(e ast.Expr, st lockState, writes map[*ast.SelectorExpr]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.stmt(x.Body, make(lockState))
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
					// Taking the address lets the caller mutate it.
					w.checkAccess(sel, true, st)
					return false
				}
			}
		case *ast.CallExpr:
			w.checkHoldsCall(x, st)
		case *ast.SelectorExpr:
			w.checkAccess(x, writes[x], st)
		}
		return true
	})
}

// checkNode is the fallback for statements without a dedicated case:
// every contained expression is treated as a read.
func (w *lockWalker) checkNode(n ast.Node, st lockState) {
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok {
			w.checkExprs(e, st, nil)
			return false
		}
		return true
	})
}

// checkAccess validates one guarded-field selector against the state.
func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, isWrite bool, st lockState) {
	selection, ok := w.p.Info.Selections[sel]
	if !ok {
		return
	}
	fv, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	gi, ok := w.guards[fv]
	if !ok {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return // non-identifier base: out of scope (DESIGN §13)
	}
	if obj, ok := w.p.Info.Uses[base].(*types.Var); ok && w.fresh[obj] {
		return // provably unshared local
	}
	key := base.Name + "." + gi.mu
	mode := st[key]
	field := sel.Sel.Name
	switch {
	case isWrite && mode == modeRead:
		w.diagf(sel.Pos(), "write to %s.%s requires %s.Lock(), but only %s.RLock() is held",
			base.Name, field, key, key)
	case isWrite && mode == 0:
		w.diagf(sel.Pos(), "write to %s.%s requires %s.Lock() (field %s is guarded by %s)",
			base.Name, field, key, field, gi.mu)
	case !isWrite && mode == 0:
		w.diagf(sel.Pos(), "read of %s.%s requires %s.Lock() or %s.RLock() (field %s is guarded by %s)",
			base.Name, field, key, key, field, gi.mu)
	}
}

// checkHoldsCall validates a call to a //lint:holds method: the caller
// must hold the named mutex of the receiver at the call site.
func (w *lockWalker) checkHoldsCall(call *ast.CallExpr, st lockState) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := w.p.Info.Selections[fun]
	if !ok {
		return
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	field, ok := w.holds[fn]
	if !ok {
		return
	}
	base, ok := ast.Unparen(fun.X).(*ast.Ident)
	if !ok {
		return
	}
	if obj, ok := w.p.Info.Uses[base].(*types.Var); ok && w.fresh[obj] {
		return
	}
	if st[base.Name+"."+field] == 0 {
		w.diagf(call.Pos(), "call to %s requires %s.%s held (//lint:holds %s)",
			fn.Name(), base.Name, field, field)
	}
}

// registerFresh records locals defined from a composite literal, &T{},
// or new(T): their values cannot be shared yet, so unlocked access is
// fine (the standard constructor pattern).
func (w *lockWalker) registerFresh(x *ast.AssignStmt) {
	if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i, lhs := range x.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || !isFreshExpr(w.p, x.Rhs[i]) {
			continue
		}
		if v, ok := w.p.Info.Defs[id].(*types.Var); ok {
			w.fresh[v] = true
		}
	}
}

func (w *lockWalker) registerFreshSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		if !isFreshExpr(w.p, vs.Values[i]) {
			continue
		}
		if v, ok := w.p.Info.Defs[name].(*types.Var); ok {
			w.fresh[v] = true
		}
	}
}

// isFreshExpr reports whether e constructs a brand-new value: T{},
// &T{}, or new(T).
func isFreshExpr(p *Package, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := p.Info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "new"
	}
	return false
}

// isPanicCall reports whether call is the panic builtin.
func isPanicCall(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// fieldComment returns the annotation text attached to a struct field:
// the trailing same-line comment, or the doc comment above it.
func fieldComment(f *ast.Field) string {
	if f.Comment != nil && len(f.Comment.List) > 0 {
		return f.Comment.List[0].Text
	}
	if f.Doc != nil && len(f.Doc.List) > 0 {
		var all string
		for _, c := range f.Doc.List {
			all += c.Text + "\n"
		}
		return all
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// receiverStruct resolves a method's receiver to its struct type, or
// nil when the receiver is not a (pointer to) struct.
func receiverStruct(fn *types.Func) *types.Struct {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// structHasMutexField reports whether st declares a mutex field named
// field.
func structHasMutexField(st *types.Struct, field string) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == field && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

// receiverName returns the name of a method's receiver identifier, or
// "" when the receiver is anonymous.
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// selWrites marks e as a write target when it is a selector (range
// key/value destinations).
func selWrites(e ast.Expr) map[*ast.SelectorExpr]bool {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		return map[*ast.SelectorExpr]bool{sel: true}
	}
	return nil
}
