package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directiveRule is the pseudo-rule under which problems with the
// //lint:allow directives themselves are reported. It is deliberately
// not suppressible: a broken suppression must be fixed, not suppressed.
const directiveRule = "lint"

// allowPrefix is the directive marker. Like //go:build it must follow
// the comment slashes with no space.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	pos    token.Position
	used   bool
}

// allowIndex maps file -> line -> directives that may suppress findings
// on that line. A directive is registered on its own line and the next,
// so it works both as a trailing comment and on the line above.
type allowIndex struct {
	byLine map[string]map[int][]*allowDirective
	all    []*allowDirective
}

// suppress reports whether d is covered by a directive, marking the
// directive used. Directive problems themselves are never suppressed.
func (ai *allowIndex) suppress(d Diagnostic) bool {
	if d.Rule == directiveRule {
		return false
	}
	for _, dir := range ai.byLine[d.Pos.Filename][d.Pos.Line] {
		if dir.rule == d.Rule {
			dir.used = true
			return true
		}
	}
	return false
}

// collectAllows parses every //lint:allow directive in the package and
// validates it against the known rule set. Malformed or unknown-rule
// directives are returned as findings.
func collectAllows(p *Package, known map[string]bool) (*allowIndex, []Diagnostic) {
	ai := &allowIndex{byLine: make(map[string]map[int][]*allowDirective)}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := p.position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Rule: directiveRule,
						Message: "malformed //lint:allow: want \"//lint:allow <rule> <reason>\" " +
							"with a non-empty reason",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    directiveRule,
						Message: fmt.Sprintf("unknown rule %q in //lint:allow", rule),
					})
					continue
				}
				dir := &allowDirective{
					rule:   rule,
					reason: strings.Join(fields[1:], " "),
					pos:    pos,
				}
				ai.all = append(ai.all, dir)
				lines := ai.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowDirective)
					ai.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], dir)
				lines[pos.Line+1] = append(lines[pos.Line+1], dir)
			}
		}
	}
	return ai, diags
}
