package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// directiveRule is the pseudo-rule under which problems with the
// //lint:allow directives themselves are reported. It is deliberately
// not suppressible: a broken suppression must be fixed, not suppressed.
const directiveRule = "lint"

// allowPrefix is the directive marker. Like //go:build it must follow
// the comment slashes with no space.
const allowPrefix = "//lint:allow"

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	rule   string
	reason string
	pos    token.Position
	span   bool // covers a whole function, not a line pair
	used   bool
}

// spanAllow is a function-scoped directive: a //lint:allow placed in a
// function's doc comment (or on its declaration line) suppresses the
// rule for every line of that function. It exists for functions whose
// entire job is the suppressed behavior — a scratch-buffer append
// helper on the hot path — where per-line directives would outnumber
// the code.
type spanAllow struct {
	lo, hi int // inclusive line range
	dir    *allowDirective
}

// allowIndex maps findings to the directives that may suppress them.
// Line directives are registered on their own line and the next, so
// they work both as trailing comments and on the line above; span
// directives cover the function's full line range.
type allowIndex struct {
	byLine map[string]map[int][]*allowDirective
	spans  map[string][]spanAllow
	all    []*allowDirective
}

// newAllowIndex returns an empty index ready for collect.
func newAllowIndex() *allowIndex {
	return &allowIndex{
		byLine: make(map[string]map[int][]*allowDirective),
		spans:  make(map[string][]spanAllow),
	}
}

// suppress reports whether d is covered by a directive, marking the
// directive used. Directive problems themselves are never suppressed.
func (ai *allowIndex) suppress(d Diagnostic) bool {
	if d.Rule == directiveRule {
		return false
	}
	for _, dir := range ai.byLine[d.Pos.Filename][d.Pos.Line] {
		if dir.rule == d.Rule {
			dir.used = true
			return true
		}
	}
	for _, sp := range ai.spans[d.Pos.Filename] {
		if sp.dir.rule == d.Rule && sp.lo <= d.Pos.Line && d.Pos.Line <= sp.hi {
			sp.dir.used = true
			return true
		}
	}
	return false
}

// collect parses every //lint:allow directive in the package and
// validates it against the known rule set. Malformed or unknown-rule
// directives are returned as findings.
func (ai *allowIndex) collect(p *Package, known map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		// Function extents, for deciding whether a directive is
		// function-scoped: part of the doc comment, or on the line of
		// the declaration itself.
		type funcExtent struct {
			declLine, lo, hi int
			doc              *ast.CommentGroup
		}
		var funcs []funcExtent
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			funcs = append(funcs, funcExtent{
				declLine: p.position(fd.Pos()).Line,
				lo:       p.position(fd.Pos()).Line,
				hi:       p.position(fd.End()).Line,
				doc:      fd.Doc,
			})
		}
		inDoc := func(c *ast.Comment, doc *ast.CommentGroup) bool {
			if doc == nil {
				return false
			}
			for _, dc := range doc.List {
				if dc == c {
					return true
				}
			}
			return false
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := p.position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:  pos,
						Rule: directiveRule,
						Message: "malformed //lint:allow: want \"//lint:allow <rule> <reason>\" " +
							"with a non-empty reason",
					})
					continue
				}
				rule := fields[0]
				if !known[rule] {
					diags = append(diags, Diagnostic{
						Pos:     pos,
						Rule:    directiveRule,
						Message: fmt.Sprintf("unknown rule %q in //lint:allow", rule),
					})
					continue
				}
				dir := &allowDirective{
					rule:   rule,
					reason: strings.Join(fields[1:], " "),
					pos:    pos,
				}
				ai.all = append(ai.all, dir)
				spanned := false
				for _, fe := range funcs {
					if inDoc(c, fe.doc) || pos.Line == fe.declLine {
						dir.span = true
						ai.spans[pos.Filename] = append(ai.spans[pos.Filename],
							spanAllow{lo: fe.lo, hi: fe.hi, dir: dir})
						spanned = true
						break
					}
				}
				if spanned {
					continue
				}
				lines := ai.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*allowDirective)
					ai.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], dir)
				lines[pos.Line+1] = append(lines[pos.Line+1], dir)
			}
		}
	}
	return diags
}
