package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// deterministicScopes lists the module-relative directories whose code
// must be bit-for-bit reproducible from a seed: every package that takes
// part in producing the paper's figures. Subdirectories inherit the
// constraint.
var deterministicScopes = []string{
	"internal/des",
	"internal/ecommerce",
	"internal/core",
	"internal/experiment",
	"internal/stats",
	"internal/ctmc",
	"internal/journal",
	"internal/conformance",
	"internal/faults",
	"internal/fleet",
	"internal/health",
	"internal/sched",
}

// bannedImports are entropy or wall-clock sources that must never be
// linked into simulation code. Randomness comes from internal/xrand
// streams, which are stable across platforms and Go releases.
var bannedImports = map[string]string{
	"math/rand":    "use internal/xrand streams seeded by the experiment",
	"math/rand/v2": "use internal/xrand streams seeded by the experiment",
	"crypto/rand":  "use internal/xrand streams seeded by the experiment",
}

// bannedCalls maps package path -> function name -> why it is banned in
// simulation code.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":       "simulated time must come from the DES clock, not the wall clock",
		"Since":     "simulated time must come from the DES clock, not the wall clock",
		"Until":     "simulated time must come from the DES clock, not the wall clock",
		"Sleep":     "simulation must advance via DES events, not real delays",
		"After":     "simulation must advance via DES events, not real timers",
		"Tick":      "simulation must advance via DES events, not real timers",
		"NewTicker": "simulation must advance via DES events, not real timers",
		"NewTimer":  "simulation must advance via DES events, not real timers",
		"AfterFunc": "simulation must advance via DES events, not real timers",
	},
	"os": {
		"Getpid":   "process identity is run-dependent entropy",
		"Getppid":  "process identity is run-dependent entropy",
		"Getuid":   "process identity is run-dependent entropy",
		"Hostname": "host identity is run-dependent entropy",
		"Getenv":   "environment lookups make results depend on ambient state",
		"Environ":  "environment lookups make results depend on ambient state",
	},
}

// DeterminismAnalyzer forbids wall-clock and ambient-entropy sources in
// the simulation and statistics packages, so that every results/
// artifact stays re-derivable from its seed.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time and ambient entropy in simulation packages",
	Run:  runDeterminism,
}

// inDeterministicScope reports whether the package is policed.
func inDeterministicScope(rel string) bool {
	for _, scope := range deterministicScopes {
		if rel == scope || strings.HasPrefix(rel, scope+"/") {
			return true
		}
	}
	return false
}

func runDeterminism(p *Package) []Diagnostic {
	if !inDeterministicScope(p.Rel) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := bannedImports[path]; ok {
				diags = append(diags, p.diagf(spec.Pos(), "determinism",
					"import of %s in simulation package; %s", path, why))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			if why, ok := bannedCalls[pn.Imported().Path()][sel.Sel.Name]; ok {
				diags = append(diags, p.diagf(sel.Pos(), "determinism",
					"%s.%s in simulation package; %s", pn.Imported().Path(), sel.Sel.Name, why))
			}
			return true
		})
	}
	return diags
}
