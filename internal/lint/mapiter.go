package lint

import (
	"go/ast"
	"go/types"
)

// MapIterAnalyzer flags `range` over a map whose loop body writes
// output. Go randomizes map iteration order, so any bytes emitted from
// inside such a loop — a CSV row, an SVG element, a table line — land in
// a different order every run, silently breaking the reproducibility of
// the results/ artifacts. Collect the keys, sort them, and range over
// the sorted slice instead.
var MapIterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "forbid map iteration that feeds output without sorted keys",
	Run:  runMapIter,
}

// outputFuncs are package-level functions that emit bytes.
var outputFuncs = map[string]map[string]bool{
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
	},
	"io": {"WriteString": true},
	"os": {"WriteFile": true},
}

// outputMethods are method names that emit bytes on writers, builders,
// and encoders.
var outputMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"WriteAll":    true,
}

func runMapIter(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if out := firstOutputCall(p, rs.Body); out != nil {
				diags = append(diags, p.diagf(rs.For, "mapiter",
					"map iteration order feeds output via %s; range over sorted keys instead",
					types.ExprString(out.Fun)))
			}
			return true
		})
	}
	return diags
}

// firstOutputCall returns an output-emitting call inside the loop body,
// or nil.
func firstOutputCall(p *Package, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObject(p, call).(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		if sig.Recv() != nil {
			if outputMethods[fn.Name()] {
				found = call
			}
			return true
		}
		if fn.Pkg() != nil && outputFuncs[fn.Pkg().Path()][fn.Name()] {
			found = call
		}
		return true
	})
	return found
}
