package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErrAnalyzer flags call statements whose error result vanishes.
// A failed write that nobody checks is how a truncated CSV or SVG lands
// in results/ looking complete. Exemptions, all of which cannot fail or
// only feed terminal chatter:
//
//   - fmt.Print, fmt.Printf, fmt.Println (standard output logging)
//   - fmt.Fprint* to os.Stdout, os.Stderr, *strings.Builder, *bytes.Buffer
//   - methods on strings.Builder and bytes.Buffer (documented nil error)
//
// An explicit `_ = f()` is visible in review and is not flagged.
var DroppedErrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc:  "forbid silently discarded error returns",
	Run:  runDroppedErr,
}

var errorType = types.Universe.Lookup("error").Type()

func runDroppedErr(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[call.Fun]
			if !ok || tv.IsType() { // unknown callee or a conversion
				return true
			}
			sig, ok := tv.Type.(*types.Signature)
			if !ok { // builtin
				return true
			}
			if !returnsError(sig) || exemptCall(p, call) {
				return true
			}
			diags = append(diags, p.diagf(call.Pos(), "droppederr",
				"error returned by %s is silently dropped; check it or discard explicitly with _ =",
				types.ExprString(call.Fun)))
			return true
		})
	}
	return diags
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// exemptCall reports whether the call's error is unconditionally nil or
// mere terminal chatter (see the analyzer doc).
func exemptCall(p *Package, call *ast.CallExpr) bool {
	obj := calleeObject(p, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return isInfallibleWriter(recv.Type())
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		w := call.Args[0]
		if isStdStream(p, w) {
			return true
		}
		return isInfallibleWriter(p.Info.TypeOf(w))
	}
	return false
}

// calleeObject resolves the function object a call refers to, if any.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// isInfallibleWriter reports whether t is strings.Builder or
// bytes.Buffer (possibly behind a pointer): their Write methods are
// documented to always return a nil error.
func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// isStdStream reports whether the expression is exactly os.Stdout or
// os.Stderr.
func isStdStream(p *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := p.Info.Uses[sel.Sel].(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg().Path() != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
