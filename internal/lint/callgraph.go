package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file builds the shared call graph the interprocedural analyzers
// (hotpath, lockguard) walk. The graph covers every function and method
// declared in the loaded packages and resolves three kinds of call
// sites:
//
//   - static calls (package functions, concrete methods): one edge to
//     the declared callee when it lives in the tree;
//   - interface method calls through interfaces *defined in the tree*:
//     conservatively fanned out to every in-tree type that implements
//     the interface (so Monitor.Observe reaches every Detector.Observe
//     implementation);
//   - calls through function values (fields, parameters, locals) and
//     through out-of-tree interfaces (io.Writer, sort.Interface): left
//     unresolved. These are the engine's documented false-negative
//     surface — see DESIGN §13.
//
// Function literals do not get nodes of their own: their bodies are
// attributed to the enclosing declared function, which matches how the
// hot-path contract reads (a closure constructed and invoked inside
// Step is part of Step's cost).
type CallGraph struct {
	// Nodes maps every declared function/method with a body to its node.
	Nodes map[*types.Func]*FuncNode
	// Unresolved counts call sites the builder could not resolve
	// (function values, out-of-tree interfaces); exposed for -v output
	// so the conservatism is measurable.
	Unresolved int
}

// FuncNode is one declared function or method in the tree.
type FuncNode struct {
	// Fn is the type-checker object; Fn.FullName() names diagnostics.
	Fn *types.Func
	// Decl is the declaration, always with a non-nil body.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Calls holds the resolved outgoing edges in source order.
	Calls []CallEdge
}

// CallEdge is one resolved call site.
type CallEdge struct {
	// Site is the call expression in the caller's body.
	Site *ast.CallExpr
	// Callee is the resolved target.
	Callee *FuncNode
	// ViaInterface reports that the edge came from interface fan-out
	// rather than a direct static call.
	ViaInterface bool
}

// buildCallGraph constructs the graph over every loaded package.
func buildCallGraph(t *Tree) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*FuncNode)}

	// Pass 1: one node per declared function with a body.
	for _, p := range t.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue // type-check failure; degrade gracefully
				}
				g.Nodes[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: p}
			}
		}
	}

	// Implementation lookup is cached per interface method: the fan-out
	// scans every named type in the tree once per distinct callee.
	impls := make(map[*types.Func][]*FuncNode)

	// Pass 2: resolve the call sites of every node body.
	for _, node := range g.Nodes {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			g.addEdges(t, n, call, impls)
			return true
		})
		sort.SliceStable(n.Calls, func(i, j int) bool {
			return n.Calls[i].Site.Pos() < n.Calls[j].Site.Pos()
		})
	}
	return g
}

// addEdges resolves one call site into zero or more edges on caller.
func (g *CallGraph) addEdges(t *Tree, caller *FuncNode, call *ast.CallExpr, impls map[*types.Func][]*FuncNode) {
	info := caller.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			g.addStatic(caller, call, obj)
		case *types.Builtin:
			// append/make/new are modeled by the hotpath site scan.
		default:
			g.Unresolved++ // local function value
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				g.Unresolved++ // func-typed field value
				return
			}
			if types.IsInterface(sel.Recv()) {
				g.addInterfaceCall(t, caller, call, sel.Recv(), fn, impls)
				return
			}
			g.addStatic(caller, call, fn)
			return
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			g.addStatic(caller, call, fn)
			return
		}
		g.Unresolved++
	default:
		// Call of a function literal, index expression, etc.
		g.Unresolved++
	}
}

// addStatic records an edge to a statically resolved callee when its
// declaration is in the tree.
func (g *CallGraph) addStatic(caller *FuncNode, call *ast.CallExpr, fn *types.Func) {
	if callee, ok := g.Nodes[fn]; ok {
		caller.Calls = append(caller.Calls, CallEdge{Site: call, Callee: callee})
	}
}

// addInterfaceCall fans an interface method call out to every in-tree
// implementation. Out-of-tree interfaces are left unresolved: their
// implementations are chosen at setup time (an io.Writer sink), not on
// the analyzed path.
func (g *CallGraph) addInterfaceCall(t *Tree, caller *FuncNode, call *ast.CallExpr, recv types.Type, fn *types.Func, impls map[*types.Func][]*FuncNode) {
	if pkg := fn.Pkg(); pkg == nil || !t.inTree(pkg.Path()) {
		g.Unresolved++
		return
	}
	targets, ok := impls[fn]
	if !ok {
		targets = findImplementations(t, g, recv, fn)
		impls[fn] = targets
	}
	for _, callee := range targets {
		caller.Calls = append(caller.Calls, CallEdge{Site: call, Callee: callee, ViaInterface: true})
	}
}

// findImplementations returns the in-tree methods that an interface
// method call can dispatch to, in deterministic order.
func findImplementations(t *Tree, g *CallGraph, recv types.Type, fn *types.Func) []*FuncNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, p := range t.Pkgs {
		if p.Pkg == nil {
			continue
		}
		scope := p.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			sel := types.NewMethodSet(ptr).Lookup(fn.Pkg(), fn.Name())
			if sel == nil {
				continue
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				continue
			}
			if node, ok := g.Nodes[m]; ok && !seen[node] {
				seen[node] = true
				out = append(out, node)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fn.FullName() < out[j].Fn.FullName() })
	return out
}

// reachStep records how a function was first reached during the
// breadth-first walk, for path reconstruction in diagnostics.
type reachStep struct {
	from *FuncNode // nil for roots
	via  CallEdge
}

// Reachable walks the graph breadth-first from the given roots and
// returns, for every reachable node, the step that first reached it.
// Roots map to a step with a nil origin. Breadth-first order makes the
// recorded paths shortest, so diagnostics explain sites with the most
// direct chain from a root.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]reachStep {
	reached := make(map[*FuncNode]reachStep, len(roots))
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if _, ok := reached[r]; ok {
			continue
		}
		reached[r] = reachStep{}
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Calls {
			if _, ok := reached[e.Callee]; ok {
				continue
			}
			reached[e.Callee] = reachStep{from: n, via: e}
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// path reconstructs the call chain from a root to n, shortest first.
func path(reached map[*FuncNode]reachStep, n *FuncNode) []*FuncNode {
	var rev []*FuncNode
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		step, ok := reached[cur]
		if !ok {
			break
		}
		cur = step.from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
