package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goldenCases maps each testdata package to the import path it pretends
// to live at (which controls scope-sensitive rules) and the analyzers
// under test. Directive validation (rule "lint") always runs.
var goldenCases = []struct {
	dir    string
	asPath string
	rules  []string
}{
	{"determinism", "rejuv/internal/des/golden", []string{"determinism"}},
	{"floatcmp", "rejuv/internal/golden/floatcmp", []string{"floatcmp"}},
	{"droppederr", "rejuv/internal/golden/droppederr", []string{"droppederr"}},
	{"mapiter", "rejuv/internal/golden/mapiter", []string{"mapiter"}},
	{"seedflow", "rejuv/cmd/golden", []string{"seedflow"}},
	{"allow", "rejuv/internal/golden/allow", []string{"floatcmp"}},
	{"doccomment", "rejuv/internal/golden/doccomment", []string{"doccomment"}},
	{"doccomment_nopkg", "rejuv/internal/golden/nopkg", []string{"doccomment"}},
	{"hotpath", "rejuv/internal/golden/hotpath", []string{"hotpath"}},
	{"lockguard", "rejuv/internal/golden/lockguard", []string{"lockguard"}},
}

// TestGolden checks every analyzer against its testdata package: each
// `// want "regexp"` comment must be matched by exactly one finding on
// its line, and every finding must be wanted. A want comment that has a
// line to itself refers to the line above it (used where the finding's
// line is itself a comment, e.g. directive findings).
func TestGolden(t *testing.T) {
	loader, err := newLoader("testdata/src")
	if err != nil {
		t.Fatalf("newLoader: %v", err)
	}
	for _, tc := range goldenCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir, err := filepath.Abs(filepath.Join("testdata", "src", tc.dir))
			if err != nil {
				t.Fatal(err)
			}
			p, err := loader.load(tc.asPath, dir)
			if err != nil {
				t.Fatalf("load %s: %v", tc.dir, err)
			}
			analyzers := selectByName(t, tc.rules)
			diags := Run([]*Package{p}, analyzers)
			wants := parseWants(t, p)
			checkGolden(t, diags, wants)
		})
	}
}

func selectByName(t *testing.T, names []string) []*Analyzer {
	t.Helper()
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			t.Fatalf("unknown analyzer %q in golden case", n)
		}
		out = append(out, a)
	}
	return out
}

// want is one expectation: a compiled regexp anchored to a line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantQuoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// parseWants extracts the expectations from every comment in the
// package.
func parseWants(t *testing.T, p *Package) []*want {
	t.Helper()
	lines := make(map[string][]string) // filename -> source lines
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.position(c.Pos())
				if _, ok := lines[pos.Filename]; !ok {
					data, err := os.ReadFile(pos.Filename)
					if err != nil {
						t.Fatalf("read %s: %v", pos.Filename, err)
					}
					lines[pos.Filename] = strings.Split(string(data), "\n")
				}
				line := pos.Line
				src := lines[pos.Filename]
				if pos.Line-1 < len(src) && strings.TrimSpace(src[pos.Line-1][:pos.Column-1]) == "" {
					// The comment owns its line: it describes the line above.
					line--
				}
				for _, q := range wantQuoteRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, q[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: line, re: re})
				}
			}
		}
	}
	return wants
}

// checkGolden pairs findings against expectations one-to-one.
func checkGolden(t *testing.T, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Rule, d.Message)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
