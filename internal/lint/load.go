package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The standard-library importer compiles packages from GOROOT source.
// Cgo-backed variants (net, os/user) cannot be type-checked that way, so
// the pure-Go fallbacks are selected once for the whole process.
var disableCgo sync.Once

// loader parses and type-checks packages of one module. Module-internal
// imports are resolved recursively from source; everything else goes to
// the stdlib source importer. Type errors are collected, not fatal:
// analyzers must degrade gracefully on partial information.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// newLoader locates the module containing dir and prepares importers.
func newLoader(dir string) (*loader, error) {
	disableCgo.Do(func() { build.Default.CgoEnabled = false })
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:    fset,
		modRoot: root,
		modPath: string(m[1]),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	l.std = std
	return l, nil
}

// LoadModule parses and type-checks every package of the module that
// contains dir, skipping testdata, hidden directories, and _test.go
// files. Packages are returned sorted by import path.
func LoadModule(dir string) ([]*Package, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	err = filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil || !ok {
			return err
		}
		rel, err := filepath.Rel(l.modRoot, path)
		if err != nil {
			return err
		}
		importPath := l.modPath
		if rel != "." {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(importPath, path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. The path need not match the directory: golden tests
// use it to place testdata packages inside policed path scopes.
func LoadDir(dir, asPath string) (*Package, error) {
	l, err := newLoader(dir)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(asPath, abs)
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true, nil
		}
	}
	return false, nil
}

// isSourceFile reports whether the entry is a buildable, non-test Go
// file. Test files are out of scope: the rules protect shipped
// simulation and reporting code, and tests legitimately compare exact
// floats and use wall-clock timeouts.
func isSourceFile(e os.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() &&
		strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks one directory as importPath, loading
// module-internal dependencies first.
func (l *loader) load(importPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	p := &Package{
		Path: importPath,
		Rel:  l.relPath(importPath),
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}

	// Pre-load module-internal imports so the importer below can serve
	// them from cache; a failure there is recorded, not fatal.
	for _, f := range files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil || !l.isModulePath(path) || path == importPath {
				continue
			}
			depDir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
			if path == l.modPath {
				depDir = l.modRoot
			}
			if _, err := l.load(path, depDir); err != nil {
				p.TypeErrors = append(p.TypeErrors, err)
			}
		}
	}

	conf := types.Config{
		Importer: &chainImporter{l: l},
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check returns a usable (partial) package even on errors, which the
	// Error callback has already collected.
	p.Pkg, _ = conf.Check(importPath, l.fset, files, p.Info)
	p.Files = files
	l.pkgs[importPath] = p
	return p, nil
}

// relPath strips the module prefix from an import path.
func (l *loader) relPath(importPath string) string {
	if importPath == l.modPath {
		return ""
	}
	return strings.TrimPrefix(importPath, l.modPath+"/")
}

func (l *loader) isModulePath(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// chainImporter serves module-internal packages from the loader's cache
// and defers everything else to the stdlib source importer.
type chainImporter struct{ l *loader }

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, _ types.ImportMode) (pkg *types.Package, err error) {
	if c.l.isModulePath(path) {
		p, ok := c.l.pkgs[path]
		if !ok || p.Pkg == nil {
			return nil, fmt.Errorf("lint: module package %s not loaded", path)
		}
		return p.Pkg, nil
	}
	// The source importer can panic on exotic GOROOT code; degrade to a
	// type error so analysis continues with partial information.
	defer func() {
		if r := recover(); r != nil {
			pkg, err = nil, fmt.Errorf("lint: importing %s panicked: %v", path, r)
		}
	}()
	return c.l.std.ImportFrom(path, dir, 0)
}
