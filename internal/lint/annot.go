package lint

import (
	"regexp"
	"strings"
)

// This file parses the three annotation grammars the interprocedural
// analyzers read. The parsers are pure string functions so the fuzz
// smoke (FuzzAnnotationGrammar) can drive them directly; placement
// validation lives with the analyzers that own each grammar.
//
//	//lint:hotpath                 root annotation on a func declaration
//	//lint:holds <field>           method runs with <field> already held
//	// ... guarded by <field> ...  struct field annotation for lockguard
const (
	hotpathPrefix = "//lint:hotpath"
	holdsPrefix   = "//lint:holds"
)

// parseHotpath classifies a comment as a hotpath directive. ok is false
// for a malformed directive (trailing fields: the annotation is bare by
// design, reasons belong on //lint:allow suppressions).
func parseHotpath(text string) (isDirective, ok bool) {
	if !strings.HasPrefix(text, hotpathPrefix) {
		return false, false
	}
	rest := strings.TrimPrefix(text, hotpathPrefix)
	if len(rest) > 0 && !isCommentSpace(rest[0]) {
		return false, false // some other //lint:hotpathXXX token; not ours
	}
	return true, strings.TrimSpace(rest) == ""
}

// parseHolds extracts the mutex field name from a //lint:holds
// directive. ok is false when the directive does not name exactly one
// identifier.
func parseHolds(text string) (field string, isDirective, ok bool) {
	if !strings.HasPrefix(text, holdsPrefix) {
		return "", false, false
	}
	rest := strings.TrimPrefix(text, holdsPrefix)
	if len(rest) > 0 && !isCommentSpace(rest[0]) {
		return "", false, false
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 || !isIdent(fields[0]) {
		return "", true, false
	}
	return fields[0], true, true
}

// guardedByRE matches the lockguard field annotation inside an ordinary
// comment: "guarded by <identifier>".
var guardedByRE = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// parseGuardedBy extracts the mutex field name from a struct field
// comment, or ok=false when the comment carries no guard annotation.
func parseGuardedBy(text string) (field string, ok bool) {
	m := guardedByRE.FindStringSubmatch(text)
	if m == nil {
		return "", false
	}
	return m[1], true
}

// isCommentSpace reports whether c separates a directive token from its
// arguments.
func isCommentSpace(c byte) bool { return c == ' ' || c == '\t' }

// isIdent reports whether s is a plain Go identifier (ASCII form, which
// is all the annotation grammar admits).
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
