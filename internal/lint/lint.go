// Package lint implements rejuvlint, the repository's static-analysis
// suite. It is built on the standard library only (go/ast, go/parser,
// go/token, go/types) and enforces the invariants the paper's evaluation
// depends on: simulation code must be deterministic (no wall-clock time,
// no ambient randomness), numerical code must not compare floats with
// ==/!=, errors must not be dropped silently, and nothing that feeds the
// results/ artifacts may depend on map iteration order.
//
// Two interprocedural rules enforce the runtime contracts on top of
// that: hotpath forbids allocation sites reachable from //lint:hotpath
// roots through a shared call graph, and lockguard checks "guarded by"
// field annotations against a per-function lock-state flow. All rules
// share one type-checked load and one call graph per invocation.
//
// A finding can be suppressed per line with a justification comment:
//
//	//lint:allow <rule> <reason>
//
// placed either at the end of the offending line or on the line directly
// above it; placed in a function's doc comment (or on its declaration
// line) it covers the whole function. The reason is mandatory; a
// malformed, unknown, or unused directive is itself reported (rule
// "lint") so suppressions cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding as file:line:col: rule: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Analyzer is one named rule. Per-package rules implement Run;
// whole-tree rules (which need the call graph) implement RunTree.
// Exactly one of the two should be set.
type Analyzer struct {
	// Name is the rule identifier used in output and in //lint:allow.
	Name string
	// Doc is a one-line description for -list output.
	Doc string
	// Run reports every finding in one package, pre-suppression.
	Run func(p *Package) []Diagnostic
	// RunTree reports every finding across the whole tree,
	// pre-suppression.
	RunTree func(t *Tree) []Diagnostic
}

// Analyzers returns the full rule registry in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		FloatCmpAnalyzer,
		DroppedErrAnalyzer,
		MapIterAnalyzer,
		SeedFlowAnalyzer,
		DocCommentAnalyzer,
		HotpathAnalyzer,
		LockGuardAnalyzer,
	}
}

// Package is one parsed, type-checked package ready for analysis.
// Type-checking is best-effort: TypeErrors collects anything the checker
// reported, and analyzers skip expressions whose types are unknown rather
// than guessing.
type Package struct {
	// Path is the import path ("rejuv/internal/des").
	Path string
	// Rel is the module-relative directory ("internal/des", "" for root).
	Rel string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files holds the non-test source files.
	Files []*ast.File
	// Pkg and Info carry the (possibly partial) type information.
	Pkg  *types.Package
	Info *types.Info
	// TypeErrors holds type-checker errors, kept for -v diagnostics.
	TypeErrors []error
}

// position resolves a token.Pos against the package's file set.
func (p *Package) position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// diagf builds a Diagnostic for the given rule at pos.
func (p *Package) diagf(pos token.Pos, rule, format string, args ...any) Diagnostic {
	return Diagnostic{Pos: p.position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)}
}

// Run applies the given analyzers to every package, honors //lint:allow
// suppressions, validates the directives themselves, and returns all
// surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return Analyze(NewTree(pkgs), analyzers)
}

// Analyze is Run for a pre-built Tree, letting callers that also want
// call-graph statistics (cmd/rejuvlint -v) share the same artifacts.
func Analyze(t *Tree, analyzers []*Analyzer) []Diagnostic {
	selected := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	// Custom analyzer sets (tests) may include rules outside the default
	// registry; their directives are still well-formed.
	for name := range selected {
		known[name] = true
	}

	// One shared directive index across the whole tree: interprocedural
	// analyzers report sites in packages other than the one holding the
	// root annotation, and the suppression must sit next to the site.
	allows := newAllowIndex()
	var out []Diagnostic
	for _, p := range t.Pkgs {
		out = append(out, allows.collect(p, known)...)
	}

	emit := func(ds []Diagnostic) {
		for _, d := range ds {
			if allows.suppress(d) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, p := range t.Pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				emit(a.Run(p))
			}
		}
	}
	for _, a := range analyzers {
		if a.RunTree != nil {
			emit(a.RunTree(t))
		}
	}

	// An allow for a selected rule that never fired is dead weight
	// (or a typo'd line) and must be removed.
	for _, dir := range allows.all {
		if !selected[dir.rule] || dir.used {
			continue
		}
		where := "on this or the next line"
		if dir.span {
			where = "in this function"
		}
		out = append(out, Diagnostic{
			Pos:  dir.pos,
			Rule: directiveRule,
			Message: fmt.Sprintf("unnecessary //lint:allow %s: no %s finding %s",
				dir.rule, dir.rule, where),
		})
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}
