// Package golden exercises the floatcmp analyzer.
package golden

const tolerance = 1e-9

func compare(a, b float64, f float32, xs []float64) bool {
	if a == b { // want "floatcmp: floating-point == comparison"
		return true
	}
	if a != 0 { // want "floatcmp: floating-point != comparison"
		return false
	}
	if float64(f) == a { // want "floatcmp: floating-point == comparison"
		return true
	}
	if xs[0] == xs[1] { // want "floatcmp: floating-point == comparison"
		return true
	}
	return a == 0 //lint:allow floatcmp zero is the unset sentinel here
}

// ints shows integer comparisons pass untouched.
func ints(i, j int) bool { return i == j }

// constants shows compile-time-folded comparisons pass untouched.
func constants() bool { return tolerance == 1e-9 }

// ordered shows <, <=, >, >= pass untouched: only equality is fragile.
func ordered(a, b float64) bool { return a < b || a >= b }
