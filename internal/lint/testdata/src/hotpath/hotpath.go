// Package golden exercises the hotpath analyzer.
package golden

import "fmt"

// watcher is an in-tree interface: calls through it fan out to every
// implementation, so roots reach both counter and logger below.
type watcher interface {
	observe(x float64)
}

type counter struct{ n int }

func (c *counter) observe(x float64) {
	c.grow(x)
}

func (c *counter) grow(x float64) {
	_ = x
	_ = make([]float64, 8) // want "hotpath: make allocates"
}

type logger struct{}

func (l *logger) observe(x float64) {
	fmt.Println(x) // want "hotpath: fmt.Println allocates and formats"
}

//lint:hotpath
func observeAll(ws []watcher, x float64) {
	for _, w := range ws {
		w.observe(x)
	}
}

//lint:hotpath
func buildThings(n int) []*counter {
	out := []*counter{} // want "hotpath: slice literal allocates"
	for i := 0; i < n; i++ {
		out = append(out, &counter{}) // want "hotpath: append may grow and allocate" "hotpath: &composite literal escapes to the heap"
	}
	return out
}

//lint:hotpath
func fresh() *counter {
	return new(counter) // want "hotpath: new allocates"
}

//lint:hotpath
func tally(xs []string) int {
	m := map[string]int{} // want "hotpath: map literal allocates"
	total := 0
	for _, k := range xs {
		m[k]++
	}
	for _, v := range m { // want "hotpath: map iteration on the hot path"
		total += v
	}
	return total
}

func sinkAny(v any) { _ = v }

//lint:hotpath
func box(x int) (out any) {
	sinkAny(x) // want "hotpath: argument boxes int into"
	var v any = x // want "hotpath: declaration boxes int into"
	_ = v
	out = x // want "hotpath: assignment boxes int into"
	_ = out
	return x // want "hotpath: return boxes int into"
}

//lint:hotpath
func convert(s string, b []byte) (string, []byte) {
	x := string(b) // want "hotpath: \[\]byte→string conversion copies and allocates"
	y := []byte(s) // want "hotpath: string→\[\]byte conversion copies and allocates"
	return x, y
}

type gate struct{ open bool }

func (g *gate) enter() { g.open = true }
func (g *gate) leave() { g.open = false }

//lint:hotpath
func control(g *gate, done chan struct{}) {
	defer func() { g.leave() }() // want "hotpath: deferred closure allocates"
	f := func() {} // want "hotpath: function literal allocates a closure"
	f()
	for i := 0; i < 3; i++ {
		defer g.leave() // want "hotpath: defer inside a loop allocates per iteration"
	}
	go wait(done) // want "hotpath: go statement allocates a goroutine"
}

// plainDefer shows the deliberate negative: a single open-coded defer
// of a plain call costs no allocation and is not reported.
//
//lint:hotpath
func plainDefer(g *gate) {
	g.enter()
	defer g.leave()
}

func wait(done chan struct{}) { <-done }

// coldAlloc is unreachable from any root: its allocations are fine.
func coldAlloc() []int {
	return make([]int, 128)
}

//lint:hotpath
func suppressed() {
	_ = make([]int, 4) //lint:allow hotpath scratch slice reused across calls in the real code
}

// spanAllowed is covered whole by the directive in its doc comment: a
// helper whose entire job is building scratch state.
//
//lint:allow hotpath the whole helper is a scratch builder
func spanAllowed() []int {
	buf := make([]int, 0, 8)
	buf = append(buf, 1)
	return buf
}

//lint:hotpath
func useScratch() []int {
	return spanAllowed()
}

func idle() {
	x := 1.0
	_ = x
	//lint:allow hotpath nothing here is on a hot path
	// want "lint: unnecessary //lint:allow hotpath: no hotpath finding on this or the next line"
}

//lint:allow hotpath stale function-level excuse
// want "lint: unnecessary //lint:allow hotpath: no hotpath finding in this function"
func clean() int { return 3 }

func misuse() {
	//lint:hotpath
	// want "hotpath: misplaced //lint:hotpath"
	x := 0
	_ = x
}

//lint:hotpath observe
// want "hotpath: malformed //lint:hotpath: the annotation takes no arguments"
func argRoot() {}
