// Package golden exercises the seedflow analyzer. Its fake import path
// places it under cmd/, where entry-point seeding is policed.
package golden

import (
	"math/rand"
	"os"
	"time"

	"rejuv/internal/xrand"
)

func build(seed uint64, seeds []uint64) {
	_ = xrand.New(1)                    // constant
	_ = xrand.New(seed)                 // flag-plumbed value
	_ = xrand.New(seed + 17)            // arithmetic over plumbed values
	_ = xrand.NewStream(seed, seeds[0]) // stored values
	_ = rand.NewSource(int64(seed))     // conversion of a plumbed value

	_ = xrand.New(uint64(os.Getpid()))                   // want "seedflow: RNG seed"
	_ = rand.NewSource(time.Now().UnixNano())            // want "seedflow: RNG seed"
	_ = xrand.NewStream(seed, uint64(time.Now().Unix())) // want "seedflow: RNG seed"

	_ = rand.NewSource(time.Now().UnixNano()) //lint:allow seedflow throwaway demo stream, not used for results
}
