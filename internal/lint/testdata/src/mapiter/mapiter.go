// Package golden exercises the mapiter analyzer.
package golden

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func dump(m map[string]float64, w *os.File) string {
	for k, v := range m { // want "mapiter: map iteration order feeds output"
		fmt.Fprintf(w, "%s=%g\n", k, v)
	}

	var b strings.Builder
	for k := range m { // want "mapiter: map iteration order feeds output"
		b.WriteString(k)
	}

	// Collecting keys and sorting them is the prescribed pattern.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%g\n", k, m[k])
	}

	// Order-insensitive reduction followed by output is fine.
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	fmt.Fprintf(w, "total=%g\n", sum)

	for k, v := range m { //lint:allow mapiter map holds exactly one entry by construction
		fmt.Fprintf(w, "%s=%g\n", k, v)
	}
	return b.String()
}
