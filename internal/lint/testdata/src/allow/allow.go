// Package golden exercises the directive checks: malformed, unknown,
// and unused //lint:allow comments are themselves findings.
package golden

func directives(a, b float64) float64 {
	//lint:allow floatcmp
	// want "lint: malformed //lint:allow"
	total := 0.0

	//lint:allow nosuchrule the rule name has a typo
	// want "lint: unknown rule"
	total += a

	//lint:allow floatcmp the comparison below was deleted long ago
	// want "lint: unnecessary //lint:allow floatcmp"
	total += b

	if a == b { //lint:allow floatcmp used directives are not reported
		total++
	}
	return total
}
