// Package doccomment is the golden input for the doccomment rule.
package doccomment

import "strings"

// Documented is fine: the comment is right here.
type Documented struct{}

type Naked struct{} // want "doccomment: exported type Naked has no doc comment"

type hidden struct{}

// Grouped declarations are covered by the group comment.
const (
	GroupedA = 1
	GroupedB = 2
)

const Bare = 3 // want "doccomment: exported constant Bare has no doc comment"

var Loose = "x" // want "doccomment: exported variable Loose has no doc comment"

// Covered has a group comment even though it is alone.
var Covered = "y"

var unexported = 0

// Fine is documented.
func Fine() {}

func Missing() {} // want "doccomment: exported function Missing has no doc comment"

func internalHelper() {}

// Method is documented.
func (Documented) Method() {}

func (d *Documented) Undocumented() {} // want "doccomment: exported method Documented.Undocumented has no doc comment"

func (hidden) Exported() {} // a method on an unexported type is plumbing

// use keeps the imports and helpers alive.
func use() {
	_ = strings.TrimSpace("")
	_ = hidden{}
	_ = unexported
	internalHelper()
}

// Types in a documented group are covered by the group comment.
type (
	InGroup  struct{}
	InGroup2 struct{}
)
