// Package golden exercises the droppederr analyzer.
package golden

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func emit(w *os.File) {
	fmt.Fprintf(w, "x")  // want "droppederr: error returned by fmt.Fprintf is silently dropped"
	w.Close()            // want "droppederr: error returned by w.Close is silently dropped"
	fmt.Fprintln(w, "y") // want "droppederr: error returned by fmt.Fprintln is silently dropped"
	w.Sync()             //lint:allow droppederr best-effort flush in a demo
	_ = w.Close()        // explicit discard is visible in review
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "close:", err) // stderr chatter is exempt
	}
}

// infallible writers and terminal chatter are exempt.
func exempt() string {
	var b strings.Builder
	var buf bytes.Buffer
	fmt.Fprintf(&b, "x")
	fmt.Fprintf(&buf, "y")
	b.WriteString("z")
	buf.WriteByte('!')
	fmt.Println("progress")
	fmt.Fprintln(os.Stdout, "more progress")
	return b.String() + buf.String()
}
