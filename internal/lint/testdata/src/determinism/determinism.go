// Package golden exercises the determinism analyzer. Its fake import
// path places it under internal/des, inside the policed scope.
package golden

import (
	"math/rand" // want "determinism: import of math/rand"
	"os"
	"time"
)

// clock trips every banned wall-clock construct.
func clock() time.Duration {
	t := time.Now()               // want "determinism: time.Now in simulation package"
	time.Sleep(time.Nanosecond)   // want "determinism: time.Sleep in simulation package"
	<-time.After(time.Nanosecond) // want "determinism: time.After in simulation package"
	return time.Since(t)          // want "determinism: time.Since in simulation package"
}

// entropy trips the ambient-entropy bans.
func entropy() int {
	_ = os.Getenv("SEED") // want "determinism: os.Getenv in simulation package"
	_ = rand.Int()
	return os.Getpid() // want "determinism: os.Getpid in simulation package"
}

// allowed shows a justified suppression.
func allowed() int {
	return os.Getpid() //lint:allow determinism pid labels a debug artifact, never enters results
}

// duration is fine: the time package itself is not banned, only its
// wall-clock and timer functions.
func duration() time.Duration { return 3 * time.Second }
