// Package golden exercises the lockguard analyzer.
package golden

import "sync"

type box struct {
	mu   sync.Mutex
	n    int // guarded by mu
	name string
}

func (b *box) bad() {
	b.n++ // want "lockguard: write to b.n requires b.mu.Lock"
}

func (b *box) badRead() int {
	return b.n // want "lockguard: read of b.n requires b.mu.Lock\(\) or b.mu.RLock\(\)"
}

func (b *box) good() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
	b.name = "ok" // unguarded sibling: no finding
}

func (b *box) goodEarlyReturn(flag bool) {
	b.mu.Lock()
	if flag {
		b.mu.Unlock()
		return
	}
	b.n = 2
	b.mu.Unlock()
}

func (b *box) afterUnlock() int {
	b.mu.Lock()
	b.n = 1
	b.mu.Unlock()
	return b.n // want "lockguard: read of b.n"
}

func (b *box) branchy(ok bool) {
	if ok {
		b.mu.Lock()
	}
	b.n = 2 // want "lockguard: write to b.n"
	if ok {
		b.mu.Unlock()
	}
}

type gauge struct {
	rw sync.RWMutex
	v  float64 // guarded by rw
}

func (g *gauge) readOK() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

func (g *gauge) writeUnderRLock() {
	g.rw.RLock()
	defer g.rw.RUnlock()
	g.v = 1 // want "lockguard: write to g.v requires g.rw.Lock\(\), but only g.rw.RLock\(\) is held"
}

type orphan struct {
	mu sync.Mutex
	a  int // guarded by mux
	// want "lockguard: field a is guarded.by mux, but struct orphan has no field mux"
	b int // guarded by c
	// want "lockguard: field b is guarded.by c, but orphan.c is not a sync.Mutex or sync.RWMutex"
	c int
}

type embedded struct {
	mu sync.Mutex
	sync.Map // guarded by mu
	// want "lockguard: \"guarded.by mu\" on an embedded field of embedded is not supported"
}

type jar struct {
	mu sync.Mutex
	v  int // guarded by mu
}

// bump runs with j.mu already held by the caller.
//
//lint:holds mu
func (j *jar) bump() { j.v++ }

func (j *jar) caller() {
	j.mu.Lock()
	j.bump()
	j.mu.Unlock()
	j.bump() // want "lockguard: call to bump requires j.mu held"
}

//lint:holds
// want "lockguard: malformed //lint:holds: want \"//lint:holds <mutex field>\""
func (j *jar) noField() {}

//lint:holds mu
// want "lockguard: misplaced //lint:holds: it must appear in the doc comment of a method"
func free() {}

//lint:holds gate
// want "lockguard: //lint:holds gate: receiver type of wrongField has no mutex field gate"
func (j *jar) wrongField() {}

func (j *jar) spawn() {
	j.mu.Lock()
	defer j.mu.Unlock()
	go func() {
		j.v = 9 // want "lockguard: write to j.v"
	}()
}

// newJar writes through a provably fresh local: no findings.
func newJar() *jar {
	j := &jar{}
	j.v = 1
	return j
}

func (j *jar) sneaky() int {
	return j.v //lint:allow lockguard racy snapshot tolerated for debug output
}

func (j *jar) tidy() {
	j.mu.Lock()
	j.v = 1
	j.mu.Unlock()
	//lint:allow lockguard stale excuse
	// want "lint: unnecessary //lint:allow lockguard: no lockguard finding on this or the next line"
}
