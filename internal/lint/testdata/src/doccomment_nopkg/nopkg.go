package nopkg // want "doccomment: package nopkg has no package comment on any file"

// Exported is documented; only the package comment is missing.
func Exported() {}
