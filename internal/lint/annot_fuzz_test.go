package lint

import (
	"strings"
	"testing"
)

// FuzzAnnotationGrammar drives the pure annotation parsers with
// arbitrary comment text and checks their structural invariants: a
// parse that claims success must have produced a well-formed result,
// and directive classification must agree with the raw prefix.
func FuzzAnnotationGrammar(f *testing.F) {
	for _, seed := range []string{
		"//lint:hotpath",
		"//lint:hotpath extra words",
		"//lint:hotpathy",
		"//lint:holds mu",
		"//lint:holds",
		"//lint:holds mu extra",
		"//lint:holds 0bad",
		"// guarded by mu",
		"// guarded by mu; see DESIGN §13",
		"// shared state, guarded by rw",
		"// guarded by",
		"//lint:allow hotpath ring is preallocated",
		"// plain comment",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		isDir, ok := parseHotpath(text)
		if ok && !isDir {
			t.Fatalf("parseHotpath(%q): ok without isDirective", text)
		}
		if isDir && !strings.HasPrefix(text, hotpathPrefix) {
			t.Fatalf("parseHotpath(%q): directive without prefix", text)
		}
		if ok && strings.TrimSpace(strings.TrimPrefix(text, hotpathPrefix)) != "" {
			t.Fatalf("parseHotpath(%q): accepted trailing arguments", text)
		}

		field, isDir, ok := parseHolds(text)
		if ok && !isDir {
			t.Fatalf("parseHolds(%q): ok without isDirective", text)
		}
		if isDir && !strings.HasPrefix(text, holdsPrefix) {
			t.Fatalf("parseHolds(%q): directive without prefix", text)
		}
		if ok && !isIdent(field) {
			t.Fatalf("parseHolds(%q): accepted non-identifier field %q", text, field)
		}
		if !ok && field != "" {
			t.Fatalf("parseHolds(%q): field %q without ok", text, field)
		}

		gfield, gok := parseGuardedBy(text)
		if gok && !isIdent(gfield) {
			t.Fatalf("parseGuardedBy(%q): accepted non-identifier field %q", text, gfield)
		}
		if gok != strings.Contains(text, "guarded by "+gfield) && gok {
			t.Fatalf("parseGuardedBy(%q): extracted %q not present in text", text, gfield)
		}
	})
}
