package lint

import (
	"strings"
	"sync"
)

// Tree is the unit the interprocedural analyzers operate on: the full
// set of loaded packages plus analysis artifacts that are expensive to
// build and therefore shared — today the call graph. Run constructs one
// Tree per invocation and every analyzer reuses it, so adding another
// interprocedural rule costs one traversal, not another type-checked
// load.
type Tree struct {
	// Pkgs holds the loaded packages, sorted by import path.
	Pkgs []*Package

	paths     map[string]bool
	modPrefix string // module path + "/", for diagnostic names

	cgOnce sync.Once
	cg     *CallGraph
}

// NewTree wraps the loaded packages for whole-tree analysis. The call
// graph is built lazily on first use and cached.
func NewTree(pkgs []*Package) *Tree {
	t := &Tree{Pkgs: pkgs, paths: make(map[string]bool, len(pkgs))}
	for _, p := range pkgs {
		t.paths[p.Path] = true
		if t.modPrefix == "" && p.Rel != "" && strings.HasSuffix(p.Path, "/"+p.Rel) {
			t.modPrefix = strings.TrimSuffix(p.Path, p.Rel)
		}
	}
	return t
}

// CallGraph returns the shared call graph, building it on first call.
func (t *Tree) CallGraph() *CallGraph {
	t.cgOnce.Do(func() { t.cg = buildCallGraph(t) })
	return t.cg
}

// inTree reports whether the import path belongs to a loaded package,
// i.e. whether declarations under it are available for traversal.
func (t *Tree) inTree(path string) bool { return t.paths[path] }

// shortName strips the module's internal/ prefix from a fully qualified
// function name, so diagnostics read (*journal.Writer).Observe rather
// than (*rejuv/internal/journal.Writer).Observe.
func (t *Tree) shortName(full string) string {
	if t.modPrefix == "" {
		return full
	}
	long := t.modPrefix + "internal/"
	for {
		i := strings.Index(full, long)
		if i < 0 {
			return full
		}
		full = full[:i] + full[i+len(long):]
	}
}
