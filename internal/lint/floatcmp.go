package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer forbids == and != between floating-point operands.
// Exact float equality is almost always a rounding-error bug in
// statistics code; the few intentional sentinel checks live behind the
// audited helpers in internal/num or carry a //lint:allow justification.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= between floating-point operands",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx := p.Info.Types[be.X]
			ty := p.Info.Types[be.Y]
			// A comparison folded entirely at compile time is exact by
			// construction and cannot drift at run time.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			diags = append(diags, p.diagf(be.OpPos, "floatcmp",
				"floating-point %s comparison; use internal/num (num.Zero, num.Eq) or justify with //lint:allow floatcmp",
				be.Op))
			return true
		})
	}
	return diags
}

// isFloat reports whether t is (or is based on) a floating-point type.
// Unknown types — e.g. when an import failed to resolve — answer false,
// so partial type information produces false negatives, never noise.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
