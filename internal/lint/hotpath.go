package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// HotpathAnalyzer enforces the allocation contract of the observe and
// decision paths: a function annotated //lint:hotpath is a root, and no
// allocation site may be reachable from a root through the call graph.
// The monitoring loop runs once per observation across the whole fleet;
// an allocation there is a GC tax multiplied by millions of streams, so
// the contract is enforced at build time and cross-checked by the
// AllocsPerRun pins (DESIGN §13).
//
// Reported sites: make/new, append, composite literals that allocate
// (&T{}, slice and map literals), boxing into interface types, closures
// (and deferred closures, and defer inside loops), string↔[]byte
// conversions, fmt.* calls, map iteration, and go statements. Plain
// `defer x.y()` outside loops is deliberately not reported: Go open-
// codes it and it costs no allocation.
//
// Calls through function values and through interfaces defined outside
// the tree are not traversed; interface calls through tree-defined
// interfaces fan out to every implementation. Sites are suppressed per
// line — or per function, with the directive on the declaration — via
//
//	//lint:allow hotpath <reason>
var HotpathAnalyzer = &Analyzer{
	Name:    "hotpath",
	Doc:     "forbid allocation sites reachable from //lint:hotpath roots",
	RunTree: runHotpath,
}

func runHotpath(t *Tree) []Diagnostic {
	g := t.CallGraph()
	roots, diags := hotpathRoots(t, g)
	if len(roots) == 0 {
		return diags
	}
	reached := g.Reachable(roots)
	nodes := make([]*FuncNode, 0, len(reached))
	for n := range reached {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Fn.FullName() < nodes[j].Fn.FullName() })
	for _, n := range nodes {
		s := &hotScanner{t: t, node: n, chain: chainString(t, reached, n)}
		s.scan()
		diags = append(diags, s.diags...)
	}
	return diags
}

// hotpathRoots collects the annotated root functions and validates
// directive placement: the annotation must sit in the doc comment of a
// function declaration that has a body.
func hotpathRoots(t *Tree, g *CallGraph) ([]*FuncNode, []Diagnostic) {
	var roots []*FuncNode
	var diags []Diagnostic
	for _, p := range t.Pkgs {
		for _, f := range p.Files {
			owner := make(map[*ast.Comment]*ast.FuncDecl)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					owner[c] = fd
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					isDir, ok := parseHotpath(c.Text)
					if !isDir {
						continue
					}
					switch fd := owner[c]; {
					case !ok:
						diags = append(diags, p.diagf(c.Pos(), "hotpath",
							"malformed //lint:hotpath: the annotation takes no arguments"))
					case fd == nil:
						diags = append(diags, p.diagf(c.Pos(), "hotpath",
							"misplaced //lint:hotpath: it must appear in the doc comment of a function declaration"))
					case fd.Body == nil:
						diags = append(diags, p.diagf(c.Pos(), "hotpath",
							"//lint:hotpath on a function without a body"))
					default:
						fn, okFn := p.Info.Defs[fd.Name].(*types.Func)
						if !okFn {
							continue // type-check failure; degrade gracefully
						}
						if node, okNode := g.Nodes[fn]; okNode {
							roots = append(roots, node)
						}
					}
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Fn.FullName() < roots[j].Fn.FullName() })
	return roots, diags
}

// chainString renders the shortest root→function chain for diagnostics,
// eliding the middle of very deep chains.
func chainString(t *Tree, reached map[*FuncNode]reachStep, n *FuncNode) string {
	nodes := path(reached, n)
	names := make([]string, len(nodes))
	for i, fn := range nodes {
		names[i] = t.shortName(fn.Fn.FullName())
	}
	if len(names) > 6 {
		names = append(names[:3], append([]string{"…"}, names[len(names)-2:]...)...)
	}
	if len(names) == 1 {
		return "hot path root " + names[0]
	}
	return "hot path " + strings.Join(names, " → ")
}

// hotScanner walks one reachable function body and reports every
// allocation site.
type hotScanner struct {
	t     *Tree
	node  *FuncNode
	chain string
	diags []Diagnostic

	loops     []span // body ranges of for/range statements
	deferred  map[*ast.FuncLit]bool
	addressed map[*ast.CompositeLit]bool
	funcLits  []*ast.FuncLit // innermost-signature resolution for returns
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return s.lo <= p && p < s.hi }

func (s *hotScanner) flag(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	s.diags = append(s.diags, s.node.Pkg.diagf(pos, "hotpath", "%s (%s)", msg, s.chain))
}

// scan runs the two passes: context collection, then site detection.
func (s *hotScanner) scan() {
	s.deferred = make(map[*ast.FuncLit]bool)
	s.addressed = make(map[*ast.CompositeLit]bool)
	body := s.node.Decl.Body
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			if x.Body != nil {
				s.loops = append(s.loops, span{x.Body.Pos(), x.Body.End()})
			}
		case *ast.RangeStmt:
			if x.Body != nil {
				s.loops = append(s.loops, span{x.Body.Pos(), x.Body.End()})
			}
		case *ast.DeferStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				s.deferred[fl] = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					s.addressed[cl] = true
				}
			}
		case *ast.FuncLit:
			s.funcLits = append(s.funcLits, x)
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		s.visit(n)
		return true
	})
}

func (s *hotScanner) inLoop(pos token.Pos) bool {
	for _, l := range s.loops {
		if l.contains(pos) {
			return true
		}
	}
	return false
}

func (s *hotScanner) visit(n ast.Node) {
	info := s.node.Pkg.Info
	switch x := n.(type) {
	case *ast.DeferStmt:
		if _, ok := x.Call.Fun.(*ast.FuncLit); ok {
			s.flag(x.Pos(), "deferred closure allocates")
		} else if s.inLoop(x.Pos()) {
			s.flag(x.Pos(), "defer inside a loop allocates per iteration")
		}
	case *ast.FuncLit:
		if !s.deferred[x] {
			s.flag(x.Pos(), "function literal allocates a closure")
		}
	case *ast.GoStmt:
		s.flag(x.Pos(), "go statement allocates a goroutine")
	case *ast.RangeStmt:
		if t := info.TypeOf(x.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				s.flag(x.For, "map iteration on the hot path is unordered and unpredictable")
			}
		}
	case *ast.CompositeLit:
		if s.addressed[x] {
			s.flag(x.Pos(), "&composite literal escapes to the heap")
			return
		}
		if t := info.TypeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				s.flag(x.Pos(), "slice literal allocates")
			case *types.Map:
				s.flag(x.Pos(), "map literal allocates")
			}
		}
	case *ast.CallExpr:
		s.visitCall(x)
	case *ast.AssignStmt:
		if x.Tok != token.ASSIGN || len(x.Lhs) != len(x.Rhs) {
			return
		}
		for i := range x.Lhs {
			s.checkBox(info.TypeOf(x.Lhs[i]), x.Rhs[i], "assignment")
		}
	case *ast.ValueSpec:
		if x.Type == nil || len(x.Names) != len(x.Values) {
			return
		}
		dst := info.TypeOf(x.Type)
		for _, v := range x.Values {
			s.checkBox(dst, v, "declaration")
		}
	case *ast.ReturnStmt:
		sig := s.enclosingSignature(x.Pos())
		if sig == nil || sig.Results().Len() != len(x.Results) {
			return
		}
		for i, r := range x.Results {
			s.checkBox(sig.Results().At(i).Type(), r, "return")
		}
	}
}

// visitCall classifies one call expression: conversion, builtin,
// fmt call, or ordinary call whose arguments may box.
func (s *hotScanner) visitCall(call *ast.CallExpr) {
	info := s.node.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		s.checkConversion(call, tv.Type)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.flag(call.Pos(), "make allocates")
			case "new":
				s.flag(call.Pos(), "new allocates")
			case "append":
				s.flag(call.Pos(), "append may grow and allocate")
			}
			return
		}
	}
	if fn := calleeFunc(s.node.Pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		s.flag(call.Pos(), "fmt.%s allocates and formats", fn.Name())
		return // the fmt report covers the boxed arguments too
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	s.checkArgBoxing(call, sig)
}

// checkConversion flags string↔[]byte conversions, which copy.
func (s *hotScanner) checkConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := s.node.Pkg.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isString(dst) && isByteSlice(src) {
		s.flag(call.Pos(), "[]byte→string conversion copies and allocates")
	}
	if isByteSlice(dst) && isString(src) {
		s.flag(call.Pos(), "string→[]byte conversion copies and allocates")
	}
}

// checkArgBoxing flags arguments whose concrete values are boxed into
// interface parameters.
func (s *hotScanner) checkArgBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			slice, ok := params.At(n - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = slice.Elem()
		case i < n:
			pt = params.At(i).Type()
		default:
			continue
		}
		s.checkBox(pt, arg, "argument")
	}
}

// checkBox reports expr when assigning it to dst boxes a concrete value
// into an interface. Pointer-shaped values (pointers, channels, maps,
// funcs) fit the interface word and do not allocate.
func (s *hotScanner) checkBox(dst types.Type, expr ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := s.node.Pkg.Info.Types[expr]
	if !ok || tv.IsNil() {
		return
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) {
		return
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	}
	s.flag(expr.Pos(), "%s boxes %s into %s and allocates", what,
		s.t.shortName(src.String()), s.t.shortName(dst.String()))
}

// enclosingSignature resolves which function a return statement belongs
// to: the innermost function literal containing it, or the declaration.
func (s *hotScanner) enclosingSignature(pos token.Pos) *types.Signature {
	var best *ast.FuncLit
	for _, fl := range s.funcLits {
		if fl.Pos() <= pos && pos < fl.End() {
			if best == nil || fl.Pos() > best.Pos() {
				best = fl
			}
		}
	}
	info := s.node.Pkg.Info
	if best != nil {
		if sig, ok := info.TypeOf(best).(*types.Signature); ok {
			return sig
		}
		return nil
	}
	if sig, ok := s.node.Fn.Type().(*types.Signature); ok {
		return sig
	}
	return nil
}

// calleeFunc resolves the called function object of an ordinary call,
// or nil for builtins, conversions, and function values.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteSlice reports whether t's underlying type is []byte.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
