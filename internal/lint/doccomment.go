package lint

import (
	"go/ast"
	"strings"
)

// DocCommentAnalyzer enforces the documentation contract: every
// non-main package has a package comment, and every exported top-level
// identifier — functions, methods on exported types, and the names bound
// by type, const, and var declarations — carries a doc comment. For
// grouped const and var declarations the group's doc comment covers
// every name in the group, matching the convention of the standard
// library. Undocumented exported API is how a repository's public
// surface drifts away from its README; this rule makes godoc the single
// source of truth.
var DocCommentAnalyzer = &Analyzer{
	Name: "doccomment",
	Doc:  "require doc comments on packages and exported identifiers",
	Run:  runDocComment,
}

func runDocComment(p *Package) []Diagnostic {
	if len(p.Files) == 0 || p.Files[0].Name.Name == "main" {
		// Commands document themselves through their -h output and the
		// package comment convention does not bind package main.
		return nil
	}
	var diags []Diagnostic
	hasPkgDoc := false
	for _, f := range p.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
		for _, decl := range f.Decls {
			diags = append(diags, checkDecl(p, decl)...)
		}
	}
	if !hasPkgDoc {
		diags = append(diags, p.diagf(p.Files[0].Name.Pos(), "doccomment",
			"package %s has no package comment on any file", p.Files[0].Name.Name))
	}
	return diags
}

// checkDecl reports every undocumented exported name a top-level
// declaration introduces.
func checkDecl(p *Package, decl ast.Decl) []Diagnostic {
	var diags []Diagnostic
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !ast.IsExported(d.Name.Name) || hasDoc(d.Doc) {
			return nil
		}
		if recv := receiverTypeName(d); recv != "" {
			if !ast.IsExported(recv) {
				// Methods on unexported types are internal plumbing.
				return nil
			}
			return []Diagnostic{p.diagf(d.Name.Pos(), "doccomment",
				"exported method %s.%s has no doc comment", recv, d.Name.Name)}
		}
		return []Diagnostic{p.diagf(d.Name.Pos(), "doccomment",
			"exported function %s has no doc comment", d.Name.Name)}
	case *ast.GenDecl:
		groupDoc := hasDoc(d.Doc)
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if ast.IsExported(s.Name.Name) && !hasDoc(s.Doc) && !groupDoc {
					diags = append(diags, p.diagf(s.Name.Pos(), "doccomment",
						"exported type %s has no doc comment", s.Name.Name))
				}
			case *ast.ValueSpec:
				if groupDoc || hasDoc(s.Doc) {
					continue
				}
				for _, name := range s.Names {
					if ast.IsExported(name.Name) {
						diags = append(diags, p.diagf(name.Pos(), "doccomment",
							"exported %s %s has no doc comment", kindOf(d), name.Name))
					}
				}
			}
		}
	}
	return diags
}

// hasDoc reports whether a comment group carries actual text.
func hasDoc(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// receiverTypeName returns the base type name of a method receiver, or
// "" for plain functions.
func receiverTypeName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// kindOf names a GenDecl's keyword for the diagnostic message.
func kindOf(d *ast.GenDecl) string {
	switch d.Tok.String() {
	case "const":
		return "constant"
	case "var":
		return "variable"
	}
	return d.Tok.String()
}
