package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlowAnalyzer polices RNG construction in the cmd/ and examples/
// entry points: a seed must be a constant or a value plumbed from flags
// and configuration, never fresh entropy like time.Now().UnixNano() or
// os.Getpid(). An entry point that seeds itself from the environment
// produces figures nobody can regenerate.
var SeedFlowAnalyzer = &Analyzer{
	Name: "seedflow",
	Doc:  "forbid RNG seeds derived from calls instead of constants or flags",
	Run:  runSeedFlow,
}

// seedFuncs maps (package path suffix or exact path) -> constructor name
// -> indexes of the seed arguments to validate.
var seedFuncs = map[string]map[string][]int{
	"internal/xrand": {
		"New":       {0},
		"NewStream": {0, 1},
	},
	"math/rand": {
		"NewSource": {0},
		"Seed":      {0},
	},
	"math/rand/v2": {
		"NewPCG": {0, 1},
	},
}

func runSeedFlow(p *Package) []Diagnostic {
	if !strings.HasPrefix(p.Rel, "cmd/") && !strings.HasPrefix(p.Rel, "examples/") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(p, call).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			args := seedArgIndexes(fn.Pkg().Path(), fn.Name())
			for _, i := range args {
				if i >= len(call.Args) {
					continue
				}
				arg := call.Args[i]
				if seedIsPlumbed(p, arg) {
					continue
				}
				diags = append(diags, p.diagf(arg.Pos(), "seedflow",
					"RNG seed %s derives from a call; seeds must be constants or flag-plumbed values so runs are reproducible",
					types.ExprString(arg)))
			}
			return true
		})
	}
	return diags
}

func seedArgIndexes(pkgPath, name string) []int {
	for key, funcs := range seedFuncs {
		if pkgPath == key || strings.HasSuffix(pkgPath, "/"+key) {
			return funcs[name]
		}
	}
	return nil
}

// seedIsPlumbed reports whether the expression is a constant or built
// purely from stored values — identifiers, fields, dereferences, index
// expressions, arithmetic, conversions. Any embedded non-conversion call
// (time.Now().UnixNano(), os.Getpid(), rand.Int63()) disqualifies it:
// fresh values at seed time are exactly what breaks reproducibility.
func seedIsPlumbed(p *Package, e ast.Expr) bool {
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
		return true // constant expression
	}
	switch e := e.(type) {
	case *ast.BasicLit, *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return seedIsPlumbed(p, e.X)
	case *ast.ParenExpr:
		return seedIsPlumbed(p, e.X)
	case *ast.StarExpr:
		return seedIsPlumbed(p, e.X)
	case *ast.UnaryExpr:
		return seedIsPlumbed(p, e.X)
	case *ast.IndexExpr:
		return seedIsPlumbed(p, e.X) && seedIsPlumbed(p, e.Index)
	case *ast.BinaryExpr:
		return seedIsPlumbed(p, e.X) && seedIsPlumbed(p, e.Y)
	case *ast.CallExpr:
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() {
			// A conversion like uint64(x) is as pure as its operand.
			for _, a := range e.Args {
				if !seedIsPlumbed(p, a) {
					return false
				}
			}
			return true
		}
		return false
	}
	return false
}
