package aging

import (
	"math"
	"testing"
)

// plausible returns a model with a day-scale healthy lifetime, hour-scale
// failure onset, 4-hour repairs, and 5-minute rejuvenations (rates per
// hour).
func plausible() Model {
	return Model{
		AgingRate:              1.0 / 240, // ages after ~10 days
		FailureRate:            1.0 / 72,  // fails ~3 days after aging
		RepairRate:             1.0 / 4,   // 4 h unplanned repair
		RejuvenationRate:       0,         // policy knob
		RejuvenationFinishRate: 12,        // 5 min planned restart
	}
}

func TestValidate(t *testing.T) {
	good := plausible()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.AgingRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero aging rate accepted")
	}
	bad = good
	bad.RepairRate = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN repair rate accepted")
	}
	bad = good
	bad.RejuvenationRate = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative rejuvenation rate accepted")
	}
}

func TestSteadyStateNoRejuvenationClosedForm(t *testing.T) {
	// Without rejuvenation the model is a three-state cycle; the
	// stationary probabilities are proportional to the mean holding
	// times 1/r2, 1/lambda, 1/mu1.
	m := plausible()
	pi, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	h := []float64{1 / m.AgingRate, 1 / m.FailureRate, 1 / m.RepairRate}
	total := h[0] + h[1] + h[2]
	for i := 0; i < 3; i++ {
		if math.Abs(pi[i]-h[i]/total) > 1e-12 {
			t.Fatalf("pi[%d] = %v, want %v", i, pi[i], h[i]/total)
		}
	}
	if pi[StateRejuvenating] != 0 {
		t.Fatalf("rejuvenating probability %v without a policy", pi[StateRejuvenating])
	}
}

func TestSteadyStateSumsToOne(t *testing.T) {
	m := plausible()
	m.RejuvenationRate = 0.05
	pi, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range pi {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestRejuvenationImprovesAvailability(t *testing.T) {
	// With planned restarts 48x faster than repairs, diverting the
	// failure-probable state into rejuvenation must raise availability.
	none := plausible()
	a0, err := none.Availability()
	if err != nil {
		t.Fatal(err)
	}
	with := none
	with.RejuvenationRate = 0.2
	a1, err := with.Availability()
	if err != nil {
		t.Fatal(err)
	}
	if a1 <= a0 {
		t.Fatalf("availability %v with rejuvenation <= %v without", a1, a0)
	}
}

func TestAvailabilityMonotoneInRepairRate(t *testing.T) {
	m := plausible()
	prev := -1.0
	for _, mu := range []float64{0.1, 0.25, 1, 4} {
		m.RepairRate = mu
		a, err := m.Availability()
		if err != nil {
			t.Fatal(err)
		}
		if a <= prev {
			t.Fatalf("availability %v did not rise with repair rate %v", a, mu)
		}
		prev = a
	}
}

func TestCostRate(t *testing.T) {
	m := plausible()
	m.RejuvenationRate = 0.1
	pi, err := m.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	cost, err := m.CostRate(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := pi[StateFailed]*100 + pi[StateRejuvenating]*5
	if math.Abs(cost-want) > 1e-12 {
		t.Fatalf("cost %v, want %v", cost, want)
	}
	if _, err := m.CostRate(-1, 5); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestOptimalRejuvenationRateInterior(t *testing.T) {
	// Expensive failures, cheap rejuvenation: the optimum is a positive
	// rate, and it beats both no rejuvenation and frantic rejuvenation.
	m := plausible()
	rate, cost, err := m.OptimalRejuvenationRate(1000, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("optimal rate %v; rejuvenation should pay here", rate)
	}
	noRejuv := m
	noRejuv.RejuvenationRate = 0
	c0, err := noRejuv.CostRate(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cost >= c0 {
		t.Fatalf("optimal cost %v >= no-rejuvenation cost %v", cost, c0)
	}
	frantic := m
	frantic.RejuvenationRate = 10
	cMax, err := frantic.CostRate(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With these costs the optimum may sit at (or numerically against)
	// the search boundary; it must never be worse than the boundary.
	if cost > cMax*(1+1e-6) {
		t.Fatalf("optimal cost %v above boundary cost %v", cost, cMax)
	}
}

func TestOptimalRejuvenationRateZeroWhenRejuvenationIsExpensive(t *testing.T) {
	// Rejuvenation outage costing far more than unplanned repair makes
	// the no-rejuvenation boundary optimal. A slow planned restart
	// amplifies the effect.
	m := plausible()
	m.RejuvenationFinishRate = 0.05 // 20 h planned restart, 5x a repair
	rate, _, err := m.OptimalRejuvenationRate(1, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Fatalf("optimal rate %v, want 0 when rejuvenation is the expensive action", rate)
	}
}

func TestOptimalRateValidation(t *testing.T) {
	m := plausible()
	if _, _, err := m.OptimalRejuvenationRate(1, 1, 0); err == nil {
		t.Error("zero maxRate accepted")
	}
}

func TestMeanTimeToFailure(t *testing.T) {
	m := plausible()
	if got, want := m.MeanTimeToFailure(), 240.0+72.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MTTF = %v, want %v", got, want)
	}
}
