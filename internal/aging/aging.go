// Package aging implements the canonical continuous-time Markov model
// of software aging and rejuvenation introduced by Huang, Kintala,
// Kolettis and Fulton (FTCS 1995) — reference [9] of the paper — on top
// of the ctmc package: a process is Robust, then Failure-Probable
// (aged), and from there either fails (expensive repair) or is
// rejuvenated (cheap, planned restart).
//
// The model answers the question the paper's measurement-driven
// algorithms answer empirically: how often should rejuvenation happen?
// Here the answer is analytical — steady-state availability and cost
// rate as functions of the rejuvenation rate, with a numerical search
// for the cost-optimal rate — providing the classical baseline the
// paper's approach is positioned against.
package aging

import (
	"fmt"
	"math"

	"rejuv/internal/ctmc"
	"rejuv/internal/num"
)

// States of the Huang et al. model.
const (
	StateRobust = iota
	StateFailureProbable
	StateFailed
	StateRejuvenating
	numStates
)

// Model is the four-state aging/rejuvenation CTMC. All rates are per
// unit time and must be positive except RejuvenationRate, which may be
// zero (no rejuvenation policy).
type Model struct {
	// AgingRate moves Robust -> FailureProbable: the reciprocal of the
	// mean healthy lifetime.
	AgingRate float64
	// FailureRate moves FailureProbable -> Failed.
	FailureRate float64
	// RepairRate moves Failed -> Robust: the reciprocal of the mean
	// unplanned-repair time.
	RepairRate float64
	// RejuvenationRate moves FailureProbable -> Rejuvenating: the
	// policy knob. Zero disables rejuvenation.
	RejuvenationRate float64
	// RejuvenationFinishRate moves Rejuvenating -> Robust: the
	// reciprocal of the mean planned-restart time. It should exceed
	// RepairRate (rejuvenation is cheaper than repair) for rejuvenation
	// to pay off.
	RejuvenationFinishRate float64
}

// Validate reports whether the model's rates are usable.
func (m Model) Validate() error {
	check := func(name string, v float64, allowZero bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || (!allowZero && num.Zero(v)) {
			return fmt.Errorf("aging: %s rate %v must be positive and finite", name, v)
		}
		return nil
	}
	if err := check("aging", m.AgingRate, false); err != nil {
		return err
	}
	if err := check("failure", m.FailureRate, false); err != nil {
		return err
	}
	if err := check("repair", m.RepairRate, false); err != nil {
		return err
	}
	if err := check("rejuvenation", m.RejuvenationRate, true); err != nil {
		return err
	}
	return check("rejuvenation finish", m.RejuvenationFinishRate, false)
}

// Chain builds the CTMC.
func (m Model) Chain() (*ctmc.Chain, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	c := ctmc.New(numStates)
	c.MustAddRate(StateRobust, StateFailureProbable, m.AgingRate)
	c.MustAddRate(StateFailureProbable, StateFailed, m.FailureRate)
	c.MustAddRate(StateFailed, StateRobust, m.RepairRate)
	if m.RejuvenationRate > 0 {
		c.MustAddRate(StateFailureProbable, StateRejuvenating, m.RejuvenationRate)
	}
	c.MustAddRate(StateRejuvenating, StateRobust, m.RejuvenationFinishRate)
	return c, nil
}

// SteadyState returns the stationary probabilities of the four states.
// With RejuvenationRate zero the Rejuvenating state is transient and
// gets probability zero, making the chain effectively three-state; the
// solver handles this by removing the unreachable state.
func (m Model) SteadyState() ([]float64, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.RejuvenationRate > 0 {
		c, err := m.Chain()
		if err != nil {
			return nil, err
		}
		return c.SteadyState()
	}
	// Three-state cycle Robust -> FP -> Failed -> Robust.
	c := ctmc.New(3)
	c.MustAddRate(0, 1, m.AgingRate)
	c.MustAddRate(1, 2, m.FailureRate)
	c.MustAddRate(2, 0, m.RepairRate)
	pi3, err := c.SteadyState()
	if err != nil {
		return nil, err
	}
	return []float64{pi3[0], pi3[1], pi3[2], 0}, nil
}

// Availability returns the steady-state probability of being
// operational (Robust or FailureProbable: the paper's soft-failure
// state is degraded but up).
func (m Model) Availability() (float64, error) {
	pi, err := m.SteadyState()
	if err != nil {
		return 0, err
	}
	return pi[StateRobust] + pi[StateFailureProbable], nil
}

// CostRate returns the long-run cost per unit time when unplanned
// downtime costs costFailed and planned (rejuvenation) downtime costs
// costRejuvenation per unit time. Rejuvenation pays off when its
// downtime is cheaper or shorter than repair.
func (m Model) CostRate(costFailed, costRejuvenation float64) (float64, error) {
	if costFailed < 0 || costRejuvenation < 0 {
		return 0, fmt.Errorf("aging: costs must be non-negative, got %v and %v", costFailed, costRejuvenation)
	}
	pi, err := m.SteadyState()
	if err != nil {
		return 0, err
	}
	return pi[StateFailed]*costFailed + pi[StateRejuvenating]*costRejuvenation, nil
}

// OptimalRejuvenationRate searches [0, maxRate] for the rejuvenation
// rate minimizing CostRate, by golden-section search (the cost is
// unimodal in the rate for this model). It returns the best rate and
// its cost; a best rate of zero means rejuvenation does not pay at
// these costs.
func (m Model) OptimalRejuvenationRate(costFailed, costRejuvenation, maxRate float64) (rate, cost float64, err error) {
	if maxRate <= 0 || math.IsNaN(maxRate) || math.IsInf(maxRate, 0) {
		return 0, 0, fmt.Errorf("aging: maxRate %v must be positive and finite", maxRate)
	}
	eval := func(r float64) (float64, error) {
		mm := m
		mm.RejuvenationRate = r
		return mm.CostRate(costFailed, costRejuvenation)
	}
	const phi = 0.6180339887498949 // golden ratio conjugate
	lo, hi := 0.0, maxRate
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, err := eval(x1)
	if err != nil {
		return 0, 0, err
	}
	f2, err := eval(x2)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < 200 && hi-lo > 1e-10*maxRate; i++ {
		if f1 <= f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			if f1, err = eval(x1); err != nil {
				return 0, 0, err
			}
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			if f2, err = eval(x2); err != nil {
				return 0, 0, err
			}
		}
	}
	best := (lo + hi) / 2
	bestCost, err := eval(best)
	if err != nil {
		return 0, 0, err
	}
	// The boundary r = 0 may beat the interior optimum when
	// rejuvenation does not pay; check it explicitly.
	zeroCost, err := eval(0)
	if err != nil {
		return 0, 0, err
	}
	if zeroCost <= bestCost {
		return 0, zeroCost, nil
	}
	return best, bestCost, nil
}

// MeanTimeToFailure returns the expected time from Robust to Failed
// when no rejuvenation happens: 1/AgingRate + 1/FailureRate.
func (m Model) MeanTimeToFailure() float64 {
	return 1/m.AgingRate + 1/m.FailureRate
}
