package num

import (
	"math"
	"testing"
)

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(math.Copysign(0, -1)) {
		t.Error("Zero must accept +0 and -0")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.NaN(), math.Inf(1)} {
		if Zero(x) {
			t.Errorf("Zero(%v) = true", x)
		}
	}
}

func TestSame(t *testing.T) {
	if !Same(1.5, 1.5) {
		t.Error("Same(1.5, 1.5) = false")
	}
	if Same(1.5, 1.5+1e-15) {
		t.Error("Same must be exact")
	}
	if Same(math.NaN(), math.NaN()) {
		t.Error("NaN is not Same as NaN")
	}
	if !Same(math.Inf(1), math.Inf(1)) {
		t.Error("equal infinities are Same")
	}
}

func TestEq(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1 + 1e-11, 1e-12, false},
		{1e12, 1e12 * (1 + 1e-13), 1e-12, true}, // relative at large magnitude
		{0, 1e-13, 1e-12, true},                 // absolute near zero
		{0, 1e-11, 1e-12, false},
		{math.Inf(1), math.Inf(1), 1e-12, true},
		{math.Inf(1), math.Inf(-1), 1e-12, false},
		{math.NaN(), math.NaN(), 1e-12, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Eq(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
	if !Close(1, 1+1e-14) || Close(1, 1+1e-9) {
		t.Error("Close must apply DefaultTol")
	}
}
