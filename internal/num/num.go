// Package num holds the repository's audited floating-point comparison
// helpers. The floatcmp lint rule forbids raw == and != between floats
// everywhere else, so every exact comparison the codebase genuinely
// needs lives here, behind a name that states its intent:
//
//   - Zero(x): exact test against the 0 sentinel (unset config field,
//     empty rate, zero horizon). Exactness is the point — the value was
//     stored as a literal zero, not computed.
//   - Same(a, b): exact value equality for tie-breaking and duplicate
//     detection, where treating nearby values as equal would be wrong
//     (event-queue ordering, sort comparators, constant-series checks).
//   - Eq(a, b, tol) / Close(a, b): tolerant equality for computed
//     quantities, using a relative tolerance that falls back to an
//     absolute one near zero.
package num

import "math"

// DefaultTol is the tolerance used by Close: roughly a thousand ULPs at
// magnitude one, loose enough to absorb benign rounding and tight
// enough to catch real divergence.
const DefaultTol = 1e-12

// Zero reports whether x is exactly +0 or -0. Use it for sentinel
// checks ("field not set", "no rate configured"), never for testing
// whether a computation came out as zero — use Close(x, 0) or a
// magnitude threshold for that.
func Zero(x float64) bool {
	return x == 0 //lint:allow floatcmp audited exact sentinel comparison
}

// Same reports exact value equality (NaN is not Same as anything,
// matching ==). Use it where approximate equality would change
// semantics: comparator tie-breaks, deduplication, detecting a
// constant series.
func Same(a, b float64) bool {
	return a == b //lint:allow floatcmp audited exact tie-break comparison
}

// Eq reports whether a and b agree within tol, measured relative to the
// larger magnitude, or absolutely when both are smaller than one.
// NaN never equals anything; equal infinities are equal.
func Eq(a, b, tol float64) bool {
	if Same(a, b) {
		return true // covers equal infinities and exact hits
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities are infinitely far apart
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Close is Eq with DefaultTol.
func Close(a, b float64) bool {
	return Eq(a, b, DefaultTol)
}
