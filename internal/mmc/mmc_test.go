package mmc

import (
	"math"
	"testing"

	"rejuv/internal/stats"
	"rejuv/internal/xrand"
)

// paperSystem returns the configuration used throughout the paper:
// M/M/16 with mu = 0.2 and lambda = 1.6 (8 CPUs offered load).
func paperSystem(t *testing.T) System {
	t.Helper()
	s, err := New(16, 1.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wcDirect computes Wc by the paper's own formula (below eq. 1), as an
// independent check of the Erlang-B recurrence route.
func wcDirect(c int, lambda, mu float64) float64 {
	rho := lambda / (float64(c) * mu)
	a := lambda / mu
	term := 1.0 // (c rho)^k / k! for k=0
	sum := term
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	last := term * a / float64(c) / (1 - rho)
	return 1 - last/(sum+last)
}

func TestWcMatchesDirectFormula(t *testing.T) {
	tests := []struct {
		c      int
		lambda float64
		mu     float64
	}{
		{16, 1.6, 0.2},
		{16, 0.1, 0.2},
		{16, 3.0, 0.2},
		{1, 0.5, 1},
		{4, 3.2, 1},
		{100, 80, 1},
	}
	for _, tt := range tests {
		s, err := New(tt.c, tt.lambda, tt.mu)
		if err != nil {
			t.Fatal(err)
		}
		want := wcDirect(tt.c, tt.lambda, tt.mu)
		if math.Abs(s.Wc()-want) > 1e-12 {
			t.Errorf("c=%d lambda=%v: Wc = %.15f, want %.15f", tt.c, tt.lambda, s.Wc(), want)
		}
	}
}

func TestPaperWcValue(t *testing.T) {
	// Regression anchor: Wc for the paper system.
	if got := paperSystem(t).Wc(); math.Abs(got-0.990981) > 1e-6 {
		t.Fatalf("Wc = %.6f, want 0.990981", got)
	}
}

func TestErlangBKnownValues(t *testing.T) {
	// Classic teletraffic values: B(1, a) = a/(1+a); B(2, 1) = 1/5.
	if got := ErlangB(1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("B(1,1) = %v, want 0.5", got)
	}
	if got := ErlangB(2, 1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("B(2,1) = %v, want 0.2", got)
	}
}

func TestMomentsAtLowLoadAreServiceMoments(t *testing.T) {
	// Below ~1 transaction/second the paper observes mean = sd = 5:
	// queueing is negligible and the RT is essentially Exp(0.2).
	s, err := New(16, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.RTMean()-5) > 1e-4 {
		t.Errorf("low-load mean = %v, want ~5", s.RTMean())
	}
	if math.Abs(s.RTStdDev()-5) > 1e-4 {
		t.Errorf("low-load sd = %v, want ~5", s.RTStdDev())
	}
}

func TestMomentsMatchMixtureDistribution(t *testing.T) {
	s := paperSystem(t)
	d := s.RTDist()
	if math.Abs(s.RTMean()-d.Mean()) > 1e-12 {
		t.Fatalf("eq.2 mean %v != mixture mean %v", s.RTMean(), d.Mean())
	}
	if math.Abs(s.RTVar()-d.Var()) > 1e-9 {
		t.Fatalf("eq.3 var %v != mixture var %v", s.RTVar(), d.Var())
	}
}

func TestMomentsMatchPhaseType(t *testing.T) {
	s := paperSystem(t)
	ph, err := s.RTPhaseType()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.Mean()-s.RTMean()) > 1e-9 {
		t.Fatalf("PH mean %v != eq.2 mean %v", ph.Mean(), s.RTMean())
	}
	if math.Abs(ph.Var()-s.RTVar()) > 1e-9 {
		t.Fatalf("PH var %v != eq.3 var %v", ph.Var(), s.RTVar())
	}
}

func TestRTCDFAgainstPhaseType(t *testing.T) {
	// eq. (1) closed form vs the Fig. 3 CTMC absorption route.
	s := paperSystem(t)
	ph, err := s.RTPhaseType()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 2, 5, 10, 20, 40} {
		got := s.RTCDF(x)
		want, err := ph.CDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("CDF(%v): eq.1 = %v, PH = %v", x, got, want)
		}
	}
}

func TestRTCDFAgainstMonteCarlo(t *testing.T) {
	// Sample the mixture and compare the empirical CDF with eq. (1).
	s := paperSystem(t)
	d := s.RTDist()
	r := xrand.New(123)
	const n = 200_000
	points := []float64{2, 5, 10, 18.45}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		for j, x := range points {
			if v <= x {
				counts[j]++
			}
		}
	}
	for j, x := range points {
		emp := float64(counts[j]) / n
		if math.Abs(emp-s.RTCDF(x)) > 0.005 {
			t.Errorf("CDF(%v): empirical %v, eq.1 %v", x, emp, s.RTCDF(x))
		}
	}
}

func TestAvgRTPhaseTypeMoments(t *testing.T) {
	s := paperSystem(t)
	for _, n := range []int{1, 5, 15, 30} {
		ph, err := s.AvgRTPhaseType(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := ph.NumPhases(); got != 2*n {
			t.Fatalf("n=%d: %d phases, want %d (the 2n+1-state Fig. 4 chain)", n, got, 2*n)
		}
		if math.Abs(ph.Mean()-s.RTMean()) > 1e-8 {
			t.Errorf("n=%d: mean %v, want %v", n, ph.Mean(), s.RTMean())
		}
		if want := s.RTVar() / float64(n); math.Abs(ph.Var()-want) > 1e-8 {
			t.Errorf("n=%d: var %v, want %v", n, ph.Var(), want)
		}
	}
}

func TestAvgRTPDFIntegratesToOne(t *testing.T) {
	s := paperSystem(t)
	const n = 5
	const steps = 300
	lo, hi := 0.0, 25.0
	xs := make([]float64, steps+1)
	for i := range xs {
		xs[i] = lo + (hi-lo)*float64(i)/steps
	}
	pdf, err := s.AvgRTPDF(n, xs)
	if err != nil {
		t.Fatal(err)
	}
	h := (hi - lo) / steps
	sum := 0.0
	for i, v := range pdf {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * v
	}
	if integral := sum * h; math.Abs(integral-1) > 2e-3 {
		t.Fatalf("X̄%d density integrates to %v", n, integral)
	}
}

func TestAvgRTPDFMatchesMonteCarlo(t *testing.T) {
	// Sample X̄15 and compare a histogram density against eq. (4).
	s := paperSystem(t)
	d := s.RTDist()
	r := xrand.New(321)
	h := stats.NewHistogram(2, 9, 14)
	const reps = 60_000
	for i := 0; i < reps; i++ {
		sum := 0.0
		for j := 0; j < 15; j++ {
			sum += d.Sample(r)
		}
		h.Add(sum / 15)
	}
	centers := make([]float64, len(h.Counts))
	for i := range centers {
		centers[i] = h.BinCenter(i)
	}
	exact, err := s.AvgRTPDF(15, centers)
	if err != nil {
		t.Fatal(err)
	}
	dens := h.Density()
	for i := range dens {
		if exact[i] < 0.02 {
			continue // skip thin bins with large relative MC error
		}
		if math.Abs(dens[i]-exact[i])/exact[i] > 0.08 {
			t.Errorf("bin %d (x=%.2f): empirical %v, eq.4 %v", i, centers[i], dens[i], exact[i])
		}
	}
}

func TestTailBeyondNormalQuantilePaperValues(t *testing.T) {
	// The paper reports 3.69% (n=15) and 3.37% (n=30); our solver
	// reproduces 3.71% and 3.40% — agreement to two decimals in
	// percentage points is the regression target here.
	s := paperSystem(t)
	tests := []struct {
		n     int
		paper float64
		tol   float64
	}{
		{15, 0.0369, 0.0005},
		{30, 0.0337, 0.0005},
	}
	for _, tt := range tests {
		got, err := s.TailBeyondNormalQuantile(tt.n, 0.975)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.paper) > tt.tol {
			t.Errorf("n=%d: tail %.4f, paper %.4f", tt.n, got, tt.paper)
		}
	}
}

func TestTailApproachesNominalAsNGrows(t *testing.T) {
	// CLT: the inflation over the nominal 2.5% must shrink with n.
	s := paperSystem(t)
	prev := math.Inf(1)
	for _, n := range []int{5, 15, 30, 60} {
		tail, err := s.TailBeyondNormalQuantile(n, 0.975)
		if err != nil {
			t.Fatal(err)
		}
		excess := tail - 0.025
		if excess < 0 {
			t.Fatalf("n=%d: tail %v below nominal", n, tail)
		}
		if excess > prev+1e-6 {
			t.Fatalf("n=%d: excess %v did not shrink (prev %v)", n, excess, prev)
		}
		prev = excess
	}
}

func TestNumberInSystemDist(t *testing.T) {
	s := paperSystem(t)
	probs, tail, err := s.NumberInSystemDist(200)
	if err != nil {
		t.Fatal(err)
	}
	sum := tail
	for _, p := range probs {
		if p < 0 {
			t.Fatalf("negative probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// P(fewer than c jobs) from the birth-death solution must equal Wc.
	wc := 0.0
	for k := 0; k < s.C; k++ {
		wc += probs[k]
	}
	if math.Abs(wc-s.Wc()) > 1e-9 {
		t.Fatalf("birth-death Wc = %v, eq. Wc = %v", wc, s.Wc())
	}
	if _, _, err := s.NumberInSystemDist(3); err == nil {
		t.Fatal("maxJobs below c accepted")
	}
}

func TestNormalApprox(t *testing.T) {
	s := paperSystem(t)
	mean, sd := s.NormalApprox(30)
	if mean != s.RTMean() {
		t.Fatalf("approx mean = %v, want %v", mean, s.RTMean())
	}
	if want := s.RTStdDev() / math.Sqrt(30); math.Abs(sd-want) > 1e-12 {
		t.Fatalf("approx sd = %v, want %v", sd, want)
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name   string
		c      int
		lambda float64
		mu     float64
	}{
		{"zero servers", 0, 1, 1},
		{"zero mu", 2, 1, 0},
		{"zero lambda", 2, 0, 1},
		{"unstable", 2, 2, 1},
		{"NaN lambda", 2, math.NaN(), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.c, tt.lambda, tt.mu); err == nil {
				t.Errorf("New(%d, %v, %v) accepted", tt.c, tt.lambda, tt.mu)
			}
		})
	}
	s := paperSystem(t)
	if _, err := s.TailBeyondNormalQuantile(15, 1.5); err == nil {
		t.Error("quantile level 1.5 accepted")
	}
}

func TestRemovableSingularityNearCMinus1(t *testing.T) {
	// At lambda = (c-1)*mu the two hypoexponential rates coincide and
	// eq. (1)'s closed form has a removable singularity; the mixture
	// route must stay finite and continuous there.
	s, err := New(16, 3.0, 0.2) // c*mu - lambda = 0.2 = mu exactly
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 5, 15} {
		v := s.RTCDF(x)
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("CDF(%v) = %v at the singular load", x, v)
		}
		// Continuity: nearby loads give nearby values.
		s2, err := New(16, 3.0001, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-s2.RTCDF(x)) > 1e-3 {
			t.Fatalf("CDF discontinuous at singular load: %v vs %v", v, s2.RTCDF(x))
		}
	}
}

func TestRTQuantileRoundTrip(t *testing.T) {
	s := paperSystem(t)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.975, 0.999} {
		q, err := s.RTQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.RTCDF(q); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if q, err := s.RTQuantile(0); err != nil || q != 0 {
		t.Errorf("Quantile(0) = %v, %v", q, err)
	}
	if _, err := s.RTQuantile(1); err == nil {
		t.Error("Quantile(1) accepted")
	}
	if _, err := s.RTQuantile(-0.1); err == nil {
		t.Error("negative level accepted")
	}
}

func TestWaitDistribution(t *testing.T) {
	s := paperSystem(t)
	// P(W <= 0) = Wc: the no-wait probability.
	if got := s.WaitCDF(0); math.Abs(got-s.Wc()) > 1e-12 {
		t.Fatalf("WaitCDF(0) = %v, want Wc = %v", got, s.Wc())
	}
	if s.WaitCDF(-1) != 0 {
		t.Fatal("WaitCDF(-1) != 0")
	}
	// Wait mean consistency: E[RT] = E[S] + E[W].
	if got := 1/s.Mu + s.WaitMean(); math.Abs(got-s.RTMean()) > 1e-12 {
		t.Fatalf("1/mu + E[W] = %v, eq.2 mean = %v", got, s.RTMean())
	}
	// Monotone to 1.
	prev := 0.0
	for x := 0.0; x < 50; x += 0.5 {
		c := s.WaitCDF(x)
		if c < prev {
			t.Fatalf("WaitCDF decreasing at %v", x)
		}
		prev = c
	}
	if prev < 0.999999 {
		t.Fatalf("WaitCDF(50) = %v, want ~1", prev)
	}
}
