// Package mmc implements the analytical M/M/c queueing results the paper
// builds its algorithms on: the Erlang formulas, the response-time
// distribution of a steady-state FCFS M/M/c system (paper eq. 1), its
// mean and variance (eq. 2, 3), the phase-type representation (Fig. 2/3),
// and the distribution of the sample-average response time X̄n via the
// concatenated absorbing CTMC (Fig. 4, eq. 4).
package mmc

import (
	"fmt"
	"math"

	"rejuv/internal/dist"
	"rejuv/internal/num"
	"rejuv/internal/phasetype"
	"rejuv/internal/stats"
)

// System is a stable FCFS M/M/c queue.
type System struct {
	C      int     // number of servers
	Lambda float64 // arrival rate
	Mu     float64 // per-server service rate
}

// New validates and returns an M/M/c system. The system must be stable
// (lambda < c*mu); an unstable system has no steady-state response time,
// so every quantity this package computes would be undefined.
func New(c int, lambda, mu float64) (System, error) {
	switch {
	case c <= 0:
		return System{}, fmt.Errorf("mmc: need at least one server, got %d", c)
	case mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0):
		return System{}, fmt.Errorf("mmc: service rate must be positive and finite, got %v", mu)
	case lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0):
		return System{}, fmt.Errorf("mmc: arrival rate must be positive and finite, got %v", lambda)
	case lambda >= float64(c)*mu:
		return System{}, fmt.Errorf("mmc: unstable system: lambda=%v >= c*mu=%v", lambda, float64(c)*mu)
	}
	return System{C: c, Lambda: lambda, Mu: mu}, nil
}

// Rho returns the traffic intensity lambda/(c*mu).
func (s System) Rho() float64 { return s.Lambda / (float64(s.C) * s.Mu) }

// OfferedLoad returns lambda/mu, the load in "CPUs" used as the x-axis
// of the paper's figures.
func (s System) OfferedLoad() float64 { return s.Lambda / s.Mu }

// ErlangB returns the Erlang-B blocking probability for a offered
// erlangs on c servers, via the numerically stable recurrence.
func ErlangB(c int, a float64) float64 {
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	return b
}

// ErlangC returns the steady-state probability that an arriving job must
// wait (all c servers busy), computed from Erlang-B for numerical
// stability at large c.
func (s System) ErlangC() float64 {
	a := s.Lambda / s.Mu
	b := ErlangB(s.C, a)
	rho := s.Rho()
	return b / (1 - rho*(1-b))
}

// Wc returns the steady-state probability that fewer than c jobs are in
// the system — the mixing weight of the paper's eq. (1).
func (s System) Wc() float64 { return 1 - s.ErlangC() }

// RTMean returns the expected steady-state response time, paper eq. (2):
// 1/mu + (1-Wc)/(c*mu - lambda).
func (s System) RTMean() float64 {
	return 1/s.Mu + (1-s.Wc())/(float64(s.C)*s.Mu-s.Lambda)
}

// RTVar returns the variance of the steady-state response time, paper
// eq. (3): 1/mu^2 + (1-Wc^2)/(c*mu-lambda)^2.
func (s System) RTVar() float64 {
	wc := s.Wc()
	d := float64(s.C)*s.Mu - s.Lambda
	return 1/(s.Mu*s.Mu) + (1-wc*wc)/(d*d)
}

// RTStdDev returns the standard deviation of the response time.
func (s System) RTStdDev() float64 { return math.Sqrt(s.RTVar()) }

// drainRate returns c*mu - lambda, the rate of the second phase of the
// conditional (queueing) response time.
func (s System) drainRate() float64 { return float64(s.C)*s.Mu - s.Lambda }

// RTCDF returns the steady-state response-time CDF, paper eq. (1).
// The formula's removable singularity at lambda = (c-1)*mu is handled by
// switching to the equal-rate (Erlang) form of the conditional branch.
func (s System) RTCDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return s.RTDist().CDF(x)
}

// RTQuantile returns the p-quantile of the steady-state response time,
// inverting eq. (1) by bisection. It errors for p outside [0, 1).
func (s System) RTQuantile(p float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("mmc: quantile level %v outside [0,1)", p)
	}
	if num.Zero(p) {
		return 0, nil
	}
	lo, hi := 0.0, 1.0
	for s.RTCDF(hi) < p {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("mmc: quantile search diverged at p=%v", p)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*hi; i++ {
		mid := (lo + hi) / 2
		if s.RTCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// WaitCDF returns the steady-state distribution of the queueing delay
// W (time before service starts): P(W <= t) = 1 - ErlangC * exp(-(c*mu-lambda)*t).
// An arriving job waits zero with probability Wc.
func (s System) WaitCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - s.ErlangC()*math.Exp(-s.drainRate()*t)
}

// WaitMean returns the expected queueing delay ErlangC/(c*mu-lambda).
func (s System) WaitMean() float64 {
	return s.ErlangC() / s.drainRate()
}

// RTPDF returns the steady-state response-time density.
func (s System) RTPDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return s.RTDist().PDF(x)
}

// RTDist returns the response time as a mixture distribution: with
// probability Wc a plain Exp(mu) service, otherwise Exp(mu) service plus
// an Exp(c*mu-lambda) queueing phase (the hypoexponential branch of
// paper Fig. 2).
func (s System) RTDist() dist.Mixture {
	wc := s.Wc()
	service := dist.Exponential{Rate: s.Mu}
	queued, err := dist.NewHypoExp(s.Mu, s.drainRate())
	if err != nil {
		panic(err) // unreachable: rates validated in New
	}
	m, err := dist.NewMixture([]float64{wc, 1 - wc}, []dist.Dist{service, queued})
	if err != nil {
		panic(err) // unreachable: wc in [0,1] by construction
	}
	return m
}

// RTPhaseType returns the two-phase PH representation of the response
// time matching the paper's Fig. 3 CTMC: from phase 1 (service) the job
// absorbs at rate mu*Wc or continues to phase 2 (drain) at rate
// mu*(1-Wc); phase 2 absorbs at rate c*mu-lambda.
func (s System) RTPhaseType() (*phasetype.PH, error) {
	wc := s.Wc()
	t := [][]float64{
		{-s.Mu, s.Mu * (1 - wc)},
		{0, -s.drainRate()},
	}
	return phasetype.New([]float64{1, 0}, matrixFromRows(t))
}

// AvgRTPhaseType returns the phase-type distribution of the sample mean
// X̄n of n independent response times: the 2n+1-state concatenated chain
// of the paper's Fig. 4 (2n transient phases plus absorption).
func (s System) AvgRTPhaseType(n int) (*phasetype.PH, error) {
	ph, err := s.RTPhaseType()
	if err != nil {
		return nil, err
	}
	return ph.SampleMean(n)
}

// AvgRTPDF returns the density of X̄n at each point in xs — the paper's
// eq. (4), evaluated by uniformization of the Fig. 4 chain.
func (s System) AvgRTPDF(n int, xs []float64) ([]float64, error) {
	ph, err := s.AvgRTPhaseType(n)
	if err != nil {
		return nil, err
	}
	out, err := ph.PDFBatch(xs, 0)
	if err != nil {
		return nil, fmt.Errorf("mmc: X̄%d density: %w", n, err)
	}
	return out, nil
}

// AvgRTCDF returns P(X̄n <= x).
func (s System) AvgRTCDF(n int, x float64) (float64, error) {
	ph, err := s.AvgRTPhaseType(n)
	if err != nil {
		return 0, err
	}
	return ph.CDF(x, 0)
}

// NormalApprox returns the mean and standard deviation of the normal
// approximation to X̄n used in the paper's Fig. 5 overlays:
// mean mu_X and sigma_X/sqrt(n).
func (s System) NormalApprox(n int) (mean, sd float64) {
	return s.RTMean(), s.RTStdDev() / math.Sqrt(float64(n))
}

// TailBeyondNormalQuantile returns the true probability mass of X̄n to
// the right of the p-quantile of its approximating normal distribution.
// For the paper's configuration (c=16, lambda=1.6, mu=0.2, p=0.975) this
// is 3.69% for n=15 and 3.37% for n=30 — the inflated false-alarm
// probabilities discussed in Section 4.1.
func (s System) TailBeyondNormalQuantile(n int, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("mmc: quantile level %v outside (0,1)", p)
	}
	mean, sd := s.NormalApprox(n)
	q := stats.NormQuantile(p, mean, sd)
	cdf, err := s.AvgRTCDF(n, q)
	if err != nil {
		return 0, err
	}
	return 1 - cdf, nil
}

// NumberInSystemDist returns the steady-state distribution of the number
// of jobs in the system (the birth-death chain of paper Fig. 1),
// truncated at maxJobs and renormalized. The truncation point must leave
// negligible tail mass for the result to be meaningful; the returned
// tail estimate is the mass of the discarded geometric tail.
func (s System) NumberInSystemDist(maxJobs int) (probs []float64, tail float64, err error) {
	if maxJobs < s.C {
		return nil, 0, fmt.Errorf("mmc: maxJobs %d must be at least c=%d", maxJobs, s.C)
	}
	// Unnormalized terms: pi_k = pi_0 a^k/k! for k<=c, then *rho each step.
	a := s.Lambda / s.Mu
	rho := s.Rho()
	terms := make([]float64, maxJobs+1)
	terms[0] = 1
	for k := 1; k <= maxJobs; k++ {
		if k <= s.C {
			terms[k] = terms[k-1] * a / float64(k)
		} else {
			terms[k] = terms[k-1] * rho
		}
	}
	sum := 0.0
	for _, t := range terms {
		sum += t
	}
	// Geometric tail beyond maxJobs.
	tailMass := terms[maxJobs] * rho / (1 - rho)
	total := sum + tailMass
	for k := range terms {
		terms[k] /= total
	}
	return terms, tailMass / total, nil
}
