package mmc

import "rejuv/internal/linalg"

// matrixFromRows adapts a row-slice literal to a linalg.Matrix; it exists
// so the sub-generators in this package read like the paper's figures.
func matrixFromRows(rows [][]float64) *linalg.Matrix {
	return linalg.FromRows(rows)
}
