package experiment

import (
	"fmt"
	"math"
	"runtime"

	"rejuv/internal/conformance"
	"rejuv/internal/ecommerce"
	"rejuv/internal/num"
	"rejuv/internal/stats"
)

// SweepConfig describes a load sweep of the e-commerce model.
type SweepConfig struct {
	// Loads is the offered load axis in "CPUs" (lambda/mu), as in the
	// paper's figures. Zero means PaperLoads.
	Loads []float64
	// Replications per load point (paper: 5).
	Replications int
	// Transactions per replication (paper: 100,000).
	Transactions int64
	// Seed is the base random seed; each (load, replication) pair uses
	// an independent stream derived from it.
	Seed uint64
	// Model overrides fields of the e-commerce configuration other than
	// ArrivalRate, Transactions, Seed and Stream (which the sweep
	// controls). Leave zero for the paper's system.
	Model ecommerce.Config
	// Workers bounds the number of concurrent replications; zero means
	// GOMAXPROCS.
	Workers int
}

// PaperLoads returns the x-axis of the paper's figures: 0.5 to 10.0 CPUs
// in steps of 0.5.
func PaperLoads() []float64 {
	loads := make([]float64, 0, 20)
	for l := 0.5; l <= 10.0+1e-9; l += 0.5 {
		loads = append(loads, math.Round(l*2)/2)
	}
	return loads
}

// defaulted returns cfg with zero fields replaced by paper values.
func (cfg SweepConfig) defaulted() SweepConfig {
	if len(cfg.Loads) == 0 {
		cfg.Loads = PaperLoads()
	}
	if cfg.Replications == 0 {
		cfg.Replications = 5
	}
	if cfg.Transactions == 0 {
		cfg.Transactions = 100_000
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// Point is one load point of a series, aggregated over replications.
type Point struct {
	// Load is the offered load in CPUs (lambda/mu).
	Load float64
	// AvgRT is the mean response time over all completed transactions
	// of all replications.
	AvgRT float64
	// RTStdDev is the standard deviation of the pooled response times.
	RTStdDev float64
	// AvgRTStdErr is the standard error of AvgRT across replications,
	// for confidence intervals.
	AvgRTStdErr float64
	// LossFraction is total lost / (lost + completed) over all
	// replications — the paper's "average fraction of transaction loss".
	LossFraction float64
	// Rejuvenations is the mean number of rejuvenations per replication.
	Rejuvenations float64
	// GCs is the mean number of full garbage collections per replication.
	GCs float64
	// Replications actually run for this point.
	Replications int
}

// Series is one curve of a figure: a spec swept over the load axis.
type Series struct {
	Spec   Spec
	Points []Point
}

// RunSweep runs the spec over the load axis and returns the aggregated
// series. Replications run concurrently up to cfg.Workers on the
// conformance replication engine; results are bit-for-bit deterministic
// regardless of worker count because every replication has its own
// random stream and the engine folds results in cell order (pooled
// floating-point moments are sensitive to merge order).
func RunSweep(cfg SweepConfig, spec Spec) (Series, error) {
	cfg = cfg.defaulted()
	mu := cfg.Model.ServiceRate
	if num.Zero(mu) {
		mu = 0.2
	}

	// The flattened (load, replication) grid runs on the conformance
	// replication engine: bodies execute concurrently, but results fold
	// back in cell order, so the pooled Welford moments of every point
	// are bit-identical for any worker count.
	agg := make([]pointAgg, len(cfg.Loads))
	cells := len(cfg.Loads) * cfg.Replications
	err := conformance.Run(conformance.Engine{Workers: cfg.Workers}, cells,
		func(cell int) (ecommerce.Result, error) {
			return runReplication(cfg, spec, mu, cell/cfg.Replications, cell%cfg.Replications)
		},
		func(cell int, res ecommerce.Result) error {
			agg[cell/cfg.Replications].add(res)
			return nil
		})
	if err != nil {
		return Series{}, err
	}

	series := Series{Spec: spec, Points: make([]Point, len(cfg.Loads))}
	for i, load := range cfg.Loads {
		series.Points[i] = agg[i].finish(load)
	}
	return series, nil
}

// runReplication executes one (load, replication) cell.
func runReplication(cfg SweepConfig, spec Spec, mu float64, loadIdx, rep int) (ecommerce.Result, error) {
	det, err := spec.NewDetector()
	if err != nil {
		return ecommerce.Result{}, fmt.Errorf("experiment: %s: %w", spec.Label(), err)
	}
	model := cfg.Model
	model.ArrivalRate = cfg.Loads[loadIdx] * mu
	model.Transactions = cfg.Transactions
	model.Seed = cfg.Seed
	// Distinct stream per (load, replication) cell keeps replications
	// independent and results independent of worker scheduling.
	model.Stream = uint64(loadIdx)*1_000 + uint64(rep) + 1
	m, err := ecommerce.New(model, det)
	if err != nil {
		return ecommerce.Result{}, fmt.Errorf("experiment: %s at load %v: %w", spec.Label(), cfg.Loads[loadIdx], err)
	}
	return m.Run()
}

// pointAgg pools replication results for one load point.
type pointAgg struct {
	rt        stats.Welford // pooled over all transactions
	repMeans  stats.Welford // across replications, for the standard error
	completed int64
	lost      int64
	rejuv     int64
	gcs       int64
	reps      int
}

func (a *pointAgg) add(r ecommerce.Result) {
	a.rt.Merge(r.RT)
	if r.RT.N() > 0 {
		a.repMeans.Add(r.RT.Mean())
	}
	a.completed += r.Completed
	a.lost += r.Lost
	a.rejuv += r.Rejuvenations
	a.gcs += r.GCs
	a.reps++
}

func (a *pointAgg) finish(load float64) Point {
	p := Point{
		Load:          load,
		AvgRT:         a.rt.Mean(),
		RTStdDev:      a.rt.StdDev(),
		AvgRTStdErr:   a.repMeans.StdErr(),
		Rejuvenations: float64(a.rejuv) / float64(max(a.reps, 1)),
		GCs:           float64(a.gcs) / float64(max(a.reps, 1)),
		Replications:  a.reps,
	}
	if done := a.completed + a.lost; done > 0 {
		p.LossFraction = float64(a.lost) / float64(done)
	}
	return p
}
