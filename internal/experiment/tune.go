package experiment

import (
	"fmt"
	"sort"

	"rejuv/internal/num"
)

// TuneConfig describes a grid search for algorithm parameters — the
// paper's proposed future work of determining optimal (n, K, D)
// configurations, run offline over the simulation model. The search
// scores each candidate by the paper's own assessment basis (Section 5):
// the average response time at high load plus the transaction loss at
// low load, combined linearly.
type TuneConfig struct {
	// Algorithm to tune: SRAA or SARAA.
	Algorithm Algorithm
	// Budget fixes the product n*K*D (the paper sweeps 15 and 30).
	// Zero searches the full box [1,MaxN]x[1,MaxK]x[1,MaxD] instead.
	Budget int
	// MaxN, MaxK, MaxD bound the free search; ignored when Budget > 0.
	MaxN, MaxK, MaxD int
	// HighLoad and LowLoad are the two assessment points, in CPUs.
	// Zero selects the paper's 9.0 and 0.5.
	HighLoad, LowLoad float64
	// RTWeight is the cost per second of average response time at high
	// load; LossWeight the cost per unit of loss fraction at low load.
	// Zeroes select 1 and 100, which prices 1% low-load loss like one
	// second of high-load response time.
	RTWeight, LossWeight float64
	// Replications and Transactions control the fidelity of each
	// evaluation; zeroes select 3 x 50,000.
	Replications int
	Transactions int64
	// Seed is the base random seed shared by all candidates, so the
	// comparison uses common random numbers.
	Seed uint64
}

func (cfg TuneConfig) defaulted() TuneConfig {
	if cfg.Algorithm == "" {
		cfg.Algorithm = SRAA
	}
	if num.Zero(cfg.HighLoad) {
		cfg.HighLoad = 9.0
	}
	if num.Zero(cfg.LowLoad) {
		cfg.LowLoad = 0.5
	}
	if num.Zero(cfg.RTWeight) {
		cfg.RTWeight = 1
	}
	if num.Zero(cfg.LossWeight) {
		cfg.LossWeight = 100
	}
	if cfg.Replications == 0 {
		cfg.Replications = 3
	}
	if cfg.Transactions == 0 {
		cfg.Transactions = 50_000
	}
	if cfg.Budget == 0 {
		if cfg.MaxN == 0 {
			cfg.MaxN = 8
		}
		if cfg.MaxK == 0 {
			cfg.MaxK = 6
		}
		if cfg.MaxD == 0 {
			cfg.MaxD = 6
		}
	}
	return cfg
}

// TuneResult is one evaluated candidate.
type TuneResult struct {
	Spec Spec
	// HighRT is the average response time at the high assessment load.
	HighRT float64
	// LowLoss is the loss fraction at the low assessment load.
	LowLoss float64
	// HighLoss is the loss fraction at the high assessment load
	// (informational; not part of the cost).
	HighLoss float64
	// Cost is RTWeight*HighRT + LossWeight*LowLoss.
	Cost float64
}

// Candidates enumerates the (n, K, D) triples the configuration admits:
// all factorizations of Budget, or the bounded box.
func (cfg TuneConfig) Candidates() []Spec {
	cfg = cfg.defaulted()
	var out []Spec
	add := func(n, k, d int) {
		s := Spec{Algorithm: cfg.Algorithm, N: n, K: k, D: d}
		out = append(out, s)
	}
	if cfg.Budget > 0 {
		for n := 1; n <= cfg.Budget; n++ {
			if cfg.Budget%n != 0 {
				continue
			}
			rest := cfg.Budget / n
			for k := 1; k <= rest; k++ {
				if rest%k != 0 {
					continue
				}
				add(n, k, rest/k)
			}
		}
		return out
	}
	for n := 1; n <= cfg.MaxN; n++ {
		for k := 1; k <= cfg.MaxK; k++ {
			for d := 1; d <= cfg.MaxD; d++ {
				add(n, k, d)
			}
		}
	}
	return out
}

// Tune evaluates every candidate at the two assessment loads and
// returns the results sorted by ascending cost.
func Tune(cfg TuneConfig) ([]TuneResult, error) {
	cfg = cfg.defaulted()
	candidates := cfg.Candidates()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("experiment: tune admits no candidates")
	}
	sweep := SweepConfig{
		Loads:        []float64{cfg.LowLoad, cfg.HighLoad},
		Replications: cfg.Replications,
		Transactions: cfg.Transactions,
		Seed:         cfg.Seed,
	}
	results := make([]TuneResult, 0, len(candidates))
	for _, spec := range candidates {
		series, err := RunSweep(sweep, spec)
		if err != nil {
			return nil, fmt.Errorf("experiment: tune %s: %w", spec.Label(), err)
		}
		low, high := series.Points[0], series.Points[1]
		r := TuneResult{
			Spec:     spec,
			HighRT:   high.AvgRT,
			LowLoss:  low.LossFraction,
			HighLoss: high.LossFraction,
		}
		r.Cost = cfg.RTWeight*r.HighRT + cfg.LossWeight*r.LowLoss
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool {
		if !num.Same(results[i].Cost, results[j].Cost) {
			return results[i].Cost < results[j].Cost
		}
		return results[i].Spec.Label() < results[j].Spec.Label()
	})
	return results, nil
}
