package experiment

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"rejuv/internal/core"
)

func TestSpecLabels(t *testing.T) {
	tests := []struct {
		spec Spec
		want string
	}{
		{sraaSpec(2, 5, 3), "SRAA (n=2, K=5, D=3)"},
		{saraaSpec(6, 5, 1), "SARAA (n=6, K=5, D=1)"},
		{Spec{Algorithm: CLTA, N: 30, Quantile: 1.96}, "CLTA (n=30, N=1.96)"},
		{Spec{Algorithm: None}, "no rejuvenation"},
		{Spec{Algorithm: Shewhart, Quantile: 3}, "Shewhart (L=3)"},
		{Spec{Algorithm: EWMA, Weight: 0.2, Quantile: 3}, "EWMA (w=0.2, L=3)"},
		{Spec{Algorithm: CUSUM, Weight: 0.5, Quantile: 5}, "CUSUM (k=0.5, h=5)"},
	}
	for _, tt := range tests {
		if got := tt.spec.Label(); got != tt.want {
			t.Errorf("Label() = %q, want %q", got, tt.want)
		}
	}
}

func TestSpecBuildsEveryAlgorithm(t *testing.T) {
	specs := []Spec{
		sraaSpec(2, 5, 3),
		saraaSpec(2, 5, 3),
		{Algorithm: CLTA, N: 30, Quantile: 1.96},
		{Algorithm: Shewhart, Quantile: 3},
		{Algorithm: EWMA, Weight: 0.2, Quantile: 3},
		{Algorithm: CUSUM, Weight: 0.5, Quantile: 5},
	}
	for _, s := range specs {
		det, err := s.NewDetector()
		if err != nil {
			t.Errorf("%s: %v", s.Label(), err)
			continue
		}
		if det == nil {
			t.Errorf("%s: nil detector", s.Label())
		}
	}
	if det, err := (Spec{Algorithm: None}).NewDetector(); err != nil || det != nil {
		t.Errorf("None: det=%v err=%v, want nil,nil", det, err)
	}
	if _, err := (Spec{Algorithm: "bogus"}).NewDetector(); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSpecDefaultsToPaperBaseline(t *testing.T) {
	det, err := sraaSpec(1, 1, 1).NewDetector()
	if err != nil {
		t.Fatal(err)
	}
	sraa, ok := det.(*core.SRAA)
	if !ok {
		t.Fatalf("detector type %T", det)
	}
	if sraa.Config().Baseline != PaperBaseline {
		t.Fatalf("baseline %+v, want paper's (5,5)", sraa.Config().Baseline)
	}
}

func TestPaperLoadsAxis(t *testing.T) {
	loads := PaperLoads()
	if len(loads) != 20 {
		t.Fatalf("%d load points, want 20", len(loads))
	}
	if loads[0] != 0.5 || loads[19] != 10 {
		t.Fatalf("axis [%v..%v], want [0.5..10]", loads[0], loads[19])
	}
	for i := 1; i < len(loads); i++ {
		if math.Abs(loads[i]-loads[i-1]-0.5) > 1e-12 {
			t.Fatalf("non-uniform step at %d: %v", i, loads)
		}
	}
}

func TestPaperFiguresDefinitions(t *testing.T) {
	figs := PaperFigures()
	if len(figs) != 8 {
		t.Fatalf("%d figures, want 8 (Figs. 9-16)", len(figs))
	}
	product := map[int]int{9: 15, 10: 15, 11: 30, 12: 30, 13: 30, 14: 30, 15: 30, 16: 30}
	seriesCount := map[int]int{9: 7, 10: 7, 11: 7, 12: 7, 13: 7, 14: 7, 15: 4, 16: 3}
	for _, f := range figs {
		if len(f.Specs) != seriesCount[f.Number] {
			t.Errorf("figure %d has %d series, want %d", f.Number, len(f.Specs), seriesCount[f.Number])
		}
		for _, s := range f.Specs {
			if s.Algorithm == SRAA || s.Algorithm == SARAA {
				if got := s.N * s.K * s.D; got != product[f.Number] {
					t.Errorf("figure %d series %s: n*K*D = %d, want %d",
						f.Number, s.Label(), got, product[f.Number])
				}
			}
		}
	}
	// Figures 10 and 13 are loss plots, the rest response time.
	for _, f := range figs {
		wantLoss := f.Number == 10 || f.Number == 13
		if (f.Metric == MetricLoss) != wantLoss {
			t.Errorf("figure %d metric %q", f.Number, f.Metric)
		}
	}
}

func TestFigureByID(t *testing.T) {
	for _, id := range []string{"fig09", "9", "09"} {
		f, err := FigureByID(id)
		if err != nil || f.Number != 9 {
			t.Errorf("FigureByID(%q) = %v, %v", id, f.Number, err)
		}
	}
	if _, err := FigureByID("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

// quickSweep is a tiny but real sweep used by the harness tests.
func quickSweep() SweepConfig {
	return SweepConfig{
		Loads:        []float64{0.5, 8},
		Replications: 2,
		Transactions: 5_000,
		Seed:         1,
		Workers:      2,
	}
}

func TestRunSweepShape(t *testing.T) {
	series, err := RunSweep(quickSweep(), sraaSpec(2, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 2 {
		t.Fatalf("%d points, want 2", len(series.Points))
	}
	for i, p := range series.Points {
		if p.Replications != 2 {
			t.Errorf("point %d ran %d replications, want 2", i, p.Replications)
		}
		if p.AvgRT <= 0 || math.IsNaN(p.AvgRT) {
			t.Errorf("point %d has avg RT %v", i, p.AvgRT)
		}
		if p.LossFraction < 0 || p.LossFraction > 1 {
			t.Errorf("point %d has loss %v", i, p.LossFraction)
		}
	}
	// Higher load must not make things better in this model.
	if series.Points[1].AvgRT < series.Points[0].AvgRT {
		t.Errorf("RT fell with load: %v -> %v", series.Points[0].AvgRT, series.Points[1].AvgRT)
	}
}

func TestRunSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	// The conformance engine folds replication results in cell order,
	// so every aggregated field — including the order-sensitive pooled
	// Welford moments RTStdDev and AvgRTStdErr — must be bit-identical
	// for any worker count.
	pointBits := func(p Point) [6]uint64 {
		return [6]uint64{
			math.Float64bits(p.AvgRT),
			math.Float64bits(p.RTStdDev),
			math.Float64bits(p.AvgRTStdErr),
			math.Float64bits(p.LossFraction),
			math.Float64bits(p.Rejuvenations),
			math.Float64bits(p.GCs),
		}
	}
	cfg := quickSweep()
	cfg.Workers = 1
	ref, err := RunSweep(cfg, sraaSpec(2, 5, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 7} {
		cfg.Workers = workers
		got, err := RunSweep(cfg, sraaSpec(2, 5, 3))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Points {
			if pointBits(got.Points[i]) != pointBits(ref.Points[i]) {
				t.Fatalf("workers=%d: point %d differs bitwise from workers=1: %+v vs %+v",
					workers, i, got.Points[i], ref.Points[i])
			}
		}
	}
}

func TestRunSweepPropagatesDetectorError(t *testing.T) {
	if _, err := RunSweep(quickSweep(), Spec{Algorithm: "bogus"}); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestRunFigureAndReports(t *testing.T) {
	fig := Figure{
		ID: "figtest", Number: 99, Title: "test figure", Metric: MetricRT,
		Specs: []Spec{sraaSpec(15, 1, 1), {Algorithm: None}},
	}
	res, err := RunFigure(quickSweep(), fig)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("%d series, want 2", len(res.Series))
	}

	var out strings.Builder
	if err := res.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 { // header + 2 load rows
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "SRAA (n=15") || !strings.Contains(lines[0], "no rejuvenation") {
		t.Fatalf("CSV header missing labels: %q", lines[0])
	}

	table := res.Table()
	for _, want := range []string{"Figure 99", "test figure", "load (CPUs)", "0.5", "8.0"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	at := res.SummaryAt(8)
	if len(at) != 2 {
		t.Fatalf("SummaryAt returned %d entries", len(at))
	}
	for label, v := range at {
		if v <= 0 {
			t.Errorf("SummaryAt[%s] = %v", label, v)
		}
	}
}

func TestMetricHelpers(t *testing.T) {
	p := Point{AvgRT: 7, LossFraction: 0.25}
	if MetricRT.Value(p) != 7 || MetricLoss.Value(p) != 0.25 {
		t.Fatal("metric extraction broken")
	}
	if MetricRT.AxisLabel() == MetricLoss.AxisLabel() {
		t.Fatal("metric axis labels identical")
	}
}

func TestWriteDetailedCSV(t *testing.T) {
	fig := Figure{
		ID: "figdetail", Number: 98, Title: "detail", Metric: MetricRT,
		Specs: []Spec{sraaSpec(15, 1, 1)},
	}
	res, err := RunFigure(quickSweep(), fig)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteDetailedCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("detailed CSV does not parse: %v\n%s", err, buf.String())
	}
	if len(records) != 3 { // header + 2 loads x 1 series
		t.Fatalf("detailed CSV has %d records, want 3:\n%s", len(records), buf.String())
	}
	if records[0][0] != "series" || records[0][2] != "avg_rt" {
		t.Fatalf("header %v", records[0])
	}
	for _, rec := range records[1:] {
		if len(rec) != 9 {
			t.Fatalf("row has %d columns, want 9: %v", len(rec), rec)
		}
		if rec[0] != "SRAA (n=15, K=1, D=1)" {
			t.Fatalf("series label %q", rec[0])
		}
	}
}
