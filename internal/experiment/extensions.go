package experiment

import (
	"fmt"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
	"rejuv/internal/num"
)

// This file defines the extension experiments that go beyond the
// paper's figures: cluster scaling (per the authors' companion work on
// cluster systems) and burst tolerance (the paper's Section-1 design
// requirement, which its own evaluation never isolates).

// ClusterSweepConfig describes the cluster-scaling extension figure:
// cluster-wide average response time and loss versus per-host offered
// load, for several cluster sizes, each host guarded by the paper's
// best-trade-off detector and restarts serialized across the cluster.
type ClusterSweepConfig struct {
	// Hosts lists the cluster sizes to sweep (e.g. 1, 2, 4).
	Hosts []int
	// Loads is the per-host offered load axis in CPUs; zero means
	// PaperLoads.
	Loads []float64
	// Spec is the per-host detector configuration; the zero value
	// selects SRAA(2,5,3), the paper's Fig. 16 bucketed baseline.
	Spec Spec
	// RejuvenationPause is the per-host restart outage in seconds
	// (zero: 30, a production-plausible JVM restart).
	RejuvenationPause float64
	// Transactions per replication and Replications per point; zeroes
	// select 100,000 and 3.
	Transactions int64
	Replications int
	// Seed is the base random seed.
	Seed uint64
}

func (cfg ClusterSweepConfig) defaulted() ClusterSweepConfig {
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = []int{1, 2, 4}
	}
	if len(cfg.Loads) == 0 {
		cfg.Loads = PaperLoads()
	}
	if cfg.Spec.Algorithm == "" {
		cfg.Spec = sraaSpec(2, 5, 3)
	}
	if num.Zero(cfg.RejuvenationPause) {
		cfg.RejuvenationPause = 30
	}
	if cfg.Transactions == 0 {
		cfg.Transactions = 100_000
	}
	if cfg.Replications == 0 {
		cfg.Replications = 3
	}
	return cfg
}

// ClusterPoint is one (hosts, load) cell.
type ClusterPoint struct {
	Load          float64
	AvgRT         float64
	LossFraction  float64
	Rejuvenations float64 // mean per replication
	Deferred      float64 // mean per replication
}

// ClusterSeries is the sweep for one cluster size.
type ClusterSeries struct {
	Hosts  int
	Points []ClusterPoint
}

// RunClusterSweep executes the cluster-scaling experiment.
func RunClusterSweep(cfg ClusterSweepConfig) ([]ClusterSeries, error) {
	cfg = cfg.defaulted()
	out := make([]ClusterSeries, 0, len(cfg.Hosts))
	for _, hosts := range cfg.Hosts {
		series := ClusterSeries{Hosts: hosts, Points: make([]ClusterPoint, 0, len(cfg.Loads))}
		for li, load := range cfg.Loads {
			var completed, lost, rejuv, deferred int64
			var rtWeighted float64
			for rep := 0; rep < cfg.Replications; rep++ {
				factory := func(int) (core.Detector, error) { return cfg.Spec.NewDetector() }
				c, err := ecommerce.NewCluster(ecommerce.ClusterConfig{
					Hosts:             hosts,
					ArrivalRate:       float64(hosts) * load * 0.2,
					RejuvenationPause: cfg.RejuvenationPause,
					Transactions:      cfg.Transactions,
					Seed:              cfg.Seed,
					Stream:            uint64(hosts)*100_000 + uint64(li)*100 + uint64(rep) + 1,
				}, factory)
				if err != nil {
					return nil, fmt.Errorf("experiment: cluster sweep hosts=%d load=%v: %w", hosts, load, err)
				}
				res, err := c.Run()
				if err != nil {
					return nil, err
				}
				rtWeighted += res.RT.Mean() * float64(res.Completed)
				completed += res.Completed
				lost += res.Lost
				rejuv += res.Rejuvenations
				deferred += res.Deferred
			}
			p := ClusterPoint{
				Load:          load,
				Rejuvenations: float64(rejuv) / float64(cfg.Replications),
				Deferred:      float64(deferred) / float64(cfg.Replications),
			}
			if completed > 0 {
				p.AvgRT = rtWeighted / float64(completed)
			}
			if done := completed + lost; done > 0 {
				p.LossFraction = float64(lost) / float64(done)
			}
			series.Points = append(series.Points, p)
		}
		out = append(out, series)
	}
	return out, nil
}

// BurstSweepConfig describes the burst-tolerance extension figure:
// false alarms per 100k transactions versus burst factor, with aging
// disabled so every trigger is spurious.
type BurstSweepConfig struct {
	// Factors is the burst-factor axis (1 = no bursts).
	Factors []float64
	// Specs are the detector configurations to compare; zero selects
	// the multi-bucket (2,5,3) vs single-bucket (15,1,1) pair.
	Specs []Spec
	// BaseLoad is the quiet-period offered load in CPUs (zero: 4).
	BaseLoad float64
	// BurstOn/BurstOff are the mean phase durations in seconds
	// (zeroes: 60 and 600).
	BurstOn, BurstOff float64
	// Transactions per replication and Replications per point; zeroes
	// select 100,000 and 3.
	Transactions int64
	Replications int
	// Seed is the base random seed.
	Seed uint64
}

func (cfg BurstSweepConfig) defaulted() BurstSweepConfig {
	if len(cfg.Factors) == 0 {
		cfg.Factors = []float64{1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	}
	if len(cfg.Specs) == 0 {
		cfg.Specs = []Spec{sraaSpec(2, 5, 3), sraaSpec(15, 1, 1)}
	}
	if num.Zero(cfg.BaseLoad) {
		cfg.BaseLoad = 4
	}
	if num.Zero(cfg.BurstOn) {
		cfg.BurstOn = 60
	}
	if num.Zero(cfg.BurstOff) {
		cfg.BurstOff = 600
	}
	if cfg.Transactions == 0 {
		cfg.Transactions = 100_000
	}
	if cfg.Replications == 0 {
		cfg.Replications = 3
	}
	return cfg
}

// BurstPoint is one (spec, factor) cell.
type BurstPoint struct {
	Factor             float64
	FalseAlarmsPer100k float64
	LossFraction       float64
}

// BurstSeries is the factor sweep for one detector configuration.
type BurstSeries struct {
	Spec   Spec
	Points []BurstPoint
}

// RunBurstSweep executes the burst-tolerance experiment.
func RunBurstSweep(cfg BurstSweepConfig) ([]BurstSeries, error) {
	cfg = cfg.defaulted()
	out := make([]BurstSeries, 0, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		series := BurstSeries{Spec: spec, Points: make([]BurstPoint, 0, len(cfg.Factors))}
		for fi, factor := range cfg.Factors {
			var done, lost, rejuv int64
			for rep := 0; rep < cfg.Replications; rep++ {
				det, err := spec.NewDetector()
				if err != nil {
					return nil, fmt.Errorf("experiment: burst sweep %s: %w", spec.Label(), err)
				}
				mcfg := ecommerce.Config{
					ArrivalRate:  cfg.BaseLoad * 0.2,
					DisableGC:    true, // no aging: all triggers are false alarms
					Transactions: cfg.Transactions,
					Seed:         cfg.Seed,
					Stream:       uint64(fi)*1_000 + uint64(rep) + 1,
				}
				if factor > 1 {
					mcfg.BurstFactor = factor
					mcfg.BurstOn = cfg.BurstOn
					mcfg.BurstOff = cfg.BurstOff
				}
				m, err := ecommerce.New(mcfg, det)
				if err != nil {
					return nil, err
				}
				res, err := m.Run()
				if err != nil {
					return nil, err
				}
				done += res.Completed + res.Lost
				lost += res.Lost
				rejuv += res.Rejuvenations
			}
			p := BurstPoint{Factor: factor}
			if done > 0 {
				p.FalseAlarmsPer100k = float64(rejuv) * 100_000 / float64(done)
				p.LossFraction = float64(lost) / float64(done)
			}
			series.Points = append(series.Points, p)
		}
		out = append(out, series)
	}
	return out, nil
}
