package experiment

import "testing"

func TestClusterSweepShape(t *testing.T) {
	series, err := RunClusterSweep(ClusterSweepConfig{
		Hosts:        []int{1, 2},
		Loads:        []float64{2, 8},
		Transactions: 5_000,
		Replications: 1,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series, want 2", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("hosts=%d: %d points, want 2", s.Hosts, len(s.Points))
		}
		for _, p := range s.Points {
			if p.AvgRT <= 0 {
				t.Fatalf("hosts=%d load=%v: avg RT %v", s.Hosts, p.Load, p.AvgRT)
			}
			if p.LossFraction < 0 || p.LossFraction > 1 {
				t.Fatalf("hosts=%d load=%v: loss %v", s.Hosts, p.Load, p.LossFraction)
			}
		}
		// Response time must not improve as per-host load rises.
		if s.Points[1].AvgRT < s.Points[0].AvgRT {
			t.Fatalf("hosts=%d: RT fell with load: %v -> %v",
				s.Hosts, s.Points[0].AvgRT, s.Points[1].AvgRT)
		}
	}
}

func TestClusterSweepDefaults(t *testing.T) {
	cfg := ClusterSweepConfig{}.defaulted()
	if len(cfg.Hosts) == 0 || cfg.Spec.Algorithm != SRAA ||
		cfg.RejuvenationPause != 30 || cfg.Replications == 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
}

func TestBurstSweepDiscriminates(t *testing.T) {
	series, err := RunBurstSweep(BurstSweepConfig{
		Factors:      []float64{1, 3.5},
		Transactions: 30_000,
		Replications: 1,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series, want 2", len(series))
	}
	var multi, single BurstSeries
	for _, s := range series {
		if s.Spec.K > 1 {
			multi = s
		} else {
			single = s
		}
	}
	if multi.Spec.Algorithm == "" || single.Spec.Algorithm == "" {
		t.Fatal("default spec pair missing a multi- or single-bucket config")
	}
	// At factor 1 (no bursts, no aging) nobody should false-alarm much;
	// at factor 3.5 the single-bucket config must false-alarm far more
	// than the multi-bucket one.
	if multi.Points[1].FalseAlarmsPer100k*10 > single.Points[1].FalseAlarmsPer100k {
		t.Fatalf("multi %v vs single %v false alarms at factor 3.5",
			multi.Points[1].FalseAlarmsPer100k, single.Points[1].FalseAlarmsPer100k)
	}
	if multi.Points[0].FalseAlarmsPer100k != 0 {
		t.Fatalf("multi-bucket false-alarmed with no bursts: %v", multi.Points[0].FalseAlarmsPer100k)
	}
}

func TestBurstSweepPropagatesErrors(t *testing.T) {
	_, err := RunBurstSweep(BurstSweepConfig{
		Specs:        []Spec{{Algorithm: "bogus"}},
		Factors:      []float64{1},
		Transactions: 1_000,
		Replications: 1,
	})
	if err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestClusterSweepPropagatesErrors(t *testing.T) {
	_, err := RunClusterSweep(ClusterSweepConfig{
		Hosts:        []int{1},
		Loads:        []float64{1},
		Spec:         Spec{Algorithm: "bogus"},
		Transactions: 1_000,
		Replications: 1,
	})
	if err == nil {
		t.Fatal("bogus spec accepted")
	}
}
