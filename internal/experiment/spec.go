// Package experiment defines and runs the paper's evaluation: load
// sweeps of the e-commerce model under each rejuvenation algorithm, with
// the replication scheme of Section 5 (five replications of 100,000
// transactions per point), and renders the results as tables, CSV, and
// charts.
package experiment

import (
	"fmt"

	"rejuv/internal/core"
)

// Algorithm identifies a detector family.
type Algorithm string

// Detector families available to sweeps. None is the implicit
// no-rejuvenation baseline; Shewhart, EWMA and CUSUM are the classical
// comparators used in ablation experiments.
const (
	None     Algorithm = "none"
	SRAA     Algorithm = "SRAA"
	SARAA    Algorithm = "SARAA"
	CLTA     Algorithm = "CLTA"
	Shewhart Algorithm = "Shewhart"
	EWMA     Algorithm = "EWMA"
	CUSUM    Algorithm = "CUSUM"
)

// Spec is a fully parameterized detector configuration for a sweep
// series. The (N, K, D) triple follows the paper's notation: sample
// size, number of buckets, bucket depth.
type Spec struct {
	Algorithm Algorithm
	N         int     // sample size (n, or n_orig for SARAA)
	K         int     // number of buckets
	D         int     // bucket depth
	Quantile  float64 // CLTA: normal quantile; Shewhart/EWMA: limit; CUSUM: threshold
	Weight    float64 // EWMA smoothing weight; CUSUM slack
	Baseline  core.Baseline
	// Shift, when non-nil, wraps the detector in the workload-shift
	// rebaselining layer (core.Rebase) with this change-point
	// configuration: workload shifts re-anchor the baseline, software
	// aging still triggers. It serializes with the spec, so journals of
	// shift-aware runs replay through the same wrapper.
	Shift *core.ShiftConfig `json:",omitempty"`
}

// PaperBaseline is the SLA constant of every simulation experiment in
// the paper: mean and standard deviation both 5 seconds.
var PaperBaseline = core.Baseline{Mean: 5, StdDev: 5}

// Label returns the figure-legend label for the spec, matching the
// paper's "(n=2, K=5, D=3)" style. Shift-aware specs carry a "+shift"
// suffix.
func (s Spec) Label() string {
	if s.Shift != nil && s.Algorithm != None {
		return s.withoutShift().Label() + " +shift"
	}
	switch s.Algorithm {
	case None:
		return "no rejuvenation"
	case CLTA:
		return fmt.Sprintf("CLTA (n=%d, N=%.4g)", s.N, s.Quantile)
	case Shewhart:
		return fmt.Sprintf("Shewhart (L=%.4g)", s.Quantile)
	case EWMA:
		return fmt.Sprintf("EWMA (w=%.4g, L=%.4g)", s.Weight, s.Quantile)
	case CUSUM:
		return fmt.Sprintf("CUSUM (k=%.4g, h=%.4g)", s.Weight, s.Quantile)
	default:
		return fmt.Sprintf("%s (n=%d, K=%d, D=%d)", s.Algorithm, s.N, s.K, s.D)
	}
}

// withoutShift returns the spec with the shift layer stripped.
func (s Spec) withoutShift() Spec {
	s.Shift = nil
	return s
}

// NewDetector builds the configured detector, or nil for the
// no-rejuvenation baseline. Specs with a Shift layer build the bare
// detector wrapped in core.Rebase: committed rebaselines rebuild it at
// the re-estimated baseline.
func (s Spec) NewDetector() (core.Detector, error) {
	base := s.Baseline
	if base == (core.Baseline{}) {
		base = PaperBaseline
	}
	if s.Shift != nil && s.Algorithm != None {
		inner := s.withoutShift()
		return core.NewRebase(*s.Shift, base, func(b core.Baseline) (core.Detector, error) {
			inner.Baseline = b
			return inner.NewDetector()
		})
	}
	switch s.Algorithm {
	case None:
		return nil, nil
	case SRAA:
		return core.NewSRAA(core.SRAAConfig{
			SampleSize: s.N, Buckets: s.K, Depth: s.D, Baseline: base,
		})
	case SARAA:
		return core.NewSARAA(core.SARAAConfig{
			InitialSampleSize: s.N, Buckets: s.K, Depth: s.D, Baseline: base,
		})
	case CLTA:
		return core.NewCLTA(core.CLTAConfig{
			SampleSize: s.N, Quantile: s.Quantile, Baseline: base,
		})
	case Shewhart:
		return core.NewShewhart(s.Quantile, base)
	case EWMA:
		return core.NewEWMA(s.Weight, s.Quantile, base)
	case CUSUM:
		return core.NewCUSUM(s.Weight, s.Quantile, base)
	default:
		return nil, fmt.Errorf("experiment: unknown algorithm %q", s.Algorithm)
	}
}

// sraaSpec abbreviates an SRAA spec with the paper baseline.
func sraaSpec(n, k, d int) Spec {
	return Spec{Algorithm: SRAA, N: n, K: k, D: d}
}

// saraaSpec abbreviates a SARAA spec with the paper baseline.
func saraaSpec(n, k, d int) Spec {
	return Spec{Algorithm: SARAA, N: n, K: k, D: d}
}
