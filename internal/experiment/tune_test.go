package experiment

import (
	"math"
	"testing"
)

func TestTuneCandidatesBudget(t *testing.T) {
	cfg := TuneConfig{Budget: 12}
	specs := cfg.Candidates()
	// 12 = 2^2*3 has 6 divisors; ordered triples with product 12: 18.
	if len(specs) != 18 {
		t.Fatalf("%d candidates for budget 12, want 18", len(specs))
	}
	seen := make(map[[3]int]bool)
	for _, s := range specs {
		if s.N*s.K*s.D != 12 {
			t.Fatalf("candidate %s breaks the budget", s.Label())
		}
		key := [3]int{s.N, s.K, s.D}
		if seen[key] {
			t.Fatalf("duplicate candidate %v", key)
		}
		seen[key] = true
	}
}

func TestTuneCandidatesBudget30MatchesPaperSpace(t *testing.T) {
	// The paper's Figs. 11-15 explore n*K*D = 30; every configuration
	// it quotes must appear in the candidate set.
	specs := TuneConfig{Budget: 30}.Candidates()
	want := [][3]int{{2, 5, 3}, {30, 1, 1}, {6, 5, 1}, {10, 3, 1}, {3, 2, 5}, {5, 2, 3}, {15, 2, 1}, {1, 5, 6}}
	for _, w := range want {
		found := false
		for _, s := range specs {
			if s.N == w[0] && s.K == w[1] && s.D == w[2] {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("paper configuration %v missing from candidates", w)
		}
	}
}

func TestTuneCandidatesBox(t *testing.T) {
	specs := TuneConfig{MaxN: 2, MaxK: 3, MaxD: 4}.Candidates()
	if len(specs) != 2*3*4 {
		t.Fatalf("%d candidates for a 2x3x4 box, want 24", len(specs))
	}
}

func TestTuneRanksByCost(t *testing.T) {
	results, err := Tune(TuneConfig{
		Budget:       4, // tiny space: 4 = (1,1,4),(1,2,2),(1,4,1),(2,1,2),(2,2,1),(4,1,1)
		Replications: 1,
		Transactions: 8_000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results for budget 4, want 6", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Cost < results[i-1].Cost {
			t.Fatalf("results not sorted by cost: %v after %v", results[i].Cost, results[i-1].Cost)
		}
	}
	for _, r := range results {
		if math.IsNaN(r.Cost) || r.HighRT <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
		if want := 1*r.HighRT + 100*r.LowLoss; math.Abs(r.Cost-want) > 1e-12 {
			t.Fatalf("cost %v != weighted sum %v", r.Cost, want)
		}
	}
}

func TestTuneLossWeightChangesWinner(t *testing.T) {
	// With loss priced astronomically, a zero-low-load-loss
	// configuration must win; with loss free, the best-RT one must.
	run := func(lossWeight float64) TuneResult {
		results, err := Tune(TuneConfig{
			Budget:       15,
			LossWeight:   lossWeight,
			Replications: 1,
			Transactions: 20_000,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return results[0]
	}
	lossAverse := run(1e9)
	if lossAverse.LowLoss != 0 {
		t.Fatalf("loss-averse winner %s still loses %v at low load",
			lossAverse.Spec.Label(), lossAverse.LowLoss)
	}
	rtOnly := run(1e-9)
	if rtOnly.HighRT > lossAverse.HighRT {
		t.Fatalf("RT-only winner %s (RT %v) is slower than the loss-averse one (%v)",
			rtOnly.Spec.Label(), rtOnly.HighRT, lossAverse.HighRT)
	}
}

func TestTuneSARAA(t *testing.T) {
	results, err := Tune(TuneConfig{
		Algorithm:    SARAA,
		Budget:       6,
		Replications: 1,
		Transactions: 8_000,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Spec.Algorithm != SARAA {
			t.Fatalf("candidate %s is not SARAA", r.Spec.Label())
		}
	}
}

func TestTunePropagatesErrors(t *testing.T) {
	if _, err := Tune(TuneConfig{Algorithm: "bogus", Budget: 2, Replications: 1, Transactions: 1000}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}
