package experiment

import "fmt"

// Quote is one value the paper's text quotes explicitly, pinned to the
// configuration, load point, and metric it refers to. The quotes drive
// the automated paper-vs-measured table of cmd/quotes and the record in
// EXPERIMENTS.md.
type Quote struct {
	// Source cites where in the paper the value appears.
	Source string
	// Spec and Load identify the simulation cell.
	Spec Spec
	Load float64
	// Metric selects RT or loss.
	Metric Metric
	// Paper is the value the paper reports.
	Paper float64
}

// Label renders a short identifier for tables.
func (q Quote) Label() string {
	unit := "RT"
	if q.Metric == MetricLoss {
		unit = "loss"
	}
	return fmt.Sprintf("%s %s@%g", q.Spec.Label(), unit, q.Load)
}

// PaperQuotes returns every simulation value the paper's Section 5 text
// quotes numerically.
func PaperQuotes() []Quote {
	clta := Spec{Algorithm: CLTA, N: 30, K: 1, D: 1, Quantile: 1.96}
	return []Quote{
		// Section 5.2 (sample size doubling).
		{Source: "§5.2", Spec: sraaSpec(15, 1, 1), Load: 9, Metric: MetricRT, Paper: 6.2},
		{Source: "§5.2", Spec: sraaSpec(30, 1, 1), Load: 9, Metric: MetricRT, Paper: 9.9},
		{Source: "§5.2", Spec: sraaSpec(3, 5, 1), Load: 9, Metric: MetricRT, Paper: 10.45},
		{Source: "§5.2", Spec: sraaSpec(6, 5, 1), Load: 9, Metric: MetricRT, Paper: 14.3},
		// Section 5.4 (number of buckets doubling).
		{Source: "§5.4", Spec: sraaSpec(15, 2, 1), Load: 9, Metric: MetricRT, Paper: 11.05},
		{Source: "§5.4", Spec: sraaSpec(3, 10, 1), Load: 9, Metric: MetricRT, Paper: 14.9},
		{Source: "§5.4", Spec: sraaSpec(3, 2, 5), Load: 9, Metric: MetricRT, Paper: 10.3},
		{Source: "§5.4", Spec: sraaSpec(3, 2, 5), Load: 0.5, Metric: MetricLoss, Paper: 0.000026},
		{Source: "§5.4", Spec: sraaSpec(5, 2, 3), Load: 9, Metric: MetricRT, Paper: 10.4},
		{Source: "§5.4", Spec: sraaSpec(5, 2, 3), Load: 0.5, Metric: MetricLoss, Paper: 0.0003},
		// Section 5.5 (SARAA vs SRAA).
		{Source: "§5.5", Spec: sraaSpec(2, 5, 3), Load: 9, Metric: MetricRT, Paper: 11.94},
		{Source: "§5.5", Spec: saraaSpec(2, 5, 3), Load: 9, Metric: MetricRT, Paper: 10.5},
		{Source: "§5.5", Spec: sraaSpec(2, 3, 5), Load: 9, Metric: MetricRT, Paper: 11.05},
		{Source: "§5.5", Spec: saraaSpec(2, 3, 5), Load: 9, Metric: MetricRT, Paper: 9.8},
		{Source: "§5.5", Spec: saraaSpec(6, 5, 1), Load: 9, Metric: MetricRT, Paper: 11},
		// Section 5.6 (algorithm comparison).
		{Source: "§5.6", Spec: clta, Load: 9, Metric: MetricRT, Paper: 12.8},
		{Source: "§5.6", Spec: clta, Load: 0.5, Metric: MetricLoss, Paper: 0.001406},
	}
}

// QuoteResult pairs a quote with its measured value.
type QuoteResult struct {
	Quote    Quote
	Measured float64
}

// EvaluateQuotes measures every quote under the sweep fidelity
// settings (Loads is ignored; each quote supplies its own point).
// Identical (spec, load) cells are evaluated once.
func EvaluateQuotes(cfg SweepConfig, quotes []Quote) ([]QuoteResult, error) {
	type cell struct {
		label string
		load  float64
	}
	cache := make(map[cell]Point)
	out := make([]QuoteResult, 0, len(quotes))
	for _, q := range quotes {
		key := cell{label: q.Spec.Label(), load: q.Load}
		p, ok := cache[key]
		if !ok {
			cellCfg := cfg
			cellCfg.Loads = []float64{q.Load}
			series, err := RunSweep(cellCfg, q.Spec)
			if err != nil {
				return nil, fmt.Errorf("experiment: quote %s: %w", q.Label(), err)
			}
			p = series.Points[0]
			cache[key] = p
		}
		out = append(out, QuoteResult{Quote: q, Measured: q.Metric.Value(p)})
	}
	return out, nil
}
