package experiment

import (
	"strings"
	"testing"
)

func TestPaperQuotesWellFormed(t *testing.T) {
	quotes := PaperQuotes()
	if len(quotes) < 15 {
		t.Fatalf("only %d quotes; the paper's Section 5 quotes more", len(quotes))
	}
	for _, q := range quotes {
		if q.Paper <= 0 {
			t.Errorf("%s: non-positive paper value %v", q.Label(), q.Paper)
		}
		if q.Load != 0.5 && q.Load != 9 {
			t.Errorf("%s: load %v is not one of the paper's assessment points", q.Label(), q.Load)
		}
		if q.Source == "" {
			t.Errorf("%s: missing source section", q.Label())
		}
		if _, err := q.Spec.NewDetector(); err != nil {
			t.Errorf("%s: spec does not build: %v", q.Label(), err)
		}
		// n*K*D is 15 or 30 for every bucketed quote, as in the paper.
		if q.Spec.Algorithm == SRAA || q.Spec.Algorithm == SARAA {
			if p := q.Spec.N * q.Spec.K * q.Spec.D; p != 15 && p != 30 {
				t.Errorf("%s: n*K*D = %d", q.Label(), p)
			}
		}
	}
}

func TestQuoteLabelDistinguishesMetric(t *testing.T) {
	rt := Quote{Spec: sraaSpec(3, 2, 5), Load: 9, Metric: MetricRT}
	loss := Quote{Spec: sraaSpec(3, 2, 5), Load: 0.5, Metric: MetricLoss}
	if rt.Label() == loss.Label() {
		t.Fatal("RT and loss quotes share a label")
	}
	if !strings.Contains(loss.Label(), "loss") {
		t.Fatalf("loss label %q does not say so", loss.Label())
	}
}

func TestEvaluateQuotesCachesCells(t *testing.T) {
	// Two quotes on the same (spec, load) cell must evaluate it once
	// and therefore agree exactly.
	q := Quote{Spec: sraaSpec(2, 5, 3), Load: 9, Metric: MetricRT, Paper: 1}
	cfg := SweepConfig{Replications: 1, Transactions: 4_000, Seed: 1}
	results, err := EvaluateQuotes(cfg, []Quote{q, q})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Measured != results[1].Measured {
		t.Fatalf("identical cells measured differently: %v vs %v",
			results[0].Measured, results[1].Measured)
	}
	if results[0].Measured <= 0 {
		t.Fatalf("degenerate measurement %v", results[0].Measured)
	}
}

func TestEvaluateQuotesOrderingPreserved(t *testing.T) {
	quotes := []Quote{
		{Spec: sraaSpec(15, 1, 1), Load: 9, Metric: MetricRT, Paper: 6.2},
		{Spec: sraaSpec(2, 5, 3), Load: 9, Metric: MetricRT, Paper: 11.94},
	}
	cfg := SweepConfig{Replications: 1, Transactions: 8_000, Seed: 1}
	results, err := EvaluateQuotes(cfg, quotes)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if results[0].Quote.Spec.N != 15 || results[1].Quote.Spec.N != 2 {
		t.Fatal("result order does not match input order")
	}
	// The paper's qualitative ordering must hold even at low fidelity:
	// the aggressive single-bucket config beats (2,5,3) on RT.
	if results[0].Measured >= results[1].Measured {
		t.Fatalf("(15,1,1) RT %v not below (2,5,3) RT %v",
			results[0].Measured, results[1].Measured)
	}
}

func TestEvaluateQuotesPropagatesErrors(t *testing.T) {
	bad := Quote{Spec: Spec{Algorithm: "bogus"}, Load: 9, Metric: MetricRT}
	if _, err := EvaluateQuotes(SweepConfig{Replications: 1, Transactions: 1000}, []Quote{bad}); err == nil {
		t.Fatal("bogus quote accepted")
	}
}
