package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits the figure as CSV: one row per load, one column per
// series, matching how the paper's charts are tabulated.
func (fr FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"offered_load_cpus"}
	for _, s := range fr.Series {
		header = append(header, s.Spec.Label())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write CSV header: %w", err)
	}
	if len(fr.Series) == 0 {
		cw.Flush()
		return cw.Error()
	}
	for i, p := range fr.Series[0].Points {
		row := []string{strconv.FormatFloat(p.Load, 'g', -1, 64)}
		for _, s := range fr.Series {
			row = append(row, strconv.FormatFloat(fr.Figure.Metric.Value(s.Points[i]), 'g', 8, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: write CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteDetailedCSV emits the figure in long format — one row per
// (series, load) cell with every aggregate — for post-processing that
// needs more than the plotted metric:
//
//	series,load_cpus,avg_rt,rt_stddev,avg_rt_stderr,loss_fraction,rejuvenations,gcs,replications
func (fr FigureResult) WriteDetailedCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"series", "load_cpus", "avg_rt", "rt_stddev", "avg_rt_stderr",
		"loss_fraction", "rejuvenations", "gcs", "replications"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: write detailed CSV header: %w", err)
	}
	fmtF := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for _, s := range fr.Series {
		for _, p := range s.Points {
			row := []string{
				s.Spec.Label(),
				strconv.FormatFloat(p.Load, 'g', -1, 64),
				fmtF(p.AvgRT), fmtF(p.RTStdDev), fmtF(p.AvgRTStdErr),
				fmtF(p.LossFraction), fmtF(p.Rejuvenations), fmtF(p.GCs),
				strconv.Itoa(p.Replications),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("experiment: write detailed CSV row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Table renders the figure as an aligned text table.
func (fr FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s\n", fr.Figure.Number, fr.Figure.Title)
	fmt.Fprintf(&b, "y-axis: %s\n\n", fr.Figure.Metric.AxisLabel())

	cols := make([][]string, 0, len(fr.Series)+1)
	loadCol := []string{"load (CPUs)"}
	if len(fr.Series) > 0 {
		for _, p := range fr.Series[0].Points {
			loadCol = append(loadCol, fmt.Sprintf("%.1f", p.Load))
		}
	}
	cols = append(cols, loadCol)
	for _, s := range fr.Series {
		col := []string{s.Spec.Label()}
		for _, p := range s.Points {
			col = append(col, formatMetric(fr.Figure.Metric, fr.Figure.Metric.Value(p)))
		}
		cols = append(cols, col)
	}
	writeColumns(&b, cols)
	return b.String()
}

func formatMetric(m Metric, v float64) string {
	if m == MetricLoss {
		return fmt.Sprintf("%.6f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// writeColumns renders equal-height columns right-aligned with two
// spaces of separation.
func writeColumns(b *strings.Builder, cols [][]string) {
	widths := make([]int, len(cols))
	for j, col := range cols {
		for _, cell := range col {
			if len(cell) > widths[j] {
				widths[j] = len(cell)
			}
		}
	}
	rows := 0
	for _, col := range cols {
		if len(col) > rows {
			rows = len(col)
		}
	}
	for i := 0; i < rows; i++ {
		for j, col := range cols {
			cell := ""
			if i < len(col) {
				cell = col[i]
			}
			if j > 0 {
				b.WriteString("  ")
			}
			for pad := widths[j] - len(cell); pad > 0; pad-- {
				b.WriteByte(' ')
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
}

// SummaryAt returns the metric of every series at the load point nearest
// to the requested load, for the paper's quoted point comparisons (e.g.
// "at 9.0 CPUs").
func (fr FigureResult) SummaryAt(load float64) map[string]float64 {
	out := make(map[string]float64, len(fr.Series))
	for _, s := range fr.Series {
		best, bestDist := 0, -1.0
		for i, p := range s.Points {
			d := abs(p.Load - load)
			if bestDist < 0 || d < bestDist {
				best, bestDist = i, d
			}
		}
		if len(s.Points) > 0 {
			out[s.Spec.Label()] = fr.Figure.Metric.Value(s.Points[best])
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
