package experiment

import "fmt"

// Metric selects which aggregate a figure plots.
type Metric string

// Metrics used by the paper's figures.
const (
	MetricRT   Metric = "rt"   // average response time (seconds)
	MetricLoss Metric = "loss" // average fraction of transaction loss
)

// Value extracts the metric from a point.
func (m Metric) Value(p Point) float64 {
	if m == MetricLoss {
		return p.LossFraction
	}
	return p.AvgRT
}

// AxisLabel returns the paper's y-axis label for the metric.
func (m Metric) AxisLabel() string {
	if m == MetricLoss {
		return "Average Fraction of Transaction Loss"
	}
	return "Average Response Time"
}

// Figure is one of the paper's simulation figures: a set of specs swept
// over the load axis and plotted as one metric.
type Figure struct {
	ID     string // e.g. "fig09"
	Number int    // paper figure number
	Title  string
	Metric Metric
	Specs  []Spec
}

// PaperFigures returns the definitions of every simulation figure in the
// paper's evaluation (Figs. 9–16). Fig. 5 is analytical and produced by
// the mmc package; Figs. 1–4 are structural diagrams.
func PaperFigures() []Figure {
	fig9Specs := []Spec{
		sraaSpec(1, 3, 5), sraaSpec(1, 5, 3), sraaSpec(3, 1, 5),
		sraaSpec(3, 5, 1), sraaSpec(5, 1, 3), sraaSpec(5, 3, 1),
		sraaSpec(15, 1, 1),
	}
	fig12Specs := []Spec{
		sraaSpec(1, 3, 10), sraaSpec(1, 5, 6), sraaSpec(3, 1, 10),
		sraaSpec(3, 5, 2), sraaSpec(5, 1, 6), sraaSpec(5, 3, 2),
		sraaSpec(15, 1, 2),
	}
	return []Figure{
		{
			ID: "fig09", Number: 9,
			Title:  "Response time, SRAA, n*K*D = 15",
			Metric: MetricRT,
			Specs:  fig9Specs,
		},
		{
			ID: "fig10", Number: 10,
			Title:  "Fraction of transaction loss, SRAA, n*K*D = 15",
			Metric: MetricLoss,
			Specs:  fig9Specs,
		},
		{
			ID: "fig11", Number: 11,
			Title:  "Response time, SRAA, n*K*D = 30, sample size doubled",
			Metric: MetricRT,
			Specs: []Spec{
				sraaSpec(2, 3, 5), sraaSpec(2, 5, 3), sraaSpec(6, 1, 5),
				sraaSpec(6, 5, 1), sraaSpec(10, 1, 3), sraaSpec(10, 3, 1),
				sraaSpec(30, 1, 1),
			},
		},
		{
			ID: "fig12", Number: 12,
			Title:  "Response time, SRAA, n*K*D = 30, bucket depth doubled",
			Metric: MetricRT,
			Specs:  fig12Specs,
		},
		{
			ID: "fig13", Number: 13,
			Title:  "Fraction of transaction loss, SRAA, n*K*D = 30, bucket depth doubled",
			Metric: MetricLoss,
			Specs:  fig12Specs,
		},
		{
			ID: "fig14", Number: 14,
			Title:  "Response time, SRAA, n*K*D = 30, number of buckets doubled",
			Metric: MetricRT,
			Specs: []Spec{
				sraaSpec(1, 6, 5), sraaSpec(1, 10, 3), sraaSpec(3, 2, 5),
				sraaSpec(3, 10, 1), sraaSpec(5, 6, 1), sraaSpec(15, 2, 1),
				sraaSpec(15, 1, 2),
			},
		},
		{
			ID: "fig15", Number: 15,
			Title:  "Response time, SARAA, n*K*D = 30",
			Metric: MetricRT,
			Specs: []Spec{
				saraaSpec(2, 3, 5), saraaSpec(2, 5, 3),
				saraaSpec(6, 5, 1), saraaSpec(10, 3, 1),
			},
		},
		{
			ID: "fig16", Number: 16,
			Title:  "Response time, SRAA vs SARAA vs CLTA, n*K*D = 30",
			Metric: MetricRT,
			Specs: []Spec{
				{Algorithm: CLTA, N: 30, K: 1, D: 1, Quantile: 1.96},
				sraaSpec(2, 5, 3),
				saraaSpec(2, 5, 3),
			},
		},
	}
}

// FigureByID returns the paper figure with the given ID or number
// ("fig09", "9", "09" all match figure 9).
func FigureByID(id string) (Figure, error) {
	for _, f := range PaperFigures() {
		if f.ID == id || fmt.Sprintf("%d", f.Number) == id || fmt.Sprintf("%02d", f.Number) == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q", id)
}

// FigureResult is a fully computed figure.
type FigureResult struct {
	Figure Figure
	Series []Series
}

// RunFigure computes every series of the figure under the sweep
// configuration.
func RunFigure(cfg SweepConfig, fig Figure) (FigureResult, error) {
	out := FigureResult{Figure: fig, Series: make([]Series, 0, len(fig.Specs))}
	for _, spec := range fig.Specs {
		s, err := RunSweep(cfg, spec)
		if err != nil {
			return FigureResult{}, fmt.Errorf("experiment: figure %s, series %s: %w", fig.ID, spec.Label(), err)
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}
