package dist

import (
	"math"
	"testing"

	"rejuv/internal/xrand"
)

// checkMoments samples the distribution and compares empirical moments
// with the analytical ones.
func checkMoments(t *testing.T, d Dist, n int, tol float64) {
	t.Helper()
	r := xrand.New(77)
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if want := d.Mean(); math.Abs(mean-want) > tol*math.Max(1, want) {
		t.Errorf("sampled mean %v, analytical %v", mean, want)
	}
	if want := d.Var(); want > 0 && math.Abs(variance-want) > 3*tol*math.Max(1, want) {
		t.Errorf("sampled variance %v, analytical %v", variance, want)
	}
}

// checkPDFIsCDFDerivative compares the density with a central difference
// of the CDF at several points.
func checkPDFIsCDFDerivative(t *testing.T, d Dist, points []float64) {
	t.Helper()
	const h = 1e-6
	for _, x := range points {
		num := (d.CDF(x+h) - d.CDF(x-h)) / (2 * h)
		if math.Abs(num-d.PDF(x)) > 1e-4*math.Max(1, d.PDF(x)) {
			t.Errorf("at x=%v: numeric derivative %v, pdf %v", x, num, d.PDF(x))
		}
	}
}

// checkCDFShape verifies the CDF is 0 at the origin-side, monotone, and
// approaches 1.
func checkCDFShape(t *testing.T, d Dist, far float64) {
	t.Helper()
	if got := d.CDF(-1); got != 0 {
		t.Errorf("CDF(-1) = %v, want 0", got)
	}
	prev := 0.0
	for x := 0.0; x <= far; x += far / 200 {
		c := d.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreasing at %v: %v < %v", x, c, prev)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF(%v) = %v outside [0,1]", x, c)
		}
		prev = c
	}
	if tail := 1 - d.CDF(far); tail > 0.01 {
		t.Errorf("CDF(%v) leaves %v mass unexplored", far, tail)
	}
}

func TestExponential(t *testing.T) {
	e, err := NewExponential(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 5 || math.Abs(e.Var()-25) > 1e-12 {
		t.Fatalf("mean=%v var=%v, want 5 and 25", e.Mean(), e.Var())
	}
	if got := e.CDF(5); math.Abs(got-(1-math.Exp(-1))) > 1e-15 {
		t.Fatalf("CDF(mean) = %v, want 1-1/e", got)
	}
	checkMoments(t, e, 300_000, 0.01)
	checkPDFIsCDFDerivative(t, e, []float64{0.1, 1, 5, 20})
	checkCDFShape(t, e, 40)
}

func TestExponentialQuantileRoundTrip(t *testing.T) {
	e := Exponential{Rate: 0.7}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		if got := e.CDF(e.Quantile(p)); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestExponentialValidation(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(rate); err == nil {
			t.Errorf("NewExponential(%v) accepted", rate)
		}
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3}
	if d.Mean() != 3 || d.Var() != 0 {
		t.Fatalf("mean=%v var=%v", d.Mean(), d.Var())
	}
	if d.CDF(2.999) != 0 || d.CDF(3) != 1 {
		t.Fatal("CDF is not the step function at the value")
	}
	if d.Sample(xrand.New(1)) != 3 {
		t.Fatal("sample is not the constant")
	}
}

func TestErlang(t *testing.T) {
	e, err := NewErlang(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 2 || e.Var() != 1 {
		t.Fatalf("mean=%v var=%v, want 2 and 1", e.Mean(), e.Var())
	}
	checkMoments(t, e, 300_000, 0.01)
	checkPDFIsCDFDerivative(t, e, []float64{0.5, 1, 2, 4})
	checkCDFShape(t, e, 12)
}

func TestErlangShapeOneIsExponential(t *testing.T) {
	er, _ := NewErlang(1, 0.5)
	ex := Exponential{Rate: 0.5}
	for _, x := range []float64{0, 0.5, 2, 10} {
		if math.Abs(er.PDF(x)-ex.PDF(x)) > 1e-12 {
			t.Errorf("PDF differs at %v: %v vs %v", x, er.PDF(x), ex.PDF(x))
		}
		if math.Abs(er.CDF(x)-ex.CDF(x)) > 1e-12 {
			t.Errorf("CDF differs at %v: %v vs %v", x, er.CDF(x), ex.CDF(x))
		}
	}
}

func TestErlangValidation(t *testing.T) {
	if _, err := NewErlang(0, 1); err == nil {
		t.Error("shape 0 accepted")
	}
	if _, err := NewErlang(2, 0); err == nil {
		t.Error("rate 0 accepted")
	}
}

func TestHypoExpTwoStage(t *testing.T) {
	// The paper's conditional response time branch: rates mu and c*mu-lambda.
	h, err := NewHypoExp(0.2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1/0.2 + 1/1.6; math.Abs(h.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
	if want := 1/(0.2*0.2) + 1/(1.6*1.6); math.Abs(h.Var()-want) > 1e-12 {
		t.Fatalf("var = %v, want %v", h.Var(), want)
	}
	checkMoments(t, h, 300_000, 0.01)
	checkPDFIsCDFDerivative(t, h, []float64{0.5, 2, 5, 15})
	checkCDFShape(t, h, 60)
}

func TestHypoExpEqualRatesIsErlang(t *testing.T) {
	h, _ := NewHypoExp(2, 2, 2)
	e, _ := NewErlang(3, 2)
	for _, x := range []float64{0, 0.3, 1, 3} {
		if math.Abs(h.PDF(x)-e.PDF(x)) > 1e-12 {
			t.Errorf("PDF differs at %v", x)
		}
		if math.Abs(h.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("CDF differs at %v", x)
		}
	}
}

func TestHypoExpSingleStageIsExponential(t *testing.T) {
	h, _ := NewHypoExp(1.5)
	e := Exponential{Rate: 1.5}
	for _, x := range []float64{0.1, 1, 4} {
		if math.Abs(h.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("CDF differs at %v: %v vs %v", x, h.CDF(x), e.CDF(x))
		}
	}
}

func TestHypoExpValidation(t *testing.T) {
	if _, err := NewHypoExp(); err == nil {
		t.Error("empty stage list accepted")
	}
	if _, err := NewHypoExp(1, -1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestHyperExp(t *testing.T) {
	h, err := NewHyperExp([]float64{0.3, 0.7}, []float64{1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 0.3/1 + 0.7/0.1
	if math.Abs(h.Mean()-wantMean) > 1e-12 {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	checkMoments(t, h, 400_000, 0.02)
	checkPDFIsCDFDerivative(t, h, []float64{0.5, 3, 10})
	checkCDFShape(t, h, 80)
}

func TestHyperExpValidation(t *testing.T) {
	if _, err := NewHyperExp([]float64{0.5}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewHyperExp([]float64{0.5, 0.4}, []float64{1, 2}); err == nil {
		t.Error("probabilities not summing to 1 accepted")
	}
	if _, err := NewHyperExp([]float64{1.5, -0.5}, []float64{1, 2}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewHyperExp([]float64{0.5, 0.5}, []float64{1, 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestMixtureMMcResponseTime(t *testing.T) {
	// The paper's eq. (1) structure: Wc*Exp(mu) + (1-Wc)*HypoExp(mu, c*mu-lambda).
	const wc = 0.990981
	hypo, err := NewHypoExp(0.2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMixture([]float64{wc, 1 - wc}, []Dist{Exponential{Rate: 0.2}, hypo})
	if err != nil {
		t.Fatal(err)
	}
	// eq. (2): mean = 1/mu + (1-Wc)/(c*mu-lambda).
	wantMean := 5 + (1-wc)/1.6
	if math.Abs(m.Mean()-wantMean) > 1e-9 {
		t.Fatalf("mixture mean = %v, want %v", m.Mean(), wantMean)
	}
	// eq. (3): var = 1/mu^2 + (1-Wc^2)/(c*mu-lambda)^2.
	wantVar := 25 + (1-wc*wc)/(1.6*1.6)
	if math.Abs(m.Var()-wantVar) > 1e-9 {
		t.Fatalf("mixture variance = %v, want %v", m.Var(), wantVar)
	}
	checkMoments(t, m, 300_000, 0.01)
	checkPDFIsCDFDerivative(t, m, []float64{1, 5, 15})
	checkCDFShape(t, m, 50)
}

func TestMixtureLawOfTotalVariance(t *testing.T) {
	a := Exponential{Rate: 1}
	b := Exponential{Rate: 0.25}
	m, err := NewMixture([]float64{0.5, 0.5}, []Dist{a, b})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.5*1 + 0.5*4
	within := 0.5*1 + 0.5*16
	between := 0.5*1*1 + 0.5*4*4 - mean*mean
	if math.Abs(m.Var()-(within+between)) > 1e-12 {
		t.Fatalf("mixture variance = %v, want %v", m.Var(), within+between)
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture([]float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewMixture([]float64{0.6, 0.6}, []Dist{Exponential{Rate: 1}, Exponential{Rate: 2}}); err == nil {
		t.Error("probabilities summing to 1.2 accepted")
	}
}
