// Package dist defines the continuous probability distributions used by
// the queueing analytics and the simulators: exponential, Erlang,
// hypoexponential, hyperexponential, deterministic, and finite mixtures.
//
// Each distribution exposes moments, density, CDF, and sampling. The
// hypo-/hyperexponential forms are exactly the building blocks of the
// paper's phase-type representation of the M/M/c response time (Fig. 2).
package dist

import (
	"fmt"
	"math"

	"rejuv/internal/xrand"
)

// Dist is a continuous probability distribution on [0, inf).
type Dist interface {
	// Mean returns the expected value.
	Mean() float64
	// Var returns the variance.
	Var() float64
	// PDF returns the density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Sample draws one value using the given generator.
	Sample(r *xrand.Rand) float64
}

// Exponential is the exponential distribution with the given Rate.
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution; it errors on a
// non-positive rate.
func NewExponential(rate float64) (Exponential, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Exponential{}, fmt.Errorf("dist: exponential rate must be positive and finite, got %v", rate)
	}
	return Exponential{Rate: rate}, nil
}

// Mean returns 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Var returns 1/rate^2.
func (e Exponential) Var() float64 { return 1 / (e.Rate * e.Rate) }

// PDF returns the density at x (0 for x < 0).
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF returns 1 - exp(-rate*x) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Sample draws by inversion.
func (e Exponential) Sample(r *xrand.Rand) float64 { return r.Exp(e.Rate) }

// Quantile returns the p-quantile, defined for p in [0, 1).
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("dist: exponential quantile p=%v outside [0,1)", p))
	}
	return -math.Log1p(-p) / e.Rate
}

// Deterministic is the degenerate distribution at Value.
type Deterministic struct {
	Value float64
}

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

// Var returns 0.
func (d Deterministic) Var() float64 { return 0 }

// PDF returns 0 everywhere; the distribution has no density.
func (d Deterministic) PDF(x float64) float64 { return 0 }

// CDF is the step function at Value.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Sample returns the constant value.
func (d Deterministic) Sample(*xrand.Rand) float64 { return d.Value }

var (
	_ Dist = Exponential{}
	_ Dist = Deterministic{}
	_ Dist = Erlang{}
	_ Dist = HypoExp{}
	_ Dist = HyperExp{}
	_ Dist = Mixture{}
)
