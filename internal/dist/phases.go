package dist

import (
	"fmt"
	"math"

	"rejuv/internal/num"
	"rejuv/internal/xrand"
)

// Erlang is the sum of K independent exponentials with common Rate.
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang returns an Erlang distribution; it errors on invalid shape
// or rate.
func NewErlang(k int, rate float64) (Erlang, error) {
	if k <= 0 {
		return Erlang{}, fmt.Errorf("dist: Erlang shape must be positive, got %d", k)
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return Erlang{}, fmt.Errorf("dist: Erlang rate must be positive and finite, got %v", rate)
	}
	return Erlang{K: k, Rate: rate}, nil
}

// Mean returns K/rate.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// Var returns K/rate^2.
func (e Erlang) Var() float64 { return float64(e.K) / (e.Rate * e.Rate) }

// PDF returns the density at x, computed in log space to stay finite for
// large shapes.
func (e Erlang) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if num.Zero(x) {
		if e.K == 1 {
			return e.Rate
		}
		return 0
	}
	k := float64(e.K)
	logp := k*math.Log(e.Rate) + (k-1)*math.Log(x) - e.Rate*x - lgammaInt(e.K)
	return math.Exp(logp)
}

// CDF returns the regularized lower incomplete gamma via the series
// P(X<=x) = 1 - exp(-rx) * sum_{i<K} (rx)^i / i!.
func (e Erlang) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	rx := e.Rate * x
	// Accumulate terms in log space only when necessary; for moderate K
	// direct accumulation is exact enough.
	term := 1.0
	sum := 1.0
	for i := 1; i < e.K; i++ {
		term *= rx / float64(i)
		sum += term
	}
	c := 1 - math.Exp(-rx)*sum
	if c < 0 {
		return 0
	}
	return c
}

// Sample draws as a sum of K exponentials.
func (e Erlang) Sample(r *xrand.Rand) float64 {
	s := 0.0
	for i := 0; i < e.K; i++ {
		s += r.Exp(e.Rate)
	}
	return s
}

// lgammaInt returns log((k-1)!) for k >= 1.
func lgammaInt(k int) float64 {
	lg, _ := math.Lgamma(float64(k))
	return lg
}

// HypoExp is the hypoexponential distribution: the sum of independent
// exponential stages with distinct (or equal) Rates, in series. The
// two-stage case with rates (mu, c*mu-lambda) is the conditional M/M/c
// response time given queueing (paper Fig. 2, lower branch).
type HypoExp struct {
	Rates []float64
}

// NewHypoExp returns a hypoexponential distribution over the given
// stage rates; it errors if no rates are given or any is non-positive.
func NewHypoExp(rates ...float64) (HypoExp, error) {
	if len(rates) == 0 {
		return HypoExp{}, fmt.Errorf("dist: HypoExp needs at least one stage")
	}
	for _, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return HypoExp{}, fmt.Errorf("dist: HypoExp rate must be positive and finite, got %v", r)
		}
	}
	out := HypoExp{Rates: make([]float64, len(rates))}
	copy(out.Rates, rates)
	return out, nil
}

// Mean returns the sum of stage means.
func (h HypoExp) Mean() float64 {
	s := 0.0
	for _, r := range h.Rates {
		s += 1 / r
	}
	return s
}

// Var returns the sum of stage variances.
func (h HypoExp) Var() float64 {
	s := 0.0
	for _, r := range h.Rates {
		s += 1 / (r * r)
	}
	return s
}

// coeffs returns the partial-fraction coefficients a_i such that
// PDF(x) = sum_i a_i r_i exp(-r_i x), valid when all rates are distinct.
func (h HypoExp) coeffs() ([]float64, bool) {
	n := len(h.Rates)
	as := make([]float64, n)
	for i, ri := range h.Rates {
		a := 1.0
		for j, rj := range h.Rates {
			if i == j {
				continue
			}
			d := rj - ri
			if num.Zero(d) {
				return nil, false
			}
			a *= rj / d
		}
		as[i] = a
	}
	return as, true
}

// pdf2 evaluates the two-stage density in a form that stays stable as
// the rates coincide: f(x) = -a*b*exp(-a*x)*expm1(-(b-a)*x)/(b-a), with
// the limit a^2*x*exp(-a*x) at b == a. The naive partial-fraction form
// cancels catastrophically when b-a is tiny — exactly the region around
// lambda = (c-1)*mu in the paper's eq. (1).
func pdf2(a, b, x float64) float64 {
	d := b - a
	if num.Zero(d) {
		return a * a * x * math.Exp(-a*x)
	}
	return -a * b * math.Exp(-a*x) * math.Expm1(-d*x) / d
}

// cdf2 evaluates the two-stage CDF stably:
// S(x) = exp(-a*x) * (1 - a*expm1(-(b-a)*x)/(b-a)), limit (1+a*x)*exp(-a*x).
func cdf2(a, b, x float64) float64 {
	d := b - a
	var s float64
	if num.Zero(d) {
		s = (1 + a*x) * math.Exp(-a*x)
	} else {
		s = math.Exp(-a*x) * (1 - a*math.Expm1(-d*x)/d)
	}
	c := 1 - s
	switch {
	case c < 0:
		return 0
	case c > 1:
		return 1
	}
	return c
}

// PDF returns the density at x. Two stages use a cancellation-free form;
// more distinct rates use the closed partial-fraction form; the
// all-equal case reduces to an Erlang density.
func (h HypoExp) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if len(h.Rates) == 2 {
		return pdf2(h.Rates[0], h.Rates[1], x)
	}
	if as, ok := h.coeffs(); ok {
		s := 0.0
		for i, r := range h.Rates {
			s += as[i] * r * math.Exp(-r*x)
		}
		if s < 0 {
			return 0
		}
		return s
	}
	if allEqual(h.Rates) {
		return Erlang{K: len(h.Rates), Rate: h.Rates[0]}.PDF(x)
	}
	panic("dist: HypoExp.PDF with partially repeated rates is not supported")
}

// CDF returns P(X <= x) under the same rate restrictions as PDF.
func (h HypoExp) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if len(h.Rates) == 2 {
		return cdf2(h.Rates[0], h.Rates[1], x)
	}
	if as, ok := h.coeffs(); ok {
		s := 0.0
		for i, r := range h.Rates {
			s += as[i] * math.Exp(-r*x)
		}
		c := 1 - s
		switch {
		case c < 0:
			return 0
		case c > 1:
			return 1
		}
		return c
	}
	if allEqual(h.Rates) {
		return Erlang{K: len(h.Rates), Rate: h.Rates[0]}.CDF(x)
	}
	panic("dist: HypoExp.CDF with partially repeated rates is not supported")
}

// Sample draws as the sum of the stage exponentials.
func (h HypoExp) Sample(r *xrand.Rand) float64 {
	s := 0.0
	for _, rate := range h.Rates {
		s += r.Exp(rate)
	}
	return s
}

func allEqual(xs []float64) bool {
	for _, x := range xs[1:] {
		if !num.Same(x, xs[0]) {
			return false
		}
	}
	return true
}

// HyperExp is the hyperexponential distribution: an exponential whose
// rate is chosen once according to Probs. Probs must sum to one.
type HyperExp struct {
	Probs []float64
	Rates []float64
}

// NewHyperExp returns a hyperexponential distribution; it errors on
// mismatched lengths, invalid probabilities, or non-positive rates.
func NewHyperExp(probs, rates []float64) (HyperExp, error) {
	if len(probs) != len(rates) || len(probs) == 0 {
		return HyperExp{}, fmt.Errorf("dist: HyperExp needs equal non-zero lengths, got %d and %d", len(probs), len(rates))
	}
	sum := 0.0
	for _, p := range probs {
		if p < 0 {
			return HyperExp{}, fmt.Errorf("dist: HyperExp probability %v is negative", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return HyperExp{}, fmt.Errorf("dist: HyperExp probabilities sum to %v, want 1", sum)
	}
	for _, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return HyperExp{}, fmt.Errorf("dist: HyperExp rate must be positive and finite, got %v", r)
		}
	}
	h := HyperExp{Probs: make([]float64, len(probs)), Rates: make([]float64, len(rates))}
	copy(h.Probs, probs)
	copy(h.Rates, rates)
	return h, nil
}

// Mean returns sum p_i / r_i.
func (h HyperExp) Mean() float64 {
	s := 0.0
	for i, p := range h.Probs {
		s += p / h.Rates[i]
	}
	return s
}

// Var returns E[X^2] - E[X]^2 with E[X^2] = sum 2 p_i / r_i^2.
func (h HyperExp) Var() float64 {
	m := h.Mean()
	m2 := 0.0
	for i, p := range h.Probs {
		m2 += 2 * p / (h.Rates[i] * h.Rates[i])
	}
	return m2 - m*m
}

// PDF returns the mixture density at x.
func (h HyperExp) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	s := 0.0
	for i, p := range h.Probs {
		s += p * h.Rates[i] * math.Exp(-h.Rates[i]*x)
	}
	return s
}

// CDF returns the mixture CDF at x.
func (h HyperExp) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	s := 0.0
	for i, p := range h.Probs {
		s += p * -math.Expm1(-h.Rates[i]*x)
	}
	return s
}

// Sample picks a branch, then draws that exponential.
func (h HyperExp) Sample(r *xrand.Rand) float64 {
	u := r.Float64()
	cum := 0.0
	for i, p := range h.Probs {
		cum += p
		if u < cum {
			return r.Exp(h.Rates[i])
		}
	}
	return r.Exp(h.Rates[len(h.Rates)-1])
}

// Mixture is a finite mixture of arbitrary component distributions.
// The M/M/c response time is Mixture{[Wc, 1-Wc], [Exp(mu), HypoExp(mu, c*mu-lambda)]}.
type Mixture struct {
	Probs      []float64
	Components []Dist
}

// NewMixture returns a mixture; it errors on mismatched lengths or
// probabilities not summing to one.
func NewMixture(probs []float64, comps []Dist) (Mixture, error) {
	if len(probs) != len(comps) || len(probs) == 0 {
		return Mixture{}, fmt.Errorf("dist: Mixture needs equal non-zero lengths, got %d and %d", len(probs), len(comps))
	}
	sum := 0.0
	for _, p := range probs {
		if p < -1e-12 {
			return Mixture{}, fmt.Errorf("dist: Mixture probability %v is negative", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return Mixture{}, fmt.Errorf("dist: Mixture probabilities sum to %v, want 1", sum)
	}
	m := Mixture{Probs: make([]float64, len(probs)), Components: make([]Dist, len(comps))}
	copy(m.Probs, probs)
	copy(m.Components, comps)
	return m, nil
}

// Mean returns the probability-weighted component means.
func (m Mixture) Mean() float64 {
	s := 0.0
	for i, p := range m.Probs {
		s += p * m.Components[i].Mean()
	}
	return s
}

// Var uses the law of total variance.
func (m Mixture) Var() float64 {
	mean := m.Mean()
	s := 0.0
	for i, p := range m.Probs {
		mi := m.Components[i].Mean()
		s += p * (m.Components[i].Var() + mi*mi)
	}
	return s - mean*mean
}

// PDF returns the weighted component densities.
func (m Mixture) PDF(x float64) float64 {
	s := 0.0
	for i, p := range m.Probs {
		s += p * m.Components[i].PDF(x)
	}
	return s
}

// CDF returns the weighted component CDFs.
func (m Mixture) CDF(x float64) float64 {
	s := 0.0
	for i, p := range m.Probs {
		s += p * m.Components[i].CDF(x)
	}
	return s
}

// Sample picks a component, then samples it.
func (m Mixture) Sample(r *xrand.Rand) float64 {
	u := r.Float64()
	cum := 0.0
	for i, p := range m.Probs {
		cum += p
		if u < cum {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}
