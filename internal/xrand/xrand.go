// Package xrand provides a deterministic, splittable pseudo-random number
// generator and the samplers needed by the simulators in this repository.
//
// The generator is PCG-XSH-RR 64/32 combined into a 64-bit output
// (two independent 32-bit outputs per 64-bit value would bias the stream,
// so we use the PCG-XSL-RR 128/64 variant implemented with 64-bit halves).
// Every replication of an experiment draws from an independent stream so
// results are reproducible bit-for-bit across platforms and Go versions,
// unlike math/rand whose algorithm is unspecified across releases.
package xrand

import "math"

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// pcg128 state constants (PCG-XSL-RR 128/64, O'Neill 2014).
const (
	pcgMulHi = 2549297995355413924
	pcgMulLo = 4865540595714422341
	pcgIncHi = 6364136223846793005
	pcgIncLo = 1442695040888963407
)

// Rand is a PCG-XSL-RR 128/64 pseudo-random number generator.
// The zero value is not usable; construct with New or NewStream.
// Rand is not safe for concurrent use; give each goroutine its own stream.
type Rand struct {
	hi, lo uint64 // 128-bit state
	incHi  uint64 // stream selector (must be odd in the low half)
	incLo  uint64
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *Rand {
	return NewStream(seed, 0)
}

// NewStream returns a generator seeded with seed on the given stream.
// Distinct stream values yield statistically independent sequences for
// the same seed, which is how replications are made independent.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{
		// The increment selects the stream; it must be odd.
		incHi: stream,
		incLo: stream<<1 | 1,
	}
	r.hi, r.lo = 0, 0
	r.step()
	r.lo += seed
	r.hi += stream ^ seed<<1
	r.step()
	r.step()
	return r
}

// step advances the 128-bit LCG state.
func (r *Rand) step() {
	// state = state * mul + inc (128-bit arithmetic).
	hi, lo := mul128(r.lo, pcgMulLo)
	hi += r.hi*pcgMulLo + r.lo*pcgMulHi
	lo += r.incLo
	if lo < r.incLo {
		hi++
	}
	hi += r.incHi
	r.hi, r.lo = hi, lo
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.step()
	// XSL-RR output function: xor the halves, rotate by the top 6 bits.
	x := r.hi ^ r.lo
	rot := uint(r.hi >> 58)
	return x>>rot | x<<((64-rot)&63)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 random bits scaled into [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniformly distributed value in (0, 1),
// suitable for inversion sampling of distributions with infinite
// density or support endpoints.
func (r *Rand) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate), sampled by inversion. It panics if rate <= 0 because a
// non-positive rate is a programming error, not an input error.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exp rate must be positive")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn argument must be positive")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	hi, lo := mul128(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = mul128(r.Uint64(), bound)
		}
	}
	return int(hi)
}

// Norm returns a standard normally distributed value using the
// Marsaglia polar method.
func (r *Rand) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
