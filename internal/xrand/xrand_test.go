package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d for identical seed/stream", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := NewStream(1, 0)
	b := NewStream(2, 0)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := NewStream(1, 1)
	b := NewStream(1, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different streams produced %d identical draws out of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100_000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 returned %v outside [0,1)", v)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 500_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.002 {
		t.Errorf("uniform mean = %v, want 0.5 +/- 0.002", mean)
	}
	if math.Abs(variance-1.0/12) > 0.002 {
		t.Errorf("uniform variance = %v, want 1/12 +/- 0.002", variance)
	}
}

func TestExpMoments(t *testing.T) {
	tests := []struct {
		name string
		rate float64
	}{
		{"rate below one", 0.2},
		{"unit rate", 1},
		{"rate above one", 3.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := New(11)
			const n = 400_000
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				v := r.Exp(tt.rate)
				if v < 0 {
					t.Fatalf("Exp returned negative value %v", v)
				}
				sum += v
				sumSq += v * v
			}
			mean := sum / n
			wantMean := 1 / tt.rate
			if math.Abs(mean-wantMean)/wantMean > 0.01 {
				t.Errorf("Exp(%v) mean = %v, want %v within 1%%", tt.rate, mean, wantMean)
			}
			variance := sumSq/n - mean*mean
			wantVar := 1 / (tt.rate * tt.rate)
			if math.Abs(variance-wantVar)/wantVar > 0.03 {
				t.Errorf("Exp(%v) variance = %v, want %v within 3%%", tt.rate, variance, wantVar)
			}
		})
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Exp(%v) did not panic", rate)
				}
			}()
			New(1).Exp(rate)
		}()
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(13)
	const n, draws = 10, 200_000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.03 {
			t.Errorf("Intn(%d) bucket %d has %d draws, want %.0f +/- 3%%", n, i, c, want)
		}
	}
}

func TestIntnPanicsOnBadArg(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const n = 400_000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want 0 +/- 0.01", mean)
	}
	if v := sumSq / n; math.Abs(v-1) > 0.02 {
		t.Errorf("Norm second moment = %v, want 1 +/- 0.02", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(29)
	for i := 0; i < 100_000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open returned %v outside (0,1)", v)
		}
	}
}

func TestMul128KnownProducts(t *testing.T) {
	tests := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 1, 0, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
		{0xDEADBEEF, 0x10001, 0, 0xDEADBEEF * 0x10001 & math.MaxUint64},
	}
	for _, tt := range tests {
		hi, lo := mul128(tt.a, tt.b)
		if hi != tt.hi || lo != tt.lo {
			t.Errorf("mul128(%#x, %#x) = (%#x, %#x), want (%#x, %#x)",
				tt.a, tt.b, hi, lo, tt.hi, tt.lo)
		}
	}
}
