package conformance

import (
	"bytes"
	"fmt"
	"math"

	"rejuv/internal/core"
	"rejuv/internal/faults"
	"rejuv/internal/journal"
)

// Fault-injection harness for the conformance laws: the counterpart of
// RunJournaled for observation streams that pass through a deterministic
// fault injector and a hygiene gate before reaching the detector. The
// pipeline mirrors the hardened production path (Monitor hygiene,
// internal/ecommerce feedDetector): injected corruptions are journaled
// as fault records, intercepted values never reach the detector or the
// journal's observe stream, and the journal replays byte-identically.

// faultLawStream is the xrand stream id reserved for fault-law
// injectors, distinct from traceStream so faulting a trace never
// changes the trace itself.
const faultLawStream = 7101

// FaultScenario names one fault class together with the pinned
// reference parameters the fault laws inject.
type FaultScenario struct {
	// Name identifies the scenario in test output.
	Name string
	// Spec is the fault-spec clause, parsed with faults.ParseSpec.
	Spec string
}

// FaultScenarios returns the pinned fault matrix the laws run every
// detector family against: one scenario per fault class of
// internal/faults that acts on the observation stream.
func FaultScenarios() []FaultScenario {
	return []FaultScenario{
		{"nan", "nan:p=0.05"},
		{"pos-inf", "inf:p=0.05"},
		{"neg-inf", "inf:p=0.05,sign=-"},
		{"neg", "neg:p=0.05"},
		{"freeze", "freeze:p=0.02,len=5"},
		{"drop", "drop:p=0.05"},
		{"dup", "dup:p=0.05"},
		{"reorder", "reorder:p=0.1"},
		{"stall", "stall:at=100,len=40"},
	}
}

// FaultedResult is the outcome of one faulted, journaled run.
type FaultedResult struct {
	// Decisions is the decision stream over the observations the
	// detector actually saw (post-injection, post-hygiene).
	Decisions []core.Decision
	// Triggers counts triggering decisions.
	Triggers int
	// Injected counts faults the injector fired.
	Injected int
	// Rejected counts non-finite observations the hygiene gate
	// intercepted (rejected or clamped).
	Rejected int
	// Finite reports whether the detector's internal state was free of
	// NaN and infinities when the run ended.
	Finite bool
	// Rebaselines counts committed workload-shift rebaselines, for
	// detectors that re-estimate their baseline (core.Rebaseliner).
	Rebaselines int
	// Replay is the journal replay report; Replay.Identical() is the
	// proof that the faulted run is reconstructible from its journal.
	Replay journal.ReplayReport
}

// RunFaulted feeds the trace through a fault injector built from spec
// (seed-pinned on stream faultLawStream) and a hygiene gate into a
// fresh detector from factory, journaling the run into an in-memory
// binary journal, then replays the journal through a second detector
// from the same factory. The journaling protocol mirrors
// internal/ecommerce: fault records for injections and hygiene
// interceptions (with non-finite values sanitized to 0 — the class
// names the poison), observe records only for admitted values, decision
// records when the step evaluated or triggered, detector Reset plus a
// journal reset record after every trigger.
func RunFaulted(name string, factory func() (core.Detector, error), trace []float64, spec faults.Spec, hygiene core.Hygiene, seed uint64) (FaultedResult, error) {
	det, err := factory()
	if err != nil {
		return FaultedResult{}, fmt.Errorf("conformance: factory: %w", err)
	}
	var res FaultedResult
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "conformance-faults", Detector: name})
	jw.RepStart(0, 0, seed, faultLawStream)

	now := 0.0
	inj := faults.NewInjector(spec, seed, faultLawStream)
	inj.OnFault = func(class faults.Class, value float64) {
		res.Injected++
		if math.IsNaN(value) || math.IsInf(value, 0) {
			value = 0
		}
		jw.Fault(now, string(class), value)
	}

	reb, _ := det.(core.Rebaseliner)
	var lastReb uint64
	var last float64
	var haveLast bool
	feed := func(x float64) {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v, ok := hygiene.Admit(x, last, haveLast)
			if hygiene != core.HygieneOff {
				res.Rejected++
				jw.Fault(now, nonFiniteClass(x), 0)
			}
			if !ok {
				return
			}
			x = v
		}
		last, haveLast = x, true
		jw.Observe(now, x)
		d := det.Observe(x)
		res.Decisions = append(res.Decisions, d)
		if reb != nil {
			if n := reb.Rebaselines(); n != lastReb {
				lastReb = n
				res.Rebaselines++
				b := reb.CurrentBaseline()
				jw.Rebaseline(now, b.Mean, b.StdDev)
			}
		}
		if d.Evaluated || d.Triggered {
			var in core.Internals
			if instr, ok := det.(core.Instrumented); ok {
				in = instr.Internals()
			}
			jw.Decision(now, d, in, false, 0)
		}
		if d.Triggered {
			res.Triggers++
			det.Reset()
			jw.Reset(now)
		}
	}
	for i, x := range trace {
		now = float64(i)
		for _, v := range inj.Apply(x) {
			feed(v)
		}
	}
	for _, v := range inj.Flush() {
		feed(v)
	}
	res.Finite = FiniteInternals(det)

	if err := jw.Err(); err != nil {
		return FaultedResult{}, fmt.Errorf("conformance: journal writer: %w", err)
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return FaultedResult{}, fmt.Errorf("conformance: journal reader: %w", err)
	}
	rep, err := journal.Replay(jr, factory)
	if err != nil {
		return FaultedResult{}, fmt.Errorf("conformance: replay: %w", err)
	}
	res.Replay = rep
	return res, nil
}

// nonFiniteClass names the fault class of a non-finite observation for
// the journal's fault record.
func nonFiniteClass(x float64) string {
	switch {
	case math.IsNaN(x):
		return "nan"
	case math.IsInf(x, 1):
		return "+inf"
	default:
		return "-inf"
	}
}

// FiniteInternals reports whether the detector's internal-state
// snapshot is free of NaN and infinities. Detectors that do not expose
// internals pass vacuously.
func FiniteInternals(det core.Detector) bool {
	instr, ok := det.(core.Instrumented)
	if !ok {
		return true
	}
	in := instr.Internals()
	return !math.IsNaN(in.Target) && !math.IsInf(in.Target, 0) &&
		!math.IsNaN(in.Statistic) && !math.IsInf(in.Statistic, 0)
}
