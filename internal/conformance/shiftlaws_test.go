package conformance

import (
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/faults"
)

// Shift-conformance laws: behavioural guarantees of the adaptive-
// baseline layer (core.Rebase) under non-stationary workloads, run for
// every detector family. The laws are exact, seed-pinned claims — no
// Alpha() draws, so they never touch the statistical test budget — and
// every run is journaled with its rebaseline events and replay-verified
// through RunJournaled, so each law doubles as a flight-recorder proof
// that rebaselined runs are reconstructible bit for bit.

// shiftLawConfig is the pinned shift layer the laws run: the documented
// defaults.
var shiftLawConfig = core.ShiftConfig{}

// countTriggers counts triggering decisions in a stream.
func countTriggers(ds []core.Decision) int {
	n := 0
	for _, d := range ds {
		if d.Triggered {
			n++
		}
	}
	return n
}

// triggersIn counts triggering decisions with index in [lo, hi).
func triggersIn(ds []core.Decision, lo, hi int) int {
	n := 0
	for i, d := range ds {
		if i >= lo && i < hi && d.Triggered {
			n++
		}
	}
	return n
}

// TestShiftLawPureShiftFalseTriggers: across an abrupt pure workload
// shift (+4 sigma step, healthy afterwards), a Rebase-wrapped family
// must rebaseline and raise at most a transient burst of false triggers
// — the few observations a detector more sensitive than the shift
// threshold can win the race — while the bare family, which cannot tell
// the shift from degradation, keeps condemning the healthy system (the
// vacuity guard).
func TestShiftLawPureShiftFalseTriggers(t *testing.T) {
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			for _, seed := range lawSeeds() {
				trace := StepTrace(seed, 900, 200, 4, lawBase)
				bare, rep, err := RunJournaled(fam.Name, fam.New, trace)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				bareTrigs := countTriggers(bare)
				// The adaptive family is the self-adapting control: it
				// relearns its own baseline after each rejuvenation, so the
				// bare run absorbs the shift on its own and the vacuity and
				// improvement guards do not apply.
				if fam.Name != "Adaptive" && bareTrigs == 0 {
					t.Fatalf("seed %d: bare family never triggered on the shift; law is vacuous", seed)
				}
				wrapped := RebasedFamily(fam, shiftLawConfig, lawBase)
				ds, rep, err := RunJournaled(fam.Name, wrapped.New, trace)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				if rep.Rebaselines == 0 {
					t.Fatalf("seed %d: shift layer never rebaselined across the step", seed)
				}
				trigs := countTriggers(ds)
				if trigs > 3 {
					t.Errorf("seed %d: %d false triggers across a pure shift, want at most 3", seed, trigs)
				}
				if fam.Name != "Adaptive" && trigs >= bareTrigs {
					t.Errorf("seed %d: rebased family triggered %d times, bare %d; no improvement", seed, trigs, bareTrigs)
				}
			}
		})
	}
}

// TestShiftLawAgingDetectedThroughShift: when software aging starts
// after a workload shift, the rebaselined detector must still condemn
// the system — rebaselining may cost detection delay, but it is
// bounded, and the aging must not be absorbed as just another shift.
// The trace steps +3 sigma at 200 (a shift), then ramps from 400 (the
// aging hiding behind the new regime).
func TestShiftLawAgingDetectedThroughShift(t *testing.T) {
	const (
		shiftAt   = 200
		agingFrom = 400
		n         = 1200
	)
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			for _, seed := range lawSeeds() {
				trace := StepTrace(seed, n, shiftAt, 3, lawBase)
				for i := agingFrom; i < n; i++ {
					trace[i] += 0.02 * float64(i-agingFrom) * lawBase.StdDev
				}
				wrapped := RebasedFamily(fam, shiftLawConfig, lawBase)
				ds, rep, err := RunJournaled(fam.Name, wrapped.New, trace)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				if rep.Rebaselines == 0 {
					t.Fatalf("seed %d: the shift was never rebaselined", seed)
				}
				// After the shift settles (transient race + relearn window)
				// and before the aging begins, the system is healthy under
				// its new workload. The relearned baseline is an EWMA
				// estimate over a short window, so its spread runs slightly
				// tight and the occasional stray trigger is honest — but it
				// must stay rare.
				if k := triggersIn(ds, shiftAt+50, agingFrom); k > 2 {
					t.Errorf("seed %d: %d false triggers on the settled post-shift regime, want at most 2", seed, k)
				}
				// The aging ramp must be condemned with bounded slip.
				first := -1
				for i := agingFrom; i < len(ds); i++ {
					if ds[i].Triggered {
						first = i
						break
					}
				}
				if first < 0 {
					t.Fatalf("seed %d: aging behind the shift was never detected", seed)
				}
				if first > 1100 {
					t.Errorf("seed %d: detection slipped to observation %d, want at most 1100", seed, first)
				}
			}
		})
	}
}

// shiftShape is one non-stationary workload shape of the confusion
// matrix.
type shiftShape struct {
	name string
	// make builds the seed-pinned trace.
	make func(seed uint64) []float64
	// minRebaselines is the floor of committed rebaselines the shape
	// must provoke (the "shift" row of the confusion matrix).
	minRebaselines int
}

// shiftCell pins one cell of the rebaseline-versus-trigger confusion
// matrix: the bounds a family must satisfy on a shape.
type shiftCell struct {
	// budget bounds the rebased family's false triggers (the shape
	// misclassified as aging). Bucket-sampled families and the adaptive
	// control suppress the shift completely; per-observation families
	// chirp in the lag before each rebaseline commits, so their budgets
	// are looser — the pinned values are the empirical per-seed maxima
	// with headroom.
	budget int
	// minBare is the floor of bare-family triggers (the vacuity guard
	// that the shape is condemning-strength for this family). 0 marks
	// cells where the bare family already absorbs the shape (the
	// adaptive control, which relearns after every rejuvenation).
	minBare int
}

// shiftMatrix returns the pinned confusion-matrix expectations:
// shape -> family -> cell.
func shiftMatrix() map[string]map[string]shiftCell {
	return map[string]map[string]shiftCell{
		"diurnal": {
			"SRAA":     {budget: 1, minBare: 4},
			"SARAA":    {budget: 1, minBare: 4},
			"Static":   {budget: 1, minBare: 10},
			"CLTA":     {budget: 12, minBare: 40},
			"Shewhart": {budget: 4, minBare: 250},
			"EWMA":     {budget: 20, minBare: 200},
			"CUSUM":    {budget: 20, minBare: 200},
			"Adaptive": {budget: 1, minBare: 0},
		},
		"flash-crowd": {
			"SRAA":     {budget: 1, minBare: 1},
			"SARAA":    {budget: 1, minBare: 1},
			"Static":   {budget: 1, minBare: 6},
			"CLTA":     {budget: 18, minBare: 15},
			"Shewhart": {budget: 8, minBare: 120},
			"EWMA":     {budget: 10, minBare: 90},
			"CUSUM":    {budget: 12, minBare: 80},
			"Adaptive": {budget: 1, minBare: 1},
		},
		"ramp-plateau": {
			"SRAA":     {budget: 1, minBare: 4},
			"SARAA":    {budget: 1, minBare: 4},
			"Static":   {budget: 1, minBare: 15},
			"CLTA":     {budget: 28, minBare: 30},
			"Shewhart": {budget: 4, minBare: 250},
			"EWMA":     {budget: 15, minBare: 200},
			"CUSUM":    {budget: 38, minBare: 180},
			"Adaptive": {budget: 1, minBare: 5},
		},
	}
}

// TestShiftLawConfusionMatrix pins the rebaseline-versus-trigger
// confusion matrix across every detector family and three pure workload
// shapes: diurnal arrival cycles, a flash crowd, and a ramp to a
// plateau. Every cell must classify the movement as workload
// (rebaselines at or above the shape's floor, false triggers within the
// cell's budget) while the bare family misclassifies it as aging (at
// least the cell's trigger floor), and every run must replay
// byte-identically. The cell bounds are seed-pinned from the empirical
// matrix (see EXPERIMENTS.md) with headroom.
func TestShiftLawConfusionMatrix(t *testing.T) {
	shapes := []shiftShape{
		{
			name:           "diurnal",
			make:           func(seed uint64) []float64 { return DiurnalTrace(seed, 1200, 6, 150, lawBase) },
			minRebaselines: 2,
		},
		{
			name:           "flash-crowd",
			make:           func(seed uint64) []float64 { return FlashCrowdTrace(seed, 900, 200, 300, 5, lawBase) },
			minRebaselines: 2,
		},
		{
			name:           "ramp-plateau",
			make:           func(seed uint64) []float64 { return RampPlateauTrace(seed, 900, 200, 40, 5, lawBase) },
			minRebaselines: 1,
		},
	}
	matrix := shiftMatrix()
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			for _, fam := range Families(lawBase) {
				t.Run(fam.Name, func(t *testing.T) {
					cell, ok := matrix[shape.name][fam.Name]
					if !ok {
						t.Fatalf("no pinned cell for %s/%s", shape.name, fam.Name)
					}
					for _, seed := range lawSeeds() {
						trace := shape.make(seed)
						bare, rep, err := RunJournaled(fam.Name, fam.New, trace)
						if err != nil {
							t.Fatal(err)
						}
						mustIdentical(t, fam.Name, rep)
						bareTrigs := countTriggers(bare)
						wrapped := RebasedFamily(fam, shiftLawConfig, lawBase)
						ds, rep, err := RunJournaled(fam.Name, wrapped.New, trace)
						if err != nil {
							t.Fatal(err)
						}
						mustIdentical(t, fam.Name, rep)
						trigs := countTriggers(ds)
						t.Logf("seed %d: bare %d triggers; rebased %d triggers, %d rebaselines",
							seed, bareTrigs, trigs, rep.Rebaselines)
						if rep.Rebaselines < shape.minRebaselines {
							t.Errorf("seed %d: %d rebaselines, want at least %d", seed, rep.Rebaselines, shape.minRebaselines)
						}
						if trigs > cell.budget {
							t.Errorf("seed %d: %d triggers exceed the cell budget of %d", seed, trigs, cell.budget)
						}
						if bareTrigs < cell.minBare {
							t.Errorf("seed %d: bare family triggered %d times, want at least %d (cell vacuity)", seed, bareTrigs, cell.minBare)
						}
					}
				})
			}
		})
	}
}

// TestShiftFaultLawMatrix runs every fault class of internal/faults
// against every Rebase-wrapped family on a shifting workload behind the
// reject hygiene gate: the run must survive, internals stay finite, the
// rebaseline path must still commit, the false-trigger excess over the
// clean shifted run stays bounded, and the faulted journal — rebaseline
// records included — replays byte-identically.
func TestShiftFaultLawMatrix(t *testing.T) {
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			trace := StepTrace(faultLawSeed, 900, 200, 4, lawBase)
			wrapped := RebasedFamily(fam, shiftLawConfig, lawBase)
			clean, err := RunFaulted(fam.Name, wrapped.New, trace, faults.Spec{}, core.HygieneReject, faultLawSeed)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Rebaselines == 0 {
				t.Fatal("clean shifted run never rebaselined; matrix is vacuous")
			}
			for _, sc := range FaultScenarios() {
				t.Run(sc.Name, func(t *testing.T) {
					spec := parseScenario(t, sc)
					res, err := RunFaulted(fam.Name, wrapped.New, trace, spec, core.HygieneReject, faultLawSeed)
					if err != nil {
						t.Fatal(err)
					}
					if res.Injected == 0 {
						t.Fatalf("injector never fired; law is vacuous")
					}
					if !res.Finite {
						t.Errorf("detector internals went non-finite")
					}
					if !res.Replay.Identical() {
						t.Errorf("faulted shifted journal replay diverged")
					}
					if res.Rebaselines == 0 {
						t.Errorf("fault class suppressed the rebaseline entirely")
					}
					// The excess allowance is wider than the steady-state
					// fault laws' (+2): duplication and reordering replay
					// the post-shift excursion during the race window
					// before the change-point commits, which honestly costs
					// a couple of extra transient triggers.
					if res.Triggers > clean.Triggers+4 {
						t.Errorf("false triggers = %d, clean shifted = %d; fault class amplified false alarms",
							res.Triggers, clean.Triggers)
					}
				})
			}
		})
	}
}
