package conformance

import (
	"bytes"
	"fmt"
	"math"

	"rejuv/internal/core"
	"rejuv/internal/journal"
)

// Family names one detector family together with factories the
// metamorphic laws exercise. Laws that transform the observation
// stream use Scaled to build the detector that watches the transformed
// stream.
type Family struct {
	// Name identifies the family in test output and journal metadata.
	Name string
	// New builds a fresh detector with the family's reference
	// parameters.
	New func() (core.Detector, error)
	// Scaled builds a detector for observations that went through the
	// affine map x -> a*x + b (a > 0): the baseline moves to
	// {a*Mean + b, a*StdDev}. For the adaptive family the factory is
	// independent of (a, b) because the baseline is learned from the
	// transformed warmup.
	Scaled func(a, b float64) func() (core.Detector, error)
	// Windowed is the sample-window size n for detectors that evaluate
	// on completed samples (0 for per-observation detectors); the
	// permutation-invariance law shuffles inside windows of this size.
	Windowed int
	// Stateful marks families whose decision at one observation depends
	// on previous windows (EWMA/CUSUM/Adaptive smooth or accumulate
	// across evaluations), which exempts them from laws that only hold
	// for window-local detectors.
	Stateful bool
}

// Families returns the eight detector families of internal/core with
// the reference parameters the conformance laws pin, all judged
// against the given healthy baseline.
func Families(base core.Baseline) []Family {
	scaledBase := func(a, b float64) core.Baseline {
		return core.Baseline{Mean: a*base.Mean + b, StdDev: a * base.StdDev}
	}
	return []Family{
		{
			Name: "SRAA",
			New: func() (core.Detector, error) {
				return core.NewSRAA(core.SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: base})
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewSRAA(core.SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: scaledBase(a, b)})
				}
			},
			Windowed: 4,
		},
		{
			Name: "SARAA",
			New: func() (core.Detector, error) {
				return core.NewSARAA(core.SARAAConfig{InitialSampleSize: 6, Buckets: 5, Depth: 3, Baseline: base})
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewSARAA(core.SARAAConfig{InitialSampleSize: 6, Buckets: 5, Depth: 3, Baseline: scaledBase(a, b)})
				}
			},
			// SARAA windows shrink with the bucket level, so only the
			// level-0 window size is declared; the permutation law
			// handles the shrink by reading evaluation boundaries.
			Windowed: 6,
		},
		{
			Name: "Static",
			New: func() (core.Detector, error) {
				return core.NewStatic(5, 3, base)
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewStatic(5, 3, scaledBase(a, b))
				}
			},
			Windowed: 1,
		},
		{
			Name: "CLTA",
			New: func() (core.Detector, error) {
				return core.NewCLTA(core.CLTAConfig{SampleSize: 10, Quantile: 1.96, Baseline: base})
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewCLTA(core.CLTAConfig{SampleSize: 10, Quantile: 1.96, Baseline: scaledBase(a, b)})
				}
			},
			Windowed: 10,
		},
		{
			Name: "Shewhart",
			New: func() (core.Detector, error) {
				return core.NewShewhart(3, base)
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewShewhart(3, scaledBase(a, b))
				}
			},
			Windowed: 1,
		},
		{
			Name: "EWMA",
			New: func() (core.Detector, error) {
				return core.NewEWMA(0.2, 3, base)
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewEWMA(0.2, 3, scaledBase(a, b))
				}
			},
			Windowed: 1,
			Stateful: true,
		},
		{
			Name: "CUSUM",
			New: func() (core.Detector, error) {
				return core.NewCUSUM(0.5, 5, base)
			},
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewCUSUM(0.5, 5, scaledBase(a, b))
				}
			},
			Windowed: 1,
			Stateful: true,
		},
		{
			Name: "Adaptive",
			New: func() (core.Detector, error) {
				return core.NewAdaptive(64, func(b core.Baseline) (core.Detector, error) {
					return core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: b})
				})
			},
			// The adaptive wrapper learns its baseline from the warmup
			// observations, so the transformed stream yields the
			// transformed baseline with no reconfiguration.
			Scaled: func(a, b float64) func() (core.Detector, error) {
				return func() (core.Detector, error) {
					return core.NewAdaptive(64, func(b core.Baseline) (core.Detector, error) {
						return core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: b})
					})
				}
			},
			Windowed: 2,
			Stateful: true,
		},
	}
}

// RebasedFamily returns the family with its factory wrapped in the
// workload-shift layer (core.Rebase): the change-point rule rebaselines
// on workload shifts and passes software aging through to the family's
// detector. Committed rebaselines rebuild the detector at the
// re-estimated baseline through the family's affine re-parameterization
// (Scaled with a = sd'/sd, b = mu' - a*mu), so every family — including
// the adaptive one, which relearns its own baseline instead — runs
// under the shift conformance laws without per-family wiring. The
// initial build maps through Scaled(1, 0), so pre-shift behaviour is
// exactly the bare family's.
func RebasedFamily(fam Family, cfg core.ShiftConfig, base core.Baseline) Family {
	out := fam
	out.New = func() (core.Detector, error) {
		return core.NewRebase(cfg, base, func(b core.Baseline) (core.Detector, error) {
			a := b.StdDev / base.StdDev
			return fam.Scaled(a, b.Mean-a*base.Mean)()
		})
	}
	return out
}

// RunTrace feeds the trace through the detector and returns the full
// decision stream, one Decision per observation. Triggers reset the
// detector, mirroring how the simulation model rejuvenates on trigger.
func RunTrace(det core.Detector, trace []float64) []core.Decision {
	ds := make([]core.Decision, len(trace))
	for i, x := range trace {
		ds[i] = det.Observe(x)
		if ds[i].Triggered {
			det.Reset()
		}
	}
	return ds
}

// RunJournaled feeds the trace through a detector built by factory
// while journaling it as one replication into an in-memory binary
// flight-recorder journal, then replays the journal through a second
// detector from the same factory. It returns the live decision stream
// and the replay report; rep.Identical() is the determinism proof the
// laws assert on every run. The journaling protocol mirrors
// internal/ecommerce: Observe before the step, Decision only when the
// step evaluated or triggered, detector Reset plus a journal Reset
// record after every trigger. Detectors that re-estimate their baseline
// (core.Rebaseliner) additionally journal every committed rebaseline,
// which the replay verifies bit for bit against its own detector's
// committed baseline.
func RunJournaled(name string, factory func() (core.Detector, error), trace []float64) ([]core.Decision, journal.ReplayReport, error) {
	det, err := factory()
	if err != nil {
		return nil, journal.ReplayReport{}, fmt.Errorf("conformance: factory: %w", err)
	}
	reb, _ := det.(core.Rebaseliner)
	var lastReb uint64
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "conformance", Detector: name})
	jw.RepStart(0, 0, 0, 0)
	ds := make([]core.Decision, len(trace))
	for i, x := range trace {
		t := float64(i)
		jw.Observe(t, x)
		d := det.Observe(x)
		ds[i] = d
		if reb != nil {
			if n := reb.Rebaselines(); n != lastReb {
				lastReb = n
				b := reb.CurrentBaseline()
				jw.Rebaseline(t, b.Mean, b.StdDev)
			}
		}
		if d.Evaluated || d.Triggered {
			var in core.Internals
			if instr, ok := det.(core.Instrumented); ok {
				in = instr.Internals()
			}
			jw.Decision(t, d, in, false, 0)
		}
		if d.Triggered {
			det.Reset()
			jw.Reset(t)
		}
	}
	if err := jw.Err(); err != nil {
		return nil, journal.ReplayReport{}, fmt.Errorf("conformance: journal writer: %w", err)
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, journal.ReplayReport{}, fmt.Errorf("conformance: journal reader: %w", err)
	}
	rep, err := journal.Replay(jr, factory)
	if err != nil {
		return nil, journal.ReplayReport{}, fmt.Errorf("conformance: replay: %w", err)
	}
	return ds, rep, nil
}

// SameDecisions compares two decision streams on their discrete fields
// (Triggered, Evaluated, Level, Fill) and, when exact is true, also on
// the float fields bit for bit. It returns the index of the first
// difference and whether the streams match (-1 when they do).
func SameDecisions(a, b []core.Decision, exact bool) (int, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		da, db := a[i], b[i]
		if da.Triggered != db.Triggered || da.Evaluated != db.Evaluated ||
			da.Level != db.Level || da.Fill != db.Fill {
			return i, false
		}
		if exact && (math.Float64bits(da.SampleMean) != math.Float64bits(db.SampleMean) ||
			math.Float64bits(da.Target) != math.Float64bits(db.Target)) {
			return i, false
		}
	}
	if len(a) != len(b) {
		return n, false
	}
	return -1, true
}

// FirstTrigger returns the index of the first triggering decision, or
// -1 when the stream never triggers.
func FirstTrigger(ds []core.Decision) int {
	for i, d := range ds {
		if d.Triggered {
			return i
		}
	}
	return -1
}
