package conformance

import (
	"math"
	"sync"
	"testing"

	"rejuv/internal/mmc"
	"rejuv/internal/stats"
)

// Oracle tests: the Section-3 simulator in its pure M/M/c configuration
// against the Section-4.1 closed forms. The configuration is the
// paper's validation system — c=16, mu=0.2 — at offered load 6
// (lambda=1.2, rho=0.375), where the queue is light enough that a
// 10-stride thinning leaves the serial correlation of consecutive
// sojourn times negligible against the Bonferroni-corrected
// thresholds. Every sample is seed-pinned: the suite's p-values are
// constants of the repository, not random variables of the CI run.

// oracleSystem returns the pinned M/M/c oracle configuration.
func oracleSystem(t *testing.T) mmc.System {
	t.Helper()
	sys, err := mmc.New(16, 1.2, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// oracleMatrix is the replication matrix, reduced under -short.
type oracleMatrix struct {
	reps   int
	txns   int64
	warmup int
	thin   int
}

func matrix() oracleMatrix {
	if testing.Short() {
		return oracleMatrix{reps: 3, txns: 8_000, warmup: 1_000, thin: 10}
	}
	return oracleMatrix{reps: 8, txns: 25_000, warmup: 2_000, thin: 10}
}

// simPool lazily builds the pooled thinned simulator sample once per
// process and matrix, through the replication engine so the pool is
// bit-identical whatever GOMAXPROCS is.
var simPool struct {
	sync.Mutex
	pools map[bool]*Pool
}

func pooledSimSample(t *testing.T) *Pool {
	t.Helper()
	simPool.Lock()
	defer simPool.Unlock()
	if simPool.pools == nil {
		simPool.pools = make(map[bool]*Pool)
	}
	if p, ok := simPool.pools[testing.Short()]; ok {
		return p
	}
	sys := oracleSystem(t)
	m := matrix()
	pool := &Pool{}
	err := Run(Engine{}, m.reps,
		func(rep int) ([]float64, error) {
			// Seed pinned, stream distinct per replication.
			return SimSample(sys, 20260806, 100+uint64(rep), m.txns, m.warmup, m.thin)
		},
		func(_ int, vs []float64) error { pool.add(vs); return nil })
	if err != nil {
		t.Fatal(err)
	}
	simPool.pools[testing.Short()] = pool
	return pool
}

// mustAlpha draws one Bonferroni-corrected significance level from the
// suite budget.
func mustAlpha(t *testing.T) float64 {
	t.Helper()
	a, err := Alpha()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestOracleResponseTimeKS pins the simulator's empirical response-time
// distribution against paper eq. (1) with the Kolmogorov-Smirnov test.
func TestOracleResponseTimeKS(t *testing.T) {
	sys := oracleSystem(t)
	pool := pooledSimSample(t)
	alpha := mustAlpha(t)
	d, p, ok, err := stats.KSTest(pool.Values, sys.RTCDF, alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle eq.(1) KS: n=%d D=%.5f p=%.4f alpha=%.2e", len(pool.Values), d, p, alpha)
	if !ok {
		t.Fatalf("simulator response times reject eq. (1): D=%v p=%v (n=%d)", d, p, len(pool.Values))
	}
}

// TestOracleResponseTimeChiSquare repeats the pin with the chi-square
// goodness-of-fit test on 20 equiprobable cells of eq. (1) — sensitive
// to local density misfits KS smooths over.
func TestOracleResponseTimeChiSquare(t *testing.T) {
	sys := oracleSystem(t)
	pool := pooledSimSample(t)
	alpha := mustAlpha(t)
	const cells = 20
	edges := make([]float64, cells-1)
	for i := range edges {
		q, err := sys.RTQuantile(float64(i+1) / cells)
		if err != nil {
			t.Fatal(err)
		}
		edges[i] = q
	}
	stat, p, ok, err := stats.ChiSquareTest(pool.Values, edges, sys.RTCDF, alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle eq.(1) chi-square: n=%d cells=%d stat=%.2f p=%.4f alpha=%.2e", len(pool.Values), cells, stat, p, alpha)
	if !ok {
		t.Fatalf("simulator response times reject eq. (1) by chi-square: stat=%v p=%v", stat, p)
	}
}

// TestOracleResponseTimeAD tests simulator output against an iid sample
// drawn from the closed-form mixture itself — the two-sample
// Anderson-Darling test, which weights the tails where the M/M/c
// mixture and a buggy simulator would most plausibly disagree.
func TestOracleResponseTimeAD(t *testing.T) {
	sys := oracleSystem(t)
	pool := pooledSimSample(t)
	alpha := mustAlpha(t)
	ref := AnalyticSample(sys, 20260806, 500, len(pool.Values))
	a2, p, ok, err := stats.ADTwoSampleTest(pool.Values, ref, alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle eq.(1) two-sample AD: n=%d A²=%.3f p=%.4f alpha=%.2e", len(pool.Values), a2, p, alpha)
	if !ok {
		t.Fatalf("simulator vs analytic sample reject common law: A²=%v p=%v", a2, p)
	}
}

// TestOracleMeanAndVariance pins the pooled sample moments against
// paper eq. (2) and (3) within standard-error bands scaled to the
// Bonferroni-corrected normal quantile.
func TestOracleMeanAndVariance(t *testing.T) {
	sys := oracleSystem(t)
	pool := pooledSimSample(t)
	alpha := mustAlpha(t)
	z := stats.StdNormQuantile(1 - alpha/2)
	n := float64(pool.Moments.N())

	wantMean := sys.RTMean()
	se := pool.Moments.StdErr()
	if d := math.Abs(pool.Moments.Mean() - wantMean); d > z*se {
		t.Errorf("pooled mean %v vs eq.(2) %v: |diff|=%v > %v", pool.Moments.Mean(), wantMean, d, z*se)
	}
	// Variance of the sample variance for a near-exponential mixture:
	// use the asymptotic se(s²) ≈ s²·sqrt((kurtosis-1)/n) with the
	// conservative exponential excess kurtosis 6.
	wantVar := sys.RTVar()
	seVar := pool.Moments.Var() * math.Sqrt(8/n)
	if d := math.Abs(pool.Moments.Var() - wantVar); d > z*seVar {
		t.Errorf("pooled variance %v vs eq.(3) %v: |diff|=%v > %v", pool.Moments.Var(), wantVar, d, z*seVar)
	}
	t.Logf("oracle eq.(2)/(3): mean %.4f vs %.4f, var %.4f vs %.4f (n=%.0f)", pool.Moments.Mean(), wantMean, pool.Moments.Var(), wantVar, n)
}

// avgCDF adapts AvgRTCDF to a plain CDF, latching the first error.
func avgCDF(t *testing.T, sys mmc.System, n int) func(float64) float64 {
	t.Helper()
	return func(x float64) float64 {
		v, err := sys.AvgRTCDF(n, x)
		if err != nil {
			t.Fatalf("AvgRTCDF(%d, %v): %v", n, x, err)
		}
		return v
	}
}

// TestOracleXbarPhaseTypeMoments pins the Fig. 4 chain's closed-form
// moments against eq. (2)/(3): E[X̄n] = E[RT] and Var[X̄n] = Var[RT]/n,
// with no sampling involved — a pure analytic consistency oracle.
func TestOracleXbarPhaseTypeMoments(t *testing.T) {
	sys := oracleSystem(t)
	for _, n := range []int{1, 5, 15, 30} {
		ph, err := sys.AvgRTPhaseType(n)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(ph.Mean() - sys.RTMean()); d > 1e-8*sys.RTMean() {
			t.Errorf("n=%d: X̄ phase-type mean %v vs eq.(2) %v", n, ph.Mean(), sys.RTMean())
		}
		wantVar := sys.RTVar() / float64(n)
		if d := math.Abs(ph.Var() - wantVar); d > 1e-8*wantVar {
			t.Errorf("n=%d: X̄ phase-type variance %v vs eq.(3)/n %v", n, ph.Var(), wantVar)
		}
	}
}

// TestOracleXbarAnalyticSampleKS draws iid response times from the
// closed-form mixture, forms X̄15 block means, and tests them against
// the eq. (4) absorption-time CDF — validating the uniformization path
// of the CTMC machinery against an independent sampling path.
func TestOracleXbarAnalyticSampleKS(t *testing.T) {
	sys := oracleSystem(t)
	alpha := mustAlpha(t)
	const blockN = 15
	n := 30_000
	if testing.Short() {
		n = 9_000
	}
	xs := AnalyticSample(sys, 20260806, 600, n)
	means, err := BlockMeans(xs, blockN)
	if err != nil {
		t.Fatal(err)
	}
	d, p, ok, err := stats.KSTest(means, avgCDF(t, sys, blockN), alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle eq.(4) analytic X̄%d KS: blocks=%d D=%.5f p=%.4f alpha=%.2e", blockN, len(means), d, p, alpha)
	if !ok {
		t.Fatalf("analytic X̄%d rejects eq. (4): D=%v p=%v (blocks=%d)", blockN, d, p, len(means))
	}
}

// TestOracleXbarSimulatorKS is the end-to-end X̄n pillar: block means
// of the thinned simulator sample against the eq. (4) CDF. This chains
// simulator → thinning → blocking → uniformized CTMC in one test.
func TestOracleXbarSimulatorKS(t *testing.T) {
	sys := oracleSystem(t)
	pool := pooledSimSample(t)
	alpha := mustAlpha(t)
	const blockN = 15
	means, err := BlockMeans(pool.Values, blockN)
	if err != nil {
		t.Fatal(err)
	}
	d, p, ok, err := stats.KSTest(means, avgCDF(t, sys, blockN), alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle eq.(4) simulator X̄%d KS: blocks=%d D=%.5f p=%.4f alpha=%.2e", blockN, len(means), d, p, alpha)
	if !ok {
		t.Fatalf("simulator X̄%d rejects eq. (4): D=%v p=%v (blocks=%d)", blockN, d, p, len(means))
	}
}

// TestOracleXbarChiSquare closes the X̄n pillar with a chi-square test
// of the analytic block means on 12 equiprobable cells of the eq. (4)
// CDF (cell edges found by bisection on the CDF).
func TestOracleXbarChiSquare(t *testing.T) {
	sys := oracleSystem(t)
	alpha := mustAlpha(t)
	const blockN = 15
	n := 30_000
	if testing.Short() {
		n = 9_000
	}
	xs := AnalyticSample(sys, 20260806, 700, n)
	means, err := BlockMeans(xs, blockN)
	if err != nil {
		t.Fatal(err)
	}
	cdf := avgCDF(t, sys, blockN)
	const cells = 12
	edges := make([]float64, cells-1)
	for i := range edges {
		target := float64(i+1) / cells
		lo, hi := 0.0, 60.0
		for cdf(hi) < target {
			hi *= 2
		}
		for it := 0; it < 100; it++ {
			mid := (lo + hi) / 2
			if cdf(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		edges[i] = (lo + hi) / 2
	}
	stat, p, ok, err := stats.ChiSquareTest(means, edges, cdf, alpha)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("oracle eq.(4) X̄%d chi-square: blocks=%d cells=%d stat=%.2f p=%.4f alpha=%.2e", blockN, len(means), cells, stat, p, alpha)
	if !ok {
		t.Fatalf("analytic X̄%d rejects eq. (4) by chi-square: stat=%v p=%v", blockN, stat, p)
	}
}
