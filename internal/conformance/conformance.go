// Package conformance is the statistical safety net of the repository:
// executable cross-checks between the Section-3 simulator and the
// Section-4.1 analytics, metamorphic laws for every detector family in
// internal/core, and a deterministic parallel replication engine that
// makes hundreds of replications affordable inside go test.
//
// The package has three layers:
//
//   - Oracle tests (oracle.go + oracle tests) drive internal/ecommerce
//     in pure M/M/c steady state and test the empirical response-time
//     distribution against the internal/mmc closed forms — paper eq. (1)
//     via Kolmogorov-Smirnov, chi-square and two-sample
//     Anderson-Darling, eq. (2)/(3) via moment comparisons, and the
//     X̄n absorption-time distribution of eq. (4) via the phase-type
//     CDF.
//
//   - Metamorphic laws (harness.go + law tests) assert transformation
//     properties no detector may violate: scale invariance under affine
//     re-parameterization, permutation invariance inside a sample
//     window, monotone sensitivity to pointwise-worse traces, the
//     SARAA-before-SRAA acceleration ordering, and CLTA's quantile
//     arithmetic. Every law run is journaled and replayed through
//     internal/journal, so each one doubles as a flight-recorder
//     determinism proof.
//
//   - The replication engine (engine.go) fans replication bodies out
//     over a worker pool and folds results back in replication order,
//     so pooled floating-point statistics are bit-identical regardless
//     of worker count.
//
// Statistical tests are seed-pinned: every sample in the suite comes
// from a fixed xrand seed, so a test that passes once passes forever —
// CI never sees a statistical flake. The residual role of significance
// levels is to budget sensitivity to future seed churn, which Alpha
// centralizes via a Bonferroni correction over the whole suite.
package conformance

import (
	"fmt"
	"sync/atomic"
)

// FamilyAlpha is the family-wise false-positive budget of the entire
// conformance suite: if every seed in the suite were redrawn, the
// probability that any statistical test rejects a correct
// implementation stays below this value.
const FamilyAlpha = 0.01

// StatTestBudget is the maximum number of statistical hypothesis tests
// the suite may run. The Bonferroni-corrected per-test level is
// FamilyAlpha / StatTestBudget; keeping the divisor a compile-time
// constant (rather than counting tests at runtime) makes every
// threshold independent of test order and of -run selections.
const StatTestBudget = 64

// statTestsUsed counts Alpha draws so the budget is enforceable.
var statTestsUsed atomic.Int64

// Alpha returns the Bonferroni-corrected significance level every
// statistical test in the suite must use, and errors when the suite
// has drawn more tests than StatTestBudget — the signal that the
// budget constant (and with it every threshold) needs revisiting.
func Alpha() (float64, error) {
	if n := statTestsUsed.Add(1); n > StatTestBudget {
		return 0, fmt.Errorf("conformance: statistical test %d exceeds the budget of %d; raise StatTestBudget deliberately", n, StatTestBudget)
	}
	return FamilyAlpha / StatTestBudget, nil
}

// StatTestsUsed returns how many statistical tests have drawn an alpha
// so far in this process.
func StatTestsUsed() int64 { return statTestsUsed.Load() }
