package conformance

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rejuv/internal/stats"
)

// Engine is the parallel replication engine: it fans independent
// replication bodies out over a worker pool and folds their results
// back strictly in replication order. Because the fold order is fixed,
// pooled floating-point statistics (Welford merges, appended sample
// vectors) are bit-identical for any worker count — determinism is a
// property of the engine, not of GOMAXPROCS.
//
// The zero value is ready to use: it runs on up to GOMAXPROCS workers
// with the default early-stop batch size.
type Engine struct {
	// Workers caps the worker pool; zero or negative means GOMAXPROCS.
	Workers int
	// Batch is the early-stop granularity of Collect: the stopping rule
	// is consulted only at multiples of Batch replications, so the
	// replication count a run settles on is a pure function of the
	// bodies' results — never of scheduling. Zero means DefaultBatch.
	Batch int
}

// DefaultBatch is the early-stop granularity used when Engine.Batch is
// zero. It is a fixed constant on purpose: deriving it from the worker
// count would make the replication count machine-dependent.
const DefaultBatch = 8

// workers returns the effective worker-pool size.
func (e Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// batch returns the effective early-stop granularity.
func (e Engine) batch() int {
	if e.Batch > 0 {
		return e.Batch
	}
	return DefaultBatch
}

// Run executes body for every replication index in [0, reps) on the
// engine's worker pool and calls fold exactly once per replication, in
// ascending replication order, on the calling goroutine. The first
// error — from body or fold, in replication order — stops the run and
// is returned wrapped with its replication index. Bodies must be
// independent: they may not share mutable state, and any randomness
// must come from per-replication seeds derived from the index.
func Run[T any](e Engine, reps int, body func(rep int) (T, error), fold func(rep int, v T) error) error {
	if reps <= 0 {
		return nil
	}
	w := e.workers()
	if w > reps {
		w = reps
	}
	if w == 1 {
		// Sequential fast path: identical semantics, no goroutines.
		for rep := 0; rep < reps; rep++ {
			v, err := body(rep)
			if err != nil {
				return fmt.Errorf("conformance: replication %d: %w", rep, err)
			}
			if err := fold(rep, v); err != nil {
				return fmt.Errorf("conformance: folding replication %d: %w", rep, err)
			}
		}
		return nil
	}

	type cell struct {
		v   T
		err error
	}
	// One buffered channel per replication: workers never block on
	// delivery, and the caller receives strictly in index order.
	results := make([]chan cell, reps)
	for i := range results {
		results[i] = make(chan cell, 1)
	}
	jobs := make(chan int)
	var abort atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range jobs {
				if abort.Load() {
					results[rep] <- cell{err: fmt.Errorf("aborted")}
					continue
				}
				v, err := body(rep)
				results[rep] <- cell{v: v, err: err}
			}
		}()
	}
	go func() {
		for rep := 0; rep < reps; rep++ {
			jobs <- rep
		}
		close(jobs)
	}()
	// On early return the abort flag turns the remaining bodies into
	// no-ops; result cells are buffered, so workers and the feeder
	// always run to completion without blocking.
	defer func() {
		abort.Store(true)
		wg.Wait()
	}()

	for rep := 0; rep < reps; rep++ {
		c := <-results[rep]
		if c.err != nil {
			return fmt.Errorf("conformance: replication %d: %w", rep, c.err)
		}
		if err := fold(rep, c.v); err != nil {
			return fmt.Errorf("conformance: folding replication %d: %w", rep, err)
		}
	}
	return nil
}

// Pool accumulates per-replication samples into one pooled estimate.
type Pool struct {
	// Values holds every collected sample value in replication order.
	Values []float64
	// Moments is the streaming pooled mean/variance over Values.
	Moments stats.Welford
	// Reps counts the replications folded in.
	Reps int
}

// add folds one replication's values into the pool.
func (p *Pool) add(vs []float64) {
	p.Values = append(p.Values, vs...)
	for _, v := range vs {
		p.Moments.Add(v)
	}
	p.Reps++
}

// Collect runs up to maxReps replications of body on the engine,
// pooling their sample vectors in replication order, and consults the
// early-stop predicate at fixed Batch boundaries: after each complete
// batch, enough is called with the pool so far and collection stops as
// soon as it returns true. Because batches have a fixed size and the
// fold order is fixed, the set of replications a run consumes depends
// only on the bodies' outputs — two machines with different core
// counts collect identical pools.
func (e Engine) Collect(maxReps int, body func(rep int) ([]float64, error), enough func(*Pool) bool) (*Pool, error) {
	pool := &Pool{}
	if maxReps <= 0 {
		return pool, nil
	}
	b := e.batch()
	for start := 0; start < maxReps; start += b {
		n := b
		if start+n > maxReps {
			n = maxReps - start
		}
		err := Run(e, n,
			func(rep int) ([]float64, error) { return body(start + rep) },
			func(_ int, vs []float64) error { pool.add(vs); return nil })
		if err != nil {
			return nil, err
		}
		if enough != nil && enough(pool) {
			break
		}
	}
	return pool, nil
}
