package conformance

import (
	"math"

	"rejuv/internal/core"
	"rejuv/internal/xrand"
)

// Synthetic observation traces for the metamorphic laws. All traces are
// normal because the laws are about detector mechanics, not about the
// response-time law — the oracles own distributional fidelity. Every
// trace is a pure function of its seed.

// traceStream is the xrand stream id reserved for law traces, distinct
// from the simulation streams the oracles use.
const traceStream = 7001

// SteadyTrace returns n observations of healthy behaviour:
// iid N(base.Mean, base.StdDev) draws from the pinned seed.
func SteadyTrace(seed uint64, n int, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = base.Mean + base.StdDev*r.Norm()
	}
	return xs
}

// RampTrace returns n observations whose mean degrades linearly after
// the onset index: observation i > onset has mean
// base.Mean + slope*(i-onset)*base.StdDev. This is the gradual-aging
// shape behind the paper's Tables 2-4, with slope controlling how many
// observations one extra baseline standard deviation takes.
func RampTrace(seed uint64, n, onset int, slope float64, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		mean := base.Mean
		if i > onset {
			mean += slope * float64(i-onset) * base.StdDev
		}
		xs[i] = mean + base.StdDev*r.Norm()
	}
	return xs
}

// StepTrace returns n observations whose mean jumps by
// shift*base.StdDev at the onset index and stays there — the abrupt
// degradation shape.
func StepTrace(seed uint64, n, onset int, shift float64, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		mean := base.Mean
		if i >= onset {
			mean += shift * base.StdDev
		}
		xs[i] = mean + base.StdDev*r.Norm()
	}
	return xs
}

// Non-stationary workload shapes for the shift-conformance laws. These
// model legitimate workload movement — the mean wanders because the
// arrival process changed, not because the software aged — so an
// adaptive-baseline detector should rebaseline through them rather than
// condemn the system.

// DiurnalTrace returns n observations whose mean follows a raised
// cosine of the given amplitude (in baseline standard deviations) and
// period (in observations): mean(i) = base.Mean +
// amp*sd*(1-cos(2*pi*i/period))/2, cycling between the baseline and
// its shifted peak — the day/night arrival-rate cycle.
func DiurnalTrace(seed uint64, n int, amp float64, period int, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		lift := amp * base.StdDev * (1 - math.Cos(2*math.Pi*float64(i)/float64(period))) / 2
		xs[i] = base.Mean + lift + base.StdDev*r.Norm()
	}
	return xs
}

// FlashCrowdTrace returns n observations whose mean jumps by
// shift*base.StdDev at the onset index and drops back after dur
// observations — a flash crowd arriving and dispersing.
func FlashCrowdTrace(seed uint64, n, onset, dur int, shift float64, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		mean := base.Mean
		if i >= onset && i < onset+dur {
			mean += shift * base.StdDev
		}
		xs[i] = mean + base.StdDev*r.Norm()
	}
	return xs
}

// RampPlateauTrace returns n observations whose mean climbs linearly
// from the onset index to shift*base.StdDev over rampLen observations
// and then holds — a workload ramping to a new sustained level rather
// than degrading without bound.
func RampPlateauTrace(seed uint64, n, onset, rampLen int, shift float64, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		mean := base.Mean
		if i > onset {
			frac := float64(i-onset) / float64(rampLen)
			if frac > 1 {
				frac = 1
			}
			mean += shift * frac * base.StdDev
		}
		xs[i] = mean + base.StdDev*r.Norm()
	}
	return xs
}

// Affine returns the trace mapped through x -> a*x + b.
func Affine(xs []float64, a, b float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = a*x + b
	}
	return ys
}
