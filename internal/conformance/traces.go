package conformance

import (
	"rejuv/internal/core"
	"rejuv/internal/xrand"
)

// Synthetic observation traces for the metamorphic laws. All traces are
// normal because the laws are about detector mechanics, not about the
// response-time law — the oracles own distributional fidelity. Every
// trace is a pure function of its seed.

// traceStream is the xrand stream id reserved for law traces, distinct
// from the simulation streams the oracles use.
const traceStream = 7001

// SteadyTrace returns n observations of healthy behaviour:
// iid N(base.Mean, base.StdDev) draws from the pinned seed.
func SteadyTrace(seed uint64, n int, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = base.Mean + base.StdDev*r.Norm()
	}
	return xs
}

// RampTrace returns n observations whose mean degrades linearly after
// the onset index: observation i > onset has mean
// base.Mean + slope*(i-onset)*base.StdDev. This is the gradual-aging
// shape behind the paper's Tables 2-4, with slope controlling how many
// observations one extra baseline standard deviation takes.
func RampTrace(seed uint64, n, onset int, slope float64, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		mean := base.Mean
		if i > onset {
			mean += slope * float64(i-onset) * base.StdDev
		}
		xs[i] = mean + base.StdDev*r.Norm()
	}
	return xs
}

// StepTrace returns n observations whose mean jumps by
// shift*base.StdDev at the onset index and stays there — the abrupt
// degradation shape.
func StepTrace(seed uint64, n, onset int, shift float64, base core.Baseline) []float64 {
	r := xrand.NewStream(seed, traceStream)
	xs := make([]float64, n)
	for i := range xs {
		mean := base.Mean
		if i >= onset {
			mean += shift * base.StdDev
		}
		xs[i] = mean + base.StdDev*r.Norm()
	}
	return xs
}

// Affine returns the trace mapped through x -> a*x + b.
func Affine(xs []float64, a, b float64) []float64 {
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = a*x + b
	}
	return ys
}
