package conformance

import (
	"math"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/stats"
	"rejuv/internal/xrand"
)

// Metamorphic laws: transformation properties every detector family
// must satisfy, each verified on pinned traces and — through
// RunJournaled — doubling as a flight-recorder replay determinism
// proof. The laws compare discrete decision fields (Triggered,
// Evaluated, Level, Fill); float fields may differ in the last ulp
// across algebraically equal computations.

// lawBase is the paper's healthy baseline (mean 5 s, stddev 5 s).
var lawBase = core.Baseline{Mean: 5, StdDev: 5}

// mustIdentical asserts a replay determinism proof.
func mustIdentical(t *testing.T, name string, rep interface{ Identical() bool }) {
	t.Helper()
	if !rep.Identical() {
		t.Fatalf("%s: journal replay diverged", name)
	}
}

// lawSeeds returns the pinned seed matrix, reduced under -short.
func lawSeeds() []uint64 {
	if testing.Short() {
		return []uint64{11}
	}
	return []uint64{11, 12, 13}
}

// TestLawScaleInvariance: affine-transforming observations and baseline
// together (x -> a*x + b, a > 0) must leave the discrete decision
// stream unchanged for every family — detectors are scale-free in the
// units of the metric. Both runs are journaled and replay-verified.
func TestLawScaleInvariance(t *testing.T) {
	transforms := [][2]float64{{1000, 250}, {0.001, -3}}
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			for _, seed := range lawSeeds() {
				trace := RampTrace(seed, 900, 150, 0.02, lawBase)
				ref, rep, err := RunJournaled(fam.Name, fam.New, trace)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				if FirstTrigger(ref) < 0 {
					t.Fatalf("seed %d: reference run never triggered; law is vacuous", seed)
				}
				for _, ab := range transforms {
					a, b := ab[0], ab[1]
					scaled, rep, err := RunJournaled(fam.Name, fam.Scaled(a, b), Affine(trace, a, b))
					if err != nil {
						t.Fatal(err)
					}
					mustIdentical(t, fam.Name, rep)
					if i, same := SameDecisions(ref, scaled, false); !same {
						t.Fatalf("seed %d transform (%v,%v): decision streams diverge at observation %d: %+v vs %+v",
							seed, a, b, i, ref[i], scaled[i])
					}
				}
			}
		})
	}
}

// evaluationBlocks returns the half-open index ranges [start, end] of
// observations consumed by each evaluated sample, read off a decision
// stream: a block ends at each Evaluated decision and the next block
// starts right after it.
func evaluationBlocks(ds []core.Decision) [][2]int {
	var blocks [][2]int
	start := 0
	for i, d := range ds {
		if d.Evaluated {
			blocks = append(blocks, [2]int{start, i + 1})
			start = i + 1
		}
	}
	return blocks
}

// TestLawPermutationInvariance: for sample-window detectors (SRAA,
// SARAA, CLTA), shuffling observations inside one evaluation window
// leaves the discrete decision stream unchanged — the window mean is
// permutation-symmetric, and no state updates happen mid-window.
func TestLawPermutationInvariance(t *testing.T) {
	for _, fam := range Families(lawBase) {
		if fam.Windowed < 2 || fam.Stateful {
			continue // per-observation or cross-window detectors are out of scope
		}
		t.Run(fam.Name, func(t *testing.T) {
			for _, seed := range lawSeeds() {
				trace := RampTrace(seed, 600, 150, 0.01, lawBase)
				ref, rep, err := RunJournaled(fam.Name, fam.New, trace)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				blocks := evaluationBlocks(ref)
				if len(blocks) == 0 {
					t.Fatalf("seed %d: no evaluated samples; law is vacuous", seed)
				}
				// Shuffle inside every window with a pinned permutation
				// stream, then rerun.
				r := xrand.NewStream(seed, 4242)
				permuted := append([]float64(nil), trace...)
				for _, blk := range blocks {
					n := blk[1] - blk[0]
					if n < 2 {
						continue
					}
					p := r.Perm(n)
					for i, j := range p {
						permuted[blk[0]+i] = trace[blk[0]+j]
					}
				}
				got, rep, err := RunJournaled(fam.Name, fam.New, permuted)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				if i, same := SameDecisions(ref, got, false); !same {
					t.Fatalf("seed %d: decision streams diverge at observation %d after in-window permutation: %+v vs %+v",
						seed, i, ref[i], got[i])
				}
				// Sample means agree up to floating-point reassociation.
				for i := range ref {
					if ref[i].Evaluated && math.Abs(ref[i].SampleMean-got[i].SampleMean) > 1e-9*(1+math.Abs(ref[i].SampleMean)) {
						t.Fatalf("seed %d: sample mean at %d moved from %v to %v under permutation",
							seed, i, ref[i].SampleMean, got[i].SampleMean)
					}
				}
			}
		})
	}
}

// TestLawMonotoneSensitivity: a pointwise-worse trace (every
// observation at least as large) must not trigger later than the
// original, for every family. The degradation bump starts well past
// the adaptive warmup so learned baselines coincide.
func TestLawMonotoneSensitivity(t *testing.T) {
	const onset = 200
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			for _, seed := range lawSeeds() {
				trace := RampTrace(seed, 900, onset, 0.008, lawBase)
				worse := append([]float64(nil), trace...)
				for i := onset; i < len(worse); i++ {
					worse[i] += 1.5 * lawBase.StdDev
				}
				ref, rep, err := RunJournaled(fam.Name, fam.New, trace)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				got, rep, err := RunJournaled(fam.Name, fam.New, worse)
				if err != nil {
					t.Fatal(err)
				}
				mustIdentical(t, fam.Name, rep)
				iRef, iWorse := FirstTrigger(ref), FirstTrigger(got)
				if iWorse < 0 {
					t.Fatalf("seed %d: pointwise-worse trace never triggered", seed)
				}
				if iRef >= 0 && iWorse > iRef {
					t.Fatalf("seed %d: worse trace triggered at %d, original already at %d", seed, iWorse, iRef)
				}
			}
		})
	}
}

// TestLawSARAAAccelerates: with identical bucket geometry and initial
// sample size, SARAA must trigger no later (in observations) than SRAA
// on degrading traces — shrinking samples and lowered per-level targets
// are an acceleration, the core claim behind the paper's Tables 2-4.
func TestLawSARAAAccelerates(t *testing.T) {
	newSRAA := func() (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{SampleSize: 6, Buckets: 5, Depth: 3, Baseline: lawBase})
	}
	newSARAA := func() (core.Detector, error) {
		return core.NewSARAA(core.SARAAConfig{InitialSampleSize: 6, Buckets: 5, Depth: 3, Baseline: lawBase})
	}
	for _, slope := range []float64{0.002, 0.005, 0.01, 0.02} {
		for _, seed := range lawSeeds() {
			n := 2000 + int(3/slope)
			trace := RampTrace(seed, n, 100, slope, lawBase)
			sraa, rep, err := RunJournaled("SRAA", newSRAA, trace)
			if err != nil {
				t.Fatal(err)
			}
			mustIdentical(t, "SRAA", rep)
			saraa, rep, err := RunJournaled("SARAA", newSARAA, trace)
			if err != nil {
				t.Fatal(err)
			}
			mustIdentical(t, "SARAA", rep)
			iSRAA, iSARAA := FirstTrigger(sraa), FirstTrigger(saraa)
			if iSARAA < 0 {
				t.Fatalf("slope %v seed %d: SARAA never triggered", slope, seed)
			}
			if iSRAA >= 0 && iSARAA > iSRAA {
				t.Errorf("slope %v seed %d: SARAA triggered at %d, after SRAA at %d", slope, seed, iSARAA, iSRAA)
			}
		}
	}
}

// TestLawCLTAQuantile pins CLTA's quantile arithmetic three ways: the
// target formula mu + N*sigma/sqrt(n) against an independent
// computation, the nominal false-alarm probability against 1 - Phi(N),
// and the empirical per-sample trigger rate on healthy normal traffic
// against its binomial confidence band at the suite's Bonferroni-
// corrected level (exact, because the mean of n exact normals is
// exactly normal).
func TestLawCLTAQuantile(t *testing.T) {
	const n = 10
	q := stats.StdNormQuantile(0.975)
	det, err := core.NewCLTA(core.CLTAConfig{SampleSize: n, Quantile: q, Baseline: lawBase})
	if err != nil {
		t.Fatal(err)
	}
	wantTarget := lawBase.Mean + q*lawBase.StdDev/math.Sqrt(n)
	if math.Abs(det.Target()-wantTarget) > 1e-12 {
		t.Fatalf("CLTA target %v, want %v", det.Target(), wantTarget)
	}
	wantFA := 1 - stats.NormCDF(q, 0, 1)
	if math.Abs(det.FalseAlarmProbability()-wantFA) > 1e-12 {
		t.Fatalf("CLTA false-alarm probability %v, want 1-Phi(N) = %v", det.FalseAlarmProbability(), wantFA)
	}

	samples := 5_000
	if testing.Short() {
		samples = 1_500
	}
	trace := SteadyTrace(31, samples*n, lawBase)
	ds, rep, err := RunJournaled("CLTA", func() (core.Detector, error) {
		return core.NewCLTA(core.CLTAConfig{SampleSize: n, Quantile: q, Baseline: lawBase})
	}, trace)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, "CLTA", rep)
	evals, trigs := 0, 0
	for _, d := range ds {
		if d.Evaluated {
			evals++
		}
		if d.Triggered {
			trigs++
		}
	}
	if evals != samples {
		t.Fatalf("evaluated %d samples, want %d", evals, samples)
	}
	alpha := mustAlpha(t)
	z := stats.StdNormQuantile(1 - alpha/2)
	rate := float64(trigs) / float64(evals)
	band := z * math.Sqrt(wantFA*(1-wantFA)/float64(evals))
	t.Logf("CLTA empirical false-alarm rate %.4f vs nominal %.4f ± %.4f (%d/%d, alpha=%.2e)", rate, wantFA, band, trigs, evals, alpha)
	if math.Abs(rate-wantFA) > band {
		t.Fatalf("CLTA empirical false-alarm rate %v outside %v ± %v (%d/%d)", rate, wantFA, band, trigs, evals)
	}
}
