package conformance

import (
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/faults"
)

// Fault laws: robustness properties every detector family must satisfy
// when its observation stream is corrupted by each fault class of
// internal/faults, behind the hardened pipeline's hygiene gate. All
// laws are seed-pinned and deterministic — no Alpha() draws — so they
// never touch the statistical test budget.

// faultLawSeed is the pinned seed of the fault laws. One seed suffices:
// the laws are exact determinism and boundedness claims, not
// statistical estimates.
const faultLawSeed = 31

// parseScenario parses a scenario's spec, failing the test on error so
// the matrix cannot silently go vacuous.
func parseScenario(t *testing.T, sc FaultScenario) faults.Spec {
	t.Helper()
	spec, err := faults.ParseSpec(sc.Spec)
	if err != nil {
		t.Fatalf("scenario %s: %v", sc.Name, err)
	}
	return spec
}

// TestFaultLawMatrix runs every fault class against every detector
// family on a healthy steady trace under the reject hygiene policy and
// asserts the acceptance criteria of the hardened pipeline: the run
// survives (no panic), the detector's internals stay finite, the
// false-trigger count stays within a small bound of the clean run, and
// the faulted journal replays byte-identically.
func TestFaultLawMatrix(t *testing.T) {
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			trace := SteadyTrace(faultLawSeed, 800, lawBase)
			clean, err := RunFaulted(fam.Name, fam.New, trace, faults.Spec{}, core.HygieneReject, faultLawSeed)
			if err != nil {
				t.Fatal(err)
			}
			for _, sc := range FaultScenarios() {
				t.Run(sc.Name, func(t *testing.T) {
					spec := parseScenario(t, sc)
					res, err := RunFaulted(fam.Name, fam.New, trace, spec, core.HygieneReject, faultLawSeed)
					if err != nil {
						t.Fatal(err)
					}
					if res.Injected == 0 {
						t.Fatalf("injector never fired; law is vacuous")
					}
					if !res.Finite {
						t.Errorf("detector internals went non-finite")
					}
					if !res.Replay.Identical() {
						t.Errorf("faulted journal replay diverged")
					}
					// A corrupted stream on healthy data must not make the
					// detector meaningfully jumpier than the clean stream:
					// the false-trigger excess is bounded by a small
					// constant, not proportional to the injection count.
					if res.Triggers > clean.Triggers+2 {
						t.Errorf("false triggers = %d, clean = %d; fault class amplified false alarms",
							res.Triggers, clean.Triggers)
					}
				})
			}
		})
	}
}

// TestFaultLawMissedTriggers runs every fault class against every
// family on a degrading ramp and asserts the detector still fires: a
// fault class may delay detection but must not suppress it. The ramp is
// the scale-invariance law's reference shape, known to trigger every
// family when clean.
func TestFaultLawMissedTriggers(t *testing.T) {
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			trace := RampTrace(faultLawSeed, 900, 150, 0.02, lawBase)
			clean, err := RunFaulted(fam.Name, fam.New, trace, faults.Spec{}, core.HygieneReject, faultLawSeed)
			if err != nil {
				t.Fatal(err)
			}
			cleanFirst := FirstTrigger(clean.Decisions)
			if cleanFirst < 0 {
				t.Fatalf("clean ramp never triggered; law is vacuous")
			}
			for _, sc := range FaultScenarios() {
				t.Run(sc.Name, func(t *testing.T) {
					spec := parseScenario(t, sc)
					res, err := RunFaulted(fam.Name, fam.New, trace, spec, core.HygieneReject, faultLawSeed)
					if err != nil {
						t.Fatal(err)
					}
					first := FirstTrigger(res.Decisions)
					if first < 0 {
						t.Fatalf("degradation missed: clean run triggered at %d, faulted run never did", cleanFirst)
					}
					// Bounded delay: the faulted detection may slip, but not
					// past the end of the ramp's worth of extra headroom.
					if first > cleanFirst+300 {
						t.Errorf("detection slipped from %d to %d under faults", cleanFirst, first)
					}
				})
			}
		})
	}
}

// TestFaultLawDeterminism pins that a faulted run is a pure function of
// its seed: same seed, same trace, same spec — identical decision
// stream and identical injection count.
func TestFaultLawDeterminism(t *testing.T) {
	spec, err := faults.ParseSpec("nan:p=0.05;drop:p=0.05;reorder:p=0.1")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			trace := SteadyTrace(faultLawSeed, 600, lawBase)
			a, err := RunFaulted(fam.Name, fam.New, trace, spec, core.HygieneReject, faultLawSeed)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunFaulted(fam.Name, fam.New, trace, spec, core.HygieneReject, faultLawSeed)
			if err != nil {
				t.Fatal(err)
			}
			if a.Injected != b.Injected || a.Rejected != b.Rejected {
				t.Fatalf("same seed injected %d/%d vs %d/%d faults", a.Injected, a.Rejected, b.Injected, b.Rejected)
			}
			if i, ok := SameDecisions(a.Decisions, b.Decisions, true); !ok {
				t.Fatalf("same seed diverged at decision %d", i)
			}
		})
	}
}

// TestFaultLawHygieneOffSurvives pins the no-panic floor with the
// hygiene gate disabled: non-finite observations reach the detectors
// raw, and while the decisions are then unspecified, the run must not
// panic — the adaptive family in particular must restart learning
// rather than crash on a poisoned warmup.
func TestFaultLawHygieneOffSurvives(t *testing.T) {
	spec, err := faults.ParseSpec("nan:p=0.1;inf:p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range Families(lawBase) {
		t.Run(fam.Name, func(t *testing.T) {
			trace := SteadyTrace(faultLawSeed, 400, lawBase)
			det, err := fam.New()
			if err != nil {
				t.Fatal(err)
			}
			inj := faults.NewInjector(spec, faultLawSeed, faultLawStream)
			for _, x := range trace {
				for _, v := range inj.Apply(x) {
					if d := det.Observe(v); d.Triggered {
						det.Reset()
					}
				}
			}
		})
	}
}
