package conformance

import (
	"bytes"
	"math"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
	"rejuv/internal/journal"
	"rejuv/internal/sched"
)

// Scheduler-conformance laws: behavioural guarantees of the cost-aware
// scheduling layer (internal/sched plus the cluster simulation that
// drives it). The laws are exact, seed-pinned claims:
//
//   - the capacity budget is never exceeded, even when the request
//     stream comes from detectors fed through every fault class of the
//     pinned fault matrix;
//   - no entry starves past the max-defer latch — deadline and
//     capacity-floor windows yield to the latch, and the queue drains;
//   - partial rejuvenation is monotone in ρ: a larger rollback
//     fraction never leaves the replica with a worse (larger)
//     post-action virtual age;
//   - on the pinned leaky-GC regime the scheduled policy's transaction
//     loss is bounded by the always-full-restart baseline, and the
//     journaled schedule replays byte-identically.

// schedLawSeed pins the scheduler laws' workloads and fault draws.
const schedLawSeed = 21

// schedDriver replays a request script against a bare Governor with a
// deterministic completion process: every dispatched action completes
// successfully after its pause. It checks the capacity budget at every
// transition, not just at the end.
type schedDriver struct {
	t   *testing.T
	g   *sched.Governor
	cfg sched.Config

	now      float64
	downs    int          // concurrent down replicas per the transition stream
	pending  [][2]float64 // [completionTime, replica] sorted by insertion
	starts   int
	startMin float64
	startMax float64
	escalate int // max-defer escalations observed
}

func newSchedDriver(t *testing.T, cfg sched.Config) *schedDriver {
	t.Helper()
	g, err := sched.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &schedDriver{t: t, g: g, cfg: g.Config(), startMin: math.Inf(1), startMax: math.Inf(-1)}
}

// absorb audits one transition batch: budget invariant, pause
// bookkeeping, escalation census.
func (d *schedDriver) absorb(trs []sched.Transition) {
	for _, tr := range trs {
		switch tr.Op {
		case sched.OpStart:
			d.downs++
			if d.downs > d.cfg.MaxDown {
				d.t.Fatalf("t=%.6g: %d replicas down, budget %d — capacity law violated", tr.Time, d.downs, d.cfg.MaxDown)
			}
			d.starts++
			if tr.Time < d.startMin {
				d.startMin = tr.Time
			}
			if tr.Time > d.startMax {
				d.startMax = tr.Time
			}
			d.pending = append(d.pending, [2]float64{tr.Time + tr.Pause, float64(tr.Replica)})
		case sched.OpComplete:
			d.downs--
		case sched.OpCoalesce:
			if tr.Reason == sched.ReasonMaxDefer {
				d.escalate++
			}
		}
	}
}

// dueCompletion pops the earliest pending completion at or before t, or
// returns a negative replica when none is due.
func (d *schedDriver) dueCompletion(t float64) (float64, int) {
	best := -1
	for i, p := range d.pending {
		if p[0] <= t && (best < 0 || p[0] < d.pending[best][0]) {
			best = i
		}
	}
	if best < 0 {
		return 0, -1
	}
	p := d.pending[best]
	d.pending = append(d.pending[:best], d.pending[best+1:]...)
	return p[0], int(p[1])
}

// request advances the driver to time t and feeds one request.
func (d *schedDriver) request(t float64, replica, level, fill int, deadline float64, tid uint64) {
	d.advance(t)
	d.absorb(d.g.Request(t, replica, level, fill, deadline, tid))
}

// advance completes every action due by t, in completion order.
func (d *schedDriver) advance(t float64) {
	for {
		ct, r := d.dueCompletion(t)
		if r < 0 {
			break
		}
		d.absorb(d.g.Complete(ct, r, true))
	}
	d.now = t
}

// drain runs the event loop (completions and NextWake ticks) until the
// governor is quiescent, with an iteration bound so a liveness bug
// fails the test instead of hanging it.
func (d *schedDriver) drain() {
	for i := 0; i < 100000; i++ {
		if d.g.Queued() == 0 && len(d.pending) == 0 {
			return
		}
		next := math.Inf(1)
		for _, p := range d.pending {
			if p[0] < next {
				next = p[0]
			}
		}
		if w := d.g.NextWake(d.now); w < next {
			next = w
		}
		if math.IsInf(next, 1) {
			// Nothing due and no wake: the only legal way forward is a
			// queued entry blocked purely on budget with nothing down —
			// that would be a liveness bug.
			d.t.Fatalf("governor wedged: %d queued, %d pending completions, no wake", d.g.Queued(), len(d.pending))
		}
		if next < d.now {
			next = d.now
		}
		d.advance(next)
		d.absorb(d.g.Tick(next))
	}
	d.t.Fatalf("drain did not converge: %d queued, %d pending", d.g.Queued(), len(d.pending))
}

// TestSchedLawBudgetUnderFaults: for every fault class of the pinned
// matrix, the decision stream of a faulted SRAA run on a degrading
// trace is replayed as a rejuvenation request script against the
// cost-aware policy. The capacity budget must hold at every transition,
// the queue must fully drain (graceful degradation: corrupted trigger
// patterns cause no starvation), and the admission accounting must
// conserve requests — every request is enqueued, coalesced, or
// explicitly refused, never silently dropped.
func TestSchedLawBudgetUnderFaults(t *testing.T) {
	var sraa Family
	for _, fam := range Families(lawBase) {
		if fam.Name == "SRAA" {
			sraa = fam
		}
	}
	const replicas = 6
	trace := RampTrace(schedLawSeed, 900, 150, 0.02, lawBase)
	for _, sc := range FaultScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			spec := parseScenario(t, sc)
			res, err := RunFaulted(sraa.Name, sraa.New, trace, spec, core.HygieneReject, schedLawSeed)
			if err != nil {
				t.Fatal(err)
			}
			if res.Injected == 0 {
				t.Fatalf("injector never fired; law is vacuous")
			}
			d := newSchedDriver(t, sched.Scheduled(replicas, 30))
			for i, dec := range res.Decisions {
				if !dec.Evaluated || dec.Level == 0 {
					continue
				}
				now := float64(i)
				d.request(now, i%replicas, dec.Level, dec.Fill, now+20, uint64(i+1))
			}
			d.drain()

			st := d.g.Stats()
			if st.Requests < 10 || st.Starts == 0 {
				t.Fatalf("only %d requests, %d starts — script too thin for the law", st.Requests, st.Starts)
			}
			if got := d.g.MaxDownSeen(0); got > d.cfg.MaxDown {
				t.Errorf("high-water mark %d exceeds budget %d", got, d.cfg.MaxDown)
			}
			if in, out := st.Requests+st.Requeues, st.Enqueued+st.Coalesced+st.Saturated+st.Refused; in != out {
				t.Errorf("admission accounting leaks: %d requests+requeues, %d accounted", in, out)
			}
			if d.g.Queued() != 0 || d.g.Down(0) != 0 {
				t.Errorf("not quiescent after drain: %d queued, %d down", d.g.Queued(), d.g.Down(0))
			}
		})
	}
}

// TestSchedLawNoStarvationPastMaxDefer: entries blocked by both a QoS
// deadline and the capacity floor must still start once they cross the
// max-defer latch — the latch escalates them past every deferral
// window, leaving only the capacity budget, so the worst-case wait is
// MaxDefer plus the serial drain of the queue ahead of them.
func TestSchedLawNoStarvationPastMaxDefer(t *testing.T) {
	const (
		fullPause = 10.0
		maxDefer  = 50.0
		waiting   = 3
	)
	// CapacityFloor 0.9 on four replicas blocks every start (3 in
	// service < 0.9×4 = 3.6) and the deadlines sit far past the latch,
	// so only escalation can ever dispatch these entries.
	d := newSchedDriver(t, sched.Config{
		Replicas: 4, MaxDown: 1, FullPause: fullPause,
		MaxDefer: maxDefer, CapacityFloor: 0.9, Tiers: sched.FullRestartTiers(),
	})
	for r := 0; r < waiting; r++ {
		d.request(0, r, 1, 1, 1000, uint64(r+1))
	}
	if w := d.g.NextWake(0); w != maxDefer {
		t.Fatalf("NextWake = %.6g, want the max-defer latch at %.6g", w, maxDefer)
	}
	if d.starts != 0 {
		t.Fatalf("%d starts before any window expired", d.starts)
	}
	d.drain()

	if d.starts != waiting {
		t.Fatalf("%d of %d entries ever started", d.starts, waiting)
	}
	if d.escalate != waiting {
		t.Errorf("%d max-defer escalations, want %d", d.escalate, waiting)
	}
	if d.startMin < maxDefer {
		t.Errorf("a start at t=%.6g beat the deadline window without escalation", d.startMin)
	}
	// Serial drain under MaxDown 1: the last escalated entry starts by
	// MaxDefer + (waiting−1) pauses; anything later is starvation.
	if bound := maxDefer + float64(waiting-1)*fullPause; d.startMax > bound {
		t.Errorf("last start at t=%.6g, starvation bound %.6g", d.startMax, bound)
	}
}

// rhoFirstAction runs the pinned leaky single-host cluster under a
// one-tier policy with the given rollback fraction and returns the
// host's virtual age immediately after its first rejuvenation action,
// plus whether any action happened at all. Up to the first action the
// runs are identical — same seed, same detector, no pauses taken yet —
// so the post-action ages are directly comparable across ρ.
func rhoFirstAction(t *testing.T, rho float64) (float64, bool) {
	t.Helper()
	policy := sched.Config{
		Replicas: 1, MaxDown: 1, FullPause: 30, MaxDefer: -1,
		Tiers: []sched.Tier{{Name: "law", Rho: rho, PauseFrac: 0.5, MinSeverity: 0}},
	}
	c, err := ecommerce.NewCluster(ecommerce.ClusterConfig{
		Hosts:        1,
		Host:         ecommerce.Config{LeakyGC: true},
		ArrivalRate:  1.0,
		Scheduler:    &policy,
		Transactions: 20000,
		Seed:         schedLawSeed,
	}, func(int) (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: lawBase})
	})
	if err != nil {
		t.Fatal(err)
	}
	age, acted := 0.0, false
	c.OnRejuvenate = func(_ float64, host, _ int) {
		if !acted {
			acted = true
			age = c.VirtualAge(host)
		}
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return age, acted
}

// TestSchedLawRhoMonotonicity: with identical pre-action trajectories,
// a larger rollback fraction never yields a worse post-action virtual
// age — ρ = 1 lands exactly at zero ("good as new") while smaller ρ
// retain part of the accumulated age, ordered inversely to ρ.
func TestSchedLawRhoMonotonicity(t *testing.T) {
	rhos := []float64{0.25, 0.5, 1}
	ages := make([]float64, len(rhos))
	for i, rho := range rhos {
		age, acted := rhoFirstAction(t, rho)
		if !acted {
			t.Fatalf("rho=%.4g: cluster never rejuvenated; law is vacuous", rho)
		}
		ages[i] = age
	}
	for i := 1; i < len(rhos); i++ {
		if ages[i] > ages[i-1] {
			t.Errorf("rho=%.4g left virtual age %.6g, worse than %.6g at rho=%.4g",
				rhos[i], ages[i], ages[i-1], rhos[i-1])
		}
	}
	if !(ages[0] > 0) {
		t.Errorf("rho=%.4g should retain positive virtual age, got %.6g", rhos[0], ages[0])
	}
	if ages[len(ages)-1] != 0 { //lint:allow floatcmp exact reset to zero
		t.Errorf("rho=1 must reset virtual age to zero, got %.6g", ages[len(ages)-1])
	}
}

// TestSchedLawBoundedLoss: on the pinned leaky-GC regime the scheduled
// policy's transaction loss must not exceed the always-full-restart
// baseline at the same detection config, its capacity budget must hold,
// and the journaled schedule must replay byte-identically — the
// acceptance criterion of the scheduler, spelled as a law.
func TestSchedLawBoundedLoss(t *testing.T) {
	const (
		hosts = 4
		txns  = 30000
		pause = 30.0
	)
	factory := func(int) (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: lawBase})
	}
	run := func(policy sched.Config, scheduled bool, jw *journal.Writer) (ecommerce.ClusterResult, *ecommerce.Cluster) {
		cfg := ecommerce.ClusterConfig{
			Hosts:        hosts,
			Host:         ecommerce.Config{LeakyGC: true},
			ArrivalRate:  hosts * 5.0 * 0.2,
			Routing:      ecommerce.RouteLeastActive,
			Scheduler:    &policy,
			Transactions: txns,
			Seed:         schedLawSeed,
		}
		if scheduled {
			cfg.ProactiveLevel = 3
			cfg.DeadlineAware = true
		}
		c, err := ecommerce.NewCluster(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		if jw != nil {
			c.Journal(jw)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, c
	}

	full, _ := run(sched.OneDown(hosts, pause), false, nil)
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "sched-law", Seed: schedLawSeed})
	part, c := run(sched.Scheduled(hosts, pause), true, jw)
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}

	if full.Rejuvenations == 0 || part.Rejuvenations == 0 {
		t.Fatalf("rejuvenations full=%d scheduled=%d; regime too tame for the law",
			full.Rejuvenations, part.Rejuvenations)
	}
	if part.Partial == 0 {
		t.Errorf("scheduled policy dispatched no partial actions")
	}
	if part.Lost > full.Lost {
		t.Errorf("scheduled policy lost %d transactions, full-restart baseline %d — loss not bounded",
			part.Lost, full.Lost)
	}
	policy := c.SchedulerConfig()
	if got := c.MaxDownSeen(); got > policy.MaxDown {
		t.Errorf("live high-water mark %d exceeds budget %d", got, policy.MaxDown)
	}

	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	report, err := journal.ReplaySched(jr, policy)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Identical() {
		t.Fatalf("scheduled journal replay diverged: %v", report.Mismatch)
	}
	if report.Starts == 0 {
		t.Errorf("replay saw no starts; journal is missing the schedule")
	}
	for grp, down := range report.MaxDownSeen {
		if down > policy.MaxDown {
			t.Errorf("replay group %d high-water %d exceeds budget %d", grp, down, policy.MaxDown)
		}
	}
}
