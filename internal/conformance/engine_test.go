package conformance

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"rejuv/internal/xrand"
)

// repValues is a deterministic per-replication body: a pinned stream
// per rep index, so any execution order yields the same per-rep data.
func repValues(rep int) ([]float64, error) {
	r := xrand.NewStream(99, uint64(rep)+1)
	vs := make([]float64, 50)
	for i := range vs {
		vs[i] = r.Norm()
	}
	return vs, nil
}

func poolBits(p *Pool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "reps=%d n=%d mean=%x var=%x;", p.Reps, len(p.Values), math.Float64bits(p.Moments.Mean()), math.Float64bits(p.Moments.Var()))
	for _, v := range p.Values {
		fmt.Fprintf(&sb, "%x,", math.Float64bits(v))
	}
	return sb.String()
}

// TestEngineDeterministicAcrossWorkers is the engine's core guarantee:
// the pooled values and streaming moments are bit-identical no matter
// how many workers executed the bodies.
func TestEngineDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, 16} {
		e := Engine{Workers: workers}
		pool := &Pool{}
		err := Run(e, 37, repValues, func(_ int, vs []float64) error {
			pool.add(vs)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := poolBits(pool)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d produced a different pool than workers=1", workers)
		}
	}
}

// TestCollectDeterministicAcrossWorkers repeats the guarantee for the
// early-stopping Collect loop: the stop decision happens at fixed batch
// boundaries, so the collected pool is worker-count independent too.
func TestCollectDeterministicAcrossWorkers(t *testing.T) {
	enough := func(p *Pool) bool { return len(p.Values) >= 400 }
	var want string
	var wantReps int
	for _, workers := range []int{1, 3, 16} {
		e := Engine{Workers: workers, Batch: 4}
		pool, err := e.Collect(100, repValues, enough)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := poolBits(pool)
		if want == "" {
			want, wantReps = got, pool.Reps
			continue
		}
		if got != want {
			t.Fatalf("workers=%d collected a different pool than workers=1", workers)
		}
		if pool.Reps != wantReps {
			t.Fatalf("workers=%d stopped after %d reps, workers=1 after %d", workers, pool.Reps, wantReps)
		}
	}
	// 50 values per rep, threshold 400, batch 4: the rule is consulted
	// at 4 reps (200 values) and 8 reps (400 values) — it must stop at
	// exactly 8 replications, never mid-batch.
	e := Engine{Workers: 2, Batch: 4}
	pool, err := e.Collect(100, repValues, enough)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Reps != 8 {
		t.Fatalf("early stop consumed %d reps, want 8 (batch-aligned)", pool.Reps)
	}
}

// TestRunFoldsInReplicationOrder pins the ordered-fold contract
// directly: fold sees indexes 0,1,2,... regardless of completion order.
func TestRunFoldsInReplicationOrder(t *testing.T) {
	var seen []int
	err := Run(Engine{Workers: 8}, 100,
		func(rep int) (int, error) { return rep * rep, nil },
		func(rep int, v int) error {
			if v != rep*rep {
				return fmt.Errorf("rep %d got value %d", rep, v)
			}
			seen = append(seen, rep)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range seen {
		if rep != i {
			t.Fatalf("fold order %v is not replication order", seen)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folded %d replications, want 100", len(seen))
	}
}

// TestRunErrorCarriesReplicationIndex checks that the first failing
// replication (in replication order) is the one reported.
func TestRunErrorCarriesReplicationIndex(t *testing.T) {
	boom := errors.New("boom")
	err := Run(Engine{Workers: 4}, 20,
		func(rep int) (int, error) {
			if rep >= 7 {
				return 0, boom
			}
			return rep, nil
		},
		func(int, int) error { return nil })
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "replication 7") {
		t.Fatalf("error %q does not name replication 7", err)
	}
	// Fold errors propagate too.
	err = Run(Engine{Workers: 4}, 5,
		func(rep int) (int, error) { return rep, nil },
		func(rep int, _ int) error {
			if rep == 3 {
				return boom
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "folding replication 3") {
		t.Fatalf("fold error = %v, want folding replication 3", err)
	}
}

// TestRunZeroAndNegativeReps checks the degenerate inputs.
func TestRunZeroAndNegativeReps(t *testing.T) {
	calls := 0
	for _, reps := range []int{0, -3} {
		err := Run(Engine{}, reps,
			func(int) (int, error) { calls++; return 0, nil },
			func(int, int) error { calls++; return nil })
		if err != nil || calls != 0 {
			t.Fatalf("reps=%d: err=%v calls=%d", reps, err, calls)
		}
	}
	pool, err := Engine{}.Collect(0, repValues, nil)
	if err != nil || pool.Reps != 0 {
		t.Fatalf("Collect(0): pool=%+v err=%v", pool, err)
	}
}

// TestCollectNilEnoughRunsAll checks that without a stopping rule the
// whole budget is consumed.
func TestCollectNilEnoughRunsAll(t *testing.T) {
	pool, err := Engine{Batch: 8}.Collect(19, repValues, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Reps != 19 {
		t.Fatalf("collected %d reps, want all 19", pool.Reps)
	}
}
