package conformance

import (
	"fmt"

	"rejuv/internal/ecommerce"
	"rejuv/internal/mmc"
	"rejuv/internal/xrand"
)

// Sampling helpers for the oracle tests: simulated response times from
// the Section-3 model in its pure M/M/c configuration, and iid
// reference samples drawn from the closed-form response-time mixture.

// SimSample runs the ecommerce model with both aging mechanisms
// disabled — the configuration the paper itself uses to validate the
// simulator against Section 4.1 — and returns completed-transaction
// response times. The first warmup completions are dropped so the
// sample is (approximately) steady state, and the remainder is thinned
// to every thin-th value to dilute the serial correlation of
// consecutive sojourn times; KS/AD/chi-square p-values assume
// independent draws.
func SimSample(sys mmc.System, seed, stream uint64, txns int64, warmup int, thin int) ([]float64, error) {
	if thin < 1 {
		thin = 1
	}
	cfg := ecommerce.Config{
		ArrivalRate:     sys.Lambda,
		Servers:         sys.C,
		ServiceRate:     sys.Mu,
		DisableOverhead: true,
		DisableGC:       true,
		Transactions:    txns,
		Seed:            seed,
		Stream:          stream,
	}
	m, err := ecommerce.New(cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("conformance: building M/M/c model: %w", err)
	}
	var rts []float64
	seen := 0
	m.OnComplete = func(rt float64) {
		seen++
		if seen <= warmup {
			return
		}
		if (seen-warmup-1)%thin == 0 {
			rts = append(rts, rt)
		}
	}
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("conformance: running M/M/c model: %w", err)
	}
	if len(rts) == 0 {
		return nil, fmt.Errorf("conformance: simulation produced no post-warmup response times (txns=%d warmup=%d)", txns, warmup)
	}
	return rts, nil
}

// AnalyticSample draws n iid response times from the closed-form
// steady-state mixture of paper eq. (1), as the reference sample for
// two-sample tests against the simulator.
func AnalyticSample(sys mmc.System, seed, stream uint64, n int) []float64 {
	d := sys.RTDist()
	r := xrand.NewStream(seed, stream)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(r)
	}
	return xs
}

// BlockMeans reduces the sample to means of consecutive
// non-overlapping blocks of n values, dropping the remainder — the X̄n
// statistic of paper eq. (4) computed from data.
func BlockMeans(xs []float64, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("conformance: block size must be positive, got %d", n)
	}
	k := len(xs) / n
	if k == 0 {
		return nil, fmt.Errorf("conformance: sample of %d values has no complete block of %d", len(xs), n)
	}
	out := make([]float64, k)
	for b := 0; b < k; b++ {
		sum := 0.0
		for i := b * n; i < (b+1)*n; i++ {
			sum += xs[i]
		}
		out[b] = sum / float64(n)
	}
	return out, nil
}
