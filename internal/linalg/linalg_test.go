package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("Solve singular error = %v, want ErrSingular", err)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	// Property: for diagonally dominant A (never singular), A*(solve(A,b)) == b.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				if i != j {
					v := rng.Float64()*2 - 1
					a.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			a.Set(i, i, rowSum+1+rng.Float64())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		back := a.MulVec(x)
		for i := range b {
			if !almostEqual(back[i], b[i], 1e-9) {
				t.Fatalf("trial %d: A*x = %v, want %v", trial, back, b)
			}
		}
	}
}

func TestInverse(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	id := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(id.At(i, j), want, 1e-12) {
				t.Fatalf("A*inv(A) = %v", id)
			}
		}
	}
}

func TestMulKnownProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul = %v, want %v", got, want)
			}
		}
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mv := a.MulVec([]float64{1, 1, 1})
	if mv[0] != 6 || mv[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", mv)
	}
	vm := a.VecMul([]float64{1, 1})
	if vm[0] != 5 || vm[1] != 7 || vm[2] != 9 {
		t.Fatalf("VecMul = %v, want [5 7 9]", vm)
	}
}

func TestIdentityIsMulNeutral(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got := a.Mul(Identity(2))
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatalf("A*I = %v, want %v", got, a)
		}
	}
}

func TestSolveMatrixColumns(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 4}})
	b := FromRows([][]float64{{2, 4}, {4, 8}})
	x, err := SolveMatrix(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{1, 2}, {1, 2}})
	for i := range want.Data {
		if !almostEqual(x.Data[i], want.Data[i], 1e-12) {
			t.Fatalf("SolveMatrix = %v, want %v", x, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestScale(t *testing.T) {
	a := FromRows([][]float64{{1, -2}}).Scale(3)
	if a.At(0, 0) != 3 || a.At(0, 1) != -6 {
		t.Fatalf("Scale = %v", a)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDimensionPanics(t *testing.T) {
	tests := []struct {
		name string
		f    func()
	}{
		{"NewMatrix zero rows", func() { NewMatrix(0, 1) }},
		{"FromRows ragged", func() { FromRows([][]float64{{1}, {1, 2}}) }},
		{"Mul mismatch", func() {
			FromRows([][]float64{{1, 2}}).Mul(FromRows([][]float64{{1, 2}}))
		}},
		{"MulVec mismatch", func() { FromRows([][]float64{{1, 2}}).MulVec([]float64{1}) }},
		{"Dot mismatch", func() { Dot([]float64{1}, []float64{1, 2}) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tt.name)
				}
			}()
			tt.f()
		})
	}
}

func TestFactorNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("Factor accepted a non-square matrix")
	}
}

func TestOnes(t *testing.T) {
	v := Ones(3)
	if len(v) != 3 || v[0] != 1 || v[1] != 1 || v[2] != 1 {
		t.Fatalf("Ones(3) = %v", v)
	}
}
