// Package linalg provides the small dense linear-algebra kernel used by
// the CTMC and phase-type packages: matrices in row-major storage, LU
// factorization with partial pivoting, and linear-system solving.
//
// It exists because the analytical side of the paper — phase-type
// moments (eq. 2–3), the eq. 4 sample-mean density, CTMC steady
// states — reduces to solving Ax = b for generator-derived matrices,
// and pulling in a BLAS binding for that would break the repository's
// no-external-dependencies and bit-reproducibility constraints: this
// kernel always evaluates the same operations in the same order, so
// the derived figures are stable across platforms and library
// versions.
//
// The matrices in this repository are tiny (tens of states, one per
// queue phase), so clarity wins over blocking and vectorization:
// textbook LU with partial pivoting, O(n³) without tricks, with
// explicit singularity detection so a degenerate generator surfaces as
// an error instead of NaNs propagating into committed results.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"rejuv/internal/num"
)

// ErrSingular is returned when a factorization or solve meets a matrix
// that is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero-filled rows x cols matrix. It panics on
// non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be non-empty and
// of equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows needs at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments the element at (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Mul returns the matrix product m*other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if num.Zero(a) {
				continue
			}
			row := other.Data[k*other.Cols : (k+1)*other.Cols]
			outRow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, b := range row {
				outRow[j] += a * b
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d",
			m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns the vector-matrix product x*m (x treated as a row vector).
func (m *Matrix) VecMul(x []float64) []float64 {
	if m.Rows != len(x) {
		panic(fmt.Sprintf("linalg: VecMul dimension mismatch %d * %dx%d",
			len(x), m.Rows, m.Cols))
	}
	out := make([]float64, m.Cols)
	for i, xi := range x {
		if num.Zero(xi) {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LU is an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix
	perm []int
}

// Factor computes the LU factorization of the square matrix a.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below diag.
		pivot, pivotVal := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if num.Zero(pivotVal) {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				v := lu.At(col, j)
				lu.Set(col, j, lu.At(pivot, j))
				lu.Set(pivot, j, v)
			}
			perm[col], perm[pivot] = perm[pivot], perm[col]
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if num.Zero(f) {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return &LU{lu: lu, perm: perm}, nil
}

// Solve returns x with A*x = b for the factored A.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch %d != %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i, p := range f.perm {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if num.Zero(d) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Solve returns x with a*x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// SolveMatrix returns X with a*X = b, solving column by column.
func SolveMatrix(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("linalg: SolveMatrix dimension mismatch %d != %d", a.Rows, b.Rows)
	}
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x, err := f.Solve(col)
		if err != nil {
			return nil, err
		}
		for i, v := range x {
			out.Set(i, j, v)
		}
	}
	return out, nil
}

// Inverse returns the inverse of a.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Inverse needs square matrix, got %dx%d", a.Rows, a.Cols)
	}
	return SolveMatrix(a, Identity(a.Rows))
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
