// Package plot renders line charts as SVG and as ASCII, using only the
// standard library. It exists to regenerate the paper's figures from
// the experiment results without external plotting dependencies: the
// repository's reproducibility contract is that every artifact in
// results/ re-derives from a seed with `go run`, which a binding to an
// external plotting stack would break (and its rendering would drift
// under us between releases).
//
// The API is one Chart value — title, axis labels, and Series of
// (x, y) points — with two renderers. SVG produces the committed
// figNN.svg artifacts; ASCII produces terminal previews for
// `cmd/figures -ascii` and the quick-look tables embedded in docs.
// Both renderers are deterministic: identical input yields identical
// bytes, so figure diffs in review always mean data changes, never
// renderer noise. Scales, tick placement and glyph assignment are
// chosen for the paper's data shapes (response-time curves over load
// sweeps, bucket-occupancy step plots) rather than generality.
package plot

import (
	"fmt"
	"math"

	"rejuv/internal/num"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a set of curves with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMin/YMax clamp the y-axis when both are set (YMax > YMin);
	// otherwise the range is computed from the data.
	YMin, YMax float64
}

// validate reports structural problems that would render garbage.
func (c *Chart) validate() error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
		if len(s.X) == 0 {
			return fmt.Errorf("plot: series %q is empty", s.Name)
		}
	}
	return nil
}

// bounds returns the data range over all series, ignoring NaN/Inf.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if !finite(x) || !finite(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if c.YMax > c.YMin {
		ymin, ymax = c.YMin, c.YMax
	}
	if xmin > xmax { // no finite points at all
		xmin, xmax = 0, 1
	}
	if ymin > ymax {
		ymin, ymax = 0, 1
	}
	if num.Same(xmin, xmax) {
		xmin, xmax = xmin-0.5, xmax+0.5
	}
	if num.Same(ymin, ymax) {
		ymin, ymax = ymin-0.5, ymax+0.5
	}
	return xmin, xmax, ymin, ymax
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// niceTicks returns ~n human-friendly tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	span := hi - lo
	step := math.Pow(10, math.Floor(math.Log10(span/float64(n))))
	for _, m := range []float64{1, 2, 5, 10, 20, 50} {
		if span/(step*m) <= float64(n) {
			step *= m
			break
		}
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for t := first; t <= hi+step*1e-9; t += step {
		// Snap near-zero ticks to zero to avoid "-1.2e-16" labels.
		if math.Abs(t) < step*1e-9 {
			t = 0
		}
		ticks = append(ticks, t)
	}
	return ticks
}

// formatTick renders a tick label compactly.
func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case num.Zero(v):
		return "0"
	case a >= 0.01 && a < 10000:
		s := fmt.Sprintf("%.4g", v)
		return s
	default:
		return fmt.Sprintf("%.2g", v)
	}
}
