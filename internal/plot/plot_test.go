package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "Response time",
		XLabel: "Offered Load (CPUs)",
		YLabel: "Average Response Time",
		Series: []Series{
			{Name: "SRAA <2,5,3>", X: []float64{1, 2, 3}, Y: []float64{5, 6, 9}},
			{Name: "CLTA & friends", X: []float64{1, 2, 3}, Y: []float64{5, 5.5, 7}},
		},
	}
}

func TestWriteSVGIsWellFormedXML(t *testing.T) {
	var b strings.Builder
	c := sampleChart()
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	// The emitted document must parse as XML even with markup-hostile
	// series names (escaped <, >, &).
	dec := xml.NewDecoder(strings.NewReader(b.String()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, b.String())
		}
	}
	for _, want := range []string{"<svg", "Response time", "Offered Load", "&lt;2,5,3&gt;", "&amp; friends", "<path"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestWriteSVGOnePathPerSeries(t *testing.T) {
	var b strings.Builder
	c := sampleChart()
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	// Each series draws one polyline path with stroke-width 1.8.
	if got := strings.Count(b.String(), `stroke-width="1.8"`); got != 2 {
		t.Fatalf("found %d series paths, want 2", got)
	}
}

func TestChartValidation(t *testing.T) {
	var b strings.Builder
	empty := Chart{Title: "no series"}
	if err := empty.WriteSVG(&b); err == nil {
		t.Error("chart without series accepted")
	}
	ragged := Chart{Series: []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := ragged.WriteSVG(&b); err == nil {
		t.Error("ragged series accepted")
	}
	hollow := Chart{Series: []Series{{Name: "empty"}}}
	if err := hollow.WriteSVG(&b); err == nil {
		t.Error("empty series accepted")
	}
}

func TestBoundsIgnoreNonFinite(t *testing.T) {
	c := Chart{Series: []Series{{
		Name: "s",
		X:    []float64{1, 2, 3, 4},
		Y:    []float64{5, math.NaN(), math.Inf(1), 8},
	}}}
	_, _, ymin, ymax := c.bounds()
	if ymin != 5 || ymax != 8 {
		t.Fatalf("bounds = [%v, %v], want [5, 8]", ymin, ymax)
	}
}

func TestBoundsDegenerate(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{2}, Y: []float64{7}}}}
	xmin, xmax, ymin, ymax := c.bounds()
	if !(xmin < 2 && xmax > 2 && ymin < 7 && ymax > 7) {
		t.Fatalf("degenerate bounds [%v %v %v %v] do not widen", xmin, xmax, ymin, ymax)
	}
	allBad := Chart{Series: []Series{{Name: "s", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}}
	xmin, xmax, _, _ = allBad.bounds()
	if xmin >= xmax {
		t.Fatal("all-NaN series produced an empty range")
	}
}

func TestYClamping(t *testing.T) {
	c := sampleChart()
	c.YMin, c.YMax = 0, 4 // data exceeds the cap
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	_, _, ymin, ymax := c.bounds()
	if ymin != 0 || ymax != 4 {
		t.Fatalf("clamped bounds [%v, %v], want [0, 4]", ymin, ymax)
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 10)
	if len(ticks) < 5 || len(ticks) > 12 {
		t.Fatalf("niceTicks(0,10) produced %d ticks: %v", len(ticks), ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 10+1e-9 {
		t.Fatalf("ticks escape the range: %v", ticks)
	}
	// A range straddling zero must include a clean zero tick.
	found := false
	for _, tk := range niceTicks(-3, 7, 8) {
		if tk == 0 {
			found = true
		}
	}
	if !found {
		t.Error("no zero tick in a straddling range")
	}
}

func TestFormatTick(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{2.5, "2.5"},
		{10000, "1e+04"},
	}
	for _, tt := range tests {
		if got := formatTick(tt.v); got != tt.want {
			t.Errorf("formatTick(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestASCIIRendering(t *testing.T) {
	c := sampleChart()
	out, err := c.ASCII(60, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Response time", "*", "+", "SRAA", "CLTA", "x: Offered Load"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 18 { // title + 15 rows + axis + labels
		t.Fatalf("ASCII output has %d lines:\n%s", len(lines), out)
	}
}

func TestASCIIMinimumSize(t *testing.T) {
	c := sampleChart()
	out, err := c.ASCII(1, 1) // clamps up instead of failing
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestASCIIValidation(t *testing.T) {
	bad := Chart{}
	if _, err := bad.ASCII(40, 10); err == nil {
		t.Fatal("chart without series accepted")
	}
}
