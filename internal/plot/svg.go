package plot

import (
	"fmt"
	"io"
	"strings"
)

// svg layout constants (pixels).
const (
	svgWidth     = 860
	svgHeight    = 560
	marginLeft   = 70
	marginRight  = 24
	marginTop    = 44
	marginBottom = 52
	legendRowH   = 18
)

// palette holds distinguishable series colors; series beyond its length
// wrap around with a dashed stroke.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
	"#bcbd22", "#e377c2",
}

// markers are small shape names cycled per series so curves remain
// distinguishable in grayscale print, like the paper's figures.
var markers = []string{"circle", "square", "diamond", "triangle", "cross"}

// WriteSVG renders the chart as a standalone SVG document.
func (c *Chart) WriteSVG(w io.Writer) error {
	if err := c.validate(); err != nil {
		return err
	}
	xmin, xmax, ymin, ymax := c.bounds()
	plotW := float64(svgWidth - marginLeft - marginRight)
	plotH := float64(svgHeight - marginTop - marginBottom)
	sx := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	sy := func(y float64) float64 { return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`+"\n",
		svgWidth, svgHeight, svgWidth, svgHeight)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Title and axis labels.
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle">%s</text>`+"\n",
		svgWidth/2, escape(c.Title))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="13" text-anchor="middle">%s</text>`+"\n",
		svgWidth/2, svgHeight-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="13" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginTop+int(plotH)/2, marginTop+int(plotH)/2, escape(c.YLabel))

	// Gridlines and ticks.
	for _, t := range niceTicks(xmin, xmax, 10) {
		x := sx(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+plotH+16, formatTick(t))
	}
	for _, t := range niceTicks(ymin, ymax, 8) {
		y := sy(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(t))
	}
	// Axes frame.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		marginLeft, marginTop, plotW, plotH)

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		dash := ""
		if i >= len(palette) {
			dash = ` stroke-dasharray="6 3"`
		}
		var path strings.Builder
		started := false
		for j := range s.X {
			if !finite(s.X[j]) || !finite(s.Y[j]) {
				started = false
				continue
			}
			cmd := "L"
			if !started {
				cmd = "M"
				started = true
			}
			fmt.Fprintf(&path, "%s%.2f %.2f ", cmd, sx(s.X[j]), clampF(sy(s.Y[j]), marginTop, marginTop+plotH))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"%s/>`+"\n",
			strings.TrimSpace(path.String()), color, dash)
		marker := markers[i%len(markers)]
		for j := range s.X {
			if !finite(s.X[j]) || !finite(s.Y[j]) {
				continue
			}
			drawMarker(&b, marker, sx(s.X[j]), clampF(sy(s.Y[j]), marginTop, marginTop+plotH), color)
		}
	}

	// Legend, top-left inside the plot area.
	lx, ly := marginLeft+10, marginTop+8
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		y := ly + i*legendRowH
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			lx, y, lx+22, y, color)
		drawMarker(&b, markers[i%len(markers)], float64(lx+11), float64(y), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			lx+28, y+4, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// drawMarker emits one series marker centered at (x, y).
func drawMarker(b *strings.Builder, kind string, x, y float64, color string) {
	const r = 3.2
	switch kind {
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<path d="M%.1f %.1f L%.1f %.1f L%.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		fmt.Fprintf(b, `<path d="M%.1f %.1f L%.1f %.1f L%.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	case "cross":
		fmt.Fprintf(b, `<path d="M%.1f %.1f L%.1f %.1f M%.1f %.1f L%.1f %.1f" stroke="%s" stroke-width="1.6"/>`+"\n",
			x-r, y-r, x+r, y+r, x-r, y+r, x+r, y-r, color)
	default: // circle
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
