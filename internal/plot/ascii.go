package plot

import (
	"fmt"
	"math"
	"strings"
)

// ASCII renders the chart as a text plot of the given size (columns x
// rows of the plotting area, excluding labels). Each series draws with
// its own glyph; overlapping points show the later series.
func (c *Chart) ASCII(width, height int) (string, error) {
	if err := c.validate(); err != nil {
		return "", err
	}
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax, ymin, ymax := c.bounds()
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~'}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plotCell := func(x, y float64, g byte) {
		cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		cy := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		if cx < 0 || cx >= width || cy < 0 {
			return
		}
		if cy >= height {
			cy = height - 1
		}
		grid[height-1-cy][cx] = g
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			// Interpolate toward the next point so curves read as lines.
			if i+1 < len(s.X) && finite(s.X[i+1]) && finite(s.Y[i+1]) {
				const steps = 8
				for t := 0; t < steps; t++ {
					f := float64(t) / steps
					plotCell(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, g)
				}
			}
			plotCell(s.X[i], s.Y[i], g)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	labelW := 10
	for i, row := range grid {
		// y labels at the top, middle, and bottom rows.
		label := ""
		switch i {
		case 0:
			label = formatTick(ymax)
		case height / 2:
			label = formatTick((ymin + ymax) / 2)
		case height - 1:
			label = formatTick(ymin)
		}
		fmt.Fprintf(&b, "%*s |%s\n", labelW, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", width))
	lo, hi := formatTick(xmin), formatTick(xmax)
	pad := width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s\n", labelW, "", lo, strings.Repeat(" ", pad), hi)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%*s  x: %s   y: %s\n", labelW, "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "%*s  %c %s\n", labelW, "", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String(), nil
}
