package des

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	sim := New()
	times := []float64{5, 1, 3, 2, 4, 2.5}
	var fired []float64
	for _, at := range times {
		sim.ScheduleAt(at, func(s *Simulator) { fired = append(fired, s.Now()) })
	}
	sim.Run()
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestSameTimeEventsFireFIFO(t *testing.T) {
	sim := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		sim.ScheduleAt(1.0, func(*Simulator) { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want FIFO", order)
		}
	}
}

func TestScheduleRelative(t *testing.T) {
	sim := New()
	var at float64
	sim.Schedule(2, func(s *Simulator) {
		s.Schedule(3, func(s *Simulator) { at = s.Now() })
	})
	sim.Run()
	if at != 5 {
		t.Fatalf("nested relative schedule fired at %v, want 5", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	sim := New()
	fired := false
	e := sim.ScheduleAt(1, func(*Simulator) { fired = true })
	sim.Cancel(e)
	sim.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() {
		t.Fatal("cancelled event still pending")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	sim := New()
	e := sim.ScheduleAt(1, func(*Simulator) {})
	sim.Cancel(e)
	sim.Cancel(e) // must not panic or corrupt the heap
	sim.Cancel(nil)
	sim.ScheduleAt(2, func(*Simulator) {})
	if got := sim.Run(); got != 1 {
		t.Fatalf("fired %d events after double cancel, want 1", got)
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	sim := New()
	var fired []float64
	var events []*Event
	for _, at := range []float64{1, 2, 3, 4, 5} {
		events = append(events, sim.ScheduleAt(at, func(s *Simulator) {
			fired = append(fired, s.Now())
		}))
	}
	sim.Cancel(events[2]) // cancel t=3
	sim.Run()
	want := []float64{1, 2, 4, 5}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestReschedulePending(t *testing.T) {
	sim := New()
	var at float64
	e := sim.ScheduleAt(1, func(s *Simulator) { at = s.Now() })
	sim.Reschedule(e, 7)
	sim.Run()
	if at != 7 {
		t.Fatalf("rescheduled event fired at %v, want 7", at)
	}
}

func TestRescheduleCancelledRequeues(t *testing.T) {
	sim := New()
	count := 0
	e := sim.ScheduleAt(1, func(*Simulator) { count++ })
	sim.Cancel(e)
	sim.Reschedule(e, 2)
	sim.Run()
	if count != 1 {
		t.Fatalf("requeued event fired %d times, want 1", count)
	}
}

func TestRescheduleKeepsOrder(t *testing.T) {
	sim := New()
	var order []string
	a := sim.ScheduleAt(1, func(*Simulator) { order = append(order, "a") })
	sim.ScheduleAt(2, func(*Simulator) { order = append(order, "b") })
	sim.Reschedule(a, 3) // a moves after b
	sim.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order after reschedule = %v, want [b a]", order)
	}
}

func TestStopHaltsRun(t *testing.T) {
	sim := New()
	count := 0
	for i := 1; i <= 10; i++ {
		sim.ScheduleAt(float64(i), func(s *Simulator) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	fired := sim.Run()
	if fired != 3 || count != 3 {
		t.Fatalf("Run fired %d events (count %d), want 3", fired, count)
	}
	// A subsequent Run resumes with the remaining events.
	if rest := sim.Run(); rest != 7 {
		t.Fatalf("resumed Run fired %d, want 7", rest)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	sim := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		sim.ScheduleAt(at, func(s *Simulator) { fired = append(fired, s.Now()) })
	}
	n := sim.RunUntil(3)
	if n != 3 || len(fired) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", n)
	}
	if sim.Now() != 3 {
		t.Fatalf("clock at %v after RunUntil(3), want 3", sim.Now())
	}
	if sim.Len() != 2 {
		t.Fatalf("%d events left, want 2", sim.Len())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	sim := New()
	sim.RunUntil(10)
	if sim.Now() != 10 {
		t.Fatalf("idle RunUntil left clock at %v, want 10", sim.Now())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	sim := New()
	sim.ScheduleAt(5, func(*Simulator) {})
	sim.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	sim.ScheduleAt(1, func(*Simulator) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule with negative delay did not panic")
		}
	}()
	New().Schedule(-1, func(*Simulator) {})
}

func TestRandomWorkloadFiresSorted(t *testing.T) {
	// Property: any mix of schedules and cancellations fires the
	// surviving events in nondecreasing time order, exactly once each.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		sim := New()
		var fired []float64
		var live []*Event
		expected := 0
		for i := 0; i < 200; i++ {
			at := rng.Float64() * 100
			e := sim.ScheduleAt(at, func(s *Simulator) { fired = append(fired, s.Now()) })
			live = append(live, e)
			expected++
			if rng.Intn(4) == 0 && len(live) > 0 {
				k := rng.Intn(len(live))
				if live[k].Pending() {
					sim.Cancel(live[k])
					expected--
				}
			}
		}
		sim.Run()
		if len(fired) != expected {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), expected)
		}
		if !sort.Float64sAreSorted(fired) {
			t.Fatalf("trial %d: events fired out of order", trial)
		}
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	sim := New()
	if sim.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}
