// Package des implements a discrete-event simulation kernel: a virtual
// clock, a cancellable event queue, and a run loop. It is the substrate
// for every simulator in this repository.
//
// Events are callbacks scheduled at absolute or relative virtual times.
// Scheduling returns an *Event handle that can be cancelled or rescheduled,
// which the e-commerce model uses to push back in-flight service
// completions when a garbage-collection stall occurs.
package des

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"rejuv/internal/journal"
	"rejuv/internal/num"
)

// Handler is the callback invoked when an event fires. The simulator
// passes itself so handlers can schedule follow-up events.
type Handler func(sim *Simulator)

// Event is a scheduled occurrence in virtual time. Handles are returned
// by the Schedule methods and stay valid until the event fires or is
// cancelled.
type Event struct {
	time    float64
	seq     uint64 // tie-breaker: FIFO among same-time events
	index   int    // position in the heap, -1 when not queued
	handler Handler
}

// Time returns the virtual time at which the event is scheduled to fire.
func (e *Event) Time() float64 { return e.time }

// Pending reports whether the event is still queued (not fired, not
// cancelled).
func (e *Event) Pending() bool { return e.index >= 0 }

// eventQueue is a min-heap of events ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !num.Same(q[i].time, q[j].time) {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the event queue. The zero value is
// a simulator at time zero with an empty queue, ready to use.
type Simulator struct {
	now     float64
	seq     uint64
	queue   eventQueue
	stopped bool
	met     *simMetrics     // nil unless Instrument was called
	jw      *journal.Writer // nil unless Journal was called
}

// New returns a simulator at virtual time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() float64 { return s.now }

// Len returns the number of pending events.
func (s *Simulator) Len() int { return len(s.queue) }

// ScheduleAt schedules h to run at absolute virtual time t. It panics if
// t precedes the current time or is NaN, since scheduling into the past
// is always a modeling bug.
func (s *Simulator) ScheduleAt(t float64, h Handler) *Event {
	if math.IsNaN(t) || t < s.now {
		panic(fmt.Sprintf("des: ScheduleAt(%v) before now (%v)", t, s.now))
	}
	e := &Event{time: t, seq: s.seq, handler: h}
	s.seq++
	heap.Push(&s.queue, e)
	s.noteScheduled()
	s.journalScheduled(t)
	return e
}

// Schedule schedules h to run after the given non-negative delay.
func (s *Simulator) Schedule(delay float64, h Handler) *Event {
	if math.IsNaN(delay) || delay < 0 {
		panic(fmt.Sprintf("des: Schedule with negative delay %v", delay))
	}
	return s.ScheduleAt(s.now+delay, h)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// already fired or was already cancelled is a no-op, so callers need not
// track event lifecycles precisely.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&s.queue, e.index)
	s.noteCancelled()
	s.journalCancelled()
}

// Reschedule moves a pending event to absolute time t, preserving its
// handler. If the event is no longer pending it is re-queued, which is
// what callers pushing back in-flight completions want. It panics if t
// precedes the current time.
func (s *Simulator) Reschedule(e *Event, t float64) {
	if math.IsNaN(t) || t < s.now {
		panic(fmt.Sprintf("des: Reschedule(%v) before now (%v)", t, s.now))
	}
	if e.index >= 0 {
		e.time = t
		e.seq = s.seq
		s.seq++
		heap.Fix(&s.queue, e.index)
		return
	}
	e.time = t
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// Stop makes the current Run call return after the executing handler
// completes. Pending events remain queued.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next pending event, advancing the clock to its time.
// It returns false when no events are pending. Step is the kernel's
// inner loop: everything it reaches (metrics, journaling) must stay
// allocation-free so event throughput is bounded by the handlers alone.
//
//lint:hotpath
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	if e.time < s.now {
		//lint:allow hotpath formatting the modeling-bug panic happens at most once per process
		panic(fmt.Sprintf("des: time went backwards: %v -> %v", s.now, e.time))
	}
	s.now = e.time
	s.noteFired()
	s.journalFired()
	e.handler(s)
	return true
}

// eventLoopLabels tags the run loop in CPU profiles so samples inside
// Run/RunUntil (and everything the handlers call, detector evaluation
// included) can be filtered with `-tagfocus des_phase=event-loop`.
var eventLoopLabels = pprof.Labels("des_phase", "event-loop")

// Run fires events in time order until the queue drains or Stop is
// called. It returns the number of events fired.
func (s *Simulator) Run() int {
	s.stopped = false
	fired := 0
	pprof.Do(context.Background(), eventLoopLabels, func(context.Context) {
		for !s.stopped && s.Step() {
			fired++
		}
	})
	return fired
}

// RunUntil fires events with time <= horizon, then advances the clock to
// horizon. Events scheduled beyond the horizon remain queued. It returns
// the number of events fired.
func (s *Simulator) RunUntil(horizon float64) int {
	s.stopped = false
	fired := 0
	pprof.Do(context.Background(), eventLoopLabels, func(context.Context) {
		for !s.stopped && len(s.queue) > 0 && s.queue[0].time <= horizon {
			s.Step()
			fired++
		}
	})
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
	return fired
}
