package des

import "rejuv/internal/metrics"

// simMetrics holds the kernel's instruments; nil on uninstrumented
// simulators so the hot path pays one pointer test per operation.
type simMetrics struct {
	scheduled *metrics.Counter
	fired     *metrics.Counter
	cancelled *metrics.Counter
	queueLen  *metrics.Gauge
	simTime   *metrics.Gauge
}

// Instrument registers the kernel's event-loop series in reg and
// updates them as the simulation runs:
//
//	des_events_scheduled_total   events pushed onto the queue
//	des_events_fired_total       events whose handler ran
//	des_events_cancelled_total   events removed before firing
//	des_pending_events           current queue length
//	des_sim_time_seconds         current virtual time
//
// Call it before Run; calling it again re-binds to the new registry.
func (s *Simulator) Instrument(reg *metrics.Registry) {
	s.met = &simMetrics{
		scheduled: reg.Counter("des_events_scheduled_total",
			"events pushed onto the simulation queue"),
		fired: reg.Counter("des_events_fired_total",
			"simulation events whose handler ran"),
		cancelled: reg.Counter("des_events_cancelled_total",
			"simulation events cancelled before firing"),
		queueLen: reg.Gauge("des_pending_events",
			"current simulation event-queue length"),
		simTime: reg.Gauge("des_sim_time_seconds",
			"current virtual time of the simulation"),
	}
}

// noteScheduled records one scheduled event.
func (s *Simulator) noteScheduled() {
	if s.met != nil {
		s.met.scheduled.Inc()
		s.met.queueLen.SetInt(len(s.queue))
	}
}

// noteCancelled records one cancelled event.
func (s *Simulator) noteCancelled() {
	if s.met != nil {
		s.met.cancelled.Inc()
		s.met.queueLen.SetInt(len(s.queue))
	}
}

// noteFired records one fired event and the clock advance.
func (s *Simulator) noteFired() {
	if s.met != nil {
		s.met.fired.Inc()
		s.met.queueLen.SetInt(len(s.queue))
		s.met.simTime.Set(s.now)
	}
}
