package des

import "rejuv/internal/journal"

// Journal attaches a flight-recorder writer to the kernel: every event
// scheduled, fired or cancelled is recorded with the current virtual
// time (and, for schedules, the time the event will fire at). This is
// the most verbose journaling layer — a 100k-transaction replication
// emits several hundred thousand kernel records — so it is wired to an
// explicit opt-in flag (rejuvsim -journal-events) rather than to the
// model-level journal. Pass nil to detach.
//
// The journal writer's binary encode path performs no allocations, so
// an attached journal adds only the cost of buffered writes to the
// event loop.
func (s *Simulator) Journal(jw *journal.Writer) { s.jw = jw }

// journalScheduled records one scheduled event.
func (s *Simulator) journalScheduled(at float64) {
	if s.jw != nil {
		s.jw.SimScheduled(s.now, at)
	}
}

// journalFired records one fired event.
func (s *Simulator) journalFired() {
	if s.jw != nil {
		s.jw.SimFired(s.now)
	}
}

// journalCancelled records one cancelled event.
func (s *Simulator) journalCancelled() {
	if s.jw != nil {
		s.jw.SimCancelled(s.now)
	}
}
