package des

import (
	"math/rand"
	"testing"
)

// BenchmarkScheduleFire measures the cost of one schedule + fire cycle,
// the inner loop of every simulation in this repository.
func BenchmarkScheduleFire(b *testing.B) {
	sim := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Schedule(1, func(*Simulator) {})
		sim.Step()
	}
}

// BenchmarkDeepQueue measures heap operations against a queue holding
// many pending events, the high-load regime of the e-commerce model.
func BenchmarkDeepQueue(b *testing.B) {
	sim := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		sim.Schedule(1e6+rng.Float64(), func(*Simulator) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(rng.Float64()*1e5, func(*Simulator) {})
		sim.Step()
	}
}

// BenchmarkReschedule measures the cost of moving a pending event, the
// operation a GC stall performs on every running thread.
func BenchmarkReschedule(b *testing.B) {
	sim := New()
	events := make([]*Event, 64)
	for i := range events {
		events[i] = sim.Schedule(1e9+float64(i), func(*Simulator) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := events[i%len(events)]
		sim.Reschedule(e, e.Time()+60)
	}
}

// BenchmarkCancel measures lazy event removal.
func BenchmarkCancel(b *testing.B) {
	sim := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sim.Schedule(1e6, func(*Simulator) {})
		sim.Cancel(e)
	}
}
