package core

// sampleWindow accumulates observations until a sample of the configured
// size is complete, then yields its mean. It implements the
// x̄_u = (1/n) Σ x_t batching of the paper's pseudo-code: samples are
// consecutive, non-overlapping blocks.
type sampleWindow struct {
	size  int     // observations per sample, n >= 1
	count int     // observations in the current block
	sum   float64 // running block sum
}

// add folds one observation; it returns the completed block mean and
// true when this observation finished a block.
func (w *sampleWindow) add(x float64) (mean float64, done bool) {
	w.sum += x
	w.count++
	if w.count < w.size {
		return 0, false
	}
	mean = w.sum / float64(w.size)
	w.sum = 0
	w.count = 0
	return mean, true
}

// resize sets a new block size, discarding any partial block. SARAA
// resizes on bucket transitions; the paper computes the next sample
// size when the previous bucket overflows, so the partial block (always
// empty at that point, since resizing happens on a completed block)
// carries no information worth keeping.
func (w *sampleWindow) resize(size int) {
	w.size = size
	w.sum = 0
	w.count = 0
}

// reset discards any partial block.
func (w *sampleWindow) reset() {
	w.sum = 0
	w.count = 0
}
