package core

import (
	"strings"
	"testing"
)

func TestTracerLogsEvaluationsAndTriggers(t *testing.T) {
	inner, err := NewSRAA(SRAAConfig{
		SampleSize: 2, Buckets: 1, Depth: 1, Baseline: testBaseline,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr, err := NewTracer(inner, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Two samples above the target: fill then trigger.
	for i := 0; i < 4; i++ {
		tr.Observe(100)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("traced %d lines, want 2 (one per evaluated sample):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "obs=2 mean=100 level=0 fill=1") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.HasSuffix(lines[1], "TRIGGER") {
		t.Fatalf("second line %q lacks the trigger marker", lines[1])
	}
}

func TestTracerPassesDecisionsThrough(t *testing.T) {
	mk := func() Detector {
		d, err := NewSARAA(SARAAConfig{
			InitialSampleSize: 3, Buckets: 2, Depth: 2, Baseline: testBaseline,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	plain := mk()
	traced, err := NewTracer(mk(), &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		x := float64(i%17) * 2
		if dp, dt := plain.Observe(x), traced.Observe(x); dp != dt {
			t.Fatalf("observation %d: traced decision %+v != plain %+v", i, dt, dp)
		}
	}
}

func TestTracerLogsReset(t *testing.T) {
	inner, err := NewStatic(1, 1, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	tr, err := NewTracer(inner, &buf)
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe(1)
	tr.Reset()
	if !strings.Contains(buf.String(), "obs=1 RESET") {
		t.Fatalf("trace %q missing reset marker", buf.String())
	}
}

func TestTracerValidation(t *testing.T) {
	if _, err := NewTracer(nil, &strings.Builder{}); err == nil {
		t.Error("nil detector accepted")
	}
	inner, _ := NewStatic(1, 1, testBaseline)
	if _, err := NewTracer(inner, nil); err == nil {
		t.Error("nil writer accepted")
	}
}
