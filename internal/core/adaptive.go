package core

import (
	"fmt"
	"math"

	"rejuv/internal/stats"
)

// Adaptive wraps a detector factory and estimates the baseline online:
// the first Warmup observations are treated as normal behaviour, their
// sample mean and standard deviation become the baseline, and the inner
// detector is built from it. This implements the paper's stated future
// work of "statistical estimation techniques to determine optimal
// algorithm parameters in real-time" in its simplest form.
//
// During warmup no rejuvenation is ever triggered, so the warmup window
// must be chosen so the system is healthy while it runs.
type Adaptive struct {
	warmup int
	build  func(Baseline) (Detector, error)
	acc    stats.Welford
	inner  Detector // nil until warmup completes
	base   Baseline
}

// NewAdaptive returns an adaptive wrapper that learns the baseline from
// the first warmup observations, then builds the inner detector with it.
// warmup must be at least 2 so a standard deviation exists.
func NewAdaptive(warmup int, build func(Baseline) (Detector, error)) (*Adaptive, error) {
	if warmup < 2 {
		return nil, fmt.Errorf("core: adaptive warmup must be at least 2 observations, got %d", warmup)
	}
	if build == nil {
		return nil, fmt.Errorf("core: adaptive detector factory must not be nil")
	}
	return &Adaptive{warmup: warmup, build: build}, nil
}

// Learned reports whether warmup has completed and returns the learned
// baseline (zero until then).
func (a *Adaptive) Learned() (Baseline, bool) {
	return a.base, a.inner != nil
}

// Observe feeds one observation. During warmup it only accumulates;
// afterwards it delegates to the inner detector.
//
//lint:hotpath
func (a *Adaptive) Observe(x float64) Decision {
	if a.inner == nil {
		a.acc.Add(x)
		if a.acc.N() < int64(a.warmup) {
			return Decision{}
		}
		a.base = Baseline{Mean: a.acc.Mean(), StdDev: a.acc.StdDev()}
		if !(a.base.StdDev > 0) || math.IsInf(a.base.StdDev, 0) ||
			math.IsNaN(a.base.Mean) || math.IsInf(a.base.Mean, 0) {
			// A constant warmup series gives a degenerate baseline, and a
			// non-finite observation (possible when the monitor's hygiene
			// policy is off) poisons the accumulator; restart learning
			// rather than divide by zero or panic the factory.
			a.base = Baseline{}
			a.acc.Reset()
			return Decision{}
		}
		inner, err := a.build(a.base)
		if err != nil {
			// A factory that rejects a valid learned baseline is a
			// programming error in the caller.
			//lint:allow hotpath formatting a panic on the dying path costs nothing in steady state
			panic(fmt.Sprintf("core: adaptive factory failed: %v", err))
		}
		a.inner = inner
		return Decision{}
	}
	return a.inner.Observe(x)
}

// Reset clears the inner detector state but keeps the learned baseline:
// rejuvenation restores capacity, it does not invalidate the SLA. Use
// Relearn to also discard the baseline.
func (a *Adaptive) Reset() {
	if a.inner != nil {
		a.inner.Reset()
	}
}

// Relearn discards both the detector and the learned baseline, returning
// to the warmup phase.
func (a *Adaptive) Relearn() {
	a.inner = nil
	a.base = Baseline{}
	a.acc.Reset()
}
