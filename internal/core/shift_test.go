package core

import (
	"math"
	"testing"
)

// shiftTestBase is the paper's healthy baseline.
var shiftTestBase = Baseline{Mean: 5, StdDev: 5}

func TestMomentsTracksMeanAndSpread(t *testing.T) {
	var m Moments
	// Alternate 4 and 6 around a mean of 5: EW mean converges to 5 and
	// the EW variance to the population variance 1.
	for i := 0; i < 4000; i++ {
		x := 4.0
		if i%2 == 1 {
			x = 6.0
		}
		m.Observe(0.05, x)
	}
	if math.Abs(m.Mean()-5) > 0.1 {
		t.Fatalf("EW mean %v, want ~5", m.Mean())
	}
	if math.Abs(m.StdDev()-1) > 0.1 {
		t.Fatalf("EW stddev %v, want ~1", m.StdDev())
	}
	if m.Count() != 4000 {
		t.Fatalf("count %d, want 4000", m.Count())
	}
	m.Reset()
	if m.Count() != 0 || m.Mean() != 0 || m.Variance() != 0 {
		t.Fatalf("reset left state %+v", m)
	}
}

func TestMomentsFirstObservationSeedsExactly(t *testing.T) {
	var m Moments
	m.Observe(0.05, 42.5)
	if m.Mean() != 42.5 || m.Variance() != 0 {
		t.Fatalf("after first observation mean=%v var=%v, want 42.5, 0", m.Mean(), m.Variance())
	}
}

// TestMomentsObserveDoesNotAllocate pins the EWMA observe path at zero
// allocations: it runs per observation on every shift-enabled stream.
func TestMomentsObserveDoesNotAllocate(t *testing.T) {
	var m Moments
	x := 1.0
	if n := testing.AllocsPerRun(1000, func() {
		m.Observe(0.05, x)
		x += 0.001
	}); n != 0 {
		t.Fatalf("Moments.Observe allocates %.1f times per call, want 0", n)
	}
}

// TestShiftStateObserveDoesNotAllocate pins the whole shift-layer step,
// the code the fleet drain loop runs per observation.
func TestShiftStateObserveDoesNotAllocate(t *testing.T) {
	cfg := ShiftConfig{}.WithDefaults()
	st := NewShiftState(shiftTestBase)
	x := 5.0
	if n := testing.AllocsPerRun(1000, func() {
		st.Step(cfg, x)
		x += 0.001
	}); n != 0 {
		t.Fatalf("ShiftState.Step allocates %.1f times per call, want 0", n)
	}
}

func TestShiftConfigDefaultsAndValidate(t *testing.T) {
	def := ShiftConfig{}.WithDefaults()
	if def.Alpha != 0.05 || def.Slack != 0.5 || def.Threshold != 8 || def.MaxShiftRun != 20 || def.Relearn != 32 {
		t.Fatalf("unexpected defaults %+v", def)
	}
	if err := def.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	bad := []ShiftConfig{
		{Detector: ShiftDetector(7), Alpha: 0.05, Slack: 0.5, Threshold: 8, MaxShiftRun: 20, Relearn: 32},
		{Alpha: -1, Slack: 0.5, Threshold: 8, MaxShiftRun: 20, Relearn: 32},
		{Alpha: 1.5, Slack: 0.5, Threshold: 8, MaxShiftRun: 20, Relearn: 32},
		{Alpha: 0.05, Slack: -0.5, Threshold: 8, MaxShiftRun: 20, Relearn: 32},
		{Alpha: 0.05, Slack: 0.5, Threshold: math.Inf(1), MaxShiftRun: 20, Relearn: 32},
		{Alpha: 0.05, Slack: 0.5, Threshold: 8, MaxShiftRun: -1, Relearn: 32},
		{Alpha: 0.05, Slack: 0.5, Threshold: 8, MaxShiftRun: 20, Relearn: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) must not validate", i, c)
		}
	}
}

// TestShiftStateClassifiesStepAsShift: an abrupt +4σ step must be
// classified as a workload shift — a short relearn, then one committed
// rebaseline near the new level with the old spread retained (the step
// is noiseless, so the relearned variance is degenerate).
func TestShiftStateClassifiesStepAsShift(t *testing.T) {
	for _, det := range []ShiftDetector{ShiftCUSUM, ShiftPageHinkley} {
		cfg := ShiftConfig{Detector: det}.WithDefaults()
		st := NewShiftState(shiftTestBase)
		for i := 0; i < 50; i++ {
			if out := st.Step(cfg, 5); out != ShiftNone {
				t.Fatalf("%v: steady observation %d classified %v", det, i, out)
			}
		}
		sawRelearn, sawRebaseline := false, false
		for i := 0; i < 100 && !sawRebaseline; i++ {
			switch st.Step(cfg, 25) {
			case ShiftRelearning:
				sawRelearn = true
			case ShiftRebaselined:
				sawRebaseline = true
			case ShiftAging:
				t.Fatalf("%v: abrupt step classified as aging", det)
			}
		}
		if !sawRelearn || !sawRebaseline {
			t.Fatalf("%v: step not rebaselined (relearn=%v rebaseline=%v)", det, sawRelearn, sawRebaseline)
		}
		if st.Rebaselines != 1 {
			t.Fatalf("%v: %d rebaselines, want 1", det, st.Rebaselines)
		}
		if st.Base.Mean != 25 {
			t.Fatalf("%v: committed mean %v, want 25", det, st.Base.Mean)
		}
		if st.Base.StdDev != shiftTestBase.StdDev {
			t.Fatalf("%v: degenerate relearn committed stddev %v, want old %v kept", det, st.Base.StdDev, shiftTestBase.StdDev)
		}
		// At the new level the stream is normal again.
		if out := st.Step(cfg, 25); out != ShiftNone {
			t.Fatalf("%v: post-rebaseline observation classified %v", det, out)
		}
	}
}

// TestShiftStateClassifiesRampAsAging: a slow upward drift must be left
// to the wrapped detector — the change-point fires with a long run and
// is classified as aging; no rebaseline is ever committed.
func TestShiftStateClassifiesRampAsAging(t *testing.T) {
	for _, det := range []ShiftDetector{ShiftCUSUM, ShiftPageHinkley} {
		cfg := ShiftConfig{Detector: det}.WithDefaults()
		st := NewShiftState(shiftTestBase)
		sawAging := false
		for i := 0; i < 2000; i++ {
			x := 5 + 0.02*float64(i) // 0.004σ per observation
			switch st.Step(cfg, x) {
			case ShiftAging:
				sawAging = true
			case ShiftRelearning, ShiftRebaselined:
				t.Fatalf("%v: slow ramp rebaselined at observation %d", det, i)
			}
		}
		if !sawAging {
			t.Fatalf("%v: slow ramp never classified as aging", det)
		}
		if st.Rebaselines != 0 {
			t.Fatalf("%v: %d rebaselines on a pure ramp, want 0", det, st.Rebaselines)
		}
	}
}

// TestShiftStateDownshiftRebaselines: a downward move is always a
// workload change — aging never improves response times.
func TestShiftStateDownshiftRebaselines(t *testing.T) {
	cfg := ShiftConfig{}.WithDefaults()
	st := NewShiftState(shiftTestBase)
	for i := 0; i < 50; i++ {
		st.Step(cfg, 5)
	}
	for i := 0; i < 100 && st.Rebaselines == 0; i++ {
		if out := st.Step(cfg, 1); out == ShiftAging {
			t.Fatal("downward step classified as aging")
		}
	}
	if st.Rebaselines != 1 {
		t.Fatalf("%d rebaselines after a downshift, want 1", st.Rebaselines)
	}
	if st.Base.Mean != 1 {
		t.Fatalf("committed mean %v, want 1", st.Base.Mean)
	}
}

// newRebaseSRAA builds the canonical wrapped detector of these tests:
// SRAA (n=4, K=5, D=3) under the default shift layer.
func newRebaseSRAA(t *testing.T, cfg ShiftConfig) *Rebase {
	t.Helper()
	r, err := NewRebase(cfg, shiftTestBase, func(b Baseline) (Detector, error) {
		return NewSRAA(SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: b})
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRebaseSuppressesFalseTriggerOnPureShift: a sustained step past
// the top bucket target fires the bare family but must not fire the
// wrapped one — the shift layer rebaselines instead.
func TestRebaseSuppressesFalseTriggerOnPureShift(t *testing.T) {
	bare, err := NewSRAA(SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: shiftTestBase})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := newRebaseSRAA(t, ShiftConfig{})
	bareTrigs, wrappedTrigs := 0, 0
	feed := func(d Detector, x float64) int {
		if d.Observe(x).Triggered {
			return 1
		}
		return 0
	}
	for i := 0; i < 200; i++ {
		bareTrigs += feed(bare, 5)
		wrappedTrigs += feed(wrapped, 5)
	}
	for i := 0; i < 600; i++ {
		bareTrigs += feed(bare, 26)
		wrappedTrigs += feed(wrapped, 26)
	}
	if bareTrigs == 0 {
		t.Fatal("bare SRAA never triggered on the shift; the test is vacuous")
	}
	if wrappedTrigs != 0 {
		t.Fatalf("wrapped SRAA fired %d false triggers across a pure workload shift", wrappedTrigs)
	}
	if wrapped.Rebaselines() != 1 {
		t.Fatalf("%d rebaselines, want 1", wrapped.Rebaselines())
	}
	if got := wrapped.CurrentBaseline().Mean; got != 26 {
		t.Fatalf("committed mean %v, want 26", got)
	}
}

// TestRebaseIsTransparentUnderPureAging: on a pure aging ramp the shift
// layer must be a bystander — the wrapped decision stream is identical,
// observation by observation, to the bare family's.
func TestRebaseIsTransparentUnderPureAging(t *testing.T) {
	bare, err := NewSRAA(SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: shiftTestBase})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := newRebaseSRAA(t, ShiftConfig{})
	for i := 0; i < 3000; i++ {
		x := 5 + 0.02*float64(i)
		db, dw := bare.Observe(x), wrapped.Observe(x)
		if db != dw {
			t.Fatalf("observation %d: bare %+v, wrapped %+v", i, db, dw)
		}
		if db.Triggered {
			return // both fired together: the aging path is untouched
		}
	}
	t.Fatal("aging ramp never triggered; the test is vacuous")
}

// TestRebaseResetKeepsLearnedBaseline: Reset models an external
// rejuvenation — capacity is restored but the workload has not moved,
// so the learned baseline must survive.
func TestRebaseResetKeepsLearnedBaseline(t *testing.T) {
	wrapped := newRebaseSRAA(t, ShiftConfig{})
	for i := 0; i < 50; i++ {
		wrapped.Observe(5)
	}
	for i := 0; i < 100; i++ {
		wrapped.Observe(25)
	}
	if wrapped.Rebaselines() != 1 {
		t.Fatalf("%d rebaselines, want 1", wrapped.Rebaselines())
	}
	wrapped.Reset()
	if got := wrapped.CurrentBaseline().Mean; got != 25 {
		t.Fatalf("Reset discarded the learned baseline (mean %v, want 25)", got)
	}
	if wrapped.Relearning() {
		t.Fatal("Reset left a relearn window in progress")
	}
	if wrapped.InitialBaseline() != shiftTestBase {
		t.Fatalf("initial baseline %+v, want %+v", wrapped.InitialBaseline(), shiftTestBase)
	}
}

// TestRebaseInternalsDelegate: the wrapper must expose exactly the
// inner family's internals — replay byte-identity depends on it.
func TestRebaseInternalsDelegate(t *testing.T) {
	bare, err := NewSRAA(SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: shiftTestBase})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := newRebaseSRAA(t, ShiftConfig{})
	for i := 0; i < 37; i++ {
		x := 4 + float64(i%3)
		bare.Observe(x)
		wrapped.Observe(x)
		if bare.Internals() != wrapped.Internals() {
			t.Fatalf("observation %d: internals diverge: %+v vs %+v", i, bare.Internals(), wrapped.Internals())
		}
	}
}

// TestRebasePausesInnerDuringRelearn: while relearning, no decision is
// evaluated — a sample straddling two regimes must never complete.
func TestRebasePausesInnerDuringRelearn(t *testing.T) {
	wrapped := newRebaseSRAA(t, ShiftConfig{})
	for i := 0; i < 50; i++ {
		wrapped.Observe(5)
	}
	evaluatedDuringRelearn := 0
	for i := 0; i < 100 && wrapped.Rebaselines() == 0; i++ {
		d := wrapped.Observe(25)
		if wrapped.Relearning() && d.Evaluated {
			evaluatedDuringRelearn++
		}
	}
	if wrapped.Rebaselines() != 1 {
		t.Fatal("shift never rebaselined")
	}
	if evaluatedDuringRelearn != 0 {
		t.Fatalf("%d decisions evaluated during relearn, want 0", evaluatedDuringRelearn)
	}
}

func TestNewRebaseValidation(t *testing.T) {
	build := func(b Baseline) (Detector, error) {
		return NewSRAA(SRAAConfig{SampleSize: 4, Buckets: 5, Depth: 3, Baseline: b})
	}
	if _, err := NewRebase(ShiftConfig{}, shiftTestBase, nil); err == nil {
		t.Fatal("nil factory must not validate")
	}
	if _, err := NewRebase(ShiftConfig{}, Baseline{Mean: 5, StdDev: -1}, build); err == nil {
		t.Fatal("invalid baseline must not validate")
	}
	if _, err := NewRebase(ShiftConfig{Relearn: 1}, shiftTestBase, build); err == nil {
		t.Fatal("invalid shift config must not validate")
	}
	if _, err := NewRebase(ShiftConfig{}, shiftTestBase, func(Baseline) (Detector, error) {
		return nil, nil
	}); err == nil {
		t.Fatal("nil detector from the factory must not validate")
	}
}
