package core

import "math"

// Moments is an exponentially weighted online estimate of the first two
// moments of the monitored metric: the µX and σX the paper's detectors
// are parameterized by, tracked continuously so the workload-shift layer
// (shift.go) can re-estimate a baseline after the workload moves. The
// smoothing factor is passed per call, like the Hygiene policy, so the
// state stays a plain value that packs into struct-of-arrays storage.
//
// The recurrence is the standard exponentially weighted mean/variance
// pair: with d = x - mean and incr = alpha*d,
//
//	mean     <- mean + incr
//	variance <- (1-alpha) * (variance + d*incr)
//
// The first observation seeds the mean exactly (variance 0), so the
// estimate carries no bias toward zero while the window warms up.
type Moments struct {
	mean float64
	varc float64
	n    uint64
}

// Observe folds one observation into the estimate with smoothing factor
// alpha in (0, 1]: larger alpha forgets faster. It is on the fleet's
// per-observation path and must stay allocation-free.
//
//lint:hotpath
func (m *Moments) Observe(alpha, x float64) {
	m.n++
	if m.n == 1 {
		m.mean = x
		m.varc = 0
		return
	}
	d := x - m.mean
	incr := alpha * d
	m.mean += incr
	m.varc = (1 - alpha) * (m.varc + d*incr)
}

// Mean returns the current exponentially weighted mean estimate (0
// before the first observation).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the current exponentially weighted variance estimate.
func (m *Moments) Variance() float64 { return m.varc }

// StdDev returns the square root of the variance estimate.
func (m *Moments) StdDev() float64 { return math.Sqrt(m.varc) }

// Count returns how many observations have been folded in since the
// last Reset.
func (m *Moments) Count() uint64 { return m.n }

// Reset discards the estimate.
func (m *Moments) Reset() { *m = Moments{} }
