package core

import "fmt"

// bucketState is the ball-and-bucket counter shared by SRAA and SARAA,
// implementing exactly the transitions of the paper's pseudo-code
// (Figs. 6 and 7):
//
//	exceed target:  d++        otherwise: d--
//	d > D          -> overflow:  d = 0, N++
//	d < 0 && N > 0 -> underflow: d = D, N--
//	d < 0 && N == 0 -> d = 0
//	N == K         -> trigger, then d = 0, N = 0
//
// Note the pseudo-code overflows on d > D (strict), i.e. a bucket holds
// D+1 net exceedances before spilling; the prose "reaches its allowed
// depth" is ambiguous and the pseudo-code is authoritative here.
type bucketState struct {
	k     int // number of buckets K
	depth int // bucket depth D
	fill  int // current ball count d
	level int // current bucket pointer N in [0, K)
}

// bucketEvent describes what a bucket step did, so SARAA can react to
// overflow/underflow by resizing its sample.
type bucketEvent int

const (
	bucketNone bucketEvent = iota
	bucketOverflow
	bucketUnderflow
	bucketTrigger
)

func newBucketState(k, depth int) (bucketState, error) {
	if k <= 0 {
		return bucketState{}, fmt.Errorf("core: number of buckets K must be positive, got %d", k)
	}
	if depth <= 0 {
		return bucketState{}, fmt.Errorf("core: bucket depth D must be positive, got %d", depth)
	}
	return bucketState{k: k, depth: depth}, nil
}

// step applies one exceed/recede observation and returns what happened.
// On trigger the state has already been reset to (d=0, N=0).
func (b *bucketState) step(exceeded bool) bucketEvent {
	if exceeded {
		b.fill++
	} else {
		b.fill--
	}
	event := bucketNone
	switch {
	case b.fill > b.depth:
		b.fill = 0
		b.level++
		event = bucketOverflow
	case b.fill < 0 && b.level > 0:
		b.fill = b.depth
		b.level--
		event = bucketUnderflow
	case b.fill < 0:
		b.fill = 0
	}
	if b.level == b.k {
		b.fill = 0
		b.level = 0
		return bucketTrigger
	}
	return event
}

// reset restores the initial state.
func (b *bucketState) reset() {
	b.fill = 0
	b.level = 0
}
