package core

import "fmt"

// bucketState is the ball-and-bucket counter shared by SRAA and SARAA,
// implementing exactly the transitions of the paper's pseudo-code
// (Figs. 6 and 7):
//
//	exceed target:  d++        otherwise: d--
//	d > D          -> overflow:  d = 0, N++
//	d < 0 && N > 0 -> underflow: d = D, N--
//	d < 0 && N == 0 -> d = 0
//	N == K         -> trigger, then d = 0, N = 0
//
// Note the pseudo-code overflows on d > D (strict), i.e. a bucket holds
// D+1 net exceedances before spilling; the prose "reaches its allowed
// depth" is ambiguous and the pseudo-code is authoritative here.
type bucketState struct {
	k     int // number of buckets K
	depth int // bucket depth D
	fill  int // current ball count d
	level int // current bucket pointer N in [0, K)
}

// BucketEvent describes what one ball-and-bucket step did, so callers
// can react to overflow/underflow (SARAA resizes its sample) and to the
// trigger itself.
type BucketEvent int

// Ball-and-bucket step outcomes.
const (
	// BucketNone is an ordinary fill or drain within the current bucket.
	BucketNone BucketEvent = iota
	// BucketOverflow spilled the current bucket: the level advanced.
	BucketOverflow
	// BucketUnderflow drained the current bucket: the level receded.
	BucketUnderflow
	// BucketTrigger overflowed the last bucket: rejuvenate now. The
	// returned state is already reset to (fill 0, level 0).
	BucketTrigger
)

func newBucketState(k, depth int) (bucketState, error) {
	if k <= 0 {
		return bucketState{}, fmt.Errorf("core: number of buckets K must be positive, got %d", k)
	}
	if depth <= 0 {
		return bucketState{}, fmt.Errorf("core: bucket depth D must be positive, got %d", depth)
	}
	return bucketState{k: k, depth: depth}, nil
}

// BucketStep applies one exceed/recede observation to a ball-and-bucket
// counter with k buckets of depth, currently at (fill, level), and
// returns the successor state and what happened. It is the single
// authoritative transition function of the paper's pseudo-code, shared
// by the pointer-based detectors here and the fleet engine's
// struct-of-arrays shards, so the two implementations cannot diverge.
// On BucketTrigger the returned state is already reset to (0, 0).
func BucketStep(k, depth, fill, level int, exceeded bool) (nfill, nlevel int, ev BucketEvent) {
	if exceeded {
		fill++
	} else {
		fill--
	}
	ev = BucketNone
	switch {
	case fill > depth:
		fill = 0
		level++
		ev = BucketOverflow
	case fill < 0 && level > 0:
		fill = depth
		level--
		ev = BucketUnderflow
	case fill < 0:
		fill = 0
	}
	if level == k {
		return 0, 0, BucketTrigger
	}
	return fill, level, ev
}

// step applies one exceed/recede observation and returns what happened.
// On trigger the state has already been reset to (d=0, N=0).
func (b *bucketState) step(exceeded bool) BucketEvent {
	var ev BucketEvent
	b.fill, b.level, ev = BucketStep(b.k, b.depth, b.fill, b.level, exceeded)
	return ev
}

// reset restores the initial state.
func (b *bucketState) reset() {
	b.fill = 0
	b.level = 0
}
