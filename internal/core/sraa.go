package core

import "fmt"

// SRAAConfig parameterizes the static rejuvenation algorithm with
// averaging (paper Fig. 6).
type SRAAConfig struct {
	// SampleSize is n, the number of observations averaged per step.
	SampleSize int
	// Buckets is K, the number of buckets; rejuvenation fires when the
	// K-th bucket overflows, i.e. after evidence of a shift by K-1
	// standard deviations.
	Buckets int
	// Depth is D, the bucket depth.
	Depth int
	// Baseline is the (mean, standard deviation) of the metric under
	// normal behaviour, from the service level agreement.
	Baseline Baseline
}

// Validate reports whether the configuration is usable.
func (c SRAAConfig) Validate() error {
	if c.SampleSize <= 0 {
		return fmt.Errorf("core: SRAA sample size n must be positive, got %d", c.SampleSize)
	}
	if _, err := newBucketState(c.Buckets, c.Depth); err != nil {
		return err
	}
	return c.Baseline.Validate()
}

// SRAA is the static rejuvenation algorithm with averaging: it averages
// blocks of n observations and runs the ball-and-bucket counter against
// targets mu + N*sigma. Because the targets do not shrink with n, SRAA
// "verifies" that the metric's distribution has shifted right by K-1
// whole standard deviations before triggering.
type SRAA struct {
	cfg     SRAAConfig
	window  sampleWindow
	buckets bucketState
}

// NewSRAA returns an SRAA detector for the given configuration.
func NewSRAA(cfg SRAAConfig) (*SRAA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid SRAA config: %w", err)
	}
	b, err := newBucketState(cfg.Buckets, cfg.Depth)
	if err != nil {
		return nil, err
	}
	return &SRAA{
		cfg:     cfg,
		window:  sampleWindow{size: cfg.SampleSize},
		buckets: b,
	}, nil
}

// Config returns the configuration the detector was built with.
func (s *SRAA) Config() SRAAConfig { return s.cfg }

// Target returns the threshold the current bucket compares sample means
// against: mu + N*sigma.
func (s *SRAA) Target() float64 {
	return s.cfg.Baseline.Mean + float64(s.buckets.level)*s.cfg.Baseline.StdDev
}

// Observe feeds one observation.
//
//lint:hotpath
func (s *SRAA) Observe(x float64) Decision {
	mean, done := s.window.add(x)
	if !done {
		return Decision{Level: s.buckets.level, Fill: s.buckets.fill}
	}
	target := s.Target()
	event := s.buckets.step(mean > target)
	return Decision{
		Triggered:  event == BucketTrigger,
		Evaluated:  true,
		SampleMean: mean,
		Target:     target,
		Level:      s.buckets.level,
		Fill:       s.buckets.fill,
	}
}

// Reset restores the initial state.
func (s *SRAA) Reset() {
	s.window.reset()
	s.buckets.reset()
}

// NewStatic returns the static rejuvenation algorithm of the paper's
// earlier work ([1]): the bucket counter applied to raw observations,
// which is exactly SRAA with sample size one.
func NewStatic(buckets, depth int, baseline Baseline) (*SRAA, error) {
	return NewSRAA(SRAAConfig{
		SampleSize: 1,
		Buckets:    buckets,
		Depth:      depth,
		Baseline:   baseline,
	})
}
