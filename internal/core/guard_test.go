package core

import (
	"math"
	"testing"
	"time"
)

func TestCooldownZeroNeverSuppresses(t *testing.T) {
	c := NewCooldown(0)
	c.Open(100)
	if c.Active(100) || c.Active(101) {
		t.Fatal("zero-window cooldown must never be active")
	}
}

func TestCooldownWindow(t *testing.T) {
	c := NewCooldown(10 * time.Nanosecond)
	if c.Active(5) {
		t.Fatal("cooldown active before any trigger")
	}
	c.Open(100)
	if !c.Active(100) || !c.Active(109) {
		t.Fatal("cooldown must cover [open, open+window)")
	}
	if c.Active(110) {
		t.Fatal("cooldown active at exactly the window boundary; a trigger exactly at expiry must deliver")
	}
	c.Reset()
	if c.Active(105) {
		t.Fatal("cooldown survived Reset")
	}
}

func TestCooldownNegativeWindowDisabled(t *testing.T) {
	c := NewCooldown(-time.Second)
	c.Open(0)
	if c.Active(1) {
		t.Fatal("negative window must behave as disabled")
	}
}

func TestWatchdogDisabled(t *testing.T) {
	var w Watchdog // zero value: disabled
	if w.Enabled() {
		t.Fatal("zero watchdog reports enabled")
	}
	if tripped, _ := w.Check(1 << 40); tripped {
		t.Fatal("disabled watchdog tripped")
	}
}

func TestWatchdogTripsOnceAndClears(t *testing.T) {
	w := NewWatchdog(10 * time.Nanosecond)
	// First check arms instead of tripping.
	if tripped, _ := w.Check(0); tripped || w.Stalled() {
		t.Fatal("first check must arm, not trip")
	}
	if tripped, _ := w.Check(10); tripped {
		t.Fatal("tripped at silence == max silence (boundary is exclusive)")
	}
	tripped, silence := w.Check(11)
	if !tripped || silence != 11 {
		t.Fatalf("want trip with silence 11, got tripped=%v silence=%v", tripped, silence)
	}
	if tripped, _ := w.Check(20); tripped {
		t.Fatal("latched stall tripped twice")
	}
	if !w.Stalled() {
		t.Fatal("stall did not latch")
	}
	if cleared := w.Feed(21); !cleared {
		t.Fatal("feed did not report clearing the latched stall")
	}
	if w.Stalled() {
		t.Fatal("stall survived a feed")
	}
	if cleared := w.Feed(22); cleared {
		t.Fatal("feed reported clearing when nothing was latched")
	}
}

func TestHygieneStateRejectAndClamp(t *testing.T) {
	var s HygieneState

	// Reject before any admitted value: nothing to clamp to either.
	if _, ok, intercepted := s.Admit(HygieneReject, math.NaN()); ok || !intercepted {
		t.Fatalf("reject of NaN: ok=%v intercepted=%v", ok, intercepted)
	}
	if _, ok, intercepted := s.Admit(HygieneClamp, math.Inf(1)); ok || !intercepted {
		t.Fatalf("clamp with no prior value must reject: ok=%v intercepted=%v", ok, intercepted)
	}

	// A finite value passes and becomes the clamp substitute.
	if v, ok, intercepted := s.Admit(HygieneClamp, 3.5); !ok || intercepted || v != 3.5 {
		t.Fatalf("finite admit: v=%v ok=%v intercepted=%v", v, ok, intercepted)
	}
	if v, ok, intercepted := s.Admit(HygieneClamp, math.NaN()); !ok || !intercepted || v != 3.5 {
		t.Fatalf("clamp substitution: v=%v ok=%v intercepted=%v", v, ok, intercepted)
	}

	// HygieneOff passes everything through uncounted.
	if v, ok, intercepted := s.Admit(HygieneOff, math.Inf(-1)); !ok || intercepted || !math.IsInf(v, -1) {
		t.Fatalf("off must pass -Inf through: v=%v ok=%v intercepted=%v", v, ok, intercepted)
	}
}

func TestAcceleratedSampleSizeMatchesPaper(t *testing.T) {
	// The integer form must round exactly; norig=6, K=5, N=4 is the case
	// the floating-point form gets wrong (1 instead of 2).
	if got := AcceleratedSampleSize(6, 5, 4); got != 2 {
		t.Fatalf("AcceleratedSampleSize(6,5,4) = %d, want 2", got)
	}
	if got := AcceleratedSampleSize(6, 5, 0); got != 6 {
		t.Fatalf("level 0 must keep n_orig: got %d", got)
	}
	// Never below 1.
	if got := AcceleratedSampleSize(1, 3, 2); got != 1 {
		t.Fatalf("n stays at 1: got %d", got)
	}
}

func TestBucketStepMatchesState(t *testing.T) {
	// The exported pure function and the internal state machine must be
	// the same transition relation (the state machine delegates, but pin
	// it anyway: this equality is what fleet replay equivalence rests on).
	b, err := newBucketState(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fill, level := 0, 0
	seq := []bool{true, true, true, false, true, true, true, true, true, true, true, true}
	for i, exceeded := range seq {
		var ev BucketEvent
		fill, level, ev = BucketStep(3, 2, fill, level, exceeded)
		got := b.step(exceeded)
		if fill != b.fill || level != b.level || ev != got {
			t.Fatalf("step %d diverged: pure (%d,%d,%v) vs state (%d,%d,%v)",
				i, fill, level, ev, b.fill, b.level, got)
		}
	}
}
