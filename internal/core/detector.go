// Package core implements the paper's contribution: rejuvenation-
// triggering algorithms that watch a customer-affecting metric (response
// time) and decide when software rejuvenation should be carried out.
//
// The three algorithms of the paper are SRAA (static rejuvenation with
// averaging), SARAA (sampling-acceleration rejuvenation with averaging)
// and CLTA (central-limit-theorem algorithm). Static, the per-observation
// bucket algorithm of the earlier work the paper extends, is SRAA with
// sample size one. The package also provides classical change-detection
// comparators (Shewhart, EWMA, CUSUM) used in ablation experiments, and
// an adaptive wrapper that estimates the baseline online (the paper's
// stated future work).
//
// All detectors are deterministic state machines: the same observation
// sequence always yields the same decisions. None of them is safe for
// concurrent use; wrap them in the public Monitor for that.
package core

import (
	"fmt"
	"math"
)

// Baseline is the service-level specification of normal behaviour: the
// mean and standard deviation of the metric when the system is healthy.
// The paper's experiments use Mean = StdDev = 5 seconds.
type Baseline struct {
	Mean   float64
	StdDev float64
}

// Validate reports whether the baseline is usable.
func (b Baseline) Validate() error {
	if math.IsNaN(b.Mean) || math.IsInf(b.Mean, 0) {
		return fmt.Errorf("core: baseline mean %v must be finite", b.Mean)
	}
	if b.StdDev <= 0 || math.IsNaN(b.StdDev) || math.IsInf(b.StdDev, 0) {
		return fmt.Errorf("core: baseline standard deviation %v must be positive and finite", b.StdDev)
	}
	return nil
}

// Decision is the outcome of feeding one observation to a detector.
type Decision struct {
	// Triggered reports that rejuvenation should be carried out now.
	// The detector has already reset itself to its initial state.
	Triggered bool
	// Evaluated reports that this observation completed a sample and the
	// detector performed a bucket (or threshold) step.
	Evaluated bool
	// SampleMean is the completed sample mean; valid only when Evaluated.
	SampleMean float64
	// Target is the threshold SampleMean was compared against when the
	// decision was made (before any post-trigger reset); valid only when
	// Evaluated. For EWMA and CUSUM it is the control limit their chart
	// statistic was compared against.
	Target float64
	// Level is the current bucket pointer N after the step (0 for
	// detectors without buckets).
	Level int
	// Fill is the current ball count d after the step (0 for detectors
	// without buckets).
	Fill int
}

// Detector consumes observations of the customer-affecting metric one at
// a time and decides when to trigger rejuvenation. Implementations
// assume smaller metric values are better, as holds for response time.
type Detector interface {
	// Observe feeds one metric observation and returns the decision.
	Observe(x float64) Decision
	// Reset restores the initial state, as after an external
	// rejuvenation or restart.
	Reset()
}

// Compile-time interface compliance checks.
var (
	_ Detector = (*SRAA)(nil)
	_ Detector = (*SARAA)(nil)
	_ Detector = (*CLTA)(nil)
	_ Detector = (*Shewhart)(nil)
	_ Detector = (*EWMA)(nil)
	_ Detector = (*CUSUM)(nil)
	_ Detector = (*Adaptive)(nil)
	_ Detector = (*Rebase)(nil)
)
