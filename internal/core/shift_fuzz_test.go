package core

import (
	"math"
	"testing"
)

// fuzzZ maps one fuzz byte to a standardized residual in [-4, 4).
func fuzzZ(b byte) float64 { return (float64(b) - 128) / 32 }

// fuzzShiftStreams builds two copies of the fuzzed residual stream, the
// second with a strictly larger constant shift added from the onset
// index on. Detection of the larger shift must never come later — the
// monotonicity law both change-point fuzzers check.
func fuzzShiftStreams(raw []byte, onsetRaw, magRaw, extraRaw uint8) (onset int, s1, s2 float64) {
	if len(raw) == 0 {
		return 0, 0, 0.5
	}
	onset = int(onsetRaw) % len(raw)
	s1 = float64(magRaw%8) / 2            // [0, 3.5]
	s2 = s1 + float64(extraRaw%8)/2 + 0.5 // s2 > s1 always
	return onset, s1, s2
}

// FuzzCUSUM drives the CUSUM change-point statistic with arbitrary
// residual streams and checks: Step never panics, both one-sided sums
// stay finite and non-negative with run lengths consistent with them,
// and detection is monotone in shift magnitude — a larger constant
// shift added from the same onset is detected no later.
func FuzzCUSUM(f *testing.F) {
	f.Add([]byte{128, 128, 255, 255, 255, 255}, uint8(2), uint8(4), uint8(2))
	f.Add([]byte{0, 64, 128, 192, 255}, uint8(0), uint8(0), uint8(7))
	f.Add([]byte{}, uint8(3), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, onsetRaw, magRaw, extraRaw uint8) {
		onset, s1, s2 := fuzzShiftStreams(raw, onsetRaw, magRaw, extraRaw)
		const slack, threshold = 0.5, 8.0
		run := func(shift float64) int {
			var c CUSUMChange
			for i, b := range raw {
				z := fuzzZ(b)
				if i >= onset {
					z += shift
				}
				detected, up := c.Step(z, slack, threshold)
				if math.IsNaN(c.Pos) || math.IsInf(c.Pos, 0) || c.Pos < 0 ||
					math.IsNaN(c.Neg) || math.IsInf(c.Neg, 0) || c.Neg < 0 {
					t.Fatalf("observation %d: sums escaped [0, inf): Pos=%v Neg=%v", i, c.Pos, c.Neg)
				}
				if (c.Pos > 0) != (c.PosRun > 0) || (c.Neg > 0) != (c.NegRun > 0) {
					t.Fatalf("observation %d: run lengths inconsistent: %+v", i, c)
				}
				if detected && up {
					return i
				}
			}
			return -1
		}
		idx1, idx2 := run(s1), run(s2)
		if idx1 >= 0 && (idx2 < 0 || idx2 > idx1) {
			t.Fatalf("shift %v detected at %d but larger shift %v at %d", s1, idx1, s2, idx2)
		}
	})
}

// FuzzPageHinkley is the same contract for the Page–Hinkley statistic:
// no panics, finite non-negative one-sided deviations, run lengths
// consistent, and up-side detection monotone in shift magnitude.
func FuzzPageHinkley(f *testing.F) {
	f.Add([]byte{128, 128, 255, 255, 255, 255}, uint8(2), uint8(4), uint8(2))
	f.Add([]byte{0, 64, 128, 192, 255}, uint8(0), uint8(0), uint8(7))
	f.Add([]byte{}, uint8(3), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, onsetRaw, magRaw, extraRaw uint8) {
		onset, s1, s2 := fuzzShiftStreams(raw, onsetRaw, magRaw, extraRaw)
		const delta, lambda = 0.5, 8.0
		run := func(shift float64) int {
			var p PageHinkleyChange
			for i, b := range raw {
				z := fuzzZ(b)
				if i >= onset {
					z += shift
				}
				detected, up := p.Step(z, delta, lambda)
				if math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0) {
					t.Fatalf("observation %d: running mean %v not finite", i, p.Mean)
				}
				if math.IsNaN(p.Up) || math.IsInf(p.Up, 0) || p.Up < 0 ||
					math.IsNaN(p.Down) || math.IsInf(p.Down, 0) || p.Down < 0 {
					t.Fatalf("observation %d: deviations escaped [0, inf): Up=%v Down=%v", i, p.Up, p.Down)
				}
				if (p.Up > 0) != (p.UpRun > 0) || (p.Down > 0) != (p.DownRun > 0) {
					t.Fatalf("observation %d: run lengths inconsistent: %+v", i, p)
				}
				if detected && up {
					return i
				}
			}
			return -1
		}
		idx1, idx2 := run(s1), run(s2)
		if idx1 >= 0 && (idx2 < 0 || idx2 > idx1) {
			t.Fatalf("shift %v detected at %d but larger shift %v at %d", s1, idx1, s2, idx2)
		}
	})
}
