package core

import "testing"

func TestTriggerIDDeterministic(t *testing.T) {
	if TriggerID(42, 1000) != TriggerID(42, 1000) {
		t.Fatal("TriggerID is not a pure function of its inputs")
	}
	if TriggerID(42, 1000) == TriggerID(43, 1000) {
		t.Error("different streams share a trigger id")
	}
	if TriggerID(42, 1000) == TriggerID(42, 1001) {
		t.Error("different observation ordinals share a trigger id")
	}
}

func TestTriggerIDNeverZero(t *testing.T) {
	// 0 means "no trigger id" in journal records; the mint must avoid it
	// even for degenerate inputs.
	cases := [][2]uint64{{0, 0}, {0, 1}, {1, 0}, {^uint64(0), ^uint64(0)}}
	for _, c := range cases {
		if TriggerID(c[0], c[1]) == 0 {
			t.Errorf("TriggerID(%d, %d) = 0", c[0], c[1])
		}
	}
	for s := uint64(0); s < 64; s++ {
		for o := uint64(0); o < 1024; o++ {
			if TriggerID(s, o) == 0 {
				t.Fatalf("TriggerID(%d, %d) = 0", s, o)
			}
		}
	}
}

func TestTriggerIDCollisionFree(t *testing.T) {
	// A fleet-scale sanity check: distinct (stream, obs) pairs across a
	// plausible working set must not collide.
	seen := make(map[uint64][2]uint64, 64*1024)
	for s := uint64(1); s <= 64; s++ {
		for o := uint64(1); o <= 1024; o++ {
			id := TriggerID(s, o)
			if prev, dup := seen[id]; dup {
				t.Fatalf("TriggerID collision: (%d,%d) and (%d,%d) -> %#x", prev[0], prev[1], s, o, id)
			}
			seen[id] = [2]uint64{s, o}
		}
	}
}
