package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestShewhartTriggersAboveLimit(t *testing.T) {
	det, err := NewShewhart(3, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if det.Target() != 20 {
		t.Fatalf("target = %v, want mu + 3*sigma = 20", det.Target())
	}
	if det.Observe(20).Triggered {
		t.Fatal("triggered at the limit (comparison must be strict)")
	}
	if !det.Observe(20.01).Triggered {
		t.Fatal("did not trigger above the limit")
	}
}

func TestShewhartIsMemoryless(t *testing.T) {
	det, err := NewShewhart(2, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		det.Observe(14.99) // just below the limit, forever
	}
	if det.Observe(14.99).Triggered {
		t.Fatal("memoryless chart accumulated state")
	}
}

func TestShewhartValidation(t *testing.T) {
	if _, err := NewShewhart(0, testBaseline); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewShewhart(2, Baseline{}); err == nil {
		t.Error("invalid baseline accepted")
	}
}

func TestEWMAStatisticConverges(t *testing.T) {
	det, err := NewEWMA(0.2, 3, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if det.Statistic() != 5 {
		t.Fatalf("initial statistic %v, want baseline mean", det.Statistic())
	}
	// Feed a constant below the limit: z converges geometrically to it.
	for i := 0; i < 200; i++ {
		det.Observe(6)
	}
	if math.Abs(det.Statistic()-6) > 1e-9 {
		t.Fatalf("statistic %v did not converge to 6", det.Statistic())
	}
}

func TestEWMATriggersOnSustainedShift(t *testing.T) {
	det, err := NewEWMA(0.2, 3, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	limit := det.Target()
	want := 5 + 3*5*math.Sqrt(0.2/1.8)
	if math.Abs(limit-want) > 1e-12 {
		t.Fatalf("target %v, want %v", limit, want)
	}
	triggered := false
	for i := 0; i < 100; i++ {
		if det.Observe(12).Triggered { // well above the limit's fixed point
			triggered = true
			break
		}
	}
	if !triggered {
		t.Fatal("EWMA never triggered on a sustained large shift")
	}
	if det.Statistic() != 5 {
		t.Fatalf("statistic %v after trigger, want reset to baseline mean", det.Statistic())
	}
}

func TestEWMAResistsSingleOutlier(t *testing.T) {
	det, err := NewEWMA(0.1, 3, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	// One spike: z = 0.9*5 + 0.1*30 = 7.5, below the 8.44 limit.
	if det.Observe(30).Triggered {
		t.Fatal("EWMA triggered on a single outlier")
	}
}

func TestEWMAValidation(t *testing.T) {
	for _, w := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewEWMA(w, 3, testBaseline); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	if _, err := NewEWMA(0.2, 0, testBaseline); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestCUSUMAccumulatesDrift(t *testing.T) {
	det, err := NewCUSUM(0.5, 5, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	// Observations one sigma above mean add (1 - 0.5) = 0.5 per step:
	// the statistic must cross h = 5 after 11 steps.
	steps := 0
	for {
		steps++
		if det.Observe(10).Triggered {
			break
		}
		if steps > 100 {
			t.Fatal("CUSUM never triggered")
		}
	}
	if steps != 11 {
		t.Fatalf("triggered after %d steps, want 11", steps)
	}
	if det.Statistic() != 0 {
		t.Fatalf("statistic %v after trigger, want 0", det.Statistic())
	}
}

func TestCUSUMClampsAtZero(t *testing.T) {
	det, err := NewCUSUM(0.5, 4, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		det.Observe(0) // far below mean
	}
	if det.Statistic() != 0 {
		t.Fatalf("statistic %v, want clamped at 0", det.Statistic())
	}
}

func TestCUSUMIgnoresWithinSlackNoise(t *testing.T) {
	det, err := NewCUSUM(1, 4, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 10_000; i++ {
		// Mean-centered noise with sd well below slack never triggers.
		if det.Observe(5 + rng.NormFloat64()).Triggered {
			t.Fatal("CUSUM triggered on sub-slack noise")
		}
	}
}

func TestCUSUMValidation(t *testing.T) {
	if _, err := NewCUSUM(-1, 4, testBaseline); err == nil {
		t.Error("negative slack accepted")
	}
	if _, err := NewCUSUM(0.5, 0, testBaseline); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewCUSUM(0.5, 4, Baseline{StdDev: -1}); err == nil {
		t.Error("invalid baseline accepted")
	}
}

func TestBaselineValidate(t *testing.T) {
	tests := []struct {
		name string
		b    Baseline
		ok   bool
	}{
		{"paper baseline", Baseline{Mean: 5, StdDev: 5}, true},
		{"zero mean is fine", Baseline{Mean: 0, StdDev: 1}, true},
		{"negative mean is fine", Baseline{Mean: -2, StdDev: 1}, true},
		{"zero sd", Baseline{Mean: 5, StdDev: 0}, false},
		{"NaN mean", Baseline{Mean: math.NaN(), StdDev: 1}, false},
		{"Inf sd", Baseline{Mean: 5, StdDev: math.Inf(1)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.b.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate(%+v) = %v, want ok=%v", tt.b, err, tt.ok)
			}
		})
	}
}
