package core

import (
	"fmt"
	"math"
)

// SARAAConfig parameterizes the sampling-acceleration rejuvenation
// algorithm with averaging (paper Fig. 7).
type SARAAConfig struct {
	// InitialSampleSize is n_orig, the sample size used while the first
	// bucket is current. Deeper buckets use smaller samples.
	InitialSampleSize int
	// Buckets is K, the number of buckets.
	Buckets int
	// Depth is D, the bucket depth.
	Depth int
	// Baseline is the normal-behaviour (mean, standard deviation).
	Baseline Baseline
}

// Validate reports whether the configuration is usable.
func (c SARAAConfig) Validate() error {
	if c.InitialSampleSize <= 0 {
		return fmt.Errorf("core: SARAA initial sample size must be positive, got %d", c.InitialSampleSize)
	}
	if _, err := newBucketState(c.Buckets, c.Depth); err != nil {
		return err
	}
	return c.Baseline.Validate()
}

// SARAA is the sampling-acceleration rejuvenation algorithm with
// averaging. Unlike SRAA it follows the hypothesis-testing paradigm:
// targets are mu + N*sigma/sqrt(n), the standard deviation of the sample
// mean, and the sample size shrinks linearly as degradation deepens —
// n = floor(1 + (n_orig-1)*(1 - N/K)) — so confirmation of a developing
// degradation arrives faster.
type SARAA struct {
	cfg     SARAAConfig
	window  sampleWindow
	buckets bucketState
}

// NewSARAA returns a SARAA detector for the given configuration.
func NewSARAA(cfg SARAAConfig) (*SARAA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid SARAA config: %w", err)
	}
	b, err := newBucketState(cfg.Buckets, cfg.Depth)
	if err != nil {
		return nil, err
	}
	return &SARAA{
		cfg:     cfg,
		window:  sampleWindow{size: cfg.InitialSampleSize},
		buckets: b,
	}, nil
}

// Config returns the configuration the detector was built with.
func (s *SARAA) Config() SARAAConfig { return s.cfg }

// SampleSize returns the sample size currently in use, which depends on
// the current bucket: floor(1 + (n_orig-1)*(1 - N/K)).
func (s *SARAA) SampleSize() int { return s.window.size }

// AcceleratedSampleSize returns the paper's linear sampling-
// acceleration rule for bucket level N: floor(1 + (norig-1)*(1 - N/K)).
// Evaluated in integer arithmetic — floor(1 + (norig-1)*(K-N)/K) —
// because the floating-point form rounds cases like norig=6, K=5, N=4
// down to 1 instead of the exact 2. Exported because the fleet engine's
// struct-of-arrays SARAA state applies the identical rule; a diverging
// copy would silently break replay equivalence.
func AcceleratedSampleSize(norig, k, level int) int {
	return 1 + (norig-1)*(k-level)/k
}

// acceleratedSize applies AcceleratedSampleSize to this detector's
// configuration.
func (s *SARAA) acceleratedSize(level int) int {
	return AcceleratedSampleSize(s.cfg.InitialSampleSize, s.cfg.Buckets, level)
}

// Target returns the threshold the current bucket compares sample means
// against: mu + N*sigma/sqrt(n) with the current sample size n.
func (s *SARAA) Target() float64 {
	return s.cfg.Baseline.Mean +
		float64(s.buckets.level)*s.cfg.Baseline.StdDev/math.Sqrt(float64(s.window.size))
}

// Observe feeds one observation.
//
//lint:hotpath
func (s *SARAA) Observe(x float64) Decision {
	mean, done := s.window.add(x)
	if !done {
		return Decision{Level: s.buckets.level, Fill: s.buckets.fill}
	}
	target := s.Target()
	event := s.buckets.step(mean > target)
	switch event {
	case BucketOverflow, BucketUnderflow:
		// Recompute the sample size for the new current bucket.
		s.window.resize(s.acceleratedSize(s.buckets.level))
	case BucketTrigger:
		s.window.resize(s.cfg.InitialSampleSize)
	}
	return Decision{
		Triggered:  event == BucketTrigger,
		Evaluated:  true,
		SampleMean: mean,
		Target:     target,
		Level:      s.buckets.level,
		Fill:       s.buckets.fill,
	}
}

// Reset restores the initial state, including the original sample size.
func (s *SARAA) Reset() {
	s.buckets.reset()
	s.window.resize(s.cfg.InitialSampleSize)
}
