package core

import (
	"fmt"
	"math"

	"rejuv/internal/num"
)

// This file is the workload-shift decision layer: online baseline
// re-estimation (Moments) plus change-point detection (CUSUMChange,
// PageHinkleyChange) plus the rule that distinguishes "the workload
// shifted" — rebaseline and resume — from "the software aged" — let the
// wrapped detector trigger as today. The state machine is a plain value
// (ShiftState) with one shared transition (Step), used verbatim by both
// the pointer-based Rebase wrapper (rebase.go) and the fleet engine's
// struct-of-arrays drain loop, so the two implementations cannot
// diverge — the same construction that keeps BucketStep bit-identical
// across both worlds.
//
// The decision rule: the change-point statistic watches standardized
// residuals z = (x - µ)/σ against the committed baseline. When it
// crosses its threshold, the run length of the crossing side — how many
// consecutive observations the statistic needed to climb — classifies
// the change. An abrupt workload shift (a flash crowd arriving, a
// diurnal transition) drives z far from zero and crosses in a few
// observations; slow software aging drifts z upward a little per
// observation and needs a long climb. Runs at or below MaxShiftRun are
// shifts: the moment tracker restarts, a relearn window runs (the
// wrapped detector is paused so a half-filled sample of mixed regimes
// never completes), and the re-estimated (µ, σ) is committed as the new
// baseline. Longer upward runs are aging and are left to the wrapped
// detector. Downward changes always rebaseline: aging only ever makes
// response times worse, so a metric that moved down is a workload
// change by elimination.
//
// An aging classification latches: once the metric has drifted well
// above baseline, any further change-point crossing would have a short
// run (the statistic re-accumulates from an already-elevated z) and
// would masquerade as a shift, so the change-point layer stands down
// until the wrapped detector triggers — rejuvenation restores the
// system to baseline and re-arms the layer (NoteTrigger).

// ShiftDetector selects the change-point statistic of the shift layer.
type ShiftDetector int

// Change-point statistics for ShiftConfig.Detector.
const (
	// ShiftCUSUM is the two-sided cumulative-sum statistic (the default).
	ShiftCUSUM ShiftDetector = iota
	// ShiftPageHinkley is the two-sided Page–Hinkley statistic.
	ShiftPageHinkley
)

// String returns the detector's spec spelling.
func (d ShiftDetector) String() string {
	switch d {
	case ShiftCUSUM:
		return "cusum"
	case ShiftPageHinkley:
		return "page-hinkley"
	}
	return fmt.Sprintf("ShiftDetector(%d)", int(d))
}

// ShiftConfig tunes the workload-shift layer. The zero value selects
// the defaults below, so opting in never requires picking constants.
type ShiftConfig struct {
	// Detector selects the change-point statistic. Default ShiftCUSUM.
	Detector ShiftDetector
	// Alpha is the smoothing factor of the EWMA moment tracker, in
	// (0, 1]. 0 means 0.05 (an effective window of ~40 observations).
	Alpha float64
	// Slack is the per-observation drift allowance of the change-point
	// statistic, in σ units (the CUSUM slack, the Page–Hinkley delta).
	// 0 means 0.5. Negative is invalid; use math.SmallestNonzeroFloat64
	// for an effectively zero slack.
	Slack float64
	// Threshold is the change-point detection threshold, in σ units.
	// 0 means 8.
	Threshold float64
	// MaxShiftRun is the run-length boundary of the decision rule: an
	// upward change detected with a run of at most this many
	// observations is a workload shift; a longer run is software aging.
	// 0 means 20.
	MaxShiftRun int
	// Relearn is how many observations the moment tracker relearns over
	// after a shift before the new baseline is committed. The wrapped
	// detector is paused while it runs. 0 means 32; at least 2 so a
	// standard deviation exists.
	Relearn int
}

// WithDefaults returns the config with zero fields replaced by the
// documented defaults.
func (c ShiftConfig) WithDefaults() ShiftConfig {
	if num.Zero(c.Alpha) {
		c.Alpha = 0.05
	}
	if num.Zero(c.Slack) {
		c.Slack = 0.5
	}
	if num.Zero(c.Threshold) {
		c.Threshold = 8
	}
	if c.MaxShiftRun == 0 {
		c.MaxShiftRun = 20
	}
	if c.Relearn == 0 {
		c.Relearn = 32
	}
	return c
}

// Validate reports whether the (defaults-applied) config is usable.
func (c ShiftConfig) Validate() error {
	if c.Detector != ShiftCUSUM && c.Detector != ShiftPageHinkley {
		return fmt.Errorf("core: unknown shift detector %d", int(c.Detector))
	}
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		return fmt.Errorf("core: shift alpha %v must be in (0, 1]", c.Alpha)
	}
	if c.Slack < 0 || math.IsNaN(c.Slack) || math.IsInf(c.Slack, 0) {
		return fmt.Errorf("core: shift slack %v must be non-negative and finite", c.Slack)
	}
	if !(c.Threshold > 0) || math.IsInf(c.Threshold, 0) {
		return fmt.Errorf("core: shift threshold %v must be positive and finite", c.Threshold)
	}
	if c.MaxShiftRun < 1 {
		return fmt.Errorf("core: shift max run %d must be at least 1", c.MaxShiftRun)
	}
	if c.Relearn < 2 {
		return fmt.Errorf("core: shift relearn window %d must be at least 2 observations", c.Relearn)
	}
	return nil
}

// ShiftOutcome is the per-observation verdict of the shift layer.
type ShiftOutcome int

// Shift layer verdicts.
const (
	// ShiftNone: no change detected; the observation goes to the
	// wrapped detector as usual.
	ShiftNone ShiftOutcome = iota
	// ShiftRelearning: a shift was detected and the baseline is being
	// re-estimated; the wrapped detector is paused for this observation.
	ShiftRelearning
	// ShiftRebaselined: the relearn window just completed and the
	// re-estimated baseline was committed; the wrapped detector must be
	// rebuilt from it before the next observation.
	ShiftRebaselined
	// ShiftAging: the change-point statistic fired but the run length
	// classified the change as software aging; the observation goes to
	// the wrapped detector, which triggers as today. The classification
	// latches until the wrapped detector triggers (NoteTrigger), so it
	// is returned once per aging episode; subsequent observations of the
	// episode report ShiftNone.
	ShiftAging
)

// String returns the outcome's journal spelling.
func (o ShiftOutcome) String() string {
	switch o {
	case ShiftNone:
		return "none"
	case ShiftRelearning:
		return "relearning"
	case ShiftRebaselined:
		return "rebaselined"
	case ShiftAging:
		return "aging"
	}
	return fmt.Sprintf("ShiftOutcome(%d)", int(o))
}

// ShiftState is the per-stream state of the workload-shift layer: the
// committed baseline, the moment tracker and the change-point
// statistics. It is a plain value so the fleet engine can store one per
// stream in struct-of-arrays form; all behaviour lives in Step, which
// the Rebase wrapper shares verbatim.
type ShiftState struct {
	// Base is the committed baseline the wrapped detector currently runs
	// against.
	Base Baseline
	// Mom tracks the exponentially weighted moments of the admitted
	// observations.
	Mom Moments
	// CP and PH are the change-point statistics; only the one selected
	// by ShiftConfig.Detector advances.
	CP CUSUMChange
	PH PageHinkleyChange
	// RelearnLeft counts observations remaining in the relearn window;
	// 0 means no relearn is in progress.
	RelearnLeft int32
	// Aging latches an aging classification until the wrapped detector
	// triggers; while set, the change-point layer stands down.
	Aging bool
	// Rebaselines counts committed rebaselines.
	Rebaselines uint64
}

// NewShiftState returns the shift state anchored at the given baseline.
func NewShiftState(base Baseline) ShiftState {
	return ShiftState{Base: base}
}

// Step folds one admitted observation and returns the verdict. cfg must
// have defaults applied (WithDefaults) and be the same on every call.
// It is on the fleet's per-observation path and must stay
// allocation-free.
//
//lint:hotpath
func (s *ShiftState) Step(cfg ShiftConfig, x float64) ShiftOutcome {
	s.Mom.Observe(cfg.Alpha, x)
	if s.RelearnLeft > 0 {
		s.RelearnLeft--
		if s.RelearnLeft > 0 {
			return ShiftRelearning
		}
		mean, sd := s.Mom.Mean(), s.Mom.StdDev()
		// A degenerate relearn (constant window, non-finite poison under
		// HygieneOff) must never commit an unusable baseline: keep the
		// old spread, and the old center if even the mean is poisoned.
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			mean = s.Base.Mean
		}
		if !(sd > 0) || math.IsInf(sd, 0) {
			sd = s.Base.StdDev
		}
		s.Base = Baseline{Mean: mean, StdDev: sd}
		s.CP.Reset()
		s.PH.Reset()
		s.Rebaselines++
		return ShiftRebaselined
	}
	if s.Aging {
		// Latched on an aging episode: the metric sits far above
		// baseline, so any crossing now would have a short run and read
		// as a shift. Stand down until rejuvenation (NoteTrigger).
		return ShiftNone
	}
	z := (x - s.Base.Mean) / s.Base.StdDev
	var detected, up bool
	var run int
	switch cfg.Detector {
	case ShiftPageHinkley:
		detected, up = s.PH.Step(z, cfg.Slack, cfg.Threshold)
		run = s.PH.Run(up)
	default:
		detected, up = s.CP.Step(z, cfg.Slack, cfg.Threshold)
		run = s.CP.Run(up)
	}
	if !detected {
		return ShiftNone
	}
	if up && run > cfg.MaxShiftRun {
		// A long upward climb is slow drift: software aging. Latch, and
		// let the wrapped detector condemn the system as today.
		s.CP.Reset()
		s.PH.Reset()
		s.Aging = true
		return ShiftAging
	}
	// An abrupt change (or any downward one) is a workload shift:
	// restart the moment tracker on the post-shift regime — seeded with
	// the current observation — and relearn before committing.
	s.Mom.Reset()
	s.Mom.Observe(cfg.Alpha, x)
	s.CP.Reset()
	s.PH.Reset()
	s.RelearnLeft = int32(cfg.Relearn)
	return ShiftRelearning
}

// NoteTrigger tells the shift layer the wrapped detector triggered:
// rejuvenation is about to restore the system to baseline, so the aging
// latch releases and the moment tracker restarts on the
// post-rejuvenation regime. The change-point statistics deliberately
// keep their accumulation: if the trigger condemned genuine aging,
// rejuvenation returns z to zero and they decay on their own; if the
// wrapped detector out-raced the change-point layer on a workload shift
// (a detector more sensitive than the shift threshold fires first),
// z stays elevated, the statistic keeps climbing across the trigger,
// and the shift is still classified instead of being reset into an
// endless false-trigger loop. Both the Rebase wrapper and the fleet
// drain loop call this on every triggering decision, keeping the two
// implementations bit-identical.
//
//lint:hotpath
func (s *ShiftState) NoteTrigger() {
	s.Aging = false
	s.Mom.Reset()
}
