package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestAdaptiveLearnsBaseline(t *testing.T) {
	var built Baseline
	det, err := NewAdaptive(1000, func(b Baseline) (Detector, error) {
		built = b
		return NewSRAA(SRAAConfig{SampleSize: 1, Buckets: 2, Depth: 3, Baseline: b})
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 1000; i++ {
		if d := det.Observe(5 * rng.ExpFloat64()); d.Triggered || d.Evaluated {
			t.Fatal("warmup produced decisions")
		}
	}
	b, ok := det.Learned()
	if !ok {
		t.Fatal("baseline not learned after warmup")
	}
	if b != built {
		t.Fatalf("Learned() = %+v, factory got %+v", b, built)
	}
	// Exponential(0.2): mean 5, sd 5, estimated from 1000 draws.
	if math.Abs(b.Mean-5) > 0.6 || math.Abs(b.StdDev-5) > 0.8 {
		t.Fatalf("learned baseline %+v far from (5, 5)", b)
	}
}

func TestAdaptiveDetectsShiftAfterWarmup(t *testing.T) {
	det, err := NewAdaptive(500, func(b Baseline) (Detector, error) {
		return NewSRAA(SRAAConfig{SampleSize: 2, Buckets: 2, Depth: 2, Baseline: b})
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(67))
	for i := 0; i < 500; i++ {
		det.Observe(1 + 0.2*rng.NormFloat64())
	}
	if _, ok := det.Learned(); !ok {
		t.Fatal("warmup incomplete")
	}
	triggered := false
	for i := 0; i < 200; i++ {
		if det.Observe(10).Triggered { // massive shift
			triggered = true
			break
		}
	}
	if !triggered {
		t.Fatal("adaptive detector missed a massive shift")
	}
}

func TestAdaptiveNoTriggerDuringWarmup(t *testing.T) {
	det, err := NewAdaptive(10_000, func(b Baseline) (Detector, error) {
		return NewShewhart(1, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9_999; i++ {
		if det.Observe(1e9).Triggered {
			t.Fatal("triggered during warmup")
		}
	}
}

func TestAdaptiveConstantWarmupRestartsLearning(t *testing.T) {
	det, err := NewAdaptive(10, func(b Baseline) (Detector, error) {
		return NewShewhart(3, b)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		det.Observe(5) // zero variance: degenerate baseline
	}
	if _, ok := det.Learned(); ok {
		t.Fatal("learned a degenerate baseline from a constant series")
	}
	// A varied series afterwards must succeed.
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 10; i++ {
		det.Observe(5 + rng.NormFloat64())
	}
	if _, ok := det.Learned(); !ok {
		t.Fatal("did not relearn after the degenerate warmup")
	}
}

func TestAdaptiveResetKeepsBaseline(t *testing.T) {
	det, err := NewAdaptive(100, func(b Baseline) (Detector, error) {
		return NewSRAA(SRAAConfig{SampleSize: 1, Buckets: 1, Depth: 1, Baseline: b})
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	for i := 0; i < 100; i++ {
		det.Observe(5 + rng.NormFloat64())
	}
	before, ok := det.Learned()
	if !ok {
		t.Fatal("not learned")
	}
	det.Reset()
	after, ok := det.Learned()
	if !ok || after != before {
		t.Fatal("Reset discarded the learned baseline")
	}
	det.Relearn()
	if _, ok := det.Learned(); ok {
		t.Fatal("Relearn kept the baseline")
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(1, func(Baseline) (Detector, error) { return nil, nil }); err == nil {
		t.Error("warmup 1 accepted")
	}
	if _, err := NewAdaptive(10, nil); err == nil {
		t.Error("nil factory accepted")
	}
}
