package core

import "math"

// Hygiene is the input-hygiene policy applied to observations before
// they reach a detector. Real telemetry streams deliver NaNs, infinities
// and other garbage (a probe that divides by zero, a collector that
// serializes a sentinel); the averaging detectors fold every admitted
// observation into running sums, so a single NaN would poison the
// sample mean — and with it every future decision — irreversibly.
//
// The zero value is HygieneReject: production paths are protected
// unless a caller explicitly opts out.
type Hygiene int

// Hygiene policies, from safest to most permissive.
const (
	// HygieneReject drops non-finite observations before the detector
	// sees them. Rejections are counted by the enclosing layer
	// (MonitorStats.Rejected, rejuv_observations_rejected_total).
	HygieneReject Hygiene = iota
	// HygieneClamp substitutes the most recent admitted observation for
	// a non-finite one, keeping the sample cadence intact (useful for
	// sample-counting detectors whose windows would otherwise stretch).
	// Non-finite observations arriving before any finite one are
	// rejected, since there is nothing to clamp to.
	HygieneClamp
	// HygieneOff admits everything, matching the pre-hardening
	// behaviour. A NaN poisons averaging detectors permanently; use
	// only when the stream is known clean (e.g. simulation output).
	HygieneOff
)

// String returns the policy name.
func (h Hygiene) String() string {
	switch h {
	case HygieneReject:
		return "reject"
	case HygieneClamp:
		return "clamp"
	case HygieneOff:
		return "off"
	}
	return "hygiene(?)"
}

// Admit applies the policy to one observation. last is the most recent
// admitted value (meaningful only when haveLast is true). It returns
// the value to feed the detector and whether to feed it at all.
func (h Hygiene) Admit(x, last float64, haveLast bool) (float64, bool) {
	if h == HygieneOff || !(math.IsNaN(x) || math.IsInf(x, 0)) {
		return x, true
	}
	if h == HygieneClamp && haveLast {
		return last, true
	}
	return 0, false
}
