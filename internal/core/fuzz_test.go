package core

import (
	"math"
	"testing"
)

// FuzzBucketInvariants drives the bucket state machine with arbitrary
// exceed/recede patterns and checks that its state never escapes the
// paper's invariants: 0 <= d <= D and 0 <= N < K at all times, and a
// trigger always leaves the machine in its initial state.
func FuzzBucketInvariants(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{0xFF, 0x00, 0xAA})
	f.Add(uint8(5), uint8(3), []byte{0xF0, 0x0F})
	f.Add(uint8(2), uint8(10), []byte{})
	f.Fuzz(func(t *testing.T, kRaw, dRaw uint8, pattern []byte) {
		k := int(kRaw%10) + 1
		d := int(dRaw%10) + 1
		b, err := newBucketState(k, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, byteVal := range pattern {
			for bit := 0; bit < 8; bit++ {
				event := b.step(byteVal>>bit&1 == 1)
				if b.fill < 0 || b.fill > d {
					t.Fatalf("fill %d escaped [0,%d]", b.fill, d)
				}
				if b.level < 0 || b.level >= k {
					t.Fatalf("level %d escaped [0,%d)", b.level, k)
				}
				if event == BucketTrigger && (b.fill != 0 || b.level != 0) {
					t.Fatalf("trigger left state fill=%d level=%d", b.fill, b.level)
				}
			}
		}
	})
}

// FuzzSRAAObserve feeds arbitrary observation streams and checks the
// decision contract: a decision is only Evaluated on every n-th
// observation, sample means are finite for finite inputs, and Observe
// never panics.
func FuzzSRAAObserve(f *testing.F) {
	f.Add(uint8(2), []byte{1, 200, 3, 255})
	f.Add(uint8(1), []byte{0})
	f.Fuzz(func(t *testing.T, nRaw uint8, raw []byte) {
		n := int(nRaw%8) + 1
		det, err := NewSRAA(SRAAConfig{
			SampleSize: n, Buckets: 3, Depth: 2,
			Baseline: Baseline{Mean: 5, StdDev: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range raw {
			x := float64(b) / 8 // observations in [0, ~32)
			dec := det.Observe(x)
			wantEval := (i+1)%n == 0
			if dec.Evaluated != wantEval {
				t.Fatalf("observation %d (n=%d): Evaluated=%v, want %v", i, n, dec.Evaluated, wantEval)
			}
			if dec.Evaluated && (math.IsNaN(dec.SampleMean) || math.IsInf(dec.SampleMean, 0)) {
				t.Fatalf("non-finite sample mean %v", dec.SampleMean)
			}
			if dec.Triggered && !dec.Evaluated {
				t.Fatal("trigger on a mid-sample observation")
			}
		}
	})
}

// FuzzSARAASampleSize checks that the acceleration rule keeps the
// sample size within [1, norig] for any parameters and any reachable
// level, including after arbitrary observation patterns.
func FuzzSARAASampleSize(f *testing.F) {
	f.Add(uint8(6), uint8(5), uint8(1), []byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, nRaw, kRaw, dRaw uint8, raw []byte) {
		norig := int(nRaw%30) + 1
		k := int(kRaw%8) + 1
		d := int(dRaw%5) + 1
		det, err := NewSARAA(SARAAConfig{
			InitialSampleSize: norig, Buckets: k, Depth: d,
			Baseline: Baseline{Mean: 5, StdDev: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range raw {
			det.Observe(float64(b))
			if s := det.SampleSize(); s < 1 || s > norig {
				t.Fatalf("sample size %d escaped [1,%d] at level %d", s, norig, det.buckets.level)
			}
		}
	})
}
