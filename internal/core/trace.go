package core

import (
	"fmt"
	"io"
)

// Tracer wraps a detector and writes a line per evaluated sample to an
// io.Writer, so operators can replay a response-time log and see the
// bucket dynamics that led (or did not lead) to each rejuvenation:
//
//	obs=42 mean=6.25 level=1 fill=2
//	obs=44 mean=9.80 level=1 fill=3 TRIGGER
//
// Tracing is for offline analysis and debugging; it adds an I/O write
// per completed sample.
type Tracer struct {
	inner Detector
	w     io.Writer
	count uint64
}

// NewTracer wraps the detector; every evaluated decision is logged to w.
func NewTracer(inner Detector, w io.Writer) (*Tracer, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: tracer needs a detector")
	}
	if w == nil {
		return nil, fmt.Errorf("core: tracer needs a writer")
	}
	return &Tracer{inner: inner, w: w}, nil
}

// Observe delegates and logs evaluated decisions. Write errors are
// swallowed: tracing must never turn a monitoring decision into a
// failure.
func (t *Tracer) Observe(x float64) Decision {
	t.count++
	d := t.inner.Observe(x)
	if d.Evaluated {
		suffix := ""
		if d.Triggered {
			suffix = " TRIGGER"
		}
		//lint:allow droppederr tracing must never turn a monitoring decision into a failure
		fmt.Fprintf(t.w, "obs=%d mean=%g level=%d fill=%d%s\n", //lint:allow hotpath the tracer is an offline debug wrapper, never on a production monitor
			t.count, d.SampleMean, d.Level, d.Fill, suffix)
	}
	return d
}

// Reset delegates and logs the reset.
func (t *Tracer) Reset() {
	//lint:allow droppederr tracing must never turn a monitoring decision into a failure
	fmt.Fprintf(t.w, "obs=%d RESET\n", t.count)
	t.inner.Reset()
}

var _ Detector = (*Tracer)(nil)
