package core

import (
	"math"
	"math/rand"
	"testing"
)

func mustSARAA(t *testing.T, n, k, d int) *SARAA {
	t.Helper()
	s, err := NewSARAA(SARAAConfig{InitialSampleSize: n, Buckets: k, Depth: d, Baseline: testBaseline})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSARAAConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  SARAAConfig
	}{
		{"zero sample size", SARAAConfig{InitialSampleSize: 0, Buckets: 1, Depth: 1, Baseline: testBaseline}},
		{"zero buckets", SARAAConfig{InitialSampleSize: 1, Buckets: 0, Depth: 1, Baseline: testBaseline}},
		{"zero depth", SARAAConfig{InitialSampleSize: 1, Buckets: 1, Depth: 0, Baseline: testBaseline}},
		{"bad baseline", SARAAConfig{InitialSampleSize: 1, Buckets: 1, Depth: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSARAA(tt.cfg); err == nil {
				t.Errorf("invalid config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestSARAAAccelerationSchedule(t *testing.T) {
	// The paper's rule: n = floor(1 + (norig-1)*(1 - N/K)).
	tests := []struct {
		norig, k int
		want     []int // sample size at levels 0..k-1
	}{
		{6, 5, []int{6, 5, 4, 3, 2}},
		{10, 3, []int{10, 7, 4}},
		{2, 5, []int{2, 1, 1, 1, 1}},
		{5, 1, []int{5}},
		{1, 4, []int{1, 1, 1, 1}},
	}
	for _, tt := range tests {
		det := mustSARAA(t, tt.norig, tt.k, 1)
		for level, want := range tt.want {
			if got := det.acceleratedSize(level); got != want {
				t.Errorf("norig=%d K=%d level %d: size %d, want %d",
					tt.norig, tt.k, level, got, want)
			}
		}
	}
}

func TestSARAASampleSizeShrinksOnOverflow(t *testing.T) {
	det := mustSARAA(t, 6, 5, 1)
	if det.SampleSize() != 6 {
		t.Fatalf("initial sample size %d, want 6", det.SampleSize())
	}
	// Overflow the first bucket: (D+1)=2 exceeding samples of size 6.
	for i := 0; i < 12; i++ {
		det.Observe(1e6)
	}
	if det.SampleSize() != 5 {
		t.Fatalf("sample size after first overflow %d, want 5", det.SampleSize())
	}
}

func TestSARAASampleSizeGrowsOnUnderflow(t *testing.T) {
	det := mustSARAA(t, 6, 5, 2)
	// Climb to level 1: 3 exceeding samples of size 6.
	for i := 0; i < 18; i++ {
		det.Observe(1e6)
	}
	if det.buckets.level != 1 || det.SampleSize() != 5 {
		t.Fatalf("level=%d size=%d after climb, want 1 and 5", det.buckets.level, det.SampleSize())
	}
	// Now recede: underflow needs fill to drop below zero — 1 sample
	// below target at fill 0... fill was reset to 0 on overflow, so a
	// single below-target sample of size 5 underflows back to level 0.
	for i := 0; i < 5; i++ {
		det.Observe(0)
	}
	if det.buckets.level != 0 {
		t.Fatalf("level %d after underflow, want 0", det.buckets.level)
	}
	if det.SampleSize() != 6 {
		t.Fatalf("sample size after underflow %d, want 6 (back to norig)", det.SampleSize())
	}
}

func TestSARAATargetUsesCurrentSampleSize(t *testing.T) {
	det := mustSARAA(t, 4, 2, 1)
	// Level 0: target is mu + 0*sigma/sqrt(n) = mu.
	if det.Target() != 5 {
		t.Fatalf("initial target %v, want 5", det.Target())
	}
	// Overflow to level 1: size becomes floor(1+3*(1-1/2)) = 2.
	for i := 0; i < 8; i++ {
		det.Observe(1e6)
	}
	if det.buckets.level != 1 {
		t.Fatalf("level = %d, want 1", det.buckets.level)
	}
	want := 5 + 1*5/math.Sqrt(2)
	if math.Abs(det.Target()-want) > 1e-12 {
		t.Fatalf("level-1 target %v, want %v", det.Target(), want)
	}
}

func TestSARAATriggerResetsToInitialSize(t *testing.T) {
	det := mustSARAA(t, 6, 2, 1)
	obs := 0
	for {
		obs++
		if det.Observe(1e6).Triggered {
			break
		}
		if obs > 1000 {
			t.Fatal("no trigger")
		}
	}
	// Level 0 needs 2 samples of 6 = 12, level 1 needs 2 samples of
	// floor(1+5*0.5) = 3 each: 18 observations total.
	if obs != 18 {
		t.Fatalf("triggered after %d observations, want 18", obs)
	}
	if det.SampleSize() != 6 {
		t.Fatalf("sample size after trigger %d, want norig", det.SampleSize())
	}
	if det.buckets.level != 0 || det.buckets.fill != 0 {
		t.Fatal("buckets not reset after trigger")
	}
}

func TestSARAATriggersFasterThanSRAAUnderDegradation(t *testing.T) {
	// Acceleration exists to shorten the confirmation delay; under
	// constant severe degradation SARAA must trigger in no more
	// observations than SRAA with the same (n, K, D).
	type cfg struct{ n, k, d int }
	for _, c := range []cfg{{6, 5, 1}, {10, 3, 1}, {2, 5, 3}, {4, 4, 2}} {
		sraa := mustSRAA(t, c.n, c.k, c.d)
		saraa := mustSARAA(t, c.n, c.k, c.d)
		count := func(det Detector) int {
			for i := 1; ; i++ {
				if det.Observe(1e6).Triggered {
					return i
				}
				if i > 100_000 {
					t.Fatalf("(%d,%d,%d): no trigger", c.n, c.k, c.d)
				}
			}
		}
		if s, sa := count(sraa), count(saraa); sa > s {
			t.Errorf("(%d,%d,%d): SARAA needed %d observations, SRAA %d", c.n, c.k, c.d, sa, s)
		}
	}
}

func TestSARAADeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	seq := make([]float64, 3000)
	for i := range seq {
		seq[i] = rng.ExpFloat64() * 9
	}
	a := mustSARAA(t, 4, 3, 2)
	b := mustSARAA(t, 4, 3, 2)
	for i, x := range seq {
		if da, db := a.Observe(x), b.Observe(x); da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestSARAAResetRestoresInitialSampleSize(t *testing.T) {
	det := mustSARAA(t, 8, 4, 1)
	for i := 0; i < 16; i++ {
		det.Observe(1e6)
	}
	if det.SampleSize() == 8 {
		t.Fatal("test setup failed to change the sample size")
	}
	det.Reset()
	if det.SampleSize() != 8 || det.buckets.level != 0 {
		t.Fatal("reset did not restore the initial state")
	}
}

func TestSARAASampleSizeAlwaysPositive(t *testing.T) {
	// Property: the acceleration rule never produces a sample size
	// below one for any level reachable under any (norig, K).
	for norig := 1; norig <= 40; norig++ {
		for k := 1; k <= 12; k++ {
			det := mustSARAA(t, norig, k, 1)
			for level := 0; level < k; level++ {
				if got := det.acceleratedSize(level); got < 1 {
					t.Fatalf("norig=%d K=%d level=%d: size %d", norig, k, level, got)
				}
				if got := det.acceleratedSize(level); got > norig {
					t.Fatalf("norig=%d K=%d level=%d: size %d exceeds norig", norig, k, level, got)
				}
			}
		}
	}
}
