package core

import (
	"fmt"
	"math"
)

// CLTAConfig parameterizes the central-limit-theorem algorithm (paper
// Fig. 8).
type CLTAConfig struct {
	// SampleSize is n; it should be large enough for the normal
	// approximation of the sample mean to hold (the paper uses 30, and
	// shows 15 is already workable for the M/M/16 response time).
	SampleSize int
	// Quantile is N, the standard-normal quantile defining the target
	// mu + N*sigma/sqrt(n). The paper uses 1.96, the 97.5% quantile;
	// the acceptable false-alarm probability picks it. It must be
	// positive: a non-positive quantile would trigger on normal
	// behaviour about half the time.
	Quantile float64
	// Baseline is the normal-behaviour (mean, standard deviation).
	Baseline Baseline
}

// Validate reports whether the configuration is usable.
func (c CLTAConfig) Validate() error {
	if c.SampleSize <= 0 {
		return fmt.Errorf("core: CLTA sample size must be positive, got %d", c.SampleSize)
	}
	if c.Quantile <= 0 || math.IsNaN(c.Quantile) || math.IsInf(c.Quantile, 0) {
		return fmt.Errorf("core: CLTA quantile must be positive and finite, got %v", c.Quantile)
	}
	return c.Baseline.Validate()
}

// CLTA is the central-limit-theorem rejuvenation algorithm: a single
// sample mean above mu + N*sigma/sqrt(n) triggers immediately. The
// number of buckets and the bucket depth are both implicitly one.
type CLTA struct {
	cfg    CLTAConfig
	window sampleWindow
}

// NewCLTA returns a CLTA detector for the given configuration.
func NewCLTA(cfg CLTAConfig) (*CLTA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid CLTA config: %w", err)
	}
	return &CLTA{cfg: cfg, window: sampleWindow{size: cfg.SampleSize}}, nil
}

// Config returns the configuration the detector was built with.
func (c *CLTA) Config() CLTAConfig { return c.cfg }

// Target returns the trigger threshold mu + N*sigma/sqrt(n).
func (c *CLTA) Target() float64 {
	return c.cfg.Baseline.Mean +
		c.cfg.Quantile*c.cfg.Baseline.StdDev/math.Sqrt(float64(c.cfg.SampleSize))
}

// FalseAlarmProbability returns the nominal per-sample false-alarm
// probability under an exact normal sample mean: 1 - Phi(N). The true
// probability is larger when the metric's distribution is skewed; the
// paper quantifies the inflation for the M/M/16 response time (3.37%
// instead of 2.5% at n=30).
func (c *CLTA) FalseAlarmProbability() float64 {
	return 1 - 0.5*math.Erfc(-c.cfg.Quantile/math.Sqrt2)
}

// Observe feeds one observation.
//
//lint:hotpath
func (c *CLTA) Observe(x float64) Decision {
	mean, done := c.window.add(x)
	if !done {
		return Decision{}
	}
	target := c.Target()
	return Decision{
		Triggered:  mean > target,
		Evaluated:  true,
		SampleMean: mean,
		Target:     target,
	}
}

// Reset discards any partial sample.
func (c *CLTA) Reset() { c.window.reset() }
