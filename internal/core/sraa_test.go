package core

import (
	"math/rand"
	"testing"
)

var testBaseline = Baseline{Mean: 5, StdDev: 5}

func mustSRAA(t *testing.T, n, k, d int) *SRAA {
	t.Helper()
	s, err := NewSRAA(SRAAConfig{SampleSize: n, Buckets: k, Depth: d, Baseline: testBaseline})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSRAAConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  SRAAConfig
	}{
		{"zero sample size", SRAAConfig{SampleSize: 0, Buckets: 1, Depth: 1, Baseline: testBaseline}},
		{"zero buckets", SRAAConfig{SampleSize: 1, Buckets: 0, Depth: 1, Baseline: testBaseline}},
		{"zero depth", SRAAConfig{SampleSize: 1, Buckets: 1, Depth: 0, Baseline: testBaseline}},
		{"zero stddev", SRAAConfig{SampleSize: 1, Buckets: 1, Depth: 1, Baseline: Baseline{Mean: 5}}},
		{"negative stddev", SRAAConfig{SampleSize: 1, Buckets: 1, Depth: 1, Baseline: Baseline{Mean: 5, StdDev: -1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSRAA(tt.cfg); err == nil {
				t.Errorf("invalid config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestSRAATriggerAfterMinimumDegradedSamples(t *testing.T) {
	// With every sample mean above the top target, SRAA(n, K, D) must
	// trigger after exactly (D+1)*K samples = (D+1)*K*n observations.
	tests := []struct{ n, k, d int }{
		{1, 1, 1}, {1, 3, 5}, {2, 5, 3}, {3, 2, 5}, {15, 1, 1},
	}
	for _, tt := range tests {
		det := mustSRAA(t, tt.n, tt.k, tt.d)
		const huge = 1e6 // exceeds every target mu + N*sigma
		obs := 0
		for {
			obs++
			d := det.Observe(huge)
			if d.Triggered {
				break
			}
			if obs > 10*(tt.d+1)*tt.k*tt.n {
				t.Fatalf("(%d,%d,%d): no trigger after %d observations", tt.n, tt.k, tt.d, obs)
			}
		}
		if want := (tt.d + 1) * tt.k * tt.n; obs != want {
			t.Errorf("(%d,%d,%d): triggered after %d observations, want %d", tt.n, tt.k, tt.d, obs, want)
		}
	}
}

func TestSRAANeverTriggersOnHealthyConstantStream(t *testing.T) {
	// Observations exactly at the mean never exceed any target
	// (comparison is strict), so every sample drains the bucket.
	det := mustSRAA(t, 3, 2, 2)
	for i := 0; i < 10_000; i++ {
		if det.Observe(5).Triggered {
			t.Fatalf("triggered on a stream pinned at the baseline mean (observation %d)", i)
		}
	}
}

func TestSRAATargetTracksBucketLevel(t *testing.T) {
	det := mustSRAA(t, 1, 3, 1)
	if det.Target() != 5 {
		t.Fatalf("initial target %v, want mu = 5", det.Target())
	}
	// Overflow the first bucket: two exceeding samples.
	det.Observe(100)
	det.Observe(100)
	if det.Target() != 10 {
		t.Fatalf("target after first overflow %v, want mu + sigma = 10", det.Target())
	}
	det.Observe(100)
	det.Observe(100)
	if det.Target() != 15 {
		t.Fatalf("target after second overflow %v, want mu + 2*sigma = 15", det.Target())
	}
}

func TestSRAAAveragingSmoothsOutliers(t *testing.T) {
	// A single huge observation inside an otherwise tiny sample must
	// not move the bucket when the average stays below the target.
	det := mustSRAA(t, 5, 1, 1)
	seq := []float64{0, 0, 0, 0, 20} // mean 4 < 5
	for _, x := range seq {
		if d := det.Observe(x); d.Triggered {
			t.Fatal("triggered on a sample whose mean is below target")
		}
	}
	// The completed sample must have drained, not filled, the bucket.
	if det.buckets.fill != 0 {
		t.Fatalf("fill = %d after a below-target sample, want 0", det.buckets.fill)
	}
}

func TestSRAADecisionFields(t *testing.T) {
	det := mustSRAA(t, 2, 2, 1)
	d := det.Observe(7)
	if d.Evaluated || d.Triggered {
		t.Fatal("mid-sample observation must not evaluate")
	}
	d = det.Observe(9)
	if !d.Evaluated {
		t.Fatal("sample-completing observation must evaluate")
	}
	if d.SampleMean != 8 {
		t.Fatalf("sample mean %v, want 8", d.SampleMean)
	}
	if d.Fill != 1 || d.Level != 0 {
		t.Fatalf("fill=%d level=%d, want 1,0", d.Fill, d.Level)
	}
}

func TestSRAAResetClearsEverything(t *testing.T) {
	det := mustSRAA(t, 2, 3, 2)
	for i := 0; i < 7; i++ {
		det.Observe(100)
	}
	det.Reset()
	if det.buckets.fill != 0 || det.buckets.level != 0 || det.window.count != 0 {
		t.Fatal("reset left residual state")
	}
	if det.Target() != 5 {
		t.Fatalf("target after reset %v, want 5", det.Target())
	}
}

func TestSRAAAutoResetAfterTrigger(t *testing.T) {
	det := mustSRAA(t, 1, 1, 1)
	det.Observe(100)
	d := det.Observe(100)
	if !d.Triggered {
		t.Fatal("expected trigger")
	}
	if d.Level != 0 || d.Fill != 0 {
		t.Fatalf("post-trigger decision reports level=%d fill=%d, want 0,0", d.Level, d.Fill)
	}
	// The detector must need the full (D+1)*K delay again: the first
	// post-trigger exceedance cannot re-trigger.
	if det.Observe(100).Triggered {
		t.Fatal("re-triggered immediately after auto-reset")
	}
	if !det.Observe(100).Triggered {
		t.Fatal("second post-reset exceedance should trigger for K=1, D=1")
	}
}

func TestSRAADeterminism(t *testing.T) {
	// Property: identical observation sequences produce identical
	// decision sequences.
	rng := rand.New(rand.NewSource(37))
	seq := make([]float64, 2000)
	for i := range seq {
		seq[i] = rng.ExpFloat64() * 7
	}
	a := mustSRAA(t, 3, 2, 2)
	b := mustSRAA(t, 3, 2, 2)
	for i, x := range seq {
		da, db := a.Observe(x), b.Observe(x)
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
}

func TestStaticIsSRAAWithSampleSizeOne(t *testing.T) {
	static, err := NewStatic(3, 2, testBaseline)
	if err != nil {
		t.Fatal(err)
	}
	sraa := mustSRAA(t, 1, 3, 2)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 5000; i++ {
		x := rng.ExpFloat64() * 8
		if d1, d2 := static.Observe(x), sraa.Observe(x); d1 != d2 {
			t.Fatalf("observation %d: static %+v != SRAA(n=1) %+v", i, d1, d2)
		}
	}
}

func TestSRAAConfigAccessor(t *testing.T) {
	cfg := SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: testBaseline}
	det, err := NewSRAA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Config() != cfg {
		t.Fatalf("Config() = %+v, want %+v", det.Config(), cfg)
	}
}
