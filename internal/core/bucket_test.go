package core

import (
	"math/rand"
	"testing"
)

func TestBucketStepFollowsPseudoCode(t *testing.T) {
	// Walk the exact transitions of the paper's Fig. 6 pseudo-code for
	// K=2, D=2 and verify fill/level/event after every step.
	b, err := newBucketState(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		exceed    bool
		wantFill  int
		wantLevel int
		wantEvent BucketEvent
	}{
		{true, 1, 0, BucketNone},       // d: 0->1
		{true, 2, 0, BucketNone},       // d: 1->2 (== D, no overflow yet)
		{false, 1, 0, BucketNone},      // d: 2->1
		{true, 2, 0, BucketNone},       // d: 1->2
		{true, 0, 1, BucketOverflow},   // d: 2->3 > D -> overflow, N=1
		{false, 2, 0, BucketUnderflow}, // d: -1 < 0, N>0 -> underflow, d=D
		{false, 1, 0, BucketNone},      // d: 2->1
		{false, 0, 0, BucketNone},      // d: 1->0
		{false, 0, 0, BucketNone},      // d: -1 < 0, N==0 -> clamp to 0
	}
	for i, s := range steps {
		event := b.step(s.exceed)
		if b.fill != s.wantFill || b.level != s.wantLevel || event != s.wantEvent {
			t.Fatalf("step %d (exceed=%v): fill=%d level=%d event=%d, want %d %d %d",
				i, s.exceed, b.fill, b.level, event, s.wantFill, s.wantLevel, s.wantEvent)
		}
	}
}

func TestBucketTriggerOnLastOverflow(t *testing.T) {
	// K=1, D=1: trigger requires d to pass D, i.e. two net exceedances.
	b, err := newBucketState(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := b.step(true); e != BucketNone {
		t.Fatalf("first exceedance already produced event %d", e)
	}
	if e := b.step(true); e != BucketTrigger {
		t.Fatalf("second exceedance produced event %d, want trigger", e)
	}
	if b.fill != 0 || b.level != 0 {
		t.Fatalf("state after trigger: fill=%d level=%d, want 0,0", b.fill, b.level)
	}
}

func TestBucketMinimumDelay(t *testing.T) {
	// The paper: "the minimum delay before a degradation can be
	// affirmed is at least D*K observations". With strict overflow the
	// exact minimum under constant exceedance is (D+1)*K steps.
	tests := []struct {
		k, d int
	}{
		{1, 1}, {3, 5}, {5, 3}, {2, 10}, {10, 1},
	}
	for _, tt := range tests {
		b, err := newBucketState(tt.k, tt.d)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for {
			steps++
			if b.step(true) == BucketTrigger {
				break
			}
			if steps > 10*(tt.d+1)*tt.k {
				t.Fatalf("K=%d D=%d: no trigger after %d steps", tt.k, tt.d, steps)
			}
		}
		want := (tt.d + 1) * tt.k
		if steps != want {
			t.Errorf("K=%d D=%d: triggered after %d steps, want %d", tt.k, tt.d, steps, want)
		}
		if steps < tt.d*tt.k {
			t.Errorf("K=%d D=%d: violated the paper's D*K lower bound", tt.k, tt.d)
		}
	}
}

func TestBucketNeverTriggersWithoutExceedances(t *testing.T) {
	b, err := newBucketState(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if e := b.step(false); e != BucketNone {
			t.Fatalf("step %d produced event %d on a healthy stream", i, e)
		}
		if b.fill != 0 || b.level != 0 {
			t.Fatalf("healthy stream moved state to fill=%d level=%d", b.fill, b.level)
		}
	}
}

func TestBucketInvariants(t *testing.T) {
	// Property: under any observation sequence, 0 <= fill <= D and
	// 0 <= level < K hold after every step.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		d := 1 + rng.Intn(6)
		b, err := newBucketState(k, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5000; i++ {
			b.step(rng.Intn(2) == 0)
			if b.fill < 0 || b.fill > d {
				t.Fatalf("K=%d D=%d: fill %d escaped [0,%d]", k, d, b.fill, d)
			}
			if b.level < 0 || b.level >= k {
				t.Fatalf("K=%d D=%d: level %d escaped [0,%d)", k, d, b.level, k)
			}
		}
	}
}

func TestBucketUnderflowDescendsToPreviousBucket(t *testing.T) {
	b, err := newBucketState(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Climb to level 2.
	for b.level < 2 {
		b.step(true)
	}
	// Descend: first underflow refills the lower bucket to D.
	b.fill = 0
	if e := b.step(false); e != BucketUnderflow {
		t.Fatalf("event %d, want underflow", e)
	}
	if b.level != 1 || b.fill != 2 {
		t.Fatalf("after underflow: level=%d fill=%d, want 1,2", b.level, b.fill)
	}
}

func TestBucketValidation(t *testing.T) {
	if _, err := newBucketState(0, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := newBucketState(1, 0); err == nil {
		t.Error("D=0 accepted")
	}
	if _, err := newBucketState(-1, -1); err == nil {
		t.Error("negative parameters accepted")
	}
}

func TestBucketReset(t *testing.T) {
	b, _ := newBucketState(3, 3)
	for i := 0; i < 7; i++ {
		b.step(true)
	}
	b.reset()
	if b.fill != 0 || b.level != 0 {
		t.Fatal("reset did not clear state")
	}
}
