package core

import (
	"fmt"
	"math"
)

// The detectors in this file are not part of the paper; they are
// classical change-detection charts included as comparators for the
// ablation experiments, positioning SRAA/SARAA/CLTA against standard
// statistical process control.

// Shewhart is the individuals control chart: a single observation above
// mu + L*sigma triggers. It is the "use an upper quantile of the RT
// itself" strawman the paper rejects as non-robust to short-term
// deviations (Section 4.1).
type Shewhart struct {
	baseline Baseline
	limit    float64 // L, in standard deviations
}

// NewShewhart returns a Shewhart chart with control limit mu + limit*sigma.
func NewShewhart(limit float64, baseline Baseline) (*Shewhart, error) {
	if err := baseline.Validate(); err != nil {
		return nil, err
	}
	if limit <= 0 || math.IsNaN(limit) || math.IsInf(limit, 0) {
		return nil, fmt.Errorf("core: Shewhart limit must be positive and finite, got %v", limit)
	}
	return &Shewhart{baseline: baseline, limit: limit}, nil
}

// Target returns the control limit.
func (s *Shewhart) Target() float64 {
	return s.baseline.Mean + s.limit*s.baseline.StdDev
}

// Observe feeds one observation.
//
//lint:hotpath
func (s *Shewhart) Observe(x float64) Decision {
	target := s.Target()
	return Decision{Triggered: x > target, Evaluated: true, SampleMean: x, Target: target}
}

// Reset is a no-op: the chart is memoryless.
func (s *Shewhart) Reset() {}

// EWMA is the exponentially weighted moving-average chart: the smoothed
// statistic z = (1-w)z + w*x triggers above its asymptotic control limit
// mu + L*sigma*sqrt(w/(2-w)).
type EWMA struct {
	baseline Baseline
	weight   float64 // smoothing weight w in (0, 1]
	limit    float64 // L, in standard deviations of z
	z        float64
}

// NewEWMA returns an EWMA chart with the given smoothing weight and
// control limit multiplier.
func NewEWMA(weight, limit float64, baseline Baseline) (*EWMA, error) {
	if err := baseline.Validate(); err != nil {
		return nil, err
	}
	if weight <= 0 || weight > 1 || math.IsNaN(weight) {
		return nil, fmt.Errorf("core: EWMA weight must be in (0,1], got %v", weight)
	}
	if limit <= 0 || math.IsNaN(limit) || math.IsInf(limit, 0) {
		return nil, fmt.Errorf("core: EWMA limit must be positive and finite, got %v", limit)
	}
	return &EWMA{baseline: baseline, weight: weight, limit: limit, z: baseline.Mean}, nil
}

// Target returns the asymptotic upper control limit.
func (e *EWMA) Target() float64 {
	return e.baseline.Mean +
		e.limit*e.baseline.StdDev*math.Sqrt(e.weight/(2-e.weight))
}

// Statistic returns the current smoothed value.
func (e *EWMA) Statistic() float64 { return e.z }

// Observe feeds one observation.
//
//lint:hotpath
func (e *EWMA) Observe(x float64) Decision {
	e.z = (1-e.weight)*e.z + e.weight*x
	target := e.Target()
	if e.z > target {
		z := e.z
		e.Reset()
		return Decision{Triggered: true, Evaluated: true, SampleMean: z, Target: target}
	}
	return Decision{Evaluated: true, SampleMean: e.z, Target: target}
}

// Reset restores the statistic to the baseline mean.
func (e *EWMA) Reset() { e.z = e.baseline.Mean }

// CUSUM is the one-sided (upper) cumulative-sum chart on standardized
// observations: S = max(0, S + (x-mu)/sigma - k) triggers above h.
type CUSUM struct {
	baseline  Baseline
	slack     float64 // k, the allowance in standard deviations
	threshold float64 // h, the decision interval in standard deviations
	s         float64
}

// NewCUSUM returns an upper CUSUM with allowance slack (typically half
// the shift to detect, in sigmas) and decision interval threshold
// (typically 4–5).
func NewCUSUM(slack, threshold float64, baseline Baseline) (*CUSUM, error) {
	if err := baseline.Validate(); err != nil {
		return nil, err
	}
	if slack < 0 || math.IsNaN(slack) || math.IsInf(slack, 0) {
		return nil, fmt.Errorf("core: CUSUM slack must be non-negative and finite, got %v", slack)
	}
	if threshold <= 0 || math.IsNaN(threshold) || math.IsInf(threshold, 0) {
		return nil, fmt.Errorf("core: CUSUM threshold must be positive and finite, got %v", threshold)
	}
	return &CUSUM{baseline: baseline, slack: slack, threshold: threshold}, nil
}

// Statistic returns the current cumulative sum (in standard deviations).
func (c *CUSUM) Statistic() float64 { return c.s }

// Observe feeds one observation.
//
//lint:hotpath
func (c *CUSUM) Observe(x float64) Decision {
	z := (x - c.baseline.Mean) / c.baseline.StdDev
	c.s = math.Max(0, c.s+z-c.slack)
	if c.s > c.threshold {
		s := c.s
		c.Reset()
		return Decision{Triggered: true, Evaluated: true, SampleMean: s, Target: c.threshold}
	}
	return Decision{Evaluated: true, SampleMean: c.s, Target: c.threshold}
}

// Reset zeroes the cumulative sum.
func (c *CUSUM) Reset() { c.s = 0 }
