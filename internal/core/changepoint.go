package core

// Change-point statistics for the workload-shift layer (shift.go): a
// two-sided CUSUM and a two-sided Page–Hinkley detector over
// standardized observations z = (x - µ)/σ. Both are plain value types
// with allocation-free steps, so the fleet engine can hold one per
// stream in struct-of-arrays storage, and both track the run length of
// their active side — the number of consecutive steps the statistic has
// stayed positive — because run length at detection time is what
// separates an abrupt workload shift (short run, large per-step drift)
// from slow software aging (long run, small per-step drift).
//
// These are distinct from the CUSUM *detector* in control.go: that one
// is a trigger comparator ablated against the paper's algorithms; these
// watch for changes in the baseline itself.

// CUSUMChange is a two-sided cumulative-sum change-point statistic. The
// upper side accumulates max(0, S + z - slack), the lower side
// max(0, S - z - slack); either exceeding the threshold signals a
// change in the indicated direction.
type CUSUMChange struct {
	// Pos and Neg are the upper and lower cumulative sums, in σ units.
	Pos, Neg float64
	// PosRun and NegRun count consecutive steps the respective sum has
	// been positive.
	PosRun, NegRun int32
}

// Step folds one standardized observation z and reports whether either
// side crossed the threshold, and which (up true means the metric moved
// upward). The statistic keeps accumulating after a detection; callers
// decide when to Reset.
//
//lint:hotpath
func (c *CUSUMChange) Step(z, slack, threshold float64) (detected, up bool) {
	c.Pos += z - slack
	if c.Pos > 0 {
		c.PosRun++
	} else {
		c.Pos = 0
		c.PosRun = 0
	}
	c.Neg += -z - slack
	if c.Neg > 0 {
		c.NegRun++
	} else {
		c.Neg = 0
		c.NegRun = 0
	}
	if c.Pos > threshold {
		return true, true
	}
	if c.Neg > threshold {
		return true, false
	}
	return false, false
}

// Run returns the current run length of the indicated side.
func (c *CUSUMChange) Run(up bool) int {
	if up {
		return int(c.PosRun)
	}
	return int(c.NegRun)
}

// Reset clears both sides.
func (c *CUSUMChange) Reset() { *c = CUSUMChange{} }

// PageHinkleyChange is a two-sided Page–Hinkley change-point statistic
// in its bounded-gap form: it maintains the running mean of its inputs
// and accumulates max(0, G + (z - mean - delta)) upward and
// max(0, G + (mean - z - delta)) downward, which is algebraically the
// classic "cumulative deviation minus its running minimum" test but
// with O(1) bounded state. delta is the drift allowance, lambda the
// detection threshold.
type PageHinkleyChange struct {
	// N and Mean are the running count and mean of the inputs.
	N    uint64
	Mean float64
	// Up and Down are the bounded gap statistics of the two sides.
	Up, Down float64
	// UpRun and DownRun count consecutive steps the respective gap has
	// been positive.
	UpRun, DownRun int32
}

// Step folds one standardized observation z and reports whether either
// side crossed lambda, and which (up true means the metric moved
// upward). The running mean is updated before the gaps, the textbook
// ordering.
//
//lint:hotpath
func (p *PageHinkleyChange) Step(z, delta, lambda float64) (detected, up bool) {
	p.N++
	p.Mean += (z - p.Mean) / float64(p.N)
	p.Up += z - p.Mean - delta
	if p.Up > 0 {
		p.UpRun++
	} else {
		p.Up = 0
		p.UpRun = 0
	}
	p.Down += p.Mean - z - delta
	if p.Down > 0 {
		p.DownRun++
	} else {
		p.Down = 0
		p.DownRun = 0
	}
	if p.Up > lambda {
		return true, true
	}
	if p.Down > lambda {
		return true, false
	}
	return false, false
}

// Run returns the current run length of the indicated side.
func (p *PageHinkleyChange) Run(up bool) int {
	if up {
		return int(p.UpRun)
	}
	return int(p.DownRun)
}

// Reset clears both sides and the running mean.
func (p *PageHinkleyChange) Reset() { *p = PageHinkleyChange{} }
