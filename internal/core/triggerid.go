package core

// Trigger identity: every rejuvenation trigger carries a 64-bit id
// minted at decision time, so the observation that completed the
// deciding sample, the journaled decision record, the trace-log entry
// and every actuator attempt the trigger caused can be correlated after
// the fact — across files, processes and replays.
//
// The id is a pure function of (stream, observation ordinal), never of
// wall time, shard count or scheduling, so a replayed journal mints the
// same ids the original run did and a fleet journal stays byte-identical
// for any shard count (DESIGN §15).

// TriggerID derives the deterministic identity of a trigger decided on
// the given stream at the given 1-based observation ordinal. Stream 0 is
// the single-stream Monitor's reserved stream. The result is a
// splitmix64-style avalanche of both inputs and is never 0, so 0 can
// mean "no trigger id" in journal records and trace entries.
func TriggerID(stream, obs uint64) uint64 {
	x := stream*0x9e3779b97f4a7c15 + obs
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		// The avalanche maps exactly one input pair to 0; nudge it onto a
		// fixed non-zero value so ids stay total.
		return 0x9e3779b97f4a7c15
	}
	return x
}
