package core

import "testing"

func TestSeverity(t *testing.T) {
	cases := []struct {
		level, trigger int
		want           float64
	}{
		{0, 5, 0},
		{-1, 5, 0},
		{1, 5, 0.2},
		{4, 5, 0.8},
		{5, 5, 1},
		{9, 5, 1},
		{3, 0, 1},  // degenerate trigger level saturates
		{3, -2, 1}, // negative trigger level saturates
	}
	for _, c := range cases {
		if got := Severity(c.level, c.trigger); got != c.want {
			t.Errorf("Severity(%d, %d) = %v, want %v", c.level, c.trigger, got, c.want)
		}
	}
}

func TestDecisionSeverity(t *testing.T) {
	if got := (Decision{Level: 2}).Severity(4); got != 0.5 {
		t.Errorf("Decision severity = %v, want 0.5", got)
	}
	// A triggering decision saturates even if the detector reset its
	// level before reporting.
	if got := (Decision{Triggered: true, Level: 0}).Severity(4); got != 1 {
		t.Errorf("triggered decision severity = %v, want 1", got)
	}
}
