package core

// Severity maps a detector's bucket position to the [0, 1] scale the
// scheduling layer keys its Kijima action tiers off: 0 is a fresh
// detector, 1 the trigger threshold. level is the bucket pointer N of a
// decision, triggerLevel the bucket count K at which the detector
// fires. Levels at or past the trigger saturate at 1, so a triggering
// decision always maps to the most aggressive tier regardless of
// detector family.
func Severity(level, triggerLevel int) float64 {
	if triggerLevel <= 0 || level >= triggerLevel {
		return 1
	}
	if level <= 0 {
		return 0
	}
	return float64(level) / float64(triggerLevel)
}

// Severity maps the decision's bucket pointer to the [0, 1] scheduling
// severity scale; see the package-level Severity function.
func (d Decision) Severity(triggerLevel int) float64 {
	if d.Triggered {
		return 1
	}
	return Severity(d.Level, triggerLevel)
}
