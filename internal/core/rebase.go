package core

import "fmt"

// Rebase layers the workload-shift decision rule (shift.go) under any
// detector family: the change-point statistics watch the admitted
// observation stream, and when the workload shifts the inner detector
// is rebuilt from the re-estimated baseline — bucket targets and sample
// sizes recomputed from the new (µ, σ) — instead of firing a false
// rejuvenation or staying miscalibrated forever. Changes classified as
// software aging pass through untouched, so the wrapped family triggers
// exactly as it does without the wrapper.
//
// During a relearn window the inner detector is paused: a sample window
// straddling two workload regimes has a meaningless mean, so no
// decision is evaluated until the new baseline is committed. Rebase is
// the pointer-based twin of the fleet engine's per-stream shift state;
// both run ShiftState.Step verbatim, and fleet journal replay against
// Rebase-wrapped reference detectors proves them byte-identical.
type Rebase struct {
	cfg   ShiftConfig
	build func(Baseline) (Detector, error)
	st    ShiftState
	inner Detector
	orig  Baseline
}

// Rebaseliner is implemented by detectors that re-estimate their
// baseline online. The journal layer uses it to record and replay-
// verify rebaseline events, and the Monitor to count them.
type Rebaseliner interface {
	// Rebaselines returns how many rebaselines have been committed.
	Rebaselines() uint64
	// CurrentBaseline returns the committed baseline currently in
	// effect.
	CurrentBaseline() Baseline
}

// Compile-time interface compliance (Detector and Instrumented are
// checked centrally in detector.go and instrument.go).
var _ Rebaseliner = (*Rebase)(nil)

// NewRebase wraps the detector family built by build with the
// workload-shift layer, starting from the given baseline. cfg's zero
// fields take the documented defaults. build is invoked once up front
// and again after every committed rebaseline.
func NewRebase(cfg ShiftConfig, base Baseline, build func(Baseline) (Detector, error)) (*Rebase, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if build == nil {
		return nil, fmt.Errorf("core: rebase detector factory must not be nil")
	}
	inner, err := build(base)
	if err != nil {
		return nil, fmt.Errorf("core: rebase factory rejected the initial baseline: %w", err)
	}
	if inner == nil {
		return nil, fmt.Errorf("core: rebase factory returned a nil detector")
	}
	return &Rebase{cfg: cfg, build: build, st: NewShiftState(base), inner: inner, orig: base}, nil
}

// Observe feeds one observation through the shift layer and, unless a
// relearn is in progress, the inner detector.
//
//lint:hotpath
func (r *Rebase) Observe(x float64) Decision {
	switch r.st.Step(r.cfg, x) {
	case ShiftRelearning:
		return Decision{}
	case ShiftRebaselined:
		inner, err := r.build(r.st.Base)
		if err != nil || inner == nil {
			// The committed baseline is finite with positive spread by
			// construction; a factory that rejects it is a programming
			// error in the caller.
			//lint:allow hotpath formatting a panic on the dying path costs nothing in steady state
			panic(fmt.Sprintf("core: rebase factory failed on relearned baseline: %v", err))
		}
		r.inner = inner
		return Decision{}
	}
	d := r.inner.Observe(x)
	if d.Triggered {
		r.st.NoteTrigger()
	}
	return d
}

// Reset restores the inner detector's initial state, as after an
// external rejuvenation, and re-arms the shift layer exactly as an
// internal trigger would. The learned baseline survives: rejuvenation
// restores capacity, it does not move the workload. An in-progress
// relearn is abandoned without committing.
func (r *Rebase) Reset() {
	r.inner.Reset()
	r.st.NoteTrigger()
	r.st.RelearnLeft = 0
}

// Rebaselines returns how many rebaselines have been committed.
func (r *Rebase) Rebaselines() uint64 { return r.st.Rebaselines }

// CurrentBaseline returns the committed baseline currently in effect.
func (r *Rebase) CurrentBaseline() Baseline { return r.st.Base }

// InitialBaseline returns the baseline the wrapper was constructed
// with.
func (r *Rebase) InitialBaseline() Baseline { return r.orig }

// Relearning reports whether a relearn window is in progress (the inner
// detector is paused).
func (r *Rebase) Relearning() bool { return r.st.RelearnLeft > 0 }

// Internals delegates to the inner detector untouched: the shift layer
// owns no decision fields, so the replayed internals must be exactly
// the inner family's — that is what keeps journal replay byte-identical
// through rebaselines.
func (r *Rebase) Internals() Internals {
	if in, ok := r.inner.(Instrumented); ok {
		return in.Internals()
	}
	return Internals{}
}
