package core

import (
	"math"
	"time"
)

// This file holds the guard-layer state machines shared by the public
// Monitor (one stream) and the fleet engine (many streams): trigger
// cooldown, staleness watchdog, and the per-stream hygiene memory that
// backs HygieneClamp. They live here, below both callers, so the two
// ingestion paths cannot drift apart — the fleet's struct-of-arrays
// shard stores these as plain value slices, and the Monitor embeds one
// of each. All three are pure state machines over caller-supplied
// clocks (nanosecond readings), never touching the wall clock
// themselves, which keeps them usable from deterministic simulations.

// Cooldown suppresses triggers that fire too soon after a delivered
// one, giving a rejuvenated system time to return to normal before it
// can be condemned again. The zero value (window 0) never suppresses.
// Times are caller-supplied monotonic nanosecond readings; only their
// differences matter.
type Cooldown struct {
	window int64 // suppression window in nanoseconds; 0 disables
	last   int64 // clock reading of the last delivered trigger
	armed  bool  // a trigger has been delivered
}

// NewCooldown returns a cooldown gate with the given suppression
// window. A non-positive window disables suppression.
func NewCooldown(window time.Duration) Cooldown {
	if window < 0 {
		window = 0
	}
	return Cooldown{window: window.Nanoseconds()}
}

// Active reports whether now falls inside the suppression window opened
// by the last delivered trigger.
func (c *Cooldown) Active(now int64) bool {
	return c.window > 0 && c.armed && now-c.last < c.window
}

// Open records a delivered trigger at now, opening the suppression
// window (when one is configured).
func (c *Cooldown) Open(now int64) {
	c.last = now
	c.armed = true
}

// Window returns the configured suppression window.
func (c *Cooldown) Window() time.Duration { return time.Duration(c.window) }

// Reset forgets the last trigger, as after an external restart.
func (c *Cooldown) Reset() { c.armed = false }

// Watchdog detects a stalled observation stream: silence longer than
// the configured maximum. A silent stream looks exactly like a healthy
// one to a threshold detector — no observations means no exceedances —
// so silence needs its own alarm. The zero value (max silence 0) is
// disabled. The stalled state latches so each silence counts once;
// the next observation clears it.
type Watchdog struct {
	maxSilence int64 // nanoseconds; 0 disables
	lastSeen   int64 // clock reading of the last observation
	seen       bool  // an observation (or arming Check) has happened
	stalled    bool  // latched stall state
}

// NewWatchdog returns a watchdog that trips after maxSilence without an
// observation. A non-positive maxSilence disables it.
func NewWatchdog(maxSilence time.Duration) Watchdog {
	if maxSilence < 0 {
		maxSilence = 0
	}
	return Watchdog{maxSilence: maxSilence.Nanoseconds()}
}

// Enabled reports whether the watchdog is armed at all.
func (w *Watchdog) Enabled() bool { return w.maxSilence > 0 }

// Feed records stream liveness at now and reports whether a latched
// stall was cleared by this observation.
func (w *Watchdog) Feed(now int64) (cleared bool) {
	w.lastSeen = now
	w.seen = true
	cleared = w.stalled
	w.stalled = false
	return cleared
}

// Check evaluates the watchdog at now. tripped reports a transition
// into the stalled state (count it once); silence is how long the
// stream has been quiet. The first Check before any observation arms
// the watchdog instead of tripping it. With max silence 0 the watchdog
// never trips.
func (w *Watchdog) Check(now int64) (tripped bool, silence time.Duration) {
	if w.maxSilence <= 0 {
		return false, 0
	}
	if !w.seen {
		w.lastSeen = now
		w.seen = true
		return false, 0
	}
	quiet := now - w.lastSeen
	if quiet <= w.maxSilence {
		return false, time.Duration(quiet)
	}
	if !w.stalled {
		w.stalled = true
		return true, time.Duration(quiet)
	}
	return false, time.Duration(quiet)
}

// Stalled reports the latched stall state.
func (w *Watchdog) Stalled() bool { return w.stalled }

// HygieneState is the per-stream memory behind a Hygiene policy: the
// most recent admitted value, which HygieneClamp substitutes for a
// non-finite one. One exists per monitored stream; the policy itself is
// shared configuration.
type HygieneState struct {
	last float64
	have bool
}

// Admit applies policy p to one observation. v is the value to feed the
// detector (meaningful only when ok), ok reports whether to feed it at
// all, and intercepted reports that the raw observation was non-finite
// and handled by the policy (dropped or substituted) — the thing
// rejection counters count. Under HygieneOff nothing is ever
// intercepted, matching the legacy pass-through.
func (s *HygieneState) Admit(p Hygiene, x float64) (v float64, ok, intercepted bool) {
	intercepted = (math.IsNaN(x) || math.IsInf(x, 0)) && p != HygieneOff
	v, ok = p.Admit(x, s.last, s.have)
	if ok {
		s.last, s.have = v, true
	}
	return v, ok, intercepted
}
