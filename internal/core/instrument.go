package core

// Internals is a point-in-time snapshot of a detector's internal state,
// published for observability: dashboards graph bucket occupancy and
// sample sizes, and the trace log records them alongside every decision
// so a fired trigger can be explained after the fact. All fields are
// copies; reading them never perturbs the detector.
type Internals struct {
	// Level is the current bucket pointer N, 0 for detectors without
	// buckets.
	Level int
	// Buckets is the configured number of buckets K, 0 for detectors
	// without buckets.
	Buckets int
	// Fill is the current ball count d of the current bucket, 0 for
	// detectors without buckets.
	Fill int
	// Depth is the configured bucket depth D, 0 for detectors without
	// buckets.
	Depth int
	// SampleSize is the number of observations per sample currently in
	// effect (n; for SARAA it shrinks as degradation deepens). It is 1
	// for the per-observation charts and 0 while Adaptive is still in
	// warmup.
	SampleSize int
	// SampleFill is the number of observations accumulated toward the
	// current (incomplete) sample.
	SampleFill int
	// Target is the threshold the next completed sample mean is compared
	// against; for EWMA and CUSUM it is the control limit the chart
	// statistic is compared against.
	Target float64
	// Statistic is the current chart statistic where one exists (EWMA's
	// smoothed value, CUSUM's cumulative sum); 0 for the bucket and CLTA
	// detectors, whose per-sample state is SampleFill.
	Statistic float64
}

// MeanDistance returns how far a completed sample mean sat from the
// trigger threshold, in the units of the metric: positive values exceed
// the target. It is a convenience for gauges fed from decisions.
func (in Internals) MeanDistance(sampleMean float64) float64 {
	return sampleMean - in.Target
}

// Instrumented is optionally implemented by detectors that can expose a
// snapshot of their internal state. All detectors in this package
// implement it; custom Detector implementations may not, so callers
// must type-assert.
//
// Internals must be called from the goroutine that owns the detector
// (the public Monitor does this under its lock).
type Instrumented interface {
	// Internals returns the current internal-state snapshot.
	Internals() Internals
}

// Compile-time checks that every detector in this package is
// instrumented.
var (
	_ Instrumented = (*SRAA)(nil)
	_ Instrumented = (*SARAA)(nil)
	_ Instrumented = (*CLTA)(nil)
	_ Instrumented = (*Shewhart)(nil)
	_ Instrumented = (*EWMA)(nil)
	_ Instrumented = (*CUSUM)(nil)
	_ Instrumented = (*Adaptive)(nil)
	_ Instrumented = (*Rebase)(nil)
	_ Instrumented = (*Tracer)(nil)
)

// Internals returns the current bucket occupancy, sample progress and
// target of the SRAA detector.
func (s *SRAA) Internals() Internals {
	return Internals{
		Level:      s.buckets.level,
		Buckets:    s.cfg.Buckets,
		Fill:       s.buckets.fill,
		Depth:      s.cfg.Depth,
		SampleSize: s.window.size,
		SampleFill: s.window.count,
		Target:     s.Target(),
	}
}

// Internals returns the current bucket occupancy, accelerated sample
// size and target of the SARAA detector.
func (s *SARAA) Internals() Internals {
	return Internals{
		Level:      s.buckets.level,
		Buckets:    s.cfg.Buckets,
		Fill:       s.buckets.fill,
		Depth:      s.cfg.Depth,
		SampleSize: s.window.size,
		SampleFill: s.window.count,
		Target:     s.Target(),
	}
}

// Internals returns the sample progress and target of the CLTA detector
// (which has no buckets: a single exceedance triggers).
func (c *CLTA) Internals() Internals {
	return Internals{
		SampleSize: c.window.size,
		SampleFill: c.window.count,
		Target:     c.Target(),
	}
}

// Internals returns the control limit of the memoryless Shewhart chart.
func (s *Shewhart) Internals() Internals {
	return Internals{SampleSize: 1, Target: s.Target()}
}

// Internals returns the smoothed statistic and control limit of the
// EWMA chart.
func (e *EWMA) Internals() Internals {
	return Internals{SampleSize: 1, Target: e.Target(), Statistic: e.z}
}

// Internals returns the cumulative sum and decision interval of the
// CUSUM chart, both in standard deviations.
func (c *CUSUM) Internals() Internals {
	return Internals{SampleSize: 1, Target: c.threshold, Statistic: c.s}
}

// Internals delegates to the inner detector once warmup has completed.
// During warmup it reports SampleFill as the number of warmup
// observations accumulated so far and SampleSize 0, signalling that no
// detector is active yet.
func (a *Adaptive) Internals() Internals {
	if a.inner == nil {
		return Internals{SampleFill: int(a.acc.N())}
	}
	if in, ok := a.inner.(Instrumented); ok {
		return in.Internals()
	}
	return Internals{}
}

// Internals delegates to the wrapped detector, returning the zero
// snapshot when it is not instrumented.
func (t *Tracer) Internals() Internals {
	if in, ok := t.inner.(Instrumented); ok {
		return in.Internals()
	}
	return Internals{}
}
