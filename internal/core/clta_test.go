package core

import (
	"math"
	"math/rand"
	"testing"
)

func mustCLTA(t *testing.T, n int, quantile float64) *CLTA {
	t.Helper()
	c, err := NewCLTA(CLTAConfig{SampleSize: n, Quantile: quantile, Baseline: testBaseline})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCLTAConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  CLTAConfig
	}{
		{"zero sample size", CLTAConfig{SampleSize: 0, Quantile: 1.96, Baseline: testBaseline}},
		{"zero quantile", CLTAConfig{SampleSize: 30, Quantile: 0, Baseline: testBaseline}},
		{"negative quantile", CLTAConfig{SampleSize: 30, Quantile: -1.96, Baseline: testBaseline}},
		{"NaN quantile", CLTAConfig{SampleSize: 30, Quantile: math.NaN(), Baseline: testBaseline}},
		{"bad baseline", CLTAConfig{SampleSize: 30, Quantile: 1.96}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCLTA(tt.cfg); err == nil {
				t.Errorf("invalid config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestCLTATarget(t *testing.T) {
	// The paper's target: mu + N*sigma/sqrt(n) = 5 + 1.96*5/sqrt(30).
	det := mustCLTA(t, 30, 1.96)
	want := 5 + 1.96*5/math.Sqrt(30)
	if math.Abs(det.Target()-want) > 1e-12 {
		t.Fatalf("target = %v, want %v", det.Target(), want)
	}
}

func TestCLTATriggersOnFirstExceedingSample(t *testing.T) {
	det := mustCLTA(t, 10, 1.96)
	target := det.Target()
	// One full sample just above the target.
	for i := 0; i < 9; i++ {
		if d := det.Observe(target + 1); d.Evaluated || d.Triggered {
			t.Fatal("evaluated before the sample completed")
		}
	}
	d := det.Observe(target + 1)
	if !d.Triggered || !d.Evaluated {
		t.Fatalf("decision %+v, want trigger on the first exceeding sample", d)
	}
	if math.Abs(d.SampleMean-(target+1)) > 1e-12 {
		t.Fatalf("sample mean %v, want %v", d.SampleMean, target+1)
	}
}

func TestCLTADoesNotTriggerAtTarget(t *testing.T) {
	// Comparison is strictly greater, per the pseudo-code.
	det := mustCLTA(t, 5, 2)
	target := det.Target()
	for i := 0; i < 5; i++ {
		if det.Observe(target).Triggered {
			t.Fatal("triggered on a sample mean equal to the target")
		}
	}
}

func TestCLTAFalseAlarmProbability(t *testing.T) {
	det := mustCLTA(t, 30, 1.96)
	if got := det.FalseAlarmProbability(); math.Abs(got-0.025) > 1e-4 {
		t.Fatalf("nominal false alarm %v, want ~0.025", got)
	}
}

func TestCLTAFalseAlarmRateOnNormalStream(t *testing.T) {
	// Feed exactly normal N(mu, sigma^2/n)-mean samples: the trigger
	// rate per sample must approximate the nominal probability.
	det := mustCLTA(t, 30, 1.96)
	rng := rand.New(rand.NewSource(47))
	const samples = 40_000
	triggers := 0
	for s := 0; s < samples; s++ {
		for i := 0; i < 30; i++ {
			// Gaussian observations: the sample mean is exactly normal,
			// so the nominal 2.5% rate is exact up to MC error.
			if det.Observe(5 + 5*rng.NormFloat64()).Triggered {
				triggers++
			}
		}
	}
	rate := float64(triggers) / samples
	if math.Abs(rate-0.025) > 0.004 {
		t.Fatalf("false alarm rate %v, want ~0.025", rate)
	}
}

func TestCLTAInflatedFalseAlarmOnSkewedStream(t *testing.T) {
	// With exponential observations (the paper's response-time shape at
	// low load) the right-skew inflates the false alarm rate above the
	// nominal 2.5% — the Section 4.1 effect.
	det := mustCLTA(t, 30, 1.96)
	rng := rand.New(rand.NewSource(53))
	const samples = 40_000
	triggers := 0
	for s := 0; s < samples; s++ {
		for i := 0; i < 30; i++ {
			if det.Observe(5 * rng.ExpFloat64()).Triggered {
				triggers++
			}
		}
	}
	rate := float64(triggers) / samples
	if rate <= 0.025 {
		t.Fatalf("skewed stream false alarm rate %v, want > nominal 0.025", rate)
	}
	if rate > 0.06 {
		t.Fatalf("skewed stream false alarm rate %v implausibly large", rate)
	}
}

func TestCLTAReset(t *testing.T) {
	det := mustCLTA(t, 4, 1.96)
	det.Observe(100)
	det.Observe(100)
	det.Reset()
	// After reset, a fresh full sample is needed.
	det.Observe(0)
	det.Observe(0)
	d := det.Observe(0)
	if d.Evaluated {
		t.Fatal("evaluated after 3 of 4 post-reset observations")
	}
	if d = det.Observe(0); !d.Evaluated {
		t.Fatal("did not evaluate after a full post-reset sample")
	}
}

func TestCLTAConfigAccessor(t *testing.T) {
	cfg := CLTAConfig{SampleSize: 30, Quantile: 1.96, Baseline: testBaseline}
	det, err := NewCLTA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Config() != cfg {
		t.Fatalf("Config() = %+v", det.Config())
	}
}
