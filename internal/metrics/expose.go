package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file renders a Registry: Prometheus text exposition format 0.0.4
// (the format every scraper understands), a JSON snapshot for
// programmatic dumps (cmd/rejuvsim writes one per sampling tick), and an
// http.Handler serving both. Output order is deterministic: series are
// sorted by name and label signature at registration, never by map
// iteration.

// SeriesSnapshot is the point-in-time value of one registered series, as
// rendered into JSON dumps. Value carries counters (as a float) and
// gauges; Count, Sum and Buckets carry histograms.
type SeriesSnapshot struct {
	// Name is the metric name.
	Name string `json:"name"`
	// Labels is the sorted label set, omitted when empty.
	Labels []Label `json:"labels,omitempty"`
	// Kind is the exposition type: "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value is the counter or gauge value; unused for histograms.
	Value float64 `json:"value"`
	// Count is the histogram observation count.
	Count uint64 `json:"count,omitempty"`
	// Sum is the histogram observation sum.
	Sum float64 `json:"sum,omitempty"`
	// Buckets holds the cumulative histogram buckets excluding +Inf.
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// MarshalJSON renders the label pair as a two-element array
// ["name","value"] rather than an object, keeping dumps compact and the
// field order deterministic.
func (l Label) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]string{l.Name, l.Value})
}

// UnmarshalJSON parses the ["name","value"] form written by MarshalJSON.
func (l *Label) UnmarshalJSON(data []byte) error {
	var pair [2]string
	if err := json.Unmarshal(data, &pair); err != nil {
		return err
	}
	l.Name, l.Value = pair[0], pair[1]
	return nil
}

// Snapshot returns the current value of every registered series in
// deterministic (name, label signature) order. Values are read
// atomically per instrument; the set as a whole is weakly consistent
// under concurrent updates.
func (r *Registry) Snapshot() []SeriesSnapshot {
	sers := r.snapshotSeries()
	out := make([]SeriesSnapshot, 0, len(sers))
	for _, s := range sers {
		snap := SeriesSnapshot{Name: s.name, Labels: s.labels, Kind: s.kind.String()}
		switch s.kind {
		case KindCounter:
			snap.Value = float64(s.counter.Value())
		case KindGauge:
			snap.Value = s.gauge.Value()
		case KindHistogram:
			snap.Count = s.histogram.Count()
			snap.Sum = s.histogram.Sum()
			snap.Buckets = s.histogram.Buckets()
		}
		out = append(out, snap)
	}
	return out
}

// WriteJSON writes the Snapshot as one JSON array with no trailing
// newline, so callers can embed it in larger records (rejuvsim wraps it
// in a per-tick object).
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WritePrometheus writes the registry in Prometheus text exposition
// format 0.0.4: a # HELP and # TYPE header per metric name, then one
// line per series, with histograms expanded into cumulative _bucket
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ew := &errWriter{w: w}
	lastName := ""
	for _, s := range r.snapshotSeries() {
		if s.name != lastName {
			lastName = s.name
			if s.help != "" {
				ew.printf("# HELP %s %s\n", s.name, escapeHelp(s.help))
			}
			ew.printf("# TYPE %s %s\n", s.name, s.kind)
		}
		switch s.kind {
		case KindCounter:
			ew.printf("%s %d\n", seriesKey(s.name, s.labels), s.counter.Value())
		case KindGauge:
			ew.printf("%s %s\n", seriesKey(s.name, s.labels), formatFloat(s.gauge.Value()))
		case KindHistogram:
			h := s.histogram
			for _, b := range h.Buckets() {
				ew.printf("%s %d\n",
					seriesKey(s.name+"_bucket", withLE(s.labels, formatFloat(b.UpperBound))),
					b.CumulativeCount)
			}
			ew.printf("%s %d\n", seriesKey(s.name+"_bucket", withLE(s.labels, "+Inf")), h.Count())
			ew.printf("%s %s\n", seriesKey(s.name+"_sum", s.labels), formatFloat(h.Sum()))
			ew.printf("%s %d\n", seriesKey(s.name+"_count", s.labels), h.Count())
		}
	}
	return ew.err
}

// Handler returns an http.Handler serving the registry: Prometheus text
// by default, the JSON snapshot when the request carries ?format=json.
// Mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			//lint:allow droppederr a failed scrape write is the scraper's problem
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:allow droppederr a failed scrape write is the scraper's problem
		r.WritePrometheus(w)
	})
}

// withLE appends the histogram "le" label, keeping it last as the
// exposition convention expects. The value arrives pre-formatted so
// "+Inf" needs no special casing.
func withLE(labels []Label, le string) []Label {
	out := make([]Label, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, Label{Name: "le", Value: le})
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel quotes a label value, escaping backslash, quote and
// newline per the exposition format.
func escapeLabel(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// errWriter folds the first write error so exposition code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

// printf formats into the writer unless an earlier write already failed.
func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
