package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// buildRegistry assembles the fixture registry shared by the exposition
// golden tests: one of each instrument kind, with and without labels.
func buildRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("rejuv_triggers_total", "rejuvenation triggers", Label{Name: "detector", Value: "SRAA"})
	c.Add(3)
	g := r.Gauge("rejuv_bucket_level", "current bucket pointer N")
	g.SetInt(2)
	h := r.Histogram("request_seconds", "request latency", []float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.05, 0.3, 2} {
		h.Observe(v)
	}
	esc := r.Gauge("weird", "help with \\ and\nnewline", Label{Name: "path", Value: `a"b\c`})
	esc.Set(1)
	return r
}

// TestWritePrometheusGolden pins the exact text exposition: header
// lines, deterministic series order, cumulative buckets, +Inf, label
// escaping.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP rejuv_bucket_level current bucket pointer N
# TYPE rejuv_bucket_level gauge
rejuv_bucket_level 2
# HELP rejuv_triggers_total rejuvenation triggers
# TYPE rejuv_triggers_total counter
rejuv_triggers_total{detector="SRAA"} 3
# HELP request_seconds request latency
# TYPE request_seconds histogram
request_seconds_bucket{le="0.1"} 2
request_seconds_bucket{le="0.5"} 3
request_seconds_bucket{le="1"} 3
request_seconds_bucket{le="+Inf"} 4
request_seconds_sum 2.4
request_seconds_count 4
# HELP weird help with \\ and\nnewline
# TYPE weird gauge
weird{path="a\"b\\c"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := buildRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "\n") {
		t.Error("WriteJSON emitted a newline; dumps must be embeddable in JSON-lines records")
	}
	var snaps []SeriesSnapshot
	if err := json.Unmarshal([]byte(b.String()), &snaps); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, b.String())
	}
	if len(snaps) != 4 {
		t.Fatalf("got %d series, want 4", len(snaps))
	}
	// Deterministic order: sorted by name then label signature.
	wantNames := []string{"rejuv_bucket_level", "rejuv_triggers_total", "request_seconds", "weird"}
	for i, w := range wantNames {
		if snaps[i].Name != w {
			t.Errorf("series %d = %s, want %s", i, snaps[i].Name, w)
		}
	}
	hist := snaps[2]
	if hist.Kind != "histogram" || hist.Count != 4 || len(hist.Buckets) != 3 {
		t.Errorf("histogram snapshot wrong: %+v", hist)
	}
	if snaps[3].Labels[0].Name != "path" || snaps[3].Labels[0].Value != `a"b\c` {
		t.Errorf("label did not round-trip: %+v", snaps[3].Labels)
	}
}

func TestHandlerFormats(t *testing.T) {
	h := buildRegistry().Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("text content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `rejuv_triggers_total{detector="SRAA"} 3`) {
		t.Errorf("text body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var snaps []SeriesSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snaps); err != nil {
		t.Fatalf("json body: %v", err)
	}
}

// TestHandlerJSONContentTypeOverHTTP is the regression test for the
// JSON path's Content-Type: it must survive a real HTTP round trip
// (headers set after the first body write would be silently dropped by
// net/http, which a ResponseRecorder does not catch).
func TestHandlerJSONContentTypeOverHTTP(t *testing.T) {
	srv := httptest.NewServer(buildRegistry().Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("json content type over HTTP = %q, want application/json", ct)
	}
	var snaps []SeriesSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatalf("json body over HTTP: %v", err)
	}
	if len(snaps) == 0 {
		t.Error("json snapshot over HTTP is empty")
	}

	// Any other format value falls back to the Prometheus text
	// exposition, never to an unlabeled body.
	resp2, err := srv.Client().Get(srv.URL + "/metrics?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("fallback content type = %q, want text/plain", ct)
	}
}
