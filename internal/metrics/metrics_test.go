package metrics

import (
	"math"
	"sync"
	"testing"

	"rejuv/internal/num"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); !num.Close(got, 1.25) {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
	g.SetInt(7)
	if got := g.Value(); !num.Close(got, 7) {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Label{Name: "host", Value: "0"})
	b := r.Counter("x_total", "ignored on re-registration", Label{Name: "host", Value: "0"})
	if a != b {
		t.Fatal("same identity returned distinct counters")
	}
	other := r.Counter("x_total", "help", Label{Name: "host", Value: "1"})
	if a == other {
		t.Fatal("distinct label values shared a counter")
	}
	// Label order must not matter for identity.
	h1 := r.Gauge("y", "", Label{Name: "a", Value: "1"}, Label{Name: "b", Value: "2"})
	h2 := r.Gauge("y", "", Label{Name: "b", Value: "2"}, Label{Name: "a", Value: "1"})
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "", Label{Name: "host", Value: "0"})
}

// TestConcurrentUpdates exercises every instrument from many goroutines;
// run under -race this is the package's data-race gate, and the final
// counts must still be exact because updates are atomic.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat", "", []float64{1, 2, 4})

	const (
		workers   = 8
		perWorker = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				// Concurrent registration of the same identity must be safe too.
				r.Counter("hits_total", "")
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); !num.Close(got, total) {
		t.Errorf("gauge = %v, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// Each worker observes 0,1,2,3,4 cyclically: sum = perWorker/5 * 10.
	wantSum := float64(workers) * float64(perWorker) / 5 * 10
	if got := h.Sum(); !num.Close(got, wantSum) {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound ("le")
// semantics on exact boundary values.
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := []float64{0.5, 1, 2.5}
	cases := []struct {
		value float64
		want  []uint64 // cumulative counts per bound after observing value
		inf   uint64
	}{
		{value: 0.25, want: []uint64{1, 1, 1}},
		{value: 0.5, want: []uint64{1, 1, 1}}, // on the bound: counted (le)
		{value: 0.500001, want: []uint64{0, 1, 1}},
		{value: 1, want: []uint64{0, 1, 1}},
		{value: 2.5, want: []uint64{0, 0, 1}},
		{value: 2.5000001, want: []uint64{0, 0, 0}, inf: 1},
		{value: math.Inf(1), want: []uint64{0, 0, 0}, inf: 1},
		{value: -1, want: []uint64{1, 1, 1}},
	}
	for _, tc := range cases {
		h, err := newHistogram(bounds)
		if err != nil {
			t.Fatal(err)
		}
		h.Observe(tc.value)
		buckets := h.Buckets()
		for i, b := range buckets {
			if !num.Same(b.UpperBound, bounds[i]) {
				t.Errorf("value %v: bucket %d bound = %v, want %v", tc.value, i, b.UpperBound, bounds[i])
			}
			if b.CumulativeCount != tc.want[i] {
				t.Errorf("value %v: cumulative count at le=%v is %d, want %d",
					tc.value, b.UpperBound, b.CumulativeCount, tc.want[i])
			}
		}
		wantTotal := tc.want[len(tc.want)-1] + tc.inf
		if h.Count() != wantTotal {
			t.Errorf("value %v: total count %d, want %d", tc.value, h.Count(), wantTotal)
		}
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h, err := newHistogram([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("NaN was counted: count = %d", h.Count())
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		if _, err := newHistogram(bounds); err == nil {
			t.Errorf("bounds %v accepted", bounds)
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 0.5, 4)
	wantLin := []float64{1, 1.5, 2, 2.5}
	for i := range wantLin {
		if !num.Close(lin[i], wantLin[i]) {
			t.Errorf("linear bucket %d = %v, want %v", i, lin[i], wantLin[i])
		}
	}
	exp := ExponentialBuckets(0.001, 2, 4)
	wantExp := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range wantExp {
		if !num.Close(exp[i], wantExp[i]) {
			t.Errorf("exponential bucket %d = %v, want %v", i, exp[i], wantExp[i])
		}
	}
	if _, err := newHistogram(DefLatencyBuckets); err != nil {
		t.Errorf("DefLatencyBuckets invalid: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "quantile fixture", []float64{1, 2, 4, 8})

	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %v, want NaN", v)
	}
	if v := h.Quantile(math.NaN()); !math.IsNaN(v) {
		t.Errorf("NaN quantile = %v, want NaN", v)
	}

	// 100 observations spread uniformly over (0, 4]: 25 in (0,1], 25 in
	// (1,2], 50 in (2,4], none beyond.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	// The rank of q=0.5 is 50, the upper edge of bucket (1,2].
	if got := h.Quantile(0.5); !num.Close(got, 2) {
		t.Errorf("p50 = %v, want 2", got)
	}
	// q=0.25 exhausts the first bucket: interpolation from lower edge 0.
	if got := h.Quantile(0.25); !num.Close(got, 1) {
		t.Errorf("p25 = %v, want 1", got)
	}
	// q=0.625 lands in (2,4]: rank 62.5 is 12.5/50 into the bucket.
	if got := h.Quantile(0.625); !num.Close(got, 2.5) {
		t.Errorf("p62.5 = %v, want 2.5", got)
	}
	// q=0 clamps to the smallest populated value region.
	if got := h.Quantile(0); got < 0 || got > 1 {
		t.Errorf("p0 = %v, want within the first bucket", got)
	}
	// q=1 is the upper edge of the last populated bucket.
	if got := h.Quantile(1); !num.Close(got, 4) {
		t.Errorf("p100 = %v, want 4", got)
	}

	// Observations beyond the last bound land in +Inf; the estimate
	// saturates at the last finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); !num.Close(got, 8) {
		t.Errorf("p100 with +Inf mass = %v, want last finite bound 8", got)
	}

	// Out-of-range q clamps rather than erroring.
	if got := h.Quantile(2); !num.Close(got, 8) {
		t.Errorf("q=2 = %v, want clamp to 8", got)
	}
	if got := h.Quantile(-1); math.IsNaN(got) {
		t.Errorf("q=-1 = NaN, want clamped estimate")
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_single", "one-bucket fixture", []float64{10})
	h.Observe(3)
	h.Observe(7)
	if got := h.Quantile(0.5); !num.Close(got, 5) {
		t.Errorf("p50 = %v, want 5 (uniform-in-bucket assumption)", got)
	}
}
