// Package metrics is a dependency-free registry of counters, gauges and
// fixed-bucket histograms for instrumenting the monitor and the
// simulators. It exists because the paper's whole premise is monitoring
// a customer-affecting metric, so the monitoring machinery itself must
// be observable: detector bucket occupancy, sample sizes, trigger
// counts and simulation state are published through one registry and
// exposed in Prometheus text format or JSON (see expose.go).
//
// Hot paths are lock-free: counters and gauges are single atomic words,
// histogram observation is a binary search plus two atomic adds, so
// instruments can be updated from request handlers and simulation inner
// loops without contention. Registration (Counter, Gauge, Histogram) is
// idempotent and takes a mutex; do it once at setup, not per update.
//
// The package deliberately imports nothing beyond the standard library
// (and only sync, sync/atomic, math, sort, strconv, strings, io,
// net/http, encoding/json at that), so the deterministic simulation
// packages may depend on it without dragging in wall-clock time or
// ambient entropy.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to an instrument. A series is
// identified by its metric name plus its sorted label set.
type Label struct {
	// Name is the label key; it should match [a-zA-Z_][a-zA-Z0-9_]*.
	Name string
	// Value is the label value, escaped on exposition.
	Value string
}

// Kind discriminates the instrument types of a family.
type Kind int

// Instrument kinds, in exposition vocabulary.
const (
	// KindCounter is a monotonically increasing integer count.
	KindCounter Kind = iota
	// KindGauge is an arbitrary float64 that may go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket cumulative histogram.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Counter is a monotonically increasing count. The zero value is ready
// to use, but counters are normally obtained from a Registry so they
// appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that may move in both directions (queue length,
// heap level, bucket pointer). The zero value reads 0 and is ready to
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value, a convenience for level/length gauges.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Add adds delta with a compare-and-swap loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with inclusive upper
// bounds ("le" semantics): an observation lands in the first bucket
// whose upper bound is >= the value, and above the last bound it lands
// in the implicit +Inf bucket. Counts are cumulative only at exposition
// time; internally each bucket counts its own range so observation is
// two atomic adds.
type Histogram struct {
	upper   []float64 // sorted, strictly increasing, finite
	counts  []atomic.Uint64
	inf     atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// newHistogram validates and copies the bucket bounds.
func newHistogram(buckets []float64) (*Histogram, error) {
	if len(buckets) == 0 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket bound")
	}
	upper := append([]float64(nil), buckets...)
	for i, b := range upper {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("metrics: histogram bucket bound %v must be finite", b)
		}
		if i > 0 && b <= upper[i-1] {
			return nil, fmt.Errorf("metrics: histogram bounds must be strictly increasing, got %v after %v",
				b, upper[i-1])
		}
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}, nil
}

// Observe records one value. NaN observations are dropped: they carry
// no ordering information and would poison the sum.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// First bound >= v; sort.SearchFloat64s finds the first >= for exact
	// matches because bounds are strictly increasing.
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the cumulative bucket counts paired with their upper
// bounds, excluding the +Inf bucket (whose cumulative count is Count).
// Reading concurrently with observation gives a weakly consistent view:
// each bucket is atomically read, but the set is not a snapshot.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, len(h.upper))
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		out[i] = BucketCount{UpperBound: ub, CumulativeCount: cum}
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the observed
// distribution by linear interpolation within the fixed buckets, the
// standard Prometheus histogram_quantile estimate: the target rank is
// located in the cumulative bucket counts and the value interpolated
// between the bucket's bounds, assuming observations spread uniformly
// inside each bucket. The estimate's resolution is therefore the bucket
// width around the quantile. It returns NaN when the histogram is empty
// or q is NaN; within the first bucket it interpolates from a lower
// edge of 0 (the convention for non-negative metrics like latencies),
// and when the rank lands in the +Inf bucket it returns the last finite
// upper bound, the tightest answer the bounded buckets allow. Reading
// concurrently with observation gives a weakly consistent estimate,
// like Buckets.
func (h *Histogram) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i, ub := range h.upper {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.upper[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + frac*(ub-lower)
		}
		cum += c
	}
	// The rank lies in the +Inf bucket; the last finite bound is the
	// tightest answer the fixed buckets allow.
	return h.upper[len(h.upper)-1]
}

// BucketCount is one cumulative histogram bucket: the number of
// observations less than or equal to UpperBound.
type BucketCount struct {
	// UpperBound is the inclusive upper edge of the bucket.
	UpperBound float64 `json:"le"`
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount uint64 `json:"count"`
}

// LinearBuckets returns n bounds start, start+width, ... for histogram
// registration.
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 || width <= 0 {
		panic(fmt.Sprintf("metrics: linear buckets need positive count and width, got n=%d width=%v", n, width))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start*factor, ... for
// histogram registration. start must be positive and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("metrics: exponential buckets need n>0, start>0, factor>1, got n=%d start=%v factor=%v",
			n, start, factor))
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out
}

// DefLatencyBuckets is the default bucket scheme for latency histograms:
// 18 exponential bounds from 1 ms to ~131 s (doubling), wide enough for
// both millisecond HTTP services and the simulator's multi-second (and,
// under GC stalls, multi-minute) response times.
var DefLatencyBuckets = ExponentialBuckets(0.001, 2, 18)

// series is one registered instrument with its identity.
type series struct {
	name   string
	labels []Label // sorted by name
	kind   Kind
	help   string

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// key returns the identity string name{l1="v1",...} used for lookup and
// deterministic ordering.
func (s *series) key() string { return seriesKey(s.name, s.labels) }

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	out := name + "{"
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l.Name + "=" + escapeLabel(l.Value)
	}
	return out + "}"
}

// Registry holds instruments and renders them (see expose.go). The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series // guarded by mu
	order  []*series          // sorted by (name, label signature); guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// Counter returns the counter for (name, labels), registering it on
// first use. Registering the same identity with a different kind panics:
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, KindCounter, labels)
	return s.counter
}

// Gauge returns the gauge for (name, labels), registering it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, labels)
	return s.gauge
}

// Histogram returns the histogram for (name, labels), registering it on
// first use with the given bucket upper bounds (see DefLatencyBuckets).
// Bounds must be finite and strictly increasing; they are fixed at
// first registration and later calls for the same identity ignore the
// argument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	sorted := sortLabels(labels)
	key := seriesKey(name, sorted)
	if s, ok := r.series[key]; ok {
		if s.kind != KindHistogram {
			panic(fmt.Sprintf("metrics: %s already registered as %s, requested histogram", key, s.kind))
		}
		return s.histogram
	}
	h, err := newHistogram(buckets)
	if err != nil {
		panic(err) // invalid bounds are a programming error at setup time
	}
	s := &series{name: name, labels: sorted, kind: KindHistogram, help: help, histogram: h}
	r.insert(key, s)
	return h
}

// lookup returns the series for (name, labels, kind), creating counters
// and gauges on demand. Caller-visible identity conflicts panic.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	sorted := sortLabels(labels)
	key := seriesKey(name, sorted)
	if s, ok := r.series[key]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered as %s, requested %s", key, s.kind, kind))
		}
		return s
	}
	s := &series{name: name, labels: sorted, kind: kind, help: help}
	switch kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	default:
		panic(fmt.Sprintf("metrics: lookup cannot create %s", kind))
	}
	r.insert(key, s)
	return s
}

// insert stores the series keeping order sorted; r.mu is held.
//
//lint:holds mu
func (r *Registry) insert(key string, s *series) {
	r.series[key] = s
	order := r.order
	i := sort.Search(len(order), func(i int) bool { return order[i].key() >= key })
	r.order = append(r.order, nil)
	copy(r.order[i+1:], r.order[i:])
	r.order[i] = s
}

// snapshotSeries returns the registered series in deterministic order.
func (r *Registry) snapshotSeries() []*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*series(nil), r.order...)
}

// sortLabels copies and sorts labels by name, rejecting duplicates and
// empty names (panics: label sets are fixed at setup time).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	for i, l := range out {
		if l.Name == "" {
			panic("metrics: empty label name")
		}
		if i > 0 && l.Name == out[i-1].Name {
			panic(fmt.Sprintf("metrics: duplicate label %q", l.Name))
		}
	}
	return out
}
