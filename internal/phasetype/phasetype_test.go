package phasetype

import (
	"math"
	"testing"

	"rejuv/internal/dist"
	"rejuv/internal/linalg"
)

func TestExponentialPH(t *testing.T) {
	ph, err := Exponential(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", ph.Mean())
	}
	if math.Abs(ph.Var()-25) > 1e-9 {
		t.Fatalf("var = %v, want 25", ph.Var())
	}
	ref := dist.Exponential{Rate: 0.2}
	for _, x := range []float64{0.5, 5, 20} {
		pdf, err := ph.PDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pdf-ref.PDF(x)) > 1e-9 {
			t.Errorf("PDF(%v) = %v, want %v", x, pdf, ref.PDF(x))
		}
		cdf, err := ph.CDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cdf-ref.CDF(x)) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, cdf, ref.CDF(x))
		}
	}
}

func TestHypoExpPHMatchesClosedForm(t *testing.T) {
	ph, err := HypoExp(0.2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.NewHypoExp(0.2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.Mean()-ref.Mean()) > 1e-10 {
		t.Fatalf("mean = %v, want %v", ph.Mean(), ref.Mean())
	}
	if math.Abs(ph.Var()-ref.Var()) > 1e-9 {
		t.Fatalf("var = %v, want %v", ph.Var(), ref.Var())
	}
	for _, x := range []float64{0.3, 2, 8, 25} {
		pdf, err := ph.PDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pdf-ref.PDF(x)) > 1e-9 {
			t.Errorf("PDF(%v) = %v, want %v", x, pdf, ref.PDF(x))
		}
	}
}

func TestMixMatchesMixtureDistribution(t *testing.T) {
	// The paper's response time: Wc exp + (1-Wc) hypoexp.
	const wc = 0.990981
	expPH, err := Exponential(0.2)
	if err != nil {
		t.Fatal(err)
	}
	hypoPH, err := HypoExp(0.2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := Mix(wc, expPH, hypoPH)
	if err != nil {
		t.Fatal(err)
	}
	hypoDist, err := dist.NewHypoExp(0.2, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := dist.NewMixture([]float64{wc, 1 - wc},
		[]dist.Dist{dist.Exponential{Rate: 0.2}, hypoDist})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mixed.Mean()-ref.Mean()) > 1e-9 {
		t.Fatalf("mean = %v, want %v", mixed.Mean(), ref.Mean())
	}
	if math.Abs(mixed.Var()-ref.Var()) > 1e-9 {
		t.Fatalf("var = %v, want %v", mixed.Var(), ref.Var())
	}
	for _, x := range []float64{1, 5, 12} {
		cdf, err := mixed.CDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cdf-ref.CDF(x)) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, cdf, ref.CDF(x))
		}
	}
}

func TestScaleDividesMeanAndVariance(t *testing.T) {
	ph, err := HypoExp(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ph.Scale(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.Mean()-ph.Mean()/4) > 1e-12 {
		t.Fatalf("scaled mean = %v, want %v", scaled.Mean(), ph.Mean()/4)
	}
	if math.Abs(scaled.Var()-ph.Var()/16) > 1e-12 {
		t.Fatalf("scaled var = %v, want %v", scaled.Var(), ph.Var()/16)
	}
	if _, err := ph.Scale(0); err == nil {
		t.Fatal("Scale(0) accepted")
	}
}

func TestConvolveAddsMoments(t *testing.T) {
	a, err := Exponential(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exponential(3)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Convolve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean()-(1+1.0/3)) > 1e-12 {
		t.Fatalf("convolved mean = %v, want 4/3", sum.Mean())
	}
	if math.Abs(sum.Var()-(1+1.0/9)) > 1e-9 {
		t.Fatalf("convolved var = %v, want 10/9", sum.Var())
	}
	// Convolving two exponentials with distinct rates is the
	// two-stage hypoexponential.
	ref, err := dist.NewHypoExp(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 1, 4} {
		pdf, err := sum.PDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pdf-ref.PDF(x)) > 1e-9 {
			t.Errorf("PDF(%v) = %v, want %v", x, pdf, ref.PDF(x))
		}
	}
}

func TestSampleMeanMoments(t *testing.T) {
	// E[X̄n] = E[X]; Var[X̄n] = Var[X]/n — the identities behind the
	// paper's Fig. 4 construction.
	base, err := HypoExp(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 5, 10} {
		avg, err := base.SampleMean(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := avg.NumPhases(); got != 2*n {
			t.Fatalf("n=%d: %d phases, want %d", n, got, 2*n)
		}
		if math.Abs(avg.Mean()-base.Mean()) > 1e-9 {
			t.Errorf("n=%d: mean %v, want %v", n, avg.Mean(), base.Mean())
		}
		if math.Abs(avg.Var()-base.Var()/float64(n)) > 1e-9 {
			t.Errorf("n=%d: var %v, want %v", n, avg.Var(), base.Var()/float64(n))
		}
	}
	if _, err := base.SampleMean(0); err == nil {
		t.Fatal("SampleMean(0) accepted")
	}
}

func TestCDFMonotoneAndNormalized(t *testing.T) {
	ph, err := HypoExp(1, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for x := 0.0; x <= 30; x += 0.5 {
		cdf, err := ph.CDF(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cdf < prev-1e-10 {
			t.Fatalf("CDF decreasing at %v", x)
		}
		prev = cdf
	}
	if prev < 0.999 {
		t.Fatalf("CDF(30) = %v, want ~1", prev)
	}
	if pdf, _ := ph.PDF(-1, 0); pdf != 0 {
		t.Fatal("PDF(-1) != 0")
	}
}

func TestNewValidation(t *testing.T) {
	okT := linalg.FromRows([][]float64{{-1}})
	tests := []struct {
		name  string
		alpha []float64
		t     *linalg.Matrix
	}{
		{"non-square", []float64{1}, linalg.NewMatrix(1, 2)},
		{"alpha length", []float64{1, 0}, okT},
		{"alpha sum", []float64{0.5}, okT},
		{"alpha negative", []float64{-1}, okT},
		{"diagonal non-negative", []float64{1}, linalg.FromRows([][]float64{{0}})},
		{"off-diagonal negative", []float64{1, 0},
			linalg.FromRows([][]float64{{-1, -0.5}, {0, -1}})},
		{"row sum positive", []float64{1, 0},
			linalg.FromRows([][]float64{{-1, 2}, {0, -1}})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.alpha, tt.t); err == nil {
				t.Errorf("New accepted invalid %s", tt.name)
			}
		})
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := Exponential(0); err == nil {
		t.Error("Exponential(0) accepted")
	}
	if _, err := HypoExp(); err == nil {
		t.Error("HypoExp() accepted")
	}
	if _, err := HypoExp(1, -2); err == nil {
		t.Error("HypoExp with negative rate accepted")
	}
	a, _ := Exponential(1)
	if _, err := Mix(1.5, a, a); err == nil {
		t.Error("Mix with p>1 accepted")
	}
}

func TestExitVector(t *testing.T) {
	ph, err := HypoExp(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	exit := ph.ExitVector()
	// Stage 1 exits only into stage 2 (no absorption); stage 2 absorbs
	// at its full rate.
	if exit[0] != 0 || exit[1] != 3 {
		t.Fatalf("exit vector = %v, want [0 3]", exit)
	}
}

func TestNewCopiesInputs(t *testing.T) {
	alpha := []float64{1}
	tm := linalg.FromRows([][]float64{{-2}})
	ph, err := New(alpha, tm)
	if err != nil {
		t.Fatal(err)
	}
	alpha[0] = 0.3
	tm.Set(0, 0, -99)
	if ph.Alpha[0] != 1 || ph.T.At(0, 0) != -2 {
		t.Fatal("New shares storage with its arguments")
	}
}
