// Package phasetype implements continuous phase-type distributions
// PH(alpha, T): the distribution of the time to absorption in a CTMC
// with transient sub-generator T and initial distribution alpha.
//
// The paper represents the M/M/c response time as a phase-type
// distribution (Fig. 2/3) and the sample average X̄n as absorption in a
// concatenation of n time-scaled copies (Fig. 4). Scale and Convolve
// construct exactly those chains; density and CDF are evaluated through
// the ctmc package's uniformization solver.
package phasetype

import (
	"fmt"
	"math"

	"rejuv/internal/ctmc"
	"rejuv/internal/linalg"
)

// PH is a phase-type distribution with m transient phases.
// Alpha is the initial probability over phases (it must sum to 1; point
// mass at zero is not supported because the paper's distributions have
// none). T is the m x m sub-generator: T[i][j] >= 0 for i != j,
// T[i][i] < 0, row sums <= 0. The exit rate of phase i is
// -sum_j T[i][j].
type PH struct {
	Alpha []float64
	T     *linalg.Matrix
}

// New validates and returns a PH(alpha, T). The returned PH shares no
// storage with the arguments.
func New(alpha []float64, t *linalg.Matrix) (*PH, error) {
	if t.Rows != t.Cols {
		return nil, fmt.Errorf("phasetype: T must be square, got %dx%d", t.Rows, t.Cols)
	}
	if len(alpha) != t.Rows {
		return nil, fmt.Errorf("phasetype: alpha length %d != %d phases", len(alpha), t.Rows)
	}
	sum := 0.0
	for _, a := range alpha {
		if a < 0 || math.IsNaN(a) {
			return nil, fmt.Errorf("phasetype: alpha entry %v is invalid", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("phasetype: alpha sums to %v, want 1", sum)
	}
	for i := 0; i < t.Rows; i++ {
		rowSum := 0.0
		for j := 0; j < t.Cols; j++ {
			v := t.At(i, j)
			if i == j {
				if v >= 0 {
					return nil, fmt.Errorf("phasetype: diagonal T[%d][%d]=%v must be negative", i, j, v)
				}
			} else if v < 0 {
				return nil, fmt.Errorf("phasetype: off-diagonal T[%d][%d]=%v must be non-negative", i, j, v)
			}
			rowSum += v
		}
		if rowSum > 1e-9 {
			return nil, fmt.Errorf("phasetype: row %d of T sums to %v > 0", i, rowSum)
		}
	}
	a := make([]float64, len(alpha))
	copy(a, alpha)
	return &PH{Alpha: a, T: t.Clone()}, nil
}

// Exponential returns the PH form of an exponential distribution.
func Exponential(rate float64) (*PH, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("phasetype: exponential rate must be positive and finite, got %v", rate)
	}
	t := linalg.NewMatrix(1, 1)
	t.Set(0, 0, -rate)
	return New([]float64{1}, t)
}

// HypoExp returns the PH form of a series of exponential stages.
func HypoExp(rates ...float64) (*PH, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("phasetype: HypoExp needs at least one stage")
	}
	m := len(rates)
	t := linalg.NewMatrix(m, m)
	for i, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("phasetype: stage rate must be positive and finite, got %v", r)
		}
		t.Set(i, i, -r)
		if i+1 < m {
			t.Set(i, i+1, r)
		}
	}
	alpha := make([]float64, m)
	alpha[0] = 1
	return New(alpha, t)
}

// Mix returns the probabilistic mixture p*a + (1-p)*b as a PH on the
// disjoint union of phases.
func Mix(p float64, a, b *PH) (*PH, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("phasetype: mixture probability %v outside [0,1]", p)
	}
	na, nb := len(a.Alpha), len(b.Alpha)
	t := linalg.NewMatrix(na+nb, na+nb)
	for i := 0; i < na; i++ {
		for j := 0; j < na; j++ {
			t.Set(i, j, a.T.At(i, j))
		}
	}
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			t.Set(na+i, na+j, b.T.At(i, j))
		}
	}
	alpha := make([]float64, na+nb)
	for i, v := range a.Alpha {
		alpha[i] = p * v
	}
	for i, v := range b.Alpha {
		alpha[na+i] = (1 - p) * v
	}
	return New(alpha, t)
}

// NumPhases returns the number of transient phases.
func (p *PH) NumPhases() int { return len(p.Alpha) }

// ExitVector returns t0 = -T*1: the absorption rate from each phase.
func (p *PH) ExitVector() []float64 {
	m := p.NumPhases()
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		s := 0.0
		for j := 0; j < m; j++ {
			s += p.T.At(i, j)
		}
		out[i] = -s
		if out[i] < 0 && out[i] > -1e-12 {
			out[i] = 0
		}
	}
	return out
}

// moments returns E[X] and E[X^2] from the linear systems
// (-T) y1 = 1, (-T) y2 = y1, E[X] = alpha.y1, E[X^2] = 2 alpha.y2.
func (p *PH) moments() (m1, m2 float64, err error) {
	negT := p.T.Clone().Scale(-1)
	f, err := linalg.Factor(negT)
	if err != nil {
		return 0, 0, fmt.Errorf("phasetype: moments: %w", err)
	}
	y1, err := f.Solve(linalg.Ones(p.NumPhases()))
	if err != nil {
		return 0, 0, fmt.Errorf("phasetype: moments: %w", err)
	}
	y2, err := f.Solve(y1)
	if err != nil {
		return 0, 0, fmt.Errorf("phasetype: moments: %w", err)
	}
	return linalg.Dot(p.Alpha, y1), 2 * linalg.Dot(p.Alpha, y2), nil
}

// Mean returns the expected value. It panics only on an internal
// inconsistency (a validated PH always has invertible -T).
func (p *PH) Mean() float64 {
	m1, _, err := p.moments()
	if err != nil {
		panic(err)
	}
	return m1
}

// Var returns the variance.
func (p *PH) Var() float64 {
	m1, m2, err := p.moments()
	if err != nil {
		panic(err)
	}
	return m2 - m1*m1
}

// Scale returns the distribution of X/r: every rate multiplied by r.
// It errors on a non-positive factor.
func (p *PH) Scale(r float64) (*PH, error) {
	if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		return nil, fmt.Errorf("phasetype: scale factor must be positive and finite, got %v", r)
	}
	return New(p.Alpha, p.T.Clone().Scale(r))
}

// Convolve returns the distribution of the sum X_a + X_b: b's chain is
// entered, with distribution b.Alpha, at the moment a absorbs. This is
// the concatenation construction of the paper's Fig. 4.
func Convolve(a, b *PH) (*PH, error) {
	na, nb := len(a.Alpha), len(b.Alpha)
	exitA := a.ExitVector()
	t := linalg.NewMatrix(na+nb, na+nb)
	for i := 0; i < na; i++ {
		for j := 0; j < na; j++ {
			t.Set(i, j, a.T.At(i, j))
		}
		for j := 0; j < nb; j++ {
			t.Set(i, na+j, exitA[i]*b.Alpha[j])
		}
	}
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			t.Set(na+i, na+j, b.T.At(i, j))
		}
	}
	alpha := make([]float64, na+nb)
	copy(alpha, a.Alpha)
	return New(alpha, t)
}

// SampleMean returns the distribution of the average of n independent
// copies of p: the n-fold convolution of p scaled by n (each copy's
// rates multiplied by n). For the M/M/c response time this reproduces
// the chain of the paper's Fig. 4 exactly.
func (p *PH) SampleMean(n int) (*PH, error) {
	if n <= 0 {
		return nil, fmt.Errorf("phasetype: sample size must be positive, got %d", n)
	}
	scaled, err := p.Scale(float64(n))
	if err != nil {
		return nil, err
	}
	out := scaled
	for i := 1; i < n; i++ {
		out, err = Convolve(out, scaled)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Chain embeds the PH into a CTMC with one extra absorbing state (the
// last state) and returns the chain plus the initial distribution.
func (p *PH) Chain() (*ctmc.Chain, []float64) {
	m := p.NumPhases()
	c := ctmc.New(m + 1)
	exit := p.ExitVector()
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				if r := p.T.At(i, j); r > 0 {
					c.MustAddRate(i, j, r)
				}
			}
		}
		if exit[i] > 0 {
			c.MustAddRate(i, m, exit[i])
		}
	}
	pi0 := make([]float64, m+1)
	copy(pi0, p.Alpha)
	return c, pi0
}

// PDF returns the density at x, evaluated as the absorption flux of the
// embedded CTMC (uniformization, truncation error below eps; eps <= 0
// selects the default).
func (p *PH) PDF(x, eps float64) (float64, error) {
	if x < 0 {
		return 0, nil
	}
	c, pi0 := p.Chain()
	return c.AbsorptionPDF(pi0, p.NumPhases(), x, eps)
}

// PDFBatch returns the density at every point of xs in one pass,
// sharing the uniformization work across the grid. Negative points get
// density zero.
func (p *PH) PDFBatch(xs []float64, eps float64) ([]float64, error) {
	ts := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			ts[i] = 0 // evaluated but discarded below
		} else {
			ts[i] = x
		}
	}
	c, pi0 := p.Chain()
	dens, err := c.AbsorptionPDFBatch(pi0, p.NumPhases(), ts, eps)
	if err != nil {
		return nil, err
	}
	for i, x := range xs {
		if x < 0 {
			dens[i] = 0
		}
	}
	return dens, nil
}

// CDF returns P(X <= x) via the embedded CTMC.
func (p *PH) CDF(x, eps float64) (float64, error) {
	if x < 0 {
		return 0, nil
	}
	c, pi0 := p.Chain()
	return c.AbsorptionCDF(pi0, p.NumPhases(), x, eps)
}
