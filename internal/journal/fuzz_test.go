package journal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"rejuv/internal/core"
)

// fuzzSeed builds a valid binary journal for the fuzz corpus.
func fuzzSeed() []byte {
	var buf bytes.Buffer
	jw := NewWriter(&buf, sampleMeta)
	writeSample(jw)
	return buf.Bytes()
}

// fuzzSeedJSONL builds a valid JSONL journal for the fuzz corpus.
func fuzzSeedJSONL() []byte {
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf, sampleMeta)
	writeSample(jw)
	return buf.Bytes()
}

// FuzzReader throws arbitrary bytes at the decoder: it must never
// panic, never loop forever, and on records it does accept, re-encoding
// must reproduce the accepted payload (decode/encode idempotence).
func FuzzReader(f *testing.F) {
	f.Add(fuzzSeed())
	f.Add(fuzzSeedJSONL())
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add(append(append([]byte{}, magic[:]...), Version, 0x02, '{', '}'))
	f.Fuzz(func(t *testing.T, data []byte) {
		jr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			rec, err := jr.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
			if !rec.Kind.Valid() {
				t.Fatalf("decoder accepted invalid kind %d", byte(rec.Kind))
			}
			if jr.Format() == FormatBinary {
				reencodeCheck(t, rec)
			}
		}
	})
}

// reencodeCheck asserts that encoding an accepted record and decoding
// it again yields the same payload bytes — the decoder and encoder
// agree on the wire layout.
func reencodeCheck(t *testing.T, rec Record) {
	t.Helper()
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	jw.Record(rec)
	if err := jw.Err(); err != nil {
		t.Fatalf("re-encoding accepted record %+v: %v", rec, err)
	}
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-reading re-encoded record: %v", err)
	}
	rec2, err := jr.Next()
	if err != nil {
		t.Fatalf("re-decoding re-encoded record %+v: %v", rec, err)
	}
	// Seq is reassigned by the writer; mask it for the comparison. The
	// remaining fields must survive the round trip bit-exactly (floats
	// compared through their encodings below, not with ==).
	rec.Seq, rec2.Seq = 0, 0
	b1 := appendPayload(nil, &rec)
	b2 := appendPayload(nil, &rec2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("record did not survive re-encode round trip:\n first %+v\nsecond %+v", rec, rec2)
	}
}

// FuzzReplayRobustness feeds arbitrary journals to the replay verifier:
// whatever the bytes, Replay must return, not panic.
func FuzzReplayRobustness(f *testing.F) {
	f.Add(fuzzSeed())
	f.Add(fuzzSeedJSONL())
	f.Fuzz(func(t *testing.T, data []byte) {
		jr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		factory := func() (core.Detector, error) {
			return core.NewSRAA(core.SRAAConfig{
				SampleSize: 2, Buckets: 3, Depth: 2,
				Baseline: core.Baseline{Mean: 5, StdDev: 5},
			})
		}
		_, _ = Replay(jr, factory)
	})
}
