package journal

import (
	"math"
	"testing"
)

// dec builds a decision record for the analysis tests.
func dec(t float64, mean, target float64, level int, triggered, suppressed bool) Record {
	return Record{
		Kind: KindDecision, Time: t, Evaluated: true,
		SampleMean: mean, Target: target, Level: level,
		Triggered: triggered, Suppressed: suppressed,
	}
}

// analysisFixture is a two-phase single-rep stream: a suppressed
// trigger and a GC inside the first phase, then a second quick trigger.
func analysisFixture() []Record {
	return []Record{
		{Kind: KindRepStart, Rep: 0, Seed: 9},
		{Kind: KindObserve, Time: 10, Value: 4},
		dec(10, 4, 5, 0, false, false), // below target
		{Kind: KindGCStart, Time: 15, HeapMB: 90},
		{Kind: KindGCEnd, Time: 75, HeapMB: 3072},
		{Kind: KindObserve, Time: 80, Value: 70},
		dec(80, 70, 5, 1, false, false), // first exceedance, level 1
		{Kind: KindObserve, Time: 90, Value: 71},
		dec(90, 71, 5, 2, true, true), // suppressed trigger
		{Kind: KindObserve, Time: 100, Value: 72},
		dec(100, 72, 5, 3, true, false), // delivered trigger #1
		{Kind: KindRejuvenation, Time: 100, Killed: 12},
		{Kind: KindReset, Time: 100},
		{Kind: KindObserve, Time: 110, Value: 80},
		dec(110, 80, 5, 1, true, false), // delivered trigger #2
		{Kind: KindRejuvenation, Time: 110, Killed: 3},
		{Kind: KindReset, Time: 110},
	}
}

func TestAnalyzeCountsAndTriggers(t *testing.T) {
	a := Analyze(Meta{Detector: "SRAA"}, FormatBinary, analysisFixture(), 3)
	if a.Reps != 1 || a.Observations != 5 || a.Decisions != 5 || a.Resets != 2 {
		t.Errorf("counts: reps=%d obs=%d dec=%d resets=%d", a.Reps, a.Observations, a.Decisions, a.Resets)
	}
	if a.Triggers != 2 || a.Suppressed != 1 {
		t.Errorf("triggers=%d suppressed=%d, want 2/1", a.Triggers, a.Suppressed)
	}
	if a.Rejuvenations != 2 || a.Killed != 15 || a.GCs != 1 {
		t.Errorf("rejuvenations=%d killed=%d gcs=%d", a.Rejuvenations, a.Killed, a.GCs)
	}
	if a.Duration != 110 {
		t.Errorf("duration=%v, want 110", a.Duration)
	}
	if len(a.Events) != 2 {
		t.Fatalf("got %d trigger events, want 2", len(a.Events))
	}

	ev := a.Events[0]
	if ev.Time != 100 || ev.Rep != 0 || ev.Index != 1 {
		t.Errorf("trigger 1 at t=%v rep=%d index=%d", ev.Time, ev.Rep, ev.Index)
	}
	if ev.FirstExceedance != 80 || ev.TimeToTrigger != 20 {
		t.Errorf("trigger 1 firstExceedance=%v timeToTrigger=%v, want 80/20", ev.FirstExceedance, ev.TimeToTrigger)
	}
	if ev.Suppressed != 1 || ev.GCs != 1 {
		t.Errorf("trigger 1 suppressed=%d gcs=%d, want 1/1", ev.Suppressed, ev.GCs)
	}
	if len(ev.Window) != 3 || ev.Window[2].Time != 100 || ev.Window[0].Time != 80 {
		t.Errorf("trigger 1 window: %+v", ev.Window)
	}
	// Dwell: level 0 entered at t=10, level 1 at 80, level 2 at 90,
	// trigger at 100 → 70s at level 0, 10s at 1, 10s at 2.
	wantDwell := []float64{70, 10, 10}
	if len(ev.Dwell) != len(wantDwell) {
		t.Fatalf("trigger 1 dwell %v, want %v", ev.Dwell, wantDwell)
	}
	for i := range wantDwell {
		if math.Abs(ev.Dwell[i]-wantDwell[i]) > 1e-9 {
			t.Errorf("dwell[%d]=%v, want %v", i, ev.Dwell[i], wantDwell[i])
		}
	}

	// Phase 2 has a single decision that both exceeds and triggers:
	// time-to-trigger collapses to zero.
	ev2 := a.Events[1]
	if ev2.FirstExceedance != 110 || ev2.TimeToTrigger != 0 {
		t.Errorf("trigger 2 firstExceedance=%v timeToTrigger=%v, want 110/0", ev2.FirstExceedance, ev2.TimeToTrigger)
	}
	if ev2.Suppressed != 0 || ev2.GCs != 0 {
		t.Errorf("trigger 2 inherited phase state: suppressed=%d gcs=%d", ev2.Suppressed, ev2.GCs)
	}
}

func TestAnalyzePhases(t *testing.T) {
	ps := Analyze(Meta{}, FormatBinary, analysisFixture(), 3).Phases()
	if ps.Triggers != 2 || ps.SuppressedTotal != 1 {
		t.Errorf("phases: triggers=%d suppressed=%d", ps.Triggers, ps.SuppressedTotal)
	}
	ttt := ps.TimeToTrigger
	if ttt.N != 2 || ttt.Min != 0 || ttt.Max != 20 || math.Abs(ttt.Mean-10) > 1e-9 {
		t.Errorf("time-to-trigger summary: %+v", ttt)
	}
	// Mean dwell at level 0 across the two phases: (70 + 0) / 2.
	if len(ps.DwellMean) == 0 || math.Abs(ps.DwellMean[0]-35) > 1e-9 {
		t.Errorf("dwell mean: %v", ps.DwellMean)
	}
}

func TestAnalyzeMultiRepDuration(t *testing.T) {
	records := []Record{
		{Kind: KindRepStart, Rep: 0},
		{Kind: KindObserve, Time: 40},
		{Kind: KindRepStart, Rep: 1}, // clock restarts
		{Kind: KindObserve, Time: 30},
	}
	a := Analyze(Meta{}, FormatBinary, records, 1)
	if a.Reps != 2 {
		t.Errorf("reps=%d, want 2", a.Reps)
	}
	if a.Duration != 70 {
		t.Errorf("duration=%v, want 70 (40 + 30 across reps)", a.Duration)
	}
}

func TestAnalyzeNoExceedanceIsNaN(t *testing.T) {
	// A trigger with no prior mean>target decision (possible for chart
	// detectors whose statistic, not the mean, crossed) reports NaN.
	records := []Record{
		dec(10, 4, 5, 0, true, false),
	}
	a := Analyze(Meta{}, FormatBinary, records, 4)
	if len(a.Events) != 1 {
		t.Fatalf("events: %d", len(a.Events))
	}
	if !math.IsNaN(a.Events[0].FirstExceedance) || !math.IsNaN(a.Events[0].TimeToTrigger) {
		t.Errorf("want NaN first-exceedance/time-to-trigger, got %v/%v",
			a.Events[0].FirstExceedance, a.Events[0].TimeToTrigger)
	}
}

func TestDiffIdenticalAndDiverging(t *testing.T) {
	a := analysisFixture()

	same := Diff(Meta{}, a, Meta{}, analysisFixture(), 3)
	if same.Divergence != nil {
		t.Fatalf("identical streams reported divergence at ordinal %d", same.Divergence.Ordinal)
	}
	if same.CommonDecisions != 5 {
		t.Errorf("common decisions=%d, want 5", same.CommonDecisions)
	}

	// Suppression is cooldown-owned and must be masked by the diff.
	b := analysisFixture()
	for i := range b {
		b[i].Suppressed = false
	}
	masked := Diff(Meta{}, a, Meta{}, b, 3)
	if masked.Divergence != nil {
		t.Errorf("suppression flip reported as divergence")
	}

	// A sample-mean change is a real divergence.
	c := analysisFixture()
	c[6].SampleMean += 1 // the t=80 decision, ordinal 1
	diff := Diff(Meta{}, a, Meta{}, c, 3)
	if diff.Divergence == nil {
		t.Fatal("diff missed a sample-mean divergence")
	}
	if diff.Divergence.Ordinal != 1 || diff.CommonDecisions != 1 {
		t.Errorf("divergence at ordinal %d with %d common, want 1/1",
			diff.Divergence.Ordinal, diff.CommonDecisions)
	}

	// A prefix relationship is not a divergence; the counts differ.
	prefix := Diff(Meta{}, a, Meta{}, a[:9], 3)
	if prefix.Divergence != nil {
		t.Errorf("prefix stream reported divergence")
	}
	if prefix.CommonDecisions != 3 {
		t.Errorf("prefix common decisions=%d, want 3", prefix.CommonDecisions)
	}
}

// causalityFixture is a single-rep stream where trigger id 0xBEEF links
// a decision to a two-attempt actuator execution, amid unrelated
// records: an earlier id-less journal era, and a second manual
// execution with no trigger id.
func causalityFixture() []Record {
	d := dec(100, 72, 5, 3, true, false)
	d.TriggerID = 0xBEEF
	return []Record{
		{Kind: KindRepStart, Rep: 0, Seed: 9},
		{Kind: KindObserve, Time: 10, Value: 4},
		dec(10, 4, 5, 0, false, false),
		{Kind: KindObserve, Time: 80, Value: 70},
		dec(80, 70, 5, 1, false, false),
		{Kind: KindObserve, Time: 90, Value: 71},
		dec(90, 71, 5, 2, true, true),
		{Kind: KindObserve, Time: 100, Value: 72},
		d,
		{Kind: KindActStart, Time: 100, TriggerID: 0xBEEF},
		{Kind: KindActAttempt, Time: 101, Attempt: 1, OK: false, Class: "io timeout", Backoff: 2, TriggerID: 0xBEEF},
		{Kind: KindActAttempt, Time: 103, Attempt: 2, OK: true, TriggerID: 0xBEEF},
		{Kind: KindReset, Time: 103},
		{Kind: KindActStart, Time: 200},
		{Kind: KindActAttempt, Time: 201, Attempt: 1, OK: true},
	}
}

func TestTraceCausality(t *testing.T) {
	c, ok := TraceCausality(causalityFixture(), 0xBEEF, 3)
	if !ok {
		t.Fatal("TraceCausality did not find id 0xBEEF")
	}
	if c.Fleet || c.Stream != 0 {
		t.Errorf("single-stream chain marked fleet=%v stream=%d", c.Fleet, c.Stream)
	}
	if c.Decision.Time != 100 || !c.Decision.Triggered {
		t.Errorf("decision: %+v", c.Decision)
	}
	if len(c.Observations) != 3 || c.Observations[0].Time != 80 || c.Observations[2].Time != 100 {
		t.Errorf("observations: %+v", c.Observations)
	}
	if len(c.Actions) != 1 {
		t.Fatalf("got %d actions, want 1 (the manual execution must not attach)", len(c.Actions))
	}
	act := c.Actions[0]
	if len(act.Attempts) != 2 || !act.Succeeded() || act.GaveUp || act.End != 103 {
		t.Errorf("action: %+v", act)
	}
	if act.Attempts[0].Class != "io timeout" || act.Attempts[0].Backoff != 2 {
		t.Errorf("first attempt: %+v", act.Attempts[0])
	}
}

func TestTraceCausalityFleet(t *testing.T) {
	recs := []Record{
		{Kind: KindStreamOpen, Stream: 7, Class: "web"},
		{Kind: KindStreamOpen, Stream: 8, Class: "db"},
		{Kind: KindStreamObserve, Time: 1, Stream: 7, Value: 50},
		{Kind: KindStreamObserve, Time: 1, Stream: 8, Value: 3},
		{Kind: KindStreamObserve, Time: 2, Stream: 7, Value: 51},
		{Kind: KindStreamDecision, Time: 2, Stream: 7, Evaluated: true,
			SampleMean: 50.5, Target: 7, Level: 1, Triggered: true, TriggerID: 0xF1},
	}
	c, ok := TraceCausality(recs, 0xF1, 8)
	if !ok {
		t.Fatal("TraceCausality did not find id 0xF1")
	}
	if !c.Fleet || c.Stream != 7 || c.Class != "web" {
		t.Errorf("fleet=%v stream=%d class=%q, want fleet stream 7 class web", c.Fleet, c.Stream, c.Class)
	}
	// Only stream 7's observations belong to the chain.
	if len(c.Observations) != 2 || c.Observations[0].Value != 50 || c.Observations[1].Value != 51 {
		t.Errorf("observations: %+v", c.Observations)
	}
	if len(c.Actions) != 0 {
		t.Errorf("unexpected actions: %+v", c.Actions)
	}
}

func TestTraceCausalityAbsent(t *testing.T) {
	if _, ok := TraceCausality(causalityFixture(), 0xDEAD, 3); ok {
		t.Error("found a chain for an id no record carries")
	}
	// Id 0 is the pre-trigger-id era marker, never a valid chain.
	if _, ok := TraceCausality(analysisFixture(), 0, 3); ok {
		t.Error("found a chain for id 0")
	}
}
