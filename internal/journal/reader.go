package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// Reader decodes a journal stream, auto-detecting the codec from the
// first bytes: a binary journal starts with the RJNL magic, anything
// else is treated as JSON lines. The decoder is defensive — length
// prefixes are bounded, kinds validated, truncation reported — because
// journals outlive the process that wrote them and may arrive damaged.
type Reader struct {
	br     *bufio.Reader
	format Format
	meta   Meta

	// tolerateTorn treats a truncated final record as clean EOF; torn
	// accumulates the dropped trailing bytes and drained latches EOF.
	tolerateTorn bool
	torn         int
	drained      bool
}

// NewReader wraps r and reads the journal header. It fails on a missing
// or malformed header rather than guessing.
func NewReader(r io.Reader) (*Reader, error) {
	jr := &Reader{br: bufio.NewReaderSize(r, 64<<10)}
	head, err := jr.br.Peek(len(magic))
	if err != nil {
		return nil, fmt.Errorf("journal: reading stream head: %w", err)
	}
	if bytes.Equal(head, magic[:]) {
		jr.format = FormatBinary
		if err := jr.readBinaryHeader(); err != nil {
			return nil, err
		}
		return jr, nil
	}
	jr.format = FormatJSONL
	if err := jr.readJSONHeader(); err != nil {
		return nil, err
	}
	return jr, nil
}

// readBinaryHeader consumes magic, version and the meta block.
func (jr *Reader) readBinaryHeader() error {
	var head [len(magic) + 1]byte
	if _, err := io.ReadFull(jr.br, head[:]); err != nil {
		return fmt.Errorf("journal: reading binary header: %w", err)
	}
	if v := head[len(magic)]; v != Version {
		return fmt.Errorf("journal: unsupported binary version %d (this reader speaks %d)", v, Version)
	}
	n, err := binary.ReadUvarint(jr.br)
	if err != nil {
		return fmt.Errorf("journal: reading meta length: %w", err)
	}
	if n > MaxMetaLen {
		return fmt.Errorf("journal: meta block of %d bytes exceeds limit %d", n, MaxMetaLen)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(jr.br, data); err != nil {
		return fmt.Errorf("journal: reading meta block: %w", err)
	}
	if err := json.Unmarshal(data, &jr.meta); err != nil {
		return fmt.Errorf("journal: decoding meta: %w", err)
	}
	return nil
}

// readJSONHeader consumes the first line as the meta object.
func (jr *Reader) readJSONHeader() error {
	line, err := jr.readLine()
	if err != nil {
		return fmt.Errorf("journal: reading JSONL meta line: %w", err)
	}
	if err := json.Unmarshal(line, &jr.meta); err != nil {
		return fmt.Errorf("journal: decoding JSONL meta: %w", err)
	}
	return nil
}

// TolerateTornTail makes the reader treat a truncated final record — the
// signature of a crash mid-write — as a clean end of stream instead of an
// error, so one torn record never makes a whole journal unreadable. The
// dropped byte count is available from TornBytes afterwards. Corruption
// that is not a clean truncation (an oversized length prefix, a full-
// length record that fails to decode, a terminated JSONL line that fails
// to parse) still errors. Call before the first Next.
func (jr *Reader) TolerateTornTail() { jr.tolerateTorn = true }

// TornBytes returns how many trailing bytes of a torn final record were
// dropped under TolerateTornTail; 0 means the journal ended cleanly.
func (jr *Reader) TornBytes() int { return jr.torn }

// Meta returns the journal header.
func (jr *Reader) Meta() Meta { return jr.meta }

// Format returns the detected codec.
func (jr *Reader) Format() Format { return jr.format }

// Next returns the next record, or io.EOF at a clean end of stream. A
// truncated or corrupt record returns a descriptive non-EOF error.
func (jr *Reader) Next() (Record, error) {
	if jr.format == FormatJSONL {
		return jr.nextJSON()
	}
	return jr.nextBinary()
}

// ReadAll drains the journal into a slice, stopping at clean EOF.
func (jr *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := jr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// nextJSON decodes one JSONL record line.
func (jr *Reader) nextJSON() (Record, error) {
	if jr.drained {
		return Record{}, io.EOF
	}
	line, err := jr.readLine()
	atEOF := errors.Is(err, io.EOF)
	if err != nil {
		if atEOF && len(bytes.TrimSpace(line)) == 0 {
			return Record{}, io.EOF
		}
		if !atEOF {
			return Record{}, fmt.Errorf("journal: reading JSONL record: %w", err)
		}
	}
	if len(bytes.TrimSpace(line)) == 0 {
		return Record{}, io.EOF
	}
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		// An unterminated final line that fails to parse is the JSONL
		// shape of a torn tail: the writer died mid-line.
		if atEOF && jr.tolerateTorn {
			return jr.tear(len(line))
		}
		return Record{}, fmt.Errorf("journal: decoding JSONL record: %w", err)
	}
	if !r.Kind.Valid() {
		if atEOF && jr.tolerateTorn {
			return jr.tear(len(line))
		}
		return Record{}, fmt.Errorf("journal: JSONL record with invalid kind %d", byte(r.Kind))
	}
	return r, nil
}

// tear records a torn tail of n bytes and latches clean EOF.
func (jr *Reader) tear(n int) (Record, error) {
	jr.torn += n
	jr.drained = true
	return Record{}, io.EOF
}

// readLine reads one newline-terminated line without the terminator,
// tolerating an unterminated final line.
func (jr *Reader) readLine() ([]byte, error) {
	line, err := jr.br.ReadBytes('\n')
	return bytes.TrimSuffix(line, []byte{'\n'}), err
}

// nextBinary decodes one length-prefixed binary record.
func (jr *Reader) nextBinary() (Record, error) {
	if jr.drained {
		return Record{}, io.EOF
	}
	n, lenBytes, err := jr.readUvarintCounted()
	if err != nil {
		if errors.Is(err, io.EOF) && lenBytes == 0 {
			return Record{}, io.EOF // clean end of stream
		}
		// A partial length prefix at EOF is a torn tail.
		if jr.tolerateTorn && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
			return jr.tear(lenBytes)
		}
		if errors.Is(err, io.EOF) {
			// Do not let ReadAll mistake a mid-varint EOF for a clean end.
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("journal: reading record length: %w", err)
	}
	if n > MaxRecordLen {
		return Record{}, fmt.Errorf("journal: record of %d bytes exceeds limit %d", n, MaxRecordLen)
	}
	payload := make([]byte, n)
	read, err := io.ReadFull(jr.br, payload)
	if err != nil {
		// A payload cut short by EOF is the binary shape of a torn tail:
		// the length prefix landed but the record body did not.
		if jr.tolerateTorn && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
			return jr.tear(lenBytes + read)
		}
		if errors.Is(err, io.EOF) {
			// A record cut at the payload start must not read as clean EOF.
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("journal: truncated record (%d bytes expected): %w", n, err)
	}
	return decodeBinary(payload)
}

// readUvarintCounted reads one unsigned varint, also reporting how many
// bytes it consumed so a torn tail can be sized precisely.
func (jr *Reader) readUvarintCounted() (uint64, int, error) {
	var v uint64
	for i := 0; ; i++ {
		b, err := jr.br.ReadByte()
		if err != nil {
			return 0, i, err
		}
		if i == binary.MaxVarintLen64 {
			return 0, i + 1, fmt.Errorf("journal: record length varint overflows")
		}
		if b < 0x80 {
			return v | uint64(b)<<(7*i), i + 1, nil
		}
		v |= uint64(b&0x7f) << (7 * i)
	}
}

// decodeBinary parses one binary record payload.
func decodeBinary(payload []byte) (Record, error) {
	c := cursor{b: payload}
	var r Record
	r.Kind = Kind(c.u8())
	if !r.Kind.Valid() {
		return Record{}, fmt.Errorf("journal: invalid record kind %d", byte(r.Kind))
	}
	r.Seq = c.uvarint()
	r.Time = c.f64()
	switch r.Kind {
	case KindRepStart:
		r.Rep = int(c.uvarint())
		r.Seed = c.uvarint()
		r.Stream = c.uvarint()
	case KindObserve:
		r.Value = c.f64()
	case KindDecision:
		decodeDecisionFields(&c, &r)
		decodeTriggerID(&c, &r)
	case KindReset, KindSimFired, KindSimCancelled:
		// no payload
	case KindRejuvenation:
		r.Killed = int(c.uvarint())
	case KindGCStart, KindGCEnd:
		r.HeapMB = c.f64()
	case KindSimScheduled:
		r.EventTime = c.f64()
	case KindFault:
		r.Class = c.str()
		r.Value = c.f64()
	case KindActStart:
		decodeTriggerID(&c, &r)
	case KindActAttempt:
		r.OK = c.u8() != 0
		r.Attempt = int(c.uvarint())
		r.Backoff = c.f64()
		r.Class = c.str()
		decodeTriggerID(&c, &r)
	case KindActGiveUp:
		r.Attempt = int(c.uvarint())
		r.Class = c.str()
		decodeTriggerID(&c, &r)
	case KindStreamOpen:
		r.Stream = c.uvarint()
		r.Class = c.str()
	case KindStreamClose:
		r.Stream = c.uvarint()
	case KindStreamObserve:
		r.Stream = c.uvarint()
		r.Value = c.f64()
	case KindStreamDecision:
		r.Stream = c.uvarint()
		decodeDecisionFields(&c, &r)
		decodeTriggerID(&c, &r)
	case KindRebaseline:
		r.BaseMean = c.f64()
		r.BaseStdDev = c.f64()
	case KindStreamRebaseline:
		r.Stream = c.uvarint()
		r.BaseMean = c.f64()
		r.BaseStdDev = c.f64()
	case KindSchedEnqueue:
		r.Stream = c.uvarint()
		r.Level = int(c.uvarint())
		r.Fill = int(c.uvarint())
		r.EventTime = c.f64()
		r.Value = c.f64()
		decodeTriggerID(&c, &r)
	case KindSchedDefer:
		r.Stream = c.uvarint()
		r.Class = c.str()
		r.Level = int(c.uvarint())
		r.Fill = int(c.uvarint())
		r.Attempt = int(c.uvarint())
		decodeTriggerID(&c, &r)
	case KindSchedCoalesce:
		r.Stream = c.uvarint()
		r.Class = c.str()
		r.Level = int(c.uvarint())
		r.Fill = int(c.uvarint())
		r.Attempt = int(c.uvarint())
		r.EventTime = c.f64()
		r.Value = c.f64()
		decodeTriggerID(&c, &r)
	case KindSchedStart:
		r.Stream = c.uvarint()
		r.Class = c.str()
		r.Value = c.f64()
		r.Backoff = c.f64()
		decodeTriggerID(&c, &r)
	case KindSchedComplete:
		r.Stream = c.uvarint()
		r.OK = c.u8() != 0
		decodeTriggerID(&c, &r)
	case KindSchedQuarantine:
		r.Stream = c.uvarint()
		r.Class = c.str()
		decodeTriggerID(&c, &r)
	case KindSchedReadmit:
		r.Stream = c.uvarint()
		decodeTriggerID(&c, &r)
	}
	if c.err != nil {
		return Record{}, fmt.Errorf("journal: %s record: %w", r.Kind, c.err)
	}
	if c.off != len(c.b) {
		return Record{}, fmt.Errorf("journal: %s record carries %d trailing bytes", r.Kind, len(c.b)-c.off)
	}
	return r, nil
}

// decodeTriggerID parses the optional trailing trigger-id field: it is
// present exactly when payload bytes remain after the kind's fixed
// fields, so journals written before trigger ids existed (and records
// with id 0, which the writer omits) decode unchanged with TriggerID 0.
func decodeTriggerID(c *cursor, r *Record) {
	if c.err != nil || c.off >= len(c.b) {
		return
	}
	r.TriggerID = c.uvarint()
}

// decodeDecisionFields parses the canonical decision payload written by
// appendDecisionFields, shared by KindDecision and KindStreamDecision.
func decodeDecisionFields(c *cursor, r *Record) {
	flags := c.u8()
	r.Evaluated = flags&flagEvaluated != 0
	r.Triggered = flags&flagTriggered != 0
	r.Suppressed = flags&flagSuppressed != 0
	r.SampleMean = c.f64()
	r.Target = c.f64()
	r.Level = int(c.uvarint())
	r.Fill = int(c.uvarint())
	r.SampleSize = int(c.uvarint())
	r.SampleFill = int(c.uvarint())
	r.Statistic = c.f64()
}

// cursor walks a record payload, latching the first decode error so the
// per-field reads stay linear.
type cursor struct {
	b   []byte
	off int
	err error
}

// u8 reads one byte.
func (c *cursor) u8() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.err = errTruncated
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

// uvarint reads one unsigned varint.
func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.err = errTruncated
		return 0
	}
	c.off += n
	return v
}

// f64 reads one little-endian IEEE-754 double.
func (c *cursor) f64() float64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = errTruncated
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(c.b[c.off:]))
	c.off += 8
	return v
}

// str reads one length-prefixed string, bounded by MaxClassLen.
func (c *cursor) str() string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > MaxClassLen {
		c.err = fmt.Errorf("journal: string of %d bytes exceeds limit %d", n, MaxClassLen)
		return ""
	}
	if c.off+int(n) > len(c.b) {
		c.err = errTruncated
		return ""
	}
	v := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return v
}

// errTruncated reports a payload shorter than its kind requires.
var errTruncated = errors.New("truncated payload")
