package journal

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"rejuv/internal/sched"
)

// This file extends deterministic replay to scheduler journals. The
// sched.Governor is a pure state machine whose inputs are all journaled:
// every request arrives as the group-leading admission record (enqueue,
// duplicate coalesce, or an explicit refusal defer, which carry the
// request's level/fill/deadline), completions, give-ups and readmissions
// arrive as their own records, and any other group-leading scheduler
// record marks a time-driven tick. ReplaySched re-derives the whole
// transition stream from those inputs through a fresh Governor and
// verifies it against the journal byte for byte, making scheduling
// decisions as auditable as detector decisions.

// IsSched reports whether the kind is a scheduler transition record.
func (k Kind) IsSched() bool { return k >= KindSchedEnqueue && k <= KindSchedReadmit }

// SchedRecord maps one governor transition onto its canonical journal
// record. It is shared by journaling callers (via Writer.Record) and
// the replay verifier, so both sides encode identical bytes.
func SchedRecord(tr sched.Transition) Record {
	r := Record{Time: tr.Time, Stream: uint64(tr.Replica), TriggerID: tr.TriggerID}
	switch tr.Op {
	case sched.OpEnqueue:
		r.Kind = KindSchedEnqueue
		r.Level, r.Fill = tr.Level, tr.Fill
		r.EventTime = tr.Deadline
		r.Value = tr.Urgency
	case sched.OpDefer:
		r.Kind = KindSchedDefer
		r.Class = tr.Reason
		r.Level, r.Fill = tr.Level, tr.Fill
		r.Attempt = tr.Count
	case sched.OpCoalesce:
		r.Kind = KindSchedCoalesce
		r.Class = tr.Reason
		r.Level, r.Fill = tr.Level, tr.Fill
		r.Attempt = tr.Count
		r.EventTime = tr.Deadline
		r.Value = tr.Urgency
	case sched.OpStart:
		r.Kind = KindSchedStart
		r.Class = tr.Tier.Name
		r.Value = tr.Tier.Rho
		r.Backoff = tr.Pause
	case sched.OpComplete:
		r.Kind = KindSchedComplete
		r.OK = tr.OK
	case sched.OpQuarantine:
		r.Kind = KindSchedQuarantine
		r.Class = tr.Reason
	case sched.OpReadmit:
		r.Kind = KindSchedReadmit
	}
	return r
}

// SchedReplayReport summarizes one scheduler replay verification pass.
type SchedReplayReport struct {
	// Records counts scheduler records verified.
	Records int
	// Enqueues, Defers, Coalesces, Starts, Completes, Quarantines and
	// Readmits count them by kind.
	Enqueues, Defers, Coalesces, Starts, Completes, Quarantines, Readmits int
	// MaxDownSeen is the per-group high-water mark of simultaneously
	// down replicas in the replayed governor — the replay-side proof of
	// the capacity-budget law.
	MaxDownSeen []int
	// Mismatch describes the first divergence, nil when the replayed
	// transition stream is byte-identical to the journaled one.
	Mismatch *Mismatch
}

// Identical reports whether the replayed scheduler transition stream
// matched the journaled one byte for byte.
func (r SchedReplayReport) Identical() bool { return r.Mismatch == nil }

// encodeSchedRecord renders the full canonical byte form of a scheduler
// record (kind, seq, time, payload), the unit of replay comparison.
func encodeSchedRecord(r *Record) []byte {
	b := []byte{byte(r.Kind)}
	b = binary.AppendUvarint(b, r.Seq)
	b = appendF64(b, r.Time)
	return appendPayload(b, r)
}

// ReplaySched feeds the journaled scheduler inputs through a fresh
// Governor built from cfg — which must be the configuration of the
// recording run — and verifies every scheduler record against the
// re-derived transition stream byte for byte. Non-scheduler records
// (observations, decisions, rejuvenations, GC events) are ignored, so
// a cluster journal carrying everything interleaved verifies as-is.
//
// Replay stops at the first divergence and reports it; a nil error with
// report.Identical() true is the determinism proof for the scheduling
// layer.
func ReplaySched(jr *Reader, cfg sched.Config) (SchedReplayReport, error) {
	var report SchedReplayReport
	g, err := sched.New(cfg)
	if err != nil {
		return report, fmt.Errorf("journal: sched replay governor: %w", err)
	}
	// pending holds the re-derived records of the current transition
	// group awaiting their journaled counterparts.
	var pending []Record
	for {
		rec, err := jr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return report, err
		}
		if !rec.Kind.IsSched() {
			continue
		}
		report.Records++
		report.count(rec.Kind)
		if len(pending) == 0 {
			out := schedInput(g, rec)
			if len(out) == 0 {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("replayed governor produced no transition for %s record", rec.Kind))
				return report, nil
			}
			pending = pending[:0]
			for _, tr := range out {
				pending = append(pending, SchedRecord(tr))
			}
		}
		exp := pending[0]
		pending = pending[1:]
		exp.Seq = rec.Seq
		recBytes := encodeSchedRecord(&rec)
		expBytes := encodeSchedRecord(&exp)
		if string(recBytes) != string(expBytes) {
			report.Mismatch = &Mismatch{
				Seq:      rec.Seq,
				Time:     rec.Time,
				Reason:   fmt.Sprintf("scheduler transition differs (recorded %s, replayed %s)", rec.Kind, exp.Kind),
				Recorded: hex.EncodeToString(recBytes),
				Replayed: hex.EncodeToString(expBytes),
			}
			return report, nil
		}
	}
	if len(pending) > 0 {
		report.Mismatch = &Mismatch{Reason: fmt.Sprintf("%d replayed scheduler transitions at end of journal have no recorded counterpart (next: %s)", len(pending), pending[0].Kind)}
		return report, nil
	}
	report.MaxDownSeen = make([]int, g.Groups())
	for grp := range report.MaxDownSeen {
		report.MaxDownSeen[grp] = g.MaxDownSeen(grp)
	}
	return report, nil
}

// count tallies one verified record by kind.
func (r *SchedReplayReport) count(k Kind) {
	switch k {
	case KindSchedEnqueue:
		r.Enqueues++
	case KindSchedDefer:
		r.Defers++
	case KindSchedCoalesce:
		r.Coalesces++
	case KindSchedStart:
		r.Starts++
	case KindSchedComplete:
		r.Completes++
	case KindSchedQuarantine:
		r.Quarantines++
	case KindSchedReadmit:
		r.Readmits++
	}
}

// schedInput derives the governor input a group-leading record implies
// and applies it, returning the re-derived transition group.
//
// The classification mirrors the governor's emission contract: a
// request is always announced by its admission decision (enqueue,
// duplicate coalesce, or a saturated/in-flight/quarantined refusal
// defer — all carrying the request's replica, level, fill and, for
// admissions, deadline); completions, quarantines and readmissions
// lead their own groups; any other group-leading record (a start, a
// window defer, a starvation escalation) can only have been produced
// by the passage of time, i.e. a tick.
func schedInput(g *sched.Governor, rec Record) []sched.Transition {
	replica := int(rec.Stream)
	switch rec.Kind {
	case KindSchedEnqueue:
		return g.Request(rec.Time, replica, rec.Level, rec.Fill, rec.EventTime, rec.TriggerID)
	case KindSchedCoalesce:
		if rec.Class == sched.ReasonDuplicate {
			return g.Request(rec.Time, replica, rec.Level, rec.Fill, rec.EventTime, rec.TriggerID)
		}
		return g.Tick(rec.Time)
	case KindSchedDefer:
		switch rec.Class {
		case sched.ReasonSaturated, sched.ReasonInFlight, sched.ReasonQuarantined:
			return g.Request(rec.Time, replica, rec.Level, rec.Fill, 0, rec.TriggerID)
		}
		return g.Tick(rec.Time)
	case KindSchedStart:
		return g.Tick(rec.Time)
	case KindSchedComplete:
		return g.Complete(rec.Time, replica, rec.OK)
	case KindSchedQuarantine:
		return g.GiveUp(rec.Time, replica, rec.Class)
	case KindSchedReadmit:
		return g.Readmit(rec.Time, replica)
	}
	return nil
}
