package journal

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"rejuv/internal/core"
)

// sampleMeta is the header used across the codec tests.
var sampleMeta = Meta{
	CreatedBy: "journal_test",
	Detector:  "SRAA (n=2, K=5, D=3)",
	Spec:      `{"Algorithm":"SRAA","N":2,"K":5,"D":3}`,
	Seed:      42,
	Notes:     "load=9",
}

// writeSample emits one record of every kind through the typed API.
func writeSample(jw *Writer) {
	jw.RepStart(0, 1, 42, 7)
	jw.SimScheduled(0, 1.5)
	jw.SimFired(1.5)
	jw.Observe(1.5, 3.25)
	jw.Decision(1.5,
		core.Decision{Evaluated: true, Triggered: true, SampleMean: 7.5, Target: 5, Level: 2, Fill: 0},
		core.Internals{SampleSize: 2, SampleFill: 1, Statistic: 0.25},
		true, 0xDEC1)
	jw.Reset(1.5)
	jw.Rejuvenation(1.5, 17)
	jw.GCStart(2.25, 99.5)
	jw.GCEnd(62.25, 3072)
	jw.SimCancelled(62.25)
	// The JSONL codec cannot carry non-finite values, so the shared
	// sample uses a finite one; binary non-finite round-trips are pinned
	// by TestSpecialFloatsRoundTrip.
	jw.Fault(63, "nan", 12.5)
	jw.ActStart(64, 0xDEC1)
	jw.ActAttempt(64, 1, false, 2.5, "restart rpc timed out", 0xDEC1)
	jw.ActAttempt(66.5, 2, true, 0, "", 0)
	jw.ActGiveUp(66.5, 2, "gave up anyway", 0xDEC1)
	jw.StreamOpen(70, 9001, "web-sraa")
	jw.StreamObserve(70.5, 9001, 4.75)
	jw.StreamDecision(70.5, 9001,
		core.Decision{Evaluated: true, SampleMean: 4.5, Target: 6, Level: 1, Fill: 2},
		core.Internals{SampleSize: 2, SampleFill: 0},
		false, 0)
	jw.StreamClose(71, 9001)
	jw.Rebaseline(72, 9.25, 2.5)
	jw.StreamRebaseline(72.5, 9002, 9.25, 2.5)
	jw.SchedEnqueue(80, 3, 4, 2, 95.5, 15, 0xDEC1)
	jw.SchedDefer(80.5, 3, "budget", 4, 2, 1, 0xDEC1)
	jw.SchedCoalesce(81, 3, "duplicate", 5, 2, 2, 96, 18.25, 0xDEC1)
	jw.SchedStart(82, 3, "medium", 0.5, 30, 0xDEC1)
	jw.SchedComplete(112, 3, true, 0xDEC1)
	jw.SchedQuarantine(113, 4, "restart rpc unreachable", 0xBEEF)
	jw.SchedReadmit(120, 4, 0)
}

// wantSample is the decoded form of writeSample, in order.
func wantSample() []Record {
	return []Record{
		{Kind: KindRepStart, Seq: 0, Rep: 1, Seed: 42, Stream: 7},
		{Kind: KindSimScheduled, Seq: 1, EventTime: 1.5},
		{Kind: KindSimFired, Seq: 2, Time: 1.5},
		{Kind: KindObserve, Seq: 3, Time: 1.5, Value: 3.25},
		{Kind: KindDecision, Seq: 4, Time: 1.5, Evaluated: true, Triggered: true, Suppressed: true,
			SampleMean: 7.5, Target: 5, Level: 2, Fill: 0, SampleSize: 2, SampleFill: 1, Statistic: 0.25,
			TriggerID: 0xDEC1},
		{Kind: KindReset, Seq: 5, Time: 1.5},
		{Kind: KindRejuvenation, Seq: 6, Time: 1.5, Killed: 17},
		{Kind: KindGCStart, Seq: 7, Time: 2.25, HeapMB: 99.5},
		{Kind: KindGCEnd, Seq: 8, Time: 62.25, HeapMB: 3072},
		{Kind: KindSimCancelled, Seq: 9, Time: 62.25},
		{Kind: KindFault, Seq: 10, Time: 63, Class: "nan", Value: 12.5},
		{Kind: KindActStart, Seq: 11, Time: 64, TriggerID: 0xDEC1},
		{Kind: KindActAttempt, Seq: 12, Time: 64, Attempt: 1, OK: false, Backoff: 2.5, Class: "restart rpc timed out", TriggerID: 0xDEC1},
		{Kind: KindActAttempt, Seq: 13, Time: 66.5, Attempt: 2, OK: true},
		{Kind: KindActGiveUp, Seq: 14, Time: 66.5, Attempt: 2, Class: "gave up anyway", TriggerID: 0xDEC1},
		{Kind: KindStreamOpen, Seq: 15, Time: 70, Stream: 9001, Class: "web-sraa"},
		{Kind: KindStreamObserve, Seq: 16, Time: 70.5, Stream: 9001, Value: 4.75},
		{Kind: KindStreamDecision, Seq: 17, Time: 70.5, Stream: 9001, Evaluated: true,
			SampleMean: 4.5, Target: 6, Level: 1, Fill: 2, SampleSize: 2},
		{Kind: KindStreamClose, Seq: 18, Time: 71, Stream: 9001},
		{Kind: KindRebaseline, Seq: 19, Time: 72, BaseMean: 9.25, BaseStdDev: 2.5},
		{Kind: KindStreamRebaseline, Seq: 20, Time: 72.5, Stream: 9002, BaseMean: 9.25, BaseStdDev: 2.5},
		{Kind: KindSchedEnqueue, Seq: 21, Time: 80, Stream: 3, Level: 4, Fill: 2,
			EventTime: 95.5, Value: 15, TriggerID: 0xDEC1},
		{Kind: KindSchedDefer, Seq: 22, Time: 80.5, Stream: 3, Class: "budget",
			Level: 4, Fill: 2, Attempt: 1, TriggerID: 0xDEC1},
		{Kind: KindSchedCoalesce, Seq: 23, Time: 81, Stream: 3, Class: "duplicate",
			Level: 5, Fill: 2, Attempt: 2, EventTime: 96, Value: 18.25, TriggerID: 0xDEC1},
		{Kind: KindSchedStart, Seq: 24, Time: 82, Stream: 3, Class: "medium",
			Value: 0.5, Backoff: 30, TriggerID: 0xDEC1},
		{Kind: KindSchedComplete, Seq: 25, Time: 112, Stream: 3, OK: true, TriggerID: 0xDEC1},
		{Kind: KindSchedQuarantine, Seq: 26, Time: 113, Stream: 4,
			Class: "restart rpc unreachable", TriggerID: 0xBEEF},
		{Kind: KindSchedReadmit, Seq: 27, Time: 120, Stream: 4},
	}
}

func TestRoundTripBinary(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, sampleMeta)
	writeSample(jw)
	if err := jw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	roundTrip(t, &buf, FormatBinary)
}

func TestRoundTripJSONL(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJSONWriter(&buf, sampleMeta)
	writeSample(jw)
	if err := jw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	roundTrip(t, &buf, FormatJSONL)
}

// roundTrip decodes buf and compares header and records against the
// sample.
func roundTrip(t *testing.T, buf *bytes.Buffer, format Format) {
	t.Helper()
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if jr.Format() != format {
		t.Errorf("detected format %v, want %v", jr.Format(), format)
	}
	if got := jr.Meta(); got != sampleMeta {
		t.Errorf("meta round-trip:\n got %+v\nwant %+v", got, sampleMeta)
	}
	got, err := jr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := wantSample()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestWriterRecordMatchesTypedEmitters(t *testing.T) {
	var typed, generic bytes.Buffer
	jw := NewWriter(&typed, sampleMeta)
	writeSample(jw)
	if err := jw.Err(); err != nil {
		t.Fatalf("typed writer: %v", err)
	}
	gw := NewWriter(&generic, sampleMeta)
	for _, r := range wantSample() {
		gw.Record(r)
	}
	if err := gw.Err(); err != nil {
		t.Fatalf("generic writer: %v", err)
	}
	if !bytes.Equal(typed.Bytes(), generic.Bytes()) {
		t.Errorf("Record() encoding differs from typed emitters:\n typed  %x\n record %x",
			typed.Bytes(), generic.Bytes())
	}
}

func TestWriterCounts(t *testing.T) {
	jw := NewWriter(io.Discard, Meta{})
	writeSample(jw)
	if got := jw.Seq(); got != 28 {
		t.Errorf("seq after 28 records = %d", got)
	}
	for _, tc := range []struct {
		kind Kind
		want uint64
	}{{KindObserve, 1}, {KindDecision, 1}, {KindSimFired, 1}, {Kind(0), 0}} {
		if got := jw.Count(tc.kind); got != tc.want {
			t.Errorf("Count(%v) = %d, want %d", tc.kind, got, tc.want)
		}
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":             nil,
		"bad magic version": append(append([]byte{}, magic[:]...), 99),
		"not json":          []byte("not-a-journal\n{}"),
	}
	for name, data := range cases {
		if _, err := NewReader(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: NewReader accepted invalid input", name)
		}
	}
}

func TestReaderRejectsTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	jw.Observe(1, 2)
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	jr, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := jr.Next(); err == nil {
		t.Error("Next accepted a truncated record")
	}
}

func TestReaderRejectsOversizedRecord(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	// A length prefix claiming MaxRecordLen+1 bytes must be rejected
	// before any allocation attempt.
	buf.Write([]byte{0x81, 0x80, 0xc0, 0x00}) // uvarint > MaxRecordLen
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := jr.Next(); err == nil {
		t.Error("Next accepted an oversized length prefix")
	}
}

func TestStickyWriterError(t *testing.T) {
	jw := NewWriter(&failAfter{n: 1}, Meta{})
	jw.Observe(1, 2) // header already consumed the budget; this must latch
	if jw.Err() == nil {
		t.Fatal("writer did not latch the write error")
	}
	before := jw.Seq()
	jw.Observe(2, 3)
	if jw.Seq() != before {
		t.Error("writer kept assigning sequence numbers after the error latched")
	}
}

// failAfter fails every Write after the first n calls.
type failAfter struct{ n int }

// Write consumes the budget, then fails.
func (f *failAfter) Write(p []byte) (int, error) {
	if f.n > 0 {
		f.n--
		return len(p), nil
	}
	return 0, io.ErrClosedPipe
}

func TestSpecialFloatsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	jw.Observe(0, math.Inf(1))
	jw.Observe(0, -0.0)
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(recs[0].Value, 1) {
		t.Errorf("+Inf did not round-trip: %v", recs[0].Value)
	}
	if math.Float64bits(recs[1].Value) != math.Float64bits(-0.0) {
		t.Errorf("-0.0 did not round-trip bit-exactly: %v", recs[1].Value)
	}
}

// BenchmarkWriterObserve pins the zero-allocation contract of the
// binary encode path: journaling must never perturb what it measures.
func BenchmarkWriterObserve(b *testing.B) {
	jw := NewWriter(io.Discard, Meta{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jw.Observe(float64(i), 5.0)
	}
	if err := jw.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWriterDecision times the fattest record on the hot path.
func BenchmarkWriterDecision(b *testing.B) {
	jw := NewWriter(io.Discard, Meta{})
	d := core.Decision{Evaluated: true, SampleMean: 7.5, Target: 10, Level: 1, Fill: 2}
	in := core.Internals{SampleSize: 2, SampleFill: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jw.Decision(float64(i), d, in, false, 0)
	}
	if err := jw.Err(); err != nil {
		b.Fatal(err)
	}
}

func TestWriterObserveDoesNotAllocate(t *testing.T) {
	jw := NewWriter(io.Discard, Meta{})
	jw.Observe(0, 1) // warm the scratch buffer
	allocs := testing.AllocsPerRun(1000, func() {
		jw.Observe(1, 2)
	})
	if allocs != 0 {
		t.Errorf("binary Observe allocates %.1f objects per record, want 0", allocs)
	}
}

func TestWriterDecisionDoesNotAllocate(t *testing.T) {
	jw := NewWriter(io.Discard, Meta{})
	d := core.Decision{Evaluated: true, SampleMean: 7.5, Target: 10, Level: 1, Fill: 2}
	in := core.Internals{SampleSize: 2}
	jw.Decision(0, d, in, false, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		jw.Decision(1, d, in, false, 0)
	})
	if allocs != 0 {
		t.Errorf("binary Decision allocates %.1f objects per record, want 0", allocs)
	}
}
