package journal

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime/pprof"

	"rejuv/internal/core"
)

// sameF64Bits compares two floats bitwise, the equality the replay
// verifier uses everywhere: NaN payloads and signed zeros must survive
// the journal round trip exactly.
func sameF64Bits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// This file implements deterministic replay: feeding the journaled
// observation stream through a freshly constructed detector must
// reproduce the journaled decision stream byte for byte. Because every
// detector is a deterministic state machine (core package contract),
// any divergence means the journal, the detector construction, or the
// platform broke the determinism guarantee — which makes Replay the
// strongest determinism test in the repository.

// ReplayReport summarizes one replay verification pass.
type ReplayReport struct {
	// Reps counts replications encountered (KindRepStart records; one
	// implicit replication when a journal has none).
	Reps int
	// Observations counts observation records fed to the detector.
	Observations int
	// Decisions counts decision records compared.
	Decisions int
	// Triggers counts recorded decisions that triggered.
	Triggers int
	// Resets counts externally initiated detector resets applied.
	Resets int
	// Rebaselines counts workload-shift rebaseline records verified.
	Rebaselines int
	// Mismatch describes the first divergence, nil when the streams are
	// byte-identical.
	Mismatch *Mismatch
}

// Identical reports whether the replayed decision stream matched the
// recorded one byte for byte.
func (r ReplayReport) Identical() bool { return r.Mismatch == nil }

// Mismatch pinpoints the first divergence between the recorded and
// replayed decision streams.
type Mismatch struct {
	// Seq is the sequence number of the recorded record at the
	// divergence point.
	Seq uint64
	// Time is its timestamp.
	Time float64
	// Reason classifies the divergence.
	Reason string
	// Recorded and Replayed are the hex encodings of the canonical
	// decision payloads that differed (empty for structural mismatches
	// such as a missing decision record).
	Recorded, Replayed string
}

// Error renders the mismatch as a one-line diagnosis.
func (m *Mismatch) Error() string {
	s := fmt.Sprintf("journal: replay diverged at seq %d (t=%.6g): %s", m.Seq, m.Time, m.Reason)
	if m.Recorded != "" || m.Replayed != "" {
		s += fmt.Sprintf(" (recorded %s, replayed %s)", m.Recorded, m.Replayed)
	}
	return s
}

// Replay feeds every journaled observation through detectors built by
// factory and verifies the resulting decision stream against the
// journaled one. factory is invoked once per replication (each
// KindRepStart record, plus once up front for journals without
// replication markers), mirroring how the recording run constructed a
// fresh detector per replication.
//
// The comparison is byte-level: both sides are encoded with the
// canonical binary decision layout (appendDecisionFields) and must
// match exactly. The Suppressed flag is copied from the recorded
// record before encoding, because suppression is decided by the
// cooldown layer above the detector and is not reproducible from the
// observation stream alone; every detector-owned field must match.
//
// Replay stops at the first divergence and reports it; a nil error with
// report.Identical() true is the determinism proof.
func Replay(jr *Reader, factory func() (core.Detector, error)) (ReplayReport, error) {
	var report ReplayReport
	var replayErr error
	// Label the replay loop so CPU profiles attribute detector
	// evaluation time to this phase.
	pprof.Do(context.Background(), pprof.Labels("rejuv_phase", "detector-replay"), func(context.Context) {
		report, replayErr = replay(jr, factory)
	})
	return report, replayErr
}

// replay is the unlabeled body of Replay.
func replay(jr *Reader, factory func() (core.Detector, error)) (ReplayReport, error) {
	var report ReplayReport
	det, err := factory()
	if err != nil {
		return report, fmt.Errorf("journal: replay factory: %w", err)
	}
	if det == nil {
		return report, fmt.Errorf("journal: replay factory returned a nil detector")
	}
	report.Reps = 1
	sawRepStart := false

	// pending holds the replayed decision awaiting its recorded
	// counterpart; decision records always follow their observation in
	// writer order.
	var pending *Record

	for {
		rec, err := jr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return report, err
		}
		switch rec.Kind {
		case KindRepStart:
			if pending != nil {
				report.Mismatch = structuralMismatch(rec, "replication started while a replayed decision awaited its recorded counterpart")
				return report, nil
			}
			if sawRepStart || report.Observations > 0 || report.Decisions > 0 {
				report.Reps++
			}
			sawRepStart = true
			if det, err = factory(); err != nil {
				return report, fmt.Errorf("journal: replay factory (rep %d): %w", rec.Rep, err)
			}
		case KindObserve:
			if pending != nil {
				report.Mismatch = structuralMismatch(rec, "observation arrived while a replayed decision awaited its recorded counterpart")
				return report, nil
			}
			report.Observations++
			d := det.Observe(rec.Value)
			if d.Evaluated || d.Triggered {
				var in core.Internals
				if instr, ok := det.(core.Instrumented); ok {
					in = instr.Internals()
				}
				r := DecisionRecord(rec.Time, d, in, false)
				pending = &r
			}
		case KindDecision:
			report.Decisions++
			if rec.Triggered {
				report.Triggers++
			}
			if pending == nil {
				report.Mismatch = structuralMismatch(rec, "recorded decision has no replayed counterpart (replayed detector did not evaluate)")
				return report, nil
			}
			// Suppression belongs to the cooldown layer, not the
			// detector; carry it over so the byte comparison covers
			// exactly the detector-owned fields.
			pending.Suppressed = rec.Suppressed
			pending.Time = rec.Time
			recBytes := appendDecisionFields(nil, &rec)
			repBytes := appendDecisionFields(nil, pending)
			if string(recBytes) != string(repBytes) {
				report.Mismatch = &Mismatch{
					Seq:      rec.Seq,
					Time:     rec.Time,
					Reason:   "decision payloads differ",
					Recorded: hex.EncodeToString(recBytes),
					Replayed: hex.EncodeToString(repBytes),
				}
				return report, nil
			}
			pending = nil
		case KindReset:
			report.Resets++
			det.Reset()
		case KindRebaseline:
			report.Rebaselines++
			if m := verifyRebaseline(rec, det); m != nil {
				report.Mismatch = m
				return report, nil
			}
		}
	}
	if pending != nil {
		report.Mismatch = &Mismatch{Reason: "replayed decision at end of journal has no recorded counterpart"}
	}
	return report, nil
}

// structuralMismatch builds a mismatch for stream-shape divergences.
func structuralMismatch(rec Record, reason string) *Mismatch {
	return &Mismatch{Seq: rec.Seq, Time: rec.Time, Reason: reason}
}

// verifyRebaseline checks a recorded rebaseline event against the
// replayed detector: it must re-estimate its baseline online
// (core.Rebaseliner) and its committed baseline must match the recorded
// one bitwise — the shift layer is deterministic, so any drift in the
// re-estimated moments is a determinism break.
func verifyRebaseline(rec Record, det core.Detector) *Mismatch {
	rb, ok := det.(core.Rebaseliner)
	if !ok {
		return structuralMismatch(rec, "recorded rebaseline but the replay detector does not re-estimate its baseline")
	}
	got := rb.CurrentBaseline()
	if !sameF64Bits(got.Mean, rec.BaseMean) || !sameF64Bits(got.StdDev, rec.BaseStdDev) {
		return &Mismatch{
			Seq:      rec.Seq,
			Time:     rec.Time,
			Reason:   "rebaselined baselines differ",
			Recorded: fmt.Sprintf("(%v, %v)", rec.BaseMean, rec.BaseStdDev),
			Replayed: fmt.Sprintf("(%v, %v)", got.Mean, got.StdDev),
		}
	}
	return nil
}
