package journal

import (
	"bytes"
	"strings"
	"testing"

	"rejuv/internal/sched"
)

// schedScriptConfig is the governor configuration shared by the
// recording and replaying sides of the scheduler replay tests.
func schedScriptConfig() sched.Config {
	return sched.Config{
		Replicas:      4,
		MaxDown:       1,
		QueueDepth:    2,
		CapacityFloor: 0.5,
		MaxDefer:      50,
		FullPause:     40,
	}
}

// runSchedScript drives a governor through every input class — admission,
// coalescing, refusal, saturation, deadline windows, the starvation
// latch, failed completions, quarantine and readmission — journaling
// each transition, interleaved with non-scheduler records the replay
// must skip.
func runSchedScript(t *testing.T, jw *Writer) {
	t.Helper()
	g, err := sched.New(schedScriptConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	emit := func(trs []sched.Transition) {
		for _, tr := range trs {
			jw.Record(SchedRecord(tr))
		}
	}
	jw.Observe(0, 1.5) // non-sched noise the replay skips
	emit(g.Request(0, 0, 5, 0, 0, 101))
	jw.GCStart(0.5, 12)
	emit(g.Request(1, 1, 2, 1, 20, 102)) // queued behind budget, deadline 20
	emit(g.Request(2, 1, 3, 0, 25, 103)) // coalesces into the entry
	emit(g.Request(3, 0, 5, 0, 0, 104))  // refused: in-flight
	emit(g.Request(4, 2, 1, 0, 0, 105))  // queue now full (depth 2)
	emit(g.Request(5, 3, 4, 2, 0, 106))  // refused: saturated, escalates oldest
	emit(g.Complete(10, 0, false))       // failed action requeues replica 0
	jw.Observe(10.5, 2.25)
	emit(g.Tick(25)) // deadline horizon expired
	emit(g.Complete(30, 1, true))
	emit(g.GiveUp(31, 2, "restart rpc unreachable"))
	emit(g.Request(32, 2, 5, 0, 0, 107))   // refused: quarantined
	emit(g.Request(33, 3, 1, 0, 200, 108)) // long deadline horizon
	emit(g.Complete(70, 0, true))          // frees budget; replica 3 window-deferred
	emit(g.Tick(85))                       // past the max-defer latch: escalates and starts
	emit(g.Complete(95, 3, true))
	emit(g.Readmit(100, 2))
	if err := jw.Err(); err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestReplaySchedIdentical(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{CreatedBy: "sched_test"})
	runSchedScript(t, jw)

	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rep, err := ReplaySched(jr, schedScriptConfig())
	if err != nil {
		t.Fatalf("ReplaySched: %v", err)
	}
	if !rep.Identical() {
		t.Fatalf("replay mismatch: %+v", rep.Mismatch)
	}
	if rep.Records == 0 || rep.Records != rep.Enqueues+rep.Defers+rep.Coalesces+rep.Starts+rep.Completes+rep.Quarantines+rep.Readmits {
		t.Errorf("census does not add up: %+v", rep)
	}
	if rep.Enqueues < 4 || rep.Starts < 3 || rep.Completes != 4 || rep.Quarantines != 1 || rep.Readmits != 1 {
		t.Errorf("unexpected census: %+v", rep)
	}
	if len(rep.MaxDownSeen) != 1 || rep.MaxDownSeen[0] != 1 {
		t.Errorf("MaxDownSeen = %v, want [1]: the replayed governor proves the budget", rep.MaxDownSeen)
	}
}

func TestReplaySchedDetectsTampering(t *testing.T) {
	// Journal the script, then re-journal it with one start's urgency
	// nudged: the replay must locate the divergence.
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	runSchedScript(t, jw)
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	var tampered bytes.Buffer
	tw := NewWriter(&tampered, Meta{})
	done := false
	for _, r := range recs {
		if !done && r.Kind == KindSchedStart {
			r.Value += 0.125 // pretend a different tier rho was dispatched
			done = true
		}
		tw.Record(r)
	}
	tr, err := NewReader(bytes.NewReader(tampered.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rep, err := ReplaySched(tr, schedScriptConfig())
	if err != nil {
		t.Fatalf("ReplaySched: %v", err)
	}
	if rep.Identical() {
		t.Fatal("replay accepted a tampered start record")
	}
	if !strings.Contains(rep.Mismatch.Reason, "differs") {
		t.Errorf("mismatch reason %q", rep.Mismatch.Reason)
	}
}

func TestReplaySchedDetectsWrongConfig(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	runSchedScript(t, jw)
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	cfg := schedScriptConfig()
	cfg.MaxDown = 2 // replaying under a looser budget diverges
	rep, err := ReplaySched(jr, cfg)
	if err != nil {
		t.Fatalf("ReplaySched: %v", err)
	}
	if rep.Identical() {
		t.Fatal("replay under a different budget reported identical")
	}
}

func TestSchedRecordKinds(t *testing.T) {
	for k := Kind(1); k <= maxKind; k++ {
		want := k >= KindSchedEnqueue && k <= KindSchedReadmit
		if k.IsSched() != want {
			t.Errorf("IsSched(%v) = %v", k, k.IsSched())
		}
	}
}
