package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"rejuv/internal/core"
)

// Writer appends records to an underlying io.Writer in one of the two
// codecs. The binary encode path performs no allocations per record (a
// reused scratch buffer plus at most two Write calls), so journaling can
// be left on in benchmarked paths. Errors are sticky: the first failed
// write latches into Err and subsequent records are dropped, because a
// flight recorder must never turn an I/O failure into a simulation
// failure.
//
// Writers are not safe for concurrent use; the Monitor serializes its
// records under the monitor lock, and the simulators are single-
// threaded by construction.
type Writer struct {
	w      io.Writer
	format Format
	seq    uint64
	err    error

	buf    []byte                      // reused binary payload scratch
	lenBuf [binary.MaxVarintLen64]byte // reused length-prefix scratch
	counts [maxKind + 1]uint64         // records written per kind
	enc    *json.Encoder               // JSONL codec only
}

// NewWriter returns a binary-codec writer and immediately writes the
// header (magic, version, meta). The caller owns w and any buffering:
// wrap files in a bufio.Writer and flush it after the run.
func NewWriter(w io.Writer, meta Meta) *Writer {
	jw := &Writer{w: w, format: FormatBinary, buf: make([]byte, 0, 128)}
	jw.writeHeader(meta)
	return jw
}

// NewJSONWriter returns a JSON-lines-codec writer (the debug format) and
// immediately writes the meta header line.
func NewJSONWriter(w io.Writer, meta Meta) *Writer {
	jw := &Writer{w: w, format: FormatJSONL, enc: json.NewEncoder(w)}
	jw.err = jw.enc.Encode(meta)
	return jw
}

// writeHeader emits the binary header: magic, version byte, uvarint
// meta length, meta JSON.
func (jw *Writer) writeHeader(meta Meta) {
	data, err := json.Marshal(meta)
	if err != nil {
		jw.err = fmt.Errorf("journal: encoding meta: %w", err)
		return
	}
	b := jw.buf[:0]
	b = append(b, magic[:]...)
	b = append(b, Version)
	b = binary.AppendUvarint(b, uint64(len(data)))
	b = append(b, data...)
	jw.write(b)
	jw.buf = b[:0]
}

// Err returns the first write or encoding error, or nil.
func (jw *Writer) Err() error { return jw.err }

// Seq returns the sequence number the next record will carry.
func (jw *Writer) Seq() uint64 { return jw.seq }

// Count returns how many records of the given kind have been written.
func (jw *Writer) Count(k Kind) uint64 {
	if !k.Valid() {
		return 0
	}
	return jw.counts[k]
}

// Record appends one fully populated record. The record's Seq is
// overwritten with the writer's running sequence number. The typed
// emitters below are the preferred interface; Record exists so analysis
// tooling can rewrite journals.
func (jw *Writer) Record(r Record) {
	if jw.err != nil || !r.Kind.Valid() {
		return
	}
	r.Seq = jw.nextSeq(r.Kind)
	if jw.jsonl(r) {
		return
	}
	b := jw.begin(r.Kind, r.Seq, r.Time)
	b = appendPayload(b, &r)
	jw.finish(b)
}

// RepStart marks the beginning of replication rep with its seed/stream.
func (jw *Writer) RepStart(t float64, rep int, seed, stream uint64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindRepStart)
	if jw.jsonl(Record{Kind: KindRepStart, Seq: seq, Time: t, Rep: rep, Seed: seed, Stream: stream}) {
		return
	}
	b := jw.begin(KindRepStart, seq, t)
	b = binary.AppendUvarint(b, uint64(rep))
	b = binary.AppendUvarint(b, seed)
	b = binary.AppendUvarint(b, stream)
	jw.finish(b)
}

// Observe records one observation of the monitored metric. It sits on
// the monitor's per-observation path and must stay allocation-free on
// the binary codec.
//
//lint:hotpath
func (jw *Writer) Observe(t, value float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindObserve)
	if jw.jsonl(Record{Kind: KindObserve, Seq: seq, Time: t, Value: value}) {
		return
	}
	b := jw.begin(KindObserve, seq, t)
	b = appendF64(b, value)
	jw.finish(b)
}

// Decision records one evaluated detector decision together with the
// internals snapshot taken immediately after the step. triggerID is the
// deterministic trigger identity minted for a triggering decision
// (core.TriggerID); pass 0 for non-triggering decisions. Like Observe
// it is on the monitor's per-observation path.
//
//lint:hotpath
func (jw *Writer) Decision(t float64, d core.Decision, in core.Internals, suppressed bool, triggerID uint64) {
	if jw.err != nil {
		return
	}
	r := DecisionRecord(t, d, in, suppressed)
	r.TriggerID = triggerID
	r.Seq = jw.nextSeq(KindDecision)
	if jw.jsonl(r) {
		return
	}
	b := jw.begin(KindDecision, r.Seq, t)
	b = appendDecisionFields(b, &r)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// Reset records an externally initiated detector reset.
func (jw *Writer) Reset(t float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindReset)
	if jw.jsonl(Record{Kind: KindReset, Seq: seq, Time: t}) {
		return
	}
	jw.finish(jw.begin(KindReset, seq, t))
}

// Rejuvenation records the control action: the system was rejuvenated,
// killing the given number of in-flight transactions.
func (jw *Writer) Rejuvenation(t float64, killed int) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindRejuvenation)
	if jw.jsonl(Record{Kind: KindRejuvenation, Seq: seq, Time: t, Killed: killed}) {
		return
	}
	b := jw.begin(KindRejuvenation, seq, t)
	b = binary.AppendUvarint(b, uint64(killed))
	jw.finish(b)
}

// GCStart records the onset of a full GC stall at the given heap level.
func (jw *Writer) GCStart(t, heapMB float64) { jw.gc(KindGCStart, t, heapMB) }

// GCEnd records the end of a full GC stall at the given heap level.
func (jw *Writer) GCEnd(t, heapMB float64) { jw.gc(KindGCEnd, t, heapMB) }

// gc emits one GC boundary record.
func (jw *Writer) gc(kind Kind, t, heapMB float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(kind)
	if jw.jsonl(Record{Kind: kind, Seq: seq, Time: t, HeapMB: heapMB}) {
		return
	}
	b := jw.begin(kind, seq, t)
	b = appendF64(b, heapMB)
	jw.finish(b)
}

// SimScheduled records a kernel event pushed onto the queue, scheduled
// to fire at virtual time at.
func (jw *Writer) SimScheduled(t, at float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindSimScheduled)
	if jw.jsonl(Record{Kind: KindSimScheduled, Seq: seq, Time: t, EventTime: at}) {
		return
	}
	b := jw.begin(KindSimScheduled, seq, t)
	b = appendF64(b, at)
	jw.finish(b)
}

// SimFired records a kernel event whose handler ran.
func (jw *Writer) SimFired(t float64) { jw.simPlain(KindSimFired, t) }

// SimCancelled records a kernel event removed before firing.
func (jw *Writer) SimCancelled(t float64) { jw.simPlain(KindSimCancelled, t) }

// simPlain emits a payload-free kernel event record.
func (jw *Writer) simPlain(kind Kind, t float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(kind)
	if jw.jsonl(Record{Kind: kind, Seq: seq, Time: t}) {
		return
	}
	jw.finish(jw.begin(kind, seq, t))
}

// Fault records one telemetry fault: an injected corruption, a value
// rejected by hygiene, a detected probe stall. class names the fault
// (truncated to MaxClassLen) and value carries the observation involved
// (NaN when no value applies, e.g. a stall).
func (jw *Writer) Fault(t float64, class string, value float64) {
	if jw.err != nil {
		return
	}
	class = clipClass(class)
	seq := jw.nextSeq(KindFault)
	if jw.jsonl(Record{Kind: KindFault, Seq: seq, Time: t, Class: class, Value: value}) {
		return
	}
	b := jw.begin(KindFault, seq, t)
	b = appendString(b, class)
	b = appendF64(b, value)
	jw.finish(b)
}

// ActStart records the start of one rejuvenation action execution.
// triggerID carries the identity of the trigger that provoked it, or 0
// for executions started outside a trigger.
func (jw *Writer) ActStart(t float64, triggerID uint64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindActStart)
	if jw.jsonl(Record{Kind: KindActStart, Seq: seq, Time: t, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindActStart, seq, t)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// ActAttempt records one attempt of a rejuvenation action: its 1-based
// number, outcome, the backoff (seconds) scheduled before the next
// attempt (0 when none follows), the error text on failure, and the
// trigger id the execution belongs to (0 when none).
func (jw *Writer) ActAttempt(t float64, attempt int, ok bool, backoff float64, errText string, triggerID uint64) {
	if jw.err != nil {
		return
	}
	errText = clipClass(errText)
	seq := jw.nextSeq(KindActAttempt)
	if jw.jsonl(Record{Kind: KindActAttempt, Seq: seq, Time: t,
		Attempt: attempt, OK: ok, Backoff: backoff, Class: errText, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindActAttempt, seq, t)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(attempt))
	b = appendF64(b, backoff)
	b = appendString(b, errText)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// ActGiveUp records the terminal escalation: the action failed for good
// after the given total number of attempts, with the last error text
// and the trigger id the execution belongs to (0 when none).
func (jw *Writer) ActGiveUp(t float64, attempts int, errText string, triggerID uint64) {
	if jw.err != nil {
		return
	}
	errText = clipClass(errText)
	seq := jw.nextSeq(KindActGiveUp)
	if jw.jsonl(Record{Kind: KindActGiveUp, Seq: seq, Time: t, Attempt: attempts, Class: errText, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindActGiveUp, seq, t)
	b = binary.AppendUvarint(b, uint64(attempts))
	b = appendString(b, errText)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// StreamOpen records a fleet stream coming under monitoring with the
// named detector class.
func (jw *Writer) StreamOpen(t float64, stream uint64, class string) {
	if jw.err != nil {
		return
	}
	class = clipClass(class)
	seq := jw.nextSeq(KindStreamOpen)
	if jw.jsonl(Record{Kind: KindStreamOpen, Seq: seq, Time: t, Stream: stream, Class: class}) {
		return
	}
	b := jw.begin(KindStreamOpen, seq, t)
	b = binary.AppendUvarint(b, stream)
	b = appendString(b, class)
	jw.finish(b)
}

// StreamClose records a fleet stream leaving monitoring.
func (jw *Writer) StreamClose(t float64, stream uint64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindStreamClose)
	if jw.jsonl(Record{Kind: KindStreamClose, Seq: seq, Time: t, Stream: stream}) {
		return
	}
	b := jw.begin(KindStreamClose, seq, t)
	b = binary.AppendUvarint(b, stream)
	jw.finish(b)
}

// StreamObserve records one observation on a fleet stream. It sits on
// the fleet's batched ingestion path and must stay allocation-free on
// the binary codec.
//
//lint:hotpath
func (jw *Writer) StreamObserve(t float64, stream uint64, value float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindStreamObserve)
	if jw.jsonl(Record{Kind: KindStreamObserve, Seq: seq, Time: t, Stream: stream, Value: value}) {
		return
	}
	b := jw.begin(KindStreamObserve, seq, t)
	b = binary.AppendUvarint(b, stream)
	b = appendF64(b, value)
	jw.finish(b)
}

// StreamDecision records one evaluated detector decision on a fleet
// stream. The decision payload reuses the KindDecision byte layout
// (appendDecisionFields) after the stream id, so fleet replay verifies
// the same bytes single-stream replay does. Like StreamObserve it is on
// the fleet's batched ingestion path.
//
//lint:hotpath
func (jw *Writer) StreamDecision(t float64, stream uint64, d core.Decision, in core.Internals, suppressed bool, triggerID uint64) {
	if jw.err != nil {
		return
	}
	r := DecisionRecord(t, d, in, suppressed)
	r.Kind = KindStreamDecision
	r.Stream = stream
	r.TriggerID = triggerID
	r.Seq = jw.nextSeq(KindStreamDecision)
	if jw.jsonl(r) {
		return
	}
	b := jw.begin(KindStreamDecision, r.Seq, t)
	b = binary.AppendUvarint(b, stream)
	b = appendDecisionFields(b, &r)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// Rebaseline records a committed workload-shift rebaseline: the shift
// layer re-estimated the baseline and the wrapped detector was rebuilt
// from mean/sd. It sits on the monitor's per-observation path (a
// rebaseline is decided inside Observe) and must stay allocation-free
// on the binary codec.
//
//lint:hotpath
func (jw *Writer) Rebaseline(t, mean, sd float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindRebaseline)
	if jw.jsonl(Record{Kind: KindRebaseline, Seq: seq, Time: t, BaseMean: mean, BaseStdDev: sd}) {
		return
	}
	b := jw.begin(KindRebaseline, seq, t)
	b = appendF64(b, mean)
	b = appendF64(b, sd)
	jw.finish(b)
}

// StreamRebaseline records a committed workload-shift rebaseline on a
// fleet stream. Like StreamObserve it is on the fleet's batched
// ingestion path.
//
//lint:hotpath
func (jw *Writer) StreamRebaseline(t float64, stream uint64, mean, sd float64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindStreamRebaseline)
	if jw.jsonl(Record{Kind: KindStreamRebaseline, Seq: seq, Time: t, Stream: stream, BaseMean: mean, BaseStdDev: sd}) {
		return
	}
	b := jw.begin(KindStreamRebaseline, seq, t)
	b = binary.AppendUvarint(b, stream)
	b = appendF64(b, mean)
	b = appendF64(b, sd)
	jw.finish(b)
}

// SchedEnqueue records a rejuvenation request admitted to the scheduler
// queue for the given replica, with the detector level/fill that raised
// it, the QoS deadline horizon declared with the request (EventTime; 0
// when none) and the computed urgency.
func (jw *Writer) SchedEnqueue(t float64, replica uint64, level, fill int, deadline, urgency float64, triggerID uint64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindSchedEnqueue)
	if jw.jsonl(Record{Kind: KindSchedEnqueue, Seq: seq, Time: t,
		Stream: replica, Level: level, Fill: fill, EventTime: deadline, Value: urgency, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedEnqueue, seq, t)
	b = binary.AppendUvarint(b, replica)
	b = binary.AppendUvarint(b, uint64(level))
	b = binary.AppendUvarint(b, uint64(fill))
	b = appendF64(b, deadline)
	b = appendF64(b, urgency)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// SchedDefer records a request the scheduler considered but did not
// start, with the reason, the request's detector state and how many
// times it has now been deferred.
func (jw *Writer) SchedDefer(t float64, replica uint64, reason string, level, fill, deferrals int, triggerID uint64) {
	if jw.err != nil {
		return
	}
	reason = clipClass(reason)
	seq := jw.nextSeq(KindSchedDefer)
	if jw.jsonl(Record{Kind: KindSchedDefer, Seq: seq, Time: t,
		Stream: replica, Class: reason, Level: level, Fill: fill, Attempt: deferrals, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedDefer, seq, t)
	b = binary.AppendUvarint(b, replica)
	b = appendString(b, reason)
	b = binary.AppendUvarint(b, uint64(level))
	b = binary.AppendUvarint(b, uint64(fill))
	b = binary.AppendUvarint(b, uint64(deferrals))
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// SchedCoalesce records a duplicate request merged into an already
// queued entry, or a starved entry escalated past the deferral windows:
// level/fill are the merged detector state, deadline the QoS horizon
// declared with the duplicate (EventTime; 0 for escalations), count the
// total requests the entry now represents, urgency its refreshed
// priority.
func (jw *Writer) SchedCoalesce(t float64, replica uint64, reason string, level, fill, count int, deadline, urgency float64, triggerID uint64) {
	if jw.err != nil {
		return
	}
	reason = clipClass(reason)
	seq := jw.nextSeq(KindSchedCoalesce)
	if jw.jsonl(Record{Kind: KindSchedCoalesce, Seq: seq, Time: t,
		Stream: replica, Class: reason, Level: level, Fill: fill, Attempt: count, EventTime: deadline, Value: urgency, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedCoalesce, seq, t)
	b = binary.AppendUvarint(b, replica)
	b = appendString(b, reason)
	b = binary.AppendUvarint(b, uint64(level))
	b = binary.AppendUvarint(b, uint64(fill))
	b = binary.AppendUvarint(b, uint64(count))
	b = appendF64(b, deadline)
	b = appendF64(b, urgency)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// SchedStart records a rejuvenation action dispatched by the scheduler:
// the Kijima tier name, its rollback fraction ρ and the pause (seconds)
// the action holds the replica down.
func (jw *Writer) SchedStart(t float64, replica uint64, tier string, rho, pause float64, triggerID uint64) {
	if jw.err != nil {
		return
	}
	tier = clipClass(tier)
	seq := jw.nextSeq(KindSchedStart)
	if jw.jsonl(Record{Kind: KindSchedStart, Seq: seq, Time: t,
		Stream: replica, Class: tier, Value: rho, Backoff: pause, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedStart, seq, t)
	b = binary.AppendUvarint(b, replica)
	b = appendString(b, tier)
	b = appendF64(b, rho)
	b = appendF64(b, pause)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// SchedComplete records a dispatched action finishing; ok reports
// whether the replica returned to service.
func (jw *Writer) SchedComplete(t float64, replica uint64, ok bool, triggerID uint64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindSchedComplete)
	if jw.jsonl(Record{Kind: KindSchedComplete, Seq: seq, Time: t, Stream: replica, OK: ok, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedComplete, seq, t)
	b = binary.AppendUvarint(b, replica)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// SchedQuarantine records a replica quarantined after its actuator gave
// up, with the terminal error text.
func (jw *Writer) SchedQuarantine(t float64, replica uint64, errText string, triggerID uint64) {
	if jw.err != nil {
		return
	}
	errText = clipClass(errText)
	seq := jw.nextSeq(KindSchedQuarantine)
	if jw.jsonl(Record{Kind: KindSchedQuarantine, Seq: seq, Time: t, Stream: replica, Class: errText, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedQuarantine, seq, t)
	b = binary.AppendUvarint(b, replica)
	b = appendString(b, errText)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// SchedReadmit records a quarantined replica re-admitted to scheduling.
func (jw *Writer) SchedReadmit(t float64, replica uint64, triggerID uint64) {
	if jw.err != nil {
		return
	}
	seq := jw.nextSeq(KindSchedReadmit)
	if jw.jsonl(Record{Kind: KindSchedReadmit, Seq: seq, Time: t, Stream: replica, TriggerID: triggerID}) {
		return
	}
	b := jw.begin(KindSchedReadmit, seq, t)
	b = binary.AppendUvarint(b, replica)
	b = appendTriggerID(b, triggerID)
	jw.finish(b)
}

// jsonl encodes r on the JSONL debug codec and reports whether the
// record was consumed there. The binary emitters call it first and fall
// through to the allocation-free scratch-buffer path when it declines.
// Encoding boxes the record and allocates; that is the price of the
// debug codec, paid in exactly one place.
//
//lint:allow hotpath the JSONL debug codec boxes one record per line by design
func (jw *Writer) jsonl(r Record) bool {
	if jw.format != FormatJSONL {
		return false
	}
	jw.err = jw.enc.Encode(r)
	return true
}

// clipClass truncates a class/error string to the codec bound.
func clipClass(s string) string {
	if len(s) > MaxClassLen {
		return s[:MaxClassLen]
	}
	return s
}

// nextSeq hands out the next sequence number and counts the record.
func (jw *Writer) nextSeq(k Kind) uint64 {
	seq := jw.seq
	jw.seq++
	jw.counts[k]++
	return seq
}

// begin starts a binary record payload in the reused scratch buffer:
// kind byte, uvarint seq, float64 time.
//
//lint:allow hotpath appends into the reused scratch buffer; growth amortizes to zero (pinned by TestWriterObserveDoesNotAllocate)
func (jw *Writer) begin(kind Kind, seq uint64, t float64) []byte {
	b := jw.buf[:0]
	b = append(b, byte(kind))
	b = binary.AppendUvarint(b, seq)
	b = appendF64(b, t)
	return b
}

// finish length-prefixes the payload and writes it, retaining the
// (possibly grown) scratch buffer for the next record.
func (jw *Writer) finish(payload []byte) {
	n := binary.PutUvarint(jw.lenBuf[:], uint64(len(payload)))
	jw.write(jw.lenBuf[:n])
	jw.write(payload)
	jw.buf = payload[:0]
}

// write forwards to the underlying writer unless an error has latched.
func (jw *Writer) write(p []byte) {
	if jw.err != nil {
		return
	}
	_, jw.err = jw.w.Write(p)
}

// DecisionRecord assembles the canonical decision record for one
// evaluated decision, shared by the writer and the replay verifier so
// both sides encode identically.
func DecisionRecord(t float64, d core.Decision, in core.Internals, suppressed bool) Record {
	return Record{
		Kind:       KindDecision,
		Time:       t,
		Evaluated:  d.Evaluated,
		Triggered:  d.Triggered,
		Suppressed: suppressed,
		SampleMean: d.SampleMean,
		Target:     d.Target,
		Level:      d.Level,
		Fill:       d.Fill,
		SampleSize: in.SampleSize,
		SampleFill: in.SampleFill,
		Statistic:  in.Statistic,
	}
}

// Decision flag bits of the binary codec.
const (
	flagEvaluated  = 1 << 0
	flagTriggered  = 1 << 1
	flagSuppressed = 1 << 2
)

// appendDecisionFields encodes the decision payload (after the common
// kind/seq/time prefix): flags byte, sample mean, target, level, fill,
// sample size, sample fill, statistic. This is the byte stream the
// replay verifier compares, so its layout is part of the determinism
// contract (DESIGN §10).
//
//lint:allow hotpath appends into the caller's reused scratch buffer; growth amortizes to zero
func appendDecisionFields(b []byte, r *Record) []byte {
	var flags byte
	if r.Evaluated {
		flags |= flagEvaluated
	}
	if r.Triggered {
		flags |= flagTriggered
	}
	if r.Suppressed {
		flags |= flagSuppressed
	}
	b = append(b, flags)
	b = appendF64(b, r.SampleMean)
	b = appendF64(b, r.Target)
	b = binary.AppendUvarint(b, uint64(r.Level))
	b = binary.AppendUvarint(b, uint64(r.Fill))
	b = binary.AppendUvarint(b, uint64(r.SampleSize))
	b = binary.AppendUvarint(b, uint64(r.SampleFill))
	b = appendF64(b, r.Statistic)
	return b
}

// appendPayload encodes the kind-specific payload of r; the common
// prefix (kind, seq, time) is already in b.
func appendPayload(b []byte, r *Record) []byte {
	switch r.Kind {
	case KindRepStart:
		b = binary.AppendUvarint(b, uint64(r.Rep))
		b = binary.AppendUvarint(b, r.Seed)
		b = binary.AppendUvarint(b, r.Stream)
	case KindObserve:
		b = appendF64(b, r.Value)
	case KindDecision:
		b = appendDecisionFields(b, r)
		b = appendTriggerID(b, r.TriggerID)
	case KindReset, KindSimFired, KindSimCancelled:
		// no payload
	case KindRejuvenation:
		b = binary.AppendUvarint(b, uint64(r.Killed))
	case KindGCStart, KindGCEnd:
		b = appendF64(b, r.HeapMB)
	case KindSimScheduled:
		b = appendF64(b, r.EventTime)
	case KindFault:
		b = appendString(b, clipClass(r.Class))
		b = appendF64(b, r.Value)
	case KindActStart:
		b = appendTriggerID(b, r.TriggerID)
	case KindActAttempt:
		if r.OK {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendUvarint(b, uint64(r.Attempt))
		b = appendF64(b, r.Backoff)
		b = appendString(b, clipClass(r.Class))
		b = appendTriggerID(b, r.TriggerID)
	case KindActGiveUp:
		b = binary.AppendUvarint(b, uint64(r.Attempt))
		b = appendString(b, clipClass(r.Class))
		b = appendTriggerID(b, r.TriggerID)
	case KindStreamOpen:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendString(b, clipClass(r.Class))
	case KindStreamClose:
		b = binary.AppendUvarint(b, r.Stream)
	case KindStreamObserve:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendF64(b, r.Value)
	case KindStreamDecision:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendDecisionFields(b, r)
		b = appendTriggerID(b, r.TriggerID)
	case KindRebaseline:
		b = appendF64(b, r.BaseMean)
		b = appendF64(b, r.BaseStdDev)
	case KindStreamRebaseline:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendF64(b, r.BaseMean)
		b = appendF64(b, r.BaseStdDev)
	case KindSchedEnqueue:
		b = binary.AppendUvarint(b, r.Stream)
		b = binary.AppendUvarint(b, uint64(r.Level))
		b = binary.AppendUvarint(b, uint64(r.Fill))
		b = appendF64(b, r.EventTime)
		b = appendF64(b, r.Value)
		b = appendTriggerID(b, r.TriggerID)
	case KindSchedDefer:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendString(b, clipClass(r.Class))
		b = binary.AppendUvarint(b, uint64(r.Level))
		b = binary.AppendUvarint(b, uint64(r.Fill))
		b = binary.AppendUvarint(b, uint64(r.Attempt))
		b = appendTriggerID(b, r.TriggerID)
	case KindSchedCoalesce:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendString(b, clipClass(r.Class))
		b = binary.AppendUvarint(b, uint64(r.Level))
		b = binary.AppendUvarint(b, uint64(r.Fill))
		b = binary.AppendUvarint(b, uint64(r.Attempt))
		b = appendF64(b, r.EventTime)
		b = appendF64(b, r.Value)
		b = appendTriggerID(b, r.TriggerID)
	case KindSchedStart:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendString(b, clipClass(r.Class))
		b = appendF64(b, r.Value)
		b = appendF64(b, r.Backoff)
		b = appendTriggerID(b, r.TriggerID)
	case KindSchedComplete:
		b = binary.AppendUvarint(b, r.Stream)
		if r.OK {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendTriggerID(b, r.TriggerID)
	case KindSchedQuarantine:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendString(b, clipClass(r.Class))
		b = appendTriggerID(b, r.TriggerID)
	case KindSchedReadmit:
		b = binary.AppendUvarint(b, r.Stream)
		b = appendTriggerID(b, r.TriggerID)
	}
	return b
}

// appendTriggerID appends the optional trailing trigger-id field: a
// non-zero id is encoded as one trailing uvarint, a zero id as nothing
// at all, so records without ids keep the exact byte layout journals
// had before trigger ids existed. The decoder mirrors this: a trailing
// uvarint is read only when bytes remain after the fixed payload.
func appendTriggerID(b []byte, id uint64) []byte {
	if id == 0 {
		return b
	}
	return binary.AppendUvarint(b, id)
}

// appendString appends a length-prefixed string.
//
//lint:allow hotpath appends into the caller's reused scratch buffer; growth amortizes to zero
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendF64 appends the little-endian IEEE-754 bits of v.
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
