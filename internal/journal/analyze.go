package journal

import (
	"math"
)

// This file turns a journal into the numbers and timelines the
// cmd/rejuvtrace CLI renders: per-trigger context windows, per-phase
// statistics (time from first target exceedance to trigger, bucket
// dwell times, suppressed-trigger counts) and diffs between two
// journals (e.g. SRAA vs SARAA on the same seed).

// TriggerEvent is one delivered trigger with the context that explains
// it. A "phase" is the stretch from the previous trigger (or the start
// of the replication) to this trigger.
type TriggerEvent struct {
	// Index is the 1-based trigger ordinal across the journal.
	Index int
	// Rep is the replication the trigger fired in (0 when the journal
	// has no replication markers).
	Rep int
	// Seq and Time locate the triggering decision record.
	Seq  uint64
	Time float64
	// TriggerID is the trigger's correlation id (0 for journals written
	// before trigger ids existed); actuator executions carrying the same
	// id were caused by this trigger.
	TriggerID uint64
	// Window holds the decision records leading up to and including the
	// trigger, oldest first, bounded by the analysis window.
	Window []Record
	// FirstExceedance is the time of the phase's first evaluated
	// decision whose sample mean exceeded its target; NaN when the
	// trigger fired without a prior exceedance in the window of the
	// phase (cannot happen for bucket detectors).
	FirstExceedance float64
	// TimeToTrigger is Time - FirstExceedance, the paper's
	// time-to-trigger metric for this phase; NaN when FirstExceedance
	// is NaN.
	TimeToTrigger float64
	// Dwell maps bucket level -> virtual seconds the detector spent at
	// that level during the phase (indexed by level, zero-padded).
	Dwell []float64
	// Suppressed counts triggers eaten by the cooldown during the phase.
	Suppressed int
	// GCs counts full garbage collections during the phase.
	GCs int
}

// Analysis is the digest of one journal.
type Analysis struct {
	// Meta is the journal header.
	Meta Meta
	// Format is the codec the journal was read in.
	Format Format
	// Records counts all records.
	Records int
	// Reps counts replication markers (0 for unmarked journals).
	Reps int
	// Observations, Decisions, Resets, Rejuvenations, GCs and
	// KernelEvents count records by family.
	Observations  int
	Decisions     int
	Resets        int
	Rejuvenations int
	GCs           int
	KernelEvents  int
	// Triggers counts delivered (non-suppressed) triggering decisions;
	// Suppressed counts cooldown-eaten ones.
	Triggers   int
	Suppressed int
	// Killed totals transactions terminated by rejuvenations.
	Killed int
	// Faults counts injected/detected telemetry fault records.
	Faults int
	// Rebaselines counts workload-shift rebaseline records
	// (KindRebaseline and KindStreamRebaseline).
	Rebaselines int
	// RebaselineEvents holds the rebaseline records in journal order, so
	// timelines can show where the baseline moved and to what.
	RebaselineEvents []Record
	// FaultClasses tallies fault records per class, in first-seen order.
	FaultClasses []FaultCount
	// Duration is the largest timestamp seen, per replication summed
	// across reps boundaries (time restarts at each RepStart).
	Duration float64
	// Events holds one entry per delivered trigger, in journal order.
	Events []TriggerEvent
	// Actions holds one entry per actuator execution, in journal order.
	Actions []ActionEvent
	// Sched tallies the scheduling layer's records; all-zero when the
	// journal has no scheduler (verify a schedule with ReplaySched).
	Sched SchedCensus
}

// SchedCensus summarizes a journal's scheduler records.
type SchedCensus struct {
	// Records counts all scheduler records.
	Records int
	// Enqueues, Defers, Coalesces, Starts, Completes, Quarantines and
	// Readmits count them by kind.
	Enqueues, Defers, Coalesces, Starts, Completes, Quarantines, Readmits int
	// StartsByTier tallies dispatched actions per tier name, in
	// first-seen order.
	StartsByTier []TierCount
	// DefersByReason tallies deferral decisions per reason class, in
	// first-seen order.
	DefersByReason []ReasonCount
	// QuarantineEvents holds the quarantine and readmit records in
	// journal order, so timelines can show capacity shed and restored.
	QuarantineEvents []Record
}

// TierCount is one action tier with its dispatch count.
type TierCount struct {
	// Tier is the tier name ("minor", "medium", "major").
	Tier string
	// N counts its dispatched actions.
	N int
}

// ReasonCount is one deferral reason with its record count.
type ReasonCount struct {
	// Reason is the deferral class ("budget", "deadline", ...).
	Reason string
	// N counts its deferral records.
	N int
}

// FaultCount is one fault class with its record count.
type FaultCount struct {
	// Class is the fault class name.
	Class string
	// N counts its fault records.
	N int
}

// ActionEvent is one actuator execution reconstructed from the journal:
// the start record, every attempt, and how it ended.
type ActionEvent struct {
	// Index is the 1-based execution ordinal across the journal.
	Index int
	// Rep is the replication the execution started in.
	Rep int
	// Start is the timestamp of the KindActStart record.
	Start float64
	// TriggerID links the execution back to the trigger that provoked it
	// (0 when the journal carries no ids or the execution was manual).
	TriggerID uint64
	// Attempts holds the execution's attempt records in order.
	Attempts []Record
	// GaveUp reports a terminal KindActGiveUp escalation.
	GaveUp bool
	// End is the timestamp of the final attempt or give-up record seen.
	End float64
}

// Succeeded reports whether any attempt of the execution succeeded.
func (e ActionEvent) Succeeded() bool {
	for _, a := range e.Attempts {
		if a.OK {
			return true
		}
	}
	return false
}

// Analyze digests records into trigger timelines and phase statistics.
// window bounds how many decision records each trigger retains as
// context (minimum 1, the trigger itself).
func Analyze(meta Meta, format Format, records []Record, window int) Analysis {
	if window < 1 {
		window = 1
	}
	a := Analysis{Meta: meta, Format: format, Records: len(records)}

	// Phase state, reset at each delivered trigger and each rep start.
	var (
		rep        int
		repBase    float64 // duration accumulated over finished reps
		lastT      float64 // largest time in current rep
		recent     []Record
		firstExc   = math.NaN()
		dwell      []float64
		dwellLevel int
		dwellSince = math.NaN()
		suppressed int
		phaseGCs   int
	)
	resetPhase := func() {
		firstExc = math.NaN()
		dwell = nil
		dwellLevel = 0
		dwellSince = math.NaN()
		suppressed = 0
		phaseGCs = 0
	}
	accumulateDwell := func(t float64) {
		if math.IsNaN(dwellSince) {
			return
		}
		for len(dwell) <= dwellLevel {
			dwell = append(dwell, 0)
		}
		dwell[dwellLevel] += t - dwellSince
	}

	for _, r := range records {
		if r.Time > lastT {
			lastT = r.Time
		}
		switch r.Kind {
		case KindRepStart:
			a.Reps++
			rep = r.Rep
			repBase += lastT
			lastT = 0
			recent = recent[:0]
			resetPhase()
		case KindObserve:
			a.Observations++
		case KindDecision:
			a.Decisions++
			recent = append(recent, r)
			if len(recent) > window {
				recent = recent[len(recent)-window:]
			}
			if math.IsNaN(firstExc) && r.SampleMean > r.Target {
				firstExc = r.Time
			}
			accumulateDwell(r.Time)
			dwellLevel = r.Level
			dwellSince = r.Time
			switch {
			case r.Triggered && r.Suppressed:
				a.Suppressed++
				suppressed++
			case r.Triggered:
				a.Triggers++
				ev := TriggerEvent{
					Index:           a.Triggers,
					Rep:             rep,
					Seq:             r.Seq,
					Time:            r.Time,
					TriggerID:       r.TriggerID,
					Window:          append([]Record(nil), recent...),
					FirstExceedance: firstExc,
					TimeToTrigger:   r.Time - firstExc,
					Dwell:           dwell,
					Suppressed:      suppressed,
					GCs:             phaseGCs,
				}
				a.Events = append(a.Events, ev)
				resetPhase()
			}
		case KindReset:
			a.Resets++
			resetPhase()
		case KindRejuvenation:
			a.Rejuvenations++
			a.Killed += r.Killed
		case KindGCStart:
			a.GCs++
			phaseGCs++
		case KindGCEnd:
			// counted at start
		case KindSimScheduled, KindSimFired, KindSimCancelled:
			a.KernelEvents++
		case KindFault:
			a.Faults++
			found := false
			for i := range a.FaultClasses {
				if a.FaultClasses[i].Class == r.Class {
					a.FaultClasses[i].N++
					found = true
					break
				}
			}
			if !found {
				a.FaultClasses = append(a.FaultClasses, FaultCount{Class: r.Class, N: 1})
			}
		case KindRebaseline, KindStreamRebaseline:
			a.Rebaselines++
			a.RebaselineEvents = append(a.RebaselineEvents, r)
		case KindSchedEnqueue:
			a.Sched.Records++
			a.Sched.Enqueues++
		case KindSchedDefer:
			a.Sched.Records++
			a.Sched.Defers++
			bumpReason(&a.Sched.DefersByReason, r.Class)
		case KindSchedCoalesce:
			a.Sched.Records++
			a.Sched.Coalesces++
		case KindSchedStart:
			a.Sched.Records++
			a.Sched.Starts++
			bumpTier(&a.Sched.StartsByTier, r.Class)
		case KindSchedComplete:
			a.Sched.Records++
			a.Sched.Completes++
		case KindSchedQuarantine:
			a.Sched.Records++
			a.Sched.Quarantines++
			a.Sched.QuarantineEvents = append(a.Sched.QuarantineEvents, r)
		case KindSchedReadmit:
			a.Sched.Records++
			a.Sched.Readmits++
			a.Sched.QuarantineEvents = append(a.Sched.QuarantineEvents, r)
		case KindActStart:
			a.Actions = append(a.Actions, ActionEvent{
				Index: len(a.Actions) + 1, Rep: rep, Start: r.Time, End: r.Time,
				TriggerID: r.TriggerID,
			})
		case KindActAttempt:
			if n := len(a.Actions); n > 0 {
				act := &a.Actions[n-1]
				act.Attempts = append(act.Attempts, r)
				act.End = r.Time
			}
		case KindActGiveUp:
			if n := len(a.Actions); n > 0 {
				act := &a.Actions[n-1]
				act.GaveUp = true
				act.End = r.Time
			}
		}
	}
	a.Duration = repBase + lastT
	return a
}

// bumpTier increments the count for a tier name, appending it on first
// sight so StartsByTier preserves journal order.
func bumpTier(tiers *[]TierCount, name string) {
	for i := range *tiers {
		if (*tiers)[i].Tier == name {
			(*tiers)[i].N++
			return
		}
	}
	*tiers = append(*tiers, TierCount{Tier: name, N: 1})
}

// bumpReason is bumpTier for deferral reason classes.
func bumpReason(reasons *[]ReasonCount, name string) {
	for i := range *reasons {
		if (*reasons)[i].Reason == name {
			(*reasons)[i].N++
			return
		}
	}
	*reasons = append(*reasons, ReasonCount{Reason: name, N: 1})
}

// CausalityChain is the full observation → decision → actuation story
// of one trigger id: the observations that fed the triggering decision,
// the decision itself, and every actuator execution the trigger
// provoked. Trigger ids are minted deterministically at decision time
// (core.TriggerID) and stamped on decision and actuator records, so the
// chain can be reassembled from the journal alone.
type CausalityChain struct {
	// TriggerID is the traced correlation id.
	TriggerID uint64
	// Fleet reports whether the decision is a stream-tagged (fleet)
	// record; Stream is then the fleet stream id and Class its detector
	// class when the journal recorded the stream's open.
	Fleet  bool
	Stream uint64
	Class  string
	// Observations holds the observation records that fed the decision,
	// oldest first, bounded by the trace window. For fleet journals only
	// the decision's own stream is included.
	Observations []Record
	// Decision is the decision record carrying the id.
	Decision Record
	// Actions holds the actuator executions carrying the id.
	Actions []ActionEvent
}

// TraceCausality reassembles the causality chain of one trigger id from
// a journal's records. window bounds how many observations are kept
// (minimum 1); observations never cross a replication boundary. It
// reports false when no decision record carries the id — including for
// id 0, which journals written before trigger ids use everywhere.
func TraceCausality(records []Record, id uint64, window int) (CausalityChain, bool) {
	if id == 0 {
		return CausalityChain{}, false
	}
	if window < 1 {
		window = 1
	}
	c := CausalityChain{TriggerID: id}
	di := -1
	for i := range records {
		r := &records[i]
		if (r.Kind == KindDecision || r.Kind == KindStreamDecision) && r.TriggerID == id {
			di = i
			c.Decision = *r
			c.Fleet = r.Kind == KindStreamDecision
			c.Stream = r.Stream
			break
		}
	}
	if di < 0 {
		return CausalityChain{}, false
	}

	// Walk backwards from the decision collecting its stream's
	// observations, newest first, then restore journal order.
scan:
	for i := di - 1; i >= 0 && len(c.Observations) < window; i-- {
		r := &records[i]
		switch {
		case r.Kind == KindRepStart:
			break scan
		case !c.Fleet && r.Kind == KindObserve,
			c.Fleet && r.Kind == KindStreamObserve && r.Stream == c.Stream:
			c.Observations = append(c.Observations, *r)
		}
	}
	for l, r := 0, len(c.Observations)-1; l < r; l, r = l+1, r-1 {
		c.Observations[l], c.Observations[r] = c.Observations[r], c.Observations[l]
	}

	if c.Fleet {
		for i := range records {
			r := &records[i]
			if r.Kind == KindStreamOpen && r.Stream == c.Stream {
				c.Class = r.Class
			}
		}
	}

	// Actuator executions carrying the id: attempts and give-ups group
	// under the preceding KindActStart, exactly as Analyze groups them.
	var cur *ActionEvent
	flush := func() {
		if cur != nil {
			c.Actions = append(c.Actions, *cur)
			cur = nil
		}
	}
	for i := range records {
		r := &records[i]
		switch r.Kind {
		case KindActStart:
			flush()
			if r.TriggerID == id {
				cur = &ActionEvent{
					Index: len(c.Actions) + 1, Start: r.Time, End: r.Time,
					TriggerID: id,
				}
			}
		case KindActAttempt:
			if cur != nil {
				cur.Attempts = append(cur.Attempts, *r)
				cur.End = r.Time
			}
		case KindActGiveUp:
			if cur != nil {
				cur.GaveUp = true
				cur.End = r.Time
			}
		}
	}
	flush()
	return c, true
}

// PhaseStats aggregates the per-phase metrics across all triggers of an
// analysis: the distribution of time-to-trigger and the mean virtual
// time spent at each bucket level.
type PhaseStats struct {
	// Triggers counts the phases aggregated.
	Triggers int
	// TimeToTrigger holds min/mean/max seconds from first target
	// exceedance to trigger, over phases where an exceedance was seen.
	TimeToTrigger MinMeanMax
	// DwellMean is the mean virtual seconds per bucket level across
	// phases, indexed by level.
	DwellMean []float64
	// SuppressedTotal counts cooldown-eaten triggers across all phases.
	SuppressedTotal int
}

// MinMeanMax is a three-point summary of a non-empty sample; all fields
// are NaN when N is zero.
type MinMeanMax struct {
	// N is the sample size.
	N int
	// Min, Mean and Max summarize the sample.
	Min, Mean, Max float64
}

// add folds one value into the summary.
func (s *MinMeanMax) add(v float64) {
	if s.N == 0 {
		s.Min, s.Max = v, v
	} else {
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	// Mean holds the running sum until finalized by Phases.
	s.Mean += v
	s.N++
}

// Phases computes the aggregate phase statistics of the analysis.
func (a Analysis) Phases() PhaseStats {
	ps := PhaseStats{Triggers: len(a.Events)}
	ps.TimeToTrigger = MinMeanMax{Min: math.NaN(), Mean: math.NaN(), Max: math.NaN()}
	var ttt MinMeanMax
	var dwellSum []float64
	for _, ev := range a.Events {
		ps.SuppressedTotal += ev.Suppressed
		if !math.IsNaN(ev.TimeToTrigger) {
			ttt.add(ev.TimeToTrigger)
		}
		for lvl, d := range ev.Dwell {
			for len(dwellSum) <= lvl {
				dwellSum = append(dwellSum, 0)
			}
			dwellSum[lvl] += d
		}
	}
	if ttt.N > 0 {
		ttt.Mean /= float64(ttt.N)
		ps.TimeToTrigger = ttt
	}
	if len(a.Events) > 0 {
		ps.DwellMean = make([]float64, len(dwellSum))
		for i, s := range dwellSum {
			ps.DwellMean[i] = s / float64(len(a.Events))
		}
	}
	return ps
}

// DiffReport compares two journals decision by decision, the tool for
// questions like "where did SARAA commit earlier than SRAA on the same
// seed".
type DiffReport struct {
	// A and B are the two analyses.
	A, B Analysis
	// CommonDecisions counts leading decisions identical in both
	// journals (canonical byte comparison, suppression masked).
	CommonDecisions int
	// Divergence describes the first differing decision pair; nil when
	// one stream is a prefix of the other.
	Divergence *DecisionDiff
}

// DecisionDiff is the first differing decision pair of a diff.
type DecisionDiff struct {
	// Ordinal is the 0-based index into both decision streams.
	Ordinal int
	// A and B are the differing records.
	A, B Record
}

// Diff analyzes both record streams and locates the first decision
// where they part ways.
func Diff(metaA Meta, a []Record, metaB Meta, b []Record, window int) DiffReport {
	rep := DiffReport{
		A: Analyze(metaA, FormatBinary, a, window),
		B: Analyze(metaB, FormatBinary, b, window),
	}
	da, db := decisions(a), decisions(b)
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		if !sameDecision(da[i], db[i]) {
			rep.Divergence = &DecisionDiff{Ordinal: i, A: da[i], B: db[i]}
			return rep
		}
		rep.CommonDecisions++
	}
	return rep
}

// decisions filters the decision records of a stream.
func decisions(records []Record) []Record {
	var out []Record
	for _, r := range records {
		if r.Kind == KindDecision {
			out = append(out, r)
		}
	}
	return out
}

// sameDecision compares two decision records on detector-owned fields
// plus timestamp, masking the cooldown-owned suppression flag.
func sameDecision(x, y Record) bool {
	x.Suppressed, y.Suppressed = false, false
	x.Seq, y.Seq = 0, 0
	if math.Float64bits(x.Time) != math.Float64bits(y.Time) {
		return false
	}
	bx := appendDecisionFields(nil, &x)
	by := appendDecisionFields(nil, &y)
	return string(bx) == string(by)
}
