package journal

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"rejuv/internal/core"
)

// This file extends deterministic replay (replay.go) to fleet journals:
// many interleaved streams sharing one journal, each record tagged with
// its stream id. The verification contract is the same — feeding the
// journaled observations of each stream through a freshly constructed
// detector of that stream's class must reproduce that stream's decision
// records byte for byte — but the bookkeeping is per stream, and the
// interleaving order itself is part of what a deterministic fleet must
// reproduce, so ReplayFleet doubles as the proof that the fleet engine's
// struct-of-arrays detector state matches the pointer-based reference
// detectors in internal/core.

// FleetReplayReport summarizes one fleet replay verification pass.
type FleetReplayReport struct {
	// Streams counts distinct streams opened in the journal.
	Streams int
	// Closes counts stream close records applied.
	Closes int
	// Observations counts stream observation records fed to detectors.
	Observations int
	// Decisions counts stream decision records compared.
	Decisions int
	// Triggers counts recorded decisions that triggered.
	Triggers int
	// Rebaselines counts stream rebaseline records verified.
	Rebaselines int
	// Mismatch describes the first divergence, nil when every stream's
	// decision sequence is byte-identical.
	Mismatch *Mismatch
}

// Identical reports whether every stream's replayed decision sequence
// matched the recorded one byte for byte.
func (r FleetReplayReport) Identical() bool { return r.Mismatch == nil }

// fleetStream is the replay state of one open stream.
type fleetStream struct {
	det     core.Detector
	pending *Record // replayed decision awaiting its recorded counterpart
}

// ReplayFleet feeds every journaled fleet observation through detectors
// built by factory — invoked per KindStreamOpen with that stream's
// class — and verifies each stream's decision records against the
// replayed ones, using the same canonical byte comparison as Replay.
// The Suppressed flag is copied from the recorded record before
// encoding, because suppression is decided by the per-stream cooldown
// layer above the detector. Non-stream records are ignored, so a fleet
// journal may carry rejuvenation and actuator records alongside.
//
// Replay stops at the first divergence and reports it; a nil error with
// report.Identical() true is the determinism proof for the whole fleet.
func ReplayFleet(jr *Reader, factory func(class string) (core.Detector, error)) (FleetReplayReport, error) {
	var report FleetReplayReport
	streams := make(map[uint64]*fleetStream)
	for {
		rec, err := jr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return report, err
		}
		switch rec.Kind {
		case KindStreamOpen:
			if _, ok := streams[rec.Stream]; ok {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("stream %d opened twice", rec.Stream))
				return report, nil
			}
			det, err := factory(rec.Class)
			if err != nil {
				return report, fmt.Errorf("journal: fleet replay factory (stream %d, class %q): %w", rec.Stream, rec.Class, err)
			}
			if det == nil {
				return report, fmt.Errorf("journal: fleet replay factory returned a nil detector for class %q", rec.Class)
			}
			streams[rec.Stream] = &fleetStream{det: det}
			report.Streams++
		case KindStreamClose:
			st, ok := streams[rec.Stream]
			if !ok {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("stream %d closed but never opened", rec.Stream))
				return report, nil
			}
			if st.pending != nil {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("stream %d closed while a replayed decision awaited its recorded counterpart", rec.Stream))
				return report, nil
			}
			delete(streams, rec.Stream)
			report.Closes++
		case KindStreamObserve:
			st, ok := streams[rec.Stream]
			if !ok {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("observation on unopened stream %d", rec.Stream))
				return report, nil
			}
			if st.pending != nil {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("observation on stream %d while a replayed decision awaited its recorded counterpart", rec.Stream))
				return report, nil
			}
			report.Observations++
			d := st.det.Observe(rec.Value)
			if d.Evaluated || d.Triggered {
				var in core.Internals
				if instr, ok := st.det.(core.Instrumented); ok {
					in = instr.Internals()
				}
				r := DecisionRecord(rec.Time, d, in, false)
				st.pending = &r
			}
		case KindStreamDecision:
			st, ok := streams[rec.Stream]
			if !ok {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("decision on unopened stream %d", rec.Stream))
				return report, nil
			}
			report.Decisions++
			if rec.Triggered {
				report.Triggers++
			}
			if st.pending == nil {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("recorded decision on stream %d has no replayed counterpart (replayed detector did not evaluate)", rec.Stream))
				return report, nil
			}
			st.pending.Suppressed = rec.Suppressed
			st.pending.Time = rec.Time
			recBytes := appendDecisionFields(nil, &rec)
			repBytes := appendDecisionFields(nil, st.pending)
			if string(recBytes) != string(repBytes) {
				report.Mismatch = &Mismatch{
					Seq:      rec.Seq,
					Time:     rec.Time,
					Reason:   fmt.Sprintf("decision payloads differ on stream %d", rec.Stream),
					Recorded: hex.EncodeToString(recBytes),
					Replayed: hex.EncodeToString(repBytes),
				}
				return report, nil
			}
			st.pending = nil
		case KindStreamRebaseline:
			st, ok := streams[rec.Stream]
			if !ok {
				report.Mismatch = structuralMismatch(rec, fmt.Sprintf("rebaseline on unopened stream %d", rec.Stream))
				return report, nil
			}
			report.Rebaselines++
			if m := verifyRebaseline(rec, st.det); m != nil {
				m.Reason = fmt.Sprintf("%s on stream %d", m.Reason, rec.Stream)
				report.Mismatch = m
				return report, nil
			}
		case KindReset:
			// A fleet-wide reset resets every open stream. Iterate without
			// order sensitivity: Reset has no cross-stream effects.
			for _, st := range streams {
				st.det.Reset()
			}
		}
	}
	// Report the lowest-id leftover so the diagnosis is stable across
	// runs despite map iteration order.
	leftover, found := uint64(0), false
	for id, st := range streams {
		if st.pending != nil && (!found || id < leftover) {
			leftover, found = id, true
		}
	}
	if found {
		report.Mismatch = &Mismatch{Reason: fmt.Sprintf("replayed decision on stream %d at end of journal has no recorded counterpart", leftover)}
	}
	return report, nil
}
