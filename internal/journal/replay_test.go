package journal_test

// Replay determinism, the acceptance test of the flight recorder: for
// every detector family, journaling a simulation run and replaying the
// journal through a freshly built detector must reproduce the decision
// stream byte for byte, on several seeds, regardless of GOMAXPROCS.

import (
	"bytes"
	"runtime"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/ecommerce"
	"rejuv/internal/journal"
)

// replayCase pairs a detector family with its factory. The factory is
// used both to build the recording detector and, independently, the
// replaying ones — mirroring how a debugging session reconstructs the
// detector from the journal's spec.
type replayCase struct {
	name    string
	factory func() (core.Detector, error)
}

// replayCases covers all eight detector families of the core package.
func replayCases() []replayCase {
	base := core.Baseline{Mean: 5, StdDev: 5}
	return []replayCase{
		{"SRAA", func() (core.Detector, error) {
			return core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: base})
		}},
		{"SARAA", func() (core.Detector, error) {
			return core.NewSARAA(core.SARAAConfig{InitialSampleSize: 2, Buckets: 5, Depth: 3, Baseline: base})
		}},
		{"Static", func() (core.Detector, error) { // SRAA with n=1, the paper's static algorithm
			return core.NewSRAA(core.SRAAConfig{SampleSize: 1, Buckets: 5, Depth: 3, Baseline: base})
		}},
		{"CLTA", func() (core.Detector, error) {
			return core.NewCLTA(core.CLTAConfig{SampleSize: 10, Quantile: 1.645, Baseline: base})
		}},
		{"Shewhart", func() (core.Detector, error) {
			return core.NewShewhart(3, base)
		}},
		{"EWMA", func() (core.Detector, error) {
			return core.NewEWMA(0.2, 3, base)
		}},
		{"CUSUM", func() (core.Detector, error) {
			return core.NewCUSUM(0.5, 5, base)
		}},
		{"Adaptive", func() (core.Detector, error) {
			return core.NewAdaptive(50, func(b core.Baseline) (core.Detector, error) {
				return core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: b})
			})
		}},
	}
}

// recordReplications runs one model replication per seed, all into a
// single journal framed by RepStart records, and returns the encoded
// journal. A fresh detector is built per replication, exactly what
// Replay reconstructs.
func recordReplications(t *testing.T, tc replayCase, seeds []uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{
		CreatedBy: "replay_test",
		Detector:  tc.name,
	})
	for rep, seed := range seeds {
		det, err := tc.factory()
		if err != nil {
			t.Fatalf("%s: factory: %v", tc.name, err)
		}
		m, err := ecommerce.New(ecommerce.Config{
			ArrivalRate:  3.0, // load 0.94: aging bites, triggers happen
			Transactions: 3000,
			Seed:         seed,
			Stream:       uint64(rep),
		}, det)
		if err != nil {
			t.Fatalf("%s: model: %v", tc.name, err)
		}
		jw.RepStart(0, rep, seed, uint64(rep))
		m.Journal(jw)
		if _, err := m.Run(); err != nil {
			t.Fatalf("%s: run: %v", tc.name, err)
		}
	}
	if err := jw.Err(); err != nil {
		t.Fatalf("%s: journal writer: %v", tc.name, err)
	}
	return buf.Bytes()
}

// TestReplayDeterminismAllDetectors is the determinism proof required
// of the flight recorder: live vs replayed Decision streams are
// byte-identical for all eight detector families on three seeds each.
func TestReplayDeterminismAllDetectors(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	for _, tc := range replayCases() {
		t.Run(tc.name, func(t *testing.T) {
			data := recordReplications(t, tc, seeds)
			jr, err := journal.NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			rep, err := journal.Replay(jr, tc.factory)
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if !rep.Identical() {
				t.Fatalf("replay diverged: %v", rep.Mismatch.Error())
			}
			if rep.Reps != len(seeds) {
				t.Errorf("replayed %d replications, want %d", rep.Reps, len(seeds))
			}
			if rep.Observations == 0 || rep.Decisions == 0 {
				t.Errorf("vacuous replay: %d observations, %d decisions", rep.Observations, rep.Decisions)
			}
			t.Logf("%s: %d observations, %d decisions, %d triggers, %d resets — byte-identical",
				tc.name, rep.Observations, rep.Decisions, rep.Triggers, rep.Resets)
		})
	}
}

// TestReplayDetectsTamperedJournal makes sure the verifier is not
// vacuously green: flipping one decision's sample-mean bit must be
// reported as a divergence.
func TestReplayDetectsTamperedJournal(t *testing.T) {
	tc := replayCases()[0] // SRAA
	data := recordReplications(t, tc, []uint64{1})

	// Decode, corrupt the first decision record, re-encode.
	jr, err := journal.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	tampered := false
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, jr.Meta())
	for _, r := range recs {
		if !tampered && r.Kind == journal.KindDecision {
			r.SampleMean += 0.25
			tampered = true
		}
		jw.Record(r)
	}
	if !tampered {
		t.Fatal("journal had no decision records to tamper with")
	}

	jr2, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Replay(jr2, tc.factory)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical() {
		t.Fatal("replay verifier accepted a tampered journal")
	}
}

// TestReplayJournalIdenticalAcrossGOMAXPROCS re-records the same
// configuration under GOMAXPROCS=1 and under the default setting: the
// journals must be byte-identical, pinning that scheduler parallelism
// cannot leak into the virtual-time event order.
func TestReplayJournalIdenticalAcrossGOMAXPROCS(t *testing.T) {
	tc := replayCases()[1] // SARAA, the paper's headline algorithm
	seeds := []uint64{7, 11}

	def := recordReplications(t, tc, seeds)

	prev := runtime.GOMAXPROCS(1)
	single := recordReplications(t, tc, seeds)
	runtime.GOMAXPROCS(prev)

	if !bytes.Equal(def, single) {
		t.Fatalf("journal bytes differ between GOMAXPROCS=%d (%d bytes) and GOMAXPROCS=1 (%d bytes)",
			prev, len(def), len(single))
	}
}

// TestKernelJournaling smoke-tests the verbose kernel layer: with
// JournalKernel attached the journal carries scheduled/fired records
// and still replays cleanly (replay ignores kernel records).
func TestKernelJournaling(t *testing.T) {
	tc := replayCases()[0]
	det, err := tc.factory()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "replay_test"})
	m, err := ecommerce.New(ecommerce.Config{
		ArrivalRate: 3.0, Transactions: 500, Seed: 5,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	m.Journal(jw)
	m.JournalKernel(jw)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	if jw.Count(journal.KindSimScheduled) == 0 || jw.Count(journal.KindSimFired) == 0 {
		t.Fatalf("kernel journaling recorded no kernel events: scheduled=%d fired=%d",
			jw.Count(journal.KindSimScheduled), jw.Count(journal.KindSimFired))
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Replay(jr, tc.factory)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Fatalf("replay of kernel-journaled run diverged: %v", rep.Mismatch.Error())
	}
}
