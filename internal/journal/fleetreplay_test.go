package journal

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/xrand"
)

// fleetFactory builds the reference detectors the fleet replay tests
// verify against: two classes, one per detector family with averaging.
func fleetFactory(class string) (core.Detector, error) {
	switch class {
	case "sraa":
		return core.NewSRAA(core.SRAAConfig{
			SampleSize: 2, Buckets: 3, Depth: 2,
			Baseline: core.Baseline{Mean: 5, StdDev: 1},
		})
	case "saraa":
		return core.NewSARAA(core.SARAAConfig{
			InitialSampleSize: 4, Buckets: 3, Depth: 2,
			Baseline: core.Baseline{Mean: 5, StdDev: 1},
		})
	}
	return nil, fmt.Errorf("unknown class %q", class)
}

// writeFleetJournal records an interleaved two-class fleet run: streams
// open, observe in round-robin, one closes mid-run, and every evaluated
// decision is journaled next to its observation — the shape the fleet
// engine produces.
func writeFleetJournal(t *testing.T, jw *Writer) {
	t.Helper()
	classes := []string{"sraa", "saraa", "sraa"}
	dets := make([]core.Detector, len(classes))
	for i, class := range classes {
		det, err := fleetFactory(class)
		if err != nil {
			t.Fatal(err)
		}
		dets[i] = det
		jw.StreamOpen(0, uint64(i+1), class)
	}
	rng := xrand.NewStream(99, 1)
	now := 1.0
	for round := 0; round < 50; round++ {
		for i, det := range dets {
			if det == nil {
				continue
			}
			// Push values above the mean often enough to walk the buckets.
			v := 5 + 2*rng.Float64()
			jw.StreamObserve(now, uint64(i+1), v)
			d := det.Observe(v)
			if d.Evaluated || d.Triggered {
				var in core.Internals
				if instr, ok := det.(core.Instrumented); ok {
					in = instr.Internals()
				}
				jw.StreamDecision(now, uint64(i+1), d, in, round%7 == 0, 0)
			}
			now += 0.25
		}
		if round == 30 {
			jw.StreamClose(now, 2)
			dets[1] = nil
		}
	}
	if err := jw.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
}

func TestReplayFleetIdentical(t *testing.T) {
	for _, format := range []Format{FormatBinary, FormatJSONL} {
		t.Run(format.String(), func(t *testing.T) {
			var buf bytes.Buffer
			var jw *Writer
			if format == FormatBinary {
				jw = NewWriter(&buf, Meta{CreatedBy: "fleetreplay_test"})
			} else {
				jw = NewJSONWriter(&buf, Meta{CreatedBy: "fleetreplay_test"})
			}
			writeFleetJournal(t, jw)
			jr, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("NewReader: %v", err)
			}
			report, err := ReplayFleet(jr, fleetFactory)
			if err != nil {
				t.Fatalf("ReplayFleet: %v", err)
			}
			if !report.Identical() {
				t.Fatalf("fleet replay diverged: %v", report.Mismatch)
			}
			if report.Streams != 3 || report.Closes != 1 {
				t.Errorf("streams=%d closes=%d, want 3 and 1", report.Streams, report.Closes)
			}
			if report.Observations == 0 || report.Decisions == 0 {
				t.Errorf("replay fed no work: %+v", report)
			}
		})
	}
}

func TestReplayFleetDetectsTampering(t *testing.T) {
	var buf bytes.Buffer
	jw := NewWriter(&buf, Meta{})
	writeFleetJournal(t, jw)
	jr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one decision's trigger flag and rewrite the journal.
	tampered := false
	var out bytes.Buffer
	tw := NewWriter(&out, Meta{})
	for _, r := range recs {
		if !tampered && r.Kind == KindStreamDecision && r.Evaluated {
			r.Triggered = !r.Triggered
			tampered = true
		}
		tw.Record(r)
	}
	if !tampered {
		t.Fatal("journal carried no decision to tamper with")
	}
	jr2, err := NewReader(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	report, err := ReplayFleet(jr2, fleetFactory)
	if err != nil {
		t.Fatal(err)
	}
	if report.Identical() {
		t.Fatal("fleet replay accepted a tampered journal")
	}
}

func TestReplayFleetRejectsMalformedStreams(t *testing.T) {
	cases := map[string]func(jw *Writer){
		"double open": func(jw *Writer) {
			jw.StreamOpen(0, 1, "sraa")
			jw.StreamOpen(0, 1, "sraa")
		},
		"observe unopened": func(jw *Writer) {
			jw.StreamObserve(0, 1, 5)
		},
		"close unopened": func(jw *Writer) {
			jw.StreamClose(0, 1)
		},
	}
	for name, write := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			jw := NewWriter(&buf, Meta{})
			write(jw)
			jr, err := NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			report, err := ReplayFleet(jr, fleetFactory)
			if err != nil {
				t.Fatal(err)
			}
			if report.Identical() {
				t.Fatal("malformed stream structure replayed as identical")
			}
		})
	}
}

func TestWriterStreamEmittersDoNotAllocate(t *testing.T) {
	jw := NewWriter(io.Discard, Meta{})
	jw.StreamOpen(0, 1, "sraa")
	// Warm the scratch buffer.
	jw.StreamObserve(0, 1, 5)
	d := core.Decision{Evaluated: true, SampleMean: 5, Target: 6, Level: 1, Fill: 1}
	in := core.Internals{SampleSize: 2}
	if avg := testing.AllocsPerRun(200, func() {
		jw.StreamObserve(1, 1, 5.5)
		jw.StreamDecision(1, 1, d, in, false, 0)
	}); avg != 0 {
		t.Errorf("stream emitters allocate %.1f times per observe+decision, want 0", avg)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
}
