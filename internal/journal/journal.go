// Package journal is the flight recorder of this repository: an
// append-only event journal that records every simulation event,
// detector evaluation and control action with a virtual timestamp, a
// sequence number and a typed payload, so the causal chain behind every
// rejuvenation decision — heap growth, GC stall, response-time
// excursion, bucket walk, trigger — survives the run that produced it.
//
// Two codecs share one record model. The binary codec is the production
// format: length-prefixed little-endian records with a zero-allocation
// encode path, so recording never perturbs the simulation or the
// benchmarks that time it. The JSON-lines codec is the debug format:
// one object per line, greppable and jq-able. Readers auto-detect the
// codec from the first bytes of the stream.
//
// On top of the codec the package provides deterministic replay
// (replay.go): a journal plus the detector specification reconstructs
// the exact detector state trajectory, and Replay asserts that the
// replayed decision stream is byte-identical to the recorded one. The
// analysis layer (analyze.go) extracts trigger timelines, per-phase
// statistics and journal diffs for the cmd/rejuvtrace CLI.
package journal

import (
	"encoding/json"
	"fmt"
)

// Format discriminates the two codecs of the journal.
type Format int

// Journal codecs. Binary is the production format; JSONL is the
// greppable debug format. Readers auto-detect from the stream head.
const (
	// FormatBinary is the length-prefixed little-endian codec.
	FormatBinary Format = iota
	// FormatJSONL is the one-JSON-object-per-line debug codec.
	FormatJSONL
)

// String returns the format's flag-value spelling ("bin" or "jsonl").
func (f Format) String() string {
	switch f {
	case FormatBinary:
		return "bin"
	case FormatJSONL:
		return "jsonl"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Kind identifies the typed payload of one record.
type Kind byte

// Record kinds. Zero is invalid so a zeroed record is detectably empty.
const (
	// KindRepStart marks the beginning of one replication: the detector
	// is fresh and the virtual clock restarts.
	KindRepStart Kind = iota + 1
	// KindObserve is one observation of the monitored metric fed to the
	// detector (a completed transaction's response time, or a timed
	// request in production).
	KindObserve
	// KindDecision is one evaluated detector decision, with the detector
	// internals captured immediately after the step.
	KindDecision
	// KindReset is an externally initiated detector reset (the model's
	// post-rejuvenation reset, or Monitor.Reset).
	KindReset
	// KindRejuvenation is the control action: the system was rejuvenated,
	// killing the recorded number of in-flight transactions.
	KindRejuvenation
	// KindGCStart marks the onset of a stop-the-world full GC stall.
	KindGCStart
	// KindGCEnd marks the end of a full GC stall.
	KindGCEnd
	// KindSimScheduled is a DES kernel event pushed onto the queue; the
	// payload carries the virtual time it is scheduled to fire at.
	KindSimScheduled
	// KindSimFired is a DES kernel event whose handler ran.
	KindSimFired
	// KindSimCancelled is a DES kernel event removed before firing.
	KindSimCancelled
	// KindFault is an injected or detected telemetry fault: a corrupted
	// observation rejected by hygiene, a value altered by the fault
	// injector, a dropped or duplicated sample, a detected probe stall.
	// Class names the fault; Value carries the observation involved.
	KindFault
	// KindActStart marks the start of one rejuvenation action execution
	// by an Actuator.
	KindActStart
	// KindActAttempt is one attempt of a rejuvenation action: Attempt is
	// the 1-based attempt number, OK its outcome, Backoff the delay (in
	// seconds) scheduled before the next attempt (0 when none follows),
	// and Class the error text on failure.
	KindActAttempt
	// KindActGiveUp is the terminal escalation: the Actuator exhausted
	// its retry budget. Attempt carries the total attempts made and
	// Class the last error text.
	KindActGiveUp
	// KindStreamOpen marks a fleet stream coming under monitoring: Stream
	// is the stream id, Class the detector class it was opened with.
	KindStreamOpen
	// KindStreamClose marks a fleet stream leaving monitoring; Stream is
	// the stream id.
	KindStreamClose
	// KindStreamObserve is one observation on a fleet stream: Stream is
	// the stream id, Value the observed metric.
	KindStreamObserve
	// KindStreamDecision is one evaluated detector decision on a fleet
	// stream: Stream is the stream id and the decision fields mirror
	// KindDecision exactly, so fleet replay shares the KindDecision byte
	// layout (appendDecisionFields).
	KindStreamDecision
	// KindRebaseline marks a committed workload-shift rebaseline on a
	// single-detector journal: the shift layer classified a change as a
	// workload shift, relearned, and BaseMean/BaseStdDev carry the new
	// baseline now in effect. Replay verifies them bitwise against the
	// reference detector's re-estimated baseline.
	KindRebaseline
	// KindStreamRebaseline is the fleet form of KindRebaseline: Stream is
	// the stream id, BaseMean/BaseStdDev the committed baseline.
	KindStreamRebaseline
	// KindSchedEnqueue marks a rejuvenation request admitted to the
	// scheduler queue: Stream is the replica id, Level/Fill the detector
	// state that raised it, Value the computed urgency, and TriggerID the
	// triggering decision it descends from (0 when none).
	KindSchedEnqueue
	// KindSchedDefer marks a request the scheduler considered but did not
	// start: Class names the reason ("deadline", "capacity-floor",
	// "budget", "saturated"), Level/Fill carry the request's detector
	// state, and Attempt the number of times it has now been deferred.
	KindSchedDefer
	// KindSchedCoalesce marks a duplicate request merged into an already
	// queued one (Class "duplicate") or a starved request escalated to the
	// front of a saturated queue (Class "starved"): Level/Fill are the
	// merged detector state, Attempt the total requests coalesced into the
	// entry, Value the entry's refreshed urgency.
	KindSchedCoalesce
	// KindSchedStart marks a rejuvenation action dispatched by the
	// scheduler: Class names the Kijima tier ("minor", "medium", "major"),
	// Value the rollback fraction ρ, and Backoff the pause (seconds) the
	// action will hold the replica down.
	KindSchedStart
	// KindSchedComplete marks a dispatched action finishing: OK reports
	// whether the replica returned to service (false re-enters the queue).
	KindSchedComplete
	// KindSchedQuarantine marks a replica quarantined after its actuator
	// gave up: Class carries the terminal error text. The replica's
	// capacity share is shed from the scheduler's budget accounting.
	KindSchedQuarantine
	// KindSchedReadmit marks a quarantined replica re-admitted to
	// scheduling after recovery.
	KindSchedReadmit
)

// kindNames maps kinds to their stable JSONL spellings.
var kindNames = [...]string{
	KindRepStart:         "rep_start",
	KindObserve:          "observe",
	KindDecision:         "decision",
	KindReset:            "reset",
	KindRejuvenation:     "rejuvenation",
	KindGCStart:          "gc_start",
	KindGCEnd:            "gc_end",
	KindSimScheduled:     "sim_scheduled",
	KindSimFired:         "sim_fired",
	KindSimCancelled:     "sim_cancelled",
	KindFault:            "fault",
	KindActStart:         "act_start",
	KindActAttempt:       "act_attempt",
	KindActGiveUp:        "act_give_up",
	KindStreamOpen:       "stream_open",
	KindStreamClose:      "stream_close",
	KindStreamObserve:    "stream_observe",
	KindStreamDecision:   "stream_decision",
	KindRebaseline:       "rebaseline",
	KindStreamRebaseline: "stream_rebaseline",
	KindSchedEnqueue:     "sched_enqueue",
	KindSchedDefer:       "sched_defer",
	KindSchedCoalesce:    "sched_coalesce",
	KindSchedStart:       "sched_start",
	KindSchedComplete:    "sched_complete",
	KindSchedQuarantine:  "sched_quarantine",
	KindSchedReadmit:     "sched_readmit",
}

// maxKind is the highest valid kind; the decoder rejects anything above.
const maxKind = KindSchedReadmit

// Valid reports whether k is a known record kind.
func (k Kind) Valid() bool { return k >= KindRepStart && k <= maxKind }

// String returns the stable name of the kind ("observe", "decision", ...).
func (k Kind) String() string {
	if k.Valid() {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", byte(k))
}

// MarshalJSON renders the kind by name, keeping JSONL journals readable.
func (k Kind) MarshalJSON() ([]byte, error) {
	if !k.Valid() {
		return nil, fmt.Errorf("journal: cannot marshal invalid kind %d", byte(k))
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the name form written by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for kk := KindRepStart; kk <= maxKind; kk++ {
		if kindNames[kk] == name {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("journal: unknown record kind %q", name)
}

// Meta is the journal header: everything needed to interpret and replay
// the records that follow. The writer serializes it as JSON in both
// codecs (the header is written once, so readability beats compactness).
type Meta struct {
	// CreatedBy names the producing tool ("rejuvsim", "httpserver", ...).
	CreatedBy string `json:"created_by,omitempty"`
	// Detector is the human-readable detector label, e.g.
	// "SRAA (n=2, K=5, D=3)".
	Detector string `json:"detector,omitempty"`
	// Spec is an opaque, tool-defined detector specification that lets
	// replay reconstruct the detector; cmd/rejuvsim stores the JSON
	// encoding of its experiment.Spec here.
	Spec string `json:"spec,omitempty"`
	// Seed is the base random seed of the run.
	Seed uint64 `json:"seed,omitempty"`
	// Notes carries free-form key=value annotations (load, txns, ...).
	Notes string `json:"notes,omitempty"`
}

// Record is one journal entry. It is the union of all payloads; Kind
// selects which fields are meaningful. Seq is assigned by the writer and
// strictly increases within a journal; Time is the virtual (or, for
// production monitors, monotonic wall-clock) timestamp in seconds.
type Record struct {
	// Kind selects the payload.
	Kind Kind `json:"kind"`
	// Seq is the journal-wide sequence number, starting at 0.
	Seq uint64 `json:"seq"`
	// Time is the timestamp in seconds.
	Time float64 `json:"t"`

	// Rep is the 1-based replication number (KindRepStart).
	Rep int `json:"rep,omitempty"`
	// Seed is the replication's random seed (KindRepStart).
	Seed uint64 `json:"seed,omitempty"`
	// Stream is the replication's random stream (KindRepStart), the
	// fleet stream id (KindStreamOpen, KindStreamClose, KindStreamObserve,
	// KindStreamDecision) or the scheduler replica id (the KindSched*
	// kinds).
	Stream uint64 `json:"stream,omitempty"`

	// Value is the observed metric (KindObserve, KindStreamObserve).
	Value float64 `json:"value,omitempty"`

	// Evaluated, Triggered and Suppressed mirror the decision flags
	// (KindDecision, KindStreamDecision). Suppressed is set by the
	// cooldown layer, not the detector, and is excluded from replay byte
	// comparison.
	Evaluated  bool `json:"evaluated,omitempty"`
	Triggered  bool `json:"triggered,omitempty"`
	Suppressed bool `json:"suppressed,omitempty"`
	// SampleMean, Target, Level, Fill, SampleSize, SampleFill and
	// Statistic capture the decision and the detector internals after
	// the step (KindDecision, KindStreamDecision).
	SampleMean float64 `json:"sample_mean,omitempty"`
	Target     float64 `json:"target,omitempty"`
	Level      int     `json:"level,omitempty"`
	Fill       int     `json:"fill,omitempty"`
	SampleSize int     `json:"sample_size,omitempty"`
	SampleFill int     `json:"sample_fill,omitempty"`
	Statistic  float64 `json:"statistic,omitempty"`

	// Killed is the number of in-flight transactions a rejuvenation
	// terminated (KindRejuvenation).
	Killed int `json:"killed,omitempty"`

	// HeapMB is the remaining heap at a GC boundary (KindGCStart,
	// KindGCEnd).
	HeapMB float64 `json:"heap_mb,omitempty"`

	// EventTime is the virtual time a kernel event was scheduled to fire
	// at (KindSimScheduled) or the QoS deadline horizon declared with a
	// scheduler request (KindSchedEnqueue, KindSchedCoalesce).
	EventTime float64 `json:"event_time,omitempty"`

	// Class names a fault class (KindFault), a fleet detector class
	// (KindStreamOpen), a scheduler defer/coalesce reason or Kijima tier
	// (KindSchedDefer, KindSchedCoalesce, KindSchedStart) or carries an
	// error text (KindActAttempt, KindActGiveUp, KindSchedQuarantine).
	// The binary codec caps it at MaxClassLen bytes; writers truncate
	// longer strings.
	Class string `json:"class,omitempty"`

	// Attempt is the 1-based attempt number (KindActAttempt), the total
	// attempts made (KindActGiveUp), the deferral count (KindSchedDefer)
	// or the coalesced request count (KindSchedCoalesce).
	Attempt int `json:"attempt,omitempty"`
	// OK is the attempt outcome (KindActAttempt, KindSchedComplete).
	OK bool `json:"ok,omitempty"`
	// Backoff is the delay in seconds scheduled before the next attempt
	// (KindActAttempt; 0 when no retry follows) or the pause a dispatched
	// rejuvenation action holds the replica down (KindSchedStart).
	Backoff float64 `json:"backoff,omitempty"`

	// BaseMean and BaseStdDev are the committed baseline of a workload-
	// shift rebaseline (KindRebaseline, KindStreamRebaseline).
	BaseMean   float64 `json:"base_mean,omitempty"`
	BaseStdDev float64 `json:"base_sd,omitempty"`

	// TriggerID correlates a triggering decision with everything it
	// caused: the id minted at decision time (core.TriggerID) appears on
	// the KindDecision/KindStreamDecision record that fired and on every
	// KindActStart/KindActAttempt/KindActGiveUp record of the actuation
	// it provoked. 0 means "no trigger id" — a non-triggering decision,
	// an actuation started outside a trigger, or a record written before
	// ids existed. The binary codec appends it as an optional trailing
	// field only when non-zero, so journals without ids decode unchanged
	// and replay byte comparison (which covers the decision fields only)
	// is unaffected.
	TriggerID uint64 `json:"trigger_id,omitempty"`
}

// magic identifies a binary journal stream; the version byte follows it.
var magic = [4]byte{'R', 'J', 'N', 'L'}

// Version is the binary codec version written after the magic.
const Version = 1

// MaxRecordLen bounds one binary record, protecting readers against
// corrupt or hostile length prefixes.
const MaxRecordLen = 1 << 20

// MaxMetaLen bounds the serialized header, for the same reason.
const MaxMetaLen = 1 << 20

// MaxClassLen bounds the Class string of a record; writers truncate and
// the binary decoder rejects anything longer.
const MaxClassLen = 256
