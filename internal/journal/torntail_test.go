package journal

import (
	"bytes"
	"strings"
	"testing"
)

// journalBytes writes the shared sample journal in the given codec.
func journalBytes(t *testing.T, format Format) []byte {
	t.Helper()
	var buf bytes.Buffer
	var jw *Writer
	if format == FormatBinary {
		jw = NewWriter(&buf, sampleMeta)
	} else {
		jw = NewJSONWriter(&buf, sampleMeta)
	}
	writeSample(jw)
	if err := jw.Err(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	return buf.Bytes()
}

// readTolerant decodes data with TolerateTornTail and returns the
// records plus the number of torn bytes.
func readTolerant(t *testing.T, data []byte) ([]Record, int) {
	t.Helper()
	jr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	jr.TolerateTornTail()
	recs, err := jr.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll under TolerateTornTail: %v", err)
	}
	return recs, jr.TornBytes()
}

// TestTolerateTornTailBinary truncates a binary journal at every byte
// boundary inside its final record and asserts that the tolerant reader
// salvages every complete record, reports the exact number of dropped
// bytes, and that the strict reader still errors.
func TestTolerateTornTailBinary(t *testing.T) {
	full := journalBytes(t, FormatBinary)
	complete := wantSample()

	// Locate the start of the final record by re-reading all but it.
	jr, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := jr.ReadAll(); err != nil {
		t.Fatalf("ReadAll of intact journal: %v", err)
	}

	// Find the boundary: encode all records but the last and measure.
	var head bytes.Buffer
	hw := NewWriter(&head, sampleMeta)
	for _, r := range complete[:len(complete)-1] {
		hw.Record(r)
	}
	if err := hw.Err(); err != nil {
		t.Fatalf("head writer: %v", err)
	}
	boundary := head.Len()
	if boundary >= len(full) {
		t.Fatalf("boundary %d not inside journal of %d bytes", boundary, len(full))
	}

	for cut := boundary + 1; cut < len(full); cut++ {
		recs, torn := readTolerant(t, full[:cut])
		if len(recs) != len(complete)-1 {
			t.Fatalf("cut at %d: salvaged %d records, want %d", cut, len(recs), len(complete)-1)
		}
		if want := cut - boundary; torn != want {
			t.Errorf("cut at %d: TornBytes = %d, want %d", cut, torn, want)
		}
		// The strict reader must still refuse the same truncation.
		sr, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("strict NewReader: %v", err)
		}
		if _, err := sr.ReadAll(); err == nil {
			t.Errorf("cut at %d: strict reader accepted a torn journal", cut)
		}
	}
}

// TestTolerateTornTailCleanEOF asserts that an intact journal reports
// zero torn bytes under the tolerant reader.
func TestTolerateTornTailCleanEOF(t *testing.T) {
	for _, format := range []Format{FormatBinary, FormatJSONL} {
		recs, torn := readTolerant(t, journalBytes(t, format))
		if torn != 0 {
			t.Errorf("%v: TornBytes = %d on an intact journal", format, torn)
		}
		if len(recs) != len(wantSample()) {
			t.Errorf("%v: read %d records, want %d", format, len(recs), len(wantSample()))
		}
	}
}

// TestTolerateTornTailJSONL truncates a JSONL journal mid-final-line and
// asserts salvage; a corrupt line that IS newline-terminated must still
// error even under the tolerant reader, because that is corruption, not
// a crash mid-write.
func TestTolerateTornTailJSONL(t *testing.T) {
	full := journalBytes(t, FormatJSONL)
	complete := wantSample()
	lines := bytes.SplitAfter(full, []byte("\n"))
	// lines ends with an empty slice after the final terminator.
	last := lines[len(lines)-2]
	boundary := len(full) - len(last)

	for cut := boundary + 1; cut < len(full); cut++ {
		// Skip cut points that leave a parseable prefix (possible when
		// the truncation only removes trailing whitespace/newline).
		recs, torn := readTolerant(t, full[:cut])
		if torn > 0 {
			if len(recs) != len(complete)-1 {
				t.Fatalf("cut at %d: salvaged %d records, want %d", cut, len(recs), len(complete)-1)
			}
			if want := cut - boundary; torn != want {
				t.Errorf("cut at %d: TornBytes = %d, want %d", cut, torn, want)
			}
		}
	}

	// A terminated but corrupt line is not a torn tail.
	corrupt := append(append([]byte{}, full...), []byte("{\"kind\":\"nope\"}\n")...)
	jr, err := NewReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	jr.TolerateTornTail()
	if _, err := jr.ReadAll(); err == nil {
		t.Error("tolerant reader accepted a newline-terminated corrupt record")
	}
}

// TestTolerateTornTailDoesNotMaskMidStreamCorruption asserts that a
// full-length record with a garbage payload still errors: tolerance is
// strictly about truncation at EOF.
func TestTolerateTornTailDoesNotMaskMidStreamCorruption(t *testing.T) {
	full := journalBytes(t, FormatBinary)
	// Flip the kind byte of the final record to an invalid value while
	// keeping the length prefix intact; find it by writing the head.
	var head bytes.Buffer
	hw := NewWriter(&head, sampleMeta)
	complete := wantSample()
	for _, r := range complete[:len(complete)-1] {
		hw.Record(r)
	}
	corrupted := append([]byte{}, full...)
	// The byte after the final record's uvarint length prefix is its
	// kind. The last record (ActGiveUp) payload is short, so its length
	// prefix is one byte.
	corrupted[head.Len()+1] = 0xEE
	jr, err := NewReader(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	jr.TolerateTornTail()
	_, err = jr.ReadAll()
	if err == nil || !strings.Contains(err.Error(), "invalid record kind") {
		t.Errorf("tolerant reader did not surface mid-record corruption: %v", err)
	}
}
