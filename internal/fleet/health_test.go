package fleet

import (
	"sync"
	"testing"
	"time"

	"rejuv/internal/metrics"
)

// agingEngine builds a small engine and drives one stream's detector
// up the bucket ladder while the rest stay healthy.
func agingEngine(t *testing.T, topK int) (*Engine, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	e, err := New(Config{
		Classes:    testClasses(),
		Shards:     4,
		Now:        newFakeClock(time.Millisecond).Now,
		Registry:   reg,
		HealthTopK: topK,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	// Stream 1 plus nine healthy peers, all web-sraa (n=2, K=3, D=2).
	for i := 1; i <= 10; i++ {
		if err := e.OpenStream(StreamID(i), "web-sraa"); err != nil {
			t.Fatal(err)
		}
	}
	// Six hot observations on stream 1: three evaluated exceedances;
	// the third overflows the full depth-2 bucket -> level 1, fill 0.
	hot := make([]StreamObs, 6)
	for i := range hot {
		hot[i] = StreamObs{Stream: 1, Value: 50}
	}
	e.ObserveBatch(hot)
	// Healthy traffic on the peers: means stay below target.
	calm := make([]StreamObs, 0, 18)
	for i := 2; i <= 10; i++ {
		calm = append(calm, StreamObs{Stream: StreamID(i), Value: 4}, StreamObs{Stream: StreamID(i), Value: 4})
	}
	e.ObserveBatch(calm)
	return e, reg
}

func TestHealthSnapshotRanksAgingStreams(t *testing.T) {
	e, reg := agingEngine(t, 0)
	snap := e.HealthSnapshot()

	if snap.OpenStreams != 10 {
		t.Fatalf("open streams = %d, want 10", snap.OpenStreams)
	}
	if len(snap.Top) == 0 {
		t.Fatal("no top aging streams")
	}
	top := snap.Top[0]
	if top.Stream != 1 || top.Level != 1 || top.Fill != 0 {
		t.Fatalf("top stream = %+v, want stream 1 at level 1 fill 0", top)
	}
	if top.Count != 3 || top.Err != 0 {
		t.Fatalf("top count = %d err = %d, want 3 exact aging signals", top.Count, top.Err)
	}
	if top.Class != "web-sraa" || top.LastMean != 50 {
		t.Fatalf("top metadata = %+v", top)
	}

	// Level histogram: nine healthy streams at level 0, stream 1 at
	// level 1 with an exemplar pointing at it.
	if len(snap.Levels) != 2 {
		t.Fatalf("levels = %+v, want exactly levels 0 and 1", snap.Levels)
	}
	l0, l1 := snap.Levels[0], snap.Levels[1]
	if l0.Level != 0 || l0.Streams != 9 {
		t.Fatalf("level 0 bucket = %+v, want 9 streams", l0)
	}
	if l1.Level != 1 || l1.Streams != 1 || l1.MeanFill != 0 {
		t.Fatalf("level 1 bucket = %+v, want 1 stream at mean fill 0", l1)
	}
	if l1.Exemplar == nil || l1.Exemplar.Stream != 1 || l1.Exemplar.Value != 50 {
		t.Fatalf("level 1 exemplar = %+v, want stream 1 mean 50", l1.Exemplar)
	}
	if l0.Exemplar != nil {
		t.Fatalf("level 0 carries an exemplar: %+v", l0.Exemplar)
	}

	// Class stats line up with the engine counters.
	if snap.Classes[0].Name != "web-sraa" || snap.Classes[0].Open != 10 {
		t.Fatalf("class health = %+v", snap.Classes[0])
	}
	if snap.Classes[0].Observations != 24 {
		t.Fatalf("class observations = %d, want 24", snap.Classes[0].Observations)
	}
	if snap.Queue.Capacity != 1024 || snap.Queue.Dropped != 0 {
		t.Fatalf("queue health = %+v", snap.Queue)
	}

	// Self telemetry is folded into the registry gauges.
	if snap.Self.Goroutines <= 0 || snap.Self.HeapAllocMB <= 0 {
		t.Fatalf("self telemetry empty: %+v", snap.Self)
	}
	if g := reg.Gauge("fleet_self_goroutines", ""); g.Value() != float64(snap.Self.Goroutines) {
		t.Fatalf("fleet_self_goroutines gauge = %v, want %d", g.Value(), snap.Self.Goroutines)
	}
}

func TestHealthSnapshotDisabled(t *testing.T) {
	e, _ := agingEngine(t, -1)
	snap := e.HealthSnapshot()
	if len(snap.Top) != 0 {
		t.Fatalf("disabled health still ranks streams: %+v", snap.Top)
	}
	// Counters and the level histogram survive without the sketch.
	if snap.OpenStreams != 10 || len(snap.Levels) != 2 {
		t.Fatalf("snapshot = open %d levels %+v", snap.OpenStreams, snap.Levels)
	}
	for _, lb := range snap.Levels {
		if lb.Exemplar != nil {
			t.Fatalf("disabled health captured an exemplar: %+v", lb)
		}
	}
}

func TestHealthSnapshotDropsClosedStreams(t *testing.T) {
	e, _ := agingEngine(t, 0)
	if err := e.CloseStream(1); err != nil {
		t.Fatal(err)
	}
	snap := e.HealthSnapshot()
	for _, s := range snap.Top {
		if s.Stream == 1 {
			t.Fatalf("closed stream 1 still in top view: %+v", snap.Top)
		}
	}
}

// TestHealthSnapshotConcurrentWithIngest is the snapshot-vs-drain
// contention gate: under -race, HealthSnapshot and CheckStalls must
// interleave freely with concurrent ObserveBatch without a data race
// on the sketch, exemplar arrays or slot state.
func TestHealthSnapshotConcurrentWithIngest(t *testing.T) {
	e, err := New(Config{
		Classes:    testClasses(),
		Shards:     4,
		Now:        newFakeClock(time.Microsecond).Now,
		MaxSilence: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const streams = 64
	for i := 1; i <= streams; i++ {
		if err := e.OpenStream(StreamID(i), testClasses()[i%3].Name); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		batch := make([]StreamObs, 128)
		for r := 0; r < rounds; r++ {
			for i := range batch {
				v := 4.0
				if i%7 == 0 {
					v = 50 // keep the sketch busy while snapshots read it
				}
				batch[i] = StreamObs{Stream: StreamID(i%streams + 1), Value: v}
			}
			e.ObserveBatch(batch)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			e.HealthSnapshot()
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			e.CheckStalls()
		}
	}()
	wg.Wait()
	if snap := e.HealthSnapshot(); snap.OpenStreams != streams {
		t.Fatalf("open streams = %d, want %d", snap.OpenStreams, streams)
	}
}
