package fleet

import (
	"fmt"
	"math"

	"rejuv/internal/core"
)

// Family selects which of the paper's detector algorithms a stream
// class runs. The fleet engine implements each family directly over
// struct-of-arrays state; the transition rules are shared with the
// pointer-based detectors in internal/core (BucketStep,
// AcceleratedSampleSize), so the two implementations cannot diverge.
type Family int

// Detector families a stream class may use.
const (
	// FamilySRAA is the static rejuvenation algorithm with averaging
	// (paper Fig. 6): block means against targets mu + N*sigma.
	FamilySRAA Family = iota
	// FamilySARAA is the sampling-acceleration rejuvenation algorithm
	// with averaging (paper Fig. 7): targets mu + N*sigma/sqrt(n) with
	// the sample size shrinking as degradation deepens.
	FamilySARAA
	// FamilyCLTA is the central-limit-theorem algorithm (paper Fig. 8):
	// a single block mean above mu + q*sigma/sqrt(n) triggers.
	FamilyCLTA
)

// String returns the family's class-spec spelling.
func (f Family) String() string {
	switch f {
	case FamilySRAA:
		return "sraa"
	case FamilySARAA:
		return "saraa"
	case FamilyCLTA:
		return "clta"
	}
	return fmt.Sprintf("Family(%d)", int(f))
}

// ClassConfig declares one stream class: a named detector configuration
// shared by every stream opened under it. Classes are fixed at engine
// construction, which is what keeps the per-stream state small — a
// stream stores a class index and its mutable detector state, never a
// detector object — and the metrics label space bounded (class name,
// never stream id).
type ClassConfig struct {
	// Name identifies the class; it labels metrics series and is
	// journaled with every KindStreamOpen record, so it must be unique
	// within the engine and should stay low-cardinality and stable.
	Name string
	// Family selects the detector algorithm.
	Family Family
	// SampleSize is the observations-per-block n (the initial n_orig for
	// FamilySARAA, whose sample size shrinks as degradation deepens).
	SampleSize int
	// Buckets is K, the number of buckets (FamilySRAA, FamilySARAA).
	Buckets int
	// Depth is D, the bucket depth (FamilySRAA, FamilySARAA).
	Depth int
	// Quantile is the standard-normal quantile q of the CLTA target
	// mu + q*sigma/sqrt(n) (FamilyCLTA only).
	Quantile float64
	// Baseline is the normal-behaviour (mean, standard deviation) of the
	// monitored metric.
	Baseline core.Baseline
	// Shift, when non-nil, layers online baseline re-estimation under
	// every stream of the class: workload shifts rebaseline the stream's
	// detector state (targets and sample sizes recomputed from the
	// re-estimated mean and deviation, journaled as
	// KindStreamRebaseline) while software aging triggers as usual. The
	// per-stream transition rule is core.ShiftState, shared verbatim
	// with the Rebase wrapper, so replay against Rebase-wrapped
	// reference detectors stays byte-identical.
	Shift *core.ShiftConfig
}

// Validate reports whether the class is usable, by validating the
// corresponding core detector configuration.
func (c ClassConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("fleet: class needs a name")
	}
	if c.Shift != nil {
		if err := c.Shift.WithDefaults().Validate(); err != nil {
			return fmt.Errorf("fleet: class %q shift layer: %w", c.Name, err)
		}
	}
	switch c.Family {
	case FamilySRAA:
		return core.SRAAConfig{
			SampleSize: c.SampleSize, Buckets: c.Buckets, Depth: c.Depth,
			Baseline: c.Baseline,
		}.Validate()
	case FamilySARAA:
		return core.SARAAConfig{
			InitialSampleSize: c.SampleSize, Buckets: c.Buckets, Depth: c.Depth,
			Baseline: c.Baseline,
		}.Validate()
	case FamilyCLTA:
		return core.CLTAConfig{
			SampleSize: c.SampleSize, Quantile: c.Quantile,
			Baseline: c.Baseline,
		}.Validate()
	}
	return fmt.Errorf("fleet: class %q has unknown family %d", c.Name, int(c.Family))
}

// Detector constructs the reference pointer-based detector for this
// class (Rebase-wrapped when the class has a Shift layer). Fleet replay
// verification uses it as the factory: feeding a stream's journaled
// observations through this detector must reproduce the engine's
// journaled decisions byte for byte, which is the proof that the
// struct-of-arrays fast path implements the same algorithm.
func (c ClassConfig) Detector() (core.Detector, error) {
	build := func(base core.Baseline) (core.Detector, error) {
		switch c.Family {
		case FamilySRAA:
			return core.NewSRAA(core.SRAAConfig{
				SampleSize: c.SampleSize, Buckets: c.Buckets, Depth: c.Depth,
				Baseline: base,
			})
		case FamilySARAA:
			return core.NewSARAA(core.SARAAConfig{
				InitialSampleSize: c.SampleSize, Buckets: c.Buckets, Depth: c.Depth,
				Baseline: base,
			})
		case FamilyCLTA:
			return core.NewCLTA(core.CLTAConfig{
				SampleSize: c.SampleSize, Quantile: c.Quantile,
				Baseline: base,
			})
		}
		return nil, fmt.Errorf("fleet: class %q has unknown family %d", c.Name, int(c.Family))
	}
	if c.Shift == nil {
		return build(c.Baseline)
	}
	return core.NewRebase(*c.Shift, c.Baseline, build)
}

// class is the compiled, immutable form of a ClassConfig: every
// threshold the hot path needs, precomputed per bucket level with the
// exact floating-point expressions the core detectors evaluate, so the
// drain loop never touches math.Sqrt and still produces bit-identical
// targets.
type class struct {
	cfg    ClassConfig
	family Family
	k      int32 // bucket count K; 0 for CLTA
	depth  int32 // bucket depth D; 0 for CLTA
	// initSize is the sample size a fresh stream starts with.
	initSize int32
	// sizes[level] is the sample size in effect at each bucket level
	// (constant for SRAA, the accelerated schedule for SARAA; one entry
	// for CLTA).
	sizes []int32
	// targets[level] is the trigger threshold compared against a block
	// mean completed at that level (one entry for CLTA). Streams of a
	// shift class use these only until their first rebaseline; after
	// that the drain loop recomputes the target from the stream's
	// re-estimated baseline with the same expression.
	targets []float64
	// shift marks a class with a workload-shift layer; shiftCfg is the
	// defaults-applied configuration its streams step with.
	shift    bool
	shiftCfg core.ShiftConfig
	// sqrtN[level] is math.Sqrt of sizes[level], precomputed so the
	// per-stream target recompute of a shift class divides by the exact
	// square roots the core detectors evaluate without calling
	// math.Sqrt on the hot path (FamilySARAA per level; one entry for
	// FamilyCLTA; unused by FamilySRAA).
	sqrtN []float64
}

// compileClass precomputes the per-level schedule of one class.
func compileClass(cfg ClassConfig) (class, error) {
	if err := cfg.Validate(); err != nil {
		return class{}, err
	}
	c := class{cfg: cfg, family: cfg.Family, initSize: int32(cfg.SampleSize)}
	if cfg.Shift != nil {
		c.shift = true
		c.shiftCfg = cfg.Shift.WithDefaults()
	}
	mean, sd := cfg.Baseline.Mean, cfg.Baseline.StdDev
	switch cfg.Family {
	case FamilySRAA:
		c.k, c.depth = int32(cfg.Buckets), int32(cfg.Depth)
		c.sizes = make([]int32, cfg.Buckets)
		c.targets = make([]float64, cfg.Buckets)
		for lvl := 0; lvl < cfg.Buckets; lvl++ {
			c.sizes[lvl] = int32(cfg.SampleSize)
			c.targets[lvl] = mean + float64(lvl)*sd
		}
	case FamilySARAA:
		c.k, c.depth = int32(cfg.Buckets), int32(cfg.Depth)
		c.sizes = make([]int32, cfg.Buckets)
		c.targets = make([]float64, cfg.Buckets)
		for lvl := 0; lvl < cfg.Buckets; lvl++ {
			n := core.AcceleratedSampleSize(cfg.SampleSize, cfg.Buckets, lvl)
			c.sizes[lvl] = int32(n)
			// The exact expression core.SARAA.Target evaluates, so the
			// precomputed threshold is bit-identical to the reference.
			c.targets[lvl] = mean + float64(lvl)*sd/math.Sqrt(float64(n))
		}
	case FamilyCLTA:
		c.sizes = []int32{int32(cfg.SampleSize)}
		c.targets = []float64{mean + cfg.Quantile*sd/math.Sqrt(float64(cfg.SampleSize))}
	}
	if c.shift {
		c.sqrtN = make([]float64, len(c.sizes))
		for lvl, n := range c.sizes {
			c.sqrtN[lvl] = math.Sqrt(float64(n))
		}
	}
	return c, nil
}
