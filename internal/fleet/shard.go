package fleet

import (
	"fmt"
	"sync"

	"rejuv/internal/core"
	"rejuv/internal/health"
)

// shard owns one stripe of the fleet's detector state, laid out as
// struct-of-arrays: parallel slices indexed by slot, so the drain loop
// touches a handful of adjacent arrays instead of chasing a pointer per
// stream. Everything below mu is guarded by it; slots of closed streams
// are recycled through the free list so churn does not grow the arrays.
type shard struct {
	mu sync.Mutex

	index  map[StreamID]int32 // stream id -> slot; guarded by mu
	free   []int32            // recycled slots; guarded by mu
	opened int                // live slot count; guarded by mu

	// Parallel per-slot detector state.
	ids    []StreamID          // stream id of each slot; guarded by mu
	cls    []int32             // class index of each slot; guarded by mu
	live   []bool              // slot occupancy; guarded by mu
	obs    []uint64            // observations consumed by the stream; guarded by mu
	wsize  []int32             // current sample size n; guarded by mu
	wcount []int32             // observations in the current block; guarded by mu
	wsum   []float64           // running block sum; guarded by mu
	bfill  []int32             // ball count d of the current bucket; guarded by mu
	blevel []int32             // bucket pointer N; guarded by mu
	hyg    []core.HygieneState // per-stream hygiene memory; guarded by mu
	cool   []core.Cooldown     // per-stream trigger cooldown; guarded by mu
	dog    []core.Watchdog     // per-stream staleness watchdog; guarded by mu
	shift  []core.ShiftState   // per-stream workload-shift layer (shift classes); guarded by mu

	// Health observability state, nil/empty when Config.HealthTopK is
	// negative. The sketch tallies the shard's aging signals; the ex*
	// arrays hold one exemplar per bucket level (the last stream
	// evaluated at that level, with its sample mean and capture time),
	// indexed by level.
	sketch  *health.Sketch // top-K aging sketch; guarded by mu
	exID    []uint64       // exemplar stream id per level; guarded by mu
	exValue []float64      // exemplar sample mean per level; guarded by mu
	exNanos []int64        // exemplar capture time per level; guarded by mu
	exSet   []bool         // exemplar present per level; guarded by mu
}

// open registers a stream in the shard. Callers hold s.mu.
//
//lint:holds mu
func (s *shard) open(id StreamID, ci int32, c *class, cfg Config) error {
	if i, ok := s.index[id]; ok && s.live[i] {
		return fmt.Errorf("fleet: stream %d is already open", uint64(id))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.ids))
		s.ids = append(s.ids, 0)
		s.cls = append(s.cls, 0)
		s.live = append(s.live, false)
		s.obs = append(s.obs, 0)
		s.wsize = append(s.wsize, 0)
		s.wcount = append(s.wcount, 0)
		s.wsum = append(s.wsum, 0)
		s.bfill = append(s.bfill, 0)
		s.blevel = append(s.blevel, 0)
		s.hyg = append(s.hyg, core.HygieneState{})
		s.cool = append(s.cool, core.Cooldown{})
		s.dog = append(s.dog, core.Watchdog{})
		s.shift = append(s.shift, core.ShiftState{})
	}
	s.ids[slot] = id
	s.cls[slot] = ci
	s.live[slot] = true
	s.obs[slot] = 0
	s.wsize[slot] = c.initSize
	s.wcount[slot] = 0
	s.wsum[slot] = 0
	s.bfill[slot] = 0
	s.blevel[slot] = 0
	s.hyg[slot] = core.HygieneState{}
	s.cool[slot] = core.NewCooldown(cfg.Cooldown)
	s.dog[slot] = core.NewWatchdog(cfg.MaxSilence)
	s.shift[slot] = core.NewShiftState(c.cfg.Baseline)
	s.index[id] = slot
	s.opened++
	return nil
}

// close removes a stream from the shard, recycling its slot. Callers
// hold s.mu.
//
//lint:holds mu
func (s *shard) close(id StreamID) error {
	i, ok := s.index[id]
	if !ok || !s.live[i] {
		return fmt.Errorf("fleet: stream %d is not open", uint64(id))
	}
	s.live[i] = false
	delete(s.index, id)
	s.free = append(s.free, i)
	s.opened--
	return nil
}

// drainLocked steps every batch item addressed to this shard through
// its stream's detector state, writing one result per item. idxs are
// indices into batch, grouped by the caller's counting sort; res is the
// batch-parallel result array. Callers hold s.mu, so the whole segment
// is processed under one lock acquisition.
//
// This loop is the cost the fleet pays per observation: array reads and
// writes, one map lookup, the shared core transition functions. It must
// never allocate — the hotpath contract below is enforced by rejuvlint
// across everything reachable from here and pinned at runtime by
// TestObserveBatchDoesNotAllocate.
//
//lint:hotpath
//lint:holds mu
func (s *shard) drainLocked(classes []class, hygienePolicy core.Hygiene, nowNanos int64, batch []StreamObs, idxs []int32, res []result) {
	for _, bi := range idxs {
		o := &batch[bi]
		r := &res[bi]
		*r = result{}
		i, ok := s.index[o.Stream]
		if !ok || !s.live[i] {
			r.flags = resUnknown
			continue
		}
		s.obs[i]++
		r.classIdx = s.cls[i]
		r.obs = s.obs[i]
		s.dog[i].Feed(nowNanos)
		v, admitted, intercepted := s.hyg[i].Admit(hygienePolicy, o.Value)
		if intercepted {
			r.flags |= resIntercepted
		}
		if !admitted {
			continue
		}
		r.flags |= resAdmitted
		r.value = v

		c := &classes[s.cls[i]]
		if c.shift {
			// The workload-shift layer steps before the sample window,
			// exactly as core.Rebase steps before its wrapped detector:
			// relearning observations never reach detector state, and a
			// committed rebaseline resets it the way Rebase rebuilds its
			// inner detector from the new baseline.
			switch s.shift[i].Step(c.shiftCfg, v) {
			case core.ShiftRelearning:
				r.sampleSize = s.wsize[i]
				continue
			case core.ShiftRebaselined:
				s.wsum[i], s.wcount[i] = 0, 0
				s.bfill[i], s.blevel[i] = 0, 0
				s.wsize[i] = c.initSize
				r.sampleSize = s.wsize[i]
				b := s.shift[i].Base
				r.baseMean, r.baseSD = b.Mean, b.StdDev
				r.flags |= resRebaselined
				continue
			}
		}

		// Sample window: identical arithmetic to core's sampleWindow.add.
		s.wsum[i] += v
		s.wcount[i]++
		if s.wcount[i] < s.wsize[i] {
			r.sampleSize = s.wsize[i]
			continue
		}
		mean := s.wsum[i] / float64(s.wsize[i])
		s.wsum[i] = 0
		s.wcount[i] = 0

		var d core.Decision
		switch c.family {
		case FamilySRAA:
			target := c.targets[s.blevel[i]]
			if c.shift {
				// The stream's re-estimated baseline, with the exact
				// expression core.SRAA.Target evaluates.
				b := &s.shift[i].Base
				target = b.Mean + float64(s.blevel[i])*b.StdDev
			}
			nf, nl, ev := core.BucketStep(int(c.k), int(c.depth), int(s.bfill[i]), int(s.blevel[i]), mean > target)
			s.bfill[i], s.blevel[i] = int32(nf), int32(nl)
			d = core.Decision{
				Triggered: ev == core.BucketTrigger, Evaluated: true,
				SampleMean: mean, Target: target, Level: nl, Fill: nf,
			}
		case FamilySARAA:
			target := c.targets[s.blevel[i]]
			if c.shift {
				// core.SARAA.Target divides by math.Sqrt of the level's
				// sample size; c.sqrtN holds those exact square roots.
				b := &s.shift[i].Base
				target = b.Mean + float64(s.blevel[i])*b.StdDev/c.sqrtN[s.blevel[i]]
			}
			nf, nl, ev := core.BucketStep(int(c.k), int(c.depth), int(s.bfill[i]), int(s.blevel[i]), mean > target)
			s.bfill[i], s.blevel[i] = int32(nf), int32(nl)
			switch ev {
			case core.BucketOverflow, core.BucketUnderflow:
				// The accelerated schedule: deeper buckets use smaller
				// samples. The block is already empty, exactly like
				// core.SARAA's resize on a completed block.
				s.wsize[i] = c.sizes[nl]
			case core.BucketTrigger:
				s.wsize[i] = c.sizes[0]
			}
			d = core.Decision{
				Triggered: ev == core.BucketTrigger, Evaluated: true,
				SampleMean: mean, Target: target, Level: nl, Fill: nf,
			}
		case FamilyCLTA:
			target := c.targets[0]
			if c.shift {
				b := &s.shift[i].Base
				target = b.Mean + c.cfg.Quantile*b.StdDev/c.sqrtN[0]
			}
			d = core.Decision{
				Triggered: mean > target, Evaluated: true,
				SampleMean: mean, Target: target,
			}
		}
		r.d = d
		r.sampleSize = s.wsize[i]
		r.flags |= resEvaluated
		if d.Triggered && c.shift {
			// Rejuvenation restores capacity without moving the
			// workload: a trigger releases the aging latch and restarts
			// moment tracking, exactly as core.Rebase does.
			s.shift[i].NoteTrigger()
		}
		if d.Triggered {
			if s.cool[i].Active(nowNanos) {
				r.flags |= resSuppressed
			} else {
				s.cool[i].Open(nowNanos)
			}
		}

		// Health maintenance, still under the shard lock. Aging signals
		// (a trigger, a raised bucket level, a target exceedance) feed
		// the top-K sketch; healthy streams pay one nil check and one
		// comparison. The exemplar arrays keep the last stream evaluated
		// at each raised level, so the level histogram can point at a
		// concrete journal-greppable stream.
		if s.sketch != nil {
			lvl := int(s.blevel[i])
			if d.Triggered || lvl > 0 || mean > d.Target {
				s.sketch.Update(uint64(o.Stream), mean, nowNanos)
			}
			if lvl > 0 && lvl < len(s.exSet) {
				s.exID[lvl] = uint64(o.Stream)
				s.exValue[lvl] = mean
				s.exNanos[lvl] = nowNanos
				s.exSet[lvl] = true
			}
		}
	}
}
