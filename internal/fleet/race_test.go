//go:build race

package fleet

// raceEnabled reports that the race detector is instrumenting this
// build. sync.Pool deliberately drops items under the race detector, so
// allocation pins are meaningless there.
const raceEnabled = true
