package fleet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rejuv/internal/core"
	"rejuv/internal/journal"
	"rejuv/internal/xrand"
)

// shiftTestClasses is testClasses with the workload-shift layer enabled
// on every family.
func shiftTestClasses() []ClassConfig {
	classes := testClasses()
	for i := range classes {
		classes[i].Shift = &core.ShiftConfig{}
	}
	return classes
}

// shiftClassFactory adapts shiftTestClasses to the replay factory
// signature: the reference detectors come out Rebase-wrapped.
func shiftClassFactory(class string) (core.Detector, error) {
	for _, c := range shiftTestClasses() {
		if c.Name == class {
			return c.Detector()
		}
	}
	return nil, fmt.Errorf("unknown class %q", class)
}

// runShiftWorkload drives a non-stationary workload through the engine:
// a steady regime around the configured baseline, an abrupt upward step
// (a workload shift the change-point layer should rebaseline through),
// then a slow ramp on top of the new regime (software aging the wrapped
// detectors should condemn).
func runShiftWorkload(t testing.TB, e *Engine, streams, batchSize int) {
	t.Helper()
	classes := shiftTestClasses()
	for i := 0; i < streams; i++ {
		if err := e.OpenStream(StreamID(i+1), classes[i%len(classes)].Name); err != nil {
			t.Fatalf("open stream %d: %v", i+1, err)
		}
	}
	rng := xrand.NewStream(23, 5)
	batch := make([]StreamObs, batchSize)
	next := 0
	const rounds = 120
	for r := 0; r < rounds; r++ {
		for i := range batch {
			id := StreamID(next%streams + 1)
			next++
			v := 4 + 2*rng.Float64() // steady: mean 5 on baseline (5, 1)
			if r >= 40 {
				v += 8 // abrupt step: z ~ 8, an unmistakable shift
			}
			if r >= 60 {
				v += float64(r-60) * 0.1 // slow ramp: aging on the new regime
			}
			batch[i] = StreamObs{Stream: id, Value: v}
		}
		e.ObserveBatch(batch)
	}
}

// TestFleetShiftMatchesRebaseReference is the struct-of-arrays
// equivalence proof for shift classes: a journal written across a
// workload shift and a subsequent aging ramp must replay byte-identically
// through Rebase-wrapped reference detectors, rebaselines included.
func TestFleetShiftMatchesRebaseReference(t *testing.T) {
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "fleet_shift_test"})
	e, err := New(Config{
		Classes: shiftTestClasses(),
		Shards:  4,
		Now:     newFakeClock(50 * time.Millisecond).Now,
		Journal: jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	runShiftWorkload(t, e, 12, 48)
	if err := jw.Err(); err != nil {
		t.Fatalf("journal writer: %v", err)
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	report, err := journal.ReplayFleet(jr, shiftClassFactory)
	if err != nil {
		t.Fatalf("ReplayFleet: %v", err)
	}
	if !report.Identical() {
		t.Fatalf("shift fleet diverged from Rebase reference: %v", report.Mismatch)
	}
	if report.Rebaselines == 0 {
		t.Fatal("workload shift committed no rebaselines")
	}
	if report.Decisions == 0 || report.Triggers == 0 {
		t.Fatalf("workload exercised too little: %+v", report)
	}
	st := e.Stats()
	if st.Rebaselines != uint64(report.Rebaselines) {
		t.Fatalf("engine counted %d rebaselines, journal holds %d", st.Rebaselines, report.Rebaselines)
	}
	t.Logf("replayed %d streams, %d observations, %d decisions, %d triggers, %d rebaselines",
		report.Streams, report.Observations, report.Decisions, report.Triggers, report.Rebaselines)
}

// TestFleetShiftJournalDeterministicAcrossShards extends the batching
// contract to shift classes: rebaseline records ride the same
// batch-order fan-in, so the journal stays byte-identical for any shard
// count.
func TestFleetShiftJournalDeterministicAcrossShards(t *testing.T) {
	journalFor := func(shards int) []byte {
		var buf bytes.Buffer
		jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "fleet_shift_test"})
		e, err := New(Config{
			Classes: shiftTestClasses(),
			Shards:  shards,
			Now:     newFakeClock(10 * time.Millisecond).Now,
			Journal: jw,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		runShiftWorkload(t, e, 10, 40)
		return buf.Bytes()
	}
	want := journalFor(1)
	for _, shards := range []int{2, 8} {
		if got := journalFor(shards); !bytes.Equal(got, want) {
			t.Errorf("shift journal with %d shards differs from 1-shard journal (%d vs %d bytes)",
				shards, len(got), len(want))
		}
	}
}

// TestFleetShiftSuppressesFalseTriggersOnPureShift is the behavioural
// claim of the shift layer at fleet scale: across a pure workload shift
// a shift class rebaselines instead of triggering, while the same
// workload through a shift-less class condemns the streams (the vacuity
// guard: the shift is big enough to trigger on).
func TestFleetShiftSuppressesFalseTriggersOnPureShift(t *testing.T) {
	run := func(withShift bool) Stats {
		classes := []ClassConfig{{
			Name: "web", Family: FamilySRAA,
			SampleSize: 2, Buckets: 3, Depth: 2,
			Baseline: core.Baseline{Mean: 5, StdDev: 1},
		}}
		if withShift {
			classes[0].Shift = &core.ShiftConfig{}
		}
		e, err := New(Config{Classes: classes, Shards: 2, Now: newFakeClock(time.Millisecond).Now})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		for i := 1; i <= 4; i++ {
			if err := e.OpenStream(StreamID(i), "web"); err != nil {
				t.Fatal(err)
			}
		}
		batch := make([]StreamObs, 16)
		for r := 0; r < 60; r++ {
			for i := range batch {
				v := 5.0
				if r >= 20 {
					v = 13 // pure step; post-shift regime is flat and healthy
				}
				batch[i] = StreamObs{Stream: StreamID(i%4 + 1), Value: v}
			}
			e.ObserveBatch(batch)
		}
		return e.Stats()
	}
	bare := run(false)
	if bare.Triggers == 0 {
		t.Fatal("vacuity: the step never triggers a shift-less class")
	}
	shifted := run(true)
	if shifted.Triggers != 0 {
		t.Fatalf("shift class raised %d false triggers across a pure workload shift", shifted.Triggers)
	}
	if shifted.Rebaselines == 0 {
		t.Fatal("shift class never rebaselined across the step")
	}
}

// TestObserveBatchDoesNotAllocateWithShift extends the zero-allocation
// pin to shift classes: the per-observation ShiftState step, the
// relearn window and the per-stream target recompute must all stay on
// the allocation-free path.
func TestObserveBatchDoesNotAllocateWithShift(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector, defeating the pin")
	}
	e, err := New(Config{Classes: shiftTestClasses(), Now: newFakeClock(time.Millisecond).Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const streams = 64
	for i := 0; i < streams; i++ {
		if err := e.OpenStream(StreamID(i+1), shiftTestClasses()[i%3].Name); err != nil {
			t.Fatal(err)
		}
	}
	rng := xrand.NewStream(42, 1)
	batch := make([]StreamObs, 256)
	for i := range batch {
		batch[i] = StreamObs{Stream: StreamID(rng.Intn(streams) + 1), Value: 4 + rng.Float64()}
	}
	e.ObserveBatch(batch) // warmup: grow the pooled scratch
	// Step every stream through a shift so relearn windows and
	// rebaseline commits land inside the measured iterations too.
	for i := range batch {
		batch[i].Value += 8
	}
	avg := testing.AllocsPerRun(200, func() {
		e.ObserveBatch(batch)
	})
	if avg != 0 {
		t.Errorf("shift ObserveBatch allocates %.1f times per batch, want 0", avg)
	}
}

// TestShiftIngestConcurrentWithHealthAndStalls is the race gate for the
// shift path: shifting ingestion (rebaselines committing under the
// shard locks) must interleave freely with HealthSnapshot and
// CheckStalls under -race.
func TestShiftIngestConcurrentWithHealthAndStalls(t *testing.T) {
	e, err := New(Config{
		Classes:    shiftTestClasses(),
		Shards:     4,
		Now:        newFakeClock(time.Microsecond).Now,
		MaxSilence: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const streams = 64
	for i := 1; i <= streams; i++ {
		if err := e.OpenStream(StreamID(i), shiftTestClasses()[i%3].Name); err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		batch := make([]StreamObs, 128)
		for r := 0; r < rounds; r++ {
			for i := range batch {
				v := 4.0
				if r >= rounds/4 {
					v = 13 // shift mid-run so rebaselines race the readers
				}
				batch[i] = StreamObs{Stream: StreamID(i%streams + 1), Value: v}
			}
			e.ObserveBatch(batch)
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			e.HealthSnapshot()
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			e.CheckStalls()
		}
	}()
	wg.Wait()
	if st := e.Stats(); st.Rebaselines == 0 {
		t.Fatalf("concurrent shifting workload committed no rebaselines: %+v", st)
	}
}

// TestFleetShiftBaselineTelemetry checks the per-class shift telemetry
// surfaced to operators: after a workload shift commits rebaselines,
// the health snapshot reports the count and the last committed (µ, σ)
// for every shifted class, and leaves unshifted classes zeroed.
func TestFleetShiftBaselineTelemetry(t *testing.T) {
	e, err := New(Config{
		Classes: shiftTestClasses(),
		Shards:  2,
		Now:     newFakeClock(50 * time.Millisecond).Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	runShiftWorkload(t, e, 12, 48)

	snap := e.HealthSnapshot()
	shifted := 0
	for _, c := range snap.Classes {
		if c.Rebaselined == 0 {
			if c.BaselineMean != 0 || c.BaselineSD != 0 {
				t.Errorf("class %s reports a baseline (%v, %v) without rebaselines",
					c.Name, c.BaselineMean, c.BaselineSD)
			}
			continue
		}
		shifted++
		// The workload steps from mean ~5 to ~13 before the ramp; the
		// committed baseline must reflect the post-shift regime.
		if c.BaselineMean < 10 {
			t.Errorf("class %s committed baseline mean %v, want post-shift regime (> 10)",
				c.Name, c.BaselineMean)
		}
		if !(c.BaselineSD > 0) {
			t.Errorf("class %s committed baseline sd %v, want positive", c.Name, c.BaselineSD)
		}
	}
	if shifted == 0 {
		t.Fatal("no class committed a rebaseline")
	}
}
