// Package fleet is the multi-tenant monitoring engine: it runs the
// paper's rejuvenation detectors over very many observation streams at
// once — one web tier is one stream; a fleet is hundreds of thousands —
// behind one batched ingestion call.
//
// The public Monitor (package rejuv) is the one-stream instantiation of
// the detection pipeline: one lock, one detector object, one cooldown.
// That shape does not scale to a fleet: a detector object per stream
// scatters state across the heap, a lock per observation serializes
// ingestion, and a metrics series per stream melts the registry. The
// fleet engine changes all three axes at once:
//
//   - Sharding. Streams live in lock-striped shards (a power of two,
//     sized from GOMAXPROCS by default), each owning a contiguous
//     struct-of-arrays block of detector state, so concurrent batches
//     contend per shard, not per fleet, and a shard's drain loop walks
//     adjacent memory.
//
//   - Batching. ObserveBatch partitions a batch by shard with one
//     counting sort, drains each shard's portion under a single lock
//     acquisition, and fans results back in original batch order for
//     journaling and trigger delivery. The per-observation cost is a
//     few array writes; the locks and the clock are amortized across
//     the batch.
//
//   - Bounded cardinality. All streams share one journal writer and one
//     metrics registry. Metrics are labeled by stream class and shard,
//     never by stream id; the exact id appears only in journal records,
//     which are built for unbounded cardinality.
//
// Detector state is struct-of-arrays: parallel slices of sample-window
// sums, bucket fills and levels, hygiene memories, cooldowns and
// watchdogs, indexed by slot. The transition rules are the shared core
// primitives (core.BucketStep, core.AcceleratedSampleSize, the guard
// state machines), and journal replay (journal.ReplayFleet) against the
// pointer-based reference detectors proves the two implementations
// byte-identical — see DESIGN §14 for the memory model, the batching
// contract and the determinism story.
package fleet

import (
	"fmt"
	"math/bits"
	"runtime"
	"strconv"
	"sync"
	"time"

	"rejuv/internal/core"
	"rejuv/internal/health"
	"rejuv/internal/journal"
	"rejuv/internal/metrics"
)

// StreamID identifies one monitored observation stream. Ids are chosen
// by the caller (a host index, a hashed tenant key); the engine treats
// them as opaque and spreads them over shards with a mixing hash, so
// sequential ids do not pile onto one shard.
type StreamID uint64

// Trigger is one rejuvenation trigger raised by a fleet stream,
// delivered through the engine's bounded trigger queue.
type Trigger struct {
	// ID is the deterministic correlation id minted at decision time
	// (core.TriggerID over the stream id and its observation ordinal).
	// The same id appears on the journal's stream-decision record and on
	// every actuation record the trigger provokes, so rejuvtrace can
	// stitch the observation -> decision -> actuation chain back together.
	ID uint64
	// Stream is the stream whose detector triggered.
	Stream StreamID
	// Class is the stream's class name.
	Class string
	// Time is the batch timestamp the trigger was decided at.
	Time time.Time
	// Decision is the detector decision that fired it.
	Decision core.Decision
	// Observations is how many observations the stream had consumed when
	// the trigger fired.
	Observations uint64
}

// Config configures an Engine.
type Config struct {
	// Classes declares the stream classes. Required, fixed at
	// construction; every stream is opened under one of them.
	Classes []ClassConfig
	// Shards is the number of lock stripes; it is rounded up to a power
	// of two. Zero means one shard per GOMAXPROCS core.
	Shards int
	// Cooldown suppresses a stream's further triggers for this long
	// after one is delivered for it. Zero disables suppression.
	Cooldown time.Duration
	// Hygiene governs non-finite observations before they reach detector
	// state, exactly as in the single-stream Monitor: the zero value
	// rejects them, HygieneClamp substitutes the stream's last admitted
	// value, HygieneOff passes them through.
	Hygiene core.Hygiene
	// MaxSilence arms the per-stream staleness watchdog evaluated by
	// CheckStalls. Zero disables it.
	MaxSilence time.Duration
	// Now supplies the time, read once per ObserveBatch call. Required;
	// the public wrapper defaults it to time.Now, and deterministic
	// harnesses inject a fake.
	Now func() time.Time
	// Journal, when non-nil, records stream lifecycle, every admitted
	// observation and every evaluated decision as stream-tagged records,
	// in batch order. The engine serializes access; the caller owns the
	// writer and its flushing. Hygiene rejections are counted in metrics
	// but not journaled: replay feeds admitted values only, so the
	// decision stream is unaffected.
	Journal *journal.Writer
	// Registry receives the engine's metrics (class- and shard-labeled;
	// see package doc for the cardinality policy). Nil means a private
	// registry, so instrument updates never need nil checks.
	Registry *metrics.Registry
	// QueueDepth bounds the trigger delivery queue. When the queue is
	// full further triggers are counted as dropped rather than blocking
	// ingestion: the fleet premise is that monitoring must never become
	// the fleet's own tail latency. Zero means 1024.
	QueueDepth int
	// OnTrigger, when non-nil, starts a dispatcher goroutine that drains
	// the trigger queue and invokes the callback with panic isolation.
	// When nil the caller drains Triggers itself.
	OnTrigger func(Trigger)
	// HealthTopK sizes the per-shard top-K aging sketch behind
	// HealthSnapshot (the fleet-wide view merges the shards and keeps
	// the K most aged). Zero means the default of 32; negative disables
	// the sketch and exemplar capture entirely, leaving HealthSnapshot
	// with counters and the level histogram only.
	HealthTopK int
}

// Stats is an aggregate snapshot of engine counters; per-class series
// live in the metrics registry.
type Stats struct {
	// Observations counts every batch item addressed to a known stream.
	Observations uint64
	// Triggers counts triggers enqueued for delivery.
	Triggers uint64
	// Suppressed counts triggers eaten by per-stream cooldown windows.
	Suppressed uint64
	// Rebaselines counts committed workload-shift rebaselines across all
	// streams of shift-enabled classes.
	Rebaselines uint64
	// Rejected counts non-finite observations intercepted by hygiene.
	Rejected uint64
	// UnknownStreams counts batch items addressed to streams not open.
	UnknownStreams uint64
	// DroppedTriggers counts triggers lost to a full delivery queue.
	DroppedTriggers uint64
	// TriggerPanics counts panics recovered from the OnTrigger callback.
	TriggerPanics uint64
	// Stalls counts staleness-watchdog trips detected by CheckStalls.
	Stalls uint64
	// OpenStreams is the number of streams currently under monitoring.
	OpenStreams int
}

// baseline is one committed workload-shift baseline: the (µ, σ) pair a
// class's thresholds are currently derived from.
type baseline struct {
	mean, sd float64
}

// Engine is the fleet monitoring engine. All methods are safe for
// concurrent use; the journal determinism guarantee (byte-identical
// journals for any shard count and GOMAXPROCS) holds when one goroutine
// performs the Open/ObserveBatch/Close sequence, because journal records
// are written in call and batch order.
type Engine struct {
	cfg     Config
	classes []class
	byName  map[string]int32

	shards    []shard
	shardMask uint64

	// outMu serializes the ordered output side — journal writes and
	// trigger enqueueing — across ObserveBatch, OpenStream and
	// CloseStream, keeping the journal's record order equal to call
	// order.
	outMu sync.Mutex
	// epoch anchors journal timestamps at the first journaled event.
	epoch time.Time // guarded by outMu
	// lastBase holds, per class, the (µ, σ) committed by the most
	// recent workload-shift rebaseline — surfaced in health snapshots
	// so an operator can see what baseline a class currently answers
	// to. Guarded by outMu, like the journal order it mirrors.
	lastBase []baseline

	pool  sync.Pool // *scratch
	trigs chan Trigger
	quit  chan struct{}
	wg    sync.WaitGroup

	// Per-class instruments, indexed like classes.
	obsTotal  []*metrics.Counter
	trigTotal []*metrics.Counter
	suppTotal []*metrics.Counter
	rejTotal  []*metrics.Counter
	rebTotal  []*metrics.Counter
	// Per-shard open-stream gauges, indexed like shards.
	openGauge []*metrics.Gauge
	// Engine-wide instruments.
	unknownTotal *metrics.Counter
	dropTotal    *metrics.Counter
	panicTotal   *metrics.Counter
	stallTotal   *metrics.Counter

	// healthK is the resolved top-K sketch size (0 when disabled);
	// maxLvl is the deepest bucket level any class can reach, sizing
	// the per-shard exemplar arrays and the snapshot level histogram.
	healthK int
	maxLvl  int
	// selfGauges mirror runtime self-telemetry into the registry at
	// each HealthSnapshot.
	selfGauges *health.SelfGauges
}

// New validates the configuration and returns a running engine. If
// OnTrigger is set, a dispatcher goroutine is started; stop it with
// Close.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("fleet: engine needs at least one stream class")
	}
	if cfg.Now == nil {
		return nil, fmt.Errorf("fleet: engine needs a Now clock (the public wrapper defaults it to time.Now)")
	}
	if cfg.Cooldown < 0 {
		return nil, fmt.Errorf("fleet: cooldown must be non-negative, got %v", cfg.Cooldown)
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = runtime.GOMAXPROCS(0)
	}
	nshards = 1 << bits.Len(uint(nshards-1)) // round up to a power of two
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 1024
	}
	e := &Engine{
		cfg:       cfg,
		byName:    make(map[string]int32, len(cfg.Classes)),
		shards:    make([]shard, nshards),
		shardMask: uint64(nshards - 1),
		trigs:     make(chan Trigger, depth),
		quit:      make(chan struct{}),
	}
	e.classes = make([]class, len(cfg.Classes))
	for i, cc := range cfg.Classes {
		c, err := compileClass(cc)
		if err != nil {
			return nil, err
		}
		if _, dup := e.byName[cc.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate class name %q", cc.Name)
		}
		e.classes[i] = c
		e.byName[cc.Name] = int32(i)
	}
	for i := range e.shards {
		e.shards[i].index = make(map[StreamID]int32)
	}
	for _, c := range e.classes {
		if int(c.k) > e.maxLvl {
			e.maxLvl = int(c.k)
		}
	}
	e.healthK = cfg.HealthTopK
	if e.healthK == 0 {
		e.healthK = 32
	}
	if e.healthK < 0 {
		e.healthK = 0
	}
	if e.healthK > 0 {
		for i := range e.shards {
			s := &e.shards[i]
			s.mu.Lock()
			s.sketch = health.NewSketch(e.healthK)
			s.exID = make([]uint64, e.maxLvl+1)
			s.exValue = make([]float64, e.maxLvl+1)
			s.exNanos = make([]int64, e.maxLvl+1)
			s.exSet = make([]bool, e.maxLvl+1)
			s.mu.Unlock()
		}
	}
	e.pool.New = func() any { return &scratch{} }
	e.register()
	if cfg.OnTrigger != nil {
		e.wg.Add(1)
		go e.dispatch()
	}
	return e, nil
}

// register creates the engine's instruments in the configured registry
// (or a private one), realizing the bounded-cardinality label policy:
// classes and shards are the only label dimensions.
func (e *Engine) register() {
	reg := e.cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n := len(e.classes)
	e.obsTotal = make([]*metrics.Counter, n)
	e.trigTotal = make([]*metrics.Counter, n)
	e.suppTotal = make([]*metrics.Counter, n)
	e.rejTotal = make([]*metrics.Counter, n)
	e.rebTotal = make([]*metrics.Counter, n)
	e.lastBase = make([]baseline, n)
	for i, c := range e.classes {
		l := metrics.Label{Name: "class", Value: c.cfg.Name}
		e.obsTotal[i] = reg.Counter("fleet_observations_total", "observations ingested per stream class", l)
		e.trigTotal[i] = reg.Counter("fleet_triggers_total", "rejuvenation triggers enqueued per stream class", l)
		e.suppTotal[i] = reg.Counter("fleet_suppressed_total", "triggers suppressed by cooldown per stream class", l)
		e.rejTotal[i] = reg.Counter("fleet_rejected_total", "non-finite observations intercepted per stream class", l)
		e.rebTotal[i] = reg.Counter("fleet_rebaselines_total", "workload-shift rebaselines committed per stream class", l)
	}
	e.openGauge = make([]*metrics.Gauge, len(e.shards))
	for i := range e.shards {
		e.openGauge[i] = reg.Gauge("fleet_open_streams", "streams currently monitored per shard",
			metrics.Label{Name: "shard", Value: strconv.Itoa(i)})
	}
	e.unknownTotal = reg.Counter("fleet_unknown_stream_total", "batch items addressed to unopened streams")
	e.dropTotal = reg.Counter("fleet_dropped_triggers_total", "triggers dropped on a full delivery queue")
	e.panicTotal = reg.Counter("fleet_trigger_panics_total", "panics recovered from the OnTrigger callback")
	e.stallTotal = reg.Counter("fleet_stalls_total", "staleness-watchdog trips across all streams")
	e.selfGauges = health.InstrumentSelf(reg)
}

// shardOf maps a stream id to its shard with a splitmix64-style mixing
// hash, so dense sequential ids spread evenly.
func (e *Engine) shardOf(id StreamID) uint64 {
	x := uint64(id)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & e.shardMask
}

// OpenStream brings a stream under monitoring in the named class. The
// slot costs a few dozen bytes of struct-of-arrays state; closed slots
// are recycled, so open/close churn does not grow the shard.
func (e *Engine) OpenStream(id StreamID, className string) error {
	ci, ok := e.byName[className]
	if !ok {
		return fmt.Errorf("fleet: unknown stream class %q", className)
	}
	e.outMu.Lock()
	defer e.outMu.Unlock()
	s := &e.shards[e.shardOf(id)]
	s.mu.Lock()
	err := s.open(id, ci, &e.classes[ci], e.cfg)
	open := s.opened
	s.mu.Unlock()
	if err != nil {
		return err
	}
	e.openGauge[e.shardOf(id)].SetInt(open)
	if jw := e.cfg.Journal; jw != nil {
		now := e.cfg.Now()
		if e.epoch.IsZero() {
			e.epoch = now
		}
		jw.StreamOpen(now.Sub(e.epoch).Seconds(), uint64(id), className)
	}
	return nil
}

// CloseStream removes a stream from monitoring, recycling its slot.
// Pending partial samples are discarded; the stream's contribution to
// class counters remains.
func (e *Engine) CloseStream(id StreamID) error {
	e.outMu.Lock()
	defer e.outMu.Unlock()
	si := e.shardOf(id)
	s := &e.shards[si]
	s.mu.Lock()
	err := s.close(id)
	open := s.opened
	s.mu.Unlock()
	if err != nil {
		return err
	}
	e.openGauge[si].SetInt(open)
	if jw := e.cfg.Journal; jw != nil && !e.epoch.IsZero() {
		jw.StreamClose(e.cfg.Now().Sub(e.epoch).Seconds(), uint64(id))
	}
	return nil
}

// Triggers returns the delivery queue. Drain it when no OnTrigger
// callback is configured; the channel is never closed.
func (e *Engine) Triggers() <-chan Trigger { return e.trigs }

// Stats returns an aggregate snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	var st Stats
	for i := range e.classes {
		st.Observations += e.obsTotal[i].Value()
		st.Triggers += e.trigTotal[i].Value()
		st.Suppressed += e.suppTotal[i].Value()
		st.Rejected += e.rejTotal[i].Value()
		st.Rebaselines += e.rebTotal[i].Value()
	}
	st.UnknownStreams = e.unknownTotal.Value()
	st.DroppedTriggers = e.dropTotal.Value()
	st.TriggerPanics = e.panicTotal.Value()
	st.Stalls = e.stallTotal.Value()
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		st.OpenStreams += s.opened
		s.mu.Unlock()
	}
	return st
}

// CheckStalls evaluates every stream's staleness watchdog against the
// current clock and returns how many streams are stalled. Each
// transition into the stalled state is counted once; the next
// observation on the stream clears it. With MaxSilence zero this is a
// cheap no-op sweep. The sweep walks slot arrays, never maps, so its
// cost is linear and its order deterministic.
func (e *Engine) CheckStalls() int {
	if e.cfg.MaxSilence <= 0 {
		return 0
	}
	nowNanos := e.cfg.Now().UnixNano()
	stalled := 0
	var tripped uint64
	for i := range e.shards {
		s := &e.shards[i]
		s.mu.Lock()
		for slot := range s.live {
			if !s.live[slot] {
				continue
			}
			if trip, _ := s.dog[slot].Check(nowNanos); trip {
				tripped++
			}
			if s.dog[slot].Stalled() {
				stalled++
			}
		}
		s.mu.Unlock()
	}
	if tripped > 0 {
		e.stallTotal.Add(tripped)
	}
	return stalled
}

// Close stops the dispatcher goroutine, if one was started, after it
// drains whatever the queue holds. It does not flush the journal — the
// caller owns the writer. The engine must not be used after Close.
func (e *Engine) Close() {
	close(e.quit)
	e.wg.Wait()
}

// dispatch is the trigger dispatcher goroutine: it drains the queue into
// the OnTrigger callback with panic isolation, so one panicking consumer
// cannot kill delivery for the rest of the fleet.
func (e *Engine) dispatch() {
	defer e.wg.Done()
	for {
		select {
		case tr := <-e.trigs:
			e.deliver(tr)
		case <-e.quit:
			// Drain what is already queued, then exit.
			for {
				select {
				case tr := <-e.trigs:
					e.deliver(tr)
				default:
					return
				}
			}
		}
	}
}

// deliver invokes OnTrigger, recovering and counting a panic.
func (e *Engine) deliver(tr Trigger) {
	defer func() {
		if r := recover(); r != nil {
			e.panicTotal.Inc()
		}
	}()
	e.cfg.OnTrigger(tr)
}
