package fleet

import (
	"time"

	"rejuv/internal/core"
)

// StreamObs is one observation addressed to one stream — the unit of
// batched ingestion.
type StreamObs struct {
	// Stream is the target stream id.
	Stream StreamID
	// Value is the observed metric (a response time in seconds).
	Value float64
}

// result is the per-item outcome drainLocked hands to the fan-in pass,
// parallel to the batch.
type result struct {
	d          core.Decision
	obs        uint64  // the stream's observation count after this item
	value      float64 // admitted (post-hygiene) value
	baseMean   float64 // committed baseline mean (resRebaselined)
	baseSD     float64 // committed baseline deviation (resRebaselined)
	classIdx   int32
	sampleSize int32 // sample size in effect after the step
	flags      uint8
}

// result flags.
const (
	// resAdmitted: the value passed hygiene and reached detector state.
	resAdmitted uint8 = 1 << iota
	// resIntercepted: the raw value was non-finite and handled by the
	// hygiene policy.
	resIntercepted
	// resEvaluated: the item completed a sample and stepped the detector.
	resEvaluated
	// resSuppressed: the step triggered inside the cooldown window.
	resSuppressed
	// resUnknown: the stream is not open; the item was dropped.
	resUnknown
	// resRebaselined: the item committed a workload-shift rebaseline on
	// its stream (shift classes only; the item itself is consumed by the
	// shift layer and steps no detector state).
	resRebaselined
)

// scratch is the reusable working memory of one ObserveBatch call,
// pooled so steady-state ingestion allocates nothing. Slices are grown
// to the high-water mark and kept.
type scratch struct {
	start  []int32 // per-shard segment offsets (len shards+1)
	cursor []int32 // per-shard fill cursors during partition
	order  []int32 // batch indices grouped by shard
	res    []result
	cc     []classCounts // per-class metric aggregation
}

// classCounts accumulates one batch's per-class counter increments, so
// the shared metric counters are touched once per class per batch
// instead of once per observation.
type classCounts struct {
	obs, trig, supp, rej, reb uint64
}

// grow sizes the scratch for a batch of n items over nshards shards and
// nclasses classes.
func (sc *scratch) grow(n, nshards, nclasses int) {
	if cap(sc.start) < nshards+1 {
		sc.start = make([]int32, nshards+1)
		sc.cursor = make([]int32, nshards)
	}
	sc.start = sc.start[:nshards+1]
	sc.cursor = sc.cursor[:nshards]
	if cap(sc.order) < n {
		sc.order = make([]int32, n)
		sc.res = make([]result, n)
	}
	sc.order = sc.order[:n]
	sc.res = sc.res[:n]
	if cap(sc.cc) < nclasses {
		sc.cc = make([]classCounts, nclasses)
	}
	sc.cc = sc.cc[:nclasses]
	for i := range sc.cc {
		sc.cc[i] = classCounts{}
	}
}

// ObserveBatch ingests one batch of observations. The batch is
// partitioned by shard with a counting sort (stable, so a stream's
// observations stay in batch order), each shard's segment is drained
// under a single lock acquisition, and the results fan back in in
// original batch order for journaling, metrics and trigger delivery.
// One clock reading timestamps the whole batch.
//
// Items addressed to streams that are not open are counted and dropped.
// Triggers that find the delivery queue full are counted and dropped
// rather than blocking ingestion.
//
// Safe for concurrent use; for a byte-deterministic journal, ingest
// from one goroutine (see the Engine determinism contract).
func (e *Engine) ObserveBatch(batch []StreamObs) {
	if len(batch) == 0 {
		return
	}
	now := e.cfg.Now()
	nowNanos := now.UnixNano()
	sc := e.pool.Get().(*scratch)
	sc.grow(len(batch), len(e.shards), len(e.classes))

	// Counting sort by shard: count, prefix-sum, scatter.
	for i := range sc.cursor {
		sc.cursor[i] = 0
	}
	for i := range batch {
		sc.cursor[e.shardOf(batch[i].Stream)]++
	}
	pos := int32(0)
	for i := range sc.cursor {
		sc.start[i] = pos
		pos += sc.cursor[i]
		sc.cursor[i] = sc.start[i]
	}
	sc.start[len(e.shards)] = pos
	for i := range batch {
		si := e.shardOf(batch[i].Stream)
		sc.order[sc.cursor[si]] = int32(i)
		sc.cursor[si]++
	}

	// Drain each shard's segment under one lock acquisition.
	for si := range e.shards {
		seg := sc.order[sc.start[si]:sc.start[si+1]]
		if len(seg) == 0 {
			continue
		}
		s := &e.shards[si]
		s.mu.Lock()
		s.drainLocked(e.classes, e.cfg.Hygiene, nowNanos, batch, seg, sc.res)
		s.mu.Unlock()
	}

	e.fanIn(now, batch, sc)
	e.pool.Put(sc)
}

// fanIn walks the results in original batch order — the order journal
// determinism is defined over — writing journal records, aggregating
// metrics and enqueueing triggers. It holds outMu so concurrent batches
// and lifecycle calls serialize on the output side only.
func (e *Engine) fanIn(now time.Time, batch []StreamObs, sc *scratch) {
	var unknown, dropped uint64
	jw := e.cfg.Journal
	var t float64
	e.outMu.Lock()
	if jw != nil {
		if e.epoch.IsZero() {
			e.epoch = now
		}
		t = now.Sub(e.epoch).Seconds()
	}
	for i := range batch {
		r := &sc.res[i]
		if r.flags&resUnknown != 0 {
			unknown++
			continue
		}
		cc := &sc.cc[r.classIdx]
		cc.obs++
		if r.flags&resIntercepted != 0 {
			cc.rej++
		}
		if r.flags&resRebaselined != 0 {
			cc.reb++
			e.lastBase[r.classIdx] = baseline{mean: r.baseMean, sd: r.baseSD}
		}
		if r.flags&resAdmitted == 0 {
			continue
		}
		// The trigger id is minted at decision time from inputs that are
		// deterministic across shard counts (stream id, per-stream
		// observation ordinal), so the same workload always yields the
		// same ids regardless of Config.Shards.
		var tid uint64
		if r.d.Triggered {
			tid = core.TriggerID(uint64(batch[i].Stream), r.obs)
		}
		if jw != nil {
			jw.StreamObserve(t, uint64(batch[i].Stream), r.value)
			if r.flags&resRebaselined != 0 {
				jw.StreamRebaseline(t, uint64(batch[i].Stream), r.baseMean, r.baseSD)
			}
			if r.flags&resEvaluated != 0 {
				in := core.Internals{SampleSize: int(r.sampleSize)}
				jw.StreamDecision(t, uint64(batch[i].Stream), r.d, in, r.flags&resSuppressed != 0, tid)
			}
		}
		if r.d.Triggered {
			if r.flags&resSuppressed != 0 {
				cc.supp++
				continue
			}
			cc.trig++
			tr := Trigger{
				ID:           tid,
				Stream:       batch[i].Stream,
				Class:        e.classes[r.classIdx].cfg.Name,
				Time:         now,
				Decision:     r.d,
				Observations: r.obs,
			}
			select {
			case e.trigs <- tr:
			default:
				dropped++
			}
		}
	}
	e.outMu.Unlock()

	for ci := range sc.cc {
		cc := &sc.cc[ci]
		if cc.obs > 0 {
			e.obsTotal[ci].Add(cc.obs)
		}
		if cc.trig > 0 {
			e.trigTotal[ci].Add(cc.trig)
		}
		if cc.supp > 0 {
			e.suppTotal[ci].Add(cc.supp)
		}
		if cc.rej > 0 {
			e.rejTotal[ci].Add(cc.rej)
		}
		if cc.reb > 0 {
			e.rebTotal[ci].Add(cc.reb)
		}
	}
	if unknown > 0 {
		e.unknownTotal.Add(unknown)
	}
	if dropped > 0 {
		e.dropTotal.Add(dropped)
	}
}
