package fleet

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"rejuv/internal/core"
	"rejuv/internal/journal"
	"rejuv/internal/metrics"
	"rejuv/internal/xrand"
)

// testClasses covers all three detector families.
func testClasses() []ClassConfig {
	base := core.Baseline{Mean: 5, StdDev: 1}
	return []ClassConfig{
		{Name: "web-sraa", Family: FamilySRAA, SampleSize: 2, Buckets: 3, Depth: 2, Baseline: base},
		{Name: "db-saraa", Family: FamilySARAA, SampleSize: 6, Buckets: 5, Depth: 3, Baseline: base},
		{Name: "cache-clta", Family: FamilyCLTA, SampleSize: 4, Quantile: 1.96, Baseline: base},
	}
}

// fakeClock is a deterministic test clock advancing a fixed step per
// reading.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func newFakeClock(step time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0), step: step}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// runWorkload opens streams across all classes, feeds deterministic
// batches with occasional churn, and closes half the streams at the
// end. It exercises every engine feature the journal records.
func runWorkload(t *testing.T, e *Engine, streams, rounds, batchSize int) {
	t.Helper()
	classes := testClasses()
	for i := 0; i < streams; i++ {
		if err := e.OpenStream(StreamID(i+1), classes[i%len(classes)].Name); err != nil {
			t.Fatalf("open stream %d: %v", i+1, err)
		}
	}
	rng := xrand.NewStream(7, 3)
	batch := make([]StreamObs, batchSize)
	next := 0
	for r := 0; r < rounds; r++ {
		for i := range batch {
			id := StreamID(next%streams + 1)
			next++
			// Drift upward over the run so buckets fill and triggers fire.
			v := 4 + 3*rng.Float64() + float64(r)*0.05
			if r == rounds/2 && i == 0 {
				v = math.NaN() // exercise hygiene mid-run
			}
			batch[i] = StreamObs{Stream: id, Value: v}
		}
		e.ObserveBatch(batch)
		if r == rounds/3 {
			// Churn: close and reopen one stream mid-run.
			if err := e.CloseStream(1); err != nil {
				t.Fatal(err)
			}
			if err := e.OpenStream(1, classes[0].Name); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < streams/2; i++ {
		if err := e.CloseStream(StreamID(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
}

// classFactory adapts testClasses to the replay factory signature.
func classFactory(class string) (core.Detector, error) {
	for _, c := range testClasses() {
		if c.Name == class {
			return c.Detector()
		}
	}
	return nil, fmt.Errorf("unknown class %q", class)
}

// TestFleetMatchesReferenceDetectors is the struct-of-arrays
// equivalence proof: the journal the engine writes must replay
// byte-identically through the pointer-based core detectors.
func TestFleetMatchesReferenceDetectors(t *testing.T) {
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "fleet_test"})
	e, err := New(Config{
		Classes:  testClasses(),
		Shards:   4,
		Cooldown: 3 * time.Second,
		Now:      newFakeClock(50 * time.Millisecond).Now,
		Journal:  jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	runWorkload(t, e, 30, 60, 64)
	if err := jw.Err(); err != nil {
		t.Fatalf("journal writer: %v", err)
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	report, err := journal.ReplayFleet(jr, classFactory)
	if err != nil {
		t.Fatalf("ReplayFleet: %v", err)
	}
	if !report.Identical() {
		t.Fatalf("fleet diverged from reference detectors: %v", report.Mismatch)
	}
	if report.Decisions == 0 || report.Triggers == 0 {
		t.Fatalf("workload exercised too little: %+v", report)
	}
	t.Logf("replayed %d streams, %d observations, %d decisions, %d triggers",
		report.Streams, report.Observations, report.Decisions, report.Triggers)
}

// TestFleetJournalDeterministicAcrossShards pins the batching contract:
// because journal records are written in batch order during fan-in, the
// journal is byte-identical for any shard count.
func TestFleetJournalDeterministicAcrossShards(t *testing.T) {
	journalFor := func(shards int) []byte {
		var buf bytes.Buffer
		jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "fleet_test"})
		e, err := New(Config{
			Classes:  testClasses(),
			Shards:   shards,
			Cooldown: 2 * time.Second,
			Now:      newFakeClock(10 * time.Millisecond).Now,
			Journal:  jw,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		runWorkload(t, e, 25, 40, 48)
		return buf.Bytes()
	}
	want := journalFor(1)
	for _, shards := range []int{2, 8, 32} {
		if got := journalFor(shards); !bytes.Equal(got, want) {
			t.Errorf("journal with %d shards differs from 1-shard journal (%d vs %d bytes)",
				shards, len(got), len(want))
		}
	}
}

func TestOpenCloseChurnRecyclesSlots(t *testing.T) {
	e, err := New(Config{Classes: testClasses(), Shards: 2, Now: newFakeClock(time.Millisecond).Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Repeatedly open and close the same id set; slot arrays must not grow.
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			if err := e.OpenStream(StreamID(i+1), "web-sraa"); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			if err := e.CloseStream(StreamID(i + 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	slots := 0
	for i := range e.shards {
		slots += len(e.shards[i].ids)
	}
	if slots > 20 {
		t.Errorf("churn grew slot arrays to %d slots for 20 concurrent streams", slots)
	}
	if st := e.Stats(); st.OpenStreams != 0 {
		t.Errorf("OpenStreams = %d after closing everything", st.OpenStreams)
	}
}

func TestOpenStreamErrors(t *testing.T) {
	e, err := New(Config{Classes: testClasses(), Now: newFakeClock(time.Millisecond).Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.OpenStream(1, "no-such-class"); err == nil {
		t.Error("open with unknown class succeeded")
	}
	if err := e.OpenStream(1, "web-sraa"); err != nil {
		t.Fatal(err)
	}
	if err := e.OpenStream(1, "web-sraa"); err == nil {
		t.Error("double open succeeded")
	}
	if err := e.CloseStream(2); err == nil {
		t.Error("closing an unopened stream succeeded")
	}
}

func TestUnknownStreamsCountedAndDropped(t *testing.T) {
	e, err := New(Config{Classes: testClasses(), Now: newFakeClock(time.Millisecond).Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	e.ObserveBatch([]StreamObs{{Stream: 99, Value: 1}, {Stream: 100, Value: 2}})
	st := e.Stats()
	if st.UnknownStreams != 2 {
		t.Errorf("UnknownStreams = %d, want 2", st.UnknownStreams)
	}
	if st.Observations != 0 {
		t.Errorf("Observations = %d for unknown-only batch", st.Observations)
	}
}

func TestHygieneRejectionCounted(t *testing.T) {
	e, err := New(Config{Classes: testClasses(), Now: newFakeClock(time.Millisecond).Now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.OpenStream(1, "web-sraa"); err != nil {
		t.Fatal(err)
	}
	e.ObserveBatch([]StreamObs{
		{Stream: 1, Value: math.NaN()},
		{Stream: 1, Value: math.Inf(1)},
		{Stream: 1, Value: 5},
	})
	st := e.Stats()
	if st.Rejected != 2 {
		t.Errorf("Rejected = %d, want 2", st.Rejected)
	}
	if st.Observations != 3 {
		t.Errorf("Observations = %d, want 3", st.Observations)
	}
}

func TestCooldownSuppressesPerStream(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	e, err := New(Config{
		Classes:  testClasses(),
		Cooldown: time.Hour,
		Now:      clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.OpenStream(1, "cache-clta"); err != nil {
		t.Fatal(err)
	}
	// CLTA n=4, target ~5.98: every completed block of 100s triggers.
	hot := make([]StreamObs, 8)
	for i := range hot {
		hot[i] = StreamObs{Stream: 1, Value: 100}
	}
	e.ObserveBatch(hot) // two completed blocks: first triggers, second suppressed
	st := e.Stats()
	if st.Triggers != 1 || st.Suppressed != 1 {
		t.Errorf("triggers=%d suppressed=%d, want 1 and 1", st.Triggers, st.Suppressed)
	}
}

func TestTriggerDispatchAndPanicIsolation(t *testing.T) {
	clock := newFakeClock(time.Millisecond)
	var mu sync.Mutex
	var got []Trigger
	delivered := make(chan struct{}, 16)
	e, err := New(Config{
		Classes: testClasses(),
		Now:     clock.Now,
		OnTrigger: func(tr Trigger) {
			mu.Lock()
			got = append(got, tr)
			n := len(got)
			mu.Unlock()
			delivered <- struct{}{}
			if n == 1 {
				panic("first consumer panics")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.OpenStream(7, "cache-clta"); err != nil {
		t.Fatal(err)
	}
	hot := make([]StreamObs, 4)
	for i := range hot {
		hot[i] = StreamObs{Stream: 7, Value: 100}
	}
	e.ObserveBatch(hot)
	<-delivered
	e.ObserveBatch(hot) // cooldown zero: triggers again
	<-delivered
	e.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("delivered %d triggers, want 2", len(got))
	}
	if got[0].Stream != 7 || got[0].Class != "cache-clta" || !got[0].Decision.Triggered {
		t.Errorf("first trigger malformed: %+v", got[0])
	}
	if e.Stats().TriggerPanics != 1 {
		t.Errorf("TriggerPanics = %d, want 1", e.Stats().TriggerPanics)
	}
}

func TestTriggerQueueOverflowDrops(t *testing.T) {
	e, err := New(Config{
		Classes:    testClasses(),
		Now:        newFakeClock(time.Millisecond).Now,
		QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 3; i++ {
		if err := e.OpenStream(StreamID(i+1), "cache-clta"); err != nil {
			t.Fatal(err)
		}
	}
	var batch []StreamObs
	for i := 0; i < 3; i++ {
		for k := 0; k < 4; k++ {
			batch = append(batch, StreamObs{Stream: StreamID(i + 1), Value: 100})
		}
	}
	e.ObserveBatch(batch) // three triggers into a depth-1 queue
	st := e.Stats()
	if st.Triggers != 3 {
		t.Errorf("Triggers = %d, want 3", st.Triggers)
	}
	if st.DroppedTriggers != 2 {
		t.Errorf("DroppedTriggers = %d, want 2", st.DroppedTriggers)
	}
	select {
	case tr := <-e.Triggers():
		if !tr.Decision.Triggered {
			t.Error("queued trigger not marked triggered")
		}
	default:
		t.Error("queue empty despite a delivered trigger")
	}
}

func TestCheckStalls(t *testing.T) {
	clock := newFakeClock(0) // manual advance
	e, err := New(Config{
		Classes:    testClasses(),
		MaxSilence: time.Minute,
		Now:        clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 4; i++ {
		if err := e.OpenStream(StreamID(i+1), "web-sraa"); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.CheckStalls(); n != 0 {
		t.Fatalf("stalled before any silence: %d", n)
	}
	// Feed one stream; leave three silent past the deadline.
	e.ObserveBatch([]StreamObs{{Stream: 1, Value: 5}})
	clock.mu.Lock()
	clock.now = clock.now.Add(2 * time.Minute)
	clock.mu.Unlock()
	e.ObserveBatch([]StreamObs{{Stream: 1, Value: 5}})
	if n := e.CheckStalls(); n != 3 {
		t.Errorf("stalled = %d, want 3", n)
	}
	if st := e.Stats(); st.Stalls != 3 {
		t.Errorf("Stalls = %d, want 3", st.Stalls)
	}
	// The next observation clears a stall; re-check trips nothing new.
	e.ObserveBatch([]StreamObs{{Stream: 2, Value: 5}})
	if n := e.CheckStalls(); n != 2 {
		t.Errorf("stalled after feeding stream 2 = %d, want 2", n)
	}
}

func TestMetricsCardinalityBounded(t *testing.T) {
	reg := metrics.NewRegistry()
	e, err := New(Config{
		Classes:  testClasses(),
		Shards:   4,
		Now:      newFakeClock(time.Millisecond).Now,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Open very many streams: the series count must not scale with them.
	for i := 0; i < 500; i++ {
		if err := e.OpenStream(StreamID(i+1), "web-sraa"); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("stream_id")) {
		t.Error("exposition contains a stream_id label; ids belong in the journal only")
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	// 4 class-labeled families × 3 classes + 4 shard gauges + 4 engine
	// counters plus HELP/TYPE lines: far under 100 for 500 streams.
	if lines > 100 {
		t.Errorf("exposition has %d lines for 500 streams; label cardinality is leaking", lines)
	}
}

func TestConfigValidation(t *testing.T) {
	now := newFakeClock(time.Millisecond).Now
	cases := map[string]Config{
		"no classes": {Now: now},
		"no clock":   {Classes: testClasses()},
		"negative cooldown": {
			Classes: testClasses(), Now: now, Cooldown: -time.Second,
		},
		"duplicate class": {
			Classes: append(testClasses(), testClasses()[0]), Now: now,
		},
		"bad class": {
			Classes: []ClassConfig{{Name: "x", Family: FamilySRAA}}, Now: now,
		},
		"unknown family": {
			Classes: []ClassConfig{{Name: "x", Family: Family(99), SampleSize: 1}}, Now: now,
		},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}

func TestShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	} {
		e, err := New(Config{Classes: testClasses(), Shards: tc.in, Now: newFakeClock(time.Millisecond).Now})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(e.shards); got != tc.want {
			t.Errorf("Shards=%d rounded to %d, want %d", tc.in, got, tc.want)
		}
		e.Close()
	}
}
