package fleet

import (
	"fmt"
	"testing"
	"time"

	"rejuv/internal/xrand"
)

// steadyEngine builds an engine with streams open and one warmup batch
// ingested, so pooled scratch and slot arrays are at their high-water
// mark before measurement begins. Health tracking runs at its default
// top-K, so the measured path is the one production pays for.
func steadyEngine(tb testing.TB, streams, batchSize int) (*Engine, []StreamObs) {
	return steadyEngineTopK(tb, streams, batchSize, 0)
}

// steadyEngineTopK is steadyEngine with an explicit HealthTopK
// (negative disables health tracking, isolating its overhead).
func steadyEngineTopK(tb testing.TB, streams, batchSize, topK int) (*Engine, []StreamObs) {
	tb.Helper()
	e, err := New(Config{
		Classes:    testClasses(),
		Now:        newFakeClock(time.Millisecond).Now,
		HealthTopK: topK,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(e.Close)
	for i := 0; i < streams; i++ {
		if err := e.OpenStream(StreamID(i+1), testClasses()[i%3].Name); err != nil {
			tb.Fatal(err)
		}
	}
	rng := xrand.NewStream(42, 1)
	batch := make([]StreamObs, batchSize)
	for i := range batch {
		// Values near but below the mean: detectors step, never trigger,
		// so the measured path has no journal and no queue traffic.
		batch[i] = StreamObs{
			Stream: StreamID(rng.Intn(streams) + 1),
			Value:  4 + rng.Float64(),
		}
	}
	e.ObserveBatch(batch) // warmup: grow the pooled scratch
	return e, batch
}

// TestObserveBatchDoesNotAllocate pins the hot path at zero
// steady-state allocations: all working memory is pooled scratch grown
// to the high-water mark, and results fan in through preallocated
// counters and arrays.
func TestObserveBatchDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector, defeating the pin")
	}
	e, batch := steadyEngine(t, 64, 256)
	avg := testing.AllocsPerRun(200, func() {
		e.ObserveBatch(batch)
	})
	if avg != 0 {
		t.Errorf("ObserveBatch allocates %.1f times per batch, want 0", avg)
	}
}

// TestObserveBatchDoesNotAllocateWhileAging is the same pin with the
// health sketch actually exercised: every stream's means exceed the
// target, so each evaluated decision feeds Sketch.Update and the
// exemplar arrays, and triggers flow until the queue fills and drops.
// None of that may touch the allocator.
func TestObserveBatchDoesNotAllocateWhileAging(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector, defeating the pin")
	}
	e, batch := steadyEngine(t, 64, 256)
	for i := range batch {
		batch[i].Value = 50 // far above every class target
	}
	e.ObserveBatch(batch) // warmup: populate sketches, fill the queue
	avg := testing.AllocsPerRun(200, func() {
		e.ObserveBatch(batch)
	})
	if avg != 0 {
		t.Errorf("aging ObserveBatch allocates %.1f times per batch, want 0", avg)
	}
}

// BenchmarkFleetObserve is the headline fleet number: sustained
// observations per second through ObserveBatch at increasing stream
// counts, with health tracking at its default top-K. One iteration
// ingests one fixed-size batch.
func BenchmarkFleetObserve(b *testing.B) {
	benchFleetObserve(b, 0)
}

// BenchmarkFleetObserveNoHealth is the same workload with health
// tracking disabled; the ratio against BenchmarkFleetObserve is the
// sketch's ingestion overhead, asserted <10% by scripts/bench.sh.
func BenchmarkFleetObserveNoHealth(b *testing.B) {
	benchFleetObserve(b, -1)
}

func benchFleetObserve(b *testing.B, topK int) {
	counts := []int{1_000, 10_000, 100_000}
	if testing.Short() {
		counts = counts[:1]
	}
	const batchSize = 4096
	for _, streams := range counts {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			e, batch := steadyEngineTopK(b, streams, batchSize, topK)
			b.ReportAllocs()
			b.SetBytes(int64(batchSize * 16)) // 8B id + 8B value per obs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ObserveBatch(batch)
			}
			b.StopTimer()
			obs := float64(b.N) * float64(batchSize)
			b.ReportMetric(obs/b.Elapsed().Seconds(), "obs/s")
		})
	}
}

// BenchmarkHealthSnapshot measures the observer's cost: assembling the
// fleet-wide health view (slot scans, sketch merge, top-K sort) while
// the fleet holds a steady population.
func BenchmarkHealthSnapshot(b *testing.B) {
	counts := []int{10_000, 100_000}
	if testing.Short() {
		counts = counts[:1]
	}
	for _, streams := range counts {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			e, batch := steadyEngine(b, streams, 4096)
			// Age a slice of the fleet so the sketches have content.
			for i := range batch {
				if i%8 == 0 {
					batch[i].Value = 50
				}
			}
			e.ObserveBatch(batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := e.HealthSnapshot()
				if snap.OpenStreams != streams {
					b.Fatalf("open streams = %d, want %d", snap.OpenStreams, streams)
				}
			}
		})
	}
}
