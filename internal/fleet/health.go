package fleet

import (
	"rejuv/internal/health"
)

// This file assembles the fleet health snapshot: the engine owns the
// per-shard sketch and exemplar state (maintained inside drainLocked,
// under the shard lock, at near-zero cost for healthy streams) and
// folds it here into the health package's presentation types.

// HealthSnapshot assembles one consistent fleet health view: the top-K
// most-aged streams merged across the per-shard sketches, the
// fleet-wide bucket-level histogram with exemplars, per-class
// detection statistics, trigger-queue state and the process's own
// runtime telemetry (also mirrored into the registry's fleet_self_*
// gauges).
//
// Each shard is locked briefly while its slots are scanned; shards are
// visited in order, so concurrent ingestion can interleave between
// shards but never within one. Safe for concurrent use.
func (e *Engine) HealthSnapshot() health.Snapshot {
	now := e.cfg.Now()
	snap := health.Snapshot{NowNanos: now.UnixNano()}

	// The committed-baseline pairs live on the ordered output side, so
	// borrow outMu briefly; the counters themselves are atomic.
	e.outMu.Lock()
	base := append([]baseline(nil), e.lastBase...)
	e.outMu.Unlock()

	snap.Classes = make([]health.ClassHealth, len(e.classes))
	for i := range e.classes {
		snap.Classes[i] = health.ClassHealth{
			Name:         e.classes[i].cfg.Name,
			Observations: e.obsTotal[i].Value(),
			Triggers:     e.trigTotal[i].Value(),
			Suppressed:   e.suppTotal[i].Value(),
			Rejected:     e.rejTotal[i].Value(),
			Rebaselined:  e.rebTotal[i].Value(),
			BaselineMean: base[i].mean,
			BaselineSD:   base[i].sd,
		}
	}

	// Per-level aggregation across shards. Level values beyond maxLvl
	// cannot occur (BucketStep never exceeds K), but clamp anyway so a
	// future detector family cannot index out of bounds.
	counts := make([]int, e.maxLvl+1)
	fills := make([]int64, e.maxLvl+1)
	ex := make([]health.Exemplar, e.maxLvl+1)
	exSet := make([]bool, e.maxLvl+1)

	var entries []health.StreamHealth
	var scratch []health.SketchEntry
	for si := range e.shards {
		s := &e.shards[si]
		s.mu.Lock()
		for slot := range s.live {
			if !s.live[slot] {
				continue
			}
			snap.OpenStreams++
			snap.Classes[s.cls[slot]].Open++
			lvl := int(s.blevel[slot])
			if lvl > e.maxLvl {
				lvl = e.maxLvl
			}
			counts[lvl]++
			fills[lvl] += int64(s.bfill[slot])
		}
		if s.sketch != nil {
			scratch = s.sketch.AppendEntries(scratch[:0])
			for _, en := range scratch {
				// Resolve the stream's live detector position under the
				// same lock, so Level/Fill are current rather than stale
				// sketch-side copies. Streams closed since their last
				// signal are dropped.
				slot, ok := s.index[StreamID(en.ID)]
				if !ok || !s.live[slot] {
					continue
				}
				entries = append(entries, health.StreamHealth{
					Stream:        en.ID,
					Class:         e.classes[s.cls[slot]].cfg.Name,
					Level:         int(s.blevel[slot]),
					Fill:          int(s.bfill[slot]),
					Count:         en.Count,
					Err:           en.Err,
					LastMean:      en.LastMean,
					LastSeenNanos: en.LastNanos,
				})
			}
			// Keep the most recent exemplar per level across shards.
			for lvl := 1; lvl < len(s.exSet); lvl++ {
				if s.exSet[lvl] && (!exSet[lvl] || s.exNanos[lvl] > ex[lvl].Nanos) {
					ex[lvl] = health.Exemplar{Stream: s.exID[lvl], Value: s.exValue[lvl], Nanos: s.exNanos[lvl]}
					exSet[lvl] = true
				}
			}
		}
		s.mu.Unlock()
	}

	for lvl := 0; lvl <= e.maxLvl; lvl++ {
		if counts[lvl] == 0 {
			continue
		}
		lb := health.LevelBucket{
			Level:    lvl,
			Streams:  counts[lvl],
			MeanFill: float64(fills[lvl]) / float64(counts[lvl]),
		}
		if exSet[lvl] {
			e := ex[lvl]
			lb.Exemplar = &e
		}
		snap.Levels = append(snap.Levels, lb)
	}

	snap.Top = health.TopK(entries, e.healthK)
	snap.Queue = health.QueueHealth{
		Depth:    len(e.trigs),
		Capacity: cap(e.trigs),
		Dropped:  e.dropTotal.Value(),
	}
	snap.Stalls = e.stallTotal.Value()
	snap.Self = health.ReadSelf()
	e.selfGauges.Update(snap.Self)
	return snap
}
