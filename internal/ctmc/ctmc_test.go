package ctmc

import (
	"math"
	"testing"
)

func TestTwoStateAbsorption(t *testing.T) {
	// 0 -> 1 at rate r: absorption time is Exp(r).
	const r = 0.7
	c := New(2)
	c.MustAddRate(0, 1, r)
	pi0 := []float64{1, 0}
	for _, x := range []float64{0.1, 1, 3, 10} {
		cdf, err := c.AbsorptionCDF(pi0, 1, x, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - math.Exp(-r*x)
		if math.Abs(cdf-want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, cdf, want)
		}
		pdf, err := c.AbsorptionPDF(pi0, 1, x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if wantPDF := r * math.Exp(-r*x); math.Abs(pdf-wantPDF) > 1e-9 {
			t.Errorf("PDF(%v) = %v, want %v", x, pdf, wantPDF)
		}
	}
}

func TestSeriesChainIsHypoexponential(t *testing.T) {
	// 0 -> 1 -> 2 with distinct rates: absorption is hypoexponential,
	// CDF = 1 - (r2 e^{-r1 x} - r1 e^{-r2 x})/(r2 - r1).
	const r1, r2 = 1.0, 3.0
	c := New(3)
	c.MustAddRate(0, 1, r1)
	c.MustAddRate(1, 2, r2)
	pi0 := []float64{1, 0, 0}
	for _, x := range []float64{0.2, 1, 2.5} {
		got, err := c.AbsorptionCDF(pi0, 2, x, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 - (r2*math.Exp(-r1*x)-r1*math.Exp(-r2*x))/(r2-r1)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestTransientConservesProbability(t *testing.T) {
	// A small cyclic chain: probabilities must stay on the simplex at
	// every horizon.
	c := New(3)
	c.MustAddRate(0, 1, 2)
	c.MustAddRate(1, 2, 1)
	c.MustAddRate(2, 0, 0.5)
	pi0 := []float64{0.2, 0.5, 0.3}
	for _, horizon := range []float64{0, 0.01, 0.5, 5, 100} {
		p, err := c.Transient(pi0, horizon, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range p {
			if v < -1e-12 {
				t.Fatalf("negative probability %v at t=%v", v, horizon)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v at t=%v", sum, horizon)
		}
	}
}

func TestTransientZeroTimeIsInitial(t *testing.T) {
	c := New(2)
	c.MustAddRate(0, 1, 1)
	pi0 := []float64{0.4, 0.6}
	p, err := c.Transient(pi0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.4 || p[1] != 0.6 {
		t.Fatalf("Transient(0) = %v, want initial %v", p, pi0)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	// Birth-death chain: transient at a long horizon matches SteadyState.
	c := New(3)
	c.MustAddRate(0, 1, 1.0)
	c.MustAddRate(1, 0, 2.0)
	c.MustAddRate(1, 2, 1.0)
	c.MustAddRate(2, 1, 2.0)
	ss, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Transient([]float64{1, 0, 0}, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if math.Abs(p[i]-ss[i]) > 1e-8 {
			t.Fatalf("transient %v has not converged to steady state %v", p, ss)
		}
	}
	// Detailed balance for this birth-death chain: pi_{k+1} = pi_k / 2.
	if math.Abs(ss[1]-ss[0]/2) > 1e-12 || math.Abs(ss[2]-ss[1]/2) > 1e-12 {
		t.Fatalf("steady state %v violates detailed balance", ss)
	}
}

func TestMeanTimeToAbsorption(t *testing.T) {
	// Series chain: expected absorption time is the sum of stage means.
	c := New(3)
	c.MustAddRate(0, 1, 2)
	c.MustAddRate(1, 2, 0.5)
	got, err := c.MeanTimeToAbsorption([]float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5 + 2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean absorption time = %v, want %v", got, want)
	}
	// Starting from the second stage skips the first mean.
	got, err = c.MeanTimeToAbsorption([]float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("mean from stage 2 = %v, want 2", got)
	}
}

func TestLargeUniformizationRate(t *testing.T) {
	// Stress the Poisson log-space weights: rates that make lambda*t
	// huge must neither underflow to zero mass nor lose normalization.
	c := New(2)
	c.MustAddRate(0, 1, 50)
	cdf, err := c.AbsorptionCDF([]float64{1, 0}, 1, 20, 0) // lambda*t ~ 1000
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf-1) > 1e-9 {
		t.Fatalf("CDF(20) = %v, want ~1", cdf)
	}
	mid, err := c.AbsorptionCDF([]float64{1, 0}, 1, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - math.Exp(-50*0.01); math.Abs(mid-want) > 1e-9 {
		t.Fatalf("CDF(0.01) = %v, want %v", mid, want)
	}
}

func TestValidationErrors(t *testing.T) {
	c := New(2)
	tests := []struct {
		name     string
		from, to int
		rate     float64
	}{
		{"from out of range", -1, 0, 1},
		{"to out of range", 0, 5, 1},
		{"self loop", 1, 1, 1},
		{"zero rate", 0, 1, 0},
		{"negative rate", 0, 1, -2},
		{"NaN rate", 0, 1, math.NaN()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := c.AddRate(tt.from, tt.to, tt.rate); err == nil {
				t.Errorf("AddRate(%d,%d,%v) accepted", tt.from, tt.to, tt.rate)
			}
		})
	}
}

func TestBadInitialDistribution(t *testing.T) {
	c := New(2)
	c.MustAddRate(0, 1, 1)
	if _, err := c.Transient([]float64{1}, 1, 0); err == nil {
		t.Error("wrong-length initial vector accepted")
	}
	if _, err := c.Transient([]float64{0.5, 0.4}, 1, 0); err == nil {
		t.Error("non-normalized initial vector accepted")
	}
	if _, err := c.Transient([]float64{-0.5, 1.5}, 1, 0); err == nil {
		t.Error("negative initial probability accepted")
	}
	if _, err := c.Transient([]float64{1, 0}, -1, 0); err == nil {
		t.Error("negative time accepted")
	}
}

func TestAbsorptionRequiresAbsorbingState(t *testing.T) {
	c := New(2)
	c.MustAddRate(0, 1, 1)
	c.MustAddRate(1, 0, 1)
	if _, err := c.AbsorptionCDF([]float64{1, 0}, 1, 1, 0); err == nil {
		t.Error("AbsorptionCDF on a non-absorbing state accepted")
	}
	if _, err := c.AbsorptionPDF([]float64{1, 0}, 1, 1, 0); err == nil {
		t.Error("AbsorptionPDF on a non-absorbing state accepted")
	}
}

func TestGeneratorMatrixRowSums(t *testing.T) {
	c := New(3)
	c.MustAddRate(0, 1, 2)
	c.MustAddRate(0, 2, 3)
	c.MustAddRate(1, 2, 1)
	q := c.Generator()
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += q.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("generator row %d sums to %v", i, sum)
		}
	}
	if q.At(0, 0) != -5 {
		t.Fatalf("diagonal = %v, want -5", q.At(0, 0))
	}
}

func TestMMcNumberInSystemSteadyState(t *testing.T) {
	// Truncated M/M/2 birth-death chain: steady state must match the
	// closed-form pi_k. lambda=1, mu=1, c=2 => rho=0.5.
	const lambda, mu = 1.0, 1.0
	const nStates = 30
	c := New(nStates)
	for k := 0; k < nStates-1; k++ {
		c.MustAddRate(k, k+1, lambda)
		served := math.Min(float64(k+1), 2)
		c.MustAddRate(k+1, k, served*mu)
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: pi1 = pi0 * lambda/mu, pi_{k+1} = pi_k * lambda/(2mu) beyond.
	if math.Abs(pi[1]-pi[0]) > 1e-9 {
		t.Fatalf("pi1 = %v, want pi0 = %v", pi[1], pi[0])
	}
	for k := 2; k < 10; k++ {
		if math.Abs(pi[k]-pi[k-1]/2) > 1e-9 {
			t.Fatalf("pi[%d] = %v, want half of pi[%d] = %v", k, pi[k], k-1, pi[k-1])
		}
	}
}

func TestAbsorptionPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integral of the absorption density over a wide window.
	c := New(3)
	c.MustAddRate(0, 1, 1.2)
	c.MustAddRate(1, 2, 0.8)
	pi0 := []float64{1, 0, 0}
	const steps = 400
	const hi = 30.0
	h := hi / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		pdf, err := c.AbsorptionPDF(pi0, 2, float64(i)*h, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum += w * pdf
	}
	if integral := sum * h; math.Abs(integral-1) > 1e-3 {
		t.Fatalf("absorption density integrates to %v", integral)
	}
}

func TestAbsorptionMatchesSimulatedQuantiles(t *testing.T) {
	// Cross-check CDF against the analytic normal-free route: compare
	// the absorption CDF of a single exponential stage with the closed
	// form at its own quantiles.
	c := New(2)
	c.MustAddRate(0, 1, 0.2)
	for _, p := range []float64{0.25, 0.5, 0.9} {
		x := -math.Log(1-p) / 0.2
		got, err := c.AbsorptionCDF([]float64{1, 0}, 1, x, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF at %v-quantile = %v", p, got)
		}
	}
}

func TestTransientBatchMatchesSingle(t *testing.T) {
	c := New(3)
	c.MustAddRate(0, 1, 1.3)
	c.MustAddRate(1, 2, 0.6)
	c.MustAddRate(1, 0, 0.2)
	pi0 := []float64{0.7, 0.3, 0}
	ts := []float64{0, 0.5, 2, 7.3, 0.5} // unsorted, with duplicates and zero
	batch, err := c.TransientBatch(pi0, ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, horizon := range ts {
		single, err := c.Transient(pi0, horizon, 0)
		if err != nil {
			t.Fatal(err)
		}
		for j := range single {
			if math.Abs(batch[i][j]-single[j]) > 1e-10 {
				t.Fatalf("t=%v state %d: batch %v, single %v", horizon, j, batch[i][j], single[j])
			}
		}
	}
}

func TestAbsorptionPDFBatchMatchesSingle(t *testing.T) {
	c := New(3)
	c.MustAddRate(0, 1, 2)
	c.MustAddRate(1, 2, 0.8)
	pi0 := []float64{1, 0, 0}
	ts := []float64{0.1, 1, 4, 9}
	batch, err := c.AbsorptionPDFBatch(pi0, 2, ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, horizon := range ts {
		single, err := c.AbsorptionPDF(pi0, 2, horizon, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(batch[i]-single) > 1e-10 {
			t.Fatalf("t=%v: batch %v, single %v", horizon, batch[i], single)
		}
	}
	if _, err := c.AbsorptionPDFBatch(pi0, 1, ts, 0); err == nil {
		t.Fatal("non-absorbing state accepted")
	}
}

func TestTransientBatchValidation(t *testing.T) {
	c := New(2)
	c.MustAddRate(0, 1, 1)
	if _, err := c.TransientBatch([]float64{1, 0}, []float64{1, -2}, 0); err == nil {
		t.Fatal("negative time accepted")
	}
	if _, err := c.TransientBatch([]float64{0.5}, []float64{1}, 0); err == nil {
		t.Fatal("bad initial distribution accepted")
	}
}
