// Package ctmc implements continuous-time Markov chains: construction of
// the generator matrix, transient solution by uniformization, absorption
// time distributions, and steady-state solution.
//
// It is the substitute for the SHARPE tool used in the paper: the density
// of the sample-average response time X̄n (paper eq. 4 and Fig. 5) is the
// absorption density of the concatenated chain of paper Fig. 4, which
// this package evaluates from transient state probabilities.
package ctmc

import (
	"fmt"
	"math"

	"rejuv/internal/linalg"
	"rejuv/internal/num"
)

// transition is one directed rate in the chain.
type transition struct {
	to   int
	rate float64
}

// Chain is a finite-state CTMC under construction or in use. Build one
// with New and AddRate; query it with Transient, AbsorptionCDF, or
// SteadyState. The zero value is unusable; use New.
type Chain struct {
	n        int
	out      [][]transition // outgoing transitions per state
	exitRate []float64      // total outgoing rate per state
}

// New returns a chain with n states, numbered 0..n-1, and no transitions.
// It panics if n <= 0.
func New(n int) *Chain {
	if n <= 0 {
		panic(fmt.Sprintf("ctmc: chain needs at least one state, got %d", n))
	}
	return &Chain{
		n:        n,
		out:      make([][]transition, n),
		exitRate: make([]float64, n),
	}
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return c.n }

// AddRate adds a transition from one state to another with the given
// positive rate. Multiple calls accumulate. It returns an error on
// out-of-range states, self-loops, or non-positive rates.
func (c *Chain) AddRate(from, to int, rate float64) error {
	switch {
	case from < 0 || from >= c.n || to < 0 || to >= c.n:
		return fmt.Errorf("ctmc: transition %d->%d out of range [0,%d)", from, to, c.n)
	case from == to:
		return fmt.Errorf("ctmc: self-loop on state %d", from)
	case rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0):
		return fmt.Errorf("ctmc: rate %v for %d->%d must be positive and finite", rate, from, to)
	}
	c.out[from] = append(c.out[from], transition{to: to, rate: rate})
	c.exitRate[from] += rate
	return nil
}

// MustAddRate is AddRate for statically known-good transitions; it panics
// on error.
func (c *Chain) MustAddRate(from, to int, rate float64) {
	if err := c.AddRate(from, to, rate); err != nil {
		panic(err)
	}
}

// ExitRate returns the total outgoing rate of a state. Absorbing states
// have exit rate zero.
func (c *Chain) ExitRate(state int) float64 { return c.exitRate[state] }

// IsAbsorbing reports whether the state has no outgoing transitions.
func (c *Chain) IsAbsorbing(state int) bool { return num.Zero(c.exitRate[state]) }

// Generator returns the dense generator matrix Q with Q[i][j] the rate
// i->j and Q[i][i] = -sum of row i.
func (c *Chain) Generator() *linalg.Matrix {
	q := linalg.NewMatrix(c.n, c.n)
	for i, ts := range c.out {
		for _, t := range ts {
			q.Add(i, t.to, t.rate)
		}
		q.Set(i, i, -c.exitRate[i])
	}
	return q
}

// uniformizationRate returns a rate dominating every exit rate. A strict
// margin keeps the DTMC aperiodic, which speeds convergence of the
// iterated products.
func (c *Chain) uniformizationRate() float64 {
	maxRate := 0.0
	for _, r := range c.exitRate {
		if r > maxRate {
			maxRate = r
		}
	}
	return maxRate * 1.02
}

// stepDTMC computes dst = src * P where P = I + Q/Lambda is the
// uniformized jump matrix. dst and src must not alias.
func (c *Chain) stepDTMC(dst, src []float64, lambda float64) {
	for i := range dst {
		dst[i] = src[i] * (1 - c.exitRate[i]/lambda)
	}
	for i, ts := range c.out {
		pi := src[i]
		if num.Zero(pi) {
			continue
		}
		for _, t := range ts {
			dst[t.to] += pi * t.rate / lambda
		}
	}
}

// Transient returns the state probability vector at time t given the
// initial distribution pi0, computed by uniformization with truncation
// error below eps (default 1e-12 when eps <= 0). It returns an error if
// pi0 has the wrong length or is not a distribution.
func (c *Chain) Transient(pi0 []float64, t, eps float64) ([]float64, error) {
	if err := c.checkDist(pi0); err != nil {
		return nil, err
	}
	if t < 0 || math.IsNaN(t) {
		return nil, fmt.Errorf("ctmc: transient time %v must be non-negative", t)
	}
	if eps <= 0 {
		eps = 1e-12
	}
	out := make([]float64, c.n)
	if num.Zero(t) {
		copy(out, pi0)
		return out, nil
	}
	lambda := c.uniformizationRate()
	if num.Zero(lambda) {
		// No transitions anywhere: distribution never moves.
		copy(out, pi0)
		return out, nil
	}
	lt := lambda * t
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	copy(cur, pi0)

	// Poisson weights in log space so large lambda*t cannot underflow
	// the whole sum: w_k = exp(-lt + k*log(lt) - lgamma(k+1)).
	logLT := math.Log(lt)
	cumulative := 0.0
	for k := 0; ; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		w := math.Exp(-lt + float64(k)*logLT - lg)
		if w > 0 {
			for i := range out {
				out[i] += w * cur[i]
			}
			cumulative += w
		}
		if 1-cumulative < eps {
			break
		}
		if float64(k) > lt+12*math.Sqrt(lt)+50 {
			// Beyond this many terms the remaining Poisson mass is far
			// below eps; bail out to guarantee termination.
			break
		}
		c.stepDTMC(next, cur, lambda)
		cur, next = next, cur
	}
	// Renormalize the truncated sum onto the simplex.
	if cumulative > 0 {
		for i := range out {
			out[i] /= cumulative
		}
	}
	return out, nil
}

// TransientBatch returns the state probability vector at each time in
// ts. It shares the uniformized DTMC power vectors pi0*P^k across all
// horizons, so evaluating a whole density grid costs barely more than
// the largest single horizon — the batch form behind mmc.AvgRTPDF.
func (c *Chain) TransientBatch(pi0 []float64, ts []float64, eps float64) ([][]float64, error) {
	if err := c.checkDist(pi0); err != nil {
		return nil, err
	}
	if eps <= 0 {
		eps = 1e-12
	}
	out := make([][]float64, len(ts))
	maxT := 0.0
	for i, t := range ts {
		if t < 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("ctmc: transient time %v must be non-negative", t)
		}
		out[i] = make([]float64, c.n)
		if t > maxT {
			maxT = t
		}
	}
	lambda := c.uniformizationRate()
	if num.Zero(lambda) || num.Zero(maxT) {
		for i, t := range ts {
			if t >= 0 {
				copy(out[i], pi0)
			}
		}
		if num.Zero(lambda) {
			return out, nil
		}
	}

	lts := make([]float64, len(ts))
	logLTs := make([]float64, len(ts))
	cumulative := make([]float64, len(ts))
	for i, t := range ts {
		lts[i] = lambda * t
		if lts[i] > 0 {
			logLTs[i] = math.Log(lts[i])
		}
	}
	maxLT := lambda * maxT
	cur := make([]float64, c.n)
	next := make([]float64, c.n)
	copy(cur, pi0)

	for k := 0; ; k++ {
		lg, _ := math.Lgamma(float64(k + 1))
		done := true
		for i := range ts {
			if num.Zero(lts[i]) {
				// Zero horizon: all mass on k = 0.
				if k == 0 {
					copy(out[i], cur)
					cumulative[i] = 1
				}
				continue
			}
			if 1-cumulative[i] < eps {
				continue
			}
			done = false
			w := math.Exp(-lts[i] + float64(k)*logLTs[i] - lg)
			if w > 0 {
				row := out[i]
				for j, p := range cur {
					row[j] += w * p
				}
				cumulative[i] += w
			}
		}
		if done {
			break
		}
		if float64(k) > maxLT+12*math.Sqrt(maxLT)+50 {
			break
		}
		c.stepDTMC(next, cur, lambda)
		cur, next = next, cur
	}
	for i := range ts {
		if cumulative[i] > 0 {
			for j := range out[i] {
				out[i][j] /= cumulative[i]
			}
		}
	}
	return out, nil
}

// AbsorptionPDFBatch returns the absorption density into `state` at
// each time in ts, sharing the transient solve.
func (c *Chain) AbsorptionPDFBatch(pi0 []float64, state int, ts []float64, eps float64) ([]float64, error) {
	if state < 0 || state >= c.n {
		return nil, fmt.Errorf("ctmc: state %d out of range [0,%d)", state, c.n)
	}
	if !c.IsAbsorbing(state) {
		return nil, fmt.Errorf("ctmc: state %d is not absorbing", state)
	}
	ps, err := c.TransientBatch(pi0, ts, eps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ts))
	for i, p := range ps {
		flux := 0.0
		for from, trs := range c.out {
			for _, tr := range trs {
				if tr.to == state {
					flux += p[from] * tr.rate
				}
			}
		}
		out[i] = flux
	}
	return out, nil
}

func (c *Chain) checkDist(pi0 []float64) error {
	if len(pi0) != c.n {
		return fmt.Errorf("ctmc: initial vector length %d != %d states", len(pi0), c.n)
	}
	sum := 0.0
	for _, p := range pi0 {
		if p < 0 || math.IsNaN(p) {
			return fmt.Errorf("ctmc: initial probability %v is invalid", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("ctmc: initial probabilities sum to %v, want 1", sum)
	}
	return nil
}

// AbsorptionCDF returns P(absorbed in `state` by time t) from initial
// distribution pi0: the transient probability of the absorbing state.
// It returns an error if the state is not absorbing.
func (c *Chain) AbsorptionCDF(pi0 []float64, state int, t, eps float64) (float64, error) {
	if state < 0 || state >= c.n {
		return 0, fmt.Errorf("ctmc: state %d out of range [0,%d)", state, c.n)
	}
	if !c.IsAbsorbing(state) {
		return 0, fmt.Errorf("ctmc: state %d is not absorbing", state)
	}
	p, err := c.Transient(pi0, t, eps)
	if err != nil {
		return 0, err
	}
	return p[state], nil
}

// AbsorptionPDF returns the density of the absorption time into `state`
// at time t: the probability flux into the state, sum over predecessors
// i of p_i(t) * rate(i->state). This is exactly the paper's eq. (4).
func (c *Chain) AbsorptionPDF(pi0 []float64, state int, t, eps float64) (float64, error) {
	if state < 0 || state >= c.n {
		return 0, fmt.Errorf("ctmc: state %d out of range [0,%d)", state, c.n)
	}
	if !c.IsAbsorbing(state) {
		return 0, fmt.Errorf("ctmc: state %d is not absorbing", state)
	}
	p, err := c.Transient(pi0, t, eps)
	if err != nil {
		return 0, err
	}
	flux := 0.0
	for i, ts := range c.out {
		for _, tr := range ts {
			if tr.to == state {
				flux += p[i] * tr.rate
			}
		}
	}
	return flux, nil
}

// MeanTimeToAbsorption returns the expected time to reach any absorbing
// state from initial distribution pi0, solved from the linear system
// over transient states: (-Q_TT) m = 1. It returns an error if the chain
// has no absorbing state reachable structure to solve.
func (c *Chain) MeanTimeToAbsorption(pi0 []float64) (float64, error) {
	if err := c.checkDist(pi0); err != nil {
		return 0, err
	}
	transient := make([]int, 0, c.n)
	index := make([]int, c.n)
	for i := range index {
		index[i] = -1
	}
	for i := 0; i < c.n; i++ {
		if !c.IsAbsorbing(i) {
			index[i] = len(transient)
			transient = append(transient, i)
		}
	}
	if len(transient) == 0 {
		return 0, nil
	}
	nt := len(transient)
	a := linalg.NewMatrix(nt, nt)
	for row, i := range transient {
		a.Set(row, row, c.exitRate[i])
		for _, t := range c.out[i] {
			if j := index[t.to]; j >= 0 {
				a.Add(row, j, -t.rate)
			}
		}
	}
	m, err := linalg.Solve(a, linalg.Ones(nt))
	if err != nil {
		return 0, fmt.Errorf("ctmc: mean time to absorption: %w", err)
	}
	total := 0.0
	for row, i := range transient {
		total += pi0[i] * m[row]
	}
	return total, nil
}

// SteadyState returns the stationary distribution of an irreducible
// chain, solving pi*Q = 0 with sum(pi) = 1 by replacing one balance
// equation with the normalization constraint.
func (c *Chain) SteadyState() ([]float64, error) {
	// Build A^T x = b where the last balance equation is replaced by
	// normalization. Rows of A are the transposed generator.
	a := linalg.NewMatrix(c.n, c.n)
	for i, ts := range c.out {
		for _, t := range ts {
			a.Add(t.to, i, t.rate) // column i contributes into row t.to
		}
		a.Add(i, i, -c.exitRate[i])
	}
	b := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		a.Set(c.n-1, j, 1)
	}
	b[c.n-1] = 1
	pi, err := linalg.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("ctmc: steady state: %w", err)
	}
	for i, p := range pi {
		if p < 0 && p > -1e-12 {
			pi[i] = 0
		} else if p < 0 {
			return nil, fmt.Errorf("ctmc: steady state has negative probability %v at state %d (chain not irreducible?)", p, i)
		}
	}
	return pi, nil
}
