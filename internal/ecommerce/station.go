package ecommerce

import (
	"rejuv/internal/des"
	"rejuv/internal/journal"
	"rejuv/internal/xrand"
)

// station is the serving machinery of one host: CPUs, FCFS queue, heap
// and GC state. The single-host Model wraps one station; Cluster wraps
// several behind a router. The owner supplies the completion callback
// and decides when to rejuvenate.
type station struct {
	cfg     Config
	sim     *des.Simulator
	rng     *xrand.Rand
	service func(*xrand.Rand) float64 // processing-time sampler

	freeCPUs  int
	queue     []*job // FIFO; live entries are queue[queueHead:]
	queueHead int
	running   []*job
	heapMB    float64
	gcActive  bool
	gcEnd     *des.Event

	gcs int64
	// virtualAge is the station's accumulated aging in the Kijima sense:
	// every full GC adds its stall to the age, a partial rejuvenation
	// rolls back a fraction ρ of it, a full one resets it to zero.
	virtualAge float64

	// met is nil unless the owning model was instrumented; jw is nil
	// unless it was journaled.
	met *stationMetrics
	jw  *journal.Writer

	// onComplete receives every completed job with its response time.
	onComplete func(j *job, rt float64)
}

// newStation returns a station with all CPUs free and a full heap. cfg
// must already be defaulted and validated.
func newStation(cfg Config, sim *des.Simulator, rng *xrand.Rand, onComplete func(*job, float64)) *station {
	sampler, err := cfg.ServiceDistribution.sampler(cfg.ServiceRate)
	if err != nil {
		// Unreachable: Validate checked the distribution already.
		panic(err)
	}
	return &station{
		cfg:        cfg,
		sim:        sim,
		rng:        rng,
		service:    sampler,
		freeCPUs:   cfg.Servers,
		heapMB:     cfg.HeapMB,
		onComplete: onComplete,
	}
}

// active returns the number of threads on the station (queued + running),
// the paper's "threads executing in parallel" count.
func (s *station) active() int { return s.queueLen() + len(s.running) }

// queueLen returns the number of queued threads.
func (s *station) queueLen() int { return len(s.queue) - s.queueHead }

// gcCount returns the number of full garbage collections so far.
func (s *station) gcCount() int64 { return s.gcs }

// enqueue is paper step 2: the thread queues for a CPU.
func (s *station) enqueue(j *job) {
	s.queue = append(s.queue, j)
	s.tryStart()
	s.noteState()
}

// tryStart moves queued threads onto free CPUs. Nothing starts during a
// stop-the-world GC stall.
func (s *station) tryStart() {
	for s.freeCPUs > 0 && !s.gcActive && s.queueLen() > 0 {
		j := s.queue[s.queueHead]
		s.queue[s.queueHead] = nil
		s.queueHead++
		// Reclaim the dead prefix once it dominates the backing array,
		// keeping dequeue amortized O(1) without unbounded growth.
		if s.queueHead > 64 && s.queueHead*2 >= len(s.queue) {
			s.queue = append(s.queue[:0], s.queue[s.queueHead:]...)
			s.queueHead = 0
		}
		s.startService(j)
	}
}

// startService is paper steps 3–6: sample the processing time, apply
// kernel overhead, seize a CPU, allocate memory, and possibly trigger a
// full GC.
func (s *station) startService(j *job) {
	s.freeCPUs--
	service := s.service(s.rng)
	if !s.cfg.DisableOverhead && s.active() > s.cfg.OverheadThreshold {
		service *= s.cfg.OverheadFactor
	}
	j.slot = len(s.running)
	s.running = append(s.running, j)
	j.completion = s.sim.Schedule(service, func(*des.Simulator) { s.complete(j) })

	if !s.cfg.DisableGC {
		s.heapMB -= s.cfg.AllocMB
		if s.heapMB < s.cfg.GCThresholdMB && !s.gcActive {
			s.startGC()
		}
	}
}

// startGC is paper step 6: a full collection stalls every running thread
// (including the one whose allocation tripped it) for GCPause seconds;
// when it finishes the heap is whole again.
func (s *station) startGC() {
	s.gcs++
	s.gcActive = true
	s.virtualAge += s.cfg.GCPause
	if s.met != nil {
		s.met.gcStalls.Inc()
	}
	if s.jw != nil {
		s.jw.GCStart(s.sim.Now(), s.heapMB)
	}
	for _, r := range s.running {
		s.sim.Reschedule(r.completion, r.completion.Time()+s.cfg.GCPause)
	}
	s.gcEnd = s.sim.Schedule(s.cfg.GCPause, func(*des.Simulator) {
		s.gcActive = false
		s.gcEnd = nil
		if !s.cfg.LeakyGC {
			s.heapMB = s.cfg.HeapMB
		}
		if s.jw != nil {
			s.jw.GCEnd(s.sim.Now(), s.heapMB)
		}
		s.tryStart()
		s.noteState()
	})
}

// complete is paper step 7: free the CPU, compute the response time,
// hand the job to the owner, then admit the next queued thread. The
// owner's callback runs before the next admission so a rejuvenation it
// performs clears the queue first.
func (s *station) complete(j *job) {
	s.removeRunning(j)
	s.freeCPUs++
	if s.met != nil {
		s.met.completed.Inc()
	}
	rt := s.sim.Now() - j.arrival
	s.onComplete(j, rt)
	s.tryStart()
	s.noteState()
}

// removeRunning drops j from the running set in O(1) by swapping with
// the last element.
func (s *station) removeRunning(j *job) {
	last := len(s.running) - 1
	other := s.running[last]
	s.running[j.slot] = other
	other.slot = j.slot
	s.running[last] = nil
	s.running = s.running[:last]
	j.slot = -1
	j.completion = nil
}

// rejuvenate implements the paper's rejuvenation routine on this
// station: every thread is terminated, CPU and memory queues are
// cleared, and the heap is restored. It returns the number of killed
// transactions.
func (s *station) rejuvenate() int {
	killed := s.active()
	for _, r := range s.running {
		s.sim.Cancel(r.completion)
		r.completion = nil
		r.slot = -1
	}
	s.running = s.running[:0]
	s.queue = s.queue[:0]
	s.queueHead = 0
	s.freeCPUs = s.cfg.Servers
	s.heapMB = s.cfg.HeapMB
	if s.gcEnd != nil {
		s.sim.Cancel(s.gcEnd)
		s.gcEnd = nil
	}
	s.gcActive = false
	s.virtualAge = 0
	s.noteState()
	return killed
}

// rejuvenatePartial is the Kijima-style partial action: instead of
// killing every thread, it restores a fraction rho of the consumed heap
// and rolls the virtual age back to (1−ρ)·V, stalling running threads
// for the action's pause (they survive, delayed — exactly like a GC
// stall). rho ≥ 1 degenerates to the full rejuvenation routine. It
// returns the number of killed transactions (always 0 for a partial
// action).
func (s *station) rejuvenatePartial(rho, pause float64) int {
	if rho >= 1 {
		return s.rejuvenate()
	}
	s.heapMB += rho * (s.cfg.HeapMB - s.heapMB)
	s.virtualAge *= 1 - rho
	if pause > 0 {
		for _, r := range s.running {
			s.sim.Reschedule(r.completion, r.completion.Time()+pause)
		}
		if s.gcEnd != nil {
			s.sim.Reschedule(s.gcEnd, s.gcEnd.Time()+pause)
		}
	}
	s.noteState()
	return 0
}
