package ecommerce

import (
	"testing"

	"rejuv/internal/core"
)

// leakyModel runs the high-load system under the leaky-GC reading of
// the paper's memory model, guarded by an SRAA detector.
func leakyModel(t *testing.T, leaky bool) Result {
	t.Helper()
	det, err := core.NewSRAA(core.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		ArrivalRate:  1.8,
		Transactions: 40_000,
		LeakyGC:      leaky,
		Seed:         31,
		Stream:       1,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLeakyGCEntersSoftFailure(t *testing.T) {
	// Under the leaky reading, once the heap is exhausted every service
	// start re-triggers a stop-the-world stall until rejuvenation; the
	// system must show drastically higher loss and response time than
	// under the default reclaiming GC.
	reclaiming := leakyModel(t, false)
	leaky := leakyModel(t, true)
	if leaky.LossFraction() < 2*reclaiming.LossFraction() {
		t.Fatalf("leaky loss %v not far above reclaiming loss %v",
			leaky.LossFraction(), reclaiming.LossFraction())
	}
	if leaky.AvgRT() < 2*reclaiming.AvgRT() {
		t.Fatalf("leaky avg RT %v not far above reclaiming %v",
			leaky.AvgRT(), reclaiming.AvgRT())
	}
	// The paper's figures show loss at or below ~0.35 and response
	// times below ~16 s; the leaky reading blows past both, which is
	// the evidence (recorded in EXPERIMENTS.md) that the default
	// reclaiming semantics are the paper's.
	if leaky.LossFraction() < 0.5 {
		t.Fatalf("leaky loss %v unexpectedly small; soft failure did not develop", leaky.LossFraction())
	}
}

func TestLeakyGCRecoversOnlyByRejuvenation(t *testing.T) {
	res := leakyModel(t, true)
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations under leaky GC; nothing ever recovered the heap")
	}
	// GCs keep firing between rejuvenations (they reclaim nothing).
	if res.GCs <= res.Rejuvenations {
		t.Fatalf("GCs %d <= rejuvenations %d; leaked heap should retrigger collections",
			res.GCs, res.Rejuvenations)
	}
}
