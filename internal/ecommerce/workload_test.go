package ecommerce

import (
	"bytes"
	"testing"

	"rejuv/internal/core"
	"rejuv/internal/journal"
)

// Non-stationary workload scenarios: the arrival rate moves because the
// workload legitimately changed, and an adaptive-baseline detector
// (core.Rebase) should rebaseline through the movement instead of
// condemning the healthy system.

func TestWorkloadShapeValidation(t *testing.T) {
	bad := []*WorkloadShape{
		{},
		{Phases: []WorkloadPhase{{Duration: 0, Factor: 1}}},
		{Phases: []WorkloadPhase{{Duration: -5, Factor: 1}}},
		{Phases: []WorkloadPhase{{Duration: 10, Factor: 0}}},
		{Phases: []WorkloadPhase{{Duration: 10, Factor: -2}}},
	}
	for i, w := range bad {
		cfg := pureConfig(1.6, 1000, 1)
		cfg.Workload = w
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("shape %d: invalid workload accepted", i)
		}
	}
	cfg := pureConfig(1.6, 1000, 1)
	cfg.Workload = DiurnalWorkload(2000, 1.9, 20)
	if _, err := New(cfg, nil); err != nil {
		t.Errorf("diurnal shape rejected: %v", err)
	}
}

// TestWorkloadRaisesThroughput: a surge profile raises the average
// arrival rate, so the same transaction budget completes in less
// virtual time than the steady run on the same random stream.
func TestWorkloadRaisesThroughput(t *testing.T) {
	run := func(w *WorkloadShape) Result {
		cfg := pureConfig(1.6, 20_000, 3)
		cfg.Workload = w
		m, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	steady := run(nil)
	flash := run(FlashCrowdWorkload(500, 5000, 1.9))
	if flash.SimTime >= steady.SimTime {
		t.Errorf("flash crowd did not raise throughput: %v >= %v virtual seconds", flash.SimTime, steady.SimTime)
	}
}

// rebasedCLTA builds the scenario detector: a CLTA judged against the
// healthy M/M/16 baseline, wrapped in the workload-shift layer. The
// queueing model moves its response-time mean gradually (congestion
// builds over many transactions), so the scenario widens MaxShiftRun
// accordingly — the trace-level default of 20 is tuned for abrupt
// telemetry steps.
func rebasedCLTA(base core.Baseline) func() (core.Detector, error) {
	return func() (core.Detector, error) {
		return core.NewRebase(core.ShiftConfig{MaxShiftRun: 80}, base,
			func(b core.Baseline) (core.Detector, error) {
				return core.NewCLTA(core.CLTAConfig{SampleSize: 25, Quantile: 1.96, Baseline: b})
			})
	}
}

// scenarioBase is the healthy M/M/16 response-time baseline at
// lambda = 1.6 (mean ~5.06s, sd ~5s — service time dominates).
var scenarioBase = core.Baseline{Mean: 5, StdDev: 5}

// TestFlashCrowdRebaselinesInsteadOfRejuvenating: under a flash crowd
// the system is congested but healthy. The bare detector condemns the
// congestion and rejuvenates — killing transactions for nothing — while
// the rebased detector reclassifies it as workload, commits a new
// baseline, and rejuvenates less.
func TestFlashCrowdRebaselinesInsteadOfRejuvenating(t *testing.T) {
	run := func(factory func() (core.Detector, error)) Result {
		det, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		cfg := pureConfig(1.6, 15_000, 7)
		cfg.Workload = FlashCrowdWorkload(500, 2000, 1.9)
		m, err := New(cfg, det)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(func() (core.Detector, error) {
		return core.NewCLTA(core.CLTAConfig{SampleSize: 25, Quantile: 1.96, Baseline: scenarioBase})
	})
	if bare.Rejuvenations == 0 {
		t.Fatal("bare detector never rejuvenated during the flash crowd; scenario is vacuous")
	}
	reb := run(rebasedCLTA(scenarioBase))
	if reb.Rebaselines == 0 {
		t.Error("rebased detector never rebaselined across the flash crowd")
	}
	if reb.Rejuvenations >= bare.Rejuvenations {
		t.Errorf("rebased detector rejuvenated %d times, bare %d; rebaselining bought nothing",
			reb.Rejuvenations, bare.Rejuvenations)
	}
}

// TestDiurnalJournalReplaysWithRebaselines: a diurnal arrival cycle
// driven through a rebased detector journals its rebaseline events, and
// the journal replays byte-identically — the flight-recorder contract
// extends to non-stationary runs.
func TestDiurnalJournalReplaysWithRebaselines(t *testing.T) {
	factory := rebasedCLTA(scenarioBase)
	det, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pureConfig(1.6, 20_000, 5)
	cfg.Workload = DiurnalWorkload(2000, 1.9, 20)
	m, err := New(cfg, det)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jw := journal.NewWriter(&buf, journal.Meta{CreatedBy: "workload_test", Detector: "Rebase(CLTA)"})
	jw.RepStart(0, 0, cfg.Seed, cfg.Stream)
	m.Journal(jw)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Err(); err != nil {
		t.Fatal(err)
	}
	if res.Rebaselines == 0 {
		t.Fatal("diurnal cycle committed no rebaselines; scenario is vacuous")
	}
	jr, err := journal.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := journal.Replay(jr, factory)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical() {
		t.Errorf("diurnal journal replay diverged: %+v", rep)
	}
	if int64(rep.Rebaselines) != res.Rebaselines {
		t.Errorf("replay verified %d rebaselines, run committed %d", rep.Rebaselines, res.Rebaselines)
	}
}

// TestWorkloadDeterministic: workload shapes preserve replication
// determinism — identical seeds and shapes give identical results.
func TestWorkloadDeterministic(t *testing.T) {
	run := func() Result {
		det, err := rebasedCLTA(scenarioBase)()
		if err != nil {
			t.Fatal(err)
		}
		cfg := pureConfig(1.6, 10_000, 11)
		cfg.Workload = RampPlateauWorkload(500, 1500, 10, 1.9)
		m, err := New(cfg, det)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Rejuvenations != b.Rejuvenations ||
		a.Rebaselines != b.Rebaselines || a.AvgRT() != b.AvgRT() || a.SimTime != b.SimTime {
		t.Fatalf("identical seeds diverged: %+v vs %+v", a, b)
	}
}
