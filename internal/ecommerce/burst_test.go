package ecommerce

import (
	"testing"

	"rejuv/internal/core"
)

// burstRun executes the burst scenario: no aging at all (GC disabled),
// moderate base load, and transient overload bursts — so every
// rejuvenation is by definition a false alarm.
func burstRun(t *testing.T, det core.Detector) Result {
	t.Helper()
	m, err := New(Config{
		ArrivalRate:  0.8, // 4 CPUs base load
		BurstFactor:  3.5, // 14 CPUs offered during bursts: heavy but stable
		BurstOn:      60,
		BurstOff:     600,
		DisableGC:    true,
		Transactions: 100_000,
		Seed:         37,
		Stream:       1,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBurstValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"factor without durations", Config{ArrivalRate: 1, BurstFactor: 3}},
		{"factor below one", Config{ArrivalRate: 1, BurstFactor: 0.5, BurstOn: 10, BurstOff: 10}},
		{"negative factor", Config{ArrivalRate: 1, BurstFactor: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg, nil); err == nil {
				t.Errorf("invalid burst config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestBurstsRaiseArrivalVolume(t *testing.T) {
	// With bursts on, the same virtual time span must carry more
	// arrivals; equivalently, 100k transactions finish sooner.
	plain := burstConfigResult(t, false)
	bursty := burstConfigResult(t, true)
	if bursty.SimTime >= plain.SimTime {
		t.Fatalf("bursty run took %v virtual seconds, plain %v; bursts added no volume",
			bursty.SimTime, plain.SimTime)
	}
	// Expected effective rate: 0.8 * (600 + 5*60)/(600+60) = ~1.09/s vs 0.8/s.
	ratio := plain.SimTime / bursty.SimTime
	if ratio < 1.15 || ratio > 1.65 {
		t.Fatalf("volume ratio %v outside the modulation's plausible band", ratio)
	}
}

func burstConfigResult(t *testing.T, bursts bool) Result {
	t.Helper()
	cfg := Config{
		ArrivalRate:  0.8,
		DisableGC:    true,
		Transactions: 50_000,
		Seed:         41,
		Stream:       2,
	}
	if bursts {
		cfg.BurstFactor = 5
		cfg.BurstOn = 60
		cfg.BurstOff = 600
	}
	m, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestBucketsTolerateBurstsSingleBucketDoesNot(t *testing.T) {
	// The paper's central design claim (Sections 1-2): multiple
	// threshold levels distinguish bursts of arrivals from soft
	// failures. Without any aging, the multi-bucket configuration must
	// (almost) never rejuvenate through transient overload bursts,
	// while the single-bucket configuration false-triggers repeatedly.
	base := core.Baseline{Mean: 5, StdDev: 5}
	multi, err := core.NewSRAA(core.SRAAConfig{SampleSize: 2, Buckets: 5, Depth: 3, Baseline: base})
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.NewSRAA(core.SRAAConfig{SampleSize: 15, Buckets: 1, Depth: 1, Baseline: base})
	if err != nil {
		t.Fatal(err)
	}
	resMulti := burstRun(t, multi)
	resSingle := burstRun(t, single)

	if resSingle.Rejuvenations == 0 {
		t.Fatal("single-bucket config never false-triggered; the burst scenario is too mild to discriminate")
	}
	if resMulti.Rejuvenations*10 > resSingle.Rejuvenations {
		t.Fatalf("multi-bucket rejuvenated %d times vs single-bucket %d; buckets did not absorb the bursts",
			resMulti.Rejuvenations, resSingle.Rejuvenations)
	}
	if resMulti.LossFraction() > 0.002 {
		t.Fatalf("multi-bucket lost %v of transactions to false alarms", resMulti.LossFraction())
	}
}

func TestBurstsDoNotMaskRealAging(t *testing.T) {
	// With aging (GC) re-enabled on top of bursts, the multi-bucket
	// configuration must still rejuvenate: tolerance to bursts must not
	// mean blindness to soft failures.
	det, err := core.NewSRAA(core.SRAAConfig{
		SampleSize: 2, Buckets: 5, Depth: 3,
		Baseline: core.Baseline{Mean: 5, StdDev: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		ArrivalRate:  1.6,
		BurstFactor:  2,
		BurstOn:      60,
		BurstOff:     600,
		Transactions: 100_000,
		Seed:         43,
		Stream:       3,
	}, det)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("aging was never detected once bursts were present")
	}
}

func TestBurstDeterminism(t *testing.T) {
	a := burstConfigResult(t, true)
	b := burstConfigResult(t, true)
	if a.AvgRT() != b.AvgRT() || a.SimTime != b.SimTime {
		t.Fatal("bursty runs with identical seeds diverged")
	}
}
