package ecommerce

import (
	"fmt"
	"math"

	"rejuv/internal/core"
	"rejuv/internal/des"
	"rejuv/internal/num"
	"rejuv/internal/xrand"
)

// Routing selects how the cluster router assigns arrivals to hosts.
type Routing int

// Routing policies.
const (
	// RouteLeastActive sends each arrival to the in-service host with
	// the fewest active threads (ties to the lowest index).
	RouteLeastActive Routing = iota
	// RouteRoundRobin cycles through in-service hosts.
	RouteRoundRobin
)

// ClusterConfig parameterizes a multi-host deployment: several copies of
// the Section-3 system behind a router, as in the authors' companion
// work on cluster systems. Each host has its own detector; rejuvenating
// a host takes it out of service for RejuvenationPause seconds, and at
// most one host rejuvenates at a time so the cluster never loses more
// than one host's capacity to restarts.
type ClusterConfig struct {
	// Hosts is the number of hosts (at least 1).
	Hosts int
	// Host is the per-host system configuration. ArrivalRate is ignored
	// (the cluster owns the arrival process); Transactions bounds the
	// cluster-wide total.
	Host Config
	// ArrivalRate is the cluster-wide lambda, in transactions/second.
	ArrivalRate float64
	// Routing selects the router policy.
	Routing Routing
	// RejuvenationPause is how long a rejuvenating host is out of
	// service, in seconds. Zero means instantaneous, as in the paper's
	// single-host model.
	RejuvenationPause float64
	// Transactions is how many transactions must leave the cluster
	// (completed or lost) before the run ends.
	Transactions int64
	// Seed and Stream select the random number stream.
	Seed   uint64
	Stream uint64
}

// ClusterResult aggregates a cluster run.
type ClusterResult struct {
	// Result pools the cluster-wide counters and response times.
	Result
	// PerHost holds each host's completion/loss/rejuvenation counts.
	PerHost []Result
	// Deferred counts rejuvenation triggers that had to wait because
	// another host was rejuvenating.
	Deferred int64
}

// Cluster is a multi-host simulation. Build with NewCluster, run with
// Run; single-use like Model.
type Cluster struct {
	cfg       ClusterConfig
	sim       *des.Simulator
	rng       *xrand.Rand
	stations  []*station
	detectors []core.Detector
	inService []bool
	pending   []bool // host asked to rejuvenate while another was busy
	busy      bool   // a host is currently rejuvenating
	rrNext    int

	res ClusterResult
	ran bool

	// OnRejuvenate, when non-nil, observes every host rejuvenation.
	OnRejuvenate func(simTime float64, host, killed int)
}

// NewCluster validates the configuration and builds the cluster. The
// factory is called once per host to create its detector; a nil factory
// disables rejuvenation on every host.
func NewCluster(cfg ClusterConfig, factory func(host int) (core.Detector, error)) (*Cluster, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("ecommerce: cluster needs at least one host, got %d", cfg.Hosts)
	}
	if cfg.ArrivalRate <= 0 || math.IsNaN(cfg.ArrivalRate) || math.IsInf(cfg.ArrivalRate, 0) {
		return nil, fmt.Errorf("ecommerce: cluster arrival rate must be positive and finite, got %v", cfg.ArrivalRate)
	}
	if cfg.RejuvenationPause < 0 {
		return nil, fmt.Errorf("ecommerce: rejuvenation pause must be non-negative, got %v", cfg.RejuvenationPause)
	}
	if cfg.Transactions <= 0 {
		cfg.Transactions = 100_000
	}
	host := cfg.Host
	host.ArrivalRate = cfg.ArrivalRate // satisfies Validate; stations don't use it
	host = host.Default()
	if err := host.Validate(); err != nil {
		return nil, err
	}
	cfg.Host = host

	c := &Cluster{
		cfg:       cfg,
		sim:       des.New(),
		rng:       xrand.NewStream(cfg.Seed, cfg.Stream),
		stations:  make([]*station, cfg.Hosts),
		detectors: make([]core.Detector, cfg.Hosts),
		inService: make([]bool, cfg.Hosts),
		pending:   make([]bool, cfg.Hosts),
	}
	c.res.PerHost = make([]Result, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		h := h
		c.stations[h] = newStation(host, c.sim, c.rng, func(j *job, rt float64) {
			c.complete(h, j, rt)
		})
		c.inService[h] = true
		if factory != nil {
			det, err := factory(h)
			if err != nil {
				return nil, fmt.Errorf("ecommerce: detector for host %d: %w", h, err)
			}
			c.detectors[h] = det
		}
	}
	return c, nil
}

// Run executes the cluster until the transaction budget is spent.
func (c *Cluster) Run() (ClusterResult, error) {
	if c.ran {
		return ClusterResult{}, fmt.Errorf("ecommerce: cluster already ran; create a new one per replication")
	}
	c.ran = true
	c.scheduleArrival()
	c.sim.Run()
	for h, st := range c.stations {
		c.res.PerHost[h].GCs = st.gcCount()
		c.res.GCs += st.gcCount()
	}
	c.res.SimTime = c.sim.Now()
	return c.res, nil
}

func (c *Cluster) scheduleArrival() {
	c.sim.Schedule(c.rng.Exp(c.cfg.ArrivalRate), func(*des.Simulator) { c.arrive() })
}

// arrive routes the transaction to a host. If every host is out of
// service the transaction queues on the next round-robin host and is
// served when that host returns.
func (c *Cluster) arrive() {
	c.res.Arrived++
	j := &job{arrival: c.sim.Now(), slot: -1}
	h := c.route()
	j.host = h
	c.res.PerHost[h].Arrived++
	if c.inService[h] {
		c.stations[h].enqueue(j)
	} else {
		c.stations[h].queue = append(c.stations[h].queue, j)
	}
	c.scheduleArrival()
}

// route picks the destination host according to the routing policy,
// preferring in-service hosts.
func (c *Cluster) route() int {
	switch c.cfg.Routing {
	case RouteRoundRobin:
		for tries := 0; tries < c.cfg.Hosts; tries++ {
			h := c.rrNext
			c.rrNext = (c.rrNext + 1) % c.cfg.Hosts
			if c.inService[h] {
				return h
			}
		}
		return c.rrNext
	default: // RouteLeastActive
		best, bestActive := -1, 0
		for h, st := range c.stations {
			if !c.inService[h] {
				continue
			}
			if best == -1 || st.active() < bestActive {
				best, bestActive = h, st.active()
			}
		}
		if best >= 0 {
			return best
		}
		return 0
	}
}

// complete records one finished transaction and runs the host's detector.
func (c *Cluster) complete(h int, _ *job, rt float64) {
	c.res.Completed++
	c.res.RT.Add(rt)
	c.res.PerHost[h].Completed++
	c.res.PerHost[h].RT.Add(rt)
	if det := c.detectors[h]; det != nil && det.Observe(rt).Triggered {
		c.requestRejuvenation(h)
	}
	if c.res.Completed+c.res.Lost >= c.cfg.Transactions {
		c.sim.Stop()
	}
}

// requestRejuvenation rejuvenates host h now, or defers it until the
// currently rejuvenating host finishes.
func (c *Cluster) requestRejuvenation(h int) {
	if c.busy {
		if !c.pending[h] {
			c.pending[h] = true
			c.res.Deferred++
		}
		return
	}
	c.rejuvenate(h)
}

// rejuvenate takes host h out of service, kills its threads, and
// schedules its return.
func (c *Cluster) rejuvenate(h int) {
	killed := c.stations[h].rejuvenate()
	c.res.Lost += int64(killed)
	c.res.Rejuvenations++
	c.res.PerHost[h].Lost += int64(killed)
	c.res.PerHost[h].Rejuvenations++
	if det := c.detectors[h]; det != nil {
		det.Reset()
	}
	if c.OnRejuvenate != nil {
		c.OnRejuvenate(c.sim.Now(), h, killed)
	}
	if c.res.Completed+c.res.Lost >= c.cfg.Transactions {
		c.sim.Stop()
		return
	}
	if num.Zero(c.cfg.RejuvenationPause) {
		c.startNextPending()
		return
	}
	c.busy = true
	c.inService[h] = false
	c.sim.Schedule(c.cfg.RejuvenationPause, func(*des.Simulator) {
		c.inService[h] = true
		c.busy = false
		c.stations[h].tryStart()
		c.startNextPending()
	})
}

// startNextPending serves the lowest-indexed deferred rejuvenation.
func (c *Cluster) startNextPending() {
	for h, want := range c.pending {
		if want {
			c.pending[h] = false
			c.rejuvenate(h)
			return
		}
	}
}
