package ecommerce

import (
	"fmt"
	"math"

	"rejuv/internal/core"
	"rejuv/internal/des"
	"rejuv/internal/journal"
	"rejuv/internal/num"
	"rejuv/internal/sched"
	"rejuv/internal/xrand"
)

// Routing selects how the cluster router assigns arrivals to hosts.
type Routing int

// Routing policies.
const (
	// RouteLeastActive sends each arrival to the in-service host with
	// the fewest active threads (ties to the lowest index).
	RouteLeastActive Routing = iota
	// RouteRoundRobin cycles through in-service hosts.
	RouteRoundRobin
)

// ClusterConfig parameterizes a multi-host deployment: several copies of
// the Section-3 system behind a router, as in the authors' companion
// work on cluster systems. Each host has its own detector; rejuvenation
// is coordinated by a sched.Governor, so a host goes down only when the
// capacity budget allows it, and an action may be a Kijima-style
// partial rejuvenation instead of a full restart.
type ClusterConfig struct {
	// Hosts is the number of hosts (at least 1).
	Hosts int
	// Host is the per-host system configuration. ArrivalRate is ignored
	// (the cluster owns the arrival process); Transactions bounds the
	// cluster-wide total.
	Host Config
	// ArrivalRate is the cluster-wide lambda, in transactions/second.
	ArrivalRate float64
	// Routing selects the router policy.
	Routing Routing
	// RejuvenationPause is how long a full restart keeps a host out of
	// service, in seconds. Zero means instantaneous, as in the paper's
	// single-host model. Partial actions pause proportionally less.
	RejuvenationPause float64
	// Scheduler, when non-nil, overrides the scheduling policy. The
	// default is sched.OneDown(Hosts, RejuvenationPause) — at most one
	// host down, every action a full restart — reproducing the cluster's
	// historical behavior. Replicas may be left 0 (it is set to Hosts);
	// any other value must equal Hosts.
	Scheduler *sched.Config
	// ProactiveLevel, when positive, raises a rejuvenation request
	// whenever an evaluated detector decision reaches this bucket level,
	// without waiting for the trigger. Combined with a tiered scheduler
	// policy this is what enables cheap partial actions at moderate
	// aging. 0 requests only on delivered triggers.
	ProactiveLevel int
	// DeadlineAware, when true, declares each request's QoS horizon to
	// the scheduler: the time the host's in-flight transactions drain,
	// so a full restart deferred past it kills nothing. Meaningful only
	// with a policy whose deferral windows are enabled.
	DeadlineAware bool
	// Transactions is how many transactions must leave the cluster
	// (completed or lost) before the run ends.
	Transactions int64
	// Seed and Stream select the random number stream.
	Seed   uint64
	Stream uint64
}

// ClusterResult aggregates a cluster run.
type ClusterResult struct {
	// Result pools the cluster-wide counters and response times.
	Result
	// PerHost holds each host's completion/loss/rejuvenation counts.
	PerHost []Result
	// Partial counts rejuvenation actions that were partial (ρ < 1);
	// Rejuvenations counts every executed action, full or partial.
	Partial int64
	// Deferred counts rejuvenation requests the scheduler made wait: the
	// first deferral decision of each queue episode.
	Deferred int64
}

// Cluster is a multi-host simulation. Build with NewCluster, run with
// Run; single-use like Model.
type Cluster struct {
	cfg       ClusterConfig
	sim       *des.Simulator
	rng       *xrand.Rand
	gov       *sched.Governor
	stations  []*station
	detectors []core.Detector
	inService []bool
	obs       []uint64 // per-host observation count, for trigger ids
	rrNext    int

	jw     *journal.Writer
	tickEv *des.Event

	res      ClusterResult
	ran      bool
	stopping bool

	// OnRejuvenate, when non-nil, observes every executed rejuvenation
	// action (killed is 0 for partial actions).
	OnRejuvenate func(simTime float64, host, killed int)
	// OnTransition, when non-nil, observes every scheduler transition.
	OnTransition func(tr sched.Transition)
}

// NewCluster validates the configuration and builds the cluster. The
// factory is called once per host to create its detector; a nil factory
// disables rejuvenation on every host.
func NewCluster(cfg ClusterConfig, factory func(host int) (core.Detector, error)) (*Cluster, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("ecommerce: cluster needs at least one host, got %d", cfg.Hosts)
	}
	if cfg.ArrivalRate <= 0 || math.IsNaN(cfg.ArrivalRate) || math.IsInf(cfg.ArrivalRate, 0) {
		return nil, fmt.Errorf("ecommerce: cluster arrival rate must be positive and finite, got %v", cfg.ArrivalRate)
	}
	if cfg.RejuvenationPause < 0 {
		return nil, fmt.Errorf("ecommerce: rejuvenation pause must be non-negative, got %v", cfg.RejuvenationPause)
	}
	if cfg.Transactions <= 0 {
		cfg.Transactions = 100_000
	}
	host := cfg.Host
	host.ArrivalRate = cfg.ArrivalRate // satisfies Validate; stations don't use it
	host = host.Default()
	if err := host.Validate(); err != nil {
		return nil, err
	}
	cfg.Host = host

	scfg := sched.OneDown(cfg.Hosts, cfg.RejuvenationPause)
	if cfg.Scheduler != nil {
		scfg = *cfg.Scheduler
		if scfg.Replicas == 0 {
			scfg.Replicas = cfg.Hosts
		} else if scfg.Replicas != cfg.Hosts {
			return nil, fmt.Errorf("ecommerce: scheduler config has %d replicas, cluster has %d hosts", scfg.Replicas, cfg.Hosts)
		}
	}
	gov, err := sched.New(scfg)
	if err != nil {
		return nil, fmt.Errorf("ecommerce: cluster scheduler: %w", err)
	}

	c := &Cluster{
		cfg:       cfg,
		sim:       des.New(),
		rng:       xrand.NewStream(cfg.Seed, cfg.Stream),
		gov:       gov,
		stations:  make([]*station, cfg.Hosts),
		detectors: make([]core.Detector, cfg.Hosts),
		inService: make([]bool, cfg.Hosts),
		obs:       make([]uint64, cfg.Hosts),
	}
	c.res.PerHost = make([]Result, cfg.Hosts)
	for h := 0; h < cfg.Hosts; h++ {
		h := h
		c.stations[h] = newStation(host, c.sim, c.rng, func(j *job, rt float64) {
			c.complete(h, j, rt)
		})
		c.inService[h] = true
		if factory != nil {
			det, err := factory(h)
			if err != nil {
				return nil, fmt.Errorf("ecommerce: detector for host %d: %w", h, err)
			}
			c.detectors[h] = det
		}
	}
	return c, nil
}

// Journal attaches a flight-recorder writer to the cluster: every
// scheduler transition (as a KindSched* record), every executed
// rejuvenation, and every full-GC stall is journaled with its virtual
// timestamp. The scheduler records replay byte-identically through
// journal.ReplaySched under SchedulerConfig(). Call before Run; pass
// nil to detach.
func (c *Cluster) Journal(jw *journal.Writer) {
	c.jw = jw
	for _, st := range c.stations {
		st.jw = jw
	}
}

// SchedulerConfig returns the defaulted scheduling policy in effect —
// the configuration a replay verifier must rebuild the governor from.
func (c *Cluster) SchedulerConfig() sched.Config { return c.gov.Config() }

// SchedulerStats returns the governor's activity counters.
func (c *Cluster) SchedulerStats() sched.Stats { return c.gov.Stats() }

// MaxDownSeen returns the high-water mark of simultaneously down hosts
// in the scheduler's replica group — the run-side witness of the
// capacity-budget law.
func (c *Cluster) MaxDownSeen() int {
	m := 0
	for grp := 0; grp < c.gov.Groups(); grp++ {
		if d := c.gov.MaxDownSeen(grp); d > m {
			m = d
		}
	}
	return m
}

// VirtualAge returns a host's accumulated Kijima virtual age in
// seconds of GC stall debt.
func (c *Cluster) VirtualAge(host int) float64 {
	if host < 0 || host >= len(c.stations) {
		return 0
	}
	return c.stations[host].virtualAge
}

// Run executes the cluster until the transaction budget is spent.
func (c *Cluster) Run() (ClusterResult, error) {
	if c.ran {
		return ClusterResult{}, fmt.Errorf("ecommerce: cluster already ran; create a new one per replication")
	}
	c.ran = true
	c.scheduleArrival()
	c.sim.Run()
	for h, st := range c.stations {
		c.res.PerHost[h].GCs = st.gcCount()
		c.res.GCs += st.gcCount()
	}
	c.res.SimTime = c.sim.Now()
	return c.res, nil
}

func (c *Cluster) scheduleArrival() {
	c.sim.Schedule(c.rng.Exp(c.cfg.ArrivalRate), func(*des.Simulator) { c.arrive() })
}

// arrive routes the transaction to a host. If every host is out of
// service the transaction queues on the next round-robin host and is
// served when that host returns.
func (c *Cluster) arrive() {
	c.res.Arrived++
	j := &job{arrival: c.sim.Now(), slot: -1}
	h := c.route()
	j.host = h
	c.res.PerHost[h].Arrived++
	if c.inService[h] {
		c.stations[h].enqueue(j)
	} else {
		c.stations[h].queue = append(c.stations[h].queue, j)
	}
	c.scheduleArrival()
}

// route picks the destination host according to the routing policy,
// preferring in-service hosts.
func (c *Cluster) route() int {
	switch c.cfg.Routing {
	case RouteRoundRobin:
		for tries := 0; tries < c.cfg.Hosts; tries++ {
			h := c.rrNext
			c.rrNext = (c.rrNext + 1) % c.cfg.Hosts
			if c.inService[h] {
				return h
			}
		}
		return c.rrNext
	default: // RouteLeastActive
		best, bestActive := -1, 0
		for h, st := range c.stations {
			if !c.inService[h] {
				continue
			}
			if best == -1 || st.active() < bestActive {
				best, bestActive = h, st.active()
			}
		}
		if best >= 0 {
			return best
		}
		return 0
	}
}

// complete records one finished transaction, runs the host's detector,
// and turns its verdict into a scheduler request.
func (c *Cluster) complete(h int, _ *job, rt float64) {
	c.res.Completed++
	c.res.RT.Add(rt)
	c.res.PerHost[h].Completed++
	c.res.PerHost[h].RT.Add(rt)
	if det := c.detectors[h]; det != nil {
		c.obs[h]++
		d := det.Observe(rt)
		switch {
		case d.Triggered:
			c.request(h, c.gov.Config().TriggerLevel, d.Fill)
		case c.cfg.ProactiveLevel > 0 && d.Evaluated && d.Level >= c.cfg.ProactiveLevel:
			c.request(h, d.Level, d.Fill)
		}
	}
	if c.res.Completed+c.res.Lost >= c.cfg.Transactions {
		c.sim.Stop()
	}
}

// request feeds one detector verdict into the governor and applies the
// resulting transitions.
func (c *Cluster) request(h, level, fill int) {
	tid := core.TriggerID(uint64(h), c.obs[h])
	c.apply(c.gov.Request(c.sim.Now(), h, level, fill, c.deadline(h), tid))
}

// deadline returns the host's QoS horizon: the virtual time its
// currently running transactions drain, so a restart deferred past it
// kills nothing in flight. 0 when the cluster is not deadline-aware.
func (c *Cluster) deadline(h int) float64 {
	if !c.cfg.DeadlineAware {
		return 0
	}
	var d float64
	for _, r := range c.stations[h].running {
		if t := r.completion.Time(); t > d {
			d = t
		}
	}
	return d
}

// apply journals and accounts one governor transition group, then
// executes its dispatches. Journaling the whole group before executing
// any start keeps nested groups (an instantaneous action completing
// synchronously) strictly after their parent in the journal, which the
// replay verifier's group matching relies on.
func (c *Cluster) apply(trs []sched.Transition) {
	for _, tr := range trs {
		if c.jw != nil {
			c.jw.Record(journal.SchedRecord(tr))
		}
		if c.OnTransition != nil {
			c.OnTransition(tr)
		}
		if tr.Op == sched.OpDefer && tr.Count == 1 {
			c.res.Deferred++
		}
	}
	c.armTick()
	for _, tr := range trs {
		if tr.Op == sched.OpStart && !c.stopping {
			c.execute(tr)
		}
	}
}

// armTick schedules the next time-driven governor re-evaluation at its
// NextWake time (a deadline horizon expiring or an entry crossing the
// starvation latch).
func (c *Cluster) armTick() {
	if c.tickEv != nil {
		c.sim.Cancel(c.tickEv)
		c.tickEv = nil
	}
	w := c.gov.NextWake(c.sim.Now())
	if math.IsInf(w, 1) {
		return
	}
	c.tickEv = c.sim.ScheduleAt(w, func(*des.Simulator) {
		c.tickEv = nil
		c.apply(c.gov.Tick(c.sim.Now()))
	})
}

// execute performs one dispatched rejuvenation action: a full restart
// (ρ = 1) kills the host's threads and takes it out of service for the
// action's pause; a partial action restores part of the heap and stalls
// in-flight work without killing it.
func (c *Cluster) execute(tr sched.Transition) {
	h := tr.Replica
	killed := c.stations[h].rejuvenatePartial(tr.Tier.Rho, tr.Pause)
	c.res.Lost += int64(killed)
	c.res.Rejuvenations++
	c.res.PerHost[h].Lost += int64(killed)
	c.res.PerHost[h].Rejuvenations++
	if tr.Tier.Rho < 1 {
		c.res.Partial++
	}
	if c.jw != nil {
		c.jw.Rejuvenation(c.sim.Now(), killed)
	}
	if det := c.detectors[h]; det != nil {
		det.Reset()
	}
	if c.OnRejuvenate != nil {
		c.OnRejuvenate(c.sim.Now(), h, killed)
	}
	if c.res.Completed+c.res.Lost >= c.cfg.Transactions {
		c.stopping = true
		c.sim.Stop()
		return
	}
	if num.Zero(tr.Pause) {
		c.finish(h)
		return
	}
	c.inService[h] = false
	c.sim.Schedule(tr.Pause, func(*des.Simulator) { c.finish(h) })
}

// finish returns a host to service after its action's pause and reports
// the completion to the governor, which may dispatch the next action.
func (c *Cluster) finish(h int) {
	c.inService[h] = true
	c.stations[h].tryStart()
	c.apply(c.gov.Complete(c.sim.Now(), h, true))
}
