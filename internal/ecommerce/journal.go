package ecommerce

import (
	"rejuv/internal/core"
	"rejuv/internal/journal"
)

// Journal attaches a flight-recorder writer to the model. Every
// detector observation (one per completed transaction), every
// evaluated detector decision, every rejuvenation and detector reset,
// and every full-GC stall is journaled with its virtual timestamp.
// Call it before Run; pass nil to detach. The caller owns replication
// framing: write a journal.Writer.RepStart record before Run when the
// journal spans multiple replications.
//
// Kernel-level event records (scheduled/fired/cancelled) are far more
// voluminous and stay off unless requested via JournalKernel.
func (m *Model) Journal(jw *journal.Writer) {
	m.jw = jw
	m.st.jw = jw
}

// JournalKernel additionally records every DES kernel event
// (scheduled, fired, cancelled) into the same journal. A 100k
// transaction replication emits several hundred thousand kernel
// records, so this is a separate opt-in on top of Journal.
func (m *Model) JournalKernel(jw *journal.Writer) { m.sim.Journal(jw) }

// journalDecision writes the decision record for one evaluated (or
// triggering) detector decision. The model layer has no trigger
// cooldown — every trigger rejuvenates — so the suppressed flag is
// always false here; only the Monitor layer suppresses.
func (m *Model) journalDecision(d core.Decision) {
	if m.jw == nil || (!d.Evaluated && !d.Triggered) {
		return
	}
	var in core.Internals
	if instr, ok := m.detector.(core.Instrumented); ok {
		in = instr.Internals()
	}
	m.jw.Decision(m.sim.Now(), d, in, false, 0)
}
