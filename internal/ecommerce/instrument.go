package ecommerce

import (
	"fmt"

	"rejuv/internal/core"
	"rejuv/internal/des"
	"rejuv/internal/metrics"
)

// stationMetrics holds the per-station instruments; nil on
// uninstrumented stations so the simulation hot path pays one pointer
// test per update.
type stationMetrics struct {
	queueLen  *metrics.Gauge
	active    *metrics.Gauge
	heapMB    *metrics.Gauge
	gcActive  *metrics.Gauge
	gcStalls  *metrics.Counter
	completed *metrics.Counter
}

// newStationMetrics registers the station series in reg with the given
// extra labels (a cluster would label by host; the single-host model
// attaches none).
func newStationMetrics(reg *metrics.Registry, labels ...metrics.Label) *stationMetrics {
	return &stationMetrics{
		queueLen: reg.Gauge("sim_queue_length",
			"threads waiting for a CPU", labels...),
		active: reg.Gauge("sim_active_threads",
			"threads in the system (queued + running), the paper's parallelism count", labels...),
		heapMB: reg.Gauge("sim_heap_mb",
			"remaining JVM heap in MB", labels...),
		gcActive: reg.Gauge("sim_gc_active",
			"1 while a stop-the-world full GC stalls the station", labels...),
		gcStalls: reg.Counter("sim_gc_stalls_total",
			"full garbage collections", labels...),
		completed: reg.Counter("sim_transactions_completed_total",
			"transactions that finished service", labels...),
	}
}

// update refreshes the station gauges; called after every state change
// that moves threads or memory.
func (sm *stationMetrics) update(s *station) {
	sm.queueLen.SetInt(s.queueLen())
	sm.active.SetInt(s.active())
	sm.heapMB.Set(s.heapMB)
	if s.gcActive {
		sm.gcActive.Set(1)
	} else {
		sm.gcActive.Set(0)
	}
}

// noteState refreshes the station gauges when instrumented; a no-op
// otherwise.
func (s *station) noteState() {
	if s.met != nil {
		s.met.update(s)
	}
}

// modelMetrics holds the model-level instruments fed from completion and
// rejuvenation events.
type modelMetrics struct {
	rt            *metrics.Histogram
	rejuvenations *metrics.Counter
	lost          *metrics.Counter
	bucketLevel   *metrics.Gauge
	bucketFill    *metrics.Gauge
	sampleSize    *metrics.Gauge
	target        *metrics.Gauge
}

// Instrument publishes the model's simulation-time series through reg:
// station occupancy (sim_queue_length, sim_active_threads, sim_heap_mb,
// sim_gc_active, sim_gc_stalls_total), transaction flow
// (sim_transactions_completed_total, sim_transactions_lost_total,
// sim_rejuvenations_total), a response-time histogram
// (sim_response_time_seconds), detector internals when the detector
// implements core.Instrumented (sim_detector_bucket_level,
// sim_detector_bucket_fill, sim_detector_sample_size,
// sim_detector_target), and the DES kernel counters (see
// des.Simulator.Instrument). Call it before Run; combined with Tick the
// registry can be dumped on a fixed virtual-time grid, which is how
// cmd/rejuvsim -metrics produces its JSON-lines series.
func (m *Model) Instrument(reg *metrics.Registry) {
	m.sim.Instrument(reg)
	m.st.met = newStationMetrics(reg)
	m.st.met.update(m.st)
	m.met = &modelMetrics{
		rt: reg.Histogram("sim_response_time_seconds",
			"response times of completed transactions", metrics.DefLatencyBuckets),
		rejuvenations: reg.Counter("sim_rejuvenations_total",
			"rejuvenation events"),
		lost: reg.Counter("sim_transactions_lost_total",
			"transactions killed by rejuvenation"),
		bucketLevel: reg.Gauge("sim_detector_bucket_level",
			"detector bucket pointer N"),
		bucketFill: reg.Gauge("sim_detector_bucket_fill",
			"detector ball count d"),
		sampleSize: reg.Gauge("sim_detector_sample_size",
			"detector sample size n in effect"),
		target: reg.Gauge("sim_detector_target",
			"detector trigger threshold"),
	}
	m.publishDetector()
}

// publishDetector refreshes the detector gauges from its internals.
func (m *Model) publishDetector() {
	if m.met == nil {
		return
	}
	in, ok := m.detector.(core.Instrumented)
	if !ok {
		return
	}
	snap := in.Internals()
	m.met.bucketLevel.SetInt(snap.Level)
	m.met.bucketFill.SetInt(snap.Fill)
	m.met.sampleSize.SetInt(snap.SampleSize)
	m.met.target.Set(snap.Target)
}

// Tick arranges for fn to run every interval seconds of virtual time
// while the replication runs, first at time interval. Register ticks
// before Run; rejuvsim uses one to dump the metrics registry on a fixed
// grid.
func (m *Model) Tick(interval float64, fn func(simTime float64)) error {
	if m.ran {
		return fmt.Errorf("ecommerce: Tick must be registered before Run")
	}
	if !(interval > 0) { // rejects NaN too
		return fmt.Errorf("ecommerce: tick interval must be positive, got %v", interval)
	}
	m.ticks = append(m.ticks, tick{interval: interval, fn: fn})
	return nil
}

// tick is one registered periodic callback.
type tick struct {
	interval float64
	fn       func(simTime float64)
}

// scheduleTick arms the next firing of tk.
func (m *Model) scheduleTick(tk tick) {
	m.sim.Schedule(tk.interval, func(*des.Simulator) {
		tk.fn(m.sim.Now())
		m.scheduleTick(tk)
	})
}
