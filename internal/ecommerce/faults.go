package ecommerce

import (
	"math"

	"rejuv/internal/core"
	"rejuv/internal/faults"
)

// This file wires the deterministic fault-injection layer into the
// simulation: the injector sits between the completed-transaction
// response times and the detector, corrupting and reshaping the
// observation stream exactly as a broken telemetry pipeline would,
// while the hygiene policy guards the detector just as the production
// Monitor does. Both are seed-pinned, so faulted replications replay
// byte-identically.

// faultStreamBase offsets the injector's xrand stream from the model's
// own, so injecting faults never perturbs arrivals or service times:
// the same transactions flow, only the detector's view of them changes.
const faultStreamBase = 9000

// InjectFaults attaches a deterministic fault injector built from the
// stream clauses of spec, drawing from xrand stream (Seed,
// faultStreamBase+Stream). Call before Run; later calls replace the
// injector. Actuator and clock clauses are ignored here — the
// simulation maps slow-act onto Config.RejuvenationPause at the CLI
// layer, and the DES clock cannot skew.
//
// Every injected fault is counted in Result.Injected and journaled as
// a fault record when a journal is attached.
func (m *Model) InjectFaults(spec faults.Spec) {
	inj := faults.NewInjector(spec, m.cfg.Seed, faultStreamBase+m.cfg.Stream)
	if !inj.Active() {
		m.inj = nil
		return
	}
	inj.OnFault = func(class faults.Class, value float64) {
		m.res.Injected++
		if m.jw != nil {
			m.jw.Fault(m.sim.Now(), string(class), sanitizeValue(value))
		}
	}
	m.inj = inj
}

// FaultCounts returns the per-clause injection counts of the attached
// injector, nil when none is attached.
func (m *Model) FaultCounts() []faults.Count {
	if m.inj == nil {
		return nil
	}
	return m.inj.Counts()
}

// sanitizeValue makes a fault value journal-safe: the JSONL codec
// cannot carry non-finite floats, and the fault class already names the
// poison.
func sanitizeValue(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// feedDetector routes one (possibly fault-injected) observation through
// the hygiene policy into the detector, mirroring the production
// Monitor: intercepted values are counted and journaled as faults but
// never reach the detector, so the journal's replayed decision stream
// stays byte-identical.
func (m *Model) feedDetector(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		v, ok := m.cfg.Hygiene.Admit(x, m.lastAdmitted, m.haveAdmitted)
		if m.cfg.Hygiene != core.HygieneOff {
			m.res.Rejected++
			if m.jw != nil {
				m.jw.Fault(m.sim.Now(), hygieneClass(x), 0)
			}
		}
		if !ok {
			return
		}
		x = v
	}
	m.lastAdmitted, m.haveAdmitted = x, true
	if m.jw != nil {
		m.jw.Observe(m.sim.Now(), x)
	}
	d := m.detector.Observe(x)
	if m.reb != nil {
		if n := m.reb.Rebaselines(); n != m.lastReb {
			m.lastReb = n
			m.res.Rebaselines++
			if m.jw != nil {
				b := m.reb.CurrentBaseline()
				m.jw.Rebaseline(m.sim.Now(), b.Mean, b.StdDev)
			}
		}
	}
	m.journalDecision(d)
	m.publishDetector()
	if d.Triggered {
		m.rejuvenate()
	}
}

// hygieneClass names the fault class of a non-finite observation.
func hygieneClass(x float64) string {
	switch {
	case math.IsNaN(x):
		return "nan"
	case math.IsInf(x, 1):
		return "+inf"
	default:
		return "-inf"
	}
}
