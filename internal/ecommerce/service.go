package ecommerce

import (
	"fmt"

	"rejuv/internal/dist"
	"rejuv/internal/xrand"
)

// ServiceDistribution names a CPU processing-time distribution for the
// distributional-sensitivity ablation. All options share the mean
// 1/ServiceRate; they differ in variability.
type ServiceDistribution string

// Supported service-time distributions.
const (
	// ServiceExponential is the paper's model (CV 1). The empty string
	// means the same.
	ServiceExponential ServiceDistribution = "exponential"
	// ServiceErlang2 is a two-stage Erlang (CV 1/sqrt(2) ~ 0.71):
	// less variable service.
	ServiceErlang2 ServiceDistribution = "erlang2"
	// ServiceHyper2 is a balanced two-branch hyperexponential with
	// CV 2: more variable service.
	ServiceHyper2 ServiceDistribution = "hyper2"
)

// sampler returns a draw function with mean 1/rate for the selected
// distribution.
func (s ServiceDistribution) sampler(rate float64) (func(*xrand.Rand) float64, error) {
	switch s {
	case "", ServiceExponential:
		return func(r *xrand.Rand) float64 { return r.Exp(rate) }, nil
	case ServiceErlang2:
		// Two stages at twice the rate keep the mean at 1/rate.
		er, err := dist.NewErlang(2, 2*rate)
		if err != nil {
			return nil, err
		}
		return er.Sample, nil
	case ServiceHyper2:
		// Balanced-means two-branch hyperexponential with CV = 2:
		// branch probabilities p and 1-p with rates 2p*rate and
		// 2(1-p)*rate give mean 1/rate; p solves CV^2 = 4 via
		// p = (1 + sqrt((c2-1)/(c2+1)))/2 with c2 = 4.
		const p = 0.8872983346207417 // (1 + sqrt(3/5)) / 2
		h, err := dist.NewHyperExp(
			[]float64{p, 1 - p},
			[]float64{2 * p * rate, 2 * (1 - p) * rate},
		)
		if err != nil {
			return nil, err
		}
		return h.Sample, nil
	default:
		return nil, fmt.Errorf("ecommerce: unknown service distribution %q", s)
	}
}
