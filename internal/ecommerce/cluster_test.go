package ecommerce

import (
	"testing"

	"rejuv/internal/core"
)

func paperDetectorFactory(t *testing.T) func(int) (core.Detector, error) {
	t.Helper()
	return func(int) (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{
			SampleSize: 2, Buckets: 5, Depth: 3,
			Baseline: core.Baseline{Mean: 5, StdDev: 5},
		})
	}
}

func TestClusterValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  ClusterConfig
	}{
		{"zero hosts", ClusterConfig{Hosts: 0, ArrivalRate: 1}},
		{"zero arrival rate", ClusterConfig{Hosts: 2}},
		{"negative pause", ClusterConfig{Hosts: 2, ArrivalRate: 1, RejuvenationPause: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCluster(tt.cfg, nil); err == nil {
				t.Errorf("invalid config accepted: %+v", tt.cfg)
			}
		})
	}
}

func TestClusterConservation(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        3,
		ArrivalRate:  3 * 1.6,
		Transactions: 60_000,
		Seed:         1,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	var inside int64
	for _, st := range c.stations {
		inside += int64(st.active())
	}
	if res.Arrived != res.Completed+res.Lost+inside {
		t.Fatalf("conservation violated: %d != %d + %d + %d",
			res.Arrived, res.Completed, res.Lost, inside)
	}
	// Per-host counters must add up to the cluster totals.
	var perArrived, perCompleted, perLost, perRejuv int64
	for _, h := range res.PerHost {
		perArrived += h.Arrived
		perCompleted += h.Completed
		perLost += h.Lost
		perRejuv += h.Rejuvenations
	}
	if perArrived != res.Arrived || perCompleted != res.Completed ||
		perLost != res.Lost || perRejuv != res.Rejuvenations {
		t.Fatalf("per-host sums (%d,%d,%d,%d) != totals (%d,%d,%d,%d)",
			perArrived, perCompleted, perLost, perRejuv,
			res.Arrived, res.Completed, res.Lost, res.Rejuvenations)
	}
}

func TestClusterLeastActiveBalancesLoad(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        4,
		ArrivalRate:  4 * 1.0,
		Routing:      RouteLeastActive,
		Transactions: 40_000,
		Seed:         3,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := res.Arrived / 4
	for h, r := range res.PerHost {
		if r.Arrived < want*8/10 || r.Arrived > want*12/10 {
			t.Fatalf("host %d received %d arrivals, want ~%d", h, r.Arrived, want)
		}
	}
}

func TestClusterRoundRobinIsExact(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        3,
		ArrivalRate:  3,
		Routing:      RouteRoundRobin,
		Transactions: 9_000,
		Seed:         5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With no host ever out of service, round robin splits arrivals
	// within one transaction of each other.
	for h := 1; h < 3; h++ {
		diff := res.PerHost[h].Arrived - res.PerHost[0].Arrived
		if diff < -1 || diff > 1 {
			t.Fatalf("round robin skewed: %v", []int64{
				res.PerHost[0].Arrived, res.PerHost[1].Arrived, res.PerHost[2].Arrived})
		}
	}
}

func TestClusterSingleRejuvenationAtATime(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:             3,
		ArrivalRate:       3 * 1.8,
		RejuvenationPause: 30,
		Transactions:      60_000,
		Seed:              7,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	outOfService := 0
	maxOut := 0
	c.OnRejuvenate = func(float64, int, int) {
		outOfService = 0
		for h := range c.inService {
			if !c.inService[h] {
				outOfService++
			}
		}
		if outOfService > maxOut {
			maxOut = outOfService
		}
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations happened")
	}
	if maxOut > 1 {
		t.Fatalf("%d hosts out of service at once, want at most 1", maxOut)
	}
}

func TestClusterDeferredRejuvenations(t *testing.T) {
	// At heavy load with a long pause, concurrent triggers must defer.
	c, err := NewCluster(ClusterConfig{
		Hosts:             4,
		ArrivalRate:       4 * 1.8,
		RejuvenationPause: 120,
		Transactions:      80_000,
		Seed:              9,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejuvenations == 0 {
		t.Fatal("no rejuvenations")
	}
	if res.Deferred == 0 {
		t.Fatal("expected at least one deferred rejuvenation under these conditions")
	}
}

func TestClusterInstantRejuvenationNeverDefers(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Hosts:        2,
		ArrivalRate:  2 * 1.8,
		Transactions: 40_000,
		Seed:         11,
	}, paperDetectorFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred != 0 {
		t.Fatalf("instantaneous rejuvenation deferred %d times", res.Deferred)
	}
}

func TestClusterDetectorFactoryError(t *testing.T) {
	_, err := NewCluster(ClusterConfig{Hosts: 2, ArrivalRate: 1}, func(int) (core.Detector, error) {
		return core.NewSRAA(core.SRAAConfig{}) // invalid
	})
	if err == nil {
		t.Fatal("factory error not propagated")
	}
}

func TestClusterSingleUse(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Hosts: 1, ArrivalRate: 1, Transactions: 500, Seed: 13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() ClusterResult {
		c, err := NewCluster(ClusterConfig{
			Hosts:        2,
			ArrivalRate:  2.4,
			Transactions: 20_000,
			Seed:         15,
		}, paperDetectorFactory(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Lost != b.Lost || a.AvgRT() != b.AvgRT() {
		t.Fatal("identical cluster runs diverged")
	}
}
